package precinct_test

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"precinct"
	"precinct/internal/invariant/fuzzgen"
)

// fuzzSeeds returns the fixed seed set the suite runs: 24 scenarios
// normally, the first 6 under -short.
func fuzzSeeds() []int64 {
	n := 24
	if testing.Short() {
		n = 6
	}
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	return seeds
}

// TestInvariantFuzzedScenarios runs every fuzzed scenario under the full
// runtime invariant catalog and requires a clean report.
func TestInvariantFuzzedScenarios(t *testing.T) {
	for _, seed := range fuzzSeeds() {
		sc := fuzzgen.Expand(seed)
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			res, inv, err := precinct.RunChecked(sc)
			if err != nil {
				t.Fatalf("RunChecked: %v", err)
			}
			if !inv.Ok() {
				for _, v := range inv.Violations {
					t.Errorf("violation: %s", v)
				}
				t.Fatalf("%s", inv)
			}
			if inv.Sweeps == 0 || inv.Events == 0 {
				t.Fatalf("checkers did not run: %s", inv)
			}
			if res.Report.Requests == 0 {
				t.Fatalf("scenario issued no requests; fuzzer produced a vacuous config")
			}
		})
	}
}

// scaleSeedCount and scaleMaxNodes bound the large-N invariant pass:
// 4 scenarios capped at 500 nodes under -short, 6 at 2000 otherwise.
func scaleSeedCount() (n int, maxNodes int) {
	if testing.Short() {
		return 4, 500
	}
	return 6, 2000
}

// TestInvariantScaleScenarios runs the scale-tier corpus — large-N,
// always-lossy scenarios up to 2000 peers — under the full runtime
// invariant catalog, so every checker is exercised at the node counts
// the ROADMAP targets, not just at paper scale.
func TestInvariantScaleScenarios(t *testing.T) {
	n, maxNodes := scaleSeedCount()
	for seed := int64(1); seed <= int64(n); seed++ {
		sc := fuzzgen.ExpandScale(seed, maxNodes)
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			res, inv, err := precinct.RunChecked(sc)
			if err != nil {
				t.Fatalf("RunChecked: %v", err)
			}
			if !inv.Ok() {
				for _, v := range inv.Violations {
					t.Errorf("violation: %s", v)
				}
				t.Fatalf("%s", inv)
			}
			if inv.Sweeps == 0 || inv.Events == 0 {
				t.Fatalf("checkers did not run: %s", inv)
			}
			if res.Report.Requests == 0 {
				t.Fatalf("scale scenario issued no requests; generator produced a vacuous config")
			}
			if sc.LossRate == 0 {
				t.Fatalf("scale scenario is lossless; ExpandScale must always set LossRate")
			}
		})
	}
}

// TestInvariantMetamorphicLinearCache: the heap victim index and the
// retained linear scan pick identical victims by contract (DESIGN.md
// section 11), so toggling the backend is output-preserving — the cache
// counterpart of TestInvariantMetamorphicLinearRadio.
func TestInvariantMetamorphicLinearCache(t *testing.T) {
	for _, seed := range []int64{4, 9, 17} {
		sc := fuzzgen.Expand(seed)
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			base, err := precinct.Run(sc)
			if err != nil {
				t.Fatal(err)
			}
			toggled, err := precinct.Run(fuzzgen.ToggleLinearCache(sc))
			if err != nil {
				t.Fatal(err)
			}
			requireSameResult(t, "linear-cache", base, toggled)
		})
	}
}

// TestInvariantCheckedRunMatchesUnchecked asserts the checkers are pure
// observers: attaching them must not change any run output.
func TestInvariantCheckedRunMatchesUnchecked(t *testing.T) {
	for _, seed := range fuzzSeeds()[:4] {
		sc := fuzzgen.Expand(seed)
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			plain, err := precinct.Run(sc)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			checked, inv, err := precinct.RunChecked(sc)
			if err != nil {
				t.Fatalf("RunChecked: %v", err)
			}
			if !inv.Ok() {
				t.Fatalf("%s", inv)
			}
			if !reflect.DeepEqual(plain, checked) {
				t.Fatalf("checked run diverged from unchecked run:\nplain:   %+v\nchecked: %+v", plain, checked)
			}
		})
	}
}

// requireSameResult compares two runs of (metamorphically) equivalent
// scenarios, ignoring the Scenario echo itself.
func requireSameResult(t *testing.T, label string, a, b precinct.Result) {
	t.Helper()
	if !reflect.DeepEqual(a.Report, b.Report) {
		t.Errorf("%s: Report diverged:\na: %+v\nb: %+v", label, a.Report, b.Report)
	}
	if a.Protocol != b.Protocol {
		t.Errorf("%s: ProtocolStats diverged:\na: %+v\nb: %+v", label, a.Protocol, b.Protocol)
	}
	if a.Radio != b.Radio {
		t.Errorf("%s: RadioStats diverged:\na: %+v\nb: %+v", label, a.Radio, b.Radio)
	}
}

// TestInvariantMetamorphicRelabel: renaming a scenario must not change
// anything about its run.
func TestInvariantMetamorphicRelabel(t *testing.T) {
	for _, seed := range []int64{2, 5, 11} {
		sc := fuzzgen.Expand(seed)
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			base, err := precinct.Run(sc)
			if err != nil {
				t.Fatal(err)
			}
			relabeled, err := precinct.Run(fuzzgen.Relabel(sc, sc.Name+"-relabeled"))
			if err != nil {
				t.Fatal(err)
			}
			requireSameResult(t, "relabel", base, relabeled)
		})
	}
}

// TestInvariantMetamorphicLinearRadio: the spatial-grid and linear-scan
// neighbor backends are bit-identical by contract, so toggling the
// backend is output-preserving.
func TestInvariantMetamorphicLinearRadio(t *testing.T) {
	for _, seed := range []int64{3, 7, 13} {
		sc := fuzzgen.Expand(seed)
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			base, err := precinct.Run(sc)
			if err != nil {
				t.Fatal(err)
			}
			toggled, err := precinct.Run(fuzzgen.ToggleLinearRadio(sc))
			if err != nil {
				t.Fatal(err)
			}
			requireSameResult(t, "linear-radio", base, toggled)
		})
	}
}

// TestInvariantMetamorphicFaultOrder: fuzzgen emits pairwise-distinct
// fault times, so the order of the Faults slice is irrelevant to the
// schedule and shuffling it is output-preserving.
func TestInvariantMetamorphicFaultOrder(t *testing.T) {
	tested := 0
	for seed := int64(1); seed <= 60 && tested < 3; seed++ {
		sc := fuzzgen.Expand(seed)
		if len(sc.Faults) < 2 {
			continue
		}
		tested++
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			base, err := precinct.Run(sc)
			if err != nil {
				t.Fatal(err)
			}
			shuffled, err := precinct.Run(fuzzgen.ShuffleFaults(sc, 99))
			if err != nil {
				t.Fatal(err)
			}
			requireSameResult(t, "fault-order", base, shuffled)
		})
	}
	if tested == 0 {
		t.Fatal("no fuzzed scenario with >= 2 faults in seeds 1..60; fuzzer regressed")
	}
}

// brokenCacheScenario is small but guaranteed to overflow a sabotaged
// cache: a tiny cache fraction means a handful of admissions exceed
// capacity once eviction is disabled.
func brokenCacheScenario() precinct.Scenario {
	sc := precinct.DefaultScenario()
	sc.Name = "broken-cache"
	sc.Nodes = 32
	sc.Duration = 240
	sc.Warmup = 60
	sc.CacheFraction = 0.001
	return sc
}

// TestInvariantDetectsBrokenCache proves the checker catches a broken
// build: with eviction disabled via the debug hook, the cache capacity
// invariant must fire.
func TestInvariantDetectsBrokenCache(t *testing.T) {
	t.Setenv("PRECINCT_DEBUG_BREAK", "no-evict")
	_, inv, err := precinct.RunChecked(brokenCacheScenario())
	if err != nil {
		t.Fatalf("RunChecked: %v", err)
	}
	if inv.Ok() {
		t.Fatalf("invariant checker missed the disabled eviction: %s", inv)
	}
	found := false
	for _, v := range inv.Violations {
		if v.Checker == "cache" {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("expected a cache violation, got: %v", inv.Violations)
	}
}

// TestInvariantDebugBreakUnknownMode: an unknown sabotage mode is a
// configuration error, not a silent no-op.
func TestInvariantDebugBreakUnknownMode(t *testing.T) {
	t.Setenv("PRECINCT_DEBUG_BREAK", "definitely-not-a-mode")
	if _, _, err := precinct.RunChecked(brokenCacheScenario()); err == nil {
		t.Fatal("expected an error for an unknown PRECINCT_DEBUG_BREAK mode")
	}
}

// TestInvariantSimCheckCLI drives the precinct-sim binary end to end:
// -check exits 0 on a healthy build and non-zero (status 2) when the
// build is sabotaged through the debug hook.
func TestInvariantSimCheckCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the CLI twice; skipped in -short")
	}
	bin := filepath.Join(t.TempDir(), "precinct-sim")
	build := exec.Command("go", "build", "-o", bin, "./cmd/precinct-sim")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	args := []string{"-check", "-nodes", "32", "-duration", "240", "-warmup", "60", "-cache-frac", "0.001"}

	clean := exec.Command(bin, args...)
	if out, err := clean.CombinedOutput(); err != nil {
		t.Fatalf("clean -check run failed: %v\n%s", err, out)
	}

	broken := exec.Command(bin, args...)
	broken.Env = append(os.Environ(), "PRECINCT_DEBUG_BREAK=no-evict")
	out, err := broken.CombinedOutput()
	if err == nil {
		t.Fatalf("sabotaged -check run exited 0:\n%s", out)
	}
	exitErr, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("sabotaged run did not produce an exit error: %v", err)
	}
	if code := exitErr.ExitCode(); code != 2 {
		t.Fatalf("sabotaged run exited %d, want 2:\n%s", code, out)
	}
	if !strings.Contains(string(out), "occupancy") {
		t.Fatalf("sabotaged run printed no capacity violation:\n%s", out)
	}
}

// ExampleRunChecked demonstrates the checked-run entry point.
func ExampleRunChecked() {
	sc := precinct.DefaultScenario()
	sc.Nodes = 24
	sc.Duration = 120
	sc.Warmup = 30
	_, inv, err := precinct.RunChecked(sc)
	if err != nil {
		panic(err)
	}
	fmt.Println("clean:", inv.Ok())
	// Output:
	// clean: true
}
