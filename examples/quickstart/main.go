// Quickstart: run one PReCinCt simulation with the paper's default
// environment and print what happened.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"precinct"
)

func main() {
	// Start from the paper's Section 6.1 environment: 80 peers moving by
	// random waypoint in a 1200x1200 m area cut into 9 regions, Zipf
	// requests every 30 s per peer, GD-LD cooperative caching.
	sc := precinct.DefaultScenario()
	sc.Name = "quickstart"
	sc.Duration = 800 // seconds of simulated time
	sc.Warmup = 200   // let caches fill before measuring
	if os.Getenv("PRECINCT_EXAMPLE_QUICK") != "" {
		// Abbreviated run for the smoke-test suite.
		sc.Duration = 200
		sc.Warmup = 50
	}

	res, err := precinct.Run(sc)
	if err != nil {
		log.Fatal(err)
	}
	r := res.Report

	fmt.Println("PReCinCt quickstart —", sc.Nodes, "peers,", sc.Regions, "regions")
	fmt.Printf("requests answered:  %d of %d\n", r.Completed, r.Requests)
	fmt.Printf("  from own cache:   %d\n", r.ByClass["local"])
	fmt.Printf("  from the region:  %d (cooperative cache at work)\n", r.ByClass["regional"])
	fmt.Printf("  en route:         %d\n", r.ByClass["en-route"])
	fmt.Printf("  from home region: %d\n", r.ByClass["remote"])
	fmt.Printf("mean latency:       %.3f s\n", r.MeanLatency)
	fmt.Printf("byte hit ratio:     %.3f\n", r.ByteHitRatio)
	fmt.Printf("energy per request: %.1f mJ\n", r.EnergyPerRequest)
	fmt.Printf("key handoffs due to mobility: %d\n", res.Protocol.Handoffs)
}
