// Cache policy comparison: sweep the dynamic cache size and compare the
// paper's GD-LD replacement policy with GD-Size, LRU and LFU — an
// extended version of the paper's Figures 4 and 5 that also shows the
// classical policies the paper leaves out.
//
//	go run ./examples/cachepolicy
package main

import (
	"fmt"
	"log"
	"os"

	"precinct"
)

func main() {
	policies := []string{"gd-ld", "gd-size", "lru", "lfu"}
	fractions := []float64{0.005, 0.010, 0.015, 0.020, 0.025}
	duration, warmup := 1200.0, 300.0
	if os.Getenv("PRECINCT_EXAMPLE_QUICK") != "" {
		// Abbreviated sweep for the smoke-test suite.
		fractions = []float64{0.005, 0.020}
		duration, warmup = 150, 40
	}

	// One scenario per (policy, cache size) pair, all sharing a seed so
	// the workload and mobility traces are identical across policies.
	var scenarios []precinct.Scenario
	for _, policy := range policies {
		for _, frac := range fractions {
			sc := precinct.DefaultScenario()
			sc.Name = fmt.Sprintf("%s @ %.1f%%", policy, frac*100)
			sc.Policy = policy
			sc.CacheFraction = frac
			sc.Duration = duration
			sc.Warmup = warmup
			scenarios = append(scenarios, sc)
		}
	}

	// Sweep runs scenarios in parallel across the machine's cores; each
	// individual simulation stays deterministic.
	results, err := precinct.Sweep(scenarios, 0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Latency per request (s) by cache size (% of database):")
	printTable(policies, fractions, results, func(r precinct.Report) float64 {
		return r.MeanLatency
	})
	fmt.Println("\nByte hit ratio by cache size:")
	printTable(policies, fractions, results, func(r precinct.Report) float64 {
		return r.ByteHitRatio
	})
}

func printTable(policies []string, fractions []float64, results []precinct.Result, metric func(precinct.Report) float64) {
	fmt.Printf("%8s", "cache%")
	for _, p := range policies {
		fmt.Printf("  %10s", p)
	}
	fmt.Println()
	for fi, frac := range fractions {
		fmt.Printf("%8.1f", frac*100)
		for pi := range policies {
			r := results[pi*len(fractions)+fi].Report
			fmt.Printf("  %10.4f", metric(r))
		}
		fmt.Println()
	}
}
