// Smoke tests for the example programs: each must build, run to
// completion (exit 0) and print its signature output markers. The
// PRECINCT_EXAMPLE_QUICK environment variable switches every example to
// an abbreviated configuration so the whole suite stays fast.
package examples

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// exampleSmoke names an example and the output markers that prove its
// interesting code path actually ran.
type exampleSmoke struct {
	name    string
	markers []string
}

var smokes = []exampleSmoke{
	{"quickstart", []string{"PReCinCt quickstart", "byte hit ratio", "key handoffs due to mobility"}},
	{"cachepolicy", []string{"Latency per request (s) by cache size", "Byte hit ratio by cache size:", "gd-ld"}},
	{"consistency", []string{"Control message overhead", "False hit ratio", "push-adaptive-pull"}},
	{"faulttolerance", []string{"availability", "replication on", "replication off", "no faults"}},
	{"regionops", []string{"→ Separate region 4", "→ Merge regions 0 and 1", "answered, mean latency"}},
}

func TestExampleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every example program; skipped in -short")
	}
	repoRoot, err := filepath.Abs("..")
	if err != nil {
		t.Fatal(err)
	}
	for _, ex := range smokes {
		ex := ex
		t.Run(ex.name, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", "run", "./examples/"+ex.name)
			cmd.Dir = repoRoot
			cmd.Env = append(os.Environ(), "PRECINCT_EXAMPLE_QUICK=1")
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("go run ./examples/%s: %v\n%s", ex.name, err, out)
			}
			for _, marker := range ex.markers {
				if !strings.Contains(string(out), marker) {
					t.Errorf("output lacks marker %q:\n%s", marker, out)
				}
			}
		})
	}
}
