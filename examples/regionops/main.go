// Region management: exercise PReCinCt's region-table operations
// (Separate and Merge, Section 2.1) on a live network and watch keys
// relocate to their new home regions through the dissemination flood.
//
// This example uses the lower-level internal/node API directly — the
// region operations are a substrate capability below the Scenario facade.
//
//	go run ./examples/regionops
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"precinct/internal/energy"
	"precinct/internal/geo"
	"precinct/internal/metrics"
	"precinct/internal/mobility"
	"precinct/internal/node"
	"precinct/internal/radio"
	"precinct/internal/region"
	"precinct/internal/sim"
	"precinct/internal/workload"
)

func main() {
	const (
		nodes    = 60
		areaSide = 1200.0
	)
	seg1, seg2, seg3 := 200.0, 300.0, 500.0
	if os.Getenv("PRECINCT_EXAMPLE_QUICK") != "" {
		// Abbreviated run for the smoke-test suite.
		seg1, seg2, seg3 = 40, 60, 100
	}
	rng := sim.NewRNG(7)
	sched := sim.NewScheduler()
	area := geo.NewRect(geo.Pt(0, 0), geo.Pt(areaSide, areaSide))

	mob, err := mobility.NewWaypoint(nodes, mobility.WaypointConfig{
		Area: area, MinSpeed: 0.5, MaxSpeed: 4, Pause: 5,
	}, rng)
	check(err)
	meter, err := energy.NewMeter(nodes, energy.DefaultModel())
	check(err)
	loss := make([]*rand.Rand, nodes)
	for i := range loss {
		loss[i] = rng.Stream(fmt.Sprintf("loss/%d", i))
	}
	ch, err := radio.New(radio.DefaultConfig(), sched, mob, meter, loss)
	check(err)
	table, err := region.NewGrid(area, 3, 3)
	check(err)
	catalog, err := workload.NewCatalog(workload.CatalogConfig{
		Items: 400, MinSize: 1024, MaxSize: 8192,
	})
	check(err)
	gen, err := workload.NewGenerator(workload.GeneratorConfig{
		Catalog: catalog, ZipfTheta: 0.8, RequestInterval: 30,
	})
	check(err)

	cfg := node.DefaultConfig()
	cfg.Warmup = 0
	net, err := node.New(node.Options{
		Config: cfg, Scheduler: sched, Channel: ch, Regions: table,
		Catalog: catalog, Source: workload.DefaultSource{Gen: gen}, Collector: metrics.NewCollector(),
		Meter: meter, RNG: rng,
	})
	check(err)

	fmt.Printf("start: %d regions, table version %d\n", net.Table().Len(), net.TableVersions())
	net.Run(seg1)

	// Separate the busiest (center) region into two.
	fmt.Println("\n→ Separate region 4 (the center region)")
	check(net.Separate(region.ID(4)))
	net.Run(seg2)
	report(net)

	// Merge two adjacent regions of the bottom row back together.
	fmt.Println("\n→ Merge regions 0 and 1")
	check(net.Merge(region.ID(0), region.ID(1)))
	net.Run(seg3)
	report(net)

	rep := net.Report()
	fmt.Printf("\nafter %.0f s: %d requests, %.1f%% answered, mean latency %.3f s\n",
		seg3, rep.Requests, 100*float64(rep.Completed)/float64(max(rep.Requests, 1)),
		rep.MeanLatency)
	fmt.Println("\nEvery Separate/Merge floods a new region-table version through")
	fmt.Println("the network; peers relocate their stored keys to the new home")
	fmt.Println("regions as the update reaches them (maintenance messages).")
}

func report(net *node.Network) {
	st := net.Stats()
	fmt.Printf("  regions now: %d, table versions: %d\n", net.Table().Len(), net.TableVersions())
	fmt.Printf("  relocated key transfers: %d (handoffs total %d, lost %d)\n",
		st.Relocations, st.Handoffs, st.LostKeys)
}

func max(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
