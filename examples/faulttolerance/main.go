// Fault tolerance: crash a wave of peers mid-run and compare request
// availability with and without PReCinCt's replica regions (Section 2.4).
// Crashed peers take their share of the key space down with them; the
// replica region — the second-closest region to each key's hash location —
// is what keeps those keys reachable.
//
//	go run ./examples/faulttolerance
package main

import (
	"fmt"
	"log"
	"os"

	"precinct"
)

func main() {
	// Crash a third of the peers shortly after the warmup, in three
	// waves, without graceful handoff.
	base := precinct.DefaultScenario()
	base.Duration = 1200
	base.Warmup = 300
	faultStart, waveGap := 400.0, 100.0
	if os.Getenv("PRECINCT_EXAMPLE_QUICK") != "" {
		// Abbreviated run for the smoke-test suite.
		base.Duration = 300
		base.Warmup = 60
		faultStart, waveGap = 100, 30
	}
	var faults []precinct.Fault
	for i := 0; i < base.Nodes/3; i++ {
		faults = append(faults, precinct.Fault{
			At:   faultStart + float64(i%3)*waveGap,
			Node: i * 3, // every third peer
			Kind: "crash",
		})
	}

	withReplicas := base
	withReplicas.Name = "replication on"
	withReplicas.Replication = true
	withReplicas.Faults = faults

	withoutReplicas := base
	withoutReplicas.Name = "replication off"
	withoutReplicas.Replication = false
	withoutReplicas.Faults = faults

	baseline := base
	baseline.Name = "no faults"

	results, err := precinct.Sweep([]precinct.Scenario{baseline, withReplicas, withoutReplicas}, 0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Crashing %d of %d peers at t=%.0f-%.0f s\n\n",
		len(faults), base.Nodes, faultStart, faultStart+2*waveGap)
	fmt.Printf("%-18s  %10s  %10s  %14s  %12s\n",
		"scenario", "requests", "failures", "availability", "latency (s)")
	for _, res := range results {
		r := res.Report
		avail := 1.0
		if r.Requests > 0 {
			avail = float64(r.Completed) / float64(r.Requests)
		}
		fmt.Printf("%-18s  %10d  %10d  %13.1f%%  %12.3f\n",
			res.Scenario.Name, r.Requests, r.Failures, avail*100, r.MeanLatency)
	}
	fmt.Println("\nWith replica regions, requests that find the home region dead are")
	fmt.Println("rerouted to the key's replica region; without them those requests")
	fmt.Println("simply fail until mobility repopulates the home region.")
}
