// Consistency scheme comparison: run the paper's three cache-consistency
// algorithms — Plain-Push, Pull-Every-time and the proposed Push with
// Adaptive Pull — across update rates and print the three metrics of
// Figures 6-8 (control message overhead, false hit ratio, latency).
//
//	go run ./examples/consistency
package main

import (
	"fmt"
	"log"
	"os"

	"precinct"
)

func main() {
	schemes := []string{"plain-push", "pull-every-time", "push-adaptive-pull"}
	ratios := []float64{1, 2, 3, 4, 5} // T_update / T_request
	duration, warmup := 1200.0, 300.0
	if os.Getenv("PRECINCT_EXAMPLE_QUICK") != "" {
		// Abbreviated sweep for the smoke-test suite.
		ratios = []float64{1, 5}
		duration, warmup = 150, 40
	}

	var scenarios []precinct.Scenario
	for _, scheme := range schemes {
		for _, ratio := range ratios {
			sc := precinct.DefaultScenario()
			sc.Name = fmt.Sprintf("%s r=%.0f", scheme, ratio)
			sc.Consistency = scheme
			sc.UpdateInterval = sc.RequestInterval * ratio
			sc.Duration = duration
			sc.Warmup = warmup
			scenarios = append(scenarios, sc)
		}
	}
	results, err := precinct.Sweep(scenarios, 0)
	if err != nil {
		log.Fatal(err)
	}

	at := func(si, ri int) precinct.Report { return results[si*len(ratios)+ri].Report }

	fmt.Println("Control message overhead (messages processed; lower is better):")
	header(schemes)
	for ri, ratio := range ratios {
		fmt.Printf("%10.0f", ratio)
		for si := range schemes {
			fmt.Printf("  %18d", at(si, ri).ControlMessages)
		}
		fmt.Println()
	}

	fmt.Println("\nFalse hit ratio (stale cache hits served as valid):")
	header(schemes)
	for ri, ratio := range ratios {
		fmt.Printf("%10.0f", ratio)
		for si := range schemes {
			fmt.Printf("  %18.4f", at(si, ri).FalseHitRatio)
		}
		fmt.Println()
	}

	fmt.Println("\nLatency per request (s):")
	header(schemes)
	for ri, ratio := range ratios {
		fmt.Printf("%10.0f", ratio)
		for si := range schemes {
			fmt.Printf("  %18.3f", at(si, ri).MeanLatency)
		}
		fmt.Println()
	}

	fmt.Println("\nReading the tables: Plain-Push floods every update through the")
	fmt.Println("whole network (huge overhead, fresh caches); Pull-Every-time")
	fmt.Println("validates every cache hit with the home region (extra round trip")
	fmt.Println("on every hit → worst latency); Push with Adaptive Pull pushes only")
	fmt.Println("to the home/replica regions and polls only when an item's TTR")
	fmt.Println("expires — least overhead, at the price of the highest (but small)")
	fmt.Println("false hit ratio.")
}

func header(schemes []string) {
	fmt.Printf("%10s", "Tupd/Treq")
	for _, s := range schemes {
		fmt.Printf("  %18s", s)
	}
	fmt.Println()
}
