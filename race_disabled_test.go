//go:build !race

package precinct_test

// raceEnabled mirrors the race detector's build tag; see
// race_enabled_test.go.
const raceEnabled = false
