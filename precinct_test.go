package precinct

import (
	"testing"
)

// quickScenario is a small, fast configuration for tests.
func quickScenario() Scenario {
	s := DefaultScenario()
	s.Nodes = 36
	s.Items = 200
	s.Duration = 400
	s.Warmup = 100
	s.Seed = 7
	return s
}

func TestDefaultScenarioValidates(t *testing.T) {
	if err := DefaultScenario().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestScenarioValidation(t *testing.T) {
	mutations := []func(*Scenario){
		func(s *Scenario) { s.Nodes = 0 },
		func(s *Scenario) { s.AreaSide = 0 },
		func(s *Scenario) { s.Duration = 0 },
		func(s *Scenario) { s.Warmup = s.Duration },
		func(s *Scenario) { s.Regions = 0 },
		func(s *Scenario) { s.Items = 0 },
		func(s *Scenario) { s.Retrieval = "carrier-pigeon" },
		func(s *Scenario) { s.Consistency = "eventual-ish" },
		func(s *Scenario) { s.Policy = "random" },
		func(s *Scenario) { s.ZipfTheta = -1 },
		func(s *Scenario) { s.RequestInterval = 0 },
		func(s *Scenario) { s.MaxSpeed = 0 },
		func(s *Scenario) { s.TTRAlpha = 1.5 },
	}
	for i, m := range mutations {
		s := DefaultScenario()
		m(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestRunProducesActivity(t *testing.T) {
	res, err := Run(quickScenario())
	if err != nil {
		t.Fatal(err)
	}
	r := res.Report
	if r.Requests == 0 {
		t.Fatal("no requests recorded")
	}
	if r.Completed == 0 {
		t.Fatal("no requests completed")
	}
	if float64(r.Failures)/float64(r.Requests) > 0.3 {
		t.Errorf("excessive failures: %+v", r)
	}
	if r.EnergyPerRequest <= 0 {
		t.Error("no energy accounted")
	}
	if res.Radio.BroadcastFrames == 0 || res.Radio.UnicastFrames == 0 {
		t.Errorf("radio silent: %+v", res.Radio)
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(quickScenario())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(quickScenario())
	if err != nil {
		t.Fatal(err)
	}
	if a.Report.String() != b.Report.String() {
		t.Errorf("same scenario, different reports:\n%v\n%v", a.Report, b.Report)
	}
	if a.Report.MeanLatency != b.Report.MeanLatency || a.Report.Requests != b.Report.Requests {
		t.Errorf("nondeterministic run: %+v vs %+v", a.Report, b.Report)
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	s1 := quickScenario()
	s2 := quickScenario()
	s2.Seed = 8
	a, err := Run(s1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(s2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Report.Requests == b.Report.Requests && a.Report.MeanLatency == b.Report.MeanLatency {
		t.Error("different seeds produced identical runs (suspicious)")
	}
}

func TestCacheFractionSizesCache(t *testing.T) {
	s := quickScenario()
	s.CacheFraction = -1 // disable dynamic caching
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	// Local hits can still come from the static store (peers requesting
	// keys they hold authoritatively), but the byte hit ratio should
	// clearly improve once dynamic caching is enabled.
	s.CacheFraction = 0.05
	res2, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Report.ByteHitRatio <= res.Report.ByteHitRatio {
		t.Errorf("caching did not improve byte hit ratio: %v (cache) vs %v (none)",
			res2.Report.ByteHitRatio, res.Report.ByteHitRatio)
	}
	if res2.Report.ByClass["local"]+res2.Report.ByClass["regional"] <=
		res.Report.ByClass["local"]+res.Report.ByClass["regional"] {
		t.Errorf("caching did not add cache hits: %v vs %v", res2.Report.ByClass, res.Report.ByClass)
	}
}

func TestSweepMatchesSequentialRuns(t *testing.T) {
	s1 := quickScenario()
	s2 := quickScenario()
	s2.Policy = "gd-size"
	s2.Name = "gd-size"
	seq1, err := Run(s1)
	if err != nil {
		t.Fatal(err)
	}
	seq2, err := Run(s2)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Sweep([]Scenario{s1, s2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if par[0].Report.MeanLatency != seq1.Report.MeanLatency {
		t.Error("parallel run 0 differs from sequential")
	}
	if par[1].Report.MeanLatency != seq2.Report.MeanLatency {
		t.Error("parallel run 1 differs from sequential")
	}
}

func TestSweepEmpty(t *testing.T) {
	res, err := Sweep(nil, 4)
	if err != nil || res != nil {
		t.Errorf("Sweep(nil) = %v, %v", res, err)
	}
}

func TestSweepPropagatesErrors(t *testing.T) {
	bad := quickScenario()
	bad.Nodes = -1
	if _, err := Sweep([]Scenario{quickScenario(), bad}, 2); err == nil {
		t.Error("sweep with invalid scenario succeeded")
	}
}

func TestReplicate(t *testing.T) {
	s := quickScenario()
	s.Duration = 300
	results, mean, err := Replicate(s, []int64{1, 2, 3}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	if mean.Requests == 0 {
		t.Error("mean report empty")
	}
	// The mean latency must lie within the min/max of the replicas.
	lo, hi := results[0].Report.MeanLatency, results[0].Report.MeanLatency
	for _, r := range results[1:] {
		if r.Report.MeanLatency < lo {
			lo = r.Report.MeanLatency
		}
		if r.Report.MeanLatency > hi {
			hi = r.Report.MeanLatency
		}
	}
	if mean.MeanLatency < lo-1e-12 || mean.MeanLatency > hi+1e-12 {
		t.Errorf("mean latency %v outside [%v, %v]", mean.MeanLatency, lo, hi)
	}
	if _, _, err := Replicate(s, nil, 1); err == nil {
		t.Error("Replicate without seeds accepted")
	}
}

func TestMeanReportEmpty(t *testing.T) {
	if got := MeanReport(nil); got.Requests != 0 {
		t.Errorf("MeanReport(nil) = %+v", got)
	}
}

func TestStaticScenario(t *testing.T) {
	s := quickScenario()
	s.Mobile = false
	s.AreaSide = 600
	s.Nodes = 40
	s.Warmup = 0
	s.Duration = 300
	s.UpdateInterval = 0
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Completed == 0 {
		t.Fatal("static scenario completed nothing")
	}
	if res.Protocol.Handoffs != 0 {
		t.Error("handoffs in a static scenario")
	}
}

func TestConsistencySchemesRun(t *testing.T) {
	for _, scheme := range []string{"plain-push", "pull-every-time", "push-adaptive-pull"} {
		s := quickScenario()
		s.Consistency = scheme
		s.UpdateInterval = 60
		s.Duration = 300
		res, err := Run(s)
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		if res.Report.UpdatesIssued == 0 {
			t.Errorf("%s: no updates issued", scheme)
		}
		if res.Report.ControlMessages == 0 {
			t.Errorf("%s: no control messages", scheme)
		}
	}
}
