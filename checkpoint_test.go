package precinct_test

// Tests for the checkpoint/restore subsystem: resume equivalence (the
// subsystem's defining property), sweep resume, corruption fail-closed
// behavior, replay bisection, and the golden-snapshot compatibility
// fixture.

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"precinct"
	"precinct/internal/checkpoint"
	"precinct/internal/invariant/fuzzgen"
)

// resumeSeeds returns the fuzz seeds the resume-equivalence proof runs
// over: at least 8 (the acceptance floor), trimmed under -short.
func resumeSeeds() []int64 {
	n := 12
	if testing.Short() {
		n = 4
	}
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	return seeds
}

// TestResumeEquivalence is the subsystem's core proof: checkpoint a run
// mid-flight, restore it fresh, and the final Result plus the full trace
// stream must be bit-identical to the uninterrupted run.
func TestResumeEquivalence(t *testing.T) {
	for _, seed := range resumeSeeds() {
		sc := fuzzgen.Expand(seed)
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			var bufFull bytes.Buffer
			full, err := precinct.RunTraced(sc, &bufFull)
			if err != nil {
				t.Fatalf("RunTraced: %v", err)
			}

			dir := t.TempDir()
			mid := sc.Warmup + (sc.Duration-sc.Warmup)/2
			var buf1, buf2 bytes.Buffer
			partial, err := precinct.RunCheckpointed(sc, precinct.CheckpointOptions{
				Dir: dir, Label: "run", Interval: 20, StopAfter: mid, TraceWriter: &buf1,
			})
			if err != nil {
				t.Fatalf("interrupted run: %v", err)
			}
			if _, err := os.Stat(filepath.Join(dir, "run.ckpt")); err != nil {
				t.Fatalf("no snapshot after StopAfter: %v", err)
			}
			if partial.Report.Requests >= full.Report.Requests && full.Report.Requests > 0 {
				t.Logf("note: interrupted run already saw all %d requests", full.Report.Requests)
			}

			resumed, err := precinct.RunCheckpointed(sc, precinct.CheckpointOptions{
				Dir: dir, Label: "run", Interval: 20, Resume: true, TraceWriter: &buf2,
			})
			if err != nil {
				t.Fatalf("resumed run: %v", err)
			}
			if !reflect.DeepEqual(resumed, full) {
				t.Errorf("resumed result differs from uninterrupted run:\n resumed: %+v\n full:    %+v",
					resumed.Report, full.Report)
			}
			joined := append(append([]byte(nil), buf1.Bytes()...), buf2.Bytes()...)
			if !bytes.Equal(joined, bufFull.Bytes()) {
				t.Errorf("trace streams differ: interrupted %d + resumed %d bytes vs full %d bytes",
					buf1.Len(), buf2.Len(), bufFull.Len())
			}

			// A third resume must hit the completion record, not re-run.
			var buf3 bytes.Buffer
			again, err := precinct.RunCheckpointed(sc, precinct.CheckpointOptions{
				Dir: dir, Label: "run", Resume: true, TraceWriter: &buf3,
			})
			if err != nil {
				t.Fatalf("re-resume: %v", err)
			}
			if !reflect.DeepEqual(again, full) {
				t.Error("completion-record result differs from uninterrupted run")
			}
			if buf3.Len() != 0 {
				t.Error("completion-record fast path re-ran the simulation")
			}
		})
	}
}

// TestResumeEquivalenceChecked proves the same property for checked runs:
// the invariant sweep schedule survives the snapshot, and the resumed
// run's Result still matches RunChecked's.
func TestResumeEquivalenceChecked(t *testing.T) {
	for _, seed := range resumeSeeds()[:2] {
		sc := fuzzgen.Expand(seed)
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			full, _, err := precinct.RunChecked(sc)
			if err != nil {
				t.Fatalf("RunChecked: %v", err)
			}
			dir := t.TempDir()
			mid := sc.Warmup + (sc.Duration-sc.Warmup)/2
			if _, _, err := precinct.RunCheckpointedChecked(sc, precinct.CheckpointOptions{
				Dir: dir, Label: "run", Interval: 20, StopAfter: mid,
			}); err != nil {
				t.Fatalf("interrupted checked run: %v", err)
			}
			resumed, inv, err := precinct.RunCheckpointedChecked(sc, precinct.CheckpointOptions{
				Dir: dir, Label: "run", Interval: 20, Resume: true,
			})
			if err != nil {
				t.Fatalf("resumed checked run: %v", err)
			}
			if !inv.Ok() {
				t.Fatalf("resumed segment violated invariants: %s", inv)
			}
			if !reflect.DeepEqual(resumed, full) {
				t.Errorf("resumed checked result differs from uninterrupted run:\n resumed: %+v\n full:    %+v",
					resumed.Report, full.Report)
			}
		})
	}
}

// TestSweepCheckpointedResume interrupts a whole sweep and resumes it:
// finished scenarios come back from their completion records, the rest
// from their snapshots, and the final results match a plain Sweep.
func TestSweepCheckpointedResume(t *testing.T) {
	scenarios := make([]precinct.Scenario, 3)
	for i := range scenarios {
		scenarios[i] = fuzzgen.Expand(int64(20 + i))
	}
	plain, err := precinct.Sweep(scenarios, 2)
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	dir := t.TempDir()
	if _, err := precinct.SweepCheckpointed(scenarios, 2, precinct.CheckpointOptions{
		Dir: dir, Interval: 15, StopAfter: 60,
	}); err != nil {
		t.Fatalf("interrupted sweep: %v", err)
	}
	resumed, err := precinct.SweepCheckpointed(scenarios, 2, precinct.CheckpointOptions{
		Dir: dir, Interval: 15, Resume: true,
	})
	if err != nil {
		t.Fatalf("resumed sweep: %v", err)
	}
	if !reflect.DeepEqual(resumed, plain) {
		t.Error("resumed sweep results differ from plain Sweep")
	}
	again, err := precinct.SweepCheckpointed(scenarios, 2, precinct.CheckpointOptions{
		Dir: dir, Resume: true,
	})
	if err != nil {
		t.Fatalf("re-resumed sweep: %v", err)
	}
	if !reflect.DeepEqual(again, plain) {
		t.Error("completion-record sweep results differ from plain Sweep")
	}
}

// makeSnapshot interrupts a run and returns the snapshot path plus the
// scenario it captured.
func makeSnapshot(t *testing.T, seed int64, label string) (string, precinct.Scenario) {
	t.Helper()
	sc := fuzzgen.Expand(seed)
	dir := t.TempDir()
	mid := sc.Warmup + (sc.Duration-sc.Warmup)/2
	if _, err := precinct.RunCheckpointed(sc, precinct.CheckpointOptions{
		Dir: dir, Label: label, Interval: 20, StopAfter: mid,
	}); err != nil {
		t.Fatalf("interrupted run: %v", err)
	}
	path := filepath.Join(dir, label+".ckpt")
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("no snapshot written: %v", err)
	}
	return path, sc
}

// sections parses the container framing and returns the byte ranges of
// each section (name-length field through checksum), for surgical
// corruption in tests.
func sections(t *testing.T, data []byte) [][2]int {
	t.Helper()
	off := len(checkpoint.Magic) + 8
	var out [][2]int
	for off < len(data) {
		start := off
		nameLen := int(binary.BigEndian.Uint16(data[off : off+2]))
		off += 2 + nameLen
		payLen := int(binary.BigEndian.Uint64(data[off : off+8]))
		off += 8 + payLen + 4
		out = append(out, [2]int{start, off})
	}
	return out
}

// TestCheckpointCorruption verifies every corruption mode fails closed
// with a descriptive error: truncation, a flipped payload byte, an
// unknown format version, and reordered sections.
func TestCheckpointCorruption(t *testing.T) {
	path, sc := makeSnapshot(t, 3, "corrupt")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := checkpoint.Decode(data); err != nil {
		t.Fatalf("pristine snapshot does not decode: %v", err)
	}

	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantMsg string
	}{
		{
			name:    "truncated",
			mutate:  func(d []byte) []byte { return d[:len(d)-10] },
			wantMsg: "truncated",
		},
		{
			name: "bad-crc",
			mutate: func(d []byte) []byte {
				d[len(d)/2] ^= 0xff
				return d
			},
			wantMsg: "checksum mismatch",
		},
		{
			name: "unknown-version",
			mutate: func(d []byte) []byte {
				binary.BigEndian.PutUint32(d[len(checkpoint.Magic):], 99)
				return d
			},
			wantMsg: "unknown format version",
		},
		{
			name: "reordered-sections",
			mutate: func(d []byte) []byte {
				secs := sections(t, d)
				if len(secs) < 3 {
					t.Fatalf("expected several sections, got %d", len(secs))
				}
				// Swap the second and third sections wholesale; each block
				// keeps a valid CRC, only the order is wrong.
				a, b := secs[1], secs[2]
				out := append([]byte(nil), d[:a[0]]...)
				out = append(out, d[b[0]:b[1]]...)
				out = append(out, d[a[0]:a[1]]...)
				out = append(out, d[b[1]:]...)
				return out
			},
			wantMsg: "canonical order",
		},
		{
			name:    "bad-magic",
			mutate:  func(d []byte) []byte { d[0] ^= 0xff; return d },
			wantMsg: "bad magic",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			corrupt := tc.mutate(append([]byte(nil), data...))
			_, err := checkpoint.Decode(corrupt)
			if err == nil {
				t.Fatal("corrupt snapshot decoded")
			}
			if !strings.Contains(err.Error(), tc.wantMsg) {
				t.Errorf("error %q does not mention %q", err, tc.wantMsg)
			}

			// Resuming from the corrupt file must fail, not silently
			// restart the run from scratch.
			dir := t.TempDir()
			bad := filepath.Join(dir, "run.ckpt")
			if err := os.WriteFile(bad, corrupt, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := precinct.RunCheckpointed(sc, precinct.CheckpointOptions{
				Dir: dir, Label: "run", Resume: true, StopAfter: sc.Warmup,
			}); err == nil {
				t.Error("resume from a corrupt snapshot did not fail")
			}
		})
	}
}

// TestResumeScenarioMismatch: a snapshot under the right label but from
// a different scenario must be rejected.
func TestResumeScenarioMismatch(t *testing.T) {
	path, sc := makeSnapshot(t, 4, "run")
	other := sc
	other.Seed++
	if _, err := precinct.RunCheckpointed(other, precinct.CheckpointOptions{
		Dir: filepath.Dir(path), Label: "run", Resume: true,
	}); err == nil || !strings.Contains(err.Error(), "different scenario") {
		t.Fatalf("mismatched scenario resume: err = %v", err)
	}
}

// TestBisectSnapshots: two snapshots of the same run at the same time,
// one with an artificially perturbed random stream, must bisect to a
// concrete first divergent event; identical snapshots must not.
func TestBisectSnapshots(t *testing.T) {
	pathA, _ := makeSnapshot(t, 5, "a")
	snap, err := checkpoint.ReadFile(pathA)
	if err != nil {
		t.Fatal(err)
	}

	// Identical snapshots: no divergence.
	pathSame := filepath.Join(t.TempDir(), "same.ckpt")
	if err := checkpoint.WriteFile(pathSame, snap); err != nil {
		t.Fatal(err)
	}
	div, err := precinct.BisectSnapshots(pathA, pathSame, 0)
	if err != nil {
		t.Fatalf("bisect identical: %v", err)
	}
	if div.Found {
		t.Fatalf("identical snapshots diverged: %s", div)
	}
	if div.Step == 0 {
		t.Fatal("bisect of identical snapshots executed no events")
	}

	// Perturb every peer's random stream: the runs agree until the first
	// alive peer's next draw, then split. (Perturbing a single peer could
	// go unnoticed if a churn fault has killed exactly that peer.)
	perturbed := false
	for i := range snap.RNG {
		if strings.HasPrefix(snap.RNG[i].Name, "peer/") {
			snap.RNG[i].State[0] ^= 0x1
			perturbed = true
		}
	}
	if !perturbed {
		t.Fatal("snapshot has no peer/* stream")
	}
	pathB := filepath.Join(t.TempDir(), "b.ckpt")
	if err := checkpoint.WriteFile(pathB, snap); err != nil {
		t.Fatal(err)
	}
	div, err = precinct.BisectSnapshots(pathA, pathB, 0)
	if err != nil {
		t.Fatalf("bisect perturbed: %v", err)
	}
	if !div.Found {
		t.Fatal("perturbed stream produced no divergence")
	}
	if div.Step == 0 {
		t.Errorf("divergence reported at step 0; the digest must not inspect RNG internals directly: %s", div)
	}
	t.Logf("bisect verdict: %s", div)
}

// TestReplayMatchesOriginal: replaying a snapshot to the horizon must
// reproduce the uninterrupted run's result, and replaying with tracing
// must emit exactly the post-snapshot suffix of the full trace.
func TestReplayMatchesOriginal(t *testing.T) {
	sc := fuzzgen.Expand(6)
	var bufFull bytes.Buffer
	full, err := precinct.RunTraced(sc, &bufFull)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	mid := sc.Warmup + (sc.Duration-sc.Warmup)/2
	var buf1 bytes.Buffer
	if _, err := precinct.RunCheckpointed(sc, precinct.CheckpointOptions{
		Dir: dir, Label: "run", Interval: 20, StopAfter: mid, TraceWriter: &buf1,
	}); err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	res, _, err := precinct.Replay(filepath.Join(dir, "run.ckpt"), precinct.ReplayOptions{TraceWriter: &buf2})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if !reflect.DeepEqual(res, full) {
		t.Errorf("replayed result differs from uninterrupted run:\n replay: %+v\n full:   %+v",
			res.Report, full.Report)
	}
	joined := append(append([]byte(nil), buf1.Bytes()...), buf2.Bytes()...)
	if !bytes.Equal(joined, bufFull.Bytes()) {
		t.Error("interrupted trace + replay trace do not reassemble the full trace")
	}
}

// goldenScenario is the fixed configuration behind testdata/golden.ckpt.
// Changing it invalidates the fixture; regenerate with
// PRECINCT_UPDATE_GOLDEN=1 go test -run TestGoldenSnapshot ./...
func goldenScenario() precinct.Scenario {
	sc := precinct.DefaultScenario()
	sc.Name = "golden"
	sc.Seed = 7
	sc.Nodes = 20
	sc.AreaSide = 800
	sc.Regions = 4
	sc.Items = 200
	sc.UpdateInterval = 40
	sc.Consistency = "push-adaptive-pull"
	sc.Warmup = 20
	sc.Duration = 90
	return sc
}

// TestGoldenSnapshot restores the checked-in snapshot fixture with
// today's code and replays it to completion: the format must stay
// readable and the replayed Result must match the recorded one.
func TestGoldenSnapshot(t *testing.T) {
	const ckptPath = "testdata/golden.ckpt"
	const resultPath = "testdata/golden_result.json"
	sc := goldenScenario()

	if os.Getenv("PRECINCT_UPDATE_GOLDEN") == "1" {
		dir := t.TempDir()
		if _, err := precinct.RunCheckpointed(sc, precinct.CheckpointOptions{
			Dir: dir, Label: "golden", Interval: 10, StopAfter: 45,
		}); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(filepath.Join(dir, "golden.ckpt"))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(ckptPath, data, 0o644); err != nil {
			t.Fatal(err)
		}
		full, err := precinct.Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		j, err := json.MarshalIndent(full, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(resultPath, append(j, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Log("golden fixture regenerated")
	}

	res, _, err := precinct.Replay(ckptPath, precinct.ReplayOptions{})
	if err != nil {
		t.Fatalf("golden snapshot no longer restores: %v", err)
	}
	wantJSON, err := os.ReadFile(resultPath)
	if err != nil {
		t.Fatal(err)
	}
	var want precinct.Result
	if err := json.Unmarshal(wantJSON, &want); err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	wantCompact, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, wantCompact) {
		t.Errorf("golden replay result drifted from the recorded fixture;\n got:  %s\n want: %s\n(regenerate with PRECINCT_UPDATE_GOLDEN=1 if the change is intentional)",
			got, wantCompact)
	}
}

// TestCheckpointOptionValidation: bad directories are flag-style errors,
// never panics.
func TestCheckpointOptionValidation(t *testing.T) {
	sc := fuzzgen.Expand(1)
	if _, err := precinct.RunCheckpointed(sc, precinct.CheckpointOptions{}); err == nil {
		t.Error("empty Dir accepted")
	}
	if _, err := precinct.RunCheckpointed(sc, precinct.CheckpointOptions{Dir: "/nonexistent/path"}); err == nil {
		t.Error("missing Dir accepted")
	}
	f := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := precinct.RunCheckpointed(sc, precinct.CheckpointOptions{Dir: f}); err == nil {
		t.Error("non-directory Dir accepted")
	}
}
