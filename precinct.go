// Package precinct is the public entry point of the PReCinCt
// reproduction: a configurable mobile peer-to-peer simulation that
// implements the cooperative caching scheme of Shen, Joseph, Kumar and
// Das, "PReCinCt: A Scheme for Cooperative Caching in Mobile Peer-to-Peer
// Systems" (IPDPS 2005), together with the baselines the paper compares
// against.
//
// The typical use is: describe a Scenario (network size, mobility, cache
// policy, consistency scheme, workload), call Run for a single simulation
// or Sweep for a parallel parameter study, and read the Report.
//
//	sc := precinct.DefaultScenario()
//	sc.Nodes = 80
//	sc.Policy = "gd-ld"
//	res, err := precinct.Run(sc)
//	fmt.Println(res.Report.MeanLatency)
//
// The simulation core is deterministic for a fixed Scenario.Seed; Sweep
// exploits that by running independent scenarios on a worker pool.
package precinct

import (
	"fmt"
	"io"
	"math/rand"

	"precinct/internal/cache"
	"precinct/internal/consistency"
	"precinct/internal/energy"
	"precinct/internal/geo"
	"precinct/internal/metrics"
	"precinct/internal/mobility"
	"precinct/internal/node"
	"precinct/internal/radio"
	"precinct/internal/region"
	"precinct/internal/sim"
	"precinct/internal/trace"
	"precinct/internal/workload"
)

// Scenario fully describes one simulation run. The zero value is not
// runnable; start from DefaultScenario.
type Scenario struct {
	// Name labels the scenario in sweep outputs.
	Name string
	// Seed drives every random stream in the run.
	Seed int64

	// Nodes is the number of mobile peers.
	Nodes int
	// AreaSide is the side of the square service area in meters.
	AreaSide float64
	// Regions is the number of grid regions the area is divided into
	// (perfect squares and products of small factors work best).
	Regions int
	// VoronoiRegions partitions the area into the Voronoi cells of
	// Regions random seed points instead of a rectangular grid — the
	// paper's more general "center point and perimeter vertices" region
	// shape. Merge/Separate and adaptive management require the grid.
	VoronoiRegions bool

	// Mobile selects the random waypoint model; false places nodes on a
	// jittered static grid (the Section 6.2.3 validation topology).
	// MobilityModel overrides it when non-empty: "waypoint", "static",
	// "random-walk" or "gauss-markov".
	Mobile        bool
	MobilityModel string
	// MaxSpeed is the waypoint / random-walk maximum (and Gauss-Markov
	// mean) speed in m/s.
	MaxSpeed float64
	// Pause is the waypoint pause time in seconds.
	Pause float64

	// Range is the radio range in meters; Bandwidth in bits/s.
	Range     float64
	Bandwidth float64
	// LossRate drops frames with this probability (0 = lossless).
	LossRate float64
	// Collisions enables receiver-side collision losses: overlapping
	// receptions at a node destroy each other, so broadcast storms are
	// self-damaging as on a real shared channel.
	Collisions bool
	// BeaconInterval makes neighbor position knowledge stale: peers
	// observe each other's positions only every BeaconInterval seconds
	// (0 = perfect location knowledge). Tests the paper's robustness
	// claim for routing-to-regions under location error.
	BeaconInterval float64
	// LinearRadio serves neighbor queries with the retained O(N) linear
	// scan instead of the spatial grid index. The two are bit-identical
	// by contract (see DESIGN.md); this switch exists for equivalence
	// testing and benchmarking, not for normal use.
	LinearRadio bool
	// LinearCache selects the retained O(n) linear victim scan for cache
	// eviction instead of the default heap index. Like LinearRadio, the
	// two backends are bit-identical by contract (DESIGN.md section 11)
	// and the switch exists for equivalence testing and benchmarking.
	LinearCache bool
	// NoPooling disables the zero-allocation hot path: the scheduler
	// event freelist, the radio delivery freelist, the message pool
	// (forwarding clones at every hop) and the GPSR planar-set cache.
	// Pooled and unpooled runs are bit-identical by contract (DESIGN.md
	// section 12); the switch exists for equivalence testing and
	// benchmarking, not for normal use.
	NoPooling bool
	// LegacyLayout selects the retained pointer/map-heavy per-node state
	// layout: individually allocated peers, map-backed flood-dedup and
	// pending-request containers, and an unbounded exact metrics
	// collector. The default struct-of-arrays layout (peer slab,
	// open-addressed seen table, pending slice, capped streaming
	// collector) is bit-identical by contract at every scale the
	// equivalence suites cover (DESIGN.md section 14); the switch exists
	// so that can be re-proven on whole scenarios at any time.
	LegacyLayout bool

	// Items, MinItemSize and MaxItemSize describe the shared catalog.
	Items       int
	MinItemSize int
	MaxItemSize int

	// ZipfTheta is the request skew and UpdateZipfTheta the update
	// target skew (0 = uniform); RequestInterval and UpdateInterval are
	// the mean Poisson inter-arrival gaps per peer in seconds
	// (UpdateInterval 0 disables updates).
	ZipfTheta       float64
	UpdateZipfTheta float64
	RequestInterval float64
	UpdateInterval  float64

	// Workload selects the traffic source (DESIGN.md section 15): "" or
	// "default" is the stationary Zipf/Poisson generator; "trace"
	// replays the cachelib-format trace at TracePath; "flash-crowd",
	// "diurnal", "hotspot" and "rank-churn" are the non-stationary
	// sources. Non-default workloads require a sequential run
	// (Shards <= 1) — their sources mutate shared draw state.
	Workload string
	// TracePath is the trace file for Workload "trace" (CSV rows of
	// op,key,key_size,size). The catalog is derived from the trace's
	// distinct keys; Items/MinItemSize/MaxItemSize are ignored. A
	// checkpointed trace run needs the same file present on resume.
	TracePath string
	// WorkloadCfg tunes the non-stationary sources; zero values pick
	// scenario-derived defaults.
	WorkloadCfg WorkloadParams

	// Retrieval: "precinct", "flooding" or "expanding-ring".
	Retrieval string
	// Consistency: "none", "plain-push", "pull-every-time" or
	// "push-adaptive-pull".
	Consistency string
	// TTRAlpha is the Equation 2 smoothing factor in [0,1).
	TTRAlpha float64

	// Policy selects the cache replacement policy by registry name
	// (PolicyNames lists them): the paper's "gd-ld" and "gd-size", the
	// "lru"/"lfu" baselines, and the related-work competitors "gdsf",
	// "pop-dist" and "pop-rank" (DESIGN.md section 16).
	Policy string
	// GDLDWeights overrides the utility weights of the weighted policies
	// (gd-ld, pop-dist); the zero value keeps the defaults.
	GDLDWeights Weights
	// CacheFraction sizes each peer's dynamic cache as a fraction of
	// the total catalog size (the paper sweeps 0.005–0.025). Negative
	// disables caching; zero falls back to CacheBytes.
	CacheFraction float64
	// CacheBytes sizes the cache absolutely when CacheFraction is 0.
	CacheBytes int64

	// EnRoute enables en-route cache answering; Replication maintains
	// replica regions.
	EnRoute     bool
	Replication bool
	// Replicas is the number of replica regions per key when Replication
	// is on: a key's rank-r replica lives in the (r+1)-th nearest region
	// to its hash location. 0 and 1 select the paper's single replica
	// region (bit-identical to the pre-k layer); higher values home each
	// key in the k best regions with load-aware placement (DESIGN.md
	// section 16).
	Replicas int

	// Warmup excludes the initial cache-fill phase from metrics;
	// Duration is the total simulated time. Seconds.
	Warmup   float64
	Duration float64

	// Faults injects node failures at given simulation times.
	Faults []Fault

	// AdaptiveRegions turns on dynamic region management (the paper's
	// future work): regions holding more than AdaptiveSplitAbove live
	// peers are split, adjacent region pairs holding fewer than
	// AdaptiveMergeBelow combined are merged, re-inspected every
	// AdaptiveInterval seconds. Zero thresholds/interval keep the
	// controller defaults.
	AdaptiveRegions    bool
	AdaptiveInterval   float64
	AdaptiveSplitAbove int
	AdaptiveMergeBelow int

	// ChurnInterval, when positive, drives background churn: one random
	// live peer leaves per interval on average (Poisson), returning
	// empty-handed after ChurnDowntime seconds. ChurnGraceful is the
	// fraction of departures that hand their keys off before leaving
	// (the paper assumes "most users quit the network gracefully").
	ChurnInterval float64
	ChurnDowntime float64
	ChurnGraceful float64

	// Shards > 1 runs the event loop on that many goroutines, one per
	// spatial shard, synchronized at a conservative lookahead horizon
	// derived from the minimum radio frame delay (DESIGN.md section 13).
	// Results are identical to the sequential run (0 or 1): same Report,
	// same protocol and radio counters, same trace events. Requires
	// perfect location knowledge (BeaconInterval 0) and static regions
	// (no AdaptiveRegions); checkpointing a sharded run is not supported.
	Shards int

	// ShardBalance selects how peers are split into shards: "load" (the
	// default) measures per-peer event load with a short sequential
	// probe run and cuts the x-sorted peer order into contiguous strips
	// of equal cumulative load; "count" keeps the legacy equal-count
	// strips. Either way the assignment is a deterministic function of
	// the scenario. Ignored when Shards <= 1; omitted from JSON when
	// empty so checkpoint metadata written before the field existed
	// round-trips byte-identically.
	ShardBalance string `json:",omitempty"`
}

// WorkloadParams tunes the non-stationary workload sources. Every zero
// field falls back to a default derived from the scenario (documented
// per field), so enabling a workload by name alone gives a sensible
// adversarial setting.
type WorkloadParams struct {
	// FlashAt is when the flash crowd ignites (default: one third into
	// the measured window) and FlashDuration how long it burns (default:
	// a quarter of the measured window). FlashHotset keys from the cold
	// half of the catalog (default: Items/100, at least 1) absorb
	// FlashBoost of the request mass (default: 0.6).
	FlashAt       float64
	FlashDuration float64
	FlashHotset   int
	FlashBoost    float64

	// DriftPeriod is the seconds per full rotation of the diurnal
	// popularity ranking (default: the measured window, one full cycle
	// per run).
	DriftPeriod float64

	// HotspotGrid partitions the area into Grid x Grid popularity cells
	// (default: 3); each favors HotspotHotset keys (default: Items/50,
	// at least 1) that absorb HotspotBoost of local requests (default:
	// 0.5).
	HotspotGrid   int
	HotspotHotset int
	HotspotBoost  float64

	// ChurnEvery is the seconds between popularity-rank reshuffles
	// (default: 60) and ChurnSwaps the random rank transpositions per
	// reshuffle (default: Items/20, at least 1).
	ChurnEvery float64
	ChurnSwaps int
}

// Weights are the GD-LD utility weights: U = WR*accesses +
// WD*regionDistanceMeters + WS/sizeBytes.
type Weights struct {
	WR float64 // access-count weight
	WD float64 // region-distance weight, per meter
	WS float64 // size weight (contributes WS/size)
}

// Fault is one injected failure event.
type Fault struct {
	// At is the simulation time of the event in seconds.
	At float64
	// Node is the peer the event applies to.
	Node int
	// Kind is "crash" (immediate death), "quit" (graceful leave with
	// key handoff) or "revive" (rejoin with empty state).
	Kind string
}

// DefaultScenario mirrors the paper's Section 6.1 environment: 1200×1200 m
// area, 9 regions, 250 m range, 11 Mb/s, Poisson requests and updates with
// 30 s means, Zipf-skewed keys, random waypoint with 5 s pause.
func DefaultScenario() Scenario {
	return Scenario{
		Name:            "default",
		Seed:            1,
		Nodes:           80,
		AreaSide:        1200,
		Regions:         9,
		Mobile:          true,
		MaxSpeed:        6,
		Pause:           5,
		Range:           250,
		Bandwidth:       11e6,
		Items:           1000,
		MinItemSize:     1024,
		MaxItemSize:     10 * 1024,
		ZipfTheta:       0.8,
		RequestInterval: 30,
		UpdateInterval:  0,
		Retrieval:       "precinct",
		Consistency:     "none",
		TTRAlpha:        0.5,
		Policy:          "gd-ld",
		CacheFraction:   0.015,
		EnRoute:         true,
		Replication:     true,
		Warmup:          300,
		Duration:        2000,
	}
}

// Validate checks the scenario without building it.
func (s Scenario) Validate() error {
	_, err := s.build()
	return err
}

// built is the assembled simulation, ready to run.
type built struct {
	scenario Scenario
	network  *node.Network
	channel  *radio.Channel
	meter    *energy.Meter
	catalog  *workload.Catalog
	table    *region.Table
	source   workload.Source

	// Checkpoint support: the restore path needs direct access to the
	// scheduler, RNG registry, collector and mobility model, plus the
	// churn parameters so its processes can be re-armed at recorded times.
	sched         *sim.Scheduler
	rng           *sim.RNG
	coll          *metrics.Collector
	mob           mobility.Model
	churnRNG      *rand.Rand // nil when churn is off
	churnDowntime float64
}

// Proc kinds for the precinct layer's re-armable recurring processes.
const (
	procChurn       = "churn"
	procChurnRevive = "churn-revive"
	procFault       = "fault"
)

// armChurnTick registers the next churn decision at an absolute time.
// The tick body preserves the exact draw order of the original inline
// closure: victim draw, graceful draw, revive arming, then the gap draw
// for the next tick — resume equivalence depends on that order.
func (b *built) armChurnTick(at float64) {
	s := b.scenario
	b.sched.AtProc(sim.Proc{Kind: procChurn, Owner: -1}, at, func() {
		id := radio.NodeID(b.churnRNG.Intn(s.Nodes))
		if b.network.Peer(id).Alive() {
			if b.churnRNG.Float64() < s.ChurnGraceful {
				b.network.Quit(id)
			} else {
				b.network.Crash(id)
			}
			b.armChurnRevive(b.sched.Now()+b.churnDowntime, int(id))
		}
		b.armChurnTick(b.sched.Now() + b.churnRNG.ExpFloat64()*s.ChurnInterval)
	})
}

// armChurnRevive registers a churned-out peer's return.
func (b *built) armChurnRevive(at float64, node int) {
	id := radio.NodeID(node)
	b.sched.AtProc(sim.Proc{Kind: procChurnRevive, Owner: node}, at, func() {
		b.network.Revive(id)
	})
}

// armFault registers injected fault i at an absolute time. The fault
// index is the Proc owner, so a restore can re-arm exactly the faults
// that had not yet fired.
func (b *built) armFault(i int, at float64) error {
	if i < 0 || i >= len(b.scenario.Faults) {
		return fmt.Errorf("precinct: fault index %d out of range", i)
	}
	f := b.scenario.Faults[i]
	id := radio.NodeID(f.Node)
	var fn func()
	switch f.Kind {
	case "crash":
		fn = func() { b.network.Crash(id) }
	case "quit":
		fn = func() { b.network.Quit(id) }
	case "revive":
		fn = func() { b.network.Revive(id) }
	default:
		return fmt.Errorf("precinct: fault %d has unknown kind %q", i, f.Kind)
	}
	b.sched.AtProc(sim.Proc{Kind: procFault, Owner: i}, at, fn)
	return nil
}

// rearm re-registers one precinct-layer recurring process from a
// scheduler snapshot, delegating node-layer kinds to the network.
func (b *built) rearm(p sim.Proc, at float64) error {
	switch p.Kind {
	case procChurn:
		if b.churnRNG == nil {
			return fmt.Errorf("precinct: snapshot arms churn but churn is not configured")
		}
		b.armChurnTick(at)
		return nil
	case procChurnRevive:
		if p.Owner < 0 || p.Owner >= b.scenario.Nodes {
			return fmt.Errorf("precinct: churn revive for unknown node %d", p.Owner)
		}
		b.armChurnRevive(at, p.Owner)
		return nil
	case procFault:
		return b.armFault(p.Owner, at)
	default:
		return b.network.Rearm(p, at)
	}
}

// policyByName constructs a replacement policy through the cache
// registry. The zero Weights value keeps each policy's defaults.
func policyByName(name string, w Weights) (cache.Policy, error) {
	return cache.NewPolicy(name, cache.Params{
		Weights: cache.Weights{WR: w.WR, WD: w.WD, WS: w.WS},
	})
}

// PolicyNames lists the selectable Scenario.Policy values (every policy
// registered with the cache layer), sorted.
func PolicyNames() []string { return cache.Names() }

// lossStreams builds the per-sender frame-loss RNG streams the radio
// layer consumes. One stream per sender keeps loss draws independent of
// which shard executes a transmission, so sharded runs reproduce the
// sequential draw sequence exactly.
func lossStreams(rng *sim.RNG, n int) []*rand.Rand {
	out := make([]*rand.Rand, n)
	for i := range out {
		out[i] = rng.Stream(fmt.Sprintf("loss/%d", i))
	}
	return out
}

// buildMobility constructs the scenario's mobility model against a given
// RNG registry. Shard replicas call it with identically-seeded fresh
// registries: streams are derived by name, so each replica's model walks
// the exact trajectory the primary's does.
func (s Scenario) buildMobility(area geo.Rect, rng *sim.RNG) (mobility.Model, error) {
	model := s.MobilityModel
	if model == "" {
		if s.Mobile {
			model = "waypoint"
		} else {
			model = "static"
		}
	}
	switch model {
	case "waypoint":
		return mobility.NewWaypoint(s.Nodes, mobility.WaypointConfig{
			Area:     area,
			MinSpeed: 0.5,
			MaxSpeed: s.MaxSpeed,
			Pause:    s.Pause,
		}, rng)
	case "static":
		return mobility.NewGridStatic(s.Nodes, area, 0.25, rng.Stream("placement"))
	case "random-walk":
		return mobility.NewWalk(s.Nodes, mobility.WalkConfig{
			Area:     area,
			MinSpeed: 0.5,
			MaxSpeed: s.MaxSpeed,
			StepTime: 20,
		}, rng)
	case "gauss-markov":
		return mobility.NewGaussMarkov(s.Nodes, mobility.GaussMarkovConfig{
			Area:           area,
			MeanSpeed:      s.MaxSpeed,
			SpeedSigma:     s.MaxSpeed / 4,
			Alpha:          0.85,
			UpdateInterval: 1,
		}, rng)
	default:
		return nil, fmt.Errorf("precinct: unknown mobility model %q", model)
	}
}

// radioConfig maps the scenario's radio knobs onto the channel config.
func (s Scenario) radioConfig() radio.Config {
	cfg := radio.DefaultConfig()
	cfg.Range = s.Range
	cfg.Bandwidth = s.Bandwidth
	cfg.LossRate = s.LossRate
	cfg.BeaconInterval = s.BeaconInterval
	cfg.Collisions = s.Collisions
	cfg.LinearScan = s.LinearRadio
	return cfg
}

// build wires the scenario into a runnable simulation.
// buildWorkload constructs the catalog and the traffic source the
// scenario selects (DESIGN.md section 15). The default path makes
// exactly the calls the pre-Source code made — same catalog, same
// generator, no extra RNG streams — which is what keeps it
// byte-identical (TestWorkloadDefaultGolden). The rank-churn source
// registers its dedicated "workload/churn" stream here, at build time,
// so a restored RNG registry sees the same stream set the captured one
// had.
func (s Scenario) buildWorkload(rng *sim.RNG) (*workload.Catalog, workload.Source, error) {
	kind := s.Workload
	if kind == "" {
		kind = workload.KindDefault
	}
	if s.TracePath != "" && kind != workload.KindTrace {
		return nil, nil, fmt.Errorf("precinct: TracePath is set but the workload is %q, not %q", kind, workload.KindTrace)
	}
	if kind == workload.KindTrace {
		if s.TracePath == "" {
			return nil, nil, fmt.Errorf("precinct: workload %q requires TracePath", kind)
		}
		tr, err := workload.ReadTraceFile(s.TracePath)
		if err != nil {
			return nil, nil, err
		}
		src, err := workload.NewTraceSource(workload.TraceSourceConfig{
			Trace:           tr,
			Peers:           s.Nodes,
			RequestInterval: s.RequestInterval,
			UpdateInterval:  s.UpdateInterval,
		})
		if err != nil {
			return nil, nil, err
		}
		return src.Catalog(), src, nil
	}

	catalog, err := workload.NewCatalog(workload.CatalogConfig{
		Items: s.Items, MinSize: s.MinItemSize, MaxSize: s.MaxItemSize,
	})
	if err != nil {
		return nil, nil, err
	}
	gen, err := workload.NewGenerator(workload.GeneratorConfig{
		Catalog:         catalog,
		ZipfTheta:       s.ZipfTheta,
		UpdateZipfTheta: s.UpdateZipfTheta,
		RequestInterval: s.RequestInterval,
		UpdateInterval:  s.UpdateInterval,
	})
	if err != nil {
		return nil, nil, err
	}

	w := s.WorkloadCfg
	measured := s.Duration - s.Warmup
	switch kind {
	case workload.KindDefault:
		return catalog, workload.DefaultSource{Gen: gen}, nil

	case workload.KindFlashCrowd:
		at := w.FlashAt
		if at == 0 {
			at = s.Warmup + measured/3
		}
		dur := w.FlashDuration
		if dur == 0 {
			dur = measured / 4
		}
		hot := w.FlashHotset
		if hot == 0 {
			hot = max(1, s.Items/100)
		}
		boost := w.FlashBoost
		if boost == 0 {
			boost = 0.6
		}
		src, err := workload.NewFlashCrowd(workload.FlashCrowdConfig{
			Gen: gen, At: at, Duration: dur, Hotset: hot, Boost: boost, Seed: s.Seed,
		})
		if err != nil {
			return nil, nil, err
		}
		return catalog, src, nil

	case workload.KindDiurnal:
		period := w.DriftPeriod
		if period == 0 {
			period = measured
		}
		src, err := workload.NewDiurnal(workload.DiurnalConfig{Gen: gen, Period: period})
		if err != nil {
			return nil, nil, err
		}
		return catalog, src, nil

	case workload.KindHotspot:
		grid := w.HotspotGrid
		if grid == 0 {
			grid = 3
		}
		hot := w.HotspotHotset
		if hot == 0 {
			hot = max(1, s.Items/50)
		}
		boost := w.HotspotBoost
		if boost == 0 {
			boost = 0.5
		}
		src, err := workload.NewHotspot(workload.HotspotConfig{
			Gen: gen, AreaSide: s.AreaSide, Grid: grid, Hotset: hot, Boost: boost, Seed: s.Seed,
		})
		if err != nil {
			return nil, nil, err
		}
		return catalog, src, nil

	case workload.KindRankChurn:
		every := w.ChurnEvery
		if every == 0 {
			every = 60
		}
		swaps := w.ChurnSwaps
		if swaps == 0 {
			swaps = max(1, s.Items/20)
		}
		src, err := workload.NewRankChurn(workload.RankChurnConfig{
			Gen: gen, Every: every, Swaps: swaps, RNG: rng.Stream("workload/churn"),
		})
		if err != nil {
			return nil, nil, err
		}
		return catalog, src, nil

	default:
		return nil, nil, fmt.Errorf("precinct: unknown workload %q", s.Workload)
	}
}

// WorkloadKinds lists the selectable Scenario.Workload values, default
// first.
func WorkloadKinds() []string {
	return []string{
		workload.KindDefault, workload.KindTrace, workload.KindFlashCrowd,
		workload.KindDiurnal, workload.KindHotspot, workload.KindRankChurn,
	}
}

func (s Scenario) build() (*built, error) { return s.buildTraced(nil) }

// buildTraced wires the scenario with an optional protocol tracer.
func (s Scenario) buildTraced(tracer trace.Tracer) (*built, error) {
	return s.buildFull(tracer, true)
}

// buildFull wires the scenario. When arm is false the initial recurring
// processes (churn tick, injected faults) are created but not scheduled:
// the checkpoint restore path re-arms them at the snapshot's recorded
// times instead (scheduling a past fault time would panic). All random
// streams are still created either way, so a restored RNG registry sees
// the same stream set the captured one had.
func (s Scenario) buildFull(tracer trace.Tracer, arm bool) (*built, error) {
	if s.Nodes <= 0 {
		return nil, fmt.Errorf("precinct: nodes must be positive, got %d", s.Nodes)
	}
	if s.AreaSide <= 0 {
		return nil, fmt.Errorf("precinct: area side must be positive, got %v", s.AreaSide)
	}
	if s.Duration <= 0 {
		return nil, fmt.Errorf("precinct: duration must be positive, got %v", s.Duration)
	}
	if s.Warmup < 0 || s.Warmup >= s.Duration {
		return nil, fmt.Errorf("precinct: warmup %v must be in [0, duration)", s.Warmup)
	}
	if s.Shards < 0 {
		return nil, fmt.Errorf("precinct: shards must be non-negative, got %d", s.Shards)
	}
	if s.Shards > 1 {
		if s.Shards > s.Nodes {
			return nil, fmt.Errorf("precinct: %d shards exceed %d nodes", s.Shards, s.Nodes)
		}
		if s.BeaconInterval > 0 {
			return nil, fmt.Errorf("precinct: sharded runs require perfect location knowledge (BeaconInterval 0)")
		}
		if s.AdaptiveRegions {
			return nil, fmt.Errorf("precinct: sharded runs do not support adaptive region management")
		}
		if s.Workload != "" && s.Workload != workload.KindDefault {
			return nil, fmt.Errorf("precinct: sharded runs support only the default workload, got %q", s.Workload)
		}
	}
	switch s.ShardBalance {
	case "", ShardBalanceLoad, ShardBalanceCount:
	default:
		return nil, fmt.Errorf("precinct: unknown shard balance %q (want %q or %q)", s.ShardBalance, ShardBalanceLoad, ShardBalanceCount)
	}

	rng := sim.NewRNG(s.Seed)
	sched := sim.NewScheduler()
	if s.Shards > 1 {
		// Shard schedulers share one counter set; pre-size it for every
		// creator (-1..Nodes-1) so concurrent draws never grow the slice.
		sched = sim.NewSchedulerWithCounters(sim.NewCounters(s.Nodes))
		sched.SplitGlobal()
	}
	area := geo.NewRect(geo.Pt(0, 0), geo.Pt(s.AreaSide, s.AreaSide))

	mob, err := s.buildMobility(area, rng)
	if err != nil {
		return nil, err
	}

	meter, err := energy.NewMeter(s.Nodes, energy.DefaultModel())
	if err != nil {
		return nil, err
	}

	ch, err := radio.New(s.radioConfig(), sched, mob, meter, lossStreams(rng, s.Nodes))
	if err != nil {
		return nil, err
	}
	if s.NoPooling {
		// The reference path allocates fresh events, deliveries and
		// messages everywhere the pooled path recycles them.
		sched.DisableRecycling()
		ch.DisableRecycling()
	}

	var table *region.Table
	if s.VoronoiRegions {
		if s.AdaptiveRegions {
			return nil, fmt.Errorf("precinct: adaptive region management requires a grid partition")
		}
		seedRNG := rng.Stream("voronoi")
		seeds := make([]geo.Point, s.Regions)
		for i := range seeds {
			seeds[i] = geo.Pt(
				area.Min.X+seedRNG.Float64()*area.Width(),
				area.Min.Y+seedRNG.Float64()*area.Height(),
			)
		}
		table, err = region.NewVoronoi(area, seeds)
	} else {
		table, err = region.NewGridN(area, s.Regions)
	}
	if err != nil {
		return nil, err
	}

	catalog, src, err := s.buildWorkload(rng)
	if err != nil {
		return nil, err
	}

	retrieval, err := node.ParseRetrievalScheme(s.Retrieval)
	if err != nil {
		return nil, err
	}
	scheme, err := consistency.ParseScheme(s.Consistency)
	if err != nil {
		return nil, err
	}
	policy, err := policyByName(s.Policy, s.GDLDWeights)
	if err != nil {
		return nil, err
	}

	cfg := node.DefaultConfig()
	cfg.Retrieval = retrieval
	cfg.Consistency = consistency.Config{
		Scheme:     scheme,
		Alpha:      s.TTRAlpha,
		InitialTTR: s.RequestInterval,
	}
	cfg.Policy = policy
	cfg.LinearCache = s.LinearCache
	cfg.NoPooling = s.NoPooling
	cfg.LegacyLayout = s.LegacyLayout
	cfg.EnRoute = s.EnRoute
	cfg.Replication = s.Replication
	cfg.Replicas = s.Replicas
	cfg.Warmup = s.Warmup
	if s.AdaptiveRegions {
		cfg.Adaptive.Enabled = true
		if s.AdaptiveInterval > 0 {
			cfg.Adaptive.Interval = s.AdaptiveInterval
		}
		if s.AdaptiveSplitAbove > 0 {
			cfg.Adaptive.SplitAbove = s.AdaptiveSplitAbove
		}
		if s.AdaptiveMergeBelow > 0 {
			cfg.Adaptive.MergeBelow = s.AdaptiveMergeBelow
		}
	}
	switch {
	case s.CacheFraction > 0:
		cfg.CacheBytes = int64(s.CacheFraction * float64(catalog.TotalSize()))
	case s.CacheFraction < 0:
		cfg.CacheBytes = 0
	default:
		cfg.CacheBytes = s.CacheBytes
	}

	coll := newCollector(s)
	if s.RequestInterval > 0 {
		// Pre-size the latency buffer for the expected measured-request
		// volume so large-N runs do not regrow it inside the event loop
		// (a capped collector clamps the reservation to its cap).
		expected := float64(s.Nodes) * (s.Duration - s.Warmup) / s.RequestInterval
		if max := 1 << 21; expected > float64(max) {
			expected = float64(max)
		}
		coll.Reserve(int(expected))
	}
	network, err := node.New(node.Options{
		Config:    cfg,
		Scheduler: sched,
		Channel:   ch,
		Regions:   table,
		Catalog:   catalog,
		Source:    src,
		Collector: coll,
		Meter:     meter,
		RNG:       rng,
		Tracer:    tracer,
	})
	if err != nil {
		return nil, err
	}
	if s.ChurnInterval < 0 || s.ChurnDowntime < 0 || s.ChurnGraceful < 0 || s.ChurnGraceful > 1 {
		return nil, fmt.Errorf("precinct: invalid churn parameters")
	}
	b := &built{
		scenario: s, network: network, channel: ch,
		meter: meter, catalog: catalog, table: table, source: src,
		sched: sched, rng: rng, coll: coll, mob: mob,
	}
	if s.ChurnInterval > 0 {
		b.churnRNG = rng.Stream("churn")
		b.churnDowntime = s.ChurnDowntime
		if b.churnDowntime == 0 {
			b.churnDowntime = 60
		}
		if arm {
			b.armChurnTick(sched.Now() + b.churnRNG.ExpFloat64()*s.ChurnInterval)
		}
	}
	for i, f := range s.Faults {
		if f.Node < 0 || f.Node >= s.Nodes {
			return nil, fmt.Errorf("precinct: fault %d targets unknown node %d", i, f.Node)
		}
		if f.At < 0 || f.At > s.Duration {
			return nil, fmt.Errorf("precinct: fault %d at %v outside the run", i, f.At)
		}
		if f.Kind != "crash" && f.Kind != "quit" && f.Kind != "revive" {
			return nil, fmt.Errorf("precinct: fault %d has unknown kind %q", i, f.Kind)
		}
		if arm {
			if err := b.armFault(i, f.At); err != nil {
				return nil, err
			}
		}
	}
	return b, nil
}

// Run executes the scenario to completion and returns its results.
func Run(s Scenario) (Result, error) {
	return run(s, nil)
}

// RunTraced executes the scenario while streaming protocol events —
// request lifecycles, handoffs, updates, node failures — as JSON lines to
// w. The stream is flushed before RunTraced returns.
func RunTraced(s Scenario, w io.Writer) (Result, error) {
	tw := trace.NewWriter(w)
	res, err := run(s, tw)
	if ferr := tw.Flush(); err == nil {
		err = ferr
	}
	return res, err
}

func run(s Scenario, tracer trace.Tracer) (Result, error) {
	res, _, err := runWithStats(s, tracer)
	return res, err
}

// RunStats carries execution statistics of a completed run that are
// deliberately kept out of Result (which golden fixtures and the
// equivalence suites compare with DeepEqual): scheduler throughput
// inputs for the scale benchmarks.
type RunStats struct {
	// Events is the number of discrete events the scheduler executed.
	Events uint64

	// Parallel-run protocol counters, all zero for sequential runs.
	// Windows is the number of concurrent execution windows;
	// EmptyShardWindows counts shard-windows skipped because the shard
	// had nothing due before the horizon. BarrierDrains is the number
	// of single-threaded barrier rounds (global events and end-of-run
	// instants); OutboxFlushes the number of cross-shard exchange
	// rounds, moving RemoteDeliveries deliveries in total.
	Windows           uint64
	EmptyShardWindows uint64
	BarrierDrains     uint64
	OutboxFlushes     uint64
	RemoteDeliveries  uint64

	// ShardEvents is the number of events each shard's scheduler fired;
	// ShardLoads the probe-measured weight assigned to each shard under
	// ShardBalance "load" (nil under "count"). Together they quantify
	// how balanced the split actually was.
	ShardEvents []uint64
	ShardLoads  []uint64
}

// RunWithStats executes the scenario like Run and additionally reports
// execution statistics (event counts) for throughput measurement.
func RunWithStats(s Scenario) (Result, RunStats, error) {
	return runWithStats(s, nil)
}

func runWithStats(s Scenario, tracer trace.Tracer) (Result, RunStats, error) {
	if s.Shards > 1 {
		return runParallel(s, tracer)
	}
	b, err := s.buildTraced(tracer)
	if err != nil {
		return Result{}, RunStats{}, err
	}
	rep := b.network.Run(s.Duration)
	return Result{
		Scenario: s,
		Report:   fromMetrics(rep),
		Protocol: fromStats(b.network.Stats()),
		Radio:    fromRadio(b.channel.Stats()),
	}, RunStats{Events: b.sched.Executed()}, nil
}
