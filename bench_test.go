package precinct

// Benchmarks regenerating every figure of the paper's evaluation section
// at a reduced scale (fewer simulated seconds and nodes than the
// paper-scale `precinct-bench` run, so `go test -bench=.` stays tractable).
// Each benchmark reports the figure's headline metrics through
// b.ReportMetric, so the shape — who wins and by roughly what factor — is
// visible straight from the bench output. The ablation benchmarks cover
// the design choices DESIGN.md calls out: GD-LD weights, replica regions,
// TTR smoothing and en-route answering.

import (
	"fmt"
	"testing"
)

// benchConfig shrinks experiments enough to iterate quickly while keeping
// the comparisons meaningful.
func benchConfig() ExperimentConfig {
	return ExperimentConfig{
		Seed:     1,
		Duration: 300,
		Warmup:   100,
		Nodes:    40,
		Items:    200,
	}
}

// lastY returns the final point of a series (the largest cache size /
// node count — where the paper's gaps are widest).
func lastY(s Series) float64 {
	return s.Y[len(s.Y)-1]
}

func BenchmarkFig4LatencyVsCacheSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig4, _, err := Fig4And5(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lastY(fig4.Series[0]), "gdld-latency-s")
		b.ReportMetric(lastY(fig4.Series[1]), "gdsize-latency-s")
	}
}

func BenchmarkFig5ByteHitRatioVsCacheSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, fig5, err := Fig4And5(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lastY(fig5.Series[0]), "gdld-bhr")
		b.ReportMetric(lastY(fig5.Series[1]), "gdsize-bhr")
	}
}

func BenchmarkFig6ConsistencyOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig6, _, _, err := Fig6To8(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		// Ratio 1 (highest update rate), where plain-push is worst.
		b.ReportMetric(fig6.Series[0].Y[0], "plainpush-msgs")
		b.ReportMetric(fig6.Series[1].Y[0], "pullevery-msgs")
		b.ReportMetric(fig6.Series[2].Y[0], "adaptive-msgs")
	}
}

func BenchmarkFig7FalseHitRatio(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, fig7, _, err := Fig6To8(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(fig7.Series[0].Y[0], "plainpush-fhr")
		b.ReportMetric(fig7.Series[1].Y[0], "pullevery-fhr")
		b.ReportMetric(fig7.Series[2].Y[0], "adaptive-fhr")
	}
}

func BenchmarkFig8ConsistencyLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, _, fig8, err := Fig6To8(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(fig8.Series[0].Y[0], "plainpush-latency-s")
		b.ReportMetric(fig8.Series[1].Y[0], "pullevery-latency-s")
		b.ReportMetric(fig8.Series[2].Y[0], "adaptive-latency-s")
	}
}

func BenchmarkFig9aEnergyVsNodes(b *testing.B) {
	cfg := ExperimentConfig{Seed: 1, Duration: 400}
	for i := 0; i < b.N; i++ {
		fig, err := Fig9a(cfg)
		if err != nil {
			b.Fatal(err)
		}
		// Series: PReCinCt theory, PReCinCt sim, Flooding theory,
		// Flooding sim; report the largest node count.
		b.ReportMetric(lastY(fig.Series[1]), "precinct-mJ")
		b.ReportMetric(lastY(fig.Series[3]), "flooding-mJ")
	}
}

func BenchmarkFig9bEnergyVsRegions(b *testing.B) {
	cfg := ExperimentConfig{Seed: 1, Duration: 400}
	for i := 0; i < b.N; i++ {
		fig, err := Fig9b(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(fig.Series[1].Y[0], "regions1-mJ")
		b.ReportMetric(lastY(fig.Series[1]), "regions25-mJ")
	}
}

func BenchmarkExtRetrievalSchemes(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		fig, err := ExtRetrievalSchemes(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lastY(fig.Series[0]), "precinct-mJ")
		b.ReportMetric(lastY(fig.Series[1]), "flooding-mJ")
		b.ReportMetric(lastY(fig.Series[2]), "ring-mJ")
	}
}

// BenchmarkRunScenario measures one full end-to-end simulation at
// growing node counts — the macro view of the radio hot path. The
// spatial grid index is on by default; the "/linear" variants run the
// retained reference scan for comparison.
func BenchmarkRunScenario(b *testing.B) {
	for _, linear := range []bool{false, true} {
		for _, n := range []int{80, 160, 320, 640} {
			name := fmt.Sprintf("grid/n=%d", n)
			if linear {
				name = fmt.Sprintf("linear/n=%d", n)
			}
			b.Run(name, func(b *testing.B) {
				s := DefaultScenario()
				s.Nodes = n
				s.Items = 200
				s.Duration = 120
				s.Warmup = 30
				s.LinearRadio = linear
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := Run(s); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// benchScenario is the shared base of the ablation benchmarks.
func benchScenario() Scenario {
	s := DefaultScenario()
	s.Nodes = 40
	s.Items = 200
	s.Duration = 300
	s.Warmup = 100
	return s
}

func BenchmarkAblationGDLDWeights(b *testing.B) {
	// Zero out one GD-LD utility term at a time; the latency deltas show
	// which term carries the policy.
	variants := []struct {
		name       string
		wr, wd, ws float64
	}{
		{"full", 1, 1.0 / 400, 4096},
		{"no-popularity", 0, 1.0 / 400, 4096},
		{"no-distance", 1, 0, 4096},
		{"no-size", 1, 1.0 / 400, 0},
	}
	for i := 0; i < b.N; i++ {
		var scenarios []Scenario
		for _, v := range variants {
			s := benchScenario()
			s.Name = "gdld/" + v.name
			s.GDLDWeights = Weights{WR: v.wr, WD: v.wd, WS: v.ws}
			scenarios = append(scenarios, s)
		}
		results, err := Sweep(scenarios, 0)
		if err != nil {
			b.Fatal(err)
		}
		for vi, v := range variants {
			b.ReportMetric(results[vi].Report.MeanLatency, v.name+"-latency-s")
		}
	}
}

func BenchmarkAblationReplication(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var scenarios []Scenario
		for _, repl := range []bool{true, false} {
			s := benchScenario()
			s.Name = fmt.Sprintf("replication=%v", repl)
			s.Replication = repl
			// Crash a third of the peers mid-run.
			for n := 0; n < s.Nodes/3; n++ {
				s.Faults = append(s.Faults, Fault{At: 150, Node: n * 3, Kind: "crash"})
			}
			scenarios = append(scenarios, s)
		}
		results, err := Sweep(scenarios, 0)
		if err != nil {
			b.Fatal(err)
		}
		avail := func(r Report) float64 {
			if r.Requests == 0 {
				return 1
			}
			return float64(r.Completed) / float64(r.Requests)
		}
		b.ReportMetric(avail(results[0].Report), "with-replicas-avail")
		b.ReportMetric(avail(results[1].Report), "without-replicas-avail")
	}
}

func BenchmarkAblationTTRAlpha(b *testing.B) {
	alphas := []float64{0, 0.5, 0.9}
	for i := 0; i < b.N; i++ {
		var scenarios []Scenario
		for _, a := range alphas {
			s := benchScenario()
			s.Name = fmt.Sprintf("alpha=%.1f", a)
			s.Consistency = "push-adaptive-pull"
			s.UpdateInterval = 60
			s.TTRAlpha = a
			scenarios = append(scenarios, s)
		}
		results, err := Sweep(scenarios, 0)
		if err != nil {
			b.Fatal(err)
		}
		for ai, a := range alphas {
			b.ReportMetric(results[ai].Report.FalseHitRatio, fmt.Sprintf("alpha%.1f-fhr", a))
			b.ReportMetric(float64(results[ai].Report.PollsIssued), fmt.Sprintf("alpha%.1f-polls", a))
		}
	}
}

func BenchmarkAblationEnRoute(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var scenarios []Scenario
		for _, enroute := range []bool{true, false} {
			s := benchScenario()
			s.Name = fmt.Sprintf("enroute=%v", enroute)
			s.EnRoute = enroute
			scenarios = append(scenarios, s)
		}
		results, err := Sweep(scenarios, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(results[0].Report.MeanLatency, "enroute-latency-s")
		b.ReportMetric(results[1].Report.MeanLatency, "no-enroute-latency-s")
	}
}

func BenchmarkAblationBeaconStaleness(b *testing.B) {
	// The paper argues routing to regions is "robust to errors in
	// location measurement": availability should degrade only mildly as
	// neighbor position knowledge goes stale.
	intervals := []float64{0, 2, 10}
	for i := 0; i < b.N; i++ {
		var scenarios []Scenario
		for _, iv := range intervals {
			s := benchScenario()
			s.Name = fmt.Sprintf("beacon=%.0fs", iv)
			s.BeaconInterval = iv
			scenarios = append(scenarios, s)
		}
		results, err := Sweep(scenarios, 0)
		if err != nil {
			b.Fatal(err)
		}
		for vi, iv := range intervals {
			r := results[vi].Report
			avail := 1.0
			if r.Requests > 0 {
				avail = float64(r.Completed) / float64(r.Requests)
			}
			b.ReportMetric(avail, fmt.Sprintf("beacon%.0fs-avail", iv))
		}
	}
}

func BenchmarkAblationAdaptiveRegions(b *testing.B) {
	// Dynamic region management (the paper's future work) vs the static
	// 9-region grid, on a deliberately mismatched initial partition
	// (4 regions for 40 peers).
	for i := 0; i < b.N; i++ {
		static := benchScenario()
		static.Name = "static-4-regions"
		static.Regions = 4
		adaptive := static
		adaptive.Name = "adaptive"
		adaptive.AdaptiveRegions = true
		adaptive.AdaptiveInterval = 30
		adaptive.AdaptiveSplitAbove = 12
		adaptive.AdaptiveMergeBelow = 3
		results, err := Sweep([]Scenario{static, adaptive}, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(results[0].Report.EnergyPerRequest, "static-mJ")
		b.ReportMetric(results[1].Report.EnergyPerRequest, "adaptive-mJ")
	}
}

func BenchmarkAblationVoronoiPartition(b *testing.B) {
	// The paper's general region shape (center + perimeter) vs the
	// rectangular grid, on identical workloads.
	for i := 0; i < b.N; i++ {
		grid := benchScenario()
		grid.Name = "grid"
		voronoi := benchScenario()
		voronoi.Name = "voronoi"
		voronoi.VoronoiRegions = true
		results, err := Sweep([]Scenario{grid, voronoi}, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(results[0].Report.MeanLatency, "grid-latency-s")
		b.ReportMetric(results[1].Report.MeanLatency, "voronoi-latency-s")
	}
}
