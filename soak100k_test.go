//go:build soak

package precinct_test

// The 100k-node memory-ceiling soak (DESIGN.md section 14): the largest
// tier the struct-of-arrays layout is specified against. One 100000-node
// run at the paper's density with 30% frame loss and the hybrid
// consistency scheme — the exact acceptance shape `precinct-check -scale
// -max-nodes 100000 -start 8` replays — executed under the full runtime
// invariant catalog while a sampler watches the process's resident set.
// The run must finish clean AND hold RSS under the 4 GiB ceiling; a
// layout regression that leaks per-node state shows up here long before
// it breaks correctness. Run via `make soak-100k`.

import (
	"bufio"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"precinct"
	"precinct/internal/invariant/fuzzgen"
)

// rssCeilingBytes is the steady-state resident-set ceiling the 100k tier
// must hold (ROADMAP scale item; DESIGN.md section 14).
const rssCeilingBytes = 4 << 30

// readRSSBytes reads the process's current resident set from
// /proc/self/status (VmRSS, reported in kB). Returns 0 on platforms
// without procfs, which disables the ceiling assertion.
func readRSSBytes(t *testing.T) uint64 {
	t.Helper()
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmRSS:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb << 10
	}
	return 0
}

// TestSoak100kRSSCeiling drives the 100000-node acceptance scenario
// under all runtime checkers with a 2-second RSS sampler alongside, and
// requires a clean invariant report, real traffic, and a peak resident
// set at or below the 4 GiB ceiling.
func TestSoak100kRSSCeiling(t *testing.T) {
	sc := fuzzgen.ExpandScale(8, 100000)
	if sc.Nodes != 100000 || sc.LossRate != 0.3 || sc.Consistency != "push-adaptive-pull" {
		t.Fatalf("seed 8 no longer expands to the acceptance shape: n=%d loss=%g cons=%q",
			sc.Nodes, sc.LossRate, sc.Consistency)
	}

	if readRSSBytes(t) == 0 {
		t.Log("no /proc/self/status VmRSS on this platform; ceiling assertion disabled")
	}
	var peak atomic.Uint64
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		tick := time.NewTicker(2 * time.Second)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				if rss := readRSSBytes(t); rss > peak.Load() {
					peak.Store(rss)
				}
			}
		}
	}()

	res, inv, err := precinct.RunChecked(sc)
	close(stop)
	<-done
	if err != nil {
		t.Fatalf("RunChecked: %v", err)
	}
	if !inv.Ok() {
		for _, v := range inv.Violations {
			t.Errorf("violation: %s", v)
		}
		t.Fatalf("%s", inv)
	}
	if inv.Sweeps == 0 || inv.Events == 0 {
		t.Fatalf("checkers did not run: %s", inv)
	}
	if res.Report.Requests < 100000 {
		t.Fatalf("only %d requests; the 100k soak is not exercising the system", res.Report.Requests)
	}
	if rss := peak.Load(); rss > rssCeilingBytes {
		t.Errorf("peak RSS %.2f GiB exceeds the %.0f GiB ceiling",
			float64(rss)/(1<<30), float64(rssCeilingBytes)/(1<<30))
	}
	t.Logf("soak-100k: %d requests, hit ratio %.3f, %d sweeps / %d event checks clean, peak RSS %.2f GiB",
		res.Report.Requests, res.Report.ByteHitRatio, inv.Sweeps, inv.Events,
		float64(peak.Load())/(1<<30))
}
