// Command precinct-sim runs one PReCinCt simulation scenario and prints
// its metrics. The scenario comes from flags, from a JSON config file
// (-config), or both — explicitly set flags override the file.
//
// Examples:
//
//	precinct-sim -nodes 80 -speed 6 -policy gd-ld -cache-frac 0.015
//	precinct-sim -consistency push-adaptive-pull -update-interval 60
//	precinct-sim -retrieval flooding -static -area 600 -cache-frac -1
//	precinct-sim -workload flash-crowd -nodes 60
//	precinct-sim -workload trace -workload-trace internal/workload/testdata/sample_trace.csv
//	precinct-sim -config scenario.json -seed 7
//	precinct-sim -save-config scenario.json -nodes 120
//	precinct-sim -check -nodes 40 -duration 300
//	precinct-sim -checkpoint-dir ckpt -duration 3600
//	precinct-sim -checkpoint-dir ckpt -resume
//
// With -check the run executes under the full runtime invariant catalog
// (DESIGN.md section 9); any violation is printed and the process exits
// with status 2. With -checkpoint-dir the run writes periodic snapshots
// (DESIGN.md section 10) that -resume continues from after an
// interruption — the resumed run is bit-identical to an uninterrupted
// one.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"

	"precinct"
)

// startProfiles starts a CPU profile when cpu is non-empty and returns a
// stop function that finishes it and writes a heap profile to mem (when
// non-empty). The heap profile is taken after a GC so it shows live
// retention, not garbage.
func startProfiles(cpu, mem string) (func(), error) {
	var cpuFile *os.File
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				fmt.Fprintln(os.Stderr, "precinct-sim:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "precinct-sim:", err)
			}
		}
	}, nil
}

func main() {
	def := precinct.DefaultScenario()

	configFile := flag.String("config", "", "load the scenario from a JSON file (explicit flags override it)")
	saveConfig := flag.String("save-config", "", "write the effective scenario as JSON and exit")
	seed := flag.Int64("seed", def.Seed, "random seed")
	nodes := flag.Int("nodes", def.Nodes, "number of mobile peers")
	area := flag.Float64("area", def.AreaSide, "service area side in meters")
	regions := flag.Int("regions", def.Regions, "number of grid regions")
	static := flag.Bool("static", false, "static placement instead of random waypoint")
	mobModel := flag.String("mobility", "", "mobility model: waypoint | static | random-walk | gauss-markov (overrides -static)")
	speed := flag.Float64("speed", def.MaxSpeed, "waypoint max speed in m/s")
	pause := flag.Float64("pause", def.Pause, "waypoint pause time in s")
	rng := flag.Float64("range", def.Range, "radio range in meters")
	loss := flag.Float64("loss", 0, "frame loss probability")
	beacon := flag.Float64("beacon", 0, "neighbor position beacon interval in s (0 = perfect knowledge)")
	items := flag.Int("items", def.Items, "catalog size")
	theta := flag.Float64("zipf", def.ZipfTheta, "request Zipf skew")
	reqInt := flag.Float64("request-interval", def.RequestInterval, "mean request gap per peer in s")
	updInt := flag.Float64("update-interval", def.UpdateInterval, "mean update gap per peer in s (0 disables)")
	workloadF := flag.String("workload", def.Workload, "request workload: default | trace | flash-crowd | diurnal | hotspot | rank-churn")
	workloadTrace := flag.String("workload-trace", "", "cachelib-format trace CSV for -workload trace")
	retrieval := flag.String("retrieval", def.Retrieval, "precinct | flooding | expanding-ring")
	consistencyF := flag.String("consistency", def.Consistency, "none | plain-push | pull-every-time | push-adaptive-pull")
	alpha := flag.Float64("ttr-alpha", def.TTRAlpha, "TTR smoothing factor in [0,1)")
	policy := flag.String("policy", def.Policy, "replacement policy: "+strings.Join(precinct.PolicyNames(), " | "))
	listPolicies := flag.Bool("list-policies", false, "print the registered replacement policies, one per line, and exit")
	cacheFrac := flag.Float64("cache-frac", def.CacheFraction, "cache size as fraction of catalog (negative disables)")
	enRoute := flag.Bool("enroute", def.EnRoute, "en-route cache answering")
	replication := flag.Bool("replication", def.Replication, "maintain replica regions")
	replicas := flag.Int("replicas", def.Replicas, "replica regions per key (0 or 1 = the paper's single replica region)")
	adaptive := flag.Bool("adaptive", false, "dynamic region management")
	warmup := flag.Float64("warmup", def.Warmup, "warmup time in s (excluded from metrics)")
	duration := flag.Float64("duration", def.Duration, "total simulated time in s")
	shards := flag.Int("shards", def.Shards, "run the event loop sharded over this many goroutines (0 or 1 = sequential)")
	churn := flag.Float64("churn", 0, "mean seconds between churn departures (0 disables)")
	churnDown := flag.Float64("churn-downtime", 60, "seconds a churned peer stays away")
	churnGraceful := flag.Float64("churn-graceful", 0.8, "fraction of graceful departures")
	traceFile := flag.String("trace", "", "write a JSONL protocol event trace to this file")
	check := flag.Bool("check", false, "run with runtime invariant checkers; exit 2 on any violation")
	ckptDir := flag.String("checkpoint-dir", "", "write periodic snapshots to this directory (must exist)")
	ckptInterval := flag.Float64("checkpoint-interval", 0, "target simulated seconds between snapshots (0 = 60)")
	resume := flag.Bool("resume", false, "resume from a snapshot in -checkpoint-dir if one exists")
	stopAfter := flag.Float64("stop-after", 0, "interrupt at the first snapshot boundary at or after this simulated time")
	verbose := flag.Bool("v", false, "print protocol and radio counters too")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to `file`")
	memProfile := flag.String("memprofile", "", "write a heap profile to `file` after the run")
	flag.Parse()

	if *listPolicies {
		for _, name := range precinct.PolicyNames() {
			fmt.Println(name)
		}
		return
	}

	if err := validateCheckpointFlags(*ckptDir, *ckptInterval, *resume, *stopAfter); err != nil {
		die(err)
	}

	s := def
	if *configFile != "" {
		loaded, err := precinct.LoadScenarioFile(*configFile)
		if err != nil {
			die(err)
		}
		s = loaded
	}

	// Apply only the flags the user explicitly set, so a config file's
	// values survive unless overridden on the command line.
	overrides := map[string]func(){
		"seed":             func() { s.Seed = *seed },
		"nodes":            func() { s.Nodes = *nodes },
		"area":             func() { s.AreaSide = *area },
		"regions":          func() { s.Regions = *regions },
		"static":           func() { s.Mobile = !*static },
		"mobility":         func() { s.MobilityModel = *mobModel },
		"speed":            func() { s.MaxSpeed = *speed },
		"pause":            func() { s.Pause = *pause },
		"range":            func() { s.Range = *rng },
		"loss":             func() { s.LossRate = *loss },
		"beacon":           func() { s.BeaconInterval = *beacon },
		"items":            func() { s.Items = *items },
		"zipf":             func() { s.ZipfTheta = *theta },
		"request-interval": func() { s.RequestInterval = *reqInt },
		"update-interval":  func() { s.UpdateInterval = *updInt },
		"workload":         func() { s.Workload = *workloadF },
		"workload-trace":   func() { s.TracePath = *workloadTrace },
		"retrieval":        func() { s.Retrieval = *retrieval },
		"consistency":      func() { s.Consistency = *consistencyF },
		"ttr-alpha":        func() { s.TTRAlpha = *alpha },
		"policy":           func() { s.Policy = *policy },
		"cache-frac":       func() { s.CacheFraction = *cacheFrac },
		"enroute":          func() { s.EnRoute = *enRoute },
		"replication":      func() { s.Replication = *replication },
		"replicas":         func() { s.Replicas = *replicas },
		"adaptive":         func() { s.AdaptiveRegions = *adaptive },
		"warmup":           func() { s.Warmup = *warmup },
		"duration":         func() { s.Duration = *duration },
		"shards":           func() { s.Shards = *shards },
		"churn":            func() { s.ChurnInterval = *churn },
		"churn-downtime":   func() { s.ChurnDowntime = *churnDown },
		"churn-graceful":   func() { s.ChurnGraceful = *churnGraceful },
	}
	if *configFile == "" {
		// Without a config file every flag applies (each default equals
		// the scenario default anyway).
		for _, apply := range overrides {
			apply()
		}
	} else {
		flag.Visit(func(f *flag.Flag) {
			if apply, ok := overrides[f.Name]; ok {
				apply()
			}
		})
	}

	if *saveConfig != "" {
		if err := precinct.SaveScenarioFile(s, *saveConfig); err != nil {
			die(err)
		}
		fmt.Println("wrote", *saveConfig)
		return
	}

	if *check && *traceFile != "" {
		die(fmt.Errorf("-check and -trace are mutually exclusive"))
	}
	var traceW *os.File
	if *traceFile != "" {
		f, ferr := os.Create(*traceFile)
		if ferr != nil {
			die(ferr)
		}
		traceW = f
	}

	stopProfiles, perr := startProfiles(*cpuProfile, *memProfile)
	if perr != nil {
		die(perr)
	}

	var res precinct.Result
	var inv precinct.InvariantReport
	var err error
	switch {
	case *ckptDir != "":
		opts := precinct.CheckpointOptions{
			Dir:       *ckptDir,
			Interval:  *ckptInterval,
			Resume:    *resume,
			StopAfter: *stopAfter,
		}
		if traceW != nil {
			opts.TraceWriter = traceW
		}
		if *check {
			res, inv, err = precinct.RunCheckpointedChecked(s, opts)
		} else {
			res, err = precinct.RunCheckpointed(s, opts)
		}
	case *check:
		res, inv, err = precinct.RunChecked(s)
	case traceW != nil:
		res, err = precinct.RunTraced(s, traceW)
	default:
		res, err = precinct.Run(s)
	}
	// Profiles are finalized before the invariant exit path below, which
	// leaves main through os.Exit and would skip a deferred stop.
	stopProfiles()
	if traceW != nil {
		if cerr := traceW.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		die(err)
	}
	report(s, res, *verbose)
	if *check {
		fmt.Println(inv)
		if !inv.Ok() {
			for _, v := range inv.Violations {
				fmt.Fprintln(os.Stderr, "precinct-sim:", v)
			}
			os.Exit(2)
		}
	}
}

// validateCheckpointFlags rejects inconsistent or unusable checkpoint
// flag combinations up front, with a descriptive error instead of a
// mid-run failure.
func validateCheckpointFlags(dir string, interval float64, resume bool, stopAfter float64) error {
	if dir == "" {
		switch {
		case resume:
			return fmt.Errorf("-resume requires -checkpoint-dir")
		case stopAfter != 0:
			return fmt.Errorf("-stop-after requires -checkpoint-dir")
		case interval != 0:
			return fmt.Errorf("-checkpoint-interval requires -checkpoint-dir")
		}
		return nil
	}
	info, err := os.Stat(dir)
	if err != nil {
		return fmt.Errorf("-checkpoint-dir: %w", err)
	}
	if !info.IsDir() {
		return fmt.Errorf("-checkpoint-dir: %s is not a directory", dir)
	}
	if interval < 0 {
		return fmt.Errorf("-checkpoint-interval must not be negative")
	}
	if stopAfter < 0 {
		return fmt.Errorf("-stop-after must not be negative")
	}
	return nil
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "precinct-sim:", err)
	os.Exit(1)
}

func report(s precinct.Scenario, res precinct.Result, verbose bool) {
	r := res.Report
	fmt.Printf("scenario: %d nodes, %.0f m area, %d regions, retrieval=%s, consistency=%s, policy=%s\n",
		s.Nodes, s.AreaSide, s.Regions, s.Retrieval, s.Consistency, s.Policy)
	if s.Replication && s.Replicas > 1 {
		fmt.Printf("replicas:           %d regions per key\n", s.Replicas)
	}
	if s.Workload != "" && s.Workload != "default" {
		if s.Workload == "trace" {
			fmt.Printf("workload:           trace (%s)\n", s.TracePath)
		} else {
			fmt.Printf("workload:           %s\n", s.Workload)
		}
	}
	fmt.Printf("requests:           %d (completed %d, failed %d)\n", r.Requests, r.Completed, r.Failures)
	classes := make([]string, 0, len(r.ByClass))
	for c := range r.ByClass {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for _, c := range classes {
		if lat, ok := r.MeanLatencyByClass[c]; ok {
			fmt.Printf("  %-17s %d (mean %.3f s)\n", c+":", r.ByClass[c], lat)
		} else {
			fmt.Printf("  %-17s %d\n", c+":", r.ByClass[c])
		}
	}
	fmt.Printf("latency:            mean %.3f s, p50 %.3f s, p95 %.3f s, max %.3f s\n",
		r.MeanLatency, r.P50Latency, r.P95Latency, r.MaxLatency)
	fmt.Printf("byte hit ratio:     %.4f\n", r.ByteHitRatio)
	fmt.Printf("false hit ratio:    %.4f\n", r.FalseHitRatio)
	fmt.Printf("control messages:   %d\n", r.ControlMessages)
	fmt.Printf("search messages:    %d\n", r.SearchMessages)
	fmt.Printf("maintenance msgs:   %d\n", r.MaintenanceMessages)
	fmt.Printf("updates / polls:    %d / %d\n", r.UpdatesIssued, r.PollsIssued)
	fmt.Printf("energy:             %.1f mJ total, %.2f mJ/request\n", r.EnergyTotal, r.EnergyPerRequest)
	if verbose {
		fmt.Printf("protocol: %+v\n", res.Protocol)
		fmt.Printf("radio:    %+v\n", res.Radio)
	}
}
