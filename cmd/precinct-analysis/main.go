// Command precinct-analysis prints the Section 5 closed-form energy
// curves: per-request energy of the flooding scheme (Equation 11) and of
// PReCinCt (Equation 13) across node counts and region counts, without
// running any simulation.
package main

import (
	"flag"
	"fmt"
	"os"

	"precinct/internal/analysis"
	"precinct/internal/energy"
)

func main() {
	area := flag.Float64("area", 600, "service area side in meters")
	rng := flag.Float64("range", 250, "radio range in meters")
	regions := flag.Int("regions", 9, "number of regions")
	reqBytes := flag.Int("request-bytes", 128, "request message size on the air")
	repBytes := flag.Int("reply-bytes", 4096, "reply message size on the air")
	flag.Parse()

	base := analysis.Params{
		Model:        energy.DefaultModel(),
		N:            20,
		AreaSide:     *area,
		Range:        *rng,
		Regions:      *regions,
		RequestBytes: *reqBytes,
		ReplyBytes:   *repBytes,
	}
	if err := base.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "precinct-analysis:", err)
		os.Exit(1)
	}

	nodes := []int{20, 40, 60, 80, 120, 160}
	fl, err := analysis.FloodingVsNodes(base, nodes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "precinct-analysis:", err)
		os.Exit(1)
	}
	pc, err := analysis.PReCinCtVsNodes(base, nodes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "precinct-analysis:", err)
		os.Exit(1)
	}
	fmt.Printf("Energy per request (mJ), %gx%g m area, %g m range, %d regions\n",
		*area, *area, *rng, *regions)
	fmt.Printf("%8s  %16s  %16s  %8s\n", "nodes", "flooding (eq11)", "precinct (eq13)", "ratio")
	for i := range nodes {
		fmt.Printf("%8d  %16.2f  %16.2f  %8.2f\n",
			nodes[i], fl[i].Y, pc[i].Y, fl[i].Y/pc[i].Y)
	}

	regionCounts := []int{1, 4, 9, 16, 25, 36}
	rc, err := analysis.PReCinCtVsRegions(base, regionCounts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "precinct-analysis:", err)
		os.Exit(1)
	}
	fmt.Printf("\nPReCinCt energy per request vs region count (N=%d)\n", base.N)
	fmt.Printf("%8s  %16s\n", "regions", "energy (mJ)")
	for _, p := range rc {
		fmt.Printf("%8.0f  %16.2f\n", p.X, p.Y)
	}
}
