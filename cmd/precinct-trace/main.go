// Command precinct-trace analyzes a JSONL protocol trace produced by
// precinct-sim -trace (or precinct.RunTraced): request outcomes, latency,
// the busiest peers, and a time-bucketed activity timeline.
//
//	precinct-sim -trace run.jsonl ...
//	precinct-trace -timeline 60 run.jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"precinct/internal/trace"
)

func main() {
	timeline := flag.Float64("timeline", 0, "print an activity timeline with this bucket width in seconds")
	topN := flag.Int("top", 5, "how many of the busiest peers to list")
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "precinct-trace:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}

	events, err := trace.Read(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "precinct-trace:", err)
		os.Exit(1)
	}
	a := trace.Analyze(events)

	fmt.Printf("events:      %d over [%.1f s, %.1f s]\n", a.Events, a.Start, a.End)
	fmt.Printf("requests:    %d issued, %d completed, %d failed\n", a.Requests, a.Completed, a.Failed)
	if a.Completed > 0 {
		fmt.Printf("latency:     mean %.3f s, max %.3f s\n", a.MeanLatency, a.MaxLatency)
		fmt.Printf("stale:       %d served stale\n", a.StaleServed)
		classes := make([]string, 0, len(a.ByClass))
		for c := range a.ByClass {
			classes = append(classes, c)
		}
		sort.Strings(classes)
		for _, c := range classes {
			fmt.Printf("  %-10s %d\n", c+":", a.ByClass[c])
		}
	}

	if len(a.Nodes) > 0 && *topN > 0 {
		byRequests := make([]trace.NodeActivity, len(a.Nodes))
		copy(byRequests, a.Nodes)
		sort.Slice(byRequests, func(i, j int) bool {
			return byRequests[i].Requests > byRequests[j].Requests
		})
		if len(byRequests) > *topN {
			byRequests = byRequests[:*topN]
		}
		fmt.Printf("\nbusiest peers (of %d active):\n", len(a.Nodes))
		fmt.Printf("%6s %9s %10s %7s %8s %9s %10s\n",
			"node", "requests", "completed", "failed", "updates", "handoffs", "crossings")
		for _, n := range byRequests {
			fmt.Printf("%6d %9d %10d %7d %8d %9d %10d\n",
				n.Node, n.Requests, n.Completed, n.Failed, n.Updates, n.Handoffs, n.Crossings)
		}
	}

	if *timeline > 0 {
		buckets, err := trace.Timeline(events, *timeline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "precinct-trace:", err)
			os.Exit(1)
		}
		fmt.Printf("\ntimeline (%.0f s buckets):\n", *timeline)
		fmt.Printf("%10s %9s %10s %7s %9s\n", "t", "requests", "completed", "failed", "handoffs")
		for _, b := range buckets {
			fmt.Printf("%10.0f %9d %10d %7d %9d\n",
				b.Start, b.Requests, b.Completed, b.Failed, b.Handoffs)
		}
	}
}
