// Command precinct-check runs a batch of deterministically fuzzed
// scenarios under the full runtime invariant catalog (DESIGN.md
// section 9) — the command-line counterpart of the invariant_test.go
// suite. Every seed expands into the same scenario on every machine, so
// a failing seed is a reproducible bug report:
//
//	precinct-check                  # seeds 1..20
//	precinct-check -seeds 100       # seeds 1..100
//	precinct-check -start 42 -seeds 1 -v
//	precinct-check -seeds 50 -checkpoint-dir ckpt -resume
//	precinct-check -scale -seeds 6  # large-N lossy corpus (ExpandScale)
//	precinct-check -scale -max-nodes 500 -seeds 4
//
// With -checkpoint-dir every scenario runs checkpointed; a re-run of the
// same batch with -resume skips finished scenarios and resumes
// interrupted ones from their last snapshot. The process exits with
// status 2 when any scenario violates an invariant and 1 on
// configuration errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"

	"precinct"
	"precinct/internal/invariant/fuzzgen"
)

func main() {
	start := flag.Int64("start", 1, "first seed")
	seeds := flag.Int64("seeds", 20, "number of consecutive seeds to run")
	workers := flag.Int("workers", runtime.NumCPU(), "concurrent scenario runs")
	ckptDir := flag.String("checkpoint-dir", "", "run each scenario checkpointed, snapshots in this directory (must exist)")
	resume := flag.Bool("resume", false, "skip finished scenarios and resume interrupted ones from -checkpoint-dir")
	scale := flag.Bool("scale", false, "expand seeds with the large-N lossy scale generator instead of the regular fuzzer")
	maxNodes := flag.Int("max-nodes", 2000, "node-count cap for -scale scenarios")
	verbose := flag.Bool("v", false, "print every scenario result, not only failures")
	flag.Parse()
	if *seeds <= 0 || *workers <= 0 {
		fmt.Fprintln(os.Stderr, "precinct-check: -seeds and -workers must be positive")
		os.Exit(1)
	}
	if *maxNodes <= 0 {
		fmt.Fprintln(os.Stderr, "precinct-check: -max-nodes must be positive")
		os.Exit(1)
	}
	expand := fuzzgen.Expand
	if *scale {
		expand = func(seed int64) precinct.Scenario { return fuzzgen.ExpandScale(seed, *maxNodes) }
	}
	if *resume && *ckptDir == "" {
		die(fmt.Errorf("-resume requires -checkpoint-dir"))
	}
	if *ckptDir != "" {
		info, err := os.Stat(*ckptDir)
		if err != nil {
			die(fmt.Errorf("-checkpoint-dir: %w", err))
		}
		if !info.IsDir() {
			die(fmt.Errorf("-checkpoint-dir: %s is not a directory", *ckptDir))
		}
	}

	type outcome struct {
		seed int64
		sc   precinct.Scenario
		inv  precinct.InvariantReport
		err  error
	}
	results := make([]outcome, *seeds)
	jobs := make(chan int64)
	var wg sync.WaitGroup
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				seed := *start + i
				sc := expand(seed)
				var inv precinct.InvariantReport
				var err error
				if *ckptDir != "" {
					_, inv, err = precinct.RunCheckpointedChecked(sc, precinct.CheckpointOptions{
						Dir:    *ckptDir,
						Resume: *resume,
						Label:  fmt.Sprintf("seed%d", seed),
					})
				} else {
					_, inv, err = precinct.RunChecked(sc)
				}
				results[i] = outcome{seed: seed, sc: sc, inv: inv, err: err}
			}
		}()
	}
	for i := int64(0); i < *seeds; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	failed := 0
	for _, r := range results {
		switch {
		case r.err != nil:
			failed++
			fmt.Fprintf(os.Stderr, "seed %d (%s): %v\n", r.seed, r.sc.Name, r.err)
		case !r.inv.Ok():
			failed++
			fmt.Fprintf(os.Stderr, "seed %d (%s): %s\n", r.seed, r.sc.Name, r.inv)
			for _, v := range r.inv.Violations {
				fmt.Fprintf(os.Stderr, "  %s\n", v)
			}
		case *verbose:
			fmt.Printf("seed %d (%s): ok — %s\n", r.seed, r.sc.Name, r.inv)
		}
	}
	fmt.Printf("precinct-check: %d scenario(s), %d failed\n", *seeds, failed)
	if failed > 0 {
		os.Exit(2)
	}
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "precinct-check: "+err.Error())
	os.Exit(1)
}
