// Command precinct-replay restores a checkpoint snapshot and re-runs it
// forward. The simulation is deterministic, so the replayed segment
// reproduces exactly what the original run did after the snapshot — and
// because tracing and invariant checking are attached at restore time,
// a failure window can be inspected with full instrumentation without
// re-running the history before it.
//
//	precinct-replay run.ckpt                      # replay to the scenario horizon
//	precinct-replay -until 450 -trace out.jsonl run.ckpt
//	precinct-replay -check run.ckpt               # replay under the invariant catalog
//	precinct-replay -bisect a.ckpt b.ckpt         # first divergent event of two snapshots
//
// With -bisect the two snapshots must come from the same scenario at the
// same simulated time; the runs are stepped in lockstep and the first
// event after which their observable state differs is reported. Exit
// status is 0 when the runs agree, 2 when a divergence (or an invariant
// violation under -check) is found, and 1 on any error.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"precinct"
)

func main() {
	bisect := flag.Bool("bisect", false, "compare two snapshots of the same run: report the first divergent event")
	until := flag.Float64("until", 0, "simulated-time horizon (0 = the scenario's duration)")
	check := flag.Bool("check", false, "replay under the runtime invariant catalog; exit 2 on any violation")
	traceFile := flag.String("trace", "", "write the replayed segment's JSONL event trace to this file")
	verbose := flag.Bool("v", false, "print protocol and radio counters too")
	flag.Parse()

	if *bisect {
		if flag.NArg() != 2 {
			die(fmt.Errorf("-bisect needs exactly two snapshot files, got %d", flag.NArg()))
		}
		if *check || *traceFile != "" {
			die(fmt.Errorf("-bisect cannot be combined with -check or -trace"))
		}
		div, err := precinct.BisectSnapshots(flag.Arg(0), flag.Arg(1), *until)
		if err != nil {
			die(err)
		}
		fmt.Println(div)
		if div.Found {
			os.Exit(2)
		}
		return
	}

	if flag.NArg() != 1 {
		die(fmt.Errorf("need exactly one snapshot file, got %d", flag.NArg()))
	}
	o := precinct.ReplayOptions{Until: *until, Check: *check}
	var f *os.File
	if *traceFile != "" {
		var err error
		f, err = os.Create(*traceFile)
		if err != nil {
			die(err)
		}
		o.TraceWriter = f
	}
	res, inv, err := precinct.Replay(flag.Arg(0), o)
	if f != nil {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		die(err)
	}
	report(res, *verbose)
	if *check {
		fmt.Println(inv)
		if !inv.Ok() {
			for _, v := range inv.Violations {
				fmt.Fprintln(os.Stderr, "precinct-replay:", v)
			}
			os.Exit(2)
		}
	}
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "precinct-replay:", err)
	os.Exit(1)
}

func report(res precinct.Result, verbose bool) {
	s, r := res.Scenario, res.Report
	fmt.Printf("scenario: %s — %d nodes, %.0f m area, %d regions, retrieval=%s, consistency=%s\n",
		s.Name, s.Nodes, s.AreaSide, s.Regions, s.Retrieval, s.Consistency)
	fmt.Printf("requests:           %d (completed %d, failed %d)\n", r.Requests, r.Completed, r.Failures)
	classes := make([]string, 0, len(r.ByClass))
	for c := range r.ByClass {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for _, c := range classes {
		fmt.Printf("  %-17s %d\n", c+":", r.ByClass[c])
	}
	fmt.Printf("latency:            mean %.3f s, p95 %.3f s\n", r.MeanLatency, r.P95Latency)
	fmt.Printf("byte hit ratio:     %.4f\n", r.ByteHitRatio)
	fmt.Printf("energy:             %.1f mJ total\n", r.EnergyTotal)
	if verbose {
		fmt.Printf("protocol: %+v\n", res.Protocol)
		fmt.Printf("radio:    %+v\n", res.Radio)
	}
}
