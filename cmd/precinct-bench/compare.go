package main

// Benchmark regression gate, run via -compare. It re-runs a small,
// fast subset of the radio and scale suites on the current build and
// compares each probe against the committed baselines (BENCH_radio.json
// and BENCH_scale.json). A probe regresses when it is more than
// -tolerance (default 15%) slower, or allocates more than tolerance
// above baseline.
//
// Timing probes are inherently machine-dependent; allocation counts are
// not — the simulation is deterministic, so allocs/op and
// allocs_per_event reproduce exactly on any machine. ci therefore runs
// the binding gate with -allocs-only (timing printed advisory, only
// allocation regressions exit 3) and the full timing comparison stays
// advisory (`-$(MAKE) bench-compare`). Run the full comparison on the
// baseline machine, or regenerate the baselines, to make timing binding
// too. Raise the knob for noisy boxes:
//
//	precinct-bench -compare -tolerance 0.30
//
// Exit status 3 signals a regression; 0 means every probe is within
// tolerance.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"precinct"
	"precinct/internal/radio"
)

// loadJSON decodes a committed baseline report.
func loadJSON(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return json.Unmarshal(data, v)
}

// compareProbe prints one probe's verdict and reports whether it
// regressed: current must stay within (1+tol) of baseline plus an
// absolute slack — one unit for integer counts (so allocs/op cannot trip
// on ±1), a few hundredths for fractional rates like allocs_per_event.
// Advisory probes print an ADVISORY:-labeled verdict but never count as
// a regression, so CI logs distinguish binding failures from drift.
func compareProbe(name, metric string, base, curr, tol, slack float64, advisory bool) bool {
	limit := base*(1+tol) + slack
	ok := curr <= limit
	verdict := "ok"
	if !ok {
		if advisory {
			verdict = "ADVISORY: over"
		} else {
			verdict = "REGRESSED"
		}
	}
	fmt.Printf("  %-34s %-16s base %12.1f  now %12.1f  (limit %12.1f)  %s\n",
		name, metric, base, curr, limit, verdict)
	return !ok && !advisory
}

// compareFloorProbe is compareProbe's mirror for higher-is-better
// metrics like hit ratios: current must stay above base*(1-tol) minus
// an absolute slack. Always advisory — hit ratios shift legitimately
// whenever caching behavior improves elsewhere, so these probes flag
// drift without failing builds.
func compareFloorProbe(name, metric string, base, curr, tol, slack float64) {
	limit := base*(1-tol) - slack
	verdict := "ok"
	if curr < limit {
		verdict = "ADVISORY: under"
	}
	fmt.Printf("  %-34s %-16s base %12.4f  now %12.4f  (floor %12.4f)  %s\n",
		name, metric, base, curr, limit, verdict)
}

// runBenchCompare re-runs the probe subset and compares against the
// baselines at baseRadio, baseScale, baseWorkloads, basePolicies and
// baseParallel. It returns whether any probe regressed beyond tol. With
// allocsOnly, timing metrics (ns/op, wall_seconds) are compared
// advisory and only the deterministic allocation metrics can regress
// the build. With advisory, every metric is advisory: overruns are
// labeled but nothing regresses the build. The workload probes (byte
// hit ratio and latency per source kind), the per-policy hit-ratio
// floors and the parallel speedup floor are always advisory.
func runBenchCompare(baseRadio, baseScale, baseWorkloads, basePolicies, baseParallel string, tol float64, allocsOnly, advisory bool) (bool, error) {
	timingAdvisory := allocsOnly || advisory
	var radioBase radioBenchReport
	if err := loadJSON(baseRadio, &radioBase); err != nil {
		return false, fmt.Errorf("radio baseline: %w", err)
	}
	var scaleBase scaleBenchReport
	if err := loadJSON(baseScale, &scaleBase); err != nil {
		return false, fmt.Errorf("scale baseline: %w", err)
	}
	radioByName := map[string]benchEntry{}
	for _, e := range radioBase.Results {
		radioByName[e.Name] = e
	}
	scaleByName := map[string]scaleEntry{}
	for _, e := range scaleBase.Results {
		scaleByName[e.Name] = e
	}

	regressed := false

	// Radio probes: the grid-backend neighbor queries that dominate the
	// hot path, re-run exactly as writeRadioBench runs them.
	fmt.Printf("radio probes vs %s (tolerance %.0f%%):\n", baseRadio, tol*100)
	for _, probe := range []struct {
		name  string
		bench func(b *testing.B)
	}{
		{"neighbors/static/grid/n=320", func(b *testing.B) {
			ch, _ := staticChannel(320, false)
			ch.Neighbors(0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ch.Neighbors(radio.NodeID(i % 320))
			}
		}},
		{"neighbors/waypoint/grid/n=320", func(b *testing.B) {
			ch, sched := waypointChannel(320, false)
			ch.Neighbors(0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i%64 == 0 {
					at := sched.Now() + 0.25
					sched.At(at, func() {})
					sched.Run(at)
				}
				ch.Neighbors(radio.NodeID(i % 320))
			}
		}},
	} {
		base, ok := radioByName[probe.name]
		if !ok {
			return false, fmt.Errorf("baseline %s has no entry %q; regenerate it", baseRadio, probe.name)
		}
		r := testing.Benchmark(probe.bench)
		if compareProbe(probe.name, "ns/op", base.NsPerOp, float64(r.NsPerOp()), tol, 1, timingAdvisory) {
			regressed = true
		}
		if compareProbe(probe.name, "allocs/op", float64(base.AllocsPerOp), float64(r.AllocsPerOp()), tol, 1, advisory) {
			regressed = true
		}
	}

	// Scale probes: two mid-size cells of the grid, sequential and
	// sharded, rebuilt with the baseline's durations so sim workload
	// matches exactly. The sharded probe exercises the parallel
	// scheduler's cores axis. Its simulation allocations replay exactly
	// like the sequential ones; goroutine scheduling adds runtime
	// bookkeeping jitter of order 1e-4 allocs/event, absorbed many times
	// over by the 0.05 absolute slack, so allocations still gate hard.
	// The 10000-node cell anchors the big tier (DESIGN.md section 14):
	// its allocs/event gate binding like the others, and its resident-set
	// footprint (mem_bytes_per_node) is compared advisory — RSS depends
	// on the machine and GC phase, so it warns about per-node memory
	// growth without failing builds on paging noise.
	fmt.Printf("scale probes vs %s (tolerance %.0f%%):\n", baseScale, tol*100)
	for _, cell := range []struct {
		n      int
		loss   float64
		shards int
	}{{500, 0, 1}, {500, 0.1, 1}, {500, 0.1, 4}, {10000, 0.3, 1}} {
		name := fmt.Sprintf("scale/n=%d/loss=%g", cell.n, cell.loss)
		if cell.shards > 1 {
			name += fmt.Sprintf("/shards=%d", cell.shards)
		}
		base, ok := scaleByName[name]
		if !ok {
			return false, fmt.Errorf("baseline %s has no entry %q; regenerate it", baseScale, name)
		}
		s := scaleScenario(cell.n, cell.loss, scaleBase.Quick)
		s.Shards = cell.shards
		e, err := runScaleCell(s)
		if err != nil {
			return false, err
		}
		if e.Events != base.Events {
			return false, fmt.Errorf("%s: event count diverged from baseline (%d vs %d); the workload changed — regenerate %s",
				name, e.Events, base.Events, baseScale)
		}
		// A sharded cell's wall clock is only a scaling number when both
		// sides had at least as many cores as shards. A baseline recorded
		// on a smaller host (coordination_overhead_only), or a probe run
		// on one, measures barrier overhead instead — the two numbers were
		// never comparable, so the timing probe is skipped rather than
		// failed. Allocations and event counts stay binding above: those
		// are deterministic regardless of cores.
		skipTiming := false
		switch {
		case cell.shards > 1 && (base.CoordinationOverheadOnly || (base.Cores > 0 && base.Cores < cell.shards)):
			fmt.Printf("  %-34s %-16s skipped: baseline recorded on %d cores < %d shards (coordination overhead, not comparable)\n",
				name, "wall_seconds", base.Cores, cell.shards)
			skipTiming = true
		case cell.shards > 1 && runtime.GOMAXPROCS(0) < cell.shards:
			fmt.Printf("  %-34s %-16s skipped: this host runs %d cores < %d shards (coordination overhead, not comparable)\n",
				name, "wall_seconds", runtime.GOMAXPROCS(0), cell.shards)
			skipTiming = true
		}
		if !skipTiming && compareProbe(name, "wall_seconds", base.WallSeconds, e.WallSeconds, tol, 1, timingAdvisory) {
			regressed = true
		}
		if compareProbe(name, "allocs_per_event", base.AllocsPerEvent, e.AllocsPerEvent, tol, 0.05, advisory) {
			regressed = true
		}
		if base.MemBytesPerNode > 0 && e.MemBytesPerNode > 0 {
			// Always advisory: resident-set footprint is not deterministic
			// the way allocation counts are. The 4096-byte slack absorbs
			// page-granularity jitter on small cells.
			compareProbe(name, "mem_bytes_per_node", base.MemBytesPerNode, e.MemBytesPerNode, tol, 4096, true)
		}
	}

	// Workload probes: the stationary baseline and one adversarial
	// source, re-run at the baseline's durations. The simulation is
	// deterministic, so the hit ratio and latency reproduce exactly
	// unless caching behavior changed — but behavior changes are often
	// intentional (that is the point of the lab), so these stay
	// advisory and a drift means "regenerate BENCH_workloads.json and
	// eyeball the table", never a failed build.
	var wlBase workloadBenchReport
	if err := loadJSON(baseWorkloads, &wlBase); err != nil {
		return false, fmt.Errorf("workload baseline: %w", err)
	}
	wlByKind := map[string]workloadEntry{}
	for _, e := range wlBase.Results {
		wlByKind[e.Workload] = e
	}
	fmt.Printf("workload probes vs %s (tolerance %.0f%%, advisory):\n", baseWorkloads, tol*100)
	traceDir, err := os.MkdirTemp("", "precinct-workloadcompare")
	if err != nil {
		return false, err
	}
	defer os.RemoveAll(traceDir)
	for _, kind := range []string{"default", "flash-crowd"} {
		base, ok := wlByKind[kind]
		if !ok {
			return false, fmt.Errorf("baseline %s has no entry for workload %q; regenerate it", baseWorkloads, kind)
		}
		s := workloadBenchScenario(kind, traceDir, wlBase.Quick)
		e, err := runWorkloadCell(s)
		if err != nil {
			return false, err
		}
		compareFloorProbe(base.Name, "byte_hit_ratio", base.ByteHitRatio, e.ByteHitRatio, tol, 0.005)
		compareProbe(base.Name, "mean_latency_s", base.MeanLatency, e.MeanLatency, tol, 0.01, true)
	}

	// Policy probes: every registered policy on the stationary workload,
	// re-run at the baseline's durations, each held advisory to its
	// committed byte-hit-ratio floor. Like the workload probes these are
	// deterministic — a drift means a policy's behavior changed, and the
	// remedy is regenerating BENCH_policies.json and eyeballing the
	// table, never a failed build. A policy present in the registry but
	// missing from the baseline is an error: the sweep must be
	// regenerated whenever a policy is added.
	var polBase policyBenchReport
	if err := loadJSON(basePolicies, &polBase); err != nil {
		return false, fmt.Errorf("policy baseline: %w", err)
	}
	polByName := map[string]policyEntry{}
	for _, e := range polBase.Results {
		polByName[e.Name] = e
	}
	fmt.Printf("policy probes vs %s (tolerance %.0f%%, advisory):\n", basePolicies, tol*100)
	for _, policy := range precinct.PolicyNames() {
		name := fmt.Sprintf("policy/%s/default", policy)
		base, ok := polByName[name]
		if !ok {
			return false, fmt.Errorf("baseline %s has no entry %q; regenerate it", basePolicies, name)
		}
		s := policyBenchScenario(policy, "default", 0, polBase.Quick)
		e, err := runPolicyCell(s, policy, "default", 0)
		if err != nil {
			return false, err
		}
		compareFloorProbe(base.Name, "byte_hit_ratio", base.ByteHitRatio, e.ByteHitRatio, tol, 0.005)
	}

	// Parallel speedup floor: re-run the tentpole pair (sequential and
	// shards=4, both at 4 cores) on the baseline's workload cell and hold
	// the measured speedup to the committed floor — always advisory,
	// because wall-clock ratios move with the machine. The probe only
	// runs when both sides could genuinely express the parallelism: a
	// baseline generated on a small host has no speedup key to hold, and
	// a small comparison host would measure coordination overhead, so
	// both cases print a skip line instead of a meaningless verdict.
	var parBase parallelBenchReport
	if err := loadJSON(baseParallel, &parBase); err != nil {
		return false, fmt.Errorf("parallel baseline: %w", err)
	}
	fmt.Printf("parallel probes vs %s (always advisory):\n", baseParallel)
	const probeShards = 4
	baseSpeedup, haveSpeedup := parBase.Summary[fmt.Sprintf("shards%d_cores%d_speedup", probeShards, probeShards)]
	switch {
	case !haveSpeedup:
		fmt.Printf("  %-34s %-16s skipped: baseline generated on a %d-CPU host has no %d-core speedup cell (regenerate %s on a bigger host)\n",
			"parallel/shards=4/cores=4", "speedup", parBase.NumCPU, probeShards, baseParallel)
	case runtime.NumCPU() < probeShards:
		fmt.Printf("  %-34s %-16s skipped: this host has %d logical CPUs < %d shards (coordination overhead, not comparable)\n",
			"parallel/shards=4/cores=4", "speedup", runtime.NumCPU(), probeShards)
	default:
		entryCores := runtime.GOMAXPROCS(probeShards)
		seqScen := parallelScenario(parBase.Quick)
		seqEntry, err := runScaleCell(seqScen)
		if err != nil {
			runtime.GOMAXPROCS(entryCores)
			return false, err
		}
		parScen := parallelScenario(parBase.Quick)
		parScen.Shards = probeShards
		parEntry, err := runScaleCell(parScen)
		runtime.GOMAXPROCS(entryCores)
		if err != nil {
			return false, err
		}
		if parEntry.Events != seqEntry.Events {
			return false, fmt.Errorf("parallel probe: executed %d events, sequential reference executed %d; the workload changed — regenerate %s",
				parEntry.Events, seqEntry.Events, baseParallel)
		}
		speedup := 0.0
		if parEntry.WallSeconds > 0 {
			speedup = seqEntry.WallSeconds / parEntry.WallSeconds
		}
		compareFloorProbe("parallel/shards=4/cores=4", "speedup", baseSpeedup, speedup, tol, 0.05)
	}

	switch {
	case regressed && advisory:
		fmt.Println("ADVISORY: bench-compare regressed (see limits above) — advisory run, not failing the build")
	case regressed:
		fmt.Println("bench-compare: REGRESSED (see limits above; override with -tolerance or regenerate baselines)")
	default:
		fmt.Println("bench-compare: ok")
	}
	return regressed, nil
}
