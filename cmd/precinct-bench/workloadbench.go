package main

// Workload-lab benchmark suite, run via -workloads. It runs every
// workload source (DESIGN.md section 15) over the same 1000-node
// scenario — the mid scale tier — and emits a machine-readable JSON
// report (BENCH_workloads.json at the repository root holds the
// committed numbers; see EXPERIMENTS.md §Workload lab). Each cell
// records the headline cache metrics (byte hit ratio, false-hit ratio,
// latency percentiles) plus wall clock and event throughput, so the
// adversarial workloads' cost is tracked alongside their behavior.
//
// The trace cell replays a synthetic cachelib-format trace generated
// deterministically at bench time (workload.WriteSyntheticTrace with a
// pinned seed), so the committed numbers do not depend on a multi-
// megabyte committed trace file.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"precinct"
	"precinct/internal/workload"
)

type workloadEntry struct {
	// Name is "workload/<kind>/n=<nodes>".
	Name           string  `json:"name"`
	Workload       string  `json:"workload"`
	Nodes          int     `json:"nodes"`
	SimSeconds     float64 `json:"sim_seconds"`
	WallSeconds    float64 `json:"wall_seconds"`
	Events         uint64  `json:"events"`
	EventsPerSec   float64 `json:"events_per_sec"`
	Requests       uint64  `json:"requests"`
	Completed      uint64  `json:"completed"`
	ByteHitRatio   float64 `json:"byte_hit_ratio"`
	FalseHitRatio  float64 `json:"false_hit_ratio"`
	MeanLatency    float64 `json:"mean_latency_s"`
	P50Latency     float64 `json:"p50_latency_s"`
	P95Latency     float64 `json:"p95_latency_s"`
	SearchMessages uint64  `json:"search_messages"`
}

type workloadBenchReport struct {
	Go      string          `json:"go"`
	GOOS    string          `json:"goos"`
	GOARCH  string          `json:"goarch"`
	Cores   int             `json:"cores"`
	Quick   bool            `json:"quick"`
	Results []workloadEntry `json:"results"`
	// Summary holds the fields bench-compare reads advisory.
	Summary map[string]float64 `json:"summary"`
}

// workloadBenchKinds is the suite's cell list: the stationary baseline
// first, then every non-stationary source and the trace replay.
func workloadBenchKinds() []string {
	return []string{"default", "flash-crowd", "diurnal", "hotspot", "rank-churn", "trace"}
}

// writeWorkloadTrace materializes the synthetic trace the trace cell
// replays: catalog-sized key population, paper-range skew and item
// sizes, a modest write mix. Deterministic for a given quick setting.
func writeWorkloadTrace(dir string, quick bool) (string, error) {
	ops := 50000
	if quick {
		ops = 10000
	}
	path := filepath.Join(dir, "workloadbench_trace.csv")
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	cfg := workload.SyntheticTraceConfig{
		Ops: ops, Keys: 1000, ZipfTheta: 0.8,
		SetFraction: 0.1, DeleteFraction: 0.02,
		MinSize: 1024, MaxSize: 10 * 1024, Seed: 1,
	}
	if err := workload.WriteSyntheticTrace(f, cfg); err != nil {
		f.Close()
		return "", err
	}
	return path, f.Close()
}

// workloadBenchScenario builds one cell: the 1000-node scale-tier
// scenario (constant density, lossless radio so hit-ratio differences
// come from the workload alone) running the given source. tracePath is
// consulted only by the trace kind.
func workloadBenchScenario(kind, tracePath string, quick bool) precinct.Scenario {
	s := scaleScenario(1000, 0, quick)
	s.Name = "workload-" + kind
	s.Workload = kind
	if kind == "trace" {
		s.TracePath = tracePath
	}
	return s
}

// runWorkloadCell executes one cell and collapses the result into a
// report entry.
func runWorkloadCell(s precinct.Scenario) (workloadEntry, error) {
	t0 := time.Now()
	res, stats, err := precinct.RunWithStats(s)
	wall := time.Since(t0)
	if err != nil {
		return workloadEntry{}, err
	}
	r := res.Report
	e := workloadEntry{
		Name:           fmt.Sprintf("workload/%s/n=%d", s.Workload, s.Nodes),
		Workload:       s.Workload,
		Nodes:          s.Nodes,
		SimSeconds:     s.Duration,
		WallSeconds:    wall.Seconds(),
		Events:         stats.Events,
		Requests:       r.Requests,
		Completed:      r.Completed,
		ByteHitRatio:   r.ByteHitRatio,
		FalseHitRatio:  r.FalseHitRatio,
		MeanLatency:    r.MeanLatency,
		P50Latency:     r.P50Latency,
		P95Latency:     r.P95Latency,
		SearchMessages: r.SearchMessages,
	}
	if stats.Events > 0 && wall > 0 {
		e.EventsPerSec = float64(stats.Events) / wall.Seconds()
	}
	return e, nil
}

// writeWorkloadBench runs the workload suite and writes the JSON report
// to path. quick shrinks durations (and the synthetic trace) for smoke
// use in CI.
func writeWorkloadBench(path string, quick bool) error {
	rep := workloadBenchReport{
		Go:      runtime.Version(),
		GOOS:    runtime.GOOS,
		GOARCH:  runtime.GOARCH,
		Cores:   runtime.GOMAXPROCS(0),
		Quick:   quick,
		Summary: map[string]float64{},
	}
	traceDir, err := os.MkdirTemp("", "precinct-workloadbench")
	if err != nil {
		return err
	}
	defer os.RemoveAll(traceDir)
	tracePath, err := writeWorkloadTrace(traceDir, quick)
	if err != nil {
		return err
	}

	fmt.Printf("workload lab, 1000-node tier (%d cores):\n", rep.Cores)
	for _, kind := range workloadBenchKinds() {
		s := workloadBenchScenario(kind, tracePath, quick)
		e, err := runWorkloadCell(s)
		if err != nil {
			return fmt.Errorf("%s: %w", s.Name, err)
		}
		if e.Requests == 0 {
			return fmt.Errorf("%s: no requests issued", s.Name)
		}
		rep.Results = append(rep.Results, e)
		fmt.Printf("  %-28s %8.2fs wall %10.0f ev/s  hit %.3f  false %.4f  mean %.3fs  p95 %.3fs\n",
			e.Name, e.WallSeconds, e.EventsPerSec, e.ByteHitRatio, e.FalseHitRatio,
			e.MeanLatency, e.P95Latency)
		rep.Summary[kind+"_byte_hit_ratio"] = e.ByteHitRatio
		rep.Summary[kind+"_mean_latency_s"] = e.MeanLatency
		rep.Summary[kind+"_p95_latency_s"] = e.P95Latency
	}

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s\n", path)
	return nil
}
