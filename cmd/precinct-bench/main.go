// Command precinct-bench regenerates the paper's evaluation figures as
// text tables: Figures 4 and 5 (GD-LD vs GD-Size over cache sizes),
// Figures 6–8 (consistency schemes over update rates), Figures 9(a) and
// 9(b) (simulated vs analytical energy), and the companion-paper
// retrieval-scheme comparison.
//
// Examples:
//
//	precinct-bench                # everything at paper scale
//	precinct-bench -fig 6         # only Figures 6-8 (one sweep)
//	precinct-bench -quick         # reduced duration for a fast look
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"precinct"
)

// startProfiles starts a CPU profile when cpu is non-empty and returns a
// stop function that finishes it and writes a heap profile to mem (when
// non-empty). The heap profile is taken after a GC so it shows live
// retention, not garbage.
func startProfiles(cpu, mem string) (func(), error) {
	var cpuFile *os.File
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				fmt.Fprintln(os.Stderr, "precinct-bench:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "precinct-bench:", err)
			}
		}
	}, nil
}

func main() {
	fig := flag.String("fig", "all", "which figure to regenerate: 4, 5, 6, 7, 8, 9a, 9b, ext, speed, zipf or all")
	quick := flag.Bool("quick", false, "shrink durations for a fast approximate run")
	seed := flag.Int64("seed", 1, "random seed")
	workers := flag.Int("workers", 0, "parallel scenario workers (0 = GOMAXPROCS)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	chart := flag.Bool("chart", false, "render ASCII charts instead of aligned tables")
	radioJSON := flag.String("radiojson", "", "run the radio hot-path benchmark suite, write JSON results to `file`, and exit")
	scaleJSON := flag.String("scale", "", "run the large-N scale-tier benchmark grid, write JSON results to `file`, and exit (-quick shrinks the grid)")
	workloadsJSON := flag.String("workloads", "", "run the workload-lab suite (every source at the 1000-node tier), write JSON results to `file`, and exit")
	policiesJSON := flag.String("policies", "", "run the policy-lab sweep (every registered policy at the 1000-node tier), write JSON results to `file`, and exit")
	parallelJSON := flag.String("parallel", "", "run the parallel-scaling sweep (shards x cores at the 10000-node tier), write JSON results to `file`, and exit (-quick shrinks the cell)")
	cores := flag.Int("cores", 0, "cap GOMAXPROCS for the whole process (0 = all cores); the scale suite records the value")
	compare := flag.Bool("compare", false, "re-run a benchmark subset and compare against the committed baselines; exit 3 on regression")
	allocsOnly := flag.Bool("allocs-only", false, "with -compare, gate only the deterministic allocation metrics; timing is compared advisory")
	advisory := flag.Bool("advisory", false, "with -compare, never fail: regressions print with an ADVISORY: prefix and the exit status stays 0")
	baseRadio := flag.String("baseline-radio", "BENCH_radio.json", "radio baseline for -compare")
	baseScale := flag.String("baseline-scale", "BENCH_scale.json", "scale baseline for -compare")
	baseWorkloads := flag.String("baseline-workloads", "BENCH_workloads.json", "workload baseline for -compare (hit-ratio probes, always advisory)")
	basePolicies := flag.String("baseline-policies", "BENCH_policies.json", "policy baseline for -compare (per-policy hit-ratio probes, always advisory)")
	baseParallel := flag.String("baseline-parallel", "BENCH_parallel.json", "parallel-scaling baseline for -compare (speedup floor, always advisory)")
	tolerance := flag.Float64("tolerance", 0.15, "allowed fractional slowdown vs baseline for -compare")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to `file`")
	memProfile := flag.String("memprofile", "", "write a heap profile to `file` on exit")
	flag.Parse()

	if *cores > 0 {
		runtime.GOMAXPROCS(*cores)
	}

	stopProfiles, perr := startProfiles(*cpuProfile, *memProfile)
	if perr != nil {
		fmt.Fprintln(os.Stderr, "precinct-bench:", perr)
		os.Exit(1)
	}
	defer stopProfiles()

	if *radioJSON != "" {
		if err := writeRadioBench(*radioJSON); err != nil {
			fmt.Fprintln(os.Stderr, "precinct-bench:", err)
			os.Exit(1)
		}
		return
	}
	if *scaleJSON != "" {
		if err := writeScaleBench(*scaleJSON, *quick); err != nil {
			fmt.Fprintln(os.Stderr, "precinct-bench:", err)
			os.Exit(1)
		}
		return
	}
	if *workloadsJSON != "" {
		if err := writeWorkloadBench(*workloadsJSON, *quick); err != nil {
			fmt.Fprintln(os.Stderr, "precinct-bench:", err)
			os.Exit(1)
		}
		return
	}
	if *policiesJSON != "" {
		if err := writePolicyBench(*policiesJSON, *quick); err != nil {
			fmt.Fprintln(os.Stderr, "precinct-bench:", err)
			os.Exit(1)
		}
		return
	}
	if *parallelJSON != "" {
		if err := writeParallelBench(*parallelJSON, *quick); err != nil {
			fmt.Fprintln(os.Stderr, "precinct-bench:", err)
			os.Exit(1)
		}
		return
	}
	if *compare {
		regressed, err := runBenchCompare(*baseRadio, *baseScale, *baseWorkloads, *basePolicies, *baseParallel, *tolerance, *allocsOnly, *advisory)
		if err != nil {
			fmt.Fprintln(os.Stderr, "precinct-bench:", err)
			os.Exit(1)
		}
		if regressed && !*advisory {
			os.Exit(3)
		}
		return
	}

	cfg := precinct.ExperimentConfig{Seed: *seed, Workers: *workers}
	if *quick {
		cfg.Duration = 600
		cfg.Warmup = 150
	}

	die := func(err error) {
		fmt.Fprintln(os.Stderr, "precinct-bench:", err)
		os.Exit(1)
	}
	show := func(f precinct.Figure) {
		switch {
		case *csv:
			fmt.Printf("# %s: %s\n%s\n", f.ID, f.Title, f.CSV())
		case *chart:
			fmt.Println(f.Chart(60, 16))
		default:
			fmt.Println(f)
		}
	}
	timer := func(name string, fn func()) {
		t0 := time.Now()
		fn()
		fmt.Printf("(%s regenerated in %v)\n\n", name, time.Since(t0).Round(time.Millisecond))
	}

	want := func(ids ...string) bool {
		if *fig == "all" {
			// "all" covers the paper's figures; the extension sweeps
			// (speed, zipf) run only when asked for by name.
			for _, id := range ids {
				if id == "speed" || id == "zipf" {
					return false
				}
			}
			return true
		}
		for _, id := range ids {
			if *fig == id {
				return true
			}
		}
		return false
	}

	if want("4", "5") {
		timer("figures 4-5", func() {
			f4, f5, err := precinct.Fig4And5(cfg)
			if err != nil {
				die(err)
			}
			show(f4)
			show(f5)
		})
	}
	if want("6", "7", "8") {
		timer("figures 6-8", func() {
			f6, f7, f8, err := precinct.Fig6To8(cfg)
			if err != nil {
				die(err)
			}
			show(f6)
			show(f7)
			show(f8)
		})
	}
	if want("9a") {
		timer("figure 9a", func() {
			f, err := precinct.Fig9a(cfg)
			if err != nil {
				die(err)
			}
			show(f)
		})
	}
	if want("9b") {
		timer("figure 9b", func() {
			f, err := precinct.Fig9b(cfg)
			if err != nil {
				die(err)
			}
			show(f)
		})
	}
	if want("ext") {
		timer("retrieval comparison", func() {
			f, err := precinct.ExtRetrievalSchemes(cfg)
			if err != nil {
				die(err)
			}
			show(f)
		})
	}
	if want("speed") {
		timer("speed sweep", func() {
			lat, fail, err := precinct.ExtSpeedSweep(cfg)
			if err != nil {
				die(err)
			}
			show(lat)
			show(fail)
		})
	}
	if want("zipf") {
		timer("zipf sweep", func() {
			f, err := precinct.ExtZipfSweep(cfg)
			if err != nil {
				die(err)
			}
			show(f)
		})
	}
}
