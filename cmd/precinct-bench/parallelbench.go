package main

// Parallel-scaling benchmark suite, run via -parallel. It sweeps the
// sharded scheduler (DESIGN.md section 13) over a shards x cores grid
// on one fixed cell of the scale tier — the 10000-node, 30%-loss
// acceptance shape (DESIGN.md section 14) — pinning GOMAXPROCS per
// column so each speedup compares a sharded run against a sequential
// reference measured under identical conditions.
//
// The accounting is honest by construction: a column whose core count
// exceeds the host's logical CPUs is skipped (and logged, so the gap
// is visible in the output rather than silently absent), and a sharded
// cell that ran with fewer cores than shards is marked
// coordination_overhead_only with no speedup key — such a number
// measures barrier overhead, not scaling. Regenerating the committed
// report (make bench-parallel, BENCH_parallel.json) on a bigger host
// adds the missing columns; bench-compare consumes the speedup keys as
// always-advisory floors.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"

	"precinct"
)

type parallelBenchReport struct {
	Go     string `json:"go"`
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	// NumCPU is the host's logical CPU count at generation time. Columns
	// with cores > NumCPU were skipped; a comparison host with more CPUs
	// should regenerate rather than probe against missing cells.
	NumCPU  int          `json:"num_cpu"`
	Quick   bool         `json:"quick"`
	Results []scaleEntry `json:"results"`
	// Summary holds wall clock per cell and, for cells where cores >=
	// shards, the wall-clock speedup over that column's sequential
	// reference.
	Summary map[string]float64 `json:"summary"`
}

// parallelScenario is the sweep's single workload cell. Full runs use
// the 10000-node acceptance shape the tentpole speedup target is
// defined on; quick shrinks to a 500-node cell for smoke use.
func parallelScenario(quick bool) precinct.Scenario {
	if quick {
		return scaleScenario(500, 0.3, true)
	}
	return scaleScenario(10000, 0.3, false)
}

// writeParallelBench runs the shards x cores sweep and writes the JSON
// report to path. GOMAXPROCS is restored to its entry value on return.
func writeParallelBench(path string, quick bool) error {
	entryCores := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(entryCores)

	rep := parallelBenchReport{
		Go:      runtime.Version(),
		GOOS:    runtime.GOOS,
		GOARCH:  runtime.GOARCH,
		NumCPU:  runtime.NumCPU(),
		Quick:   quick,
		Summary: map[string]float64{},
	}
	coreCounts := []int{1, 2, 4}
	shardCounts := []int{1, 2, 4}

	fmt.Printf("parallel scaling sweep (host has %d logical CPUs):\n", rep.NumCPU)
	for _, cores := range coreCounts {
		if cores > rep.NumCPU {
			// Not silently: the committed report must show which columns
			// a small host could not measure.
			fmt.Printf("  cores=%d skipped: host has only %d logical CPUs (regenerate on a bigger host to add this column)\n",
				cores, rep.NumCPU)
			continue
		}
		runtime.GOMAXPROCS(cores)
		var seq scaleEntry
		for _, shards := range shardCounts {
			s := parallelScenario(quick)
			s.Shards = shards
			e, err := runScaleCell(s)
			if err != nil {
				return fmt.Errorf("%s: %w", s.Name, err)
			}
			e.Name = fmt.Sprintf("parallel/n=%d/loss=%g/shards=%d/cores=%d", e.Nodes, e.Loss, e.Shards, cores)
			rep.Results = append(rep.Results, e)
			note := ""
			if e.CoordinationOverheadOnly {
				note = "  (coordination overhead only)"
			}
			fmt.Printf("  %-42s %8.2fs wall %10.0f ev/s %6.1f allocs/ev%s\n",
				e.Name, e.WallSeconds, e.EventsPerSec, e.AllocsPerEvent, note)
			key := fmt.Sprintf("shards%d_cores%d", shards, cores)
			rep.Summary[key+"_wall_seconds"] = e.WallSeconds
			rep.Summary[key+"_allocs_per_event"] = e.AllocsPerEvent
			if shards == 1 {
				seq = e
				continue
			}
			// Same invariant as the scale grid: a sharded run that did
			// different work makes every ratio below meaningless.
			if e.Events != seq.Events {
				return fmt.Errorf("%s: executed %d events, sequential reference executed %d",
					e.Name, e.Events, seq.Events)
			}
			if !e.CoordinationOverheadOnly && seq.WallSeconds > 0 && e.WallSeconds > 0 {
				rep.Summary[key+"_speedup"] = seq.WallSeconds / e.WallSeconds
			}
		}
	}

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s\n", path)
	return nil
}
