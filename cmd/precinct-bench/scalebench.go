package main

// Scale-tier benchmark suite, run via -scale. It runs the large-N
// scenario grid — nodes in {250, 500, 1000, 2000} crossed with loss
// rates {0, 0.1, 0.3} at constant node density, plus the big tier
// {10000, 50000, 100000} at the acceptance loss rate 0.3 (DESIGN.md
// section 14) — end to end and emits a machine-readable JSON report
// (BENCH_scale.json at the repository root holds the committed numbers;
// see EXPERIMENTS.md §Scale tier). Each cell records wall clock,
// scheduler throughput (events/sec), allocation pressure (allocs/event),
// resident-set footprint (bytes/node, sampled from /proc/self/status
// with the heap released to the OS between cells) and the headline
// protocol metrics, so performance, memory and behavior are all tracked
// across commits.
//
// Every cell also runs under the sharded parallel scheduler (DESIGN.md
// section 13) with 2 and 4 shards, recording per-cell scaling
// efficiency. The sharded runs must execute exactly the same event
// multiset as the sequential reference — the suite fails if the event
// counts diverge — so the speedup summary keys compare identical work.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"precinct"
)

type scaleEntry struct {
	// Name is "scale/n=<nodes>/loss=<loss>" for the sequential
	// reference, with a "/shards=<k>" suffix for sharded runs.
	Name           string  `json:"name"`
	Nodes          int     `json:"nodes"`
	Loss           float64 `json:"loss"`
	Shards         int     `json:"shards"`
	SimSeconds     float64 `json:"sim_seconds"`
	WallSeconds    float64 `json:"wall_seconds"`
	Events         uint64  `json:"events"`
	EventsPerSec   float64 `json:"events_per_sec"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
	// PeakRSSBytes is the peak resident set sampled during the cell (0
	// where /proc/self/status is unavailable); MemBytesPerNode divides it
	// by the node count — the per-node footprint the SoA layout bounds
	// (DESIGN.md section 14). Resident-set numbers are machine- and
	// GC-phase-dependent, so the regression gate only compares them
	// advisory, never binding.
	PeakRSSBytes    uint64  `json:"peak_rss_bytes"`
	MemBytesPerNode float64 `json:"mem_bytes_per_node"`
	Requests        uint64  `json:"requests"`
	ByteHitRatio    float64 `json:"byte_hit_ratio"`
	MeanLatency     float64 `json:"mean_latency_s"`
	P95Latency      float64 `json:"p95_latency_s"`
	// Cores is the GOMAXPROCS this cell ran under. A sharded cell with
	// Cores < Shards cannot express parallelism; its timing measures
	// coordination overhead only, and CoordinationOverheadOnly marks it
	// so readers (and bench-compare) never mistake the number for a
	// scaling result.
	Cores                    int  `json:"cores"`
	CoordinationOverheadOnly bool `json:"coordination_overhead_only,omitempty"`
	// Parallel protocol counters (sharded cells only): how many
	// concurrent windows ran, how many of those were skipped by idle
	// shards, how many single-threaded barrier drains and cross-shard
	// exchange rounds occurred, and how many deliveries crossed shards.
	Windows           uint64 `json:"windows,omitempty"`
	EmptyShardWindows uint64 `json:"empty_shard_windows,omitempty"`
	BarrierDrains     uint64 `json:"barrier_drains,omitempty"`
	OutboxFlushes     uint64 `json:"outbox_flushes,omitempty"`
	RemoteDeliveries  uint64 `json:"remote_deliveries,omitempty"`
}

type scaleBenchReport struct {
	Go     string `json:"go"`
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	// Cores is the GOMAXPROCS the suite ran under and NumCPU the host's
	// logical CPU count; sharded-run speedups are only meaningful with
	// at least as many cores as shards, and cells that violate that are
	// marked coordination_overhead_only with their speedup keys
	// suppressed.
	Cores   int          `json:"cores"`
	NumCPU  int          `json:"num_cpu"`
	Quick   bool         `json:"quick"`
	Results []scaleEntry `json:"results"`
	// Summary holds the headline numbers the regression gate tracks.
	Summary map[string]float64 `json:"summary"`
}

// scaleScenario builds one cell of the grid: n nodes at the paper's
// density (area grows with sqrt(n), ~400 m grid regions) with the given
// frame loss rate.
func scaleScenario(n int, loss float64, quick bool) precinct.Scenario {
	s := precinct.DefaultScenario()
	s.Name = fmt.Sprintf("scale-n%d-loss%g", n, loss)
	s.Nodes = n
	s.AreaSide = 1200 * math.Sqrt(float64(n)/80)
	rows := int(math.Round(s.AreaSide / 400))
	if rows < 3 {
		rows = 3
	}
	s.Regions = rows * rows
	s.LossRate = loss
	s.Duration = 300
	s.Warmup = 60
	if quick {
		s.Duration = 120
		s.Warmup = 30
	}
	return s
}

// readRSSBytes reads the process's current resident set from
// /proc/self/status (VmRSS, in kB). Returns 0 where procfs is
// unavailable, which leaves the memory columns zero.
func readRSSBytes() uint64 {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmRSS:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb << 10
	}
	return 0
}

// runScaleCell executes one grid cell, measuring wall clock and the
// allocation count around the run, with a sampler goroutine tracking
// peak RSS. The heap is released to the OS first so one cell's garbage
// does not inflate the next cell's resident set.
func runScaleCell(s precinct.Scenario) (scaleEntry, error) {
	debug.FreeOSMemory()
	var peakRSS atomic.Uint64
	peakRSS.Store(readRSSBytes())
	stop := make(chan struct{})
	sampled := make(chan struct{})
	go func() {
		defer close(sampled)
		tick := time.NewTicker(100 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				if rss := readRSSBytes(); rss > peakRSS.Load() {
					peakRSS.Store(rss)
				}
			}
		}
	}()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	t0 := time.Now()
	res, stats, err := precinct.RunWithStats(s)
	wall := time.Since(t0)
	runtime.ReadMemStats(&after)
	if rss := readRSSBytes(); rss > peakRSS.Load() {
		peakRSS.Store(rss)
	}
	close(stop)
	<-sampled
	if err != nil {
		return scaleEntry{}, err
	}
	name := fmt.Sprintf("scale/n=%d/loss=%g", s.Nodes, s.LossRate)
	shards := s.Shards
	if shards > 1 {
		name += fmt.Sprintf("/shards=%d", shards)
	} else {
		shards = 1
	}
	e := scaleEntry{
		Name:         name,
		Nodes:        s.Nodes,
		Loss:         s.LossRate,
		Shards:       shards,
		SimSeconds:   s.Duration,
		WallSeconds:  wall.Seconds(),
		Events:       stats.Events,
		Requests:     res.Report.Requests,
		ByteHitRatio: res.Report.ByteHitRatio,
		MeanLatency:  res.Report.MeanLatency,
		P95Latency:   res.Report.P95Latency,
		Cores:        runtime.GOMAXPROCS(0),
	}
	if shards > 1 {
		e.CoordinationOverheadOnly = e.Cores < shards
		e.Windows = stats.Windows
		e.EmptyShardWindows = stats.EmptyShardWindows
		e.BarrierDrains = stats.BarrierDrains
		e.OutboxFlushes = stats.OutboxFlushes
		e.RemoteDeliveries = stats.RemoteDeliveries
	}
	if stats.Events > 0 {
		e.EventsPerSec = float64(stats.Events) / wall.Seconds()
		e.AllocsPerEvent = float64(after.Mallocs-before.Mallocs) / float64(stats.Events)
	}
	e.PeakRSSBytes = peakRSS.Load()
	e.MemBytesPerNode = float64(e.PeakRSSBytes) / float64(s.Nodes)
	return e, nil
}

// writeScaleBench runs the grid and writes the JSON report to path.
// quick shrinks the grid and durations for smoke use in CI.
func writeScaleBench(path string, quick bool) error {
	rep := scaleBenchReport{
		Go:      runtime.Version(),
		GOOS:    runtime.GOOS,
		GOARCH:  runtime.GOARCH,
		Cores:   runtime.GOMAXPROCS(0),
		NumCPU:  runtime.NumCPU(),
		Quick:   quick,
		Summary: map[string]float64{},
	}
	type cell struct {
		n    int
		loss float64
	}
	var cells []cell
	nodes := []int{250, 500, 1000, 2000}
	losses := []float64{0, 0.1, 0.3}
	if quick {
		nodes = []int{250, 500}
		losses = []float64{0, 0.1}
	}
	for _, n := range nodes {
		for _, loss := range losses {
			cells = append(cells, cell{n, loss})
		}
	}
	// The big tier (DESIGN.md section 14): 10k–100k nodes at the
	// acceptance loss rate. Full runs only — at these sizes even the
	// quick durations are minutes, defeating the point of -quick.
	if !quick {
		for _, n := range []int{10000, 50000, 100000} {
			cells = append(cells, cell{n, 0.3})
		}
	}
	shardCounts := []int{1, 2, 4}

	fmt.Printf("scale tier, end-to-end runs (%d cores):\n", rep.Cores)
	for _, c := range cells {
		var seq scaleEntry
		for _, shards := range shardCounts {
			s := scaleScenario(c.n, c.loss, quick)
			s.Shards = shards
			e, err := runScaleCell(s)
			if err != nil {
				return fmt.Errorf("%s: %w", s.Name, err)
			}
			rep.Results = append(rep.Results, e)
			fmt.Printf("  %-34s %8.2fs wall %10.0f ev/s %6.1f allocs/ev  hit %.3f  p95 %.3fs  %5.1f KiB/node\n",
				e.Name, e.WallSeconds, e.EventsPerSec, e.AllocsPerEvent,
				e.ByteHitRatio, e.P95Latency, e.MemBytesPerNode/1024)
			if e.Requests == 0 {
				return fmt.Errorf("%s: no requests issued", s.Name)
			}
			if shards == 1 {
				seq = e
				continue
			}
			// The sharded scheduler is report-identical to the
			// sequential reference; a diverging event count means the
			// two modes did different work and every speedup number
			// below would be meaningless.
			if e.Events != seq.Events {
				return fmt.Errorf("%s: executed %d events, sequential reference executed %d",
					e.Name, e.Events, seq.Events)
			}
		}
	}

	for _, e := range rep.Results {
		key := fmt.Sprintf("n%d_loss%g", e.Nodes, e.Loss)
		if e.Shards > 1 {
			key += fmt.Sprintf("_shards%d", e.Shards)
		}
		rep.Summary[key+"_events_per_sec"] = e.EventsPerSec
		rep.Summary[key+"_allocs_per_event"] = e.AllocsPerEvent
		rep.Summary[key+"_mem_bytes_per_node"] = e.MemBytesPerNode
	}
	// Per-cell scaling efficiency: wall-clock speedup of each sharded run
	// over the sequential reference of the same cell. Cells measured
	// with fewer cores than shards are suppressed — a "speedup" from a
	// host that cannot run the shards concurrently measures coordination
	// overhead, not scaling, and committing it under a _speedup key
	// misled every prior reading of this file. Those cells keep their
	// raw timings and carry coordination_overhead_only instead.
	seqWall := map[string]float64{}
	for _, e := range rep.Results {
		if e.Shards == 1 {
			seqWall[fmt.Sprintf("n%d_loss%g", e.Nodes, e.Loss)] = e.WallSeconds
		}
	}
	for _, e := range rep.Results {
		if e.Shards > 1 && !e.CoordinationOverheadOnly {
			cell := fmt.Sprintf("n%d_loss%g", e.Nodes, e.Loss)
			if base := seqWall[cell]; base > 0 && e.WallSeconds > 0 {
				rep.Summary[fmt.Sprintf("%s_shards%d_speedup", cell, e.Shards)] = base / e.WallSeconds
			}
		}
	}

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s\n", path)
	return nil
}
