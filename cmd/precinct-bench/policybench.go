package main

// Policy-lab benchmark suite, run via -policies. It runs every
// registered replacement policy (DESIGN.md section 16) over the same
// 1000-node scale-tier scenario under two workloads — the stationary
// Zipf baseline and the flash-crowd stressor — plus one k=2
// replica-region cell for the paper's GD-LD policy, and emits a
// machine-readable JSON report (BENCH_policies.json at the repository
// root holds the committed numbers; see EXPERIMENTS.md §Policy lab).
// Each cell records the headline cache metrics so the competitor
// policies' hit-ratio and latency trade-offs are tracked alongside
// their cost.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"precinct"
)

type policyEntry struct {
	// Name is "policy/<policy>/<workload>", with a "/rep<k>" suffix on
	// replica cells.
	Name           string  `json:"name"`
	Policy         string  `json:"policy"`
	Workload       string  `json:"workload"`
	Replicas       int     `json:"replicas"`
	Nodes          int     `json:"nodes"`
	SimSeconds     float64 `json:"sim_seconds"`
	WallSeconds    float64 `json:"wall_seconds"`
	Events         uint64  `json:"events"`
	EventsPerSec   float64 `json:"events_per_sec"`
	Requests       uint64  `json:"requests"`
	Completed      uint64  `json:"completed"`
	ByteHitRatio   float64 `json:"byte_hit_ratio"`
	FalseHitRatio  float64 `json:"false_hit_ratio"`
	MeanLatency    float64 `json:"mean_latency_s"`
	P50Latency     float64 `json:"p50_latency_s"`
	P95Latency     float64 `json:"p95_latency_s"`
	SearchMessages uint64  `json:"search_messages"`
}

type policyBenchReport struct {
	Go      string        `json:"go"`
	GOOS    string        `json:"goos"`
	GOARCH  string        `json:"goarch"`
	Cores   int           `json:"cores"`
	Quick   bool          `json:"quick"`
	Results []policyEntry `json:"results"`
	// Summary holds the per-policy fields bench-compare reads advisory.
	Summary map[string]float64 `json:"summary"`
}

// policyBenchWorkloads is the workload axis: the stationary baseline the
// paper evaluates on, and the flash-crowd source whose popularity
// inversion separates recency- from frequency-leaning policies.
func policyBenchWorkloads() []string {
	return []string{"default", "flash-crowd"}
}

// policyBenchScenario builds one cell: the 1000-node scale-tier scenario
// (constant density, lossless radio so hit-ratio differences come from
// the policy alone) running the named policy under the given workload
// with the given replica-region count (0 keeps the scenario default).
func policyBenchScenario(policy, kind string, replicas int, quick bool) precinct.Scenario {
	s := scaleScenario(1000, 0, quick)
	s.Policy = policy
	s.Workload = kind
	// A third of the default per-peer cache: at the 1000-node tier the
	// aggregate cache otherwise covers most of the catalog and every
	// policy converges to the same hit ratio; real replacement pressure
	// is what separates them.
	s.CacheFraction = 0.005
	s.Name = fmt.Sprintf("policy-%s-%s", policy, kind)
	if replicas > 1 {
		s.Replicas = replicas
		s.Name = fmt.Sprintf("%s-rep%d", s.Name, replicas)
	}
	return s
}

// runPolicyCell executes one cell and collapses the result into a
// report entry.
func runPolicyCell(s precinct.Scenario, policy, kind string, replicas int) (policyEntry, error) {
	t0 := time.Now()
	res, stats, err := precinct.RunWithStats(s)
	wall := time.Since(t0)
	if err != nil {
		return policyEntry{}, err
	}
	r := res.Report
	name := fmt.Sprintf("policy/%s/%s", policy, kind)
	if replicas > 1 {
		name = fmt.Sprintf("%s/rep%d", name, replicas)
	}
	e := policyEntry{
		Name:           name,
		Policy:         policy,
		Workload:       kind,
		Replicas:       replicas,
		Nodes:          s.Nodes,
		SimSeconds:     s.Duration,
		WallSeconds:    wall.Seconds(),
		Events:         stats.Events,
		Requests:       r.Requests,
		Completed:      r.Completed,
		ByteHitRatio:   r.ByteHitRatio,
		FalseHitRatio:  r.FalseHitRatio,
		MeanLatency:    r.MeanLatency,
		P50Latency:     r.P50Latency,
		P95Latency:     r.P95Latency,
		SearchMessages: r.SearchMessages,
	}
	if stats.Events > 0 && wall > 0 {
		e.EventsPerSec = float64(stats.Events) / wall.Seconds()
	}
	return e, nil
}

// writePolicyBench runs the policy sweep and writes the JSON report to
// path. quick shrinks durations for smoke use in CI.
func writePolicyBench(path string, quick bool) error {
	rep := policyBenchReport{
		Go:      runtime.Version(),
		GOOS:    runtime.GOOS,
		GOARCH:  runtime.GOARCH,
		Cores:   runtime.GOMAXPROCS(0),
		Quick:   quick,
		Summary: map[string]float64{},
	}

	type cell struct {
		policy, kind string
		replicas     int
	}
	var cells []cell
	for _, policy := range precinct.PolicyNames() {
		for _, kind := range policyBenchWorkloads() {
			cells = append(cells, cell{policy, kind, 0})
		}
	}
	// One replica-layer cell: the paper's policy with two replica
	// regions per key, so the k>1 custody cost is tracked too.
	cells = append(cells, cell{"gd-ld", "default", 2})

	fmt.Printf("policy lab, 1000-node tier (%d cores):\n", rep.Cores)
	for _, c := range cells {
		s := policyBenchScenario(c.policy, c.kind, c.replicas, quick)
		e, err := runPolicyCell(s, c.policy, c.kind, c.replicas)
		if err != nil {
			return fmt.Errorf("%s: %w", s.Name, err)
		}
		if e.Requests == 0 {
			return fmt.Errorf("%s: no requests issued", s.Name)
		}
		rep.Results = append(rep.Results, e)
		fmt.Printf("  %-34s %8.2fs wall %10.0f ev/s  hit %.3f  false %.4f  mean %.3fs  p95 %.3fs\n",
			e.Name, e.WallSeconds, e.EventsPerSec, e.ByteHitRatio, e.FalseHitRatio,
			e.MeanLatency, e.P95Latency)
		key := c.policy + "/" + c.kind
		if c.replicas > 1 {
			key = fmt.Sprintf("%s/rep%d", key, c.replicas)
		}
		rep.Summary[key+"_byte_hit_ratio"] = e.ByteHitRatio
		rep.Summary[key+"_mean_latency_s"] = e.MeanLatency
	}

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s\n", path)
	return nil
}
