package main

// Radio hot-path benchmark suite, run via -radiojson. It measures the
// spatial grid index against the retained linear reference scan
// (Scenario.LinearRadio / radio.Config.LinearScan) and emits a
// machine-readable JSON report so performance can be tracked across
// commits (BENCH_radio.json at the repository root holds the committed
// numbers; see DESIGN.md §Performance).

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"precinct"
	"precinct/internal/geo"
	"precinct/internal/mobility"
	"precinct/internal/radio"
	"precinct/internal/sim"
)

type benchEntry struct {
	// Name is "<benchmark>/<path>/n=<nodes>", e.g.
	// "neighbors/static/grid/n=320".
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

type radioBenchReport struct {
	Go      string       `json:"go"`
	GOOS    string       `json:"goos"`
	GOARCH  string       `json:"goarch"`
	Results []benchEntry `json:"results"`
	// Summary holds the headline ratios the acceptance criteria track:
	// linear-scan ns/op divided by grid ns/op per benchmark family.
	Summary map[string]float64 `json:"summary"`
}

var radioBenchSizes = []int{80, 160, 320, 640}

// staticChannel mirrors the internal/radio benchmark topology: uniform
// random nodes in the paper's 1200x1200 m area.
func staticChannel(n int, linear bool) (*radio.Channel, *sim.Scheduler) {
	rng := rand.New(rand.NewSource(1))
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Pt(rng.Float64()*1200, rng.Float64()*1200)
	}
	mob, err := mobility.NewStatic(pts)
	if err != nil {
		panic(err)
	}
	cfg := radio.DefaultConfig()
	cfg.LinearScan = linear
	sched := sim.NewScheduler()
	ch, err := radio.New(cfg, sched, mob, nil, nil)
	if err != nil {
		panic(err)
	}
	ch.SetHandler(func(radio.NodeID, radio.Frame) {})
	return ch, sched
}

func waypointChannel(n int, linear bool) (*radio.Channel, *sim.Scheduler) {
	mob, err := mobility.NewWaypoint(n, mobility.DefaultWaypointConfig(), sim.NewRNG(1))
	if err != nil {
		panic(err)
	}
	cfg := radio.DefaultConfig()
	cfg.LinearScan = linear
	sched := sim.NewScheduler()
	ch, err := radio.New(cfg, sched, mob, nil, nil)
	if err != nil {
		panic(err)
	}
	ch.SetHandler(func(radio.NodeID, radio.Frame) {})
	return ch, sched
}

func record(results *[]benchEntry, name string, r testing.BenchmarkResult) {
	*results = append(*results, benchEntry{
		Name:        name,
		NsPerOp:     float64(r.NsPerOp()),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Iterations:  r.N,
	})
	fmt.Printf("  %-36s %12.0f ns/op %6d allocs/op\n", name, float64(r.NsPerOp()), r.AllocsPerOp())
}

// writeRadioBench runs the suite and writes the JSON report to path.
func writeRadioBench(path string) error {
	rep := radioBenchReport{
		Go:      runtime.Version(),
		GOOS:    runtime.GOOS,
		GOARCH:  runtime.GOARCH,
		Summary: map[string]float64{},
	}

	// Neighbor query, static topology (pure query cost, warm caches).
	fmt.Println("neighbor query, static topology:")
	for _, linear := range []bool{false, true} {
		for _, n := range radioBenchSizes {
			n, linear := n, linear
			r := testing.Benchmark(func(b *testing.B) {
				ch, _ := staticChannel(n, linear)
				ch.Neighbors(0) // warm scratch buffers
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ch.Neighbors(radio.NodeID(i % n))
				}
			})
			record(&rep.Results, fmt.Sprintf("neighbors/static/%s/n=%d", pathName(linear), n), r)
		}
	}

	// Neighbor query under waypoint mobility (includes amortized grid
	// rebuilds as the clock advances).
	fmt.Println("neighbor query, waypoint mobility:")
	for _, linear := range []bool{false, true} {
		for _, n := range radioBenchSizes {
			n, linear := n, linear
			r := testing.Benchmark(func(b *testing.B) {
				ch, sched := waypointChannel(n, linear)
				ch.Neighbors(0)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if i%64 == 0 {
						at := sched.Now() + 0.25
						sched.At(at, func() {})
						sched.Run(at)
					}
					ch.Neighbors(radio.NodeID(i % n))
				}
			})
			record(&rep.Results, fmt.Sprintf("neighbors/waypoint/%s/n=%d", pathName(linear), n), r)
		}
	}

	// Broadcast: one-hop delivery fan-out through the same query.
	fmt.Println("broadcast:")
	for _, linear := range []bool{false, true} {
		for _, n := range []int{80, 320} {
			n, linear := n, linear
			r := testing.Benchmark(func(b *testing.B) {
				ch, sched := staticChannel(n, linear)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ch.Broadcast(radio.NodeID(i%n), 512, nil)
					if sched.Len() > 4096 {
						sched.RunAll()
					}
				}
			})
			record(&rep.Results, fmt.Sprintf("broadcast/%s/n=%d", pathName(linear), n), r)
		}
	}

	// End-to-end simulation runs.
	fmt.Println("end-to-end Run:")
	for _, linear := range []bool{false, true} {
		for _, n := range radioBenchSizes {
			n, linear := n, linear
			r := testing.Benchmark(func(b *testing.B) {
				s := precinct.DefaultScenario()
				s.Nodes = n
				s.Items = 200
				s.Duration = 120
				s.Warmup = 30
				s.LinearRadio = linear
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := precinct.Run(s); err != nil {
						b.Fatal(err)
					}
				}
			})
			record(&rep.Results, fmt.Sprintf("run/%s/n=%d", pathName(linear), n), r)
		}
	}

	// Figure 4/5 wall clock at quick scale, for tracking the figure
	// pipeline end to end.
	fmt.Println("figure 4-5 wall clock:")
	t0 := time.Now()
	if _, _, err := precinct.Fig4And5(precinct.ExperimentConfig{
		Seed: 1, Duration: 300, Warmup: 100, Nodes: 40, Items: 200,
	}); err != nil {
		return err
	}
	fig45 := time.Since(t0)
	rep.Results = append(rep.Results, benchEntry{
		Name:       "fig4and5/quick",
		NsPerOp:    float64(fig45.Nanoseconds()),
		Iterations: 1,
	})
	fmt.Printf("  %-36s %12v\n", "fig4and5/quick", fig45.Round(time.Millisecond))

	// Headline ratios: linear / grid per benchmark family and size.
	byName := map[string]float64{}
	for _, e := range rep.Results {
		byName[e.Name] = e.NsPerOp
	}
	for _, fam := range []string{"neighbors/static", "neighbors/waypoint", "broadcast", "run"} {
		for _, n := range radioBenchSizes {
			lin := byName[fmt.Sprintf("%s/linear/n=%d", fam, n)]
			grid := byName[fmt.Sprintf("%s/grid/n=%d", fam, n)]
			if grid > 0 && lin > 0 {
				rep.Summary[fmt.Sprintf("%s_speedup_n%d", fam, n)] = lin / grid
			}
		}
	}

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s\n", path)
	return nil
}

func pathName(linear bool) string {
	if linear {
		return "linear"
	}
	return "grid"
}
