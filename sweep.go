package precinct

import (
	"fmt"

	"precinct/internal/pool"
	"precinct/internal/stats"
)

// Sweep runs the scenarios concurrently on a worker pool and returns the
// results in input order. workers <= 0 uses GOMAXPROCS. The first error
// aborts the sweep: already-running scenarios finish, but queued scenarios
// are skipped. On failure the returned error joins every scenario error
// that occurred (errors.Join), each tagged with its scenario index and
// name.
//
// Each scenario's simulation core is single-threaded and deterministic;
// the sweep level is where this library uses the machine's parallelism.
func Sweep(scenarios []Scenario, workers int) ([]Result, error) {
	if len(scenarios) == 0 {
		return nil, nil
	}
	results := make([]Result, len(scenarios))
	err := runPool(len(scenarios), workers, func(i int) error {
		var err error
		results[i], err = Run(scenarios[i])
		if err != nil {
			return fmt.Errorf("precinct: scenario %d (%s): %w", i, scenarios[i].Name, err)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// runPool executes job(0..n-1) on a worker pool. It is a thin alias
// for pool.Run, kept so existing call sites read unchanged.
func runPool(n, workers int, job func(i int) error) error {
	return pool.Run(n, workers, job)
}

// Replicate runs the same scenario under each seed (in parallel) and
// returns the individual results plus the mean report.
func Replicate(s Scenario, seeds []int64, workers int) ([]Result, Report, error) {
	if len(seeds) == 0 {
		return nil, Report{}, fmt.Errorf("precinct: Replicate needs at least one seed")
	}
	scenarios := make([]Scenario, len(seeds))
	for i, seed := range seeds {
		sc := s
		sc.Seed = seed
		sc.Name = fmt.Sprintf("%s/seed=%d", s.Name, seed)
		scenarios[i] = sc
	}
	results, err := Sweep(scenarios, workers)
	if err != nil {
		return nil, Report{}, err
	}
	reports := make([]Report, len(results))
	for i, r := range results {
		reports[i] = r.Report
	}
	return results, MeanReport(reports), nil
}

// Summary is a per-metric statistical digest of replicated runs: mean,
// spread and a 95% confidence interval, keyed by metric name
// ("mean_latency", "byte_hit_ratio", "false_hit_ratio",
// "control_messages", "energy_per_request", "failure_rate").
type Summary map[string]stats.Summary

// Summarize digests the reports of replicated runs. Use it when the
// question is "is this difference real" rather than "what is the average".
func Summarize(reports []Report) Summary {
	streams := map[string]*stats.Stream{
		"mean_latency":       {},
		"byte_hit_ratio":     {},
		"false_hit_ratio":    {},
		"control_messages":   {},
		"energy_per_request": {},
		"failure_rate":       {},
	}
	for _, r := range reports {
		streams["mean_latency"].Add(r.MeanLatency)
		streams["byte_hit_ratio"].Add(r.ByteHitRatio)
		streams["false_hit_ratio"].Add(r.FalseHitRatio)
		streams["control_messages"].Add(float64(r.ControlMessages))
		streams["energy_per_request"].Add(r.EnergyPerRequest)
		failRate := 0.0
		if r.Requests > 0 {
			failRate = float64(r.Failures) / float64(r.Requests)
		}
		streams["failure_rate"].Add(failRate)
	}
	out := make(Summary, len(streams))
	for name, s := range streams {
		out[name] = s.Summarize()
	}
	return out
}

// MeanReport averages the scalar fields of several reports (counters are
// averaged too, rounding down). ByClass maps are summed then divided.
func MeanReport(reports []Report) Report {
	if len(reports) == 0 {
		return Report{}
	}
	n := float64(len(reports))
	var out Report
	out.ByClass = make(map[string]uint64)
	for _, r := range reports {
		out.Requests += r.Requests
		out.Completed += r.Completed
		out.Failures += r.Failures
		out.MeanLatency += r.MeanLatency
		out.P50Latency += r.P50Latency
		out.P95Latency += r.P95Latency
		out.MaxLatency += r.MaxLatency
		out.ByteHitRatio += r.ByteHitRatio
		out.FalseHitRatio += r.FalseHitRatio
		out.ControlMessages += r.ControlMessages
		out.SearchMessages += r.SearchMessages
		out.MaintenanceMessages += r.MaintenanceMessages
		out.UpdatesIssued += r.UpdatesIssued
		out.PollsIssued += r.PollsIssued
		out.EnergyTotal += r.EnergyTotal
		out.EnergyPerRequest += r.EnergyPerRequest
		for k, v := range r.ByClass {
			out.ByClass[k] += v
		}
	}
	div := func(v uint64) uint64 { return uint64(float64(v) / n) }
	out.Requests = div(out.Requests)
	out.Completed = div(out.Completed)
	out.Failures = div(out.Failures)
	out.ControlMessages = div(out.ControlMessages)
	out.SearchMessages = div(out.SearchMessages)
	out.MaintenanceMessages = div(out.MaintenanceMessages)
	out.UpdatesIssued = div(out.UpdatesIssued)
	out.PollsIssued = div(out.PollsIssued)
	for k := range out.ByClass {
		out.ByClass[k] = div(out.ByClass[k])
	}
	out.MeanLatency /= n
	out.P50Latency /= n
	out.P95Latency /= n
	out.MaxLatency /= n
	out.ByteHitRatio /= n
	out.FalseHitRatio /= n
	out.EnergyTotal /= n
	out.EnergyPerRequest /= n
	return out
}
