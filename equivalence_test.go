package precinct

import (
	"fmt"
	"reflect"
	"testing"
)

// TestGridLinearEquivalence enforces the radio determinism contract: a run
// served by the spatial grid index must be bit-for-bit identical to the
// same run served by the retained O(N) linear scan (Scenario.LinearRadio).
// Any divergence — membership, ordering, or mobility access pattern —
// shows up as a differing Report, ProtocolStats or RadioStats.
func TestGridLinearEquivalence(t *testing.T) {
	base := func() Scenario {
		s := DefaultScenario()
		s.Nodes = 40
		s.Items = 200
		s.Duration = 300
		s.Warmup = 100
		return s
	}

	type variant struct {
		name string
		mut  func(*Scenario)
	}
	cases := []variant{}
	for _, mob := range []string{"static", "waypoint"} {
		for _, ret := range []string{"precinct", "flooding"} {
			for _, seed := range []int64{1, 2, 3} {
				mob, ret, seed := mob, ret, seed
				cases = append(cases, variant{
					name: fmt.Sprintf("%s/%s/seed=%d", mob, ret, seed),
					mut: func(s *Scenario) {
						s.MobilityModel = mob
						s.Retrieval = ret
						s.Seed = seed
					},
				})
			}
		}
	}
	cases = append(cases,
		variant{"random-walk/precinct/seed=1", func(s *Scenario) {
			s.MobilityModel = "random-walk"
			s.Seed = 1
		}},
		// Gauss-Markov has no speed bound, exercising the grid's
		// rebuild-per-event-time fallback.
		variant{"gauss-markov/precinct/seed=1", func(s *Scenario) {
			s.MobilityModel = "gauss-markov"
			s.Seed = 1
		}},
		// Beaconing switches the grid to incremental maintenance of
		// observed positions.
		variant{"waypoint/beacon/seed=1", func(s *Scenario) {
			s.MobilityModel = "waypoint"
			s.BeaconInterval = 2
			s.Seed = 1
		}},
		variant{"waypoint/collisions/seed=1", func(s *Scenario) {
			s.MobilityModel = "waypoint"
			s.Collisions = true
			s.Seed = 1
		}},
		// Node death removes entries from neighbor sets on both paths.
		variant{"waypoint/faults/seed=2", func(s *Scenario) {
			s.MobilityModel = "waypoint"
			s.Seed = 2
			s.Faults = []Fault{
				{At: 150, Node: 3, Kind: "crash"},
				{At: 180, Node: 17, Kind: "crash"},
			}
		}},
	)

	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			s := base()
			c.mut(&s)

			grid, err := Run(s)
			if err != nil {
				t.Fatal(err)
			}
			s.LinearRadio = true
			linear, err := Run(s)
			if err != nil {
				t.Fatal(err)
			}

			if !reflect.DeepEqual(grid.Report, linear.Report) {
				t.Errorf("Report diverged:\ngrid:   %+v\nlinear: %+v", grid.Report, linear.Report)
			}
			if !reflect.DeepEqual(grid.Protocol, linear.Protocol) {
				t.Errorf("ProtocolStats diverged:\ngrid:   %+v\nlinear: %+v", grid.Protocol, linear.Protocol)
			}
			if !reflect.DeepEqual(grid.Radio, linear.Radio) {
				t.Errorf("RadioStats diverged:\ngrid:   %+v\nlinear: %+v", grid.Radio, linear.Radio)
			}
		})
	}
}
