package precinct_test

import (
	"fmt"
	"log"

	"precinct"
)

// small returns a fast scenario for the examples.
func small() precinct.Scenario {
	s := precinct.DefaultScenario()
	s.Nodes = 25
	s.Items = 60
	s.Duration = 150
	s.Warmup = 30
	return s
}

// ExampleRun simulates the paper's default environment at a small scale
// and checks that the cooperative cache is serving requests.
func ExampleRun() {
	res, err := precinct.Run(small())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("answered requests:", res.Report.Completed > 0)
	fmt.Println("cache produced hits:", res.Report.ByteHitRatio > 0)
	// Output:
	// answered requests: true
	// cache produced hits: true
}

// ExampleSweep compares two cache replacement policies on identical
// workload and mobility traces.
func ExampleSweep() {
	gdld := small()
	gdld.Policy = "gd-ld"
	gdsize := small()
	gdsize.Policy = "gd-size"

	results, err := precinct.Sweep([]precinct.Scenario{gdld, gdsize}, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("runs:", len(results))
	fmt.Println("same workload:", results[0].Report.Requests == results[1].Report.Requests)
	// Output:
	// runs: 2
	// same workload: true
}

// ExampleReplicate averages a scenario across seeds and reports a 95%
// confidence interval for the mean latency.
func ExampleReplicate() {
	_, mean, err := precinct.Replicate(small(), []int64{1, 2, 3}, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("latency measured:", mean.MeanLatency > 0)
	// Output:
	// latency measured: true
}

// ExampleScenario_faults injects a crash wave and observes that replica
// regions keep the affected keys reachable.
func ExampleScenario_faults() {
	s := small()
	s.Nodes = 40 // keep the network connected through the crash wave
	for i := 0; i < s.Nodes/5; i++ {
		s.Faults = append(s.Faults, precinct.Fault{At: 60, Node: i * 5, Kind: "crash"})
	}
	res, err := precinct.Run(s)
	if err != nil {
		log.Fatal(err)
	}
	avail := float64(res.Report.Completed) / float64(res.Report.Requests)
	fmt.Println("survived the crash wave:", avail > 0.5)
	// Output:
	// survived the crash wave: true
}
