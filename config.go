package precinct

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// MarshalJSON-friendly by construction: Scenario contains only plain
// values, so scenarios can be stored next to the results they produced.

// SaveScenario writes the scenario as indented JSON.
func SaveScenario(s Scenario, w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		return fmt.Errorf("precinct: encoding scenario: %w", err)
	}
	return nil
}

// SaveScenarioFile writes the scenario to a JSON file.
func SaveScenarioFile(s Scenario, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("precinct: %w", err)
	}
	if err := SaveScenario(s, f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadScenario reads a JSON scenario. Fields absent from the document
// keep the DefaultScenario values, so a config file only needs to list
// what it changes; unknown fields are rejected to catch typos.
func LoadScenario(r io.Reader) (Scenario, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return Scenario{}, fmt.Errorf("precinct: reading scenario: %w", err)
	}
	s := DefaultScenario()
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Scenario{}, fmt.Errorf("precinct: decoding scenario: %w", err)
	}
	return s, nil
}

// LoadScenarioFile reads a JSON scenario from a file.
func LoadScenarioFile(path string) (Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return Scenario{}, fmt.Errorf("precinct: %w", err)
	}
	defer f.Close()
	return LoadScenario(f)
}
