# Developer entry points. `make ci` is the gate a change must pass; the
# individual targets exist for quick iteration.

GO ?= go

.PHONY: all vet build test race bench-smoke bench-radio ci

all: build

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One fast pass over every benchmark so regressions in the bench code
# itself are caught without waiting for full measurement runs.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Regenerate the committed radio hot-path numbers (BENCH_radio.json).
# Run on a quiet machine; takes a few minutes at paper scale.
bench-radio:
	$(GO) run ./cmd/precinct-bench -radiojson BENCH_radio.json

ci: vet build test race bench-smoke
