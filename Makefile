# Developer entry points. `make ci` is the gate a change must pass; the
# individual targets exist for quick iteration.

GO ?= go

.PHONY: all vet build test race race-parallel check fuzz-smoke bench-smoke bench-radio bench-scale bench-workloads bench-policies bench-parallel bench-parallel-smoke bench-compare bench-compare-allocs bench-compare-advisory resume-smoke scale-smoke workload-smoke policy-smoke cover soak soak-100k ci

all: build

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The sharded scheduler's dedicated race gate (DESIGN.md section 13):
# the pooling and grid/linear equivalence suites, the canonical-trace
# tests and the parallel-equivalence suite — every scenario of which
# runs across the fuzzgen shard axis (2, 3, 4, 5, 8 shards) — under the
# race detector, at both GOMAXPROCS=1 (forced interleaving through one
# OS thread: every barrier handoff and park/wake path runs) and
# GOMAXPROCS=4 (true concurrency where the host has the cores; on a
# smaller host the runtime multiplexes, which still schedules
# differently than 1). -short caps the large-N seeds (the full sizes
# run race-free in `test`; under race the parallel suite caps itself
# the same way via the race build tag).
race-parallel:
	GOMAXPROCS=1 $(GO) test -race -short -count=1 -run 'Parallel|Pooling|Equivalence|Canonicalize|Shuffle' .
	GOMAXPROCS=4 $(GO) test -race -short -count=1 -run 'Parallel|Pooling|Equivalence|Canonicalize|Shuffle' .
	$(GO) test -race -count=1 ./internal/pool ./internal/trace

# The runtime invariant suite (DESIGN.md section 9) under the race
# detector: fuzzed scenarios, metamorphic relations and the
# broken-build detection test.
check:
	$(GO) test -race -run Invariant -count=1 ./...

# A short pass over every fuzz target so the corpora and harnesses are
# kept working; real fuzzing campaigns just raise -fuzztime.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzSegmentsIntersect$$' -fuzztime $(FUZZTIME) ./internal/geo
	$(GO) test -run '^$$' -fuzz '^FuzzRectClamp$$' -fuzztime $(FUZZTIME) ./internal/geo
	$(GO) test -run '^$$' -fuzz '^FuzzGeoHash$$' -fuzztime $(FUZZTIME) ./internal/region
	$(GO) test -run '^$$' -fuzz '^FuzzRegionForPoint$$' -fuzztime $(FUZZTIME) ./internal/region
	$(GO) test -run '^$$' -fuzz '^FuzzZipfRank$$' -fuzztime $(FUZZTIME) ./internal/workload
	$(GO) test -run '^$$' -fuzz '^FuzzParseTrace$$' -fuzztime $(FUZZTIME) ./internal/workload
	$(GO) test -run '^$$' -fuzz '^FuzzRead$$' -fuzztime $(FUZZTIME) ./internal/trace
	$(GO) test -run '^$$' -fuzz '^FuzzDecode$$' -fuzztime $(FUZZTIME) ./internal/checkpoint

# One fast pass over every benchmark so regressions in the bench code
# itself are caught without waiting for full measurement runs.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Regenerate the committed radio hot-path numbers (BENCH_radio.json).
# Run on a quiet machine; takes a few minutes at paper scale.
bench-radio:
	$(GO) run ./cmd/precinct-bench -radiojson BENCH_radio.json

# Regenerate the committed scale-tier numbers (BENCH_scale.json):
# end-to-end runs over nodes {250,500,1000,2000} x loss {0,0.1,0.3}.
# Run on a quiet machine.
bench-scale:
	$(GO) run ./cmd/precinct-bench -scale BENCH_scale.json

# Regenerate the committed workload-lab numbers (BENCH_workloads.json):
# every workload source over the same 1000-node scenario (DESIGN.md
# section 15). Run on a quiet machine.
bench-workloads:
	$(GO) run ./cmd/precinct-bench -workloads BENCH_workloads.json

# Regenerate the committed policy-lab numbers (BENCH_policies.json):
# every registered replacement policy over the same 1000-node scenario
# under two workloads, plus a k=2 replica cell (DESIGN.md section 16).
# Run on a quiet machine.
bench-policies:
	$(GO) run ./cmd/precinct-bench -policies BENCH_policies.json

# Regenerate the committed parallel-scaling numbers (BENCH_parallel.json):
# the sharded scheduler swept over shards {1,2,4} x cores {1,2,4} on the
# 10000-node acceptance cell, GOMAXPROCS pinned per column. Columns the
# host cannot run (cores > NumCPU) are skipped and logged — regenerate
# on a multi-core machine to fill them in. Run on a quiet machine.
bench-parallel:
	$(GO) run ./cmd/precinct-bench -parallel BENCH_parallel.json

# The ci smoke for the sweep: same grid on a 500-node quick cell,
# written to a throwaway file — proves the sweep machinery end to end
# without touching the committed baseline.
bench-parallel-smoke:
	@dir=$$(mktemp -d) && trap 'rm -rf "$$dir"' EXIT && \
	$(GO) run ./cmd/precinct-bench -quick -parallel "$$dir/parallel.json" && \
	echo "bench-parallel-smoke: sweep completed"

# Bench regression gate: re-run a fast probe subset (radio neighbor
# queries + two mid-size scale cells) and compare against the committed
# baselines; more than TOLERANCE slower, or more allocations, exits 3.
# Wall-clock probes are machine-dependent, so ci runs the full timing
# comparison advisory (note the leading '-' there); to make timing
# binding, regenerate the baselines on the measurement machine (make
# bench-radio bench-scale), or widen the gate on a noisy box:
#
#	make bench-compare TOLERANCE=0.30
TOLERANCE ?= 0.15
bench-compare:
	$(GO) run ./cmd/precinct-bench -compare -tolerance $(TOLERANCE)

# The binding half of the gate: allocation counts are deterministic (the
# simulation replays exactly on any machine), so allocs/op and
# allocs_per_event regressions fail ci outright; timing prints advisory.
bench-compare-allocs:
	$(GO) run ./cmd/precinct-bench -compare -allocs-only -tolerance $(TOLERANCE)

# The advisory half: the full timing comparison, never failing the
# build. Regressions print with an ADVISORY: prefix so CI logs
# distinguish machine-dependent timing drift from binding failures.
bench-compare-advisory:
	$(GO) run ./cmd/precinct-bench -compare -advisory -tolerance $(TOLERANCE)

# Per-package coverage floors. Baselines recorded at PR 4 (2026-08):
# internal/cache 86.6%, internal/node 82.5% of statements; the floor is
# the baseline minus 1 point of slack for coverage-neutral churn. Raise
# the floors when coverage improves; never lower them to admit a drop.
COVER_FLOOR_CACHE ?= 85.6
COVER_FLOOR_NODE ?= 81.5
COVER_FLOOR_REGION ?= 85.0
cover:
	@fail=0; \
	for spec in "internal/cache $(COVER_FLOOR_CACHE)" "internal/node $(COVER_FLOOR_NODE)" "internal/region $(COVER_FLOOR_REGION)"; do \
		set -- $$spec; pkg=$$1; floor=$$2; \
		pct=$$($(GO) test -cover ./$$pkg/ | awk -F'coverage: ' '/coverage:/{split($$2,a,"%"); print a[1]}'); \
		if [ -z "$$pct" ]; then echo "cover: $$pkg: no coverage output"; fail=1; continue; fi; \
		echo "cover: $$pkg $$pct% (floor $$floor%)"; \
		if [ "$$(awk -v p="$$pct" -v f="$$floor" 'BEGIN{print (p+0 >= f+0)}')" != 1 ]; then \
			echo "cover: $$pkg dropped below its $$floor% floor"; fail=1; \
		fi; \
	done; exit $$fail

# End-to-end checkpoint/resume proof through the real CLI (DESIGN.md
# section 10): run a scenario to completion, run it again interrupted at
# a checkpoint boundary, resume from the snapshot on disk, and require
# the two reports to be byte-identical.
resume-smoke:
	@dir=$$(mktemp -d) && trap 'rm -rf "$$dir"' EXIT && \
	flags="-nodes 30 -warmup 10 -duration 120" && \
	$(GO) run ./cmd/precinct-sim $$flags > "$$dir/full.txt" && \
	$(GO) run ./cmd/precinct-sim $$flags -checkpoint-dir "$$dir" -checkpoint-interval 15 -stop-after 60 > /dev/null && \
	test -n "$$(ls "$$dir"/*.ckpt)" && \
	$(GO) run ./cmd/precinct-sim $$flags -checkpoint-dir "$$dir" -resume > "$$dir/resumed.txt" && \
	diff "$$dir/full.txt" "$$dir/resumed.txt" && \
	echo "resume-smoke: resumed run identical to uninterrupted run"

# Scale-tier smoke: a 1000-node, lossy scenario (paper density: the
# area grows with sqrt(N), ~400 m regions) must (1) complete under the
# full runtime invariant catalog and (2) survive an interrupted
# checkpoint/resume round-trip bit-identically to an uninterrupted run.
# A second, 10000-node cell (the SoA layout's first big tier, DESIGN.md
# section 14) runs the invariant catalog at a smoke-sized horizon.
scale-smoke:
	@dir=$$(mktemp -d) && trap 'rm -rf "$$dir"' EXIT && \
	flags="-nodes 1000 -area 4243 -regions 121 -loss 0.1 -warmup 30 -duration 180" && \
	$(GO) run ./cmd/precinct-sim $$flags -check > "$$dir/checked.txt" && \
	$(GO) run ./cmd/precinct-sim $$flags > "$$dir/full.txt" && \
	$(GO) run ./cmd/precinct-sim $$flags -checkpoint-dir "$$dir" -checkpoint-interval 30 -stop-after 90 > /dev/null && \
	test -n "$$(ls "$$dir"/*.ckpt)" && \
	$(GO) run ./cmd/precinct-sim $$flags -checkpoint-dir "$$dir" -resume > "$$dir/resumed.txt" && \
	diff "$$dir/full.txt" "$$dir/resumed.txt" && \
	echo "scale-smoke: 1000-node lossy run passed the invariant catalog and resumed bit-identically" && \
	$(GO) run ./cmd/precinct-sim -nodes 10000 -area 13416 -regions 1156 -loss 0.1 -warmup 30 -duration 120 -check > "$$dir/checked10k.txt" && \
	echo "scale-smoke: 10000-node lossy run passed the invariant catalog"

# Workload-lab smoke (DESIGN.md section 15): every workload source —
# the non-stationary ones plus a replay of the committed sample trace —
# through the real CLI at a short horizon under the full runtime
# invariant catalog.
workload-smoke:
	@flags="-nodes 40 -warmup 20 -duration 150 -check" && \
	for w in flash-crowd diurnal hotspot rank-churn; do \
		echo "workload-smoke: $$w" && \
		$(GO) run ./cmd/precinct-sim $$flags -workload $$w > /dev/null || exit 1; \
	done && \
	echo "workload-smoke: trace" && \
	$(GO) run ./cmd/precinct-sim $$flags -workload trace \
		-workload-trace internal/workload/testdata/sample_trace.csv \
		-update-interval 60 -consistency push-adaptive-pull > /dev/null && \
	echo "workload-smoke: every source passed the invariant catalog"

# Policy-lab smoke (DESIGN.md section 16): every registered replacement
# policy through the real CLI on a short lossy scenario under the full
# runtime invariant catalog, plus one k=2 replica-region cell so the
# multi-rank custody checkers run end to end. The policy list comes
# from the binary itself (-list-policies), so a newly registered policy
# is enrolled here automatically.
policy-smoke:
	@flags="-nodes 40 -loss 0.05 -warmup 20 -duration 150 -check" && \
	for p in $$($(GO) run ./cmd/precinct-sim -list-policies); do \
		echo "policy-smoke: $$p" && \
		$(GO) run ./cmd/precinct-sim $$flags -policy $$p > /dev/null || exit 1; \
	done && \
	echo "policy-smoke: replicas=2" && \
	$(GO) run ./cmd/precinct-sim $$flags -replicas 2 > /dev/null && \
	echo "policy-smoke: every policy passed the invariant catalog"

# The build-tagged endurance tier (soak_test.go): one 2000-node, 30%
# loss scenario for a long horizon under the invariant catalog, plus
# checkpoint/resume and heap/linear equivalence at that scale. Minutes,
# not seconds — run explicitly, not from ci. The 100k memory soak has
# its own target below.
soak:
	$(GO) test -tags soak -run Soak -skip Soak100k -timeout 60m -v .

# The 100k-node memory-ceiling soak (soak100k_test.go, DESIGN.md
# section 14): the acceptance-shape scenario — 100000 nodes, 30% loss,
# push-adaptive-pull, 300 s — under the full invariant catalog with an
# RSS sampler alongside; peak resident set must stay at or under 4 GiB.
# Tens of minutes — run explicitly, not from ci.
soak-100k:
	$(GO) test -tags soak -run Soak100k -timeout 60m -v .

ci: vet build test race race-parallel check cover bench-smoke fuzz-smoke resume-smoke scale-smoke workload-smoke policy-smoke bench-parallel-smoke bench-compare-allocs bench-compare-advisory
