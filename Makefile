# Developer entry points. `make ci` is the gate a change must pass; the
# individual targets exist for quick iteration.

GO ?= go

.PHONY: all vet build test race check fuzz-smoke bench-smoke bench-radio resume-smoke ci

all: build

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The runtime invariant suite (DESIGN.md section 9) under the race
# detector: fuzzed scenarios, metamorphic relations and the
# broken-build detection test.
check:
	$(GO) test -race -run Invariant -count=1 ./...

# A short pass over every fuzz target so the corpora and harnesses are
# kept working; real fuzzing campaigns just raise -fuzztime.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzSegmentsIntersect$$' -fuzztime $(FUZZTIME) ./internal/geo
	$(GO) test -run '^$$' -fuzz '^FuzzRectClamp$$' -fuzztime $(FUZZTIME) ./internal/geo
	$(GO) test -run '^$$' -fuzz '^FuzzGeoHash$$' -fuzztime $(FUZZTIME) ./internal/region
	$(GO) test -run '^$$' -fuzz '^FuzzRegionForPoint$$' -fuzztime $(FUZZTIME) ./internal/region
	$(GO) test -run '^$$' -fuzz '^FuzzZipfRank$$' -fuzztime $(FUZZTIME) ./internal/workload
	$(GO) test -run '^$$' -fuzz '^FuzzRead$$' -fuzztime $(FUZZTIME) ./internal/trace

# One fast pass over every benchmark so regressions in the bench code
# itself are caught without waiting for full measurement runs.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Regenerate the committed radio hot-path numbers (BENCH_radio.json).
# Run on a quiet machine; takes a few minutes at paper scale.
bench-radio:
	$(GO) run ./cmd/precinct-bench -radiojson BENCH_radio.json

# End-to-end checkpoint/resume proof through the real CLI (DESIGN.md
# section 10): run a scenario to completion, run it again interrupted at
# a checkpoint boundary, resume from the snapshot on disk, and require
# the two reports to be byte-identical.
resume-smoke:
	@dir=$$(mktemp -d) && trap 'rm -rf "$$dir"' EXIT && \
	flags="-nodes 30 -warmup 10 -duration 120" && \
	$(GO) run ./cmd/precinct-sim $$flags > "$$dir/full.txt" && \
	$(GO) run ./cmd/precinct-sim $$flags -checkpoint-dir "$$dir" -checkpoint-interval 15 -stop-after 60 > /dev/null && \
	test -n "$$(ls "$$dir"/*.ckpt)" && \
	$(GO) run ./cmd/precinct-sim $$flags -checkpoint-dir "$$dir" -resume > "$$dir/resumed.txt" && \
	diff "$$dir/full.txt" "$$dir/resumed.txt" && \
	echo "resume-smoke: resumed run identical to uninterrupted run"

ci: vet build test race check bench-smoke fuzz-smoke resume-smoke
