package precinct

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestMobilityModelSelection(t *testing.T) {
	for _, model := range []string{"waypoint", "static", "random-walk", "gauss-markov"} {
		s := quickScenario()
		s.MobilityModel = model
		s.Duration = 200
		s.Warmup = 50
		res, err := Run(s)
		if err != nil {
			t.Fatalf("%s: %v", model, err)
		}
		if res.Report.Completed == 0 {
			t.Errorf("%s: nothing completed", model)
		}
		if model == "static" && res.Protocol.Handoffs != 0 {
			t.Errorf("static model produced handoffs")
		}
	}
	s := quickScenario()
	s.MobilityModel = "teleport"
	if err := s.Validate(); err == nil {
		t.Error("unknown mobility model accepted")
	}
}

func TestMobilityModelsProduceDifferentRuns(t *testing.T) {
	base := quickScenario()
	base.Duration = 200
	base.Warmup = 50
	latencies := make(map[string]float64)
	for _, model := range []string{"waypoint", "random-walk", "gauss-markov"} {
		s := base
		s.MobilityModel = model
		res, err := Run(s)
		if err != nil {
			t.Fatal(err)
		}
		latencies[model] = res.Report.MeanLatency
	}
	if latencies["waypoint"] == latencies["random-walk"] &&
		latencies["random-walk"] == latencies["gauss-markov"] {
		t.Error("all mobility models produced identical latencies (suspicious)")
	}
}

func TestChurnValidation(t *testing.T) {
	s := quickScenario()
	s.ChurnInterval = -1
	if err := s.Validate(); err == nil {
		t.Error("negative churn interval accepted")
	}
	s = quickScenario()
	s.ChurnInterval = 30
	s.ChurnGraceful = 2
	if err := s.Validate(); err == nil {
		t.Error("graceful fraction > 1 accepted")
	}
}

func TestChurnKeepsNetworkServing(t *testing.T) {
	s := quickScenario()
	s.Duration = 400
	s.Warmup = 100
	s.ChurnInterval = 20 // one departure every ~20 s
	s.ChurnDowntime = 40
	s.ChurnGraceful = 0.8
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Completed == 0 {
		t.Fatal("churn killed the network entirely")
	}
	// With mostly-graceful churn and replication, availability stays
	// reasonable.
	avail := float64(res.Report.Completed) / float64(res.Report.Requests)
	if avail < 0.6 {
		t.Errorf("availability %.2f under churn", avail)
	}
}

func TestChurnDeterministic(t *testing.T) {
	s := quickScenario()
	s.Duration = 300
	s.ChurnInterval = 25
	s.ChurnGraceful = 0.5
	a, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if a.Report.String() != b.Report.String() {
		t.Errorf("churn broke determinism:\n%v\n%v", a.Report, b.Report)
	}
}

func TestRunTracedEmitsEvents(t *testing.T) {
	var buf bytes.Buffer
	s := quickScenario()
	s.Duration = 200
	s.Warmup = 0
	res, err := RunTraced(s, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Requests == 0 {
		t.Fatal("no requests in traced run")
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) < int(res.Report.Requests) {
		t.Fatalf("only %d trace lines for %d requests", len(lines), res.Report.Requests)
	}
	kinds := make(map[string]int)
	for _, line := range lines {
		var e struct {
			T    float64 `json:"t"`
			Kind string  `json:"kind"`
			Node int     `json:"node"`
		}
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("bad trace line %q: %v", line, err)
		}
		if e.T < 0 || e.T > s.Duration {
			t.Fatalf("event time %v outside run", e.T)
		}
		kinds[e.Kind]++
	}
	if kinds["request-issued"] == 0 || kinds["request-completed"] == 0 {
		t.Errorf("missing request lifecycle events: %v", kinds)
	}
}

func TestRunTracedMatchesRun(t *testing.T) {
	s := quickScenario()
	s.Duration = 200
	plain, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	traced, err := RunTraced(s, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Report.String() != traced.Report.String() {
		t.Error("tracing changed simulation results")
	}
}

func TestFaultValidation(t *testing.T) {
	s := quickScenario()
	s.Faults = []Fault{{At: 10, Node: 9999, Kind: "crash"}}
	if err := s.Validate(); err == nil {
		t.Error("fault on unknown node accepted")
	}
	s = quickScenario()
	s.Faults = []Fault{{At: -5, Node: 0, Kind: "crash"}}
	if err := s.Validate(); err == nil {
		t.Error("fault before start accepted")
	}
	s = quickScenario()
	s.Faults = []Fault{{At: 10, Node: 0, Kind: "explode"}}
	if err := s.Validate(); err == nil {
		t.Error("unknown fault kind accepted")
	}
}

func TestQuitFaultPreservesAvailabilityBetterThanCrash(t *testing.T) {
	run := func(kind string) float64 {
		s := quickScenario()
		s.Duration = 400
		s.Warmup = 100
		for i := 0; i < s.Nodes/3; i++ {
			s.Faults = append(s.Faults, Fault{At: 150, Node: i * 3, Kind: kind})
		}
		res, err := Run(s)
		if err != nil {
			t.Fatal(err)
		}
		if res.Report.Requests == 0 {
			return 0
		}
		return float64(res.Report.Completed) / float64(res.Report.Requests)
	}
	crash := run("crash")
	quit := run("quit")
	// Graceful quits hand keys off, so availability must not be worse.
	if quit < crash-0.05 {
		t.Errorf("graceful quit availability %.3f worse than crash %.3f", quit, crash)
	}
}

func TestSummarize(t *testing.T) {
	s := quickScenario()
	s.Duration = 200
	_, _, err := Replicate(s, []int64{1, 2, 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	results, _, err := Replicate(s, []int64{1, 2, 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	reports := make([]Report, len(results))
	for i, r := range results {
		reports[i] = r.Report
	}
	sum := Summarize(reports)
	for _, key := range []string{"mean_latency", "byte_hit_ratio", "failure_rate", "energy_per_request"} {
		st, ok := sum[key]
		if !ok {
			t.Fatalf("missing metric %q", key)
		}
		if st.N != 3 {
			t.Errorf("%s: N = %d", key, st.N)
		}
		if st.Mean < st.Min-1e-9 || st.Mean > st.Max+1e-9 {
			t.Errorf("%s: mean outside range", key)
		}
	}
}

func TestBeaconStalenessDegradesGracefully(t *testing.T) {
	// The paper's robustness claim: region routing tolerates stale
	// location knowledge. Availability with 5 s old positions must stay
	// within a modest margin of perfect knowledge.
	run := func(interval float64) float64 {
		s := quickScenario()
		s.Duration = 400
		s.Warmup = 100
		s.BeaconInterval = interval
		res, err := Run(s)
		if err != nil {
			t.Fatal(err)
		}
		if res.Report.Requests == 0 {
			return 0
		}
		return float64(res.Report.Completed) / float64(res.Report.Requests)
	}
	perfect := run(0)
	stale := run(5)
	if perfect-stale > 0.15 {
		t.Errorf("availability dropped %.3f -> %.3f with 5 s beacons", perfect, stale)
	}
}

func TestAdaptiveRegionsScenario(t *testing.T) {
	s := quickScenario()
	s.Duration = 400
	s.Warmup = 100
	s.Regions = 4
	s.AdaptiveRegions = true
	s.AdaptiveInterval = 40
	s.AdaptiveSplitAbove = 8
	s.AdaptiveMergeBelow = 2
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Completed == 0 {
		t.Fatal("adaptive scenario served nothing")
	}
	// Reshaping shows up as maintenance traffic.
	if res.Report.MaintenanceMessages == 0 {
		t.Error("no maintenance traffic despite adaptive reshaping")
	}
}

func TestAdaptiveScenarioValidation(t *testing.T) {
	s := quickScenario()
	s.AdaptiveRegions = true
	s.AdaptiveSplitAbove = 3
	s.AdaptiveMergeBelow = 5 // >= split: no hysteresis
	if err := s.Validate(); err == nil {
		t.Error("inverted adaptive thresholds accepted")
	}
}

func TestCollisionsHurtFloodingMoreThanPReCinCt(t *testing.T) {
	// With receiver-side collisions on, the network-wide flood's storm
	// damages itself; PReCinCt's localized floods largely escape.
	run := func(retrieval string) (failRate float64, collisions uint64) {
		s := quickScenario()
		s.Duration = 300
		s.Warmup = 100
		s.Retrieval = retrieval
		s.Collisions = true
		res, err := Run(s)
		if err != nil {
			t.Fatal(err)
		}
		if res.Report.Requests == 0 {
			return 1, res.Radio.Collisions
		}
		return float64(res.Report.Failures) / float64(res.Report.Requests), res.Radio.Collisions
	}
	_, precinctCollisions := run("precinct")
	_, floodingCollisions := run("flooding")
	if floodingCollisions <= precinctCollisions {
		t.Errorf("flooding collisions (%d) should exceed precinct's (%d)",
			floodingCollisions, precinctCollisions)
	}
}

func TestVoronoiRegionsScenario(t *testing.T) {
	s := quickScenario()
	s.VoronoiRegions = true
	s.Duration = 300
	s.Warmup = 80
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Completed == 0 {
		t.Fatal("voronoi partition served nothing")
	}
	avail := float64(res.Report.Completed) / float64(res.Report.Requests)
	if avail < 0.6 {
		t.Errorf("availability %.2f under voronoi partition", avail)
	}
}

func TestVoronoiRejectsAdaptive(t *testing.T) {
	s := quickScenario()
	s.VoronoiRegions = true
	s.AdaptiveRegions = true
	if err := s.Validate(); err == nil {
		t.Error("voronoi + adaptive accepted")
	}
}
