package precinct

// Checkpoint/restore orchestration: capture a running simulation at a
// quiescent event boundary into the internal/checkpoint container,
// restore a snapshot into a runnable network that continues
// bit-identically, drive periodic checkpointing during a run
// (RunCheckpointed), resume interrupted sweeps (SweepCheckpointed), and
// replay or bisect snapshots (Replay, BisectSnapshots). The snapshot
// schema itself lives in internal/checkpoint and is documented in
// DESIGN.md section 10.

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"io/fs"
	"math"
	"os"
	"path/filepath"

	"precinct/internal/checkpoint"
	"precinct/internal/invariant"
	"precinct/internal/mobility"
	"precinct/internal/node"
	"precinct/internal/radio"
	"precinct/internal/trace"
)

// capture snapshots the assembled simulation. It fails unless the run is
// at a quiescent boundary: every pending scheduler event must be a
// re-armable recurring process, which also guarantees no request is
// in flight and no frame is on the air.
func (b *built) capture() (*checkpoint.Snapshot, error) {
	schedState, err := b.sched.StateSnapshot()
	if err != nil {
		return nil, err
	}
	netState, err := b.network.StateSnapshot()
	if err != nil {
		return nil, err
	}
	radioState, err := b.channel.StateSnapshot()
	if err != nil {
		return nil, err
	}
	stateful, ok := b.mob.(mobility.Stateful)
	if !ok {
		return nil, fmt.Errorf("precinct: mobility model %T does not support checkpointing", b.mob)
	}
	scJSON, err := json.Marshal(b.scenario)
	if err != nil {
		return nil, fmt.Errorf("precinct: encode scenario: %w", err)
	}
	return &checkpoint.Snapshot{
		Meta: checkpoint.Meta{
			FormatVersion: checkpoint.Version,
			SimTime:       b.sched.Now(),
			Scenario:      scJSON,
		},
		Sched:    schedState,
		RNG:      b.rng.StateSnapshot(),
		Mobility: stateful.StateSnapshot(),
		Radio:    radioState,
		Network:  netState,
		Metrics:  b.coll.StateSnapshot(),
		Energy:   b.meter.StateSnapshot(),
		Workload: b.source.StateSnapshot(),
	}, nil
}

// snapHasSweep reports whether the snapshot was taken from a checked run
// (it carries the invariant runner's recurring sweep process).
func snapHasSweep(snap *checkpoint.Snapshot) bool {
	for _, pe := range snap.Sched.Procs {
		if pe.Proc.Kind == invariant.ProcSweep {
			return true
		}
	}
	return false
}

// restoreSnapshot rebuilds a runnable simulation from a snapshot. The
// scenario is decoded strictly from the snapshot itself, the network is
// rebuilt without arming any initial process, every component's state is
// overwritten from its section, and finally the recorded recurring
// processes are re-armed in their captured order. Any failure discards
// the half-restored build — partial state never escapes.
//
// A non-nil runner has its observers attached before processes are
// re-armed; it is required when the snapshot carries the invariant
// sweep process and must be nil-checked by the caller otherwise.
func restoreSnapshot(snap *checkpoint.Snapshot, tracer trace.Tracer, runner *invariant.Runner) (*built, error) {
	var s Scenario
	dec := json.NewDecoder(bytes.NewReader(snap.Meta.Scenario))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("precinct: snapshot scenario: %w", err)
	}
	if s.Shards > 1 {
		// Snapshots of sharded runs are never written; a scenario carrying
		// Shards > 1 here means the file was edited or corrupted.
		return nil, fmt.Errorf("precinct: snapshot scenario requests a sharded run; snapshots are sequential-only")
	}
	if snap.Meta.SimTime != snap.Sched.Now {
		return nil, fmt.Errorf("precinct: snapshot meta time %v disagrees with scheduler clock %v",
			snap.Meta.SimTime, snap.Sched.Now)
	}
	b, err := s.buildFull(tracer, false)
	if err != nil {
		return nil, fmt.Errorf("precinct: rebuild scenario: %w", err)
	}
	if err := b.sched.RestoreState(snap.Sched); err != nil {
		return nil, err
	}
	if err := b.rng.RestoreState(snap.RNG); err != nil {
		return nil, err
	}
	stateful, ok := b.mob.(mobility.Stateful)
	if !ok {
		return nil, fmt.Errorf("precinct: mobility model %T does not support checkpointing", b.mob)
	}
	if err := stateful.RestoreState(snap.Mobility); err != nil {
		return nil, err
	}
	if err := b.channel.RestoreState(snap.Radio); err != nil {
		return nil, err
	}
	if err := b.network.RestoreState(snap.Network); err != nil {
		return nil, err
	}
	if err := b.coll.RestoreState(snap.Metrics); err != nil {
		return nil, err
	}
	if err := b.meter.RestoreState(snap.Energy); err != nil {
		return nil, err
	}
	if err := b.source.RestoreState(snap.Workload); err != nil {
		return nil, err
	}
	if runner != nil {
		runner.AttachObservers(invariant.Context{
			Net:     b.network,
			Ch:      b.channel,
			Meter:   b.meter,
			Sched:   b.sched,
			Catalog: b.catalog,
		})
	}
	// Re-arm in the captured (ascending Seq) order, each process under
	// its recorded creator context, so every re-armed event is stamped
	// with the canonical key creator the original run gave it — same-time
	// events keep their relative order after a resume, sequential or
	// sharded alike.
	for _, pe := range snap.Sched.Procs {
		if pe.Time < b.sched.Now() {
			return nil, fmt.Errorf("precinct: snapshot process %q armed at %v, before the clock %v",
				pe.Proc.Kind, pe.Time, b.sched.Now())
		}
		b.sched.SetCur(pe.Creator)
		if pe.Proc.Kind == invariant.ProcSweep {
			if runner == nil {
				b.sched.SetCur(-1)
				return nil, fmt.Errorf("precinct: snapshot was taken from a checked run; restore it with invariant checking enabled")
			}
			runner.ArmSweepAt(pe.Time)
			continue
		}
		if err := b.rearm(pe.Proc, pe.Time); err != nil {
			b.sched.SetCur(-1)
			return nil, err
		}
	}
	b.sched.SetCur(-1)
	return b, nil
}

// CheckpointOptions parameterizes RunCheckpointed and SweepCheckpointed.
type CheckpointOptions struct {
	// Dir is the directory snapshots and completion records are kept in.
	// It must exist.
	Dir string
	// Interval is the target simulated seconds between snapshots; each
	// snapshot is written at the first quiescent event boundary at or
	// after the mark. Zero selects 60 s.
	Interval float64
	// Resume looks in Dir before running: a completion record for this
	// scenario returns the stored result immediately; a snapshot resumes
	// the run from it; otherwise the run starts fresh. A corrupt snapshot
	// is an error, never a silent restart.
	Resume bool
	// Label names the files (<Label>.ckpt, <Label>.done). Empty derives
	// a label from the scenario name and a hash of its full contents.
	Label string
	// StopAfter, when positive, interrupts the run at the first snapshot
	// boundary at or after this simulated time, leaving the snapshot on
	// disk for a later Resume. The returned Result covers only the
	// executed prefix and no completion record is written.
	StopAfter float64
	// TraceWriter, when non-nil, receives the protocol events of the
	// executed segment as JSON lines (see RunTraced). A resumed run
	// emits only the events after the snapshot, so concatenating the
	// interrupted and resumed streams reproduces the uninterrupted one.
	TraceWriter io.Writer
}

// deriveLabel names a scenario's checkpoint files: the sanitized scenario
// name plus a hash of the complete scenario, so two different scenarios
// never share files by accident.
func deriveLabel(s Scenario) string {
	j, err := json.Marshal(s)
	if err != nil {
		j = []byte(fmt.Sprintf("%+v", s))
	}
	h := fnv.New64a()
	h.Write(j)
	base := make([]rune, 0, len(s.Name))
	for _, r := range s.Name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			base = append(base, r)
		default:
			base = append(base, '-')
		}
	}
	name := string(base)
	if name == "" {
		name = "run"
	}
	return fmt.Sprintf("%s-%016x", name, h.Sum64())
}

// doneRecord is the completion record written next to the snapshot once
// a checkpointed run finishes, so a resumed sweep can skip it entirely.
type doneRecord struct {
	Scenario   Scenario
	Result     Result
	Checked    bool
	Invariants InvariantReport
}

// writeDone writes the completion record atomically (temp file + rename).
func writeDone(path string, rec doneRecord) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&rec); err != nil {
		return fmt.Errorf("precinct: encode completion record: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".done-*")
	if err != nil {
		return fmt.Errorf("precinct: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName)
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		return fmt.Errorf("precinct: write %s: %w", tmpName, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("precinct: close %s: %w", tmpName, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("precinct: %w", err)
	}
	return nil
}

// readDone loads a completion record if one exists. A record for a
// different scenario under the same label is an error (label collision),
// as is a record that does not decode — resume fails closed.
func readDone(path string, s Scenario) (doneRecord, bool, error) {
	f, err := os.Open(path)
	if errors.Is(err, fs.ErrNotExist) {
		return doneRecord{}, false, nil
	}
	if err != nil {
		return doneRecord{}, false, fmt.Errorf("precinct: %w", err)
	}
	defer f.Close()
	var rec doneRecord
	if err := gob.NewDecoder(f).Decode(&rec); err != nil {
		return doneRecord{}, false, fmt.Errorf("precinct: completion record %s: %w", path, err)
	}
	want, err := json.Marshal(s)
	if err != nil {
		return doneRecord{}, false, fmt.Errorf("precinct: encode scenario: %w", err)
	}
	got, err := json.Marshal(rec.Scenario)
	if err != nil {
		return doneRecord{}, false, fmt.Errorf("precinct: completion record %s: %w", path, err)
	}
	if !bytes.Equal(want, got) {
		return doneRecord{}, false, fmt.Errorf("precinct: completion record %s was written by a different scenario", path)
	}
	return rec, true, nil
}

// scenarioMatches verifies a snapshot belongs to the given scenario.
func scenarioMatches(snap *checkpoint.Snapshot, s Scenario) error {
	want, err := json.Marshal(s)
	if err != nil {
		return fmt.Errorf("precinct: encode scenario: %w", err)
	}
	if !bytes.Equal(want, snap.Meta.Scenario) {
		return fmt.Errorf("precinct: snapshot was written by a different scenario")
	}
	return nil
}

// ckptWriter is the after-event observer that drives periodic
// checkpointing: once the clock passes the next mark it writes a snapshot
// at the first quiescent boundary, atomically replacing the previous one.
type ckptWriter struct {
	b        *built
	path     string
	interval float64
	next     float64
	stopAt   float64 // 0 = run to completion
	stopped  bool
	err      error
}

func (w *ckptWriter) hook(now float64) {
	if w.err != nil || w.stopped {
		return
	}
	stopDue := w.stopAt > 0 && now >= w.stopAt
	if now < w.next && !stopDue {
		return
	}
	if !w.b.sched.Quiescent() {
		return // a request or frame is in flight; wait for the next boundary
	}
	snap, err := w.b.capture()
	if err != nil {
		w.err = err
		w.b.sched.Stop()
		return
	}
	if err := checkpoint.WriteFile(w.path, snap); err != nil {
		w.err = err
		w.b.sched.Stop()
		return
	}
	w.next = now + w.interval
	if stopDue {
		w.stopped = true
		w.b.sched.Stop()
	}
}

// invariantReportOf converts a finished runner into the public report.
func invariantReportOf(runner *invariant.Runner) InvariantReport {
	inv := InvariantReport{
		Sweeps:          runner.Sweeps(),
		Events:          runner.Events(),
		TotalViolations: runner.Total(),
	}
	for _, v := range runner.Violations() {
		inv.Violations = append(inv.Violations, InvariantViolation(v))
	}
	return inv
}

// RunCheckpointed executes the scenario like Run while writing periodic
// snapshots into opts.Dir, so a killed process can pick the run back up
// with opts.Resume instead of starting over. Checkpointing is invisible
// to the simulation — the Result is bit-identical to Run's, a property
// the test suite proves by resuming mid-run and comparing.
func RunCheckpointed(s Scenario, opts CheckpointOptions) (Result, error) {
	res, _, err := runCheckpointed(s, opts, false)
	return res, err
}

// RunCheckpointedChecked is RunCheckpointed with the runtime invariant
// catalog attached (see RunChecked). A run resumed from a checked
// snapshot re-arms the recorded sweep schedule; the invariant report of
// a resumed run covers only the resumed segment.
func RunCheckpointedChecked(s Scenario, opts CheckpointOptions) (Result, InvariantReport, error) {
	return runCheckpointed(s, opts, true)
}

func runCheckpointed(s Scenario, opts CheckpointOptions, check bool) (Result, InvariantReport, error) {
	if s.Shards > 1 {
		return Result{}, InvariantReport{}, fmt.Errorf("precinct: checkpointing a sharded run is not supported; run with Shards <= 1")
	}
	if opts.Dir == "" {
		return Result{}, InvariantReport{}, fmt.Errorf("precinct: checkpoint directory not set")
	}
	info, err := os.Stat(opts.Dir)
	if err != nil {
		return Result{}, InvariantReport{}, fmt.Errorf("precinct: checkpoint directory: %w", err)
	}
	if !info.IsDir() {
		return Result{}, InvariantReport{}, fmt.Errorf("precinct: checkpoint path %s is not a directory", opts.Dir)
	}
	interval := opts.Interval
	if interval <= 0 {
		interval = 60
	}
	label := opts.Label
	if label == "" {
		label = deriveLabel(s)
	}
	ckptPath := filepath.Join(opts.Dir, label+".ckpt")
	donePath := filepath.Join(opts.Dir, label+".done")

	if opts.Resume {
		rec, ok, err := readDone(donePath, s)
		if err != nil {
			return Result{}, InvariantReport{}, err
		}
		// A finished unchecked run is re-executed when checking is now
		// requested: results are bit-identical either way, but the stored
		// record has no invariant report to return.
		if ok && (!check || rec.Checked) {
			return rec.Result, rec.Invariants, nil
		}
	}

	var tracer trace.Tracer
	var tw *trace.Writer
	if opts.TraceWriter != nil {
		tw = trace.NewWriter(opts.TraceWriter)
		tracer = tw
	}

	var b *built
	var runner *invariant.Runner
	if opts.Resume {
		snap, err := checkpoint.ReadFile(ckptPath)
		switch {
		case err == nil:
			if err := scenarioMatches(snap, s); err != nil {
				return Result{}, InvariantReport{}, fmt.Errorf("%w (label %q)", err, label)
			}
			if check || snapHasSweep(snap) {
				runner = invariant.New(invariant.Config{})
			}
			b, err = restoreSnapshot(snap, tracer, runner)
			if err != nil {
				return Result{}, InvariantReport{}, fmt.Errorf("precinct: resume from %s: %w", ckptPath, err)
			}
			if runner != nil && check && !snapHasSweep(snap) {
				runner.ArmSweepAt(b.sched.Now() + runner.SweepInterval())
			}
		case errors.Is(err, fs.ErrNotExist):
			// No snapshot: start fresh below.
		default:
			return Result{}, InvariantReport{}, err
		}
	}
	if b == nil {
		b, err = s.buildFull(tracer, true)
		if err != nil {
			return Result{}, InvariantReport{}, err
		}
		if check {
			if err := debugBreakEnv(b); err != nil {
				return Result{}, InvariantReport{}, err
			}
			runner = invariant.New(invariant.Config{})
			runner.Attach(invariant.Context{
				Net:     b.network,
				Ch:      b.channel,
				Meter:   b.meter,
				Sched:   b.sched,
				Catalog: b.catalog,
			})
		}
	}

	w := &ckptWriter{
		b:        b,
		path:     ckptPath,
		interval: interval,
		next:     b.sched.Now() + interval,
		stopAt:   opts.StopAfter,
	}
	b.sched.AddAfterEvent(w.hook)
	rep := b.network.Run(s.Duration)
	if tw != nil {
		if ferr := tw.Flush(); ferr != nil {
			return Result{}, InvariantReport{}, ferr
		}
	}
	if w.err != nil {
		return Result{}, InvariantReport{}, fmt.Errorf("precinct: checkpoint: %w", w.err)
	}
	res := Result{
		Scenario: s,
		Report:   fromMetrics(rep),
		Protocol: fromStats(b.network.Stats()),
		Radio:    fromRadio(b.channel.Stats()),
	}
	if w.stopped {
		// Interrupted by StopAfter: the snapshot is on disk, the run is
		// incomplete, so no completion record is written.
		return res, InvariantReport{}, nil
	}
	var inv InvariantReport
	if runner != nil {
		runner.Finalize()
		inv = invariantReportOf(runner)
	}
	if err := writeDone(donePath, doneRecord{Scenario: s, Result: res, Checked: runner != nil, Invariants: inv}); err != nil {
		return res, inv, err
	}
	os.Remove(ckptPath) // the completion record supersedes the snapshot
	return res, inv, nil
}

// SweepCheckpointed is Sweep with per-scenario checkpointing: each
// scenario writes snapshots under a label derived from its index and
// contents, and with opts.Resume a re-run of the same sweep skips
// finished scenarios and resumes interrupted ones from their last
// snapshot. opts.Label, when set, prefixes every scenario's label.
func SweepCheckpointed(scenarios []Scenario, workers int, opts CheckpointOptions) ([]Result, error) {
	if len(scenarios) == 0 {
		return nil, nil
	}
	results := make([]Result, len(scenarios))
	err := runPool(len(scenarios), workers, func(i int) error {
		o := opts
		o.Label = fmt.Sprintf("s%04d-%s", i, deriveLabel(scenarios[i]))
		if opts.Label != "" {
			o.Label = opts.Label + "-" + o.Label
		}
		var err error
		results[i], err = RunCheckpointed(scenarios[i], o)
		if err != nil {
			return fmt.Errorf("precinct: scenario %d (%s): %w", i, scenarios[i].Name, err)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// ReplayOptions parameterizes Replay.
type ReplayOptions struct {
	// Until is the simulated-time horizon; 0 replays to the scenario's
	// configured Duration.
	Until float64
	// Check attaches the runtime invariant catalog to the replayed
	// segment. Snapshots taken from checked runs are always replayed
	// checked, preserving the recorded sweep schedule.
	Check bool
	// TraceWriter, when non-nil, receives the replayed segment's protocol
	// events as JSON lines.
	TraceWriter io.Writer
}

// Replay restores a snapshot file and re-runs it forward. Because the
// simulation is deterministic, the replayed segment reproduces exactly
// what the original run did after the snapshot — with tracing or
// invariant checking attached after the fact, which is the point: debug
// instrumentation on a failure window without re-running the whole
// history before it.
func Replay(path string, o ReplayOptions) (Result, InvariantReport, error) {
	snap, err := checkpoint.ReadFile(path)
	if err != nil {
		return Result{}, InvariantReport{}, err
	}
	var tracer trace.Tracer
	var tw *trace.Writer
	if o.TraceWriter != nil {
		tw = trace.NewWriter(o.TraceWriter)
		tracer = tw
	}
	var runner *invariant.Runner
	if o.Check || snapHasSweep(snap) {
		runner = invariant.New(invariant.Config{})
	}
	b, err := restoreSnapshot(snap, tracer, runner)
	if err != nil {
		return Result{}, InvariantReport{}, err
	}
	if runner != nil && !snapHasSweep(snap) {
		runner.ArmSweepAt(b.sched.Now() + runner.SweepInterval())
	}
	until := o.Until
	if until <= 0 {
		until = b.scenario.Duration
	}
	if until < b.sched.Now() {
		return Result{}, InvariantReport{}, fmt.Errorf("precinct: replay horizon %v is before the snapshot time %v",
			until, b.sched.Now())
	}
	rep := b.network.Run(until)
	var inv InvariantReport
	if runner != nil {
		runner.Finalize()
		inv = invariantReportOf(runner)
	}
	res := Result{
		Scenario: b.scenario,
		Report:   fromMetrics(rep),
		Protocol: fromStats(b.network.Stats()),
		Radio:    fromRadio(b.channel.Stats()),
	}
	if tw != nil {
		if ferr := tw.Flush(); ferr != nil {
			return res, inv, ferr
		}
	}
	return res, inv, nil
}

// runDigest is a comparable fingerprint of a run's observable protocol
// state, taken between individual events during bisection. It covers the
// clock, counters, ground truth, every peer's caches and custody, the
// radio and the energy account — but deliberately not the mobility
// anchors or RNG internals, whose in-memory representation legitimately
// differs between two restores (positions are advanced lazily on
// query, which bisection's own inspection would otherwise perturb).
type runDigest struct {
	Now      float64
	Executed uint64
	Pending  int
	Truth    uint64
	Peers    uint64
	Net      node.Stats
	Radio    radio.Stats
	Energy   float64
}

// digest fingerprints the current state.
func (b *built) digest() runDigest {
	h := fnv.New64a()
	var buf [8]byte
	w64 := func(v uint64) {
		binary.BigEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	for _, k := range b.catalog.Keys() {
		w64(b.network.Truth(k))
	}
	truth := h.Sum64()

	h = fnv.New64a()
	for i := 0; i < b.network.Peers(); i++ {
		p := b.network.Peer(radio.NodeID(i))
		alive := uint64(0)
		if p.Alive() {
			alive = 1
		}
		w64(alive)
		w64(uint64(p.RegionID()))
		w64(uint64(p.TableVersion()))
		st := p.Store()
		for _, k := range st.Keys() {
			it, _ := st.Get(k)
			w64(uint64(k))
			w64(it.Version)
			w64(math.Float64bits(it.TTR))
			w64(math.Float64bits(it.UpdatedAt))
		}
		if c := p.Cache(); c != nil {
			w64(uint64(c.Used()))
			w64(c.Hits())
			w64(c.Misses())
			w64(c.Evictions())
			w64(math.Float64bits(c.Inflation()))
			for _, k := range c.Keys() {
				w64(uint64(k))
			}
		}
	}
	peers := h.Sum64()

	return runDigest{
		Now:      b.sched.Now(),
		Executed: b.sched.Executed(),
		Pending:  b.network.PendingRequests(),
		Truth:    truth,
		Peers:    peers,
		Net:      b.network.Stats(),
		Radio:    b.channel.Stats(),
		Energy:   b.meter.Total(),
	}
}

// diffDigest names the fields that differ between two digests.
func diffDigest(a, b runDigest) string {
	var parts []string
	add := func(name string, av, bv any) {
		parts = append(parts, fmt.Sprintf("%s: %v vs %v", name, av, bv))
	}
	if a.Now != b.Now {
		add("clock", a.Now, b.Now)
	}
	if a.Executed != b.Executed {
		add("events executed", a.Executed, b.Executed)
	}
	if a.Pending != b.Pending {
		add("pending requests", a.Pending, b.Pending)
	}
	if a.Truth != b.Truth {
		add("ground-truth hash", fmt.Sprintf("%016x", a.Truth), fmt.Sprintf("%016x", b.Truth))
	}
	if a.Peers != b.Peers {
		add("peer-state hash", fmt.Sprintf("%016x", a.Peers), fmt.Sprintf("%016x", b.Peers))
	}
	if a.Net != b.Net {
		add("protocol stats", a.Net, b.Net)
	}
	if a.Radio != b.Radio {
		add("radio stats", a.Radio, b.Radio)
	}
	if a.Energy != b.Energy {
		add("energy total", a.Energy, b.Energy)
	}
	if len(parts) == 0 {
		return "digests equal"
	}
	out := parts[0]
	for _, p := range parts[1:] {
		out += "; " + p
	}
	return out
}

// Divergence is BisectSnapshots' verdict.
type Divergence struct {
	// Found reports whether the two replays ever disagreed.
	Found bool
	// Step counts events executed past the common snapshot time when the
	// digests first differed; 0 means the snapshots themselves disagree.
	Step uint64
	// Time is the simulation time of the first divergent event.
	Time float64
	// Detail names the digest fields that differ.
	Detail string
}

// String renders a one-line verdict.
func (d Divergence) String() string {
	if !d.Found {
		return fmt.Sprintf("no divergence through %d events (t=%.6f)", d.Step, d.Time)
	}
	if d.Step == 0 {
		return fmt.Sprintf("snapshots differ before any event runs: %s", d.Detail)
	}
	return fmt.Sprintf("first divergent event: #%d at t=%.6f (%s)", d.Step, d.Time, d.Detail)
}

// BisectSnapshots restores two snapshots of the same scenario at the
// same simulated time and replays them in lockstep, one event at a time,
// comparing a state digest after every event. It reports the first event
// after which the two runs disagree — the tool for "these two runs were
// supposed to be identical; where exactly did they split?". until <= 0
// replays to the scenario's Duration.
func BisectSnapshots(pathA, pathB string, until float64) (Divergence, error) {
	snapA, err := checkpoint.ReadFile(pathA)
	if err != nil {
		return Divergence{}, err
	}
	snapB, err := checkpoint.ReadFile(pathB)
	if err != nil {
		return Divergence{}, err
	}
	if !bytes.Equal(snapA.Meta.Scenario, snapB.Meta.Scenario) {
		return Divergence{}, fmt.Errorf("precinct: snapshots come from different scenarios; bisection needs two captures of the same run")
	}
	if snapA.Meta.SimTime != snapB.Meta.SimTime {
		return Divergence{}, fmt.Errorf("precinct: snapshots taken at different times (%v vs %v); bisection needs a common starting point",
			snapA.Meta.SimTime, snapB.Meta.SimTime)
	}
	restore := func(snap *checkpoint.Snapshot, path string) (*built, error) {
		var runner *invariant.Runner
		if snapHasSweep(snap) {
			runner = invariant.New(invariant.Config{})
		}
		b, err := restoreSnapshot(snap, nil, runner)
		if err != nil {
			return nil, fmt.Errorf("precinct: restore %s: %w", path, err)
		}
		return b, nil
	}
	bA, err := restore(snapA, pathA)
	if err != nil {
		return Divergence{}, err
	}
	bB, err := restore(snapB, pathB)
	if err != nil {
		return Divergence{}, err
	}
	if until <= 0 {
		until = bA.scenario.Duration
	}

	dA, dB := bA.digest(), bB.digest()
	if dA != dB {
		return Divergence{Found: true, Step: 0, Time: bA.sched.Now(), Detail: diffDigest(dA, dB)}, nil
	}
	var step uint64
	for {
		okA := bA.sched.Step(until)
		okB := bB.sched.Step(until)
		if okA != okB {
			return Divergence{
				Found: true, Step: step + 1, Time: math.Max(bA.sched.Now(), bB.sched.Now()),
				Detail: "one run ran out of events before the other",
			}, nil
		}
		if !okA {
			return Divergence{Found: false, Step: step, Time: bA.sched.Now()}, nil
		}
		step++
		dA, dB = bA.digest(), bB.digest()
		if dA != dB {
			return Divergence{Found: true, Step: step, Time: bA.sched.Now(), Detail: diffDigest(dA, dB)}, nil
		}
	}
}
