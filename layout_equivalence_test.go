package precinct_test

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"precinct"
	"precinct/internal/invariant/fuzzgen"
)

// TestLayoutEquivalence enforces the memory-layout determinism contract
// (DESIGN.md section 14) the same way TestPoolingEquivalence does for
// the message lifecycle: a run on the struct-of-arrays layout — peer
// slab, open-addressed flood-dedup table, pending-request slice with a
// recycled-box freelist, capped streaming metrics collector — must be
// bit-for-bit identical to the same run on the pointer/map-heavy
// reference layout (Scenario.LegacyLayout). Identical means DeepEqual
// Report/Protocol/Radio AND a byte-identical protocol trace, so not
// just the aggregate counters but every request lifecycle, handoff,
// update and failure event matches in order. The corpus is ≥18 fuzzgen
// seeds spanning all three consistency schemes, message loss, churn,
// adaptive regions, and the large-N lossy scale tier.
func TestLayoutEquivalence(t *testing.T) {
	type tc struct {
		name string
		s    precinct.Scenario
	}
	var cases []tc

	// Regular fuzzgen seeds; half forced lossy so the timeout-heavy
	// request paths (freelist churn, poll retries) are exercised.
	for seed := int64(1); seed <= 14; seed++ {
		s := fuzzgen.Expand(seed)
		if seed%2 == 1 && s.LossRate == 0 {
			s.LossRate = 0.1
		}
		cases = append(cases, tc{fmt.Sprintf("fuzz-%d", seed), s})
	}

	// Scale-tier seeds: large-N, always lossy. Capped under -short.
	maxNodes := 2000
	scaleSeeds := []int64{1, 2, 3, 4, 5, 6}
	if testing.Short() {
		maxNodes = 500
		scaleSeeds = scaleSeeds[:4]
	}
	for _, seed := range scaleSeeds {
		cases = append(cases, tc{fmt.Sprintf("scale-%d", seed), fuzzgen.ExpandScale(seed, maxNodes)})
	}

	if len(cases) < 18 {
		t.Fatalf("only %d seeds; the contract requires at least 18", len(cases))
	}

	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			s := c.s
			s.LegacyLayout = false
			soa, soaTrace := runTracedBytes(t, s)
			s.LegacyLayout = true
			ref, refTrace := runTracedBytes(t, s)

			if !bytes.Equal(soaTrace, refTrace) {
				sl := bytes.Split(soaTrace, []byte("\n"))
				rl := bytes.Split(refTrace, []byte("\n"))
				n := len(sl)
				if len(rl) < n {
					n = len(rl)
				}
				for i := 0; i < n; i++ {
					if !bytes.Equal(sl[i], rl[i]) {
						t.Fatalf("traces diverged at line %d:\nsoa:       %s\nreference: %s",
							i, sl[i], rl[i])
					}
				}
				t.Fatalf("trace lengths diverged: soa %d lines, reference %d lines",
					len(sl), len(rl))
			}
			if !reflect.DeepEqual(soa.Report, ref.Report) {
				t.Errorf("Report diverged:\nsoa:       %+v\nreference: %+v", soa.Report, ref.Report)
			}
			if !reflect.DeepEqual(soa.Protocol, ref.Protocol) {
				t.Errorf("ProtocolStats diverged:\nsoa:       %+v\nreference: %+v", soa.Protocol, ref.Protocol)
			}
			if !reflect.DeepEqual(soa.Radio, ref.Radio) {
				t.Errorf("RadioStats diverged:\nsoa:       %+v\nreference: %+v", soa.Radio, ref.Radio)
			}
		})
	}
}
