package precinct

import "precinct/internal/node"

// ShardAssignmentForTest exposes the peer→shard split a sharded run of
// the scenario would use, so tests can aim faults at one shard's whole
// node set. It rebuilds the world the same way buildParallel does, so
// the returned assignment matches the real run's exactly.
func ShardAssignmentForTest(s Scenario) ([]int32, error) {
	var weights []uint64
	if s.shardBalanceMode() == ShardBalanceLoad {
		w, err := measureShardLoad(s)
		if err != nil {
			return nil, err
		}
		weights = w
	}
	b, err := s.buildFull(nil, false)
	if err != nil {
		return nil, err
	}
	return shardAssignment(b, s.Shards, weights), nil
}

// RunProbedForTest executes the scenario with a node-layer probe
// attached — the hook the cache equivalence suite uses to observe whole
// runs' eviction sequences. Probes are pure observers, so the run is
// bit-identical to Run on the same scenario.
func RunProbedForTest(s Scenario, pr node.Probe) (Result, error) {
	b, err := s.build()
	if err != nil {
		return Result{}, err
	}
	b.network.SetProbe(pr)
	rep := b.network.Run(s.Duration)
	return Result{
		Scenario: s,
		Report:   fromMetrics(rep),
		Protocol: fromStats(b.network.Stats()),
		Radio:    fromRadio(b.channel.Stats()),
	}, nil
}
