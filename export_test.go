package precinct

import "precinct/internal/node"

// RunProbedForTest executes the scenario with a node-layer probe
// attached — the hook the cache equivalence suite uses to observe whole
// runs' eviction sequences. Probes are pure observers, so the run is
// bit-identical to Run on the same scenario.
func RunProbedForTest(s Scenario, pr node.Probe) (Result, error) {
	b, err := s.build()
	if err != nil {
		return Result{}, err
	}
	b.network.SetProbe(pr)
	rep := b.network.Run(s.Duration)
	return Result{
		Scenario: s,
		Report:   fromMetrics(rep),
		Protocol: fromStats(b.network.Stats()),
		Radio:    fromRadio(b.channel.Stats()),
	}, nil
}
