package precinct_test

// Policy-lab and replica-layer suite (DESIGN.md section 16): the k>1
// replica-region axis and the registered-policy axis layered over the
// fuzzed scenario corpus. Every test here composes fuzzgen transforms
// (WithReplicas, WithPolicy) with the existing metamorphic relations,
// so the new axes inherit the whole invariant catalog and the
// determinism discipline instead of getting bespoke weaker checks.

import (
	"testing"

	"precinct"
	"precinct/internal/invariant/fuzzgen"
)

// replicaSeeds returns the seed set for the k=2 replica pass: 12
// scenarios normally (the acceptance floor), 4 under -short.
func replicaSeeds() []int64 {
	n := 12
	if testing.Short() {
		n = 4
	}
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	return seeds
}

// TestInvariantReplicaScenarios runs the fuzzed corpus with two replica
// regions per key under the full runtime invariant catalog — including
// the per-rank custody checker (at most one live custodian per
// (key, rank)) and the k-rank region-distinctness checks.
func TestInvariantReplicaScenarios(t *testing.T) {
	for _, seed := range replicaSeeds() {
		sc := fuzzgen.WithReplicas(fuzzgen.Expand(seed), 2)
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			res, inv, err := precinct.RunChecked(sc)
			if err != nil {
				t.Fatalf("RunChecked: %v", err)
			}
			if !inv.Ok() {
				for _, v := range inv.Violations {
					t.Errorf("violation: %s", v)
				}
				t.Fatalf("%s", inv)
			}
			if inv.Sweeps == 0 || inv.Events == 0 {
				t.Fatalf("checkers did not run: %s", inv)
			}
			if res.Report.Requests == 0 {
				t.Fatalf("scenario issued no requests; fuzzer produced a vacuous config")
			}
		})
	}
}

// TestInvariantReplicaDeterminism: a k=2 run repeated from the same
// scenario must reproduce byte-identically — the replica walk and
// load-aware placement introduce no hidden nondeterminism.
func TestInvariantReplicaDeterminism(t *testing.T) {
	for _, seed := range []int64{3, 8, 14} {
		sc := fuzzgen.WithReplicas(fuzzgen.Expand(seed), 2)
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			first, err := precinct.Run(sc)
			if err != nil {
				t.Fatal(err)
			}
			second, err := precinct.Run(sc)
			if err != nil {
				t.Fatal(err)
			}
			requireSameResult(t, "replica-repeat", first, second)
		})
	}
}

// TestInvariantReplicaLegacyDefault pins the compatibility edge the
// whole layer was built on: Replicas 0 selects the paper's single
// replica region, so 0 and an explicit 1 are the same scenario.
func TestInvariantReplicaLegacyDefault(t *testing.T) {
	for _, seed := range []int64{2, 6, 19} {
		sc := fuzzgen.Expand(seed)
		sc.Replication = true
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			zero := sc
			zero.Replicas = 0
			one := sc
			one.Replicas = 1
			a, err := precinct.Run(zero)
			if err != nil {
				t.Fatal(err)
			}
			b, err := precinct.Run(one)
			if err != nil {
				t.Fatal(err)
			}
			requireSameResult(t, "replicas-0-vs-1", a, b)
		})
	}
}

// TestInvariantMetamorphicReplicaRelabel: renaming a k=2 scenario must
// not change anything about its run — replica placement keys off
// geometry and keys, never the label.
func TestInvariantMetamorphicReplicaRelabel(t *testing.T) {
	for _, seed := range []int64{5, 11} {
		sc := fuzzgen.WithReplicas(fuzzgen.Expand(seed), 2)
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			base, err := precinct.Run(sc)
			if err != nil {
				t.Fatal(err)
			}
			relabeled, err := precinct.Run(fuzzgen.Relabel(sc, sc.Name+"-relabeled"))
			if err != nil {
				t.Fatal(err)
			}
			requireSameResult(t, "replica-relabel", base, relabeled)
		})
	}
}

// TestInvariantMetamorphicReplicaLinearCache: the heap/linear cache
// equivalence (DESIGN.md section 11) must keep holding with the
// multi-rank replica layer active — replica custody changes what is
// stored where, not how victims are chosen.
func TestInvariantMetamorphicReplicaLinearCache(t *testing.T) {
	for _, seed := range []int64{4, 9, 17} {
		sc := fuzzgen.WithReplicas(fuzzgen.Expand(seed), 2)
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			base, err := precinct.Run(sc)
			if err != nil {
				t.Fatal(err)
			}
			toggled, err := precinct.Run(fuzzgen.ToggleLinearCache(sc))
			if err != nil {
				t.Fatal(err)
			}
			requireSameResult(t, "replica-linear-cache", base, toggled)
		})
	}
}

// TestInvariantPolicySweep runs one fuzzed scenario per registered
// policy under the full invariant catalog. Iterating PolicyNames()
// makes the sweep self-extending: registering a policy enrolls it in
// the end-to-end invariant discipline automatically, the system-level
// counterpart of the unit contract battery in internal/cache.
func TestInvariantPolicySweep(t *testing.T) {
	names := precinct.PolicyNames()
	if len(names) < 6 {
		t.Fatalf("registry lists %d policies, want at least 6: %v", len(names), names)
	}
	for i, policy := range names {
		sc := fuzzgen.WithPolicy(fuzzgen.Expand(int64(20+i)), policy)
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			res, inv, err := precinct.RunChecked(sc)
			if err != nil {
				t.Fatalf("RunChecked: %v", err)
			}
			if !inv.Ok() {
				for _, v := range inv.Violations {
					t.Errorf("violation: %s", v)
				}
				t.Fatalf("%s", inv)
			}
			if res.Report.Requests == 0 {
				t.Fatalf("scenario issued no requests; fuzzer produced a vacuous config")
			}
		})
	}
}

// TestInvariantPolicyReplicaCross drives both new axes at once: an
// aged competitor policy (gdsf) and a frequency policy (pop-rank) each
// under k=2 replication and the full catalog, so policy-specific
// eviction interacts with multi-rank custody in at least one checked
// run per policy family.
func TestInvariantPolicyReplicaCross(t *testing.T) {
	for i, policy := range []string{"gdsf", "pop-rank"} {
		sc := fuzzgen.WithReplicas(fuzzgen.WithPolicy(fuzzgen.Expand(int64(30+i)), policy), 2)
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			_, inv, err := precinct.RunChecked(sc)
			if err != nil {
				t.Fatalf("RunChecked: %v", err)
			}
			if !inv.Ok() {
				for _, v := range inv.Violations {
					t.Errorf("violation: %s", v)
				}
				t.Fatalf("%s", inv)
			}
		})
	}
}
