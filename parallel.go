package precinct

// Parallel event execution: a conservative-lookahead sharded run of the
// discrete-event loop (DESIGN.md section 13).
//
// The node population is sliced into Scenario.Shards spatial shards, each
// owning a replica of the simulation world — scheduler, radio channel,
// mobility model, energy meter, metrics collector, trace buffer — that
// shares the protocol state (peers, region tables, key ground truth) with
// every other shard. Shard workers execute their peers' events
// concurrently inside windows bounded by the minimum radio frame delay:
// within such a window no transmission can reach another node, so no
// cross-shard interaction is possible and the shards are independent.
// Cross-shard frame deliveries are parked in per-channel outboxes and
// exchanged at window boundaries, carrying canonical event keys reserved
// on the sender, so every event sorts exactly where the sequential run
// would have placed it. Events that mutate shared state (updates, churn,
// faults, the warmup meter reset) execute with execAs -1, which routes
// them to a separate global queue; the coordinator fires those
// single-threaded at barriers, interleaved with same-timestamp local
// events in canonical key order — the exact order the sequential
// scheduler would have used. The result is report-identical to the
// sequential run: same Report, same protocol/radio counters, same
// canonical trace.
//
// Synchronization is a decentralized round protocol over one reusable
// rendezvous (sim.WindowBarrier): each round, every participant
// publishes its queue-head times and outbox depth, crosses the barrier
// once, and computes the identical next decision — flush, barrier
// drain, or window — from the published snapshot. A pure window costs a
// single barrier crossing (the next round's rendezvous doubles as the
// join), cross-shard exchange runs only in rounds where a frame is
// actually pending, and a shard with nothing due before the horizon
// skips its window entirely.

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"precinct/internal/energy"
	"precinct/internal/geo"
	"precinct/internal/metrics"
	"precinct/internal/node"
	"precinct/internal/radio"
	"precinct/internal/sim"
	"precinct/internal/trace"
)

// Scenario.ShardBalance values.
const (
	// ShardBalanceLoad — the default — sizes shards by measured event
	// load: a short sequential probe run tallies fired events per peer,
	// and the x-sorted peer order is cut into contiguous strips of
	// equal cumulative load.
	ShardBalanceLoad = "load"
	// ShardBalanceCount cuts the x-sorted peer order into equal-count
	// strips (the pre-probe behavior). Cheaper to set up and fully
	// predictable, at the price of load imbalance when event rates vary
	// across the area.
	ShardBalanceCount = "count"
)

// shardBalanceMode resolves the empty default.
func (s Scenario) shardBalanceMode() string {
	if s.ShardBalance == "" {
		return ShardBalanceLoad
	}
	return s.ShardBalance
}

// shardStatus is one shard's published round snapshot: float64 bits of
// its earliest local and global event times (+Inf when empty) and its
// parked cross-shard delivery count. Slots are double-buffered by round
// parity: a participant that has raced ahead into round r+1 publishes
// into the other buffer, so the round-r snapshot stays frozen while
// slower participants are still reading it. (Without this, a fast shard
// could finish its window, loop, and overwrite its slot before a slow
// shard computed the round's decision — the two would then disagree on
// the decision and fall out of lockstep.) It cannot race further ahead
// than that: entering round r+2 requires every participant to have
// crossed round r+1's rendezvous, which they only do after reading
// round r. Padded so one shard's publishes stay on one cache line.
type shardStatus struct {
	local  [2]atomic.Uint64
	global [2]atomic.Uint64
	outbox [2]atomic.Uint64
	_      [16]byte
}

// parallelStats counts coordinator-side protocol activity; only
// participant 0 writes it, after the run it feeds RunStats.
type parallelStats struct {
	windows           uint64
	emptyShardWindows uint64
	barrierDrains     uint64
	flushes           uint64
	remote            uint64
}

// parallelRun is an assembled sharded simulation. Index 0 of every slice
// is the primary world built by buildFull; indices 1.. are replicas.
type parallelRun struct {
	b         *built
	shardOf   []int32
	scheds    []*sim.Scheduler
	channels  []*radio.Channel
	clones    []*node.Network
	colls     []*metrics.Collector
	meters    []*energy.Meter
	bufs      []*trace.Buffer // per-shard trace buffers; nil when untraced
	lookahead float64

	bar    *sim.WindowBarrier
	status []shardStatus
	loads  []uint64 // probe-measured weight per shard; nil in count mode
	stats  parallelStats
}

// probeWindow is the simulated prefix the shard-load probe replays:
// long enough to see steady-state request/update/mobility rates, short
// enough to stay a small fraction of the real run.
func probeWindow(duration float64) float64 {
	w := 0.04 * duration
	if w < 2 {
		w = 2
	}
	if w > 15 {
		w = 15
	}
	if w > duration {
		w = duration
	}
	return w
}

// measureShardLoad replays a short sequential prefix of the scenario
// and returns one weight per peer: 1 + the number of events the
// scheduler fired in that peer's execution context. The probe world is
// built from the scenario's own seed and discarded, so it perturbs
// nothing and the weights — hence the shard assignment — are a pure
// deterministic function of the scenario.
func measureShardLoad(s Scenario) ([]uint64, error) {
	probe := s
	probe.Shards = 0
	probe.ShardBalance = ""
	probe.Duration = probeWindow(s.Duration)
	if probe.Warmup >= probe.Duration {
		probe.Warmup = 0
	}
	if len(probe.Faults) > 0 {
		// Faults beyond the probe horizon fail validation (and cannot
		// fire anyway); keep only the ones inside the window.
		kept := probe.Faults[:0:0]
		for _, f := range probe.Faults {
			if f.At <= probe.Duration {
				kept = append(kept, f)
			}
		}
		probe.Faults = kept
	}
	b, err := probe.buildFull(nil, true)
	if err != nil {
		return nil, fmt.Errorf("precinct: shard-load probe: %w", err)
	}
	b.sched.CountExec(probe.Nodes)
	b.network.Run(probe.Duration)
	counts := b.sched.ExecCounts()
	weights := make([]uint64, probe.Nodes)
	for i := range weights {
		weights[i] = 1 + counts[i+1]
	}
	return weights, nil
}

// shardAssignment maps every peer to a shard by sorting the initial node
// layout along x (ties by y, then id) and slicing it into contiguous
// strips: equal peer counts when weights is nil, equal cumulative weight
// otherwise, always at least one peer per shard. Spatial contiguity
// keeps most radio traffic shard-local early on; ownership is static, so
// peers that later roam across strips simply generate more cross-shard
// deliveries — correctness never depends on where a peer is, only on who
// owns it.
func shardAssignment(b *built, shards int, weights []uint64) []int32 {
	n := b.scenario.Nodes
	type placed struct {
		pos geo.Point
		id  int
	}
	pts := make([]placed, n)
	for i := range pts {
		pts[i] = placed{pos: b.channel.Position(radio.NodeID(i)), id: i}
	}
	sort.Slice(pts, func(a, c int) bool {
		if pts[a].pos.X != pts[c].pos.X {
			return pts[a].pos.X < pts[c].pos.X
		}
		if pts[a].pos.Y != pts[c].pos.Y {
			return pts[a].pos.Y < pts[c].pos.Y
		}
		return pts[a].id < pts[c].id
	})
	out := make([]int32, n)
	if weights == nil {
		for rank, p := range pts {
			out[p.id] = int32(rank * shards / n)
		}
		return out
	}
	var total uint64
	for _, w := range weights {
		total += w
	}
	// Greedy equal-load cuts: walk the sorted order accumulating
	// weight; move to the next shard once this shard's share of the
	// total is covered — or when the remaining peers are exactly enough
	// to give every remaining shard one, which guarantees no shard ends
	// up empty no matter how skewed the weights are.
	var cum uint64
	shard := 0
	for rank, p := range pts {
		out[p.id] = int32(shard)
		cum += weights[p.id]
		if shard < shards-1 {
			mustAdvance := n-rank-1 == shards-shard-1
			hitShare := cum*uint64(shards) >= total*uint64(shard+1)
			if mustAdvance || hitShare {
				shard++
			}
		}
	}
	return out
}

// buildParallel assembles the sharded simulation: the shard-load probe
// (unless ShardBalance is "count"), the primary world via buildFull,
// one replica world per additional shard, then the network clones bound
// to their shards.
func (s Scenario) buildParallel(tracer trace.Tracer) (*parallelRun, error) {
	var weights []uint64
	if s.shardBalanceMode() == ShardBalanceLoad {
		w, err := measureShardLoad(s)
		if err != nil {
			return nil, err
		}
		weights = w
	}
	var bufs []*trace.Buffer
	var primaryTracer trace.Tracer
	if tracer != nil {
		// Shards emit into private buffers; the merged canonical stream
		// is replayed into the caller's tracer after the run.
		bufs = make([]*trace.Buffer, s.Shards)
		for i := range bufs {
			bufs[i] = &trace.Buffer{}
		}
		primaryTracer = bufs[0]
	}
	b, err := s.buildFull(primaryTracer, true)
	if err != nil {
		return nil, err
	}
	p := &parallelRun{
		b:         b,
		scheds:    make([]*sim.Scheduler, s.Shards),
		channels:  make([]*radio.Channel, s.Shards),
		clones:    make([]*node.Network, s.Shards),
		colls:     make([]*metrics.Collector, s.Shards),
		meters:    make([]*energy.Meter, s.Shards),
		bufs:      bufs,
		lookahead: b.channel.Config().Lookahead(),
		bar:       sim.NewWindowBarrier(s.Shards),
		status:    make([]shardStatus, s.Shards),
	}
	p.scheds[0], p.channels[0], p.clones[0] = b.sched, b.channel, b.network
	p.colls[0], p.meters[0] = b.coll, b.meter
	area := geo.NewRect(geo.Pt(0, 0), geo.Pt(s.AreaSide, s.AreaSide))
	for k := 1; k < s.Shards; k++ {
		// Each replica rebuilds mobility and loss streams from a fresh
		// registry with the primary's seed: streams are derived by name,
		// so replica trajectories and draws match the primary's exactly.
		rng := sim.NewRNG(s.Seed)
		sched := sim.NewSchedulerWithCounters(b.sched.Counters())
		sched.SplitGlobal()
		mob, err := s.buildMobility(area, rng)
		if err != nil {
			return nil, err
		}
		meter, err := energy.NewMeter(s.Nodes, energy.DefaultModel())
		if err != nil {
			return nil, err
		}
		ch, err := radio.New(s.radioConfig(), sched, mob, meter, lossStreams(rng, s.Nodes))
		if err != nil {
			return nil, err
		}
		if s.NoPooling {
			sched.DisableRecycling()
			ch.DisableRecycling()
		}
		var tr trace.Tracer
		if bufs != nil {
			tr = bufs[k]
		}
		coll := newCollector(s)
		clone, err := b.network.CloneForShard(node.ShardWorld{
			Scheduler: sched,
			Channel:   ch,
			Collector: coll,
			Meter:     meter,
			Tracer:    tr,
		})
		if err != nil {
			return nil, err
		}
		p.scheds[k], p.channels[k], p.clones[k] = sched, ch, clone
		p.colls[k], p.meters[k] = coll, meter
	}
	p.shardOf = shardAssignment(b, s.Shards, weights)
	if weights != nil {
		p.loads = make([]uint64, s.Shards)
		for id, w := range weights {
			p.loads[p.shardOf[id]] += w
		}
	}
	if err := b.network.EnableSharding(p.shardOf, p.clones); err != nil {
		return nil, err
	}
	return p, nil
}

// run drives the round protocol to the end time. Shard 0 (the
// coordinator, which also executes all single-threaded work) runs on
// the calling goroutine; shards 1.. on their own goroutines. All
// participants rejoin before run returns.
func (p *parallelRun) run(until float64) {
	p.b.network.StartParallel(until)
	var wg sync.WaitGroup
	for i := 1; i < len(p.scheds); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p.participant(i, until)
		}(i)
	}
	p.participant(0, until)
	wg.Wait()
	for _, sc := range p.scheds {
		if sc.Now() < until {
			sc.AdvanceTo(until)
		}
	}
}

// participant is one shard's side of the round protocol. Every round:
// publish this shard's queue-head times and outbox depth, rendezvous,
// and compute the identical decision every other participant reaches
// from the same published snapshot — all inputs are written before the
// barrier, so the snapshot is frozen while anyone reads it:
//
//   - a cross-shard frame is pending anywhere → flush round: the
//     coordinator moves parked deliveries to their shards while the rest
//     wait, then everyone republishes (an injected arrival may move a
//     queue head earlier than the stale snapshot says).
//   - every pending event is past `until` → done.
//   - a global event (or the end of the run) is due at or before the
//     earliest local event → barrier round: the coordinator drains the
//     due instant single-threaded in canonical key order, flushing
//     inline anything the drained events parked, while the rest wait.
//   - otherwise → window round: every shard with local work strictly
//     below the horizon H = min(T+lookahead, G, until) runs it
//     concurrently; shards with nothing due skip. No explicit join: the
//     next round's rendezvous is the join, so a window costs one
//     barrier crossing.
//
// Decisions are bit-identical across participants because they are pure
// float64 arithmetic over the identical published bits, so everyone
// always agrees on the round type and the rendezvous count stays in
// lockstep.
func (p *parallelRun) participant(i int, until float64) {
	sc := p.scheds[i]
	ch := p.channels[i]
	st := &p.status[i]
	for r := uint(0); ; r++ {
		pr := r & 1
		lt, gt := math.Inf(1), math.Inf(1)
		if t, ok := sc.PeekLocal(); ok {
			lt = t
		}
		if t, ok := sc.PeekGlobal(); ok {
			gt = t
		}
		st.local[pr].Store(math.Float64bits(lt))
		st.global[pr].Store(math.Float64bits(gt))
		st.outbox[pr].Store(uint64(ch.OutboxLen()))
		p.bar.Await()

		T, G := math.Inf(1), math.Inf(1)
		cross := false
		for k := range p.status {
			s := &p.status[k]
			if t := math.Float64frombits(s.local[pr].Load()); t < T {
				T = t
			}
			if t := math.Float64frombits(s.global[pr].Load()); t < G {
				G = t
			}
			if s.outbox[pr].Load() > 0 {
				cross = true
			}
		}
		if cross {
			if i == 0 {
				p.stats.flushes++
				p.flushOutboxes()
			}
			p.bar.Await()
			continue
		}
		M := math.Min(T, G)
		if M > until {
			return
		}
		if H := math.Min(math.Min(T+p.lookahead, G), until); H > T {
			if i == 0 {
				p.stats.windows++
				for k := range p.status {
					if math.Float64frombits(p.status[k].local[pr].Load()) >= H {
						p.stats.emptyShardWindows++
					}
				}
			}
			if lt < H {
				sc.RunBefore(H)
			}
		} else {
			if i == 0 {
				p.stats.barrierDrains++
				p.drainBarrier(M)
				// A drained event may transmit across shards; those
				// deliveries are flushed here, while every other
				// participant is parked at the rendezvous below.
				p.flushOutboxes()
			}
			p.bar.Await()
		}
	}
}

// drainBarrier executes every event due exactly at time m — global ones
// and any same-timestamp local ones — single-threaded, always firing the
// canonically least key remaining across all shards. Re-peeking each
// iteration mirrors the sequential scheduler's pop-min behavior when a
// fired event schedules more work at the same instant.
//
// Every shard clock is advanced to m first: a barrier event may touch
// peers on any shard (a quit fault re-homes keys through the owner
// clone's scheduler and channel), and those must observe the barrier
// time, not the owner shard's last window — exactly as the sequential
// run's single clock would read. No clock can be past m: windows never
// run past the earliest global event, and m is the minimum pending time.
func (p *parallelRun) drainBarrier(m float64) {
	for _, sc := range p.scheds {
		if sc.Now() < m {
			sc.AdvanceTo(m)
		}
	}
	for {
		best := -1
		var bestKey sim.EventKey
		for i, sc := range p.scheds {
			k, ok := sc.PeekKey()
			if !ok || k.Time != m {
				continue
			}
			if best < 0 || k.Less(bestKey) {
				best, bestKey = i, k
			}
		}
		if best < 0 {
			return
		}
		p.scheds[best].StepAt(m)
	}
}

// flushOutboxes moves cross-shard deliveries parked during the last
// window (or barrier) to their receiving shards, then resets each
// outbox in place so the backing arrays are reused round after round.
// Every parked arrival lies at least one lookahead past its send time,
// hence strictly beyond the window that produced it — never in the
// receiver's past. Only the coordinator calls this, and only while all
// other participants are stopped at a rendezvous.
func (p *parallelRun) flushOutboxes() {
	for _, ch := range p.channels {
		box := ch.Outbox()
		if len(box) == 0 {
			continue
		}
		p.stats.remote += uint64(len(box))
		for k := range box {
			rd := box[k]
			p.channels[p.shardOf[rd.To]].Inject(rd)
		}
		ch.ResetOutbox()
	}
}

// runParallel executes a Shards>1 scenario and merges the per-shard
// worlds into the same Result shape a sequential run produces.
func runParallel(s Scenario, tracer trace.Tracer) (Result, RunStats, error) {
	p, err := s.buildParallel(tracer)
	if err != nil {
		return Result{}, RunStats{}, err
	}
	p.run(s.Duration)

	var events uint64
	shardEvents := make([]uint64, len(p.scheds))
	for k, sc := range p.scheds {
		shardEvents[k] = sc.Executed()
		events += sc.Executed()
	}
	for k := 1; k < len(p.clones); k++ {
		p.b.coll.Merge(p.colls[k])
		if p.b.meter != nil {
			if err := p.b.meter.Merge(p.meters[k]); err != nil {
				return Result{}, RunStats{}, fmt.Errorf("precinct: merging shard %d meter: %w", k, err)
			}
		}
	}
	var protoStats node.Stats
	var radioStats radio.Stats
	for k := range p.clones {
		protoStats = protoStats.Add(p.clones[k].Stats())
		radioStats = radioStats.Add(p.channels[k].Stats())
	}
	if p.bufs != nil {
		var all []trace.Event
		for _, b := range p.bufs {
			all = append(all, b.Events...)
		}
		trace.Canonicalize(all)
		for _, e := range all {
			tracer.Emit(e)
		}
	}
	return Result{
		Scenario: s,
		Report:   fromMetrics(p.b.network.Report()),
		Protocol: fromStats(protoStats),
		Radio:    fromRadio(radioStats),
	}, RunStats{
		Events:            events,
		Windows:           p.stats.windows,
		EmptyShardWindows: p.stats.emptyShardWindows,
		BarrierDrains:     p.stats.barrierDrains,
		OutboxFlushes:     p.stats.flushes,
		RemoteDeliveries:  p.stats.remote,
		ShardEvents:       shardEvents,
		ShardLoads:        p.loads,
	}, nil
}
