package precinct

// Parallel event execution: a conservative-lookahead sharded run of the
// discrete-event loop (DESIGN.md section 13).
//
// The node population is sliced into Scenario.Shards spatial shards, each
// owning a replica of the simulation world — scheduler, radio channel,
// mobility model, energy meter, metrics collector, trace buffer — that
// shares the protocol state (peers, region tables, key ground truth) with
// every other shard. Shard workers execute their peers' events
// concurrently inside windows bounded by the minimum radio frame delay:
// within such a window no transmission can reach another node, so no
// cross-shard interaction is possible and the shards are independent.
// Cross-shard frame deliveries are parked in per-channel outboxes and
// exchanged at window boundaries, carrying canonical event keys reserved
// on the sender, so every event sorts exactly where the sequential run
// would have placed it. Events that mutate shared state (updates, churn,
// faults, the warmup meter reset) execute with execAs -1, which routes
// them to a separate global queue; the coordinator fires those
// single-threaded at barriers, interleaved with same-timestamp local
// events in canonical key order — the exact order the sequential
// scheduler would have used. The result is report-identical to the
// sequential run: same Report, same protocol/radio counters, same
// canonical trace.

import (
	"fmt"
	"math"
	"sort"

	"precinct/internal/energy"
	"precinct/internal/geo"
	"precinct/internal/metrics"
	"precinct/internal/node"
	"precinct/internal/radio"
	"precinct/internal/sim"
	"precinct/internal/trace"
)

// parallelRun is an assembled sharded simulation. Index 0 of every slice
// is the primary world built by buildFull; indices 1.. are replicas.
type parallelRun struct {
	b         *built
	shardOf   []int32
	scheds    []*sim.Scheduler
	channels  []*radio.Channel
	clones    []*node.Network
	colls     []*metrics.Collector
	meters    []*energy.Meter
	bufs      []*trace.Buffer // per-shard trace buffers; nil when untraced
	lookahead float64
}

// shardAssignment maps every peer to a shard by sorting the initial node
// layout along x (ties by y, then id) and slicing it into equal-count
// strips. Spatial contiguity keeps most radio traffic shard-local early
// on; ownership is static, so peers that later roam across strips simply
// generate more cross-shard deliveries — correctness never depends on
// where a peer is, only on who owns it.
func shardAssignment(b *built, shards int) []int32 {
	n := b.scenario.Nodes
	type placed struct {
		pos geo.Point
		id  int
	}
	pts := make([]placed, n)
	for i := range pts {
		pts[i] = placed{pos: b.channel.Position(radio.NodeID(i)), id: i}
	}
	sort.Slice(pts, func(a, c int) bool {
		if pts[a].pos.X != pts[c].pos.X {
			return pts[a].pos.X < pts[c].pos.X
		}
		if pts[a].pos.Y != pts[c].pos.Y {
			return pts[a].pos.Y < pts[c].pos.Y
		}
		return pts[a].id < pts[c].id
	})
	out := make([]int32, n)
	for rank, p := range pts {
		out[p.id] = int32(rank * shards / n)
	}
	return out
}

// buildParallel assembles the sharded simulation: the primary world via
// buildFull, then one replica world per additional shard, then the
// network clones bound to their shards.
func (s Scenario) buildParallel(tracer trace.Tracer) (*parallelRun, error) {
	var bufs []*trace.Buffer
	var primaryTracer trace.Tracer
	if tracer != nil {
		// Shards emit into private buffers; the merged canonical stream
		// is replayed into the caller's tracer after the run.
		bufs = make([]*trace.Buffer, s.Shards)
		for i := range bufs {
			bufs[i] = &trace.Buffer{}
		}
		primaryTracer = bufs[0]
	}
	b, err := s.buildFull(primaryTracer, true)
	if err != nil {
		return nil, err
	}
	p := &parallelRun{
		b:         b,
		scheds:    make([]*sim.Scheduler, s.Shards),
		channels:  make([]*radio.Channel, s.Shards),
		clones:    make([]*node.Network, s.Shards),
		colls:     make([]*metrics.Collector, s.Shards),
		meters:    make([]*energy.Meter, s.Shards),
		bufs:      bufs,
		lookahead: b.channel.Config().Lookahead(),
	}
	p.scheds[0], p.channels[0], p.clones[0] = b.sched, b.channel, b.network
	p.colls[0], p.meters[0] = b.coll, b.meter
	area := geo.NewRect(geo.Pt(0, 0), geo.Pt(s.AreaSide, s.AreaSide))
	for k := 1; k < s.Shards; k++ {
		// Each replica rebuilds mobility and loss streams from a fresh
		// registry with the primary's seed: streams are derived by name,
		// so replica trajectories and draws match the primary's exactly.
		rng := sim.NewRNG(s.Seed)
		sched := sim.NewSchedulerWithCounters(b.sched.Counters())
		sched.SplitGlobal()
		mob, err := s.buildMobility(area, rng)
		if err != nil {
			return nil, err
		}
		meter, err := energy.NewMeter(s.Nodes, energy.DefaultModel())
		if err != nil {
			return nil, err
		}
		ch, err := radio.New(s.radioConfig(), sched, mob, meter, lossStreams(rng, s.Nodes))
		if err != nil {
			return nil, err
		}
		if s.NoPooling {
			sched.DisableRecycling()
			ch.DisableRecycling()
		}
		var tr trace.Tracer
		if bufs != nil {
			tr = bufs[k]
		}
		coll := newCollector(s)
		clone, err := b.network.CloneForShard(node.ShardWorld{
			Scheduler: sched,
			Channel:   ch,
			Collector: coll,
			Meter:     meter,
			Tracer:    tr,
		})
		if err != nil {
			return nil, err
		}
		p.scheds[k], p.channels[k], p.clones[k] = sched, ch, clone
		p.colls[k], p.meters[k] = coll, meter
	}
	p.shardOf = shardAssignment(b, s.Shards)
	if err := b.network.EnableSharding(p.shardOf, p.clones); err != nil {
		return nil, err
	}
	return p, nil
}

// run drives the window loop to the end time. Shard 0 executes on the
// calling goroutine; shards 1.. on persistent workers that park between
// windows. All cross-goroutine synchronization is by the start/done
// channel handshake, which orders every shard's window against the
// coordinator's barrier work.
func (p *parallelRun) run(until float64) {
	type worker struct {
		start chan float64
		done  chan struct{}
	}
	workers := make([]worker, len(p.scheds)-1)
	for i := range workers {
		w := worker{start: make(chan float64, 1), done: make(chan struct{}, 1)}
		workers[i] = w
		go func(sc *sim.Scheduler) {
			for h := range w.start {
				sc.RunBefore(h)
				w.done <- struct{}{}
			}
		}(p.scheds[i+1])
	}
	defer func() {
		for _, w := range workers {
			close(w.start)
		}
	}()

	p.b.network.StartParallel(until)
	for {
		// T: earliest shard-local event; G: earliest global event.
		T, G := math.Inf(1), math.Inf(1)
		for _, sc := range p.scheds {
			if t, ok := sc.PeekLocal(); ok && t < T {
				T = t
			}
			if t, ok := sc.PeekGlobal(); ok && t < G {
				G = t
			}
		}
		M := math.Min(T, G)
		if M > until {
			break
		}
		// The window may extend one lookahead past the earliest event but
		// never past a due global event or the end of the run.
		if H := math.Min(math.Min(T+p.lookahead, G), until); H > T {
			for _, w := range workers {
				w.start <- H
			}
			p.scheds[0].RunBefore(H)
			for _, w := range workers {
				<-w.done
			}
		} else {
			p.drainBarrier(M)
		}
		p.flushOutboxes()
	}
	for _, sc := range p.scheds {
		if sc.Now() < until {
			sc.AdvanceTo(until)
		}
	}
}

// drainBarrier executes every event due exactly at time m — global ones
// and any same-timestamp local ones — single-threaded, always firing the
// canonically least key remaining across all shards. Re-peeking each
// iteration mirrors the sequential scheduler's pop-min behavior when a
// fired event schedules more work at the same instant.
//
// Every shard clock is advanced to m first: a barrier event may touch
// peers on any shard (a quit fault re-homes keys through the owner
// clone's scheduler and channel), and those must observe the barrier
// time, not the owner shard's last window — exactly as the sequential
// run's single clock would read. No clock can be past m: windows never
// run past the earliest global event, and m is the minimum pending time.
func (p *parallelRun) drainBarrier(m float64) {
	for _, sc := range p.scheds {
		if sc.Now() < m {
			sc.AdvanceTo(m)
		}
	}
	for {
		best := -1
		var bestKey sim.EventKey
		for i, sc := range p.scheds {
			k, ok := sc.PeekKey()
			if !ok || k.Time != m {
				continue
			}
			if best < 0 || k.Less(bestKey) {
				best, bestKey = i, k
			}
		}
		if best < 0 {
			return
		}
		p.scheds[best].StepAt(m)
	}
}

// flushOutboxes moves cross-shard deliveries parked during the last
// window (or barrier) to their receiving shards. Every parked arrival
// lies at least one lookahead past its send time, hence strictly beyond
// the window that produced it — never in the receiver's past.
func (p *parallelRun) flushOutboxes() {
	for _, ch := range p.channels {
		for _, rd := range ch.DrainOutbox() {
			p.channels[p.shardOf[rd.To]].Inject(rd)
		}
	}
}

// runParallel executes a Shards>1 scenario and merges the per-shard
// worlds into the same Result shape a sequential run produces.
func runParallel(s Scenario, tracer trace.Tracer) (Result, RunStats, error) {
	p, err := s.buildParallel(tracer)
	if err != nil {
		return Result{}, RunStats{}, err
	}
	p.run(s.Duration)

	var events uint64
	for _, sc := range p.scheds {
		events += sc.Executed()
	}
	for k := 1; k < len(p.clones); k++ {
		p.b.coll.Merge(p.colls[k])
		if p.b.meter != nil {
			if err := p.b.meter.Merge(p.meters[k]); err != nil {
				return Result{}, RunStats{}, fmt.Errorf("precinct: merging shard %d meter: %w", k, err)
			}
		}
	}
	var protoStats node.Stats
	var radioStats radio.Stats
	for k := range p.clones {
		protoStats = protoStats.Add(p.clones[k].Stats())
		radioStats = radioStats.Add(p.channels[k].Stats())
	}
	if p.bufs != nil {
		var all []trace.Event
		for _, b := range p.bufs {
			all = append(all, b.Events...)
		}
		trace.Canonicalize(all)
		for _, e := range all {
			tracer.Emit(e)
		}
	}
	return Result{
		Scenario: s,
		Report:   fromMetrics(p.b.network.Report()),
		Protocol: fromStats(protoStats),
		Radio:    fromRadio(radioStats),
	}, RunStats{Events: events}, nil
}
