package precinct

import (
	"strings"
	"testing"
)

// tinyScenario is the cheapest run that still validates; sweep tests only
// care about orchestration, not simulation output.
func tinyScenario(name string, seed int64) Scenario {
	s := DefaultScenario()
	s.Name = name
	s.Nodes = 12
	s.Items = 50
	s.Duration = 60
	s.Warmup = 10
	s.Seed = seed
	return s
}

func TestSweepAbortsQueuedScenariosAfterError(t *testing.T) {
	bad := func(name string) Scenario {
		s := tinyScenario(name, 1)
		s.Nodes = 0 // fails validation inside Run
		return s
	}
	scenarios := []Scenario{
		tinyScenario("ok", 1),
		bad("boom"),
		bad("never-runs"),
	}
	// One worker makes execution order deterministic: "ok" runs, "boom"
	// fails and sets the abort flag, "never-runs" must be skipped.
	_, err := Sweep(scenarios, 1)
	if err == nil {
		t.Fatal("expected an error")
	}
	if !strings.Contains(err.Error(), "scenario 1 (boom)") {
		t.Errorf("error does not identify the failing scenario: %v", err)
	}
	if strings.Contains(err.Error(), "never-runs") {
		t.Errorf("queued scenario ran after abort: %v", err)
	}
}

func TestSweepJoinsConcurrentErrors(t *testing.T) {
	bad := func(name string) Scenario {
		s := tinyScenario(name, 1)
		s.Regions = 0
		return s
	}
	// Two workers, two failing scenarios. Whether both run or the abort
	// flag skips the second depends on goroutine timing; every error that
	// did occur must appear in the joined result, each tagged with its
	// scenario, and errors.Join renders them one per line.
	scenarios := []Scenario{bad("x"), bad("y")}
	_, err := Sweep(scenarios, 2)
	if err == nil {
		t.Fatal("expected an error")
	}
	lines := strings.Split(err.Error(), "\n")
	if len(lines) < 1 || len(lines) > 2 {
		t.Fatalf("expected 1-2 joined errors, got %d: %v", len(lines), err)
	}
	for _, line := range lines {
		if !strings.Contains(line, "scenario 0 (x)") && !strings.Contains(line, "scenario 1 (y)") {
			t.Errorf("joined error line not tagged with a scenario: %q", line)
		}
	}
}
