package precinct

import (
	"reflect"
	"strings"
	"testing"
)

// tinyScenario is the cheapest run that still validates; sweep tests only
// care about orchestration, not simulation output.
func tinyScenario(name string, seed int64) Scenario {
	s := DefaultScenario()
	s.Name = name
	s.Nodes = 12
	s.Items = 50
	s.Duration = 60
	s.Warmup = 10
	s.Seed = seed
	return s
}

func TestSweepAbortsQueuedScenariosAfterError(t *testing.T) {
	bad := func(name string) Scenario {
		s := tinyScenario(name, 1)
		s.Nodes = 0 // fails validation inside Run
		return s
	}
	scenarios := []Scenario{
		tinyScenario("ok", 1),
		bad("boom"),
		bad("never-runs"),
	}
	// One worker makes execution order deterministic: "ok" runs, "boom"
	// fails and sets the abort flag, "never-runs" must be skipped.
	results, err := Sweep(scenarios, 1)
	if err == nil {
		t.Fatal("expected an error")
	}
	if results != nil {
		t.Errorf("a failed sweep must return nil results, got %d partial results", len(results))
	}
	if !strings.Contains(err.Error(), "scenario 1 (boom)") {
		t.Errorf("error does not identify the failing scenario: %v", err)
	}
	if strings.Contains(err.Error(), "never-runs") {
		t.Errorf("queued scenario ran after abort: %v", err)
	}
}

func TestSweepJoinsConcurrentErrors(t *testing.T) {
	bad := func(name string) Scenario {
		s := tinyScenario(name, 1)
		s.Regions = 0
		return s
	}
	// Two workers, two failing scenarios. Whether both run or the abort
	// flag skips the second depends on goroutine timing; every error that
	// did occur must appear in the joined result, each tagged with its
	// scenario, and errors.Join renders them one per line.
	scenarios := []Scenario{bad("x"), bad("y")}
	_, err := Sweep(scenarios, 2)
	if err == nil {
		t.Fatal("expected an error")
	}
	lines := strings.Split(err.Error(), "\n")
	if len(lines) < 1 || len(lines) > 2 {
		t.Fatalf("expected 1-2 joined errors, got %d: %v", len(lines), err)
	}
	for _, line := range lines {
		if !strings.Contains(line, "scenario 0 (x)") && !strings.Contains(line, "scenario 1 (y)") {
			t.Errorf("joined error line not tagged with a scenario: %q", line)
		}
	}
}

// TestSweepEmptyInput: an empty sweep is a no-op, not an error.
func TestSweepEmptyInput(t *testing.T) {
	results, err := Sweep(nil, 4)
	if err != nil {
		t.Fatalf("empty sweep errored: %v", err)
	}
	if results != nil {
		t.Fatalf("empty sweep returned results: %v", results)
	}
}

// TestReplicatePropagatesScenarioErrors: a scenario that fails validation
// inside the replicated sweep must surface through Replicate with the
// per-seed scenario name, and must yield no partial results or report.
func TestReplicatePropagatesScenarioErrors(t *testing.T) {
	bad := tinyScenario("rep", 1)
	bad.Nodes = 0 // fails validation inside Run
	results, mean, err := Replicate(bad, []int64{101, 102}, 1)
	if err == nil {
		t.Fatal("expected an error")
	}
	if !strings.Contains(err.Error(), "rep/seed=101") {
		t.Errorf("error does not carry the per-seed scenario name: %v", err)
	}
	if results != nil {
		t.Errorf("failed Replicate must return nil results, got %d", len(results))
	}
	if !reflect.DeepEqual(mean, Report{}) {
		t.Errorf("failed Replicate must return a zero mean report, got %+v", mean)
	}
}

// TestReplicateRejectsEmptySeeds: no seeds is a configuration error.
func TestReplicateRejectsEmptySeeds(t *testing.T) {
	if _, _, err := Replicate(tinyScenario("rep", 1), nil, 1); err == nil {
		t.Fatal("expected an error for an empty seed list")
	}
}
