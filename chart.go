package precinct

import (
	"fmt"
	"math"
	"strings"
)

// Chart renders the figure as an ASCII scatter/line chart for terminal
// inspection: one mark per series ('a', 'b', …), linear axes fitted to
// the data. Width and height are the plot area in characters; sensible
// minimums are enforced.
func (f Figure) Chart(width, height int) string {
	if width < 20 {
		width = 20
	}
	if height < 5 {
		height = 5
	}

	// Data bounds.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range f.Series {
		for i := range s.X {
			if i >= len(s.Y) {
				break
			}
			points++
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, s.Y[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", f.ID, f.Title)
	if points == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	mark := byte('a')
	for _, s := range f.Series {
		for i := range s.X {
			if i >= len(s.Y) {
				break
			}
			col := int(math.Round((s.X[i] - minX) / (maxX - minX) * float64(width-1)))
			row := int(math.Round((s.Y[i] - minY) / (maxY - minY) * float64(height-1)))
			row = height - 1 - row // origin bottom-left
			if grid[row][col] != ' ' && grid[row][col] != mark {
				grid[row][col] = '*' // overlapping series
			} else {
				grid[row][col] = mark
			}
		}
		mark++
	}

	yLabelW := 10
	for r, line := range grid {
		var label string
		switch r {
		case 0:
			label = fmt.Sprintf("%*.3g", yLabelW, maxY)
		case height - 1:
			label = fmt.Sprintf("%*.3g", yLabelW, minY)
		default:
			label = strings.Repeat(" ", yLabelW)
		}
		fmt.Fprintf(&b, "%s |%s|\n", label, line)
	}
	fmt.Fprintf(&b, "%s +%s+\n", strings.Repeat(" ", yLabelW), strings.Repeat("-", width))
	fmt.Fprintf(&b, "%s  %-*.3g%*.3g  (%s)\n",
		strings.Repeat(" ", yLabelW), width/2, minX, width-width/2, maxX, f.XLabel)
	legend := make([]string, 0, len(f.Series))
	mark = 'a'
	for _, s := range f.Series {
		legend = append(legend, fmt.Sprintf("%c=%s", mark, s.Label))
		mark++
	}
	fmt.Fprintf(&b, "%s  %s\n", strings.Repeat(" ", yLabelW), strings.Join(legend, "  "))
	return b.String()
}
