//go:build soak

package precinct_test

// Soak tier: the ROADMAP-scale endurance run, deliberately excluded
// from the default test set (build tag "soak"; run via `make soak` or
// `go test -tags soak -run Soak -timeout 60m .`). Where the regular
// suite proves properties at paper scale and the scale tier samples
// large-N scenarios briefly, the soak test drives one 2000-node,
// heavily lossy scenario for a long horizon under the full runtime
// invariant catalog, then proves the same run survives an interrupted
// checkpoint/resume round-trip bit-identically. Anything that only
// breaks after sustained pressure — leaked in-flight accounting,
// aging-floor drift, heap-index corruption after millions of
// evictions — surfaces here.

import (
	"math"
	"reflect"
	"testing"

	"precinct"
	"precinct/internal/invariant/fuzzgen"
)

// soakScenario is the fixed endurance workload: 2000 peers at the
// paper's node density, 30% frame loss, adaptive-pull consistency and
// real cache pressure. Everything is pinned (no fuzzing) so failures
// reproduce exactly.
func soakScenario() precinct.Scenario {
	s := precinct.DefaultScenario()
	s.Name = "soak-2000"
	s.Nodes = 2000
	s.AreaSide = 1200 * math.Sqrt(2000.0/80)
	rows := int(math.Round(s.AreaSide / 400))
	s.Regions = rows * rows
	s.LossRate = 0.3
	s.UpdateInterval = 60
	s.Consistency = "push-adaptive-pull"
	s.CacheFraction = 0.01
	s.Warmup = 60
	s.Duration = 600
	return s
}

// TestSoakScaleInvariants runs the endurance scenario under all seven
// runtime checkers (DESIGN.md section 9) and requires a clean report
// with real traffic behind it.
func TestSoakScaleInvariants(t *testing.T) {
	sc := soakScenario()
	res, inv, err := precinct.RunChecked(sc)
	if err != nil {
		t.Fatalf("RunChecked: %v", err)
	}
	if !inv.Ok() {
		for _, v := range inv.Violations {
			t.Errorf("violation: %s", v)
		}
		t.Fatalf("%s", inv)
	}
	if inv.Sweeps == 0 || inv.Events == 0 {
		t.Fatalf("checkers did not run: %s", inv)
	}
	if res.Report.Requests < 10000 {
		t.Fatalf("only %d requests; the soak run is not exercising the system", res.Report.Requests)
	}
	t.Logf("soak: %d requests, hit ratio %.3f, %d sweeps / %d event checks clean",
		res.Report.Requests, res.Report.ByteHitRatio, inv.Sweeps, inv.Events)
}

// TestSoakCheckpointResume interrupts the endurance scenario at a
// mid-run snapshot boundary, resumes it in the same process, and
// requires the resumed Result to be bit-identical (DeepEqual) to an
// uninterrupted run — the scale-tier version of TestResumeEquivalence,
// where the snapshot carries 2000 caches, stores and region tables.
func TestSoakCheckpointResume(t *testing.T) {
	sc := soakScenario()
	full, err := precinct.Run(sc)
	if err != nil {
		t.Fatalf("uninterrupted run: %v", err)
	}

	dir := t.TempDir()
	mid := sc.Warmup + (sc.Duration-sc.Warmup)/2
	if _, err := precinct.RunCheckpointed(sc, precinct.CheckpointOptions{
		Dir: dir, Label: "soak", Interval: 60, StopAfter: mid,
	}); err != nil {
		t.Fatalf("interrupted run: %v", err)
	}
	resumed, err := precinct.RunCheckpointed(sc, precinct.CheckpointOptions{
		Dir: dir, Label: "soak", Interval: 60, Resume: true,
	})
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if !reflect.DeepEqual(resumed, full) {
		t.Errorf("resumed result differs from uninterrupted run:\n resumed: %+v\n full:    %+v",
			resumed.Report, full.Report)
	}
}

// TestSoakHeapLinearEquivalence re-proves the victim-index contract at
// soak scale: the 2000-node run must be bit-identical with the heap
// index and with the retained linear reference scan. One scenario, but
// millions of cache operations — the longest equivalence chain the
// suite exercises.
func TestSoakHeapLinearEquivalence(t *testing.T) {
	sc := soakScenario()
	heap, err := precinct.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	linear, err := precinct.Run(fuzzgen.ToggleLinearCache(sc))
	if err != nil {
		t.Fatal(err)
	}
	// Scenario differs by the toggle itself; everything observable must
	// not.
	if !reflect.DeepEqual(heap.Report, linear.Report) {
		t.Errorf("Report diverged:\n heap:   %+v\n linear: %+v", heap.Report, linear.Report)
	}
	if !reflect.DeepEqual(heap.Protocol, linear.Protocol) {
		t.Errorf("ProtocolStats diverged:\n heap:   %+v\n linear: %+v", heap.Protocol, linear.Protocol)
	}
	if !reflect.DeepEqual(heap.Radio, linear.Radio) {
		t.Errorf("RadioStats diverged:\n heap:   %+v\n linear: %+v", heap.Radio, linear.Radio)
	}
}
