package precinct_test

import (
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"

	"precinct"
	"precinct/internal/invariant/fuzzgen"
	"precinct/internal/node"
	"precinct/internal/radio"
	"precinct/internal/region"
	"precinct/internal/workload"
)

// evictRec is one observed eviction: which peer evicted which key.
type evictRec struct {
	Node radio.NodeID
	Key  workload.Key
}

// evictLog is a node.Probe that records the run's complete eviction
// sequence and ignores everything else.
type evictLog struct {
	seq []evictRec
}

func (l *evictLog) OnCacheAdmit(radio.NodeID, region.ID, region.ID, workload.Key) {}
func (l *evictLog) OnTTRSmoothed(radio.NodeID, workload.Key, float64, float64, float64, float64) {
}
func (l *evictLog) AfterRehome(*node.Peer, bool) {}
func (l *evictLog) OnCacheEvict(id radio.NodeID, key workload.Key) {
	l.seq = append(l.seq, evictRec{Node: id, Key: key})
}

// runWithEvictLog executes a scenario with an eviction-sequence probe
// attached and returns the result plus the ordered eviction log.
func runWithEvictLog(t *testing.T, s precinct.Scenario) (precinct.Result, []evictRec) {
	t.Helper()
	log := &evictLog{}
	res, err := precinct.RunProbedForTest(s, log)
	if err != nil {
		t.Fatal(err)
	}
	return res, log.seq
}

// TestCacheIndexEquivalence enforces the cache determinism contract the
// same way TestGridLinearEquivalence does for the radio layer: a run
// whose caches evict through the heap victim index must be bit-for-bit
// identical — same eviction sequence, same Report/Protocol/Radio — to
// the same run using the retained O(n) linear reference scan
// (Scenario.LinearCache). The corpus is ≥16 fuzzgen seeds covering both
// aged policies (GD-LD and GD-Size), message loss, and the large-N
// scale tier.
func TestCacheIndexEquivalence(t *testing.T) {
	type tc struct {
		name string
		s    precinct.Scenario
	}
	var cases []tc

	// Regular fuzzgen seeds, policy pinned to the two aged policies and
	// half of them forced lossy.
	for seed := int64(1); seed <= 12; seed++ {
		s := fuzzgen.Expand(seed)
		if seed%2 == 0 {
			s.Policy = "gd-size"
		} else {
			s.Policy = "gd-ld"
		}
		if seed%2 == 1 && s.LossRate == 0 {
			s.LossRate = 0.1
		}
		// Make sure caches exist and see pressure.
		if s.CacheFraction <= 0 {
			s.CacheFraction = 0.01
		}
		cases = append(cases, tc{fmt.Sprintf("fuzz-%d/%s", seed, s.Policy), s})
	}

	// Scale-tier seeds: large-N, always lossy. Capped under -short.
	maxNodes := 2000
	scaleSeeds := []int64{1, 2, 3, 4, 5, 6}
	if testing.Short() {
		maxNodes = 500
		scaleSeeds = scaleSeeds[:4]
	}
	for i, seed := range scaleSeeds {
		s := fuzzgen.ExpandScale(seed, maxNodes)
		if i%2 == 0 {
			s.Policy = "gd-ld"
		} else {
			s.Policy = "gd-size"
		}
		cases = append(cases, tc{fmt.Sprintf("scale-%d/%s", seed, s.Policy), s})
	}

	if len(cases) < 16 {
		t.Fatalf("only %d seeds; the contract requires at least 16", len(cases))
	}

	var totalEvictions atomic.Int64
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			s := c.s
			s.LinearCache = false
			heap, heapEv := runWithEvictLog(t, s)
			s.LinearCache = true
			linear, linEv := runWithEvictLog(t, s)

			if !reflect.DeepEqual(heapEv, linEv) {
				n := len(heapEv)
				if len(linEv) < n {
					n = len(linEv)
				}
				for i := 0; i < n; i++ {
					if heapEv[i] != linEv[i] {
						t.Fatalf("eviction sequences diverged at %d: heap %+v, linear %+v",
							i, heapEv[i], linEv[i])
					}
				}
				t.Fatalf("eviction sequence lengths diverged: heap %d, linear %d",
					len(heapEv), len(linEv))
			}
			if !reflect.DeepEqual(heap.Report, linear.Report) {
				t.Errorf("Report diverged:\nheap:   %+v\nlinear: %+v", heap.Report, linear.Report)
			}
			if !reflect.DeepEqual(heap.Protocol, linear.Protocol) {
				t.Errorf("ProtocolStats diverged:\nheap:   %+v\nlinear: %+v", heap.Protocol, linear.Protocol)
			}
			if !reflect.DeepEqual(heap.Radio, linear.Radio) {
				t.Errorf("RadioStats diverged:\nheap:   %+v\nlinear: %+v", heap.Radio, linear.Radio)
			}
			totalEvictions.Add(int64(len(heapEv)))
		})
	}
	// The subtests run in parallel, so the vacuity check must wait for
	// them; a cleanup on the parent runs after all parallel children.
	t.Cleanup(func() {
		if !t.Failed() && totalEvictions.Load() == 0 {
			t.Error("no scenario evicted anything; the equivalence is vacuous")
		}
	})
}
