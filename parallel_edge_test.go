package precinct_test

import (
	"fmt"
	"testing"

	"precinct"
	"precinct/internal/invariant/fuzzgen"
)

// edgeScenario is a small, fast base for the barrier edge-case suite:
// mobile, lossy, with updates, so windows, barrier drains and
// cross-shard traffic all occur within a short horizon.
func edgeScenario() precinct.Scenario {
	s := precinct.DefaultScenario()
	s.Name = "parallel-edge"
	s.Nodes = 24
	s.Duration = 40
	s.Warmup = 5
	s.UpdateInterval = 15
	s.LossRate = 0.1
	return s
}

// TestParallelSimultaneousFaults pins the barrier drain's canonical
// interleaving when several barrier events are due at the same instant
// on distinct shards: one fault per shard, all at the same timestamp,
// must execute in exactly the order the sequential scheduler would
// have used — proven by report and trace identity across modes.
func TestParallelSimultaneousFaults(t *testing.T) {
	for _, balance := range []string{precinct.ShardBalanceLoad, precinct.ShardBalanceCount} {
		balance := balance
		t.Run(balance, func(t *testing.T) {
			t.Parallel()
			s := edgeScenario()
			s.ShardBalance = balance
			s.Shards = 4
			assign, err := precinct.ShardAssignmentForTest(s)
			if err != nil {
				t.Fatal(err)
			}
			// One fault per shard, every one due at the same instant.
			// Alternating kinds makes the drain order observable: a quit
			// hands keys off, a crash does not.
			kinds := []string{"quit", "crash", "quit", "crash"}
			seen := make(map[int32]bool)
			for id, sh := range assign {
				if seen[sh] {
					continue
				}
				seen[sh] = true
				s.Faults = append(s.Faults, precinct.Fault{At: 12.5, Node: id, Kind: kinds[int(sh)%len(kinds)]})
			}
			if len(s.Faults) != 4 {
				t.Fatalf("expected one fault per shard, got %d", len(s.Faults))
			}
			compareModes(t, s, 2, 4)
		})
	}
}

// TestParallelShardEmptiesMidRun kills every node owned by one shard
// partway through the run: the shard stops doing protocol work (its
// dead peers' recurring timers still tick, but transmit and receive
// nothing), so its windows go empty between sparse timer events while
// the other shards keep running — and the run must stay
// report-identical to sequential throughout. The equal-count split
// makes the targeted shard's membership predictable; the assignment
// helper confirms it.
func TestParallelShardEmptiesMidRun(t *testing.T) {
	s := edgeScenario()
	s.ShardBalance = precinct.ShardBalanceCount
	s.Shards = 3
	assign, err := precinct.ShardAssignmentForTest(s)
	if err != nil {
		t.Fatal(err)
	}
	var victims []int
	for id, sh := range assign {
		if sh == 1 {
			victims = append(victims, id)
		}
	}
	if len(victims) != s.Nodes/s.Shards {
		t.Fatalf("equal-count split gave shard 1 %d of %d nodes", len(victims), s.Nodes)
	}
	// Crash the shard's nodes in a short burst (distinct times exercise
	// consecutive barrier drains; the last two share one instant).
	for i, id := range victims {
		at := 10 + 0.25*float64(i)
		if i == len(victims)-1 {
			at = 10 + 0.25*float64(i-1)
		}
		s.Faults = append(s.Faults, precinct.Fault{At: at, Node: id, Kind: "crash"})
	}
	compareModes(t, s, 3)

	// The dead shard must actually have drained: rerun sharded and
	// check the protocol counters recorded empty shard-windows.
	par := s
	par.Shards = 3
	_, stats, err := precinct.RunWithStats(par)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Windows == 0 {
		t.Fatal("sharded run recorded no windows")
	}
	if stats.EmptyShardWindows == 0 {
		t.Error("killing a whole shard should produce empty shard-windows")
	}
	if len(stats.ShardEvents) != 3 {
		t.Fatalf("ShardEvents = %v, want 3 entries", stats.ShardEvents)
	}
}

// TestParallelRunStats pins the protocol counters RunStats reports for
// sharded runs: windows and barrier drains happen, cross-shard traffic
// flows, per-shard event counts sum to the total, and under the load
// split the recorded per-shard loads cover every peer.
func TestParallelRunStats(t *testing.T) {
	s := edgeScenario()
	s.Shards = 4
	res, stats, err := precinct.RunWithStats(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Requests == 0 {
		t.Fatal("run produced no requests")
	}
	if stats.Windows == 0 || stats.BarrierDrains == 0 {
		t.Errorf("expected windows and barrier drains, got %d / %d", stats.Windows, stats.BarrierDrains)
	}
	if stats.OutboxFlushes == 0 || stats.RemoteDeliveries == 0 {
		t.Errorf("expected cross-shard traffic, got %d flushes / %d deliveries", stats.OutboxFlushes, stats.RemoteDeliveries)
	}
	var sum uint64
	for _, e := range stats.ShardEvents {
		sum += e
	}
	if sum != stats.Events {
		t.Errorf("ShardEvents sum %d != Events %d", sum, stats.Events)
	}
	if len(stats.ShardLoads) != 4 {
		t.Fatalf("ShardLoads = %v, want 4 entries under the load split", stats.ShardLoads)
	}
	var load uint64
	for sh, l := range stats.ShardLoads {
		if l == 0 {
			t.Errorf("shard %d was assigned zero load", sh)
		}
		load += l
	}
	// Every peer contributes its probe weight (at least 1) to some shard.
	if load < uint64(s.Nodes) {
		t.Errorf("total assigned load %d < node count %d", load, s.Nodes)
	}

	// The count split records no loads and must also run identically.
	s.ShardBalance = precinct.ShardBalanceCount
	_, stats, err = precinct.RunWithStats(s)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ShardLoads != nil {
		t.Errorf("count split should record no ShardLoads, got %v", stats.ShardLoads)
	}
}

// TestShardAssignmentBalancesLoad feeds shardAssignment a deliberately
// skewed population (via the real probe on a scenario whose traffic is
// uniform, then checking the equal-load property on the recorded
// loads): under the load split, no shard's probe-measured load may
// exceed twice the lightest shard's — far tighter than the worst case
// an equal-count split can produce under skew, and loose enough to be
// stable across probe refinements.
func TestShardAssignmentBalancesLoad(t *testing.T) {
	for _, shards := range []int{2, 3, 4, 5} {
		s := edgeScenario()
		s.Shards = shards
		_, stats, err := precinct.RunWithStats(s)
		if err != nil {
			t.Fatal(err)
		}
		if len(stats.ShardLoads) != shards {
			t.Fatalf("shards=%d: ShardLoads = %v", shards, stats.ShardLoads)
		}
		min, max := stats.ShardLoads[0], stats.ShardLoads[0]
		for _, l := range stats.ShardLoads[1:] {
			if l < min {
				min = l
			}
			if l > max {
				max = l
			}
		}
		if min == 0 || max > 2*min {
			t.Errorf("shards=%d: probe loads unbalanced: %v", shards, stats.ShardLoads)
		}
	}
}

// TestWithShardsTransform pins the fuzzgen shard axis: the transform
// must clear the knobs the sharded envelope forbids, alternate balance
// modes by seed, and leave the base draws untouched.
func TestWithShardsTransform(t *testing.T) {
	base := fuzzgen.Expand(3)
	base.BeaconInterval = 2
	base.AdaptiveRegions = true
	for _, shards := range fuzzgen.ShardCounts {
		even := fuzzgen.WithShards(base, shards, 2)
		odd := fuzzgen.WithShards(base, shards, 3)
		if even.Shards != shards || odd.Shards != shards {
			t.Fatalf("shards not applied: %d/%d", even.Shards, odd.Shards)
		}
		if even.BeaconInterval != 0 || even.AdaptiveRegions {
			t.Error("WithShards must clear the forbidden knobs")
		}
		if even.ShardBalance != precinct.ShardBalanceLoad {
			t.Errorf("even seed balance = %q", even.ShardBalance)
		}
		if odd.ShardBalance != precinct.ShardBalanceCount {
			t.Errorf("odd seed balance = %q", odd.ShardBalance)
		}
		want := fmt.Sprintf("%s/shards%d-load", base.Name, shards)
		if even.Name != want {
			t.Errorf("name = %q, want %q", even.Name, want)
		}
	}
}
