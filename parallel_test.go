package precinct_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"precinct"
	"precinct/internal/invariant/fuzzgen"
	"precinct/internal/trace"
)

// parallelize normalizes a generated scenario into the sharded-execution
// envelope: sharded runs require perfect location knowledge and static
// regions, so those knobs are cleared before comparing modes.
func parallelize(s precinct.Scenario, shards int) precinct.Scenario {
	s.BeaconInterval = 0
	s.AdaptiveRegions = false
	s.Shards = shards
	return s
}

// tracedEvents executes a scenario and returns the result plus the
// decoded protocol trace.
func tracedEvents(s precinct.Scenario) (precinct.Result, []trace.Event, error) {
	var buf bytes.Buffer
	res, err := precinct.RunTraced(s, &buf)
	if err != nil {
		return res, nil, err
	}
	events, err := trace.DecodeLines(buf.Bytes())
	return res, events, err
}

// compareAgainstSequential runs the base scenario sequentially, then
// every sharded variant, requiring identical Report/Protocol/Radio and
// byte-identical canonical traces from each.
func compareAgainstSequential(t *testing.T, base precinct.Scenario, variants []precinct.Scenario) {
	t.Helper()
	seq, seqEvents, err := tracedEvents(parallelize(base, 0))
	if err != nil {
		t.Fatal(err)
	}
	trace.Canonicalize(seqEvents)
	seqBytes, err := trace.EncodeLines(seqEvents)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range variants {
		par, parEvents, err := tracedEvents(v)
		if err != nil {
			t.Fatalf("%s (shards=%d): %v", v.Name, v.Shards, err)
		}
		if !reflect.DeepEqual(seq.Report, par.Report) {
			t.Errorf("%s (shards=%d): Report diverged:\nsequential: %+v\nparallel:   %+v", v.Name, v.Shards, seq.Report, par.Report)
		}
		if !reflect.DeepEqual(seq.Protocol, par.Protocol) {
			t.Errorf("%s (shards=%d): ProtocolStats diverged:\nsequential: %+v\nparallel:   %+v", v.Name, v.Shards, seq.Protocol, par.Protocol)
		}
		if !reflect.DeepEqual(seq.Radio, par.Radio) {
			t.Errorf("%s (shards=%d): RadioStats diverged:\nsequential: %+v\nparallel:   %+v", v.Name, v.Shards, seq.Radio, par.Radio)
		}
		trace.Canonicalize(parEvents)
		parBytes, err := trace.EncodeLines(parEvents)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(seqBytes, parBytes) {
			t.Errorf("%s (shards=%d): canonical traces differ (%d vs %d events)",
				v.Name, v.Shards, len(seqEvents), len(parEvents))
		}
	}
}

// compareModes runs a scenario sequentially and with the given shard
// counts (preserving the scenario's ShardBalance setting), requiring
// identical Report/Protocol/Radio and byte-identical canonical traces
// from every mode.
func compareModes(t *testing.T, s precinct.Scenario, shardCounts ...int) {
	t.Helper()
	var variants []precinct.Scenario
	for _, shards := range shardCounts {
		if shards > s.Nodes {
			continue
		}
		variants = append(variants, parallelize(s, shards))
	}
	compareAgainstSequential(t, s, variants)
}

// TestParallelEquivalence enforces the sharded-execution determinism
// contract: for fuzz-generated scenarios across every mobility model,
// retrieval scheme, consistency scheme, loss/collision setting, fault
// schedule and churn — including lossy large-N scale scenarios — a run
// sharded over fuzzgen.ShardCounts goroutines (2, 3, 4, 5 and 8,
// including counts that do not divide the node population) reports
// identically to the sequential run, down to byte-identical canonical
// traces. The seed alternates the shard-balance mode, so both the
// load-probe split and the legacy equal-count split are proven.
func TestParallelEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("fuzz/seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			base := fuzzgen.Expand(seed)
			var variants []precinct.Scenario
			for _, shards := range fuzzgen.ShardCounts {
				if shards > base.Nodes {
					continue
				}
				variants = append(variants, fuzzgen.WithShards(base, shards, seed))
			}
			compareAgainstSequential(t, base, variants)
		})
	}
	// The race detector multiplies the cost of the large-N seeds several
	// times over; cap them like -short does (the full sizes run
	// race-free in the regular suite).
	maxNodes := 2000
	if testing.Short() || raceEnabled {
		maxNodes = 500
	}
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("scale/seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			compareModes(t, fuzzgen.ExpandScale(seed, maxNodes), 4)
		})
	}
	// The 10k-node tier (DESIGN.md section 14): seed 8 expands to the
	// acceptance shape — 10000 static nodes, 30% loss,
	// push-adaptive-pull over a full 300 s horizon — and must shard
	// identically like every smaller seed. Under -short or the race
	// detector it rides the capped maxNodes above with the rest of the
	// scale seeds.
	bigNodes := 10000
	if testing.Short() || raceEnabled {
		bigNodes = maxNodes
	}
	t.Run("scale/seed=8-10k", func(t *testing.T) {
		t.Parallel()
		compareModes(t, fuzzgen.ExpandScale(8, bigNodes), 4)
	})
}

// TestParallelUnpooledEquivalence pins the sharded scheduler to the
// NoPooling reference path on a couple of seeds: freelists off on every
// shard must not change anything.
func TestParallelUnpooledEquivalence(t *testing.T) {
	for _, seed := range []int64{3, 8} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			s := fuzzgen.Expand(seed)
			s.NoPooling = true
			compareModes(t, s, 3, 4)
		})
	}
}

// TestParallelScenarioValidation pins the sharded-execution envelope.
func TestParallelScenarioValidation(t *testing.T) {
	base := precinct.DefaultScenario()
	base.Duration = 10
	base.Warmup = 0

	s := base
	s.Shards = 2
	s.BeaconInterval = 1
	if err := s.Validate(); err == nil {
		t.Error("sharded run with beaconing should be rejected")
	}
	s = base
	s.Shards = 2
	s.AdaptiveRegions = true
	if err := s.Validate(); err == nil {
		t.Error("sharded run with adaptive regions should be rejected")
	}
	s = base
	s.Shards = s.Nodes + 1
	if err := s.Validate(); err == nil {
		t.Error("more shards than nodes should be rejected")
	}
	s = base
	s.Shards = -1
	if err := s.Validate(); err == nil {
		t.Error("negative shards should be rejected")
	}
	s = base
	s.Shards = 2
	if err := s.Validate(); err != nil {
		t.Errorf("valid sharded scenario rejected: %v", err)
	}
}

// TestTraceShuffleCanonicalizes records a real run's trace, shuffles it,
// and requires canonicalization to restore the byte-exact encoding of
// the canonicalized sequential ordering — the property the cross-mode
// trace comparison rests on.
func TestTraceShuffleCanonicalizes(t *testing.T) {
	s := fuzzgen.Expand(5)
	_, events, err := tracedEvents(parallelize(s, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) < 100 {
		t.Fatalf("trace too small to be meaningful: %d events", len(events))
	}
	want := append([]trace.Event(nil), events...)
	trace.Canonicalize(want)
	wantBytes, err := trace.EncodeLines(want)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 5; trial++ {
		shuffled := append([]trace.Event(nil), events...)
		rng.Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		trace.Canonicalize(shuffled)
		got, err := trace.EncodeLines(shuffled)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, wantBytes) {
			t.Fatalf("trial %d: shuffled trace does not canonicalize to the sequential ordering", trial)
		}
	}
}
