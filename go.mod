module precinct

go 1.22
