package precinct_test

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"reflect"
	"testing"

	"precinct"
	"precinct/internal/invariant/fuzzgen"
)

// workloadGoldenSeeds are the fuzzgen seeds pinned by the default-path
// equivalence fixture. They span all retrieval schemes, consistency
// schemes, mobility models, loss, churn and fault schedules.
var workloadGoldenSeeds = []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14}

// workloadGoldenEntry records one seed's observable behavior: the
// SHA-256 of the protocol trace stream plus the full report triple.
type workloadGoldenEntry struct {
	Seed     int64
	TraceSHA string
	Report   precinct.Report
	Protocol precinct.ProtocolStats
	Radio    precinct.RadioStats
}

// TestWorkloadDefaultGolden pins the default (stationary Zipf/Poisson)
// workload path to the behavior recorded before the workload subsystem
// refactor: testdata/workload_golden.json was generated from the
// pre-Source code, so a byte-identical trace and DeepEqual reports here
// prove the Source indirection changed nothing on the default path.
// Regenerate (only for an intentional behavior change) with
// PRECINCT_UPDATE_WORKLOAD_GOLDEN=1 go test -run WorkloadDefaultGolden .
func TestWorkloadDefaultGolden(t *testing.T) {
	const path = "testdata/workload_golden.json"

	if os.Getenv("PRECINCT_UPDATE_WORKLOAD_GOLDEN") == "1" {
		entries := make([]workloadGoldenEntry, 0, len(workloadGoldenSeeds))
		for _, seed := range workloadGoldenSeeds {
			s := fuzzgen.Expand(seed)
			res, traceBytes := runTracedBytes(t, s)
			sum := sha256.Sum256(traceBytes)
			entries = append(entries, workloadGoldenEntry{
				Seed:     seed,
				TraceSHA: hex.EncodeToString(sum[:]),
				Report:   res.Report,
				Protocol: res.Protocol,
				Radio:    res.Radio,
			})
		}
		j, err := json.MarshalIndent(entries, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(j, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Log("workload golden fixture regenerated")
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var want []workloadGoldenEntry
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(workloadGoldenSeeds) {
		t.Fatalf("fixture has %d entries, suite pins %d seeds", len(want), len(workloadGoldenSeeds))
	}
	for _, w := range want {
		w := w
		t.Run(fuzzgen.Expand(w.Seed).Name, func(t *testing.T) {
			t.Parallel()
			res, traceBytes := runTracedBytes(t, fuzzgen.Expand(w.Seed))
			sum := sha256.Sum256(traceBytes)
			if got := hex.EncodeToString(sum[:]); got != w.TraceSHA {
				t.Errorf("seed %d: trace stream diverged from the pre-refactor recording (sha %s, want %s)",
					w.Seed, got, w.TraceSHA)
			}
			if !reflect.DeepEqual(res.Report, w.Report) {
				t.Errorf("seed %d: Report diverged:\n got:  %+v\n want: %+v", w.Seed, res.Report, w.Report)
			}
			if !reflect.DeepEqual(res.Protocol, w.Protocol) {
				t.Errorf("seed %d: Protocol diverged:\n got:  %+v\n want: %+v", w.Seed, res.Protocol, w.Protocol)
			}
			if !reflect.DeepEqual(res.Radio, w.Radio) {
				t.Errorf("seed %d: Radio diverged:\n got:  %+v\n want: %+v", w.Seed, res.Radio, w.Radio)
			}
		})
	}
}
