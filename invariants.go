package precinct

import (
	"fmt"
	"os"

	"precinct/internal/invariant"
	"precinct/internal/radio"
)

// InvariantViolation is one detected breach of a protocol invariant.
type InvariantViolation struct {
	// Checker names the invariant family ("cache", "custody", ...).
	Checker string
	// Time is the simulation time of detection in seconds.
	Time float64
	// Detail describes the breach.
	Detail string
}

// String implements fmt.Stringer.
func (v InvariantViolation) String() string {
	return fmt.Sprintf("[%s] t=%.3f: %s", v.Checker, v.Time, v.Detail)
}

// InvariantReport summarizes one checked run.
type InvariantReport struct {
	// Sweeps is how many periodic check passes ran; Events how many
	// scheduler events the runner observed.
	Sweeps uint64
	Events uint64
	// TotalViolations counts every breach; Violations records the first
	// ones (capped, see internal/invariant.Config).
	TotalViolations uint64
	Violations      []InvariantViolation
}

// Ok reports whether the run was violation-free.
func (r InvariantReport) Ok() bool { return r.TotalViolations == 0 }

// String renders a one-line summary.
func (r InvariantReport) String() string {
	return fmt.Sprintf("invariants: %d violation(s) over %d sweeps / %d events",
		r.TotalViolations, r.Sweeps, r.Events)
}

// debugBreakEnv deliberately sabotages a built simulation according to
// the PRECINCT_DEBUG_BREAK environment variable, so the invariant
// checkers can be demonstrated to catch a broken build end to end:
//
//	no-evict — disable cache eviction on every peer (violates the
//	           capacity bound).
//
// Unset or empty means no sabotage. Unknown values are an error.
func debugBreakEnv(b *built) error {
	switch mode := os.Getenv("PRECINCT_DEBUG_BREAK"); mode {
	case "":
		return nil
	case "no-evict":
		for i := 0; i < b.network.Peers(); i++ {
			if c := b.network.Peer(radio.NodeID(i)).Cache(); c != nil {
				c.SetEvictionDisabledForTest(true)
			}
		}
		return nil
	default:
		return fmt.Errorf("precinct: unknown PRECINCT_DEBUG_BREAK mode %q", mode)
	}
}

// RunChecked executes the scenario with the full runtime invariant
// catalog attached (see DESIGN.md section 9). The checkers are pure
// observers: the Result is bit-identical to what Run returns for the
// same scenario. The error reports build failures only; detected
// violations are returned in the InvariantReport.
func RunChecked(s Scenario) (Result, InvariantReport, error) {
	if s.Shards > 1 {
		return Result{}, InvariantReport{}, fmt.Errorf("precinct: invariant checking runs sequentially; set Shards <= 1 (the equivalence suite proves sharded runs report-identical)")
	}
	b, err := s.buildTraced(nil)
	if err != nil {
		return Result{}, InvariantReport{}, err
	}
	if err := debugBreakEnv(b); err != nil {
		return Result{}, InvariantReport{}, err
	}
	runner := invariant.New(invariant.Config{})
	runner.Attach(invariant.Context{
		Net:     b.network,
		Ch:      b.channel,
		Meter:   b.meter,
		Sched:   b.network.Scheduler(),
		Catalog: b.catalog,
	})
	rep := b.network.Run(s.Duration)
	runner.Finalize()

	return Result{
		Scenario: s,
		Report:   fromMetrics(rep),
		Protocol: fromStats(b.network.Stats()),
		Radio:    fromRadio(b.channel.Stats()),
	}, invariantReportOf(runner), nil
}
