//go:build race

package precinct_test

// raceEnabled mirrors the race detector's build tag, letting heavyweight
// suites cap their largest scenarios when instrumentation multiplies
// their cost (the full sizes still run race-free under `make test`).
const raceEnabled = true
