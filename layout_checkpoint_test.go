package precinct_test

// Checkpoint proofs for the struct-of-arrays memory layout (DESIGN.md
// section 14): the SoA containers — peer slab, open-addressed
// flood-dedup tables, pending-request slice, capped streaming metrics
// collector — must round-trip through the version-3 snapshot container
// bit-identically at the 10k-node tier, and the container's new
// validation surface (sorted nonzero seen IDs, streaming-aggregate
// coherence) must fail closed on tampered state.

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"precinct"
	"precinct/internal/checkpoint"
	"precinct/internal/invariant/fuzzgen"
)

// TestLayoutCheckpointRoundTrip is the scale-tier resume proof for the
// SoA layout: a 10000-node, 30% loss, push-adaptive-pull run (the
// acceptance shape) is snapshotted mid-flight, the snapshot is shown to
// re-encode byte-identically (the format is deterministic over the SoA
// state), and the resumed run must match the uninterrupted one down to
// the trace bytes. -short drops to the 2000-node tier.
func TestLayoutCheckpointRoundTrip(t *testing.T) {
	maxNodes := 10000
	if testing.Short() {
		maxNodes = 2000
	}
	sc := fuzzgen.ExpandScale(8, maxNodes)

	var bufFull bytes.Buffer
	full, err := precinct.RunTraced(sc, &bufFull)
	if err != nil {
		t.Fatalf("uninterrupted run: %v", err)
	}

	dir := t.TempDir()
	mid := sc.Warmup + (sc.Duration-sc.Warmup)/2
	var buf1, buf2 bytes.Buffer
	if _, err := precinct.RunCheckpointed(sc, precinct.CheckpointOptions{
		Dir: dir, Label: "layout", Interval: 30, StopAfter: mid, TraceWriter: &buf1,
	}); err != nil {
		t.Fatalf("interrupted run: %v", err)
	}

	// The snapshot must actually carry the SoA state this test is about:
	// capped streaming collector, per-peer seen tables serialized in
	// canonical order — and Encode∘Decode must be the identity on it.
	path := filepath.Join(dir, "layout.ckpt")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("no snapshot after StopAfter: %v", err)
	}
	snap, err := checkpoint.Decode(data)
	if err != nil {
		t.Fatalf("snapshot does not decode: %v", err)
	}
	if snap.Metrics.SampleCap != precinct.DefaultSampleCap {
		t.Errorf("snapshot collector cap = %d, want the streaming default %d",
			snap.Metrics.SampleCap, precinct.DefaultSampleCap)
	}
	if snap.Metrics.SamplesSeen != uint64(len(snap.Metrics.Latencies)) {
		t.Errorf("below the cap the collector must be exact: saw %d, retains %d",
			snap.Metrics.SamplesSeen, len(snap.Metrics.Latencies))
	}
	seenPeers := 0
	for _, p := range snap.Network.Peers {
		if len(p.Seen) > 0 {
			seenPeers++
		}
	}
	if seenPeers == 0 {
		t.Error("no peer snapshot carries seen-table state; the round-trip proves nothing")
	}
	reenc, err := checkpoint.Encode(snap)
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(reenc, data) {
		t.Error("Encode(Decode(snapshot)) differs from the file bytes; the container is not deterministic over SoA state")
	}

	resumed, err := precinct.RunCheckpointed(sc, precinct.CheckpointOptions{
		Dir: dir, Label: "layout", Interval: 30, Resume: true, TraceWriter: &buf2,
	})
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if !reflect.DeepEqual(resumed, full) {
		t.Errorf("resumed result differs from uninterrupted run:\n resumed: %+v\n full:    %+v",
			resumed.Report, full.Report)
	}
	joined := append(append([]byte(nil), buf1.Bytes()...), buf2.Bytes()...)
	if !bytes.Equal(joined, bufFull.Bytes()) {
		t.Errorf("trace streams differ: interrupted %d + resumed %d bytes vs full %d bytes",
			buf1.Len(), buf2.Len(), bufFull.Len())
	}
}

// TestLayoutCheckpointStateValidation is the corruption regression for
// the version-3 container's semantic validation: a structurally sound
// snapshot (framing and CRCs intact) whose decoded state violates the
// new invariants — zero or unsorted seen IDs, a collector cap that does
// not match this build, streaming aggregates that contradict the
// retained samples — must be rejected at restore, never silently
// repaired.
func TestLayoutCheckpointStateValidation(t *testing.T) {
	path, sc := makeSnapshot(t, 9, "layout")
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Preconditions: the fixture must exercise every field the cases
	// tamper with.
	base, err := checkpoint.Decode(pristine)
	if err != nil {
		t.Fatalf("pristine snapshot does not decode: %v", err)
	}
	peerIdx := -1
	for i, p := range base.Network.Peers {
		if len(p.Seen) >= 2 {
			peerIdx = i
			break
		}
	}
	if peerIdx < 0 {
		t.Fatal("no peer with >=2 seen entries; pick a different seed")
	}
	if len(base.Metrics.Latencies) == 0 {
		t.Fatal("snapshot has no latency samples; pick a different seed")
	}

	cases := []struct {
		name    string
		wantMsg string
		mutate  func(s *checkpoint.Snapshot)
	}{
		{
			name:    "zero-seen-id",
			wantMsg: "zero seen ID",
			mutate: func(s *checkpoint.Snapshot) {
				s.Network.Peers[peerIdx].Seen[0].ID = 0
			},
		},
		{
			name:    "unsorted-seen",
			wantMsg: "not sorted",
			mutate: func(s *checkpoint.Snapshot) {
				seen := s.Network.Peers[peerIdx].Seen
				seen[0], seen[1] = seen[1], seen[0]
			},
		},
		{
			name:    "sample-cap-mismatch",
			wantMsg: "retains",
			mutate: func(s *checkpoint.Snapshot) {
				s.Metrics.SampleCap = 0
			},
		},
		{
			name:    "aggregate-undercount",
			wantMsg: "saw",
			mutate: func(s *checkpoint.Snapshot) {
				s.Metrics.SamplesSeen = 0
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Each case re-decodes the pristine bytes so mutations never
			// leak between cases through shared slices.
			snap, err := checkpoint.Decode(pristine)
			if err != nil {
				t.Fatal(err)
			}
			tc.mutate(snap)
			dir := t.TempDir()
			bad := filepath.Join(dir, "run.ckpt")
			if err := checkpoint.WriteFile(bad, snap); err != nil {
				t.Fatalf("tampered snapshot does not re-encode: %v", err)
			}
			_, err = precinct.RunCheckpointed(sc, precinct.CheckpointOptions{
				Dir: dir, Label: "run", Resume: true, StopAfter: sc.Warmup,
			})
			if err == nil {
				t.Fatal("resume from semantically invalid snapshot succeeded")
			}
			if !strings.Contains(err.Error(), tc.wantMsg) {
				t.Errorf("error %q does not mention %q", err, tc.wantMsg)
			}
		})
	}
}
