package precinct

import (
	"fmt"

	"precinct/internal/metrics"
	"precinct/internal/node"
	"precinct/internal/radio"
)

// DefaultSampleCap is the latency-reservoir size of the streaming
// collector (DESIGN.md section 14). Below the cap the collector is
// bit-identical to the unbounded exact one — every scenario the
// equivalence suites replay, and every committed benchmark cell, stays
// under it — and past the cap memory holds constant while the mean, max
// and per-class aggregates remain exact (only the percentiles become
// reservoir estimates).
const DefaultSampleCap = 1 << 20

// newCollector isolates the internal metrics type from the public API.
// The legacy layout keeps the unbounded exact reference collector.
func newCollector(s Scenario) *metrics.Collector {
	if s.LegacyLayout {
		return metrics.NewCollector()
	}
	return metrics.NewCollectorCapped(DefaultSampleCap)
}

// Report is the per-run performance summary, mirroring the metrics the
// paper plots: latency, byte hit ratio, control message overhead, false
// hit ratio and energy per request.
type Report struct {
	Requests  uint64
	Completed uint64
	Failures  uint64
	// ByClass counts completed requests by where they were served:
	// "local", "regional", "en-route", "remote" (plus "failure").
	ByClass map[string]uint64
	// StaleByClass counts false hits by serving class.
	StaleByClass map[string]uint64
	// MeanLatencyByClass is the mean latency per serving class.
	MeanLatencyByClass map[string]float64

	MeanLatency float64 // seconds
	P50Latency  float64
	P95Latency  float64
	MaxLatency  float64

	ByteHitRatio  float64
	FalseHitRatio float64

	ControlMessages     uint64
	SearchMessages      uint64
	MaintenanceMessages uint64
	UpdatesIssued       uint64
	PollsIssued         uint64

	EnergyTotal      float64 // mJ, post-warmup
	EnergyPerRequest float64 // mJ
}

func fromMetrics(r metrics.Report) Report {
	return Report{
		Requests:            r.Requests,
		Completed:           r.Completed,
		Failures:            r.Failures,
		ByClass:             r.ByClass,
		StaleByClass:        r.StaleByClass,
		MeanLatencyByClass:  r.MeanLatencyByClass,
		MeanLatency:         r.MeanLatency,
		P50Latency:          r.P50Latency,
		P95Latency:          r.P95Latency,
		MaxLatency:          r.MaxLatency,
		ByteHitRatio:        r.ByteHitRatio,
		FalseHitRatio:       r.FalseHitRatio,
		ControlMessages:     r.ControlMessages,
		SearchMessages:      r.SearchMessages,
		MaintenanceMessages: r.MaintenanceMessages,
		UpdatesIssued:       r.UpdatesIssued,
		PollsIssued:         r.PollsIssued,
		EnergyTotal:         r.EnergyTotal,
		EnergyPerRequest:    r.EnergyPerRequest,
	}
}

// String renders a compact one-line summary.
func (r Report) String() string {
	return fmt.Sprintf(
		"requests=%d failures=%d latency=%.3fs byteHit=%.3f falseHit=%.4f ctrl=%d energy/req=%.2fmJ",
		r.Requests, r.Failures, r.MeanLatency, r.ByteHitRatio,
		r.FalseHitRatio, r.ControlMessages, r.EnergyPerRequest)
}

// ProtocolStats mirrors the node-layer counters.
type ProtocolStats struct {
	Handoffs        uint64
	LostKeys        uint64
	StrandedKeys    uint64
	HomelessKeys    uint64
	Relocations     uint64
	RoutingFailures uint64
	LostUpdates     uint64
	PollsAnswered   uint64
	UpdatesApplied  uint64
}

func fromStats(s node.Stats) ProtocolStats {
	return ProtocolStats{
		Handoffs:        s.Handoffs,
		LostKeys:        s.LostKeys,
		StrandedKeys:    s.StrandedKeys,
		HomelessKeys:    s.HomelessKeys,
		Relocations:     s.Relocations,
		RoutingFailures: s.RoutingFailures,
		LostUpdates:     s.LostUpdates,
		PollsAnswered:   s.PollsAnswered,
		UpdatesApplied:  s.UpdatesApplied,
	}
}

// RadioStats mirrors the channel counters.
type RadioStats struct {
	BroadcastFrames uint64
	UnicastFrames   uint64
	Deliveries      uint64
	Drops           uint64
	Collisions      uint64
	Undeliverable   uint64
	BytesOnAir      uint64
	Handled         uint64
	DeadDrops       uint64
}

func fromRadio(s radio.Stats) RadioStats {
	return RadioStats{
		BroadcastFrames: s.BroadcastFrames,
		UnicastFrames:   s.UnicastFrames,
		Deliveries:      s.Deliveries,
		Drops:           s.Drops,
		Collisions:      s.Collisions,
		Undeliverable:   s.Undeliverable,
		BytesOnAir:      s.BytesOnAir,
		Handled:         s.Handled,
		DeadDrops:       s.DeadDrops,
	}
}

// Result bundles everything a run produces.
type Result struct {
	Scenario Scenario
	Report   Report
	Protocol ProtocolStats
	Radio    RadioStats
}
