package precinct_test

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"precinct"
	"precinct/internal/invariant/fuzzgen"
)

// runTracedBytes executes a scenario with the protocol tracer attached
// and returns the result plus the raw trace stream.
func runTracedBytes(t *testing.T, s precinct.Scenario) (precinct.Result, []byte) {
	t.Helper()
	var buf bytes.Buffer
	res, err := precinct.RunTraced(s, &buf)
	if err != nil {
		t.Fatal(err)
	}
	return res, buf.Bytes()
}

// TestPoolingEquivalence enforces the memory-model determinism contract
// (DESIGN.md section 12) the same way TestGridLinearEquivalence and
// TestCacheIndexEquivalence do for the radio and cache layers: a run on
// the zero-allocation hot path — pooled messages mutated in place at
// every forwarding hop, recycled scheduler events and radio deliveries,
// epoch-cached GPSR planarization — must be bit-for-bit identical to the
// same run on the allocate-and-clone reference path (Scenario.NoPooling).
// Identical means DeepEqual Report/Protocol/Radio AND a byte-identical
// protocol trace, so not just the aggregate counters but every request
// lifecycle, handoff, update and failure event matches in order. The
// corpus is ≥16 fuzzgen seeds spanning all three consistency schemes,
// message loss, churn, and the large-N scale tier.
func TestPoolingEquivalence(t *testing.T) {
	type tc struct {
		name string
		s    precinct.Scenario
	}
	var cases []tc

	// Regular fuzzgen seeds; half forced lossy so the drop-handler
	// release paths (mid-flight loss, dead receivers) are exercised.
	for seed := int64(1); seed <= 12; seed++ {
		s := fuzzgen.Expand(seed)
		if seed%2 == 1 && s.LossRate == 0 {
			s.LossRate = 0.1
		}
		cases = append(cases, tc{fmt.Sprintf("fuzz-%d", seed), s})
	}

	// Scale-tier seeds: large-N, always lossy. Capped under -short.
	maxNodes := 2000
	scaleSeeds := []int64{1, 2, 3, 4, 5, 6}
	if testing.Short() {
		maxNodes = 500
		scaleSeeds = scaleSeeds[:4]
	}
	for _, seed := range scaleSeeds {
		cases = append(cases, tc{fmt.Sprintf("scale-%d", seed), fuzzgen.ExpandScale(seed, maxNodes)})
	}

	if len(cases) < 16 {
		t.Fatalf("only %d seeds; the contract requires at least 16", len(cases))
	}

	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			s := c.s
			s.NoPooling = false
			pooled, pooledTrace := runTracedBytes(t, s)
			s.NoPooling = true
			ref, refTrace := runTracedBytes(t, s)

			if !bytes.Equal(pooledTrace, refTrace) {
				pl := bytes.Split(pooledTrace, []byte("\n"))
				rl := bytes.Split(refTrace, []byte("\n"))
				n := len(pl)
				if len(rl) < n {
					n = len(rl)
				}
				for i := 0; i < n; i++ {
					if !bytes.Equal(pl[i], rl[i]) {
						t.Fatalf("traces diverged at line %d:\npooled:    %s\nreference: %s",
							i, pl[i], rl[i])
					}
				}
				t.Fatalf("trace lengths diverged: pooled %d lines, reference %d lines",
					len(pl), len(rl))
			}
			if !reflect.DeepEqual(pooled.Report, ref.Report) {
				t.Errorf("Report diverged:\npooled:    %+v\nreference: %+v", pooled.Report, ref.Report)
			}
			if !reflect.DeepEqual(pooled.Protocol, ref.Protocol) {
				t.Errorf("ProtocolStats diverged:\npooled:    %+v\nreference: %+v", pooled.Protocol, ref.Protocol)
			}
			if !reflect.DeepEqual(pooled.Radio, ref.Radio) {
				t.Errorf("RadioStats diverged:\npooled:    %+v\nreference: %+v", pooled.Radio, ref.Radio)
			}
		})
	}
}
