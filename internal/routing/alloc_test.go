package routing

import (
	"testing"

	"precinct/internal/geo"
	"precinct/internal/radio"
)

// TestPlanarReuseAllocFree is the alloc floor for perimeter forwarding at
// a stable planar key: with the per-node cache enabled and the key
// unchanged, repeated NextHop calls that enter perimeter mode must reuse
// the cached Gabriel set and allocate nothing.
func TestPlanarReuseAllocFree(t *testing.T) {
	// A local maximum: every neighbor is farther from dest than self, so
	// greedy fails immediately and the call planarizes.
	self := geo.Pt(0, 0)
	dest := geo.Pt(100, 0)
	nbrs := []radio.Neighbor{
		{ID: 1, Pos: geo.Pt(-10, 5)},
		{ID: 2, Pos: geo.Pt(-10, -5)},
		{ID: 3, Pos: geo.Pt(-5, 10)},
	}

	var r Router
	r.EnablePlanarCache(4)
	r.SetPlanarKey(radio.PlanarKey{})

	forward := func() {
		var st State
		if _, ok := r.NextHop(0, self, nbrs, dest, &st); !ok {
			t.Fatal("expected a perimeter hop")
		}
	}
	forward() // populate the cache entry

	avg := testing.AllocsPerRun(1000, forward)
	if avg != 0 {
		t.Errorf("perimeter NextHop at a stable planar key allocates %.2f objects/op, want 0", avg)
	}

	// Sanity: a key change must invalidate and re-planarize (still without
	// growing allocations, since the entry's slice is reused).
	r.SetPlanarKey(radio.PlanarKey{Epoch: 1})
	avg = testing.AllocsPerRun(100, forward)
	if avg != 0 {
		t.Errorf("re-planarizing into the cached slice allocates %.2f objects/op, want 0", avg)
	}
}
