package routing

import (
	"math/rand"
	"testing"

	"precinct/internal/geo"
	"precinct/internal/radio"
)

func randomTable(n int, seed int64) *Table {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Pt(rng.Float64()*1200, rng.Float64()*1200)
	}
	return &Table{Positions: pts, Range: 250}
}

func BenchmarkNextHopGreedy(b *testing.B) {
	tab := randomTable(80, 1)
	nbrs := tab.NeighborsOf(0)
	dest := geo.Pt(1200, 1200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var st State
		NextHop(0, tab.Positions[0], nbrs, dest, &st)
	}
}

func BenchmarkGabrielPlanarization(b *testing.B) {
	tab := randomTable(80, 2)
	nbrs := tab.NeighborsOf(0)
	self := tab.Positions[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GabrielNeighbors(self, nbrs)
	}
}

func BenchmarkRouteAcrossNetwork(b *testing.B) {
	tab := randomTable(80, 3)
	dest := tab.Positions[79]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Route(0, dest, 1, func(id radio.NodeID) bool { return id == 79 }, 200)
	}
}
