package routing

import (
	"math/rand"
	"testing"

	"precinct/internal/geo"
	"precinct/internal/radio"
)

func linePositions(n int, spacing float64) []geo.Point {
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Pt(float64(i)*spacing, 0)
	}
	return pts
}

func gridPositions(rows, cols int, spacing float64) []geo.Point {
	pts := make([]geo.Point, 0, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			pts = append(pts, geo.Pt(float64(c)*spacing, float64(r)*spacing))
		}
	}
	return pts
}

func TestModeString(t *testing.T) {
	if Greedy.String() != "greedy" || Perimeter.String() != "perimeter" {
		t.Error("mode strings wrong")
	}
	if Mode(9).String() != "mode(9)" {
		t.Error("unknown mode string wrong")
	}
}

func TestGreedyHopPicksClosest(t *testing.T) {
	self := geo.Pt(0, 0)
	dest := geo.Pt(100, 0)
	nbrs := []radio.Neighbor{
		{ID: 1, Pos: geo.Pt(10, 0)},
		{ID: 2, Pos: geo.Pt(20, 5)},
		{ID: 3, Pos: geo.Pt(-10, 0)},
	}
	hop, ok := greedyHop(self, nbrs, dest)
	if !ok || hop.ID != 2 {
		t.Fatalf("greedyHop = %v, %v; want node 2", hop, ok)
	}
}

func TestGreedyHopRequiresProgress(t *testing.T) {
	self := geo.Pt(50, 0)
	dest := geo.Pt(100, 0)
	// All neighbors farther from dest than self.
	nbrs := []radio.Neighbor{
		{ID: 1, Pos: geo.Pt(0, 0)},
		{ID: 2, Pos: geo.Pt(50, 80)},
	}
	if _, ok := greedyHop(self, nbrs, dest); ok {
		t.Fatal("greedyHop made negative progress")
	}
}

func TestGabrielKeepsLineEdges(t *testing.T) {
	// Three collinear nodes: edge to the far one is removed (middle node
	// lies inside its diameter circle), edge to the near one kept.
	self := geo.Pt(0, 0)
	nbrs := []radio.Neighbor{
		{ID: 1, Pos: geo.Pt(10, 0)},
		{ID: 2, Pos: geo.Pt(20, 0)},
	}
	planar := GabrielNeighbors(self, nbrs)
	if len(planar) != 1 || planar[0].ID != 1 {
		t.Fatalf("Gabriel = %v, want only node 1", planar)
	}
}

func TestGabrielKeepsTriangle(t *testing.T) {
	// Equilateral-ish triangle: all edges survive (no vertex inside
	// another edge's diameter circle).
	self := geo.Pt(0, 0)
	nbrs := []radio.Neighbor{
		{ID: 1, Pos: geo.Pt(10, 0)},
		{ID: 2, Pos: geo.Pt(5, 9)},
	}
	planar := GabrielNeighbors(self, nbrs)
	if len(planar) != 2 {
		t.Fatalf("Gabriel = %v, want both edges", planar)
	}
}

func TestGabrielEmptyInput(t *testing.T) {
	if got := GabrielNeighbors(geo.Pt(0, 0), nil); len(got) != 0 {
		t.Fatalf("Gabriel of empty set = %v", got)
	}
}

// gabrielStaysConnected checks that planarizing a connected unit-disk
// graph never disconnects it.
func TestGabrielPreservesConnectivity(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const trials = 30
	for trial := 0; trial < trials; trial++ {
		n := 20 + rng.Intn(40)
		pts := make([]geo.Point, n)
		for i := range pts {
			pts[i] = geo.Pt(rng.Float64()*800, rng.Float64()*800)
		}
		tab := &Table{Positions: pts, Range: 250}

		udgReach := reachable(tab, func(id radio.NodeID) []radio.Neighbor { return tab.NeighborsOf(id) })
		ggReach := reachable(tab, func(id radio.NodeID) []radio.Neighbor {
			return GabrielNeighbors(tab.Positions[id], tab.NeighborsOf(id))
		})
		for i := range udgReach {
			if udgReach[i] != ggReach[i] {
				t.Fatalf("trial %d: Gabriel planarization changed connectivity of node %d", trial, i)
			}
		}
	}
}

func reachable(t *Table, nbrs func(radio.NodeID) []radio.Neighbor) []bool {
	seen := make([]bool, len(t.Positions))
	seen[0] = true
	queue := []radio.NodeID{0}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range nbrs(cur) {
			if !seen[nb.ID] {
				seen[nb.ID] = true
				queue = append(queue, nb.ID)
			}
		}
	}
	return seen
}

func TestRouteAlongLine(t *testing.T) {
	tab := &Table{Positions: linePositions(10, 200), Range: 250}
	dest := tab.Positions[9]
	path, ok := tab.Route(0, dest, 1, nil, 50)
	if !ok {
		t.Fatalf("line route failed; path %v", path)
	}
	if got := path[len(path)-1]; got != 9 {
		t.Fatalf("route ended at %d, want 9", got)
	}
	if len(path) != 10 {
		t.Fatalf("path length %d, want 10 (pure greedy chain)", len(path))
	}
}

func TestRouteOnGrid(t *testing.T) {
	tab := &Table{Positions: gridPositions(6, 6, 200), Range: 250}
	dest := tab.Positions[35] // opposite corner
	path, ok := tab.Route(0, dest, 1, nil, 100)
	if !ok {
		t.Fatalf("grid route failed; path %v", path)
	}
	if path[len(path)-1] != 35 {
		t.Fatalf("route ended at %d, want 35", path[len(path)-1])
	}
	// Manhattan-ish path: at most rows+cols hops in a grid where only
	// axis neighbors are in range.
	if len(path) > 12 {
		t.Errorf("path unexpectedly long: %d hops", len(path))
	}
}

func TestRouteAroundVoid(t *testing.T) {
	// A "U" topology: the straight line toward the destination is
	// blocked by a gap, forcing perimeter mode.
	//
	//   0 --- 1       5 --- 6(dest)
	//         |       |
	//         2 - 3 - 4
	pts := []geo.Point{
		geo.Pt(0, 400),   // 0
		geo.Pt(200, 400), // 1
		geo.Pt(200, 200), // 2
		geo.Pt(400, 200), // 3
		geo.Pt(600, 200), // 4
		geo.Pt(600, 400), // 5
		geo.Pt(800, 400), // 6
	}
	tab := &Table{Positions: pts, Range: 250}
	path, ok := tab.Route(0, pts[6], 1, nil, 50)
	if !ok {
		t.Fatalf("void route failed; path %v", path)
	}
	if path[len(path)-1] != 6 {
		t.Fatalf("route ended at %d, want 6", path[len(path)-1])
	}
	// It must have descended through the U (node 3 on the path).
	found := false
	for _, id := range path {
		if id == 3 {
			found = true
		}
	}
	if !found {
		t.Errorf("path %v did not traverse the void bottom", path)
	}
}

func TestRouteUnreachable(t *testing.T) {
	// Two disconnected clusters; destination in the far one.
	pts := []geo.Point{
		geo.Pt(0, 0), geo.Pt(200, 0), geo.Pt(400, 0),
		geo.Pt(5000, 0), geo.Pt(5200, 0),
	}
	tab := &Table{Positions: pts, Range: 250}
	path, ok := tab.Route(0, pts[4], 1, nil, 200)
	if ok {
		t.Fatalf("route to disconnected cluster claimed success: %v", path)
	}
	// Must terminate well before maxHops (perimeter loop detection).
	if len(path) >= 200 {
		t.Errorf("unreachable route did not self-terminate: %d hops", len(path))
	}
}

func TestRouteIsolatedSource(t *testing.T) {
	pts := []geo.Point{geo.Pt(0, 0), geo.Pt(5000, 0)}
	tab := &Table{Positions: pts, Range: 250}
	if _, ok := tab.Route(0, pts[1], 1, nil, 10); ok {
		t.Fatal("isolated source routed successfully")
	}
}

func TestRouteDeliversByPredicate(t *testing.T) {
	tab := &Table{Positions: linePositions(5, 200), Range: 250}
	// Deliver when reaching any node with ID >= 3 even though the
	// geographic destination is farther.
	path, ok := tab.Route(0, geo.Pt(10000, 0), 1, func(id radio.NodeID) bool { return id >= 3 }, 50)
	if !ok {
		t.Fatalf("predicate delivery failed: %v", path)
	}
	if last := path[len(path)-1]; last != 3 {
		t.Fatalf("stopped at %d, want 3", last)
	}
}

func TestRouteZeroHopsWhenAtDest(t *testing.T) {
	tab := &Table{Positions: linePositions(3, 200), Range: 250}
	path, ok := tab.Route(1, tab.Positions[1], 1, nil, 10)
	if !ok || len(path) != 1 {
		t.Fatalf("self-delivery: path %v ok %v", path, ok)
	}
}

// The headline property: on random *connected* unit-disk topologies GPSR
// always delivers, regardless of voids.
func TestRouteDeliveryOnRandomConnectedTopologies(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const trials = 60
	delivered, attempted := 0, 0
	for trial := 0; trial < trials; trial++ {
		n := 15 + rng.Intn(50)
		pts := make([]geo.Point, n)
		for i := range pts {
			pts[i] = geo.Pt(rng.Float64()*1000, rng.Float64()*1000)
		}
		tab := &Table{Positions: pts, Range: 250}
		// Only test within the connected component of node 0.
		comp := reachable(tab, func(id radio.NodeID) []radio.Neighbor { return tab.NeighborsOf(id) })
		for target := 1; target < n; target++ {
			if !comp[target] {
				continue
			}
			attempted++
			tgt := radio.NodeID(target)
			path, ok := tab.Route(0, pts[target], 0.5, func(id radio.NodeID) bool { return id == tgt }, 4*n)
			if ok {
				delivered++
			} else {
				t.Logf("trial %d: failed 0->%d (n=%d), path %v", trial, target, n, path)
			}
		}
	}
	if attempted == 0 {
		t.Fatal("no connected pairs generated")
	}
	rate := float64(delivered) / float64(attempted)
	if rate < 0.995 {
		t.Errorf("delivery rate %.4f (%d/%d), want >= 0.995", rate, delivered, attempted)
	}
}

func TestNextHopStateTransitions(t *testing.T) {
	// Entering a void flips the packet to perimeter mode; reaching a
	// node closer than the entry point flips it back.
	pts := []geo.Point{
		geo.Pt(0, 400),
		geo.Pt(200, 400),
		geo.Pt(200, 200),
		geo.Pt(400, 200),
		geo.Pt(600, 200),
		geo.Pt(600, 400),
		geo.Pt(800, 400),
	}
	tab := &Table{Positions: pts, Range: 250}
	var st State
	cur := radio.NodeID(0)
	dest := pts[6]
	sawPerimeter := false
	for hop := 0; hop < 20 && cur != 6; hop++ {
		next, ok := NextHop(cur, pts[cur], tab.NeighborsOf(cur), dest, &st)
		if !ok {
			t.Fatalf("stuck at node %d", cur)
		}
		if st.Mode == Perimeter {
			sawPerimeter = true
		}
		cur = next.ID
	}
	if cur != 6 {
		t.Fatalf("never reached destination, stuck at %d", cur)
	}
	if !sawPerimeter {
		t.Error("route around void never entered perimeter mode")
	}
	if st.Mode != Greedy {
		t.Error("packet should finish in greedy mode after escaping the void")
	}
}

func TestNextHopNoNeighbors(t *testing.T) {
	var st State
	if _, ok := NextHop(0, geo.Pt(0, 0), nil, geo.Pt(100, 100), &st); ok {
		t.Fatal("NextHop with no neighbors returned ok")
	}
}
