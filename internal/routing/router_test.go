package routing

import (
	"reflect"
	"testing"

	"precinct/internal/geo"
	"precinct/internal/radio"
)

func TestAppendGabrielNeighborsMatchesGabrielNeighbors(t *testing.T) {
	tab := randomTable(60, 9)
	scratch := make([]radio.Neighbor, 0, 64)
	for id := radio.NodeID(0); id < 60; id++ {
		nbrs := tab.NeighborsOf(id)
		self := tab.Positions[id]
		want := GabrielNeighbors(self, nbrs)
		scratch = AppendGabrielNeighbors(scratch[:0], self, nbrs)
		if len(want) == 0 && len(scratch) == 0 {
			continue
		}
		if !reflect.DeepEqual(want, scratch) {
			t.Fatalf("node %d: append form %v != allocating form %v", id, scratch, want)
		}
	}
}

func TestRouterMatchesPackageNextHop(t *testing.T) {
	tab := randomTable(60, 11)
	dest := geo.Pt(1150, 1150)
	var r Router
	for id := radio.NodeID(0); id < 60; id++ {
		nbrs := tab.NeighborsOf(id)
		// Start from perimeter mode to force the planarization path.
		stFree := State{Mode: Perimeter, EntryPos: tab.Positions[id], FaceEntry: tab.Positions[id]}
		stRouter := stFree
		hopFree, okFree := NextHop(id, tab.Positions[id], nbrs, dest, &stFree)
		hopRouter, okRouter := r.NextHop(id, tab.Positions[id], nbrs, dest, &stRouter)
		if okFree != okRouter || hopFree != hopRouter {
			t.Fatalf("node %d: Router hop (%v, %v) != package hop (%v, %v)",
				id, hopRouter, okRouter, hopFree, okFree)
		}
		if stFree != stRouter {
			t.Fatalf("node %d: Router state %+v != package state %+v", id, stRouter, stFree)
		}
	}
}

// TestRouterNextHopDoesNotAllocate pins the zero-alloc guarantee the node
// layer relies on: after warmup, forwarding decisions must not allocate.
func TestRouterNextHopDoesNotAllocate(t *testing.T) {
	tab := randomTable(80, 5)
	dest := geo.Pt(10, 10)
	var r Router
	nbrs := tab.NeighborsOf(3)
	self := tab.Positions[3]
	allocs := testing.AllocsPerRun(200, func() {
		// Perimeter mode exercises the planarization scratch.
		st := State{Mode: Perimeter, EntryPos: self, FaceEntry: self}
		r.NextHop(3, self, nbrs, dest, &st)
	})
	if allocs != 0 {
		t.Errorf("Router.NextHop allocates %.1f times per call, want 0", allocs)
	}
}

func BenchmarkRouterNextHopPerimeter(b *testing.B) {
	tab := randomTable(80, 4)
	dest := geo.Pt(10, 10)
	var r Router
	nbrs := tab.NeighborsOf(3)
	self := tab.Positions[3]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := State{Mode: Perimeter, EntryPos: self, FaceEntry: self}
		r.NextHop(3, self, nbrs, dest, &st)
	}
}
