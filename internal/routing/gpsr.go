// Package routing implements GPSR (Greedy Perimeter Stateless Routing,
// Karp & Kung, MobiCom 2000), the geographic routing protocol the paper
// runs underneath PReCinCt. Forwarding is stateless at nodes: all routing
// state travels inside the packet (the State struct), and each hop decides
// using only its own position, its neighbors' positions, and the
// destination location.
//
// Two modes:
//
//   - Greedy: forward to the neighbor geographically closest to the
//     destination, provided it is strictly closer than the current node.
//   - Perimeter: when greedy fails (a local maximum / void), forward along
//     the faces of the Gabriel-graph planarization of the connectivity
//     graph using the right-hand rule, switching faces where they cross
//     the line from the point the packet entered perimeter mode to the
//     destination. Greedy resumes as soon as a node closer to the
//     destination than that entry point is reached.
//
// PReCinCt's modification — routing to regions rather than points — lives
// in the node layer: the "destination" handed to this package is the
// region's center, and delivery happens at the first node found inside the
// region.
package routing

import (
	"fmt"
	"math"

	"precinct/internal/geo"
	"precinct/internal/radio"
)

// Mode is the GPSR forwarding mode carried in the packet.
type Mode int

// Forwarding modes.
const (
	Greedy Mode = iota
	Perimeter
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Greedy:
		return "greedy"
	case Perimeter:
		return "perimeter"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// State is the per-packet routing state GPSR carries in the header.
// The zero value is a fresh greedy-mode packet.
type State struct {
	Mode Mode
	// EntryPos (Lp in the paper) is the location where the packet
	// entered perimeter mode; greedy resumes at any node closer to the
	// destination than this point.
	EntryPos geo.Point
	// FaceEntry (Lf) is the point where the packet entered the face it
	// is currently traversing; face changes require crossings closer to
	// the destination than this.
	FaceEntry geo.Point
	// FirstEdgeFrom/To (e0) record the first directed edge of the
	// current perimeter walk; traversing it a second time proves the
	// destination unreachable.
	FirstEdgeFrom radio.NodeID
	FirstEdgeTo   radio.NodeID
	HasFirstEdge  bool
	// PrevHop is the node the packet arrived from, used as the
	// right-hand rule reference direction.
	PrevHop    radio.NodeID
	HasPrev    bool
	PrevHopPos geo.Point
}

// GabrielNeighbors filters the neighbor set down to the edges of the
// Gabriel graph: the edge self–n survives iff no other neighbor lies
// strictly inside the circle whose diameter is that edge. The Gabriel
// graph is planar and connected whenever the unit-disk graph is, which is
// what perimeter traversal requires.
func GabrielNeighbors(self geo.Point, nbrs []radio.Neighbor) []radio.Neighbor {
	return AppendGabrielNeighbors(make([]radio.Neighbor, 0, len(nbrs)), self, nbrs)
}

// AppendGabrielNeighbors appends the Gabriel-graph edges of nbrs to dst
// and returns the extended slice. Passing a reused scratch slice (as
// Router does) makes planarization allocation-free in steady state.
func AppendGabrielNeighbors(dst []radio.Neighbor, self geo.Point, nbrs []radio.Neighbor) []radio.Neighbor {
	// The neighbor nearest to self is the most effective witness: a long
	// edge's diameter circle almost always contains it, so testing it
	// first turns the common "edge eliminated" case into O(1) instead of
	// O(k). Which witness refutes an edge cannot affect the output —
	// keep/eliminate is a property of the whole set — so the result is
	// identical to the plain scan.
	nearest := -1
	var nearestD2 float64
	for i := range nbrs {
		if d2 := self.Dist2(nbrs[i].Pos); nearest < 0 || d2 < nearestD2 {
			nearest, nearestD2 = i, d2
		}
	}
	for _, n := range nbrs {
		mid := self.Midpoint(n.Pos)
		r2 := self.Dist2(n.Pos) / 4
		keep := true
		if w := nbrs[nearest]; w.ID != n.ID && w.Pos.Dist2(mid) < r2-1e-12 {
			keep = false
		} else {
			for _, w := range nbrs {
				if w.ID == n.ID {
					continue
				}
				if w.Pos.Dist2(mid) < r2-1e-12 {
					keep = false
					break
				}
			}
		}
		if keep {
			dst = append(dst, n)
		}
	}
	return dst
}

// greedyHop returns the neighbor strictly closest to dest, when one is
// strictly closer than self.
func greedyHop(self geo.Point, nbrs []radio.Neighbor, dest geo.Point) (radio.Neighbor, bool) {
	best := radio.Neighbor{}
	bestD := self.Dist2(dest)
	found := false
	for _, n := range nbrs {
		if d := n.Pos.Dist2(dest); d < bestD {
			best, bestD, found = n, d, true
		}
	}
	return best, found
}

// rightHand returns the first planar neighbor counterclockwise about self
// from the reference direction refAngle. The previous hop (when known) is
// always the last resort — choosing it means walking back out of a dead
// end, which is correct face traversal.
func rightHand(self geo.Point, planar []radio.Neighbor, refAngle float64, prev radio.NodeID, hasPrev bool) (radio.Neighbor, bool) {
	const eps = 1e-12
	best := radio.Neighbor{}
	bestSweep := math.Inf(1)
	found := false
	for _, n := range planar {
		sweep := geo.CCWAngleFrom(refAngle, self.Angle(n.Pos))
		if sweep < eps {
			sweep += 2 * math.Pi // exactly on the reference ray: last
		}
		if hasPrev && n.ID == prev {
			// Returning along the incoming edge only when nothing
			// else is available.
			sweep += 2 * math.Pi
		}
		if sweep < bestSweep {
			best, bestSweep, found = n, sweep, true
		}
	}
	return best, found
}

// Router carries reusable scratch for NextHop so steady-state forwarding
// is allocation-free. The zero value is ready to use. A Router serves one
// simulation run; it is not safe for concurrent use.
//
// With EnablePlanarCache, the Router additionally memoizes each node's
// Gabriel planarization keyed on the channel's PlanarKey (position epoch
// + topology generation): perimeter forwards through the same node at
// the same key reuse the planar set instead of re-filtering. Because the
// key pins both positions and liveness, the cached set is provably what
// a re-filter would compute — the NoPooling equivalence suite holds the
// cache to that contract.
type Router struct {
	planar []radio.Neighbor

	cache []planarEntry   // per-node planar cache; nil unless enabled
	key   radio.PlanarKey // current validity key (SetPlanarKey)
}

// planarEntry is one node's cached planarization.
type planarEntry struct {
	key   radio.PlanarKey
	valid bool
	set   []radio.Neighbor
}

// EnablePlanarCache switches on per-node planar-set caching for a
// network of n nodes. Call SetPlanarKey with the channel's current
// PlanarKey before each NextHop batch; stale entries refresh lazily.
func (r *Router) EnablePlanarCache(n int) {
	r.cache = make([]planarEntry, n)
}

// SetPlanarKey updates the validity key cached planarizations are
// checked against. Cheap; call before every NextHop.
func (r *Router) SetPlanarKey(k radio.PlanarKey) { r.key = k }

// NextHop computes the GPSR forwarding decision at the node selfID located
// at self, holding the given neighbor table, for a packet addressed to
// dest carrying routing state st. It mutates st in place (the updated
// state must travel with the packet) and returns the chosen next hop.
//
// ok == false means the packet cannot be forwarded: either the node has no
// neighbors, or the perimeter walk returned to its first edge, proving
// dest unreachable in the current topology.
func NextHop(selfID radio.NodeID, self geo.Point, nbrs []radio.Neighbor, dest geo.Point, st *State) (radio.Neighbor, bool) {
	var r Router
	return r.NextHop(selfID, self, nbrs, dest, st)
}

// NextHop is the scratch-reusing form of the package-level NextHop; see
// its documentation for the routing semantics.
func (r *Router) NextHop(selfID radio.NodeID, self geo.Point, nbrs []radio.Neighbor, dest geo.Point, st *State) (radio.Neighbor, bool) {
	if len(nbrs) == 0 {
		return radio.Neighbor{}, false
	}

	// Resume greedy as soon as we are closer to the destination than
	// where we entered perimeter mode.
	if st.Mode == Perimeter && self.Dist2(dest) < st.EntryPos.Dist2(dest) {
		st.Mode = Greedy
		st.HasFirstEdge = false
	}

	if st.Mode == Greedy {
		if hop, ok := greedyHop(self, nbrs, dest); ok {
			st.HasPrev = true
			st.PrevHop = selfID
			st.PrevHopPos = self
			return hop, true
		}
		// Local maximum: enter perimeter mode.
		st.Mode = Perimeter
		st.EntryPos = self
		st.FaceEntry = self
		st.HasFirstEdge = false
		st.HasPrev = false
	}

	var planar []radio.Neighbor
	if r.cache != nil && int(selfID) < len(r.cache) {
		e := &r.cache[selfID]
		if !e.valid || e.key != r.key {
			e.set = AppendGabrielNeighbors(e.set[:0], self, nbrs)
			e.key = r.key
			e.valid = true
		}
		planar = e.set
	} else {
		r.planar = AppendGabrielNeighbors(r.planar[:0], self, nbrs)
		planar = r.planar
	}
	if len(planar) == 0 {
		return radio.Neighbor{}, false
	}

	// Reference direction: the incoming edge when there is one, the
	// line toward the destination when entering perimeter mode here.
	var ref float64
	if st.HasPrev {
		ref = self.Angle(st.PrevHopPos)
	} else {
		ref = self.Angle(dest)
	}

	hop, ok := rightHand(self, planar, ref, st.PrevHop, st.HasPrev)
	if !ok {
		return radio.Neighbor{}, false
	}

	// Face changes: if the chosen edge crosses the Lp→dest line at a
	// point closer to dest than the current face entry, hop onto the
	// new face instead of crossing the line.
	for i := 0; i < len(planar)+1; i++ {
		x, crosses := geo.SegmentIntersection(self, hop.Pos, st.EntryPos, dest)
		if !crosses || x.Dist2(dest) >= st.FaceEntry.Dist2(dest)-1e-12 {
			break
		}
		st.FaceEntry = x
		st.HasFirstEdge = false // new face, new walk
		next, ok2 := rightHand(self, planar, self.Angle(hop.Pos), hop.ID, true)
		if !ok2 {
			break
		}
		if next.ID == hop.ID {
			break // single usable edge; take it regardless
		}
		hop = next
	}

	// Unreachability: completing a full tour of the face.
	if st.HasFirstEdge && st.FirstEdgeFrom == selfID && st.FirstEdgeTo == hop.ID {
		return radio.Neighbor{}, false
	}
	if !st.HasFirstEdge {
		st.HasFirstEdge = true
		st.FirstEdgeFrom = selfID
		st.FirstEdgeTo = hop.ID
	}

	st.HasPrev = true
	st.PrevHop = selfID
	st.PrevHopPos = self
	return hop, true
}

// Table is a convenience for static analyses and tests: it walks a packet
// hop by hop over a frozen topology snapshot.
type Table struct {
	// Positions of all nodes at the snapshot instant.
	Positions []geo.Point
	// Range is the radio range defining connectivity.
	Range float64
}

// NeighborsOf returns the unit-disk neighbor set of node id in the frozen
// snapshot.
func (t *Table) NeighborsOf(id radio.NodeID) []radio.Neighbor {
	var out []radio.Neighbor
	self := t.Positions[id]
	r2 := t.Range * t.Range
	for i, p := range t.Positions {
		if radio.NodeID(i) == id {
			continue
		}
		if self.Dist2(p) <= r2 {
			out = append(out, radio.Neighbor{ID: radio.NodeID(i), Pos: p})
		}
	}
	return out
}

// Route walks a packet from src toward the point dest, stopping when the
// current node is within `deliver` meters of dest or when arrived()
// returns true for the current node. It returns the sequence of nodes
// visited (starting with src) and whether delivery succeeded. maxHops
// bounds the walk.
func (t *Table) Route(src radio.NodeID, dest geo.Point, deliver float64, arrived func(radio.NodeID) bool, maxHops int) ([]radio.NodeID, bool) {
	var st State
	path := []radio.NodeID{src}
	cur := src
	for hop := 0; hop < maxHops; hop++ {
		pos := t.Positions[cur]
		if pos.Dist(dest) <= deliver || (arrived != nil && arrived(cur)) {
			return path, true
		}
		next, ok := NextHop(cur, pos, t.NeighborsOf(cur), dest, &st)
		if !ok {
			return path, false
		}
		cur = next.ID
		path = append(path, cur)
	}
	return path, false
}
