package pool

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestRunZeroJobs(t *testing.T) {
	called := atomic.Int32{}
	if err := Run(0, 4, func(i int) error { called.Add(1); return nil }); err != nil {
		t.Fatalf("Run(0, ...) = %v, want nil", err)
	}
	if err := Run(-3, 4, func(i int) error { called.Add(1); return nil }); err != nil {
		t.Fatalf("Run(-3, ...) = %v, want nil", err)
	}
	if called.Load() != 0 {
		t.Fatalf("job invoked %d times for empty input", called.Load())
	}
}

func TestRunAllJobsOnce(t *testing.T) {
	const n = 37
	var hits [n]atomic.Int32
	if err := Run(n, 5, func(i int) error { hits[i].Add(1); return nil }); err != nil {
		t.Fatalf("Run = %v", err)
	}
	for i := range hits {
		if got := hits[i].Load(); got != 1 {
			t.Fatalf("job %d ran %d times, want 1", i, got)
		}
	}
}

func TestRunMoreWorkersThanJobs(t *testing.T) {
	// With workers > n, the pool must cap concurrency at n and still
	// run every job exactly once.
	const n = 3
	var mu sync.Mutex
	var running, peak int
	var hits [n]int
	err := Run(n, 64, func(i int) error {
		mu.Lock()
		running++
		if running > peak {
			peak = running
		}
		hits[i]++
		mu.Unlock()
		runtime.Gosched()
		mu.Lock()
		running--
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatalf("Run = %v", err)
	}
	if peak > n {
		t.Fatalf("observed %d concurrent jobs, want <= %d", peak, n)
	}
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("job %d ran %d times, want 1", i, h)
		}
	}
}

func TestRunDefaultWorkers(t *testing.T) {
	var hits atomic.Int32
	if err := Run(11, 0, func(i int) error { hits.Add(1); return nil }); err != nil {
		t.Fatalf("Run = %v", err)
	}
	if hits.Load() != 11 {
		t.Fatalf("ran %d jobs, want 11", hits.Load())
	}
}

func TestRunFirstErrorAborts(t *testing.T) {
	// One worker makes scheduling deterministic: job 2 fails, jobs 3+
	// must be skipped, and the error must identify job 2.
	var ran []int
	boom := errors.New("boom")
	err := Run(8, 1, func(i int) error {
		ran = append(ran, i)
		if i == 2 {
			return fmt.Errorf("job %d: %w", i, boom)
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Run = %v, want wrapped %v", err, boom)
	}
	want := []int{0, 1, 2}
	if len(ran) != len(want) {
		t.Fatalf("jobs run after abort: %v, want %v", ran, want)
	}
	for i := range want {
		if ran[i] != want[i] {
			t.Fatalf("jobs run after abort: %v, want %v", ran, want)
		}
	}
}

func TestRunJoinsAllErrors(t *testing.T) {
	// Multiple workers may each fail before observing the abort flag;
	// every error that occurred must survive into the joined result.
	errA := errors.New("a")
	errB := errors.New("b")
	var gate sync.WaitGroup
	gate.Add(2)
	err := Run(2, 2, func(i int) error {
		// Both jobs pass this barrier before either can fail, so
		// neither observes the other's abort.
		gate.Done()
		gate.Wait()
		if i == 0 {
			return errA
		}
		return errB
	})
	if !errors.Is(err, errA) || !errors.Is(err, errB) {
		t.Fatalf("Run = %v, want both %v and %v joined", err, errA, errB)
	}
}

func TestRunPanicPropagates(t *testing.T) {
	var ran atomic.Int32
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("Run swallowed the job panic")
		}
		msg := fmt.Sprint(r)
		if !strings.Contains(msg, "job 1 panicked") || !strings.Contains(msg, "kaboom") {
			t.Fatalf("panic message %q does not identify job and cause", msg)
		}
	}()
	_ = Run(6, 1, func(i int) error {
		ran.Add(1)
		if i == 1 {
			panic("kaboom")
		}
		return nil
	})
}

func TestRunPanicAborts(t *testing.T) {
	// A panic acts like an error for scheduling: queued jobs are
	// skipped and the workers drain instead of deadlocking.
	var ran []int
	func() {
		defer func() { _ = recover() }()
		_ = Run(8, 1, func(i int) error {
			ran = append(ran, i)
			if i == 0 {
				panic("early")
			}
			return nil
		})
	}()
	if len(ran) != 1 || ran[0] != 0 {
		t.Fatalf("jobs run after panic: %v, want [0]", ran)
	}
}
