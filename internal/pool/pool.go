// Package pool provides the bounded worker pool shared by the sweep
// driver and the sharded scheduler: N independent jobs executed on at
// most W goroutines, with first-error abort and panic propagation.
package pool

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// A capturedPanic wraps a job panic so it can be re-raised on the
// caller's goroutine with the origin attached.
type capturedPanic struct {
	job   int
	value any
	stack []byte
}

// Run executes job(0..n-1) on a worker pool. workers <= 0 uses
// GOMAXPROCS; the pool never spawns more workers than jobs. The first
// error aborts the pool: already-running jobs finish, queued jobs are
// skipped, and the returned error joins every job error that occurred.
//
// A panicking job does not deadlock the pool: the panic is captured,
// the remaining queue drains, and the first panic is re-raised on the
// calling goroutine once every worker has stopped.
func Run(n, workers int, job func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	errs := make([]error, n)

	// Buffering the queue lets it be filled and closed up front, so
	// workers observing the abort flag can drain the remainder without a
	// producer goroutine blocking on sends.
	jobs := make(chan int, n)
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)

	var aborted atomic.Bool
	var panicked atomic.Pointer[capturedPanic]
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if aborted.Load() {
					continue
				}
				if err := runOne(i, job, &panicked); err != nil {
					errs[i] = err
					aborted.Store(true)
				}
			}
		}()
	}
	wg.Wait()

	if cp := panicked.Load(); cp != nil {
		panic(fmt.Sprintf("pool: job %d panicked: %v\n%s", cp.job, cp.value, cp.stack))
	}
	return errors.Join(errs...)
}

// runOne isolates one job invocation so a panic unwinds only the job,
// not the worker loop. The first panic is recorded and doubles as an
// abort signal.
func runOne(i int, job func(i int) error, panicked *atomic.Pointer[capturedPanic]) (err error) {
	defer func() {
		if r := recover(); r != nil {
			buf := make([]byte, 16<<10)
			buf = buf[:runtime.Stack(buf, false)]
			cp := &capturedPanic{job: i, value: r, stack: buf}
			panicked.CompareAndSwap(nil, cp)
			err = fmt.Errorf("pool: job %d panicked: %v", i, r)
		}
	}()
	return job(i)
}
