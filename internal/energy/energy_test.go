package energy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLinearCost(t *testing.T) {
	l := Linear{M: 2, B: 5}
	if got := l.Cost(10); got != 25 {
		t.Errorf("Cost(10) = %v, want 25", got)
	}
	if got := l.Cost(0); got != 5 {
		t.Errorf("Cost(0) = %v, want 5 (fixed overhead)", got)
	}
}

func TestClassString(t *testing.T) {
	names := map[Class]string{
		BroadcastSend: "broadcast-send",
		BroadcastRecv: "broadcast-recv",
		P2PSend:       "p2p-send",
		P2PRecv:       "p2p-recv",
		Discard:       "discard",
	}
	for c, want := range names {
		if got := c.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", int(c), got, want)
		}
	}
	if got := Class(99).String(); got != "class(99)" {
		t.Errorf("unknown class String = %q", got)
	}
}

func TestDefaultModelValid(t *testing.T) {
	if err := DefaultModel().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultModelProportions(t *testing.T) {
	m := DefaultModel()
	const size = 1000
	// Point-to-point traffic carries extra MAC negotiation overhead.
	if m.P2PSend.Cost(size) <= m.BroadcastSend.Cost(size) {
		t.Error("p2p send should cost more than broadcast send")
	}
	if m.P2PRecv.Cost(size) <= m.BroadcastRecv.Cost(size) {
		t.Error("p2p recv should cost more than broadcast recv")
	}
	// Sending costs more than receiving.
	if m.BroadcastSend.Cost(size) <= m.BroadcastRecv.Cost(size) {
		t.Error("send should cost more than recv")
	}
	// Discarding an overheard frame is cheap.
	if m.Discard.Cost(size) > m.P2PRecv.Cost(size) {
		t.Error("discard should not cost more than an addressed receive")
	}
}

func TestModelValidateRejectsNegative(t *testing.T) {
	m := DefaultModel()
	m.P2PRecv.B = -1
	if err := m.Validate(); err == nil {
		t.Error("negative coefficient accepted")
	}
}

func TestModelValidateRejectsAllZero(t *testing.T) {
	var m Model
	if err := m.Validate(); err == nil {
		t.Error("all-zero model accepted")
	}
}

func TestModelCostDispatch(t *testing.T) {
	m := DefaultModel()
	cases := []Class{BroadcastSend, BroadcastRecv, P2PSend, P2PRecv, Discard}
	for _, c := range cases {
		if m.Cost(c, 100) <= 0 {
			t.Errorf("Cost(%v, 100) not positive", c)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown class did not panic")
		}
	}()
	m.Cost(Class(42), 1)
}

func TestNewMeterValidation(t *testing.T) {
	if _, err := NewMeter(0, DefaultModel()); err == nil {
		t.Error("0 nodes accepted")
	}
	var zero Model
	if _, err := NewMeter(5, zero); err == nil {
		t.Error("invalid model accepted")
	}
}

func TestMeterAccounting(t *testing.T) {
	mt, err := NewMeter(3, DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	c1 := mt.Charge(0, BroadcastSend, 500)
	c2 := mt.Charge(1, BroadcastRecv, 500)
	c3 := mt.Charge(1, P2PSend, 200)

	if got := mt.Node(0); got != c1 {
		t.Errorf("Node(0) = %v, want %v", got, c1)
	}
	if got := mt.Node(1); math.Abs(got-(c2+c3)) > 1e-12 {
		t.Errorf("Node(1) = %v, want %v", got, c2+c3)
	}
	if got := mt.Node(2); got != 0 {
		t.Errorf("Node(2) = %v, want 0", got)
	}
	if got := mt.Total(); math.Abs(got-(c1+c2+c3)) > 1e-12 {
		t.Errorf("Total = %v, want %v", got, c1+c2+c3)
	}
	if got := mt.ByClass(BroadcastSend); got != c1 {
		t.Errorf("ByClass(BroadcastSend) = %v, want %v", got, c1)
	}
	if mt.Messages(BroadcastSend) != 1 || mt.Messages(P2PSend) != 1 || mt.Messages(P2PRecv) != 0 {
		t.Error("message counters wrong")
	}
}

func TestMeterReset(t *testing.T) {
	mt, _ := NewMeter(2, DefaultModel())
	mt.Charge(0, P2PSend, 100)
	mt.Charge(1, P2PRecv, 100)
	mt.Reset()
	if mt.Total() != 0 || mt.Node(0) != 0 || mt.Node(1) != 0 {
		t.Error("Reset left residual energy")
	}
	if mt.Messages(P2PSend) != 0 {
		t.Error("Reset left residual message counts")
	}
	if err := mt.Model().Validate(); err != nil {
		t.Error("Reset clobbered the model")
	}
}

// Property: total always equals the sum of per-node energies and the sum
// of per-class energies.
func TestMeterConservation(t *testing.T) {
	f := func(ops []struct {
		Node  uint8
		Class uint8
		Size  uint16
	}) bool {
		mt, err := NewMeter(8, DefaultModel())
		if err != nil {
			return false
		}
		for _, op := range ops {
			mt.Charge(int(op.Node%8), Class(op.Class%5), int(op.Size))
		}
		var nodeSum, classSum float64
		for i := 0; i < 8; i++ {
			nodeSum += mt.Node(i)
		}
		for c := Class(0); c < numClasses; c++ {
			classSum += mt.ByClass(c)
		}
		tol := 1e-9 * (1 + mt.Total())
		return math.Abs(nodeSum-mt.Total()) < tol && math.Abs(classSum-mt.Total()) < tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: cost is monotone in size for every class.
func TestCostMonotoneInSize(t *testing.T) {
	m := DefaultModel()
	f := func(a, b uint16, classRaw uint8) bool {
		c := Class(classRaw % 5)
		small, large := int(a), int(b)
		if small > large {
			small, large = large, small
		}
		return m.Cost(c, small) <= m.Cost(c, large)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
