// Package energy implements the linear per-message energy model of
// Feeney ("An energy consumption model for performance analysis of routing
// protocols for mobile ad hoc networks", MONET 2001), which the paper's
// Section 5 adopts:
//
//	cost = m*size + b
//
// with distinct (m, b) pairs for the four traffic classes —
// broadcast/point-to-point crossed with send/receive — plus a discard cost
// for point-to-point frames overheard by non-addressees. All energies are
// in millijoules, sizes in bytes.
package energy

import "fmt"

// Class labels a traffic class for accounting.
type Class int

// Traffic classes.
const (
	BroadcastSend Class = iota
	BroadcastRecv
	P2PSend
	P2PRecv
	Discard
	numClasses
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case BroadcastSend:
		return "broadcast-send"
	case BroadcastRecv:
		return "broadcast-recv"
	case P2PSend:
		return "p2p-send"
	case P2PRecv:
		return "p2p-recv"
	case Discard:
		return "discard"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Linear holds the coefficients of one traffic class: cost = M*size + B.
type Linear struct {
	M float64 // incremental cost, mJ per byte
	B float64 // fixed per-message overhead, mJ
}

// Cost evaluates the model for a message of the given size in bytes.
func (l Linear) Cost(size int) float64 { return l.M*float64(size) + l.B }

// Model bundles the coefficients of all traffic classes.
type Model struct {
	BroadcastSend Linear
	BroadcastRecv Linear
	P2PSend       Linear
	P2PRecv       Linear
	// Discard is the cost a node pays to receive and drop a
	// point-to-point frame addressed to somebody else. Feeney measured
	// this as roughly the broadcast-receive cost.
	Discard Linear
}

// DefaultModel returns coefficients in the proportions Feeney measured for
// an 802.11 interface (point-to-point costs exceed broadcast costs because
// of MAC-layer RTS/CTS/ACK negotiation; sending costs exceed receiving).
// Units: mJ per byte and mJ per message. The paper's figures depend only
// on these proportions, not the absolute scale.
func DefaultModel() Model {
	return Model{
		BroadcastSend: Linear{M: 1.9e-3, B: 0.266},
		BroadcastRecv: Linear{M: 0.5e-3, B: 0.056},
		P2PSend:       Linear{M: 1.9e-3, B: 0.454},
		P2PRecv:       Linear{M: 0.5e-3, B: 0.356},
		Discard:       Linear{M: 0.5e-3, B: 0.056},
	}
}

// Validate checks that all coefficients are non-negative and at least one
// is positive.
func (m Model) Validate() error {
	classes := []struct {
		name string
		l    Linear
	}{
		{"broadcast-send", m.BroadcastSend},
		{"broadcast-recv", m.BroadcastRecv},
		{"p2p-send", m.P2PSend},
		{"p2p-recv", m.P2PRecv},
		{"discard", m.Discard},
	}
	allZero := true
	for _, c := range classes {
		if c.l.M < 0 || c.l.B < 0 {
			return fmt.Errorf("energy: %s has negative coefficient (m=%v, b=%v)", c.name, c.l.M, c.l.B)
		}
		if c.l.M > 0 || c.l.B > 0 {
			allZero = false
		}
	}
	if allZero {
		return fmt.Errorf("energy: all coefficients zero; model would measure nothing")
	}
	return nil
}

// Cost evaluates the model for one message of the given class and size.
func (m Model) Cost(c Class, size int) float64 {
	switch c {
	case BroadcastSend:
		return m.BroadcastSend.Cost(size)
	case BroadcastRecv:
		return m.BroadcastRecv.Cost(size)
	case P2PSend:
		return m.P2PSend.Cost(size)
	case P2PRecv:
		return m.P2PRecv.Cost(size)
	case Discard:
		return m.Discard.Cost(size)
	default:
		panic(fmt.Sprintf("energy: unknown class %d", int(c)))
	}
}

// Meter accumulates energy spent by a set of nodes, broken down by traffic
// class. It is not safe for concurrent use; each simulation run owns one.
type Meter struct {
	model    Model
	perNode  []float64
	perClass [numClasses]float64
	messages [numClasses]uint64
	total    float64
}

// NewMeter returns a meter for n nodes using the given model.
func NewMeter(n int, model Model) (*Meter, error) {
	if n <= 0 {
		return nil, fmt.Errorf("energy: meter needs at least one node, got %d", n)
	}
	if err := model.Validate(); err != nil {
		return nil, err
	}
	return &Meter{model: model, perNode: make([]float64, n)}, nil
}

// Model returns the meter's coefficient set.
func (mt *Meter) Model() Model { return mt.model }

// Charge records one message of the given class and size against node id
// and returns the energy charged.
func (mt *Meter) Charge(node int, c Class, size int) float64 {
	cost := mt.model.Cost(c, size)
	mt.perNode[node] += cost
	mt.perClass[c] += cost
	mt.messages[c]++
	mt.total += cost
	return cost
}

// Total returns the network-wide energy spent, in mJ.
func (mt *Meter) Total() float64 { return mt.total }

// Node returns the energy spent by one node, in mJ.
func (mt *Meter) Node(id int) float64 { return mt.perNode[id] }

// ByClass returns the energy spent in one traffic class, in mJ.
func (mt *Meter) ByClass(c Class) float64 { return mt.perClass[c] }

// Messages returns the number of messages charged in one traffic class.
func (mt *Meter) Messages(c Class) uint64 { return mt.messages[c] }

// State is the serializable accumulator state of a Meter. The model is
// configuration and is not part of the snapshot.
type State struct {
	PerNode  []float64
	PerClass []float64
	Messages []uint64
	Total    float64
}

// StateSnapshot captures the meter's accumulators.
func (mt *Meter) StateSnapshot() State {
	st := State{
		PerNode:  append([]float64(nil), mt.perNode...),
		PerClass: append([]float64(nil), mt.perClass[:]...),
		Messages: append([]uint64(nil), mt.messages[:]...),
		Total:    mt.total,
	}
	return st
}

// RestoreState overwrites the accumulators from a snapshot, validating
// that the node count and class layout match this meter's configuration.
func (mt *Meter) RestoreState(st State) error {
	if len(st.PerNode) != len(mt.perNode) {
		return fmt.Errorf("energy: snapshot has %d nodes, meter has %d", len(st.PerNode), len(mt.perNode))
	}
	if len(st.PerClass) != int(numClasses) || len(st.Messages) != int(numClasses) {
		return fmt.Errorf("energy: snapshot has %d/%d class buckets, want %d",
			len(st.PerClass), len(st.Messages), int(numClasses))
	}
	copy(mt.perNode, st.PerNode)
	copy(mt.perClass[:], st.PerClass)
	copy(mt.messages[:], st.Messages)
	mt.total = st.Total
	return nil
}

// Reset zeroes all accumulators; the model and node count are kept.
func (mt *Meter) Reset() {
	for i := range mt.perNode {
		mt.perNode[i] = 0
	}
	mt.perClass = [numClasses]float64{}
	mt.messages = [numClasses]uint64{}
	mt.total = 0
}
