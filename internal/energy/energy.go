// Package energy implements the linear per-message energy model of
// Feeney ("An energy consumption model for performance analysis of routing
// protocols for mobile ad hoc networks", MONET 2001), which the paper's
// Section 5 adopts:
//
//	cost = m*size + b
//
// with distinct (m, b) pairs for the four traffic classes —
// broadcast/point-to-point crossed with send/receive — plus a discard cost
// for point-to-point frames overheard by non-addressees. All energies are
// in millijoules, sizes in bytes.
package energy

import "fmt"

// Class labels a traffic class for accounting.
type Class int

// Traffic classes.
const (
	BroadcastSend Class = iota
	BroadcastRecv
	P2PSend
	P2PRecv
	Discard
	numClasses
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case BroadcastSend:
		return "broadcast-send"
	case BroadcastRecv:
		return "broadcast-recv"
	case P2PSend:
		return "p2p-send"
	case P2PRecv:
		return "p2p-recv"
	case Discard:
		return "discard"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Linear holds the coefficients of one traffic class: cost = M*size + B.
type Linear struct {
	M float64 // incremental cost, mJ per byte
	B float64 // fixed per-message overhead, mJ
}

// Cost evaluates the model for a message of the given size in bytes.
func (l Linear) Cost(size int) float64 { return l.M*float64(size) + l.B }

// Model bundles the coefficients of all traffic classes.
type Model struct {
	BroadcastSend Linear
	BroadcastRecv Linear
	P2PSend       Linear
	P2PRecv       Linear
	// Discard is the cost a node pays to receive and drop a
	// point-to-point frame addressed to somebody else. Feeney measured
	// this as roughly the broadcast-receive cost.
	Discard Linear
}

// DefaultModel returns coefficients in the proportions Feeney measured for
// an 802.11 interface (point-to-point costs exceed broadcast costs because
// of MAC-layer RTS/CTS/ACK negotiation; sending costs exceed receiving).
// Units: mJ per byte and mJ per message. The paper's figures depend only
// on these proportions, not the absolute scale.
func DefaultModel() Model {
	return Model{
		BroadcastSend: Linear{M: 1.9e-3, B: 0.266},
		BroadcastRecv: Linear{M: 0.5e-3, B: 0.056},
		P2PSend:       Linear{M: 1.9e-3, B: 0.454},
		P2PRecv:       Linear{M: 0.5e-3, B: 0.356},
		Discard:       Linear{M: 0.5e-3, B: 0.056},
	}
}

// Validate checks that all coefficients are non-negative and at least one
// is positive.
func (m Model) Validate() error {
	classes := []struct {
		name string
		l    Linear
	}{
		{"broadcast-send", m.BroadcastSend},
		{"broadcast-recv", m.BroadcastRecv},
		{"p2p-send", m.P2PSend},
		{"p2p-recv", m.P2PRecv},
		{"discard", m.Discard},
	}
	allZero := true
	for _, c := range classes {
		if c.l.M < 0 || c.l.B < 0 {
			return fmt.Errorf("energy: %s has negative coefficient (m=%v, b=%v)", c.name, c.l.M, c.l.B)
		}
		if c.l.M > 0 || c.l.B > 0 {
			allZero = false
		}
	}
	if allZero {
		return fmt.Errorf("energy: all coefficients zero; model would measure nothing")
	}
	return nil
}

// Cost evaluates the model for one message of the given class and size.
func (m Model) Cost(c Class, size int) float64 {
	switch c {
	case BroadcastSend:
		return m.BroadcastSend.Cost(size)
	case BroadcastRecv:
		return m.BroadcastRecv.Cost(size)
	case P2PSend:
		return m.P2PSend.Cost(size)
	case P2PRecv:
		return m.P2PRecv.Cost(size)
	case Discard:
		return m.Discard.Cost(size)
	default:
		panic(fmt.Sprintf("energy: unknown class %d", int(c)))
	}
}

// acc is one (node, class) accumulator cell. The meter stores integer
// observations — total bytes and message count — and derives every
// energy figure from them on demand, so accumulation commutes exactly:
// merging per-shard meters is integer addition and reproduces a single
// meter's floats bit-for-bit regardless of charge order.
type acc struct {
	sizeSum int64
	count   uint64
}

// Meter accumulates energy spent by a set of nodes, broken down by traffic
// class. It is not safe for concurrent use; each simulation run owns one
// (sharded runs own one per shard and Merge them).
type Meter struct {
	model Model
	cells []acc // node-major: cells[node*numClasses + class]
}

// NewMeter returns a meter for n nodes using the given model.
func NewMeter(n int, model Model) (*Meter, error) {
	if n <= 0 {
		return nil, fmt.Errorf("energy: meter needs at least one node, got %d", n)
	}
	if err := model.Validate(); err != nil {
		return nil, err
	}
	return &Meter{model: model, cells: make([]acc, n*int(numClasses))}, nil
}

// Model returns the meter's coefficient set.
func (mt *Meter) Model() Model { return mt.model }

// linear returns the model coefficients for a class.
func (m Model) linear(c Class) Linear {
	switch c {
	case BroadcastSend:
		return m.BroadcastSend
	case BroadcastRecv:
		return m.BroadcastRecv
	case P2PSend:
		return m.P2PSend
	case P2PRecv:
		return m.P2PRecv
	case Discard:
		return m.Discard
	default:
		panic(fmt.Sprintf("energy: unknown class %d", int(c)))
	}
}

// Charge records one message of the given class and size against node id
// and returns the energy charged.
func (mt *Meter) Charge(node int, c Class, size int) float64 {
	cell := &mt.cells[node*int(numClasses)+int(c)]
	cell.sizeSum += int64(size)
	cell.count++
	return mt.model.Cost(c, size)
}

// cellCost evaluates one (node, class) cell: M*Σsize + B*count.
func (mt *Meter) cellCost(node int, c Class) float64 {
	cell := mt.cells[node*int(numClasses)+int(c)]
	l := mt.model.linear(c)
	return l.M*float64(cell.sizeSum) + l.B*float64(cell.count)
}

// nodes returns the meter's node count.
func (mt *Meter) nodes() int { return len(mt.cells) / int(numClasses) }

// Total returns the network-wide energy spent, in mJ.
func (mt *Meter) Total() float64 {
	var total float64
	for id := 0; id < mt.nodes(); id++ {
		total += mt.Node(id)
	}
	return total
}

// Node returns the energy spent by one node, in mJ.
func (mt *Meter) Node(id int) float64 {
	var total float64
	for c := Class(0); c < numClasses; c++ {
		total += mt.cellCost(id, c)
	}
	return total
}

// ByClass returns the energy spent in one traffic class, in mJ.
func (mt *Meter) ByClass(c Class) float64 {
	var total float64
	for id := 0; id < mt.nodes(); id++ {
		total += mt.cellCost(id, c)
	}
	return total
}

// Messages returns the number of messages charged in one traffic class.
func (mt *Meter) Messages(c Class) uint64 {
	var total uint64
	for id := 0; id < mt.nodes(); id++ {
		total += mt.cells[id*int(numClasses)+int(c)].count
	}
	return total
}

// Merge folds another meter's observations into this one. Both meters
// must describe the same node set and model; sharded runs merge their
// per-shard meters at the end of a run.
func (mt *Meter) Merge(o *Meter) error {
	if len(o.cells) != len(mt.cells) {
		return fmt.Errorf("energy: merging meter with %d cells into %d", len(o.cells), len(mt.cells))
	}
	for i := range mt.cells {
		mt.cells[i].sizeSum += o.cells[i].sizeSum
		mt.cells[i].count += o.cells[i].count
	}
	return nil
}

// State is the serializable accumulator state of a Meter: the integer
// (bytes, messages) observations per node and class, node-major. The
// model is configuration and is not part of the snapshot.
type State struct {
	SizeSums []int64
	Counts   []uint64
}

// StateSnapshot captures the meter's accumulators.
func (mt *Meter) StateSnapshot() State {
	st := State{
		SizeSums: make([]int64, len(mt.cells)),
		Counts:   make([]uint64, len(mt.cells)),
	}
	for i, cell := range mt.cells {
		st.SizeSums[i] = cell.sizeSum
		st.Counts[i] = cell.count
	}
	return st
}

// RestoreState overwrites the accumulators from a snapshot, validating
// that the node count and class layout match this meter's configuration.
func (mt *Meter) RestoreState(st State) error {
	if len(st.SizeSums) != len(mt.cells) || len(st.Counts) != len(mt.cells) {
		return fmt.Errorf("energy: snapshot has %d/%d cells, meter has %d",
			len(st.SizeSums), len(st.Counts), len(mt.cells))
	}
	for i := range mt.cells {
		mt.cells[i] = acc{sizeSum: st.SizeSums[i], count: st.Counts[i]}
	}
	return nil
}

// Reset zeroes all accumulators; the model and node count are kept.
func (mt *Meter) Reset() {
	for i := range mt.cells {
		mt.cells[i] = acc{}
	}
}
