package sim

import "testing"

// TestScheduleFireRecycleAllocFree is the alloc floor for the scheduler
// hot cycle: once the freelist is warm, Schedule → fire → recycle must
// not allocate at all — the event box popped from the heap is handed
// straight back to the next Schedule.
func TestScheduleFireRecycleAllocFree(t *testing.T) {
	s := NewScheduler()
	var at float64
	fired := 0
	fn := func() { fired++ }

	// Warm the freelist and the heap/pending capacity.
	for i := 0; i < 64; i++ {
		at += 0.001
		s.At(at, fn)
	}
	s.Run(at)

	avg := testing.AllocsPerRun(1000, func() {
		at += 0.001
		s.At(at, fn)
		s.Run(at)
	})
	if avg != 0 {
		t.Errorf("Schedule/fire/recycle cycle allocates %.2f objects/op, want 0", avg)
	}
	if fired == 0 {
		t.Fatal("no events fired; the measurement is vacuous")
	}
}

// TestScheduleFireRecycleCtxAllocFree is the same floor for the
// closure-free AtCtx form used by the radio delivery path.
func TestScheduleFireRecycleCtxAllocFree(t *testing.T) {
	s := NewScheduler()
	var at float64
	fired := 0
	type box struct{ n *int }
	ctx := &box{n: &fired}
	fn := func(x any) { *x.(*box).n++ }

	for i := 0; i < 64; i++ {
		at += 0.001
		s.AtCtx(at, fn, ctx)
	}
	s.Run(at)

	avg := testing.AllocsPerRun(1000, func() {
		at += 0.001
		s.AtCtx(at, fn, ctx)
		s.Run(at)
	})
	if avg != 0 {
		t.Errorf("AtCtx schedule/fire/recycle cycle allocates %.2f objects/op, want 0", avg)
	}
	if fired == 0 {
		t.Fatal("no events fired; the measurement is vacuous")
	}
}
