// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel is intentionally single-threaded: given the same seed and the
// same sequence of scheduled callbacks, a run is bit-for-bit reproducible.
// Parallelism in this repository lives one level up, where independent
// scenario replications run on a worker pool (see the root precinct
// package). That split — sequential core, embarrassingly parallel sweeps —
// keeps the protocol logic free of locks while still saturating cores.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Handle identifies a scheduled event so it can be cancelled before it
// fires. The zero Handle is invalid.
type Handle uint64

// event is a pending callback on the event queue.
type event struct {
	time   float64
	seq    uint64 // insertion order; breaks ties deterministically (FIFO)
	handle Handle
	fn     func()
	index  int // heap index; -1 once popped or cancelled
}

// eventQueue implements heap.Interface ordered by (time, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// Scheduler owns the simulation clock and the pending event queue.
// The zero value is not usable; call NewScheduler.
type Scheduler struct {
	queue     eventQueue
	pending   map[Handle]*event
	now       float64
	seq       uint64
	nextID    Handle
	executed  uint64
	cancelled uint64
	stopped   bool

	// afterEvent, when non-nil, runs after every executed event with the
	// clock at that event's time. Observers (the invariant runner) hang
	// off this; the hook must not schedule or cancel events.
	afterEvent func(now float64)
}

// NewScheduler returns an empty scheduler with the clock at zero.
func NewScheduler() *Scheduler {
	return &Scheduler{pending: make(map[Handle]*event), nextID: 1}
}

// Now returns the current simulation time in seconds.
func (s *Scheduler) Now() float64 { return s.now }

// Len returns the number of pending events.
func (s *Scheduler) Len() int { return len(s.queue) }

// Executed returns the number of events that have fired so far.
func (s *Scheduler) Executed() uint64 { return s.executed }

// SetAfterEvent installs an observer called after each executed event.
// Pass nil to remove it. The observer must not mutate the queue.
func (s *Scheduler) SetAfterEvent(fn func(now float64)) { s.afterEvent = fn }

// CheckConsistency verifies the scheduler's internal bookkeeping: the
// pending map and the heap must describe the same event set, heap indices
// must be self-consistent, the heap property must hold, and no pending
// event may be scheduled before the current clock. It is O(n) over the
// queue and intended for invariant sweeps, not hot paths.
func (s *Scheduler) CheckConsistency() error {
	if len(s.pending) != len(s.queue) {
		return fmt.Errorf("sim: pending map has %d events but queue has %d", len(s.pending), len(s.queue))
	}
	for i, ev := range s.queue {
		if ev.index != i {
			return fmt.Errorf("sim: event %d carries heap index %d at position %d", ev.handle, ev.index, i)
		}
		if s.pending[ev.handle] != ev {
			return fmt.Errorf("sim: queued event %d missing from pending map", ev.handle)
		}
		if ev.time < s.now {
			return fmt.Errorf("sim: pending event %d at t=%v is before now=%v", ev.handle, ev.time, s.now)
		}
		if i > 0 {
			parent := (i - 1) / 2
			if s.queue.Less(i, parent) {
				return fmt.Errorf("sim: heap property violated at index %d (parent %d)", i, parent)
			}
		}
	}
	return nil
}

// At schedules fn to run at absolute simulation time t. Scheduling in the
// past panics: it would silently reorder causality and every such call is
// a protocol bug.
func (s *Scheduler) At(t float64, fn func()) Handle {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	if fn == nil {
		panic("sim: scheduling nil callback")
	}
	ev := &event{time: t, seq: s.seq, handle: s.nextID, fn: fn}
	s.seq++
	s.nextID++
	heap.Push(&s.queue, ev)
	s.pending[ev.handle] = ev
	return ev.handle
}

// After schedules fn to run d seconds from now.
func (s *Scheduler) After(d float64, fn func()) Handle {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return s.At(s.now+d, fn)
}

// Cancel removes a pending event. It returns false when the event already
// fired or was cancelled.
func (s *Scheduler) Cancel(h Handle) bool {
	ev, ok := s.pending[h]
	if !ok {
		return false
	}
	delete(s.pending, h)
	heap.Remove(&s.queue, ev.index)
	s.cancelled++
	return true
}

// Stop makes the current Run call return after the in-flight event
// completes. Pending events stay queued.
func (s *Scheduler) Stop() { s.stopped = true }

// Run executes events in timestamp order until the queue drains or the
// clock would pass `until`. Events scheduled exactly at `until` still run.
// It returns the number of events executed by this call.
func (s *Scheduler) Run(until float64) uint64 {
	s.stopped = false
	var n uint64
	for len(s.queue) > 0 && !s.stopped {
		next := s.queue[0]
		if next.time > until {
			break
		}
		heap.Pop(&s.queue)
		delete(s.pending, next.handle)
		s.now = next.time
		next.fn()
		s.executed++
		n++
		if s.afterEvent != nil {
			s.afterEvent(s.now)
		}
	}
	// Advance the clock to the horizon so subsequent scheduling is
	// relative to the end of the observed window.
	if !s.stopped && s.now < until {
		s.now = until
	}
	return n
}

// RunAll executes events until the queue is empty. Callbacks that keep
// rescheduling themselves make this non-terminating; callers that inject
// recurring processes should use Run with a horizon instead.
func (s *Scheduler) RunAll() uint64 {
	s.stopped = false
	var n uint64
	for len(s.queue) > 0 && !s.stopped {
		next := s.queue[0]
		heap.Pop(&s.queue)
		delete(s.pending, next.handle)
		s.now = next.time
		next.fn()
		s.executed++
		n++
		if s.afterEvent != nil {
			s.afterEvent(s.now)
		}
	}
	return n
}

// RNG derives a deterministic random stream for a named component. Two
// schedulers seeded identically hand out identical streams for the same
// name, regardless of the order in which components ask for them — that is
// what keeps scenario runs reproducible as the codebase grows.
type RNG struct {
	seed int64
}

// NewRNG returns a stream factory rooted at seed.
func NewRNG(seed int64) *RNG { return &RNG{seed: seed} }

// Stream returns an independent *rand.Rand for the component name. The
// stream seed mixes the root seed with an FNV-1a hash of the name.
func (r *RNG) Stream(name string) *rand.Rand {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	mixed := r.seed ^ int64(h)
	if mixed == 0 {
		mixed = int64(prime64)
	}
	return rand.New(rand.NewSource(mixed))
}
