// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel's reference mode is single-threaded: given the same seed and
// the same sequence of scheduled callbacks, a run is bit-for-bit
// reproducible. Parallelism lives one level up, in two forms: independent
// scenario replications run on a worker pool (see the root precinct
// package), and a single large run can be sharded across cores by giving
// each shard its own Scheduler and synchronizing them at a conservative
// lookahead horizon (see the root package's parallel runner).
//
// Sharded execution preserves the reference mode's results exactly
// because every event carries a canonical key (time, creator, cseq) that
// is assigned identically in both modes: `creator` is the execution
// context (peer id, or -1 for network-global work) of the event that
// scheduled it, and `cseq` is drawn from a per-creator counter. A
// creator's events fire on a single shard (or on the coordinator, for
// creator -1), so the counter draw order — and therefore every key — is
// independent of how the event loop is partitioned.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"
)

// Handle identifies a scheduled event so it can be cancelled before it
// fires. The zero Handle is invalid.
type Handle uint64

// Proc names a re-armable recurring process. Events carry closures,
// which cannot be serialized — so checkpointing is only possible at a
// quiescent boundary where every pending event is tagged with a Proc the
// restore path knows how to rebuild (a peer's request loop, a fault, the
// churn tick, ...). Kind selects the re-arm recipe; Owner is the peer or
// fault index it applies to (-1 for network-wide processes).
type Proc struct {
	Kind  string
	Owner int
}

// ProcEvent is one pending tagged event: what to re-arm, when it was due
// to fire, its insertion sequence number, and the execution context that
// scheduled it. Restore re-registers ProcEvents in ascending Seq order
// with the scheduler's context set to Creator, so same-time events keep
// their canonical tie-break order across a checkpoint boundary.
type ProcEvent struct {
	Proc    Proc
	Time    float64
	Seq     uint64
	Creator int
}

// SchedulerState is the serializable scheduler state at a quiescent
// boundary: the clock and counters, plus every pending tagged event.
// The per-creator cseq counters are NOT serialized: re-arming in
// ascending Seq order with the saved Creator reproduces every relative
// cseq order that the canonical comparator can observe.
type SchedulerState struct {
	Now       float64
	Seq       uint64
	NextID    uint64
	Executed  uint64
	Cancelled uint64
	Procs     []ProcEvent
}

// event is a pending callback on the event queue. Exactly one of fn and
// fnCtx is set: fn is the closure form, fnCtx+ctx the allocation-free
// form used by hot paths (see AtCtx). Popped and cancelled events are
// recycled through the scheduler's freelist; gen counts reuses so a
// stale *event pointer from a previous incarnation is detectable — the
// pending map (keyed by the never-reused Handle) stays the authoritative
// cancellation guard, and gen is the belt-and-suspenders check that a
// recycled box can never masquerade as a live one.
type event struct {
	time    float64
	seq     uint64 // insertion order (for snapshots; not an ordering key)
	creator int32  // execution context that scheduled this event
	cseq    uint64 // per-creator sequence; (time, creator, cseq) is total
	execAs  int32  // execution context the callback runs under
	handle  Handle
	fn      func()
	fnCtx   func(any)
	ctx     any
	gen     uint64 // incremented every time the box is recycled
	index   int    // heap index; -1 once popped or cancelled
}

// EventKey is the canonical total order over events: (Time, Creator,
// Cseq). It is identical in sequential and sharded runs, which is what
// lets a sharded run's merged trace reproduce the sequential one.
type EventKey struct {
	Time    float64
	Creator int32
	Cseq    uint64
}

// Less orders keys canonically.
func (k EventKey) Less(o EventKey) bool {
	if k.Time != o.Time {
		return k.Time < o.Time
	}
	if k.Creator != o.Creator {
		return k.Creator < o.Creator
	}
	return k.Cseq < o.Cseq
}

func (ev *event) key() EventKey {
	return EventKey{Time: ev.time, Creator: ev.creator, Cseq: ev.cseq}
}

// eventQueue implements heap.Interface ordered by the canonical key.
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	if q[i].creator != q[j].creator {
		return q[i].creator < q[j].creator
	}
	return q[i].cseq < q[j].cseq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// Counters hands out per-creator sequence numbers. Index creator+1
// (creator -1, the network-global context, uses slot 0). In sharded
// runs one Counters instance is shared by every shard scheduler; this is
// safe without locks because creator c's counter is only drawn while
// c's events execute, which happens on exactly one goroutine at a time
// (c's owning shard during a window, or the coordinator at a barrier).
type Counters struct {
	c []uint64
}

// NewCounters returns counters pre-sized for creators -1..n-1. Sharded
// runs must pre-size (growth would race); sequential runs may pass 0
// and let the slice grow on demand.
func NewCounters(n int) *Counters {
	return &Counters{c: make([]uint64, n+1)}
}

func (k *Counters) next(creator int32) uint64 {
	idx := int(creator) + 1
	if idx >= len(k.c) {
		grown := make([]uint64, idx+1)
		copy(grown, k.c)
		k.c = grown
	}
	v := k.c[idx]
	k.c[idx]++
	return v
}

// Scheduler owns the simulation clock and the pending event queue.
// The zero value is not usable; call NewScheduler.
type Scheduler struct {
	queue     eventQueue
	gqueue    eventQueue // global (execAs -1) events, when splitGlobal
	pending   map[Handle]*event
	procs     map[Handle]Proc // tags on pending re-armable events
	now       float64
	seq       uint64
	nextID    Handle
	executed  uint64
	cancelled uint64
	stopped   bool

	// cur is the execution context of the in-flight event: the peer id
	// whose callback is running, or -1 outside callbacks and for
	// network-global work. New events record it as their creator and
	// inherit it as their default execAs.
	cur      int32
	counters *Counters

	// splitGlobal routes execAs -1 events to a separate queue that the
	// shard worker's RunBefore never touches; the parallel coordinator
	// executes them single-threaded at barriers. Sequential schedulers
	// leave it off and pay nothing for the second queue.
	splitGlobal bool

	// free is the event-box freelist: popped and cancelled events are
	// returned here and Schedule takes them back out, so the steady-state
	// Schedule→fire→recycle cycle allocates nothing. noRecycle disables
	// the freelist (every event is a fresh allocation) for the NoPooling
	// reference path that equivalence proofs compare against.
	free      []*event
	noRecycle bool

	// execCounts, when non-nil, tallies fired events per execution
	// context at index execAs+1 (index 0 is network-global work). The
	// shard-load probe turns it on for a short sequential prefix run to
	// measure how much event work each peer actually generates; it is
	// nil — and the fire path pays one predictable branch — everywhere
	// else.
	execCounts []uint64

	// afterEvent, when non-nil, runs after every executed event with the
	// clock at that event's time. Observers (the invariant runner) hang
	// off this; the hook must not schedule or cancel events.
	afterEvent func(now float64)
	// extraAfter are additional after-event observers (the checkpoint
	// boundary detector) that coexist with the primary one.
	extraAfter []func(now float64)
}

// NewScheduler returns an empty scheduler with the clock at zero.
func NewScheduler() *Scheduler {
	return NewSchedulerWithCounters(NewCounters(0))
}

// NewSchedulerWithCounters returns an empty scheduler drawing cseq
// numbers from the given (possibly shared) counter set.
func NewSchedulerWithCounters(k *Counters) *Scheduler {
	return &Scheduler{
		pending:  make(map[Handle]*event),
		procs:    make(map[Handle]Proc),
		nextID:   1,
		cur:      -1,
		counters: k,
	}
}

// Counters exposes the scheduler's counter set so shard schedulers can
// share the primary's.
func (s *Scheduler) Counters() *Counters { return s.counters }

// SplitGlobal enables the two-queue mode for shard schedulers: events
// with execAs -1 go to a separate queue for the coordinator. Must be
// called before any event is scheduled.
func (s *Scheduler) SplitGlobal() {
	if len(s.queue) > 0 || len(s.gqueue) > 0 {
		panic("sim: SplitGlobal after events were scheduled")
	}
	s.splitGlobal = true
}

// Now returns the current simulation time in seconds.
func (s *Scheduler) Now() float64 { return s.now }

// Len returns the number of pending events.
func (s *Scheduler) Len() int { return len(s.queue) + len(s.gqueue) }

// Executed returns the number of events that have fired so far.
func (s *Scheduler) Executed() uint64 { return s.executed }

// Cur returns the current execution context (-1 outside callbacks).
func (s *Scheduler) Cur() int { return int(s.cur) }

// SetCur overrides the execution context for subsequent scheduling
// calls. Checkpoint restore uses it to re-arm saved events under their
// original creator so canonical tie-breaks survive the boundary. Pass
// -1 to return to the neutral context.
func (s *Scheduler) SetCur(c int) { s.cur = int32(c) }

// CountExec enables per-context fired-event tallies for n peer
// contexts (plus the -1 global context at index 0). Counting starts
// from the call; events fired earlier are not represented.
func (s *Scheduler) CountExec(n int) { s.execCounts = make([]uint64, n+1) }

// ExecCounts returns the per-context tallies enabled by CountExec
// (index execAs+1), or nil when counting is off.
func (s *Scheduler) ExecCounts() []uint64 { return s.execCounts }

// SetAfterEvent installs an observer called after each executed event.
// Pass nil to remove it. The observer must not mutate the queue.
func (s *Scheduler) SetAfterEvent(fn func(now float64)) { s.afterEvent = fn }

// AddAfterEvent appends an additional after-event observer, leaving the
// primary SetAfterEvent slot untouched so multiple subsystems (invariant
// runner, checkpoint boundary detection) can observe the same run. The
// same no-mutation contract applies.
func (s *Scheduler) AddAfterEvent(fn func(now float64)) {
	if fn != nil {
		s.extraAfter = append(s.extraAfter, fn)
	}
}

// notifyAfterEvent runs every observer with the clock at the event time.
func (s *Scheduler) notifyAfterEvent() {
	if s.afterEvent != nil {
		s.afterEvent(s.now)
	}
	for _, fn := range s.extraAfter {
		fn(s.now)
	}
}

// CheckConsistency verifies the scheduler's internal bookkeeping: the
// pending map and the heaps must describe the same event set, heap
// indices must be self-consistent, the heap property must hold, and no
// pending event may be scheduled before the current clock. It is O(n)
// over the queue and intended for invariant sweeps, not hot paths.
func (s *Scheduler) CheckConsistency() error {
	if len(s.pending) != len(s.queue)+len(s.gqueue) {
		return fmt.Errorf("sim: pending map has %d events but queues have %d",
			len(s.pending), len(s.queue)+len(s.gqueue))
	}
	for _, q := range []eventQueue{s.queue, s.gqueue} {
		for i, ev := range q {
			if ev.index != i {
				return fmt.Errorf("sim: event %d carries heap index %d at position %d", ev.handle, ev.index, i)
			}
			if s.pending[ev.handle] != ev {
				return fmt.Errorf("sim: queued event %d missing from pending map", ev.handle)
			}
			if ev.time < s.now {
				return fmt.Errorf("sim: pending event %d at t=%v is before now=%v", ev.handle, ev.time, s.now)
			}
			if i > 0 {
				parent := (i - 1) / 2
				if q.Less(i, parent) {
					return fmt.Errorf("sim: heap property violated at index %d (parent %d)", i, parent)
				}
			}
		}
	}
	for i, ev := range s.free {
		if ev.fn != nil || ev.fnCtx != nil || ev.ctx != nil {
			return fmt.Errorf("sim: freelist slot %d retains a callback reference", i)
		}
		if live, ok := s.pending[ev.handle]; ok && live == ev {
			return fmt.Errorf("sim: freelist slot %d (handle %d) is still pending", i, ev.handle)
		}
	}
	return nil
}

// DisableRecycling turns off the event freelist so every scheduled
// event is a fresh allocation. The NoPooling reference path uses this to
// prove the freelist changes nothing observable.
func (s *Scheduler) DisableRecycling() {
	s.noRecycle = true
	s.free = nil
}

// takeEvent pops an event box off the freelist or allocates one.
func (s *Scheduler) takeEvent() *event {
	if n := len(s.free); n > 0 {
		ev := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		return ev
	}
	return &event{}
}

// recycleEvent returns a popped or cancelled event box to the freelist.
// Callback references are cleared so the freelist never pins payloads,
// and gen is bumped so the box's previous incarnation is dead for good.
func (s *Scheduler) recycleEvent(ev *event) {
	ev.fn = nil
	ev.fnCtx = nil
	ev.ctx = nil
	ev.gen++
	if !s.noRecycle {
		s.free = append(s.free, ev)
	}
}

// queueOf returns the heap an event with the given execAs lives in.
func (s *Scheduler) queueOf(execAs int32) *eventQueue {
	if s.splitGlobal && execAs < 0 {
		return &s.gqueue
	}
	return &s.queue
}

// schedule inserts a filled-in event box at absolute time t, drawing a
// fresh canonical key under the current execution context.
func (s *Scheduler) schedule(t float64, ev *event, execAs int32) Handle {
	ev.creator = s.cur
	ev.cseq = s.counters.next(s.cur)
	return s.scheduleKeyed(t, ev, execAs)
}

// scheduleKeyed inserts an event whose creator/cseq are already set
// (either freshly drawn or reserved on another shard).
func (s *Scheduler) scheduleKeyed(t float64, ev *event, execAs int32) Handle {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	ev.time = t
	ev.execAs = execAs
	ev.seq = s.seq
	ev.handle = s.nextID
	s.seq++
	s.nextID++
	heap.Push(s.queueOf(execAs), ev)
	s.pending[ev.handle] = ev
	return ev.handle
}

// At schedules fn to run at absolute simulation time t, executing under
// the scheduling context (the event is "more work for whoever is running
// now"). Scheduling in the past panics: it would silently reorder
// causality and every such call is a protocol bug.
func (s *Scheduler) At(t float64, fn func()) Handle {
	if fn == nil {
		panic("sim: scheduling nil callback")
	}
	ev := s.takeEvent()
	ev.fn = fn
	return s.schedule(t, ev, s.cur)
}

// AtCtx schedules fn(ctx) at absolute time t. Unlike At, the callback is
// a plain function pointer plus an explicit context value, so hot paths
// that would otherwise allocate a capturing closure per event (one per
// radio frame delivery) can pass a pooled context struct instead and
// keep the whole Schedule→fire→recycle cycle allocation-free.
func (s *Scheduler) AtCtx(t float64, fn func(any), ctx any) Handle {
	return s.AtCtxAs(t, fn, ctx, int(s.cur))
}

// AtCtxAs is AtCtx with an explicit execution context for the callback:
// the peer whose state it will touch (a frame's receiver), or -1 for
// network-global work. Sharded runs use execAs to route the event to
// its owner's shard.
func (s *Scheduler) AtCtxAs(t float64, fn func(any), ctx any, execAs int) Handle {
	if fn == nil {
		panic("sim: scheduling nil callback")
	}
	ev := s.takeEvent()
	ev.fnCtx = fn
	ev.ctx = ctx
	return s.schedule(t, ev, int32(execAs))
}

// After schedules fn to run d seconds from now.
func (s *Scheduler) After(d float64, fn func()) Handle {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return s.At(s.now+d, fn)
}

// AfterCtx schedules fn(ctx) d seconds from now (see AtCtx).
func (s *Scheduler) AfterCtx(d float64, fn func(any), ctx any) Handle {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return s.AtCtx(s.now+d, fn, ctx)
}

// AfterCtxAs schedules fn(ctx) d seconds from now under an explicit
// execution context (see AtCtxAs).
func (s *Scheduler) AfterCtxAs(d float64, fn func(any), ctx any, execAs int) Handle {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return s.AtCtxAs(s.now+d, fn, ctx, execAs)
}

// AtProc schedules fn at absolute time t, tagged as a re-armable
// process, executing under the scheduling context. Tagged events are
// what make a boundary quiescent: they can be rebuilt from (Proc, Time)
// alone, so a checkpoint taken while only tagged events are pending can
// be restored exactly.
func (s *Scheduler) AtProc(p Proc, t float64, fn func()) Handle {
	return s.AtProcAs(p, t, fn, int(s.cur))
}

// AtProcAs is AtProc with an explicit execution context: the peer that
// owns the recurring process, or -1 for network-global processes
// (churn, faults, updates, the warmup meter reset) that a sharded run
// executes single-threaded at barriers.
func (s *Scheduler) AtProcAs(p Proc, t float64, fn func(), execAs int) Handle {
	if p.Kind == "" {
		panic("sim: AtProc with empty proc kind")
	}
	if fn == nil {
		panic("sim: scheduling nil callback")
	}
	ev := s.takeEvent()
	ev.fn = fn
	h := s.schedule(t, ev, int32(execAs))
	s.procs[h] = p
	return h
}

// ReserveKey draws a canonical key under the current context without
// scheduling anything. A shard uses it for a cross-shard delivery: the
// key is drawn on the sender's shard — exactly when the sequential run
// would draw it — then travels with the frame and is attached on the
// receiver's shard via InjectAtCtx.
func (s *Scheduler) ReserveKey() (creator int32, cseq uint64) {
	return s.cur, s.counters.next(s.cur)
}

// InjectAtCtx schedules fn(ctx) at absolute time t with an explicit,
// previously reserved canonical key. The barrier protocol guarantees t
// is not in this scheduler's past; scheduling in the past still panics,
// as the causality backstop.
func (s *Scheduler) InjectAtCtx(t float64, fn func(any), ctx any, execAs int, creator int32, cseq uint64) Handle {
	if fn == nil {
		panic("sim: scheduling nil callback")
	}
	ev := s.takeEvent()
	ev.fnCtx = fn
	ev.ctx = ctx
	ev.creator = creator
	ev.cseq = cseq
	return s.scheduleKeyed(t, ev, int32(execAs))
}

// Quiescent reports whether every pending event is a tagged re-armable
// process — i.e. no transient work (frame deliveries, request timeouts,
// retries) is in flight and the run can be checkpointed.
func (s *Scheduler) Quiescent() bool { return s.Len() == len(s.procs) }

// PendingProcs returns the pending tagged events in ascending Seq order.
func (s *Scheduler) PendingProcs() []ProcEvent {
	out := make([]ProcEvent, 0, len(s.procs))
	for _, q := range []eventQueue{s.queue, s.gqueue} {
		for _, ev := range q {
			if p, ok := s.procs[ev.handle]; ok {
				out = append(out, ProcEvent{Proc: p, Time: ev.time, Seq: ev.seq, Creator: int(ev.creator)})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// StateSnapshot captures the scheduler at a quiescent boundary. It fails
// when any pending event is untagged — such an event's closure cannot be
// rebuilt, so a snapshot taken now could not be restored faithfully.
func (s *Scheduler) StateSnapshot() (SchedulerState, error) {
	if !s.Quiescent() {
		return SchedulerState{}, fmt.Errorf(
			"sim: not quiescent: %d pending events, only %d re-armable",
			s.Len(), len(s.procs))
	}
	return SchedulerState{
		Now:       s.now,
		Seq:       s.seq,
		NextID:    uint64(s.nextID),
		Executed:  s.executed,
		Cancelled: s.cancelled,
		Procs:     s.PendingProcs(),
	}, nil
}

// RestoreState rewinds the clock and counters to a snapshot. The queue
// must be empty — the caller re-arms the snapshot's Procs afterwards (in
// ascending Seq order, under SetCur(Creator), so same-time events keep
// their relative canonical order). Re-armed events receive fresh
// sequence numbers at or above Seq; within each creator the re-arm
// order matches the original insertion order, so every relative cseq
// comparison the canonical order can make is preserved even though the
// counters restart from zero.
func (s *Scheduler) RestoreState(st SchedulerState) error {
	if s.Len() != 0 {
		return fmt.Errorf("sim: RestoreState on a scheduler with %d pending events", s.Len())
	}
	if st.Now < 0 {
		return fmt.Errorf("sim: negative snapshot clock %v", st.Now)
	}
	s.now = st.Now
	s.seq = st.Seq
	s.nextID = Handle(st.NextID)
	s.executed = st.Executed
	s.cancelled = st.Cancelled
	return nil
}

// Cancel removes a pending event. It returns false when the event already
// fired or was cancelled.
func (s *Scheduler) Cancel(h Handle) bool {
	ev, ok := s.pending[h]
	if !ok {
		return false
	}
	delete(s.pending, h)
	delete(s.procs, h)
	heap.Remove(s.queueOf(ev.execAs), ev.index)
	s.cancelled++
	s.recycleEvent(ev)
	return true
}

// fire runs one popped event: the callback fields are copied out and the
// box recycled BEFORE the callback executes, so a callback that schedules
// new events reuses the box it just vacated. The execution context is
// the event's execAs for the duration of the callback.
func (s *Scheduler) fire(next *event) {
	fn, fnCtx, ctx := next.fn, next.fnCtx, next.ctx
	s.cur = next.execAs
	if s.execCounts != nil {
		if i := int(next.execAs) + 1; i >= 0 && i < len(s.execCounts) {
			s.execCounts[i]++
		}
	}
	s.recycleEvent(next)
	if fn != nil {
		fn()
	} else {
		fnCtx(ctx)
	}
	s.cur = -1
}

// peekMin returns the canonically-least pending event across both
// queues, or nil.
func (s *Scheduler) peekMin() *event {
	var best *event
	if len(s.queue) > 0 {
		best = s.queue[0]
	}
	if len(s.gqueue) > 0 {
		if g := s.gqueue[0]; best == nil || g.key().Less(best.key()) {
			best = g
		}
	}
	return best
}

// pop removes an event (known to be a queue head) from its queue and
// the bookkeeping maps.
func (s *Scheduler) pop(ev *event) {
	heap.Remove(s.queueOf(ev.execAs), ev.index)
	delete(s.pending, ev.handle)
	delete(s.procs, ev.handle)
}

// Stop makes the current Run call return after the in-flight event
// completes. Pending events stay queued.
func (s *Scheduler) Stop() { s.stopped = true }

// Run executes events in canonical order until the queue drains or the
// clock would pass `until`. Events scheduled exactly at `until` still run.
// It returns the number of events executed by this call.
func (s *Scheduler) Run(until float64) uint64 {
	s.stopped = false
	var n uint64
	for !s.stopped {
		next := s.peekMin()
		if next == nil || next.time > until {
			break
		}
		s.pop(next)
		s.now = next.time
		s.fire(next)
		s.executed++
		n++
		s.notifyAfterEvent()
	}
	// Advance the clock to the horizon so subsequent scheduling is
	// relative to the end of the observed window.
	if !s.stopped && s.now < until {
		s.now = until
	}
	return n
}

// Step executes exactly one event if the next one is due at or before
// `until`, and reports whether an event fired. The clock is NOT advanced
// to the horizon when the queue is ahead of it — Step exists for
// lockstep comparison of two runs (replay bisection), where the caller
// needs to observe state between individual events.
func (s *Scheduler) Step(until float64) bool {
	next := s.peekMin()
	if next == nil || next.time > until {
		return false
	}
	s.pop(next)
	s.now = next.time
	s.fire(next)
	s.executed++
	s.notifyAfterEvent()
	return true
}

// RunAll executes events until the queue is empty. Callbacks that keep
// rescheduling themselves make this non-terminating; callers that inject
// recurring processes should use Run with a horizon instead.
func (s *Scheduler) RunAll() uint64 {
	s.stopped = false
	var n uint64
	for !s.stopped {
		next := s.peekMin()
		if next == nil {
			break
		}
		s.pop(next)
		s.now = next.time
		s.fire(next)
		s.executed++
		n++
		s.notifyAfterEvent()
	}
	return n
}

// RunBefore executes local-queue events with time strictly below the
// horizon h, in canonical order, and returns the count. It is the shard
// worker's inner loop: global-queue events are left for the coordinator
// (the barrier protocol guarantees none is due before h), and the clock
// is NOT advanced to h — the next window's bounds are recomputed from
// queue heads, so the clock only ever reflects fired events.
func (s *Scheduler) RunBefore(h float64) uint64 {
	var n uint64
	for len(s.queue) > 0 {
		next := s.queue[0]
		if next.time >= h {
			break
		}
		s.pop(next)
		s.now = next.time
		s.fire(next)
		s.executed++
		n++
	}
	return n
}

// StepAt fires the canonically-least pending event if it is due exactly
// at time t, reporting whether one fired. The coordinator drains
// same-time barrier batches with it, interleaving shards in canonical
// order.
func (s *Scheduler) StepAt(t float64) bool {
	next := s.peekMin()
	if next == nil || next.time != t {
		return false
	}
	s.pop(next)
	s.now = next.time
	s.fire(next)
	s.executed++
	return true
}

// PeekLocal returns the due time of the earliest local-queue event.
func (s *Scheduler) PeekLocal() (float64, bool) {
	if len(s.queue) == 0 {
		return 0, false
	}
	return s.queue[0].time, true
}

// PeekGlobal returns the due time of the earliest global-queue event.
func (s *Scheduler) PeekGlobal() (float64, bool) {
	if len(s.gqueue) == 0 {
		return 0, false
	}
	return s.gqueue[0].time, true
}

// PeekKey returns the canonical key of the earliest pending event
// across both queues.
func (s *Scheduler) PeekKey() (EventKey, bool) {
	next := s.peekMin()
	if next == nil {
		return EventKey{}, false
	}
	return next.key(), true
}

// AdvanceTo moves the clock forward to t without firing anything; the
// parallel runner uses it to land every shard clock on the common end
// time after the window loop drains. Moving backwards panics.
func (s *Scheduler) AdvanceTo(t float64) {
	if t < s.now {
		panic(fmt.Sprintf("sim: AdvanceTo(%v) before now %v", t, s.now))
	}
	s.now = t
}

// RNG derives a deterministic random stream for a named component. Two
// schedulers seeded identically hand out identical streams for the same
// name, regardless of the order in which components ask for them — that is
// what keeps scenario runs reproducible as the codebase grows.
//
// The registry memoizes streams by name so every stream's underlying
// Source is reachable for checkpointing: a snapshot is the sorted (name,
// state) list and a restore writes states back into the live Sources
// without invalidating the *rand.Rand wrappers protocol code holds.
type RNG struct {
	seed    int64
	streams map[string]*streamEntry
}

type streamEntry struct {
	src  *Source
	rand *rand.Rand
}

// StreamState is the serializable state of one named stream.
type StreamState struct {
	Name  string
	State SourceState
}

// NewRNG returns a stream factory rooted at seed.
func NewRNG(seed int64) *RNG {
	return &RNG{seed: seed, streams: make(map[string]*streamEntry)}
}

// Stream returns the *rand.Rand for the component name, creating it on
// first use. The stream seed mixes the root seed with an FNV-1a hash of
// the name. Repeated calls with the same name return the same stream.
func (r *RNG) Stream(name string) *rand.Rand {
	if e, ok := r.streams[name]; ok {
		return e.rand
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	mixed := r.seed ^ int64(h)
	if mixed == 0 {
		mixed = int64(prime64)
	}
	src := NewSource(mixed)
	e := &streamEntry{src: src, rand: rand.New(src)}
	r.streams[name] = e
	return e.rand
}

// StateSnapshot returns the state of every stream created so far, sorted
// by name so the serialized form is deterministic.
func (r *RNG) StateSnapshot() []StreamState {
	out := make([]StreamState, 0, len(r.streams))
	for name, e := range r.streams {
		out = append(out, StreamState{Name: name, State: e.src.State()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// RestoreState writes saved states back into live streams. It is strict
// in both directions — a snapshot naming a stream this RNG never created,
// or a live stream absent from the snapshot, means the restored topology
// does not match the captured one, and restoring would silently
// desynchronize the run.
func (r *RNG) RestoreState(states []StreamState) error {
	if len(states) != len(r.streams) {
		return fmt.Errorf("sim: snapshot has %d rng streams, live run has %d", len(states), len(r.streams))
	}
	seen := make(map[string]bool, len(states))
	for _, st := range states {
		if seen[st.Name] {
			return fmt.Errorf("sim: duplicate rng stream %q in snapshot", st.Name)
		}
		seen[st.Name] = true
		e, ok := r.streams[st.Name]
		if !ok {
			return fmt.Errorf("sim: snapshot names unknown rng stream %q", st.Name)
		}
		if err := e.src.SetState(st.State); err != nil {
			return fmt.Errorf("sim: stream %q: %w", st.Name, err)
		}
	}
	return nil
}
