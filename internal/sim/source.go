package sim

// A serializable random source. The checkpoint subsystem (DESIGN.md
// section 10) must capture and restore every random stream bit-exactly,
// and math/rand's default source keeps its state unexported — so the
// kernel owns its own generator: xoshiro256** (Blackman & Vigna, 2018),
// seeded through SplitMix64. The state is four words, trivially
// snapshot-able, and the generator's quality is more than adequate for
// simulation workloads.
//
// Every stream handed out by RNG.Stream wraps a *Source, and the RNG
// keeps a registry of them by name, so a snapshot is just the (name,
// state) pairs and a restore writes the states back into the live
// sources without touching the *rand.Rand wrappers protocol code holds.

import (
	"fmt"
	"math/bits"
)

// SourceState is the serializable state of one Source: the four
// xoshiro256** state words. It is never all-zero.
type SourceState [4]uint64

// Source is a deterministic, serializable rand.Source64.
type Source struct {
	s [4]uint64
}

// splitmix64 advances a SplitMix64 state and returns the next output.
// It is the recommended seeder for xoshiro generators: it maps any
// 64-bit seed to well-mixed, never-all-zero state.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewSource returns a source seeded from the given value. Distinct seeds
// give independent streams.
func NewSource(seed int64) *Source {
	s := &Source{}
	s.Seed(seed)
	return s
}

// Seed implements rand.Source: it resets the state from the seed.
func (s *Source) Seed(seed int64) {
	x := uint64(seed)
	for i := range s.s {
		s.s[i] = splitmix64(&x)
	}
}

// Uint64 implements rand.Source64 (xoshiro256**).
func (s *Source) Uint64() uint64 {
	result := bits.RotateLeft64(s.s[1]*5, 7) * 9
	t := s.s[1] << 17
	s.s[2] ^= s.s[0]
	s.s[3] ^= s.s[1]
	s.s[1] ^= s.s[2]
	s.s[0] ^= s.s[3]
	s.s[2] ^= t
	s.s[3] = bits.RotateLeft64(s.s[3], 45)
	return result
}

// Int63 implements rand.Source.
func (s *Source) Int63() int64 { return int64(s.Uint64() >> 1) }

// State returns the current state words.
func (s *Source) State() SourceState { return s.s }

// SetState overwrites the state. The all-zero state is the xoshiro fixed
// point (the generator would emit zeros forever) and is rejected.
func (s *Source) SetState(st SourceState) error {
	if st == (SourceState{}) {
		return fmt.Errorf("sim: all-zero source state is invalid")
	}
	s.s = st
	return nil
}
