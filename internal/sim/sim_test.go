package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSchedulerOrdersByTime(t *testing.T) {
	s := NewScheduler()
	var fired []int
	s.At(3, func() { fired = append(fired, 3) })
	s.At(1, func() { fired = append(fired, 1) })
	s.At(2, func() { fired = append(fired, 2) })
	s.RunAll()
	want := []int{1, 2, 3}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired = %v, want %v", fired, want)
		}
	}
}

func TestSchedulerFIFOTieBreak(t *testing.T) {
	s := NewScheduler()
	var fired []string
	s.At(5, func() { fired = append(fired, "a") })
	s.At(5, func() { fired = append(fired, "b") })
	s.At(5, func() { fired = append(fired, "c") })
	s.RunAll()
	if got := fired[0] + fired[1] + fired[2]; got != "abc" {
		t.Fatalf("tie-break order = %q, want abc", got)
	}
}

func TestSchedulerAfter(t *testing.T) {
	s := NewScheduler()
	var at float64 = -1
	s.After(2, func() {
		s.After(3, func() { at = s.Now() })
	})
	s.RunAll()
	if at != 5 {
		t.Fatalf("nested After fired at %v, want 5", at)
	}
}

func TestSchedulerRunHorizon(t *testing.T) {
	s := NewScheduler()
	var fired []float64
	for _, tm := range []float64{1, 2, 3, 4, 5} {
		tm := tm
		s.At(tm, func() { fired = append(fired, tm) })
	}
	n := s.Run(3)
	if n != 3 {
		t.Fatalf("Run(3) executed %d events, want 3", n)
	}
	if s.Now() != 3 {
		t.Fatalf("Now = %v, want 3 (clock advances to horizon)", s.Now())
	}
	if s.Len() != 2 {
		t.Fatalf("pending = %d, want 2", s.Len())
	}
	// Event exactly at the horizon must run.
	s2 := NewScheduler()
	ran := false
	s2.At(7, func() { ran = true })
	s2.Run(7)
	if !ran {
		t.Fatal("event at horizon did not run")
	}
}

func TestSchedulerCancel(t *testing.T) {
	s := NewScheduler()
	ran := false
	h := s.At(1, func() { ran = true })
	if !s.Cancel(h) {
		t.Fatal("Cancel returned false for pending event")
	}
	if s.Cancel(h) {
		t.Fatal("double Cancel returned true")
	}
	s.RunAll()
	if ran {
		t.Fatal("cancelled event ran")
	}
}

func TestSchedulerCancelAfterFire(t *testing.T) {
	s := NewScheduler()
	h := s.At(1, func() {})
	s.RunAll()
	if s.Cancel(h) {
		t.Fatal("Cancel after firing returned true")
	}
}

func TestSchedulerCancelMiddleOfHeap(t *testing.T) {
	s := NewScheduler()
	var fired []int
	var handles []Handle
	for i := 0; i < 10; i++ {
		i := i
		handles = append(handles, s.At(float64(i), func() { fired = append(fired, i) }))
	}
	s.Cancel(handles[4])
	s.Cancel(handles[7])
	s.RunAll()
	if len(fired) != 8 {
		t.Fatalf("fired %d events, want 8", len(fired))
	}
	for _, v := range fired {
		if v == 4 || v == 7 {
			t.Fatalf("cancelled event %d fired", v)
		}
	}
	if !sort.IntsAreSorted(fired) {
		t.Fatalf("events out of order after mid-heap cancel: %v", fired)
	}
}

func TestSchedulerStop(t *testing.T) {
	s := NewScheduler()
	count := 0
	for i := 0; i < 10; i++ {
		s.At(float64(i), func() {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	s.RunAll()
	if count != 3 {
		t.Fatalf("executed %d events after Stop, want 3", count)
	}
	if s.Len() != 7 {
		t.Fatalf("pending after Stop = %d, want 7", s.Len())
	}
}

func TestSchedulerPanicsOnPast(t *testing.T) {
	s := NewScheduler()
	s.At(10, func() {})
	s.Run(10)
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	s.At(5, func() {})
}

func TestSchedulerPanicsOnNegativeDelay(t *testing.T) {
	s := NewScheduler()
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	s.After(-1, func() {})
}

func TestSchedulerPanicsOnNilCallback(t *testing.T) {
	s := NewScheduler()
	defer func() {
		if recover() == nil {
			t.Fatal("nil callback did not panic")
		}
	}()
	s.At(1, nil)
}

func TestSelfReschedulingProcess(t *testing.T) {
	s := NewScheduler()
	ticks := 0
	var tick func()
	tick = func() {
		ticks++
		s.After(1, tick)
	}
	s.After(1, tick)
	s.Run(100)
	if ticks != 100 {
		t.Fatalf("ticks = %d, want 100", ticks)
	}
}

// Property: for any set of scheduling times, execution order is the sorted
// order (stable for equal times).
func TestSchedulerOrderProperty(t *testing.T) {
	f := func(times []uint16) bool {
		s := NewScheduler()
		var fired []float64
		for _, raw := range times {
			tm := float64(raw)
			s.At(tm, func() { fired = append(fired, tm) })
		}
		s.RunAll()
		if len(fired) != len(times) {
			return false
		}
		return sort.Float64sAreSorted(fired)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: interleaving cancels with schedules never corrupts heap order.
func TestSchedulerCancelProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewScheduler()
		var handles []Handle
		var fired []float64
		for i := 0; i < 200; i++ {
			tm := rng.Float64() * 1000
			handles = append(handles, s.At(tm, func() { fired = append(fired, tm) }))
		}
		for i := 0; i < 50; i++ {
			s.Cancel(handles[rng.Intn(len(handles))])
		}
		s.RunAll()
		return sort.Float64sAreSorted(fired)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42).Stream("mobility")
	b := NewRNG(42).Stream("mobility")
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed+name produced different streams")
		}
	}
}

func TestRNGStreamIndependence(t *testing.T) {
	r := NewRNG(42)
	a := r.Stream("mobility")
	b := r.Stream("workload")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams for different names nearly identical (%d/100 equal draws)", same)
	}
}

func TestRNGOrderIndependence(t *testing.T) {
	r1 := NewRNG(7)
	s1a := r1.Stream("a").Float64()
	s1b := r1.Stream("b").Float64()
	r2 := NewRNG(7)
	s2b := r2.Stream("b").Float64()
	s2a := r2.Stream("a").Float64()
	if s1a != s2a || s1b != s2b {
		t.Fatal("stream contents depend on acquisition order")
	}
}

func TestRNGZeroMixGuard(t *testing.T) {
	// Find the degenerate case where seed ^ hash == 0 cannot be triggered
	// easily; instead verify seed 0 still yields a usable stream.
	s := NewRNG(0).Stream("")
	v := s.Float64()
	if v < 0 || v >= 1 {
		t.Fatalf("stream draw out of range: %v", v)
	}
}

func TestExecutedCounter(t *testing.T) {
	s := NewScheduler()
	for i := 0; i < 5; i++ {
		s.At(float64(i), func() {})
	}
	s.RunAll()
	if s.Executed() != 5 {
		t.Fatalf("Executed = %d, want 5", s.Executed())
	}
}
