package sim

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// WindowBarrier is a reusable rendezvous for a fixed set of n
// participants: every Await call blocks until all n have arrived, then
// all n proceed into the next round together. It replaces the parallel
// runner's per-window start/done channel handshake (2 channel operations
// per worker per window) with a single sense-reversing barrier: one
// atomic add per arrival, and the release is observed through an epoch
// counter, so on a host with enough cores a waiting participant never
// leaves its OS thread.
//
// Waiters spin briefly on the epoch before parking on a condition
// variable. The spin budget is zero when GOMAXPROCS < n: with fewer
// runnable threads than participants, spinning only steals cycles from
// the participant everyone is waiting on.
type WindowBarrier struct {
	n     int32
	count atomic.Int32
	epoch atomic.Uint32
	spin  int
	mu    sync.Mutex
	cond  *sync.Cond
}

// spinBudget bounds how many epoch loads a waiter performs before
// parking. Crossing a window barrier costs roughly a microsecond of
// peer work, so a few thousand loads cover the common case where the
// last participant is already on its way.
const spinBudget = 4096

// NewWindowBarrier returns a barrier for n participants.
func NewWindowBarrier(n int) *WindowBarrier {
	b := &WindowBarrier{n: int32(n)}
	b.cond = sync.NewCond(&b.mu)
	if runtime.GOMAXPROCS(0) >= n {
		b.spin = spinBudget
	}
	return b
}

// Await blocks until all n participants have called it. The last
// arrival resets the arrival count and bumps the epoch, releasing the
// others; the count is reset before the epoch advances, so a released
// participant re-entering Await for the next round can never observe
// the previous round's count.
func (b *WindowBarrier) Await() {
	e := b.epoch.Load()
	if b.count.Add(1) == b.n {
		b.count.Store(0)
		// The epoch bump happens under the mutex: a waiter that decided
		// to park did so after checking the epoch under the same mutex,
		// so the bump-then-broadcast can never slip between its check
		// and its wait (no lost wakeup).
		b.mu.Lock()
		b.epoch.Add(1)
		b.mu.Unlock()
		b.cond.Broadcast()
		return
	}
	for i := 0; i < b.spin; i++ {
		if b.epoch.Load() != e {
			return
		}
		if i&63 == 63 {
			runtime.Gosched()
		}
	}
	b.mu.Lock()
	for b.epoch.Load() == e {
		b.cond.Wait()
	}
	b.mu.Unlock()
}
