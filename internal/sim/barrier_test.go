package sim

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestWindowBarrierRendezvous drives n participants through many rounds
// and checks the barrier's one contract: no participant enters round
// r+1 before every participant finished round r.
func TestWindowBarrierRendezvous(t *testing.T) {
	for _, n := range []int{2, 3, 4, 8} {
		b := NewWindowBarrier(n)
		const rounds = 2000
		var done [64]atomic.Int64 // per-round completion counts
		var wg sync.WaitGroup
		var violations atomic.Int64
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for r := 0; r < rounds; r++ {
					done[r%64].Add(1)
					b.Await()
					// Everyone must have completed this round by now.
					if got := done[r%64].Load(); got != int64(n) {
						violations.Add(1)
					}
					b.Await()
					// Second rendezvous separates the check from the
					// reset; racing idempotent Store(0)s are fine, and
					// the slot is not re-used for another 63 rounds.
					done[r%64].Store(0)
					b.Await()
				}
			}()
		}
		wg.Wait()
		if v := violations.Load(); v != 0 {
			t.Fatalf("n=%d: %d rendezvous violations", n, v)
		}
	}
}

// TestWindowBarrierSingle pins the degenerate single-participant case:
// Await must return immediately, forever.
func TestWindowBarrierSingle(t *testing.T) {
	b := NewWindowBarrier(1)
	for i := 0; i < 1000; i++ {
		b.Await()
	}
}

// TestRunBeforeExcludesHorizon pins the window semantics the parallel
// protocol's safety proof rests on: RunBefore(h) fires events strictly
// below h only — an event exactly at the horizon (for example a
// cross-shard frame landing exactly at H) stays queued for the next
// round — and the clock never advances to h on its own.
func TestRunBeforeExcludesHorizon(t *testing.T) {
	s := NewScheduler()
	var fired []float64
	for _, at := range []float64{1.0, 1.5, 2.0} {
		at := at
		s.At(at, func() { fired = append(fired, at) })
	}
	if n := s.RunBefore(2.0); n != 2 {
		t.Fatalf("RunBefore(2.0) fired %d events, want 2", n)
	}
	if len(fired) != 2 || fired[0] != 1.0 || fired[1] != 1.5 {
		t.Fatalf("fired = %v, want [1 1.5]", fired)
	}
	if s.Now() != 1.5 {
		t.Fatalf("clock = %v, want 1.5 (last fired event, not the horizon)", s.Now())
	}
	if tm, ok := s.PeekLocal(); !ok || tm != 2.0 {
		t.Fatalf("horizon event must stay queued, peek = %v/%v", tm, ok)
	}
}

// TestInjectAtHorizonBoundary pins the other half of the safety
// argument: an injected cross-shard delivery due exactly at the
// receiver's current clock (the tightest arrival the lookahead bound
// permits after the receiver advanced to a barrier instant) is
// accepted and fires, while an arrival in the past panics.
func TestInjectAtHorizonBoundary(t *testing.T) {
	s := NewScheduler()
	s.SplitGlobal()
	s.AdvanceTo(5.0)
	creator, cseq := s.ReserveKey()
	var got float64
	s.InjectAtCtx(5.0, func(any) { got = s.Now() }, nil, 3, creator, cseq)
	s.Run(5.0)
	if got != 5.0 {
		t.Fatalf("injected boundary event fired at %v, want 5.0", got)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("injecting before the clock must panic")
		}
	}()
	c2, q2 := s.ReserveKey()
	s.InjectAtCtx(4.0, func(any) {}, nil, 3, c2, q2)
}

// TestStepAtCanonicalInterleave models the coordinator's barrier drain
// over two schedulers sharing one counter set: events due at the same
// instant on different schedulers must fire in canonical key order,
// exactly as a single sequential scheduler would have interleaved them.
func TestStepAtCanonicalInterleave(t *testing.T) {
	k := NewCounters(4)
	a := NewSchedulerWithCounters(k)
	b := NewSchedulerWithCounters(k)
	var order []int
	// Alternate scheduling across the two queues so canonical order
	// (per-creator cseq draw order) interleaves them: a, b, a, b.
	a.At(7.0, func() { order = append(order, 0) })
	b.At(7.0, func() { order = append(order, 1) })
	a.At(7.0, func() { order = append(order, 2) })
	b.At(7.0, func() { order = append(order, 3) })
	a.AdvanceTo(7.0)
	b.AdvanceTo(7.0)
	scheds := []*Scheduler{a, b}
	for {
		best := -1
		var bestKey EventKey
		for i, sc := range scheds {
			key, ok := sc.PeekKey()
			if !ok || key.Time != 7.0 {
				continue
			}
			if best < 0 || key.Less(bestKey) {
				best, bestKey = i, key
			}
		}
		if best < 0 {
			break
		}
		scheds[best].StepAt(7.0)
	}
	if len(order) != 4 {
		t.Fatalf("fired %d events, want 4", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("canonical drain order = %v, want [0 1 2 3]", order)
		}
	}
}

// TestCountExec pins the load probe's accounting: fired events tally
// under their execAs context at index execAs+1.
func TestCountExec(t *testing.T) {
	s := NewScheduler()
	s.CountExec(3)
	s.AtCtxAs(1.0, func(any) {}, nil, 0)
	s.AtCtxAs(2.0, func(any) {}, nil, 2)
	s.AtCtxAs(3.0, func(any) {}, nil, 2)
	s.AtCtxAs(4.0, func(any) {}, nil, -1)
	s.Run(10)
	got := s.ExecCounts()
	want := []uint64{1, 1, 0, 2}
	if len(got) != len(want) {
		t.Fatalf("ExecCounts = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExecCounts = %v, want %v", got, want)
		}
	}
}

// BenchmarkWindowBarrier measures one full rendezvous across n
// participants — the per-window synchronization cost of the parallel
// protocol. With GOMAXPROCS < n the spin path is disabled and the
// number reflects park/wake latency instead; the benchmark reports
// which regime it measured.
func BenchmarkWindowBarrier(b *testing.B) {
	for _, n := range []int{2, 4, 8} {
		name := "n=2"
		switch n {
		case 4:
			name = "n=4"
		case 8:
			name = "n=8"
		}
		b.Run(name, func(b *testing.B) {
			if runtime.GOMAXPROCS(0) < n {
				b.Logf("GOMAXPROCS=%d < %d participants: measuring park/wake, not spin", runtime.GOMAXPROCS(0), n)
			}
			bar := NewWindowBarrier(n)
			var wg sync.WaitGroup
			for i := 1; i < n; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for j := 0; j < b.N; j++ {
						bar.Await()
					}
				}()
			}
			b.ResetTimer()
			for j := 0; j < b.N; j++ {
				bar.Await()
			}
			wg.Wait()
		})
	}
}

// BenchmarkEmptyWindowSkip measures the coordinator-side cost of one
// protocol round in which every shard skips its window: publish peek
// times, cross the decision arithmetic, and do no event work. This is
// the floor a sharded run pays per window even when nothing happens.
func BenchmarkEmptyWindowSkip(b *testing.B) {
	const shards = 4
	type slot struct {
		local  [2]atomic.Uint64
		global [2]atomic.Uint64
		outbox [2]atomic.Uint64
		_      [16]byte
	}
	status := make([]slot, shards)
	scheds := make([]*Scheduler, shards)
	k := NewCounters(shards)
	for i := range scheds {
		scheds[i] = NewSchedulerWithCounters(k)
		scheds[i].SplitGlobal()
		// One far-future peer-context event per shard so the local-queue
		// peeks return real times (execAs -1 would land in the global
		// queue under SplitGlobal).
		scheds[i].AtCtxAs(1e9+float64(i), func(any) {}, nil, 0)
	}
	inf := math.Inf(1)
	b.ResetTimer()
	for r := 0; r < b.N; r++ {
		pr := uint(r) & 1
		// Publish phase (all shards, as the participants would).
		for i, sc := range scheds {
			lt, gt := inf, inf
			if t, ok := sc.PeekLocal(); ok {
				lt = t
			}
			if t, ok := sc.PeekGlobal(); ok {
				gt = t
			}
			status[i].local[pr].Store(math.Float64bits(lt))
			status[i].global[pr].Store(math.Float64bits(gt))
			status[i].outbox[pr].Store(0)
		}
		// Decision phase.
		T, G := inf, inf
		cross := false
		for i := range status {
			if t := math.Float64frombits(status[i].local[pr].Load()); t < T {
				T = t
			}
			if t := math.Float64frombits(status[i].global[pr].Load()); t < G {
				G = t
			}
			if status[i].outbox[pr].Load() > 0 {
				cross = true
			}
		}
		if cross || T > 2e9 {
			b.Fatal("unexpected decision")
		}
	}
}
