package sim

import "testing"

func BenchmarkScheduleAndRun(b *testing.B) {
	s := NewScheduler()
	fn := func() {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.After(1, fn)
		if s.Len() >= 1024 {
			s.Run(s.Now() + 2)
		}
	}
}

func BenchmarkSelfRescheduling(b *testing.B) {
	s := NewScheduler()
	count := 0
	var tick func()
	tick = func() {
		count++
		s.After(1, tick)
	}
	s.After(1, tick)
	b.ResetTimer()
	s.Run(float64(b.N))
	if count == 0 {
		b.Fatal("no ticks")
	}
}

func BenchmarkCancel(b *testing.B) {
	s := NewScheduler()
	handles := make([]Handle, 0, 1024)
	fn := func() {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		handles = append(handles, s.At(float64(i%1000)+s.Now()+1, fn))
		if len(handles) == cap(handles) {
			for _, h := range handles {
				s.Cancel(h)
			}
			handles = handles[:0]
		}
	}
}

// BenchmarkSameTimeBurst models a broadcast fan-out: many events queued
// at one instant (one delivery per neighbor), drained in FIFO order.
// This is the dominant scheduler pattern during regional floods.
func BenchmarkSameTimeBurst(b *testing.B) {
	s := NewScheduler()
	fn := func() {}
	const burst = 64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at := s.Now() + 1
		for j := 0; j < burst; j++ {
			s.At(at, fn)
		}
		s.Run(at)
	}
}

func BenchmarkRNGStream(b *testing.B) {
	r := NewRNG(1)
	for i := 0; i < b.N; i++ {
		_ = r.Stream("component")
	}
}
