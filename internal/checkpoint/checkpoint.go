// Package checkpoint defines the on-disk snapshot format for
// PReCinCt simulation state: a versioned, self-describing container of
// per-component sections, each CRC-checked, written atomically. The
// format captures everything needed to restore a run at a quiescent
// event boundary and continue it bit-identically — scheduler clock and
// pending recurring processes, every random stream's state, mobility
// anchors, radio channel state, the full protocol-layer state (caches,
// stores, region tables, ground truth), metrics and energy accumulators.
//
// The container is deliberately strict on decode: wrong magic, unknown
// version, wrong section count, out-of-order or misnamed sections, CRC
// mismatches, truncation and trailing garbage are all distinct, fatal,
// descriptive errors. A snapshot either restores completely or not at
// all; partial state never escapes. DESIGN.md section 10 documents the
// schema and its compatibility rules.
package checkpoint

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"precinct/internal/energy"
	"precinct/internal/metrics"
	"precinct/internal/mobility"
	"precinct/internal/node"
	"precinct/internal/radio"
	"precinct/internal/sim"
	"precinct/internal/workload"
)

// Magic identifies a PReCinCt checkpoint file.
const Magic = "PRCNCKPT"

// Version is the current snapshot format version. Any change to a
// section's schema (field added, removed, reordered, re-typed) must bump
// this; Decode rejects versions it does not know rather than guessing.
//
// Version 2: the energy section stores integer (bytes, messages)
// accumulator cells instead of precomputed floats, scheduler processes
// carry their creator for canonical-key-faithful re-arming, and
// message-ID counters moved from the network section into each peer.
//
// Version 3: the metrics section carries the streaming collector's
// running aggregates (sample cap, total seen, Kahan latency sums, max,
// per-class sums, reservoir RNG state) alongside the retained samples,
// so a capped collector restores mid-reservoir bit-identically.
//
// Version 4: a trailing "workload" section carries the traffic source's
// mutable state (kind tag, trace replay cursors, rank-churn epoch and
// permutation), so non-stationary and trace-driven runs resume
// bit-identically.
//
// Version 5: stored items and pending requests carry integer replica
// ranks (StoredItem.ReplicaRank, PendingReqState.ReplicaRank) instead of
// the boolean replica flag, supporting k > 1 replica regions per key.
const Version = 5

// sectionNames is the canonical section order. Decode enforces it
// exactly: a reordered or renamed section means the file was not written
// by this code path and nothing can be assumed about its contents.
var sectionNames = []string{
	"meta", "sched", "rng", "mobility", "radio", "network", "metrics", "energy", "workload",
}

// castagnoli is the CRC-32C table used for section checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Meta is the snapshot's self-description, serialized as JSON so the
// scenario stays human-inspectable with standard tools. Scenario is kept
// opaque here (this package cannot import the root precinct package);
// the restore path decodes it into a precinct.Scenario.
type Meta struct {
	FormatVersion int
	SimTime       float64
	Scenario      json.RawMessage
}

// Snapshot is the complete captured state of one run at a quiescent
// boundary.
type Snapshot struct {
	Meta     Meta
	Sched    sim.SchedulerState
	RNG      []sim.StreamState
	Mobility mobility.State
	Radio    radio.State
	Network  node.NetworkState
	Metrics  metrics.State
	Energy   energy.State
	Workload workload.SourceState
}

// Encode serializes a snapshot into the container format. The output is
// deterministic for a given snapshot: gob payloads over slice-only state
// (no maps) and no timestamps.
func Encode(s *Snapshot) ([]byte, error) {
	if s.Meta.FormatVersion != Version {
		return nil, fmt.Errorf("checkpoint: snapshot carries format version %d, encoder writes %d",
			s.Meta.FormatVersion, Version)
	}
	payloads := make([][]byte, 0, len(sectionNames))
	metaJSON, err := json.Marshal(s.Meta)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: encode meta: %w", err)
	}
	payloads = append(payloads, metaJSON)
	for _, enc := range []struct {
		name string
		v    any
	}{
		{"sched", &s.Sched},
		{"rng", &s.RNG},
		{"mobility", &s.Mobility},
		{"radio", &s.Radio},
		{"network", &s.Network},
		{"metrics", &s.Metrics},
		{"energy", &s.Energy},
		{"workload", &s.Workload},
	} {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(enc.v); err != nil {
			return nil, fmt.Errorf("checkpoint: encode %s: %w", enc.name, err)
		}
		payloads = append(payloads, buf.Bytes())
	}

	var out bytes.Buffer
	out.WriteString(Magic)
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[0:4], Version)
	binary.BigEndian.PutUint32(hdr[4:8], uint32(len(sectionNames)))
	out.Write(hdr[:])
	for i, name := range sectionNames {
		var nameLen [2]byte
		binary.BigEndian.PutUint16(nameLen[:], uint16(len(name)))
		out.Write(nameLen[:])
		out.WriteString(name)
		var payLen [8]byte
		binary.BigEndian.PutUint64(payLen[:], uint64(len(payloads[i])))
		out.Write(payLen[:])
		out.Write(payloads[i])
		var crc [4]byte
		binary.BigEndian.PutUint32(crc[:], crc32.Checksum(payloads[i], castagnoli))
		out.Write(crc[:])
	}
	return out.Bytes(), nil
}

// Decode parses and validates a container, returning the snapshot. Every
// structural defect fails closed before any state object escapes.
func Decode(data []byte) (*Snapshot, error) {
	r := &reader{data: data}
	magic, err := r.take(len(Magic), "magic")
	if err != nil {
		return nil, err
	}
	if string(magic) != Magic {
		return nil, fmt.Errorf("checkpoint: bad magic %q; not a checkpoint file", magic)
	}
	hdr, err := r.take(8, "header")
	if err != nil {
		return nil, err
	}
	version := binary.BigEndian.Uint32(hdr[0:4])
	if version != Version {
		return nil, fmt.Errorf("checkpoint: unknown format version %d (this build reads %d)", version, Version)
	}
	count := binary.BigEndian.Uint32(hdr[4:8])
	if int(count) != len(sectionNames) {
		return nil, fmt.Errorf("checkpoint: file has %d sections, format version %d defines %d",
			count, version, len(sectionNames))
	}

	payloads := make(map[string][]byte, len(sectionNames))
	for i, want := range sectionNames {
		nl, err := r.take(2, fmt.Sprintf("section %d name length", i))
		if err != nil {
			return nil, err
		}
		nameLen := int(binary.BigEndian.Uint16(nl))
		nameB, err := r.take(nameLen, fmt.Sprintf("section %d name", i))
		if err != nil {
			return nil, err
		}
		name := string(nameB)
		if name != want {
			return nil, fmt.Errorf("checkpoint: section %d is %q, want %q (sections must appear in canonical order)",
				i, name, want)
		}
		pl, err := r.take(8, fmt.Sprintf("section %q payload length", name))
		if err != nil {
			return nil, err
		}
		payLen := binary.BigEndian.Uint64(pl)
		if payLen > uint64(len(r.data)-r.off) {
			return nil, fmt.Errorf("checkpoint: truncated file: section %q claims %d payload bytes, %d remain",
				name, payLen, len(r.data)-r.off)
		}
		payload, err := r.take(int(payLen), fmt.Sprintf("section %q payload", name))
		if err != nil {
			return nil, err
		}
		crcB, err := r.take(4, fmt.Sprintf("section %q checksum", name))
		if err != nil {
			return nil, err
		}
		want32 := binary.BigEndian.Uint32(crcB)
		if got := crc32.Checksum(payload, castagnoli); got != want32 {
			return nil, fmt.Errorf("checkpoint: section %q checksum mismatch (file %08x, computed %08x): corrupt file",
				name, want32, got)
		}
		payloads[name] = payload
	}
	if r.off != len(r.data) {
		return nil, fmt.Errorf("checkpoint: %d trailing bytes after the last section", len(r.data)-r.off)
	}

	s := &Snapshot{}
	if err := json.Unmarshal(payloads["meta"], &s.Meta); err != nil {
		return nil, fmt.Errorf("checkpoint: decode meta: %w", err)
	}
	if s.Meta.FormatVersion != Version {
		return nil, fmt.Errorf("checkpoint: meta declares format version %d inside a version-%d container",
			s.Meta.FormatVersion, Version)
	}
	for _, dec := range []struct {
		name string
		v    any
	}{
		{"sched", &s.Sched},
		{"rng", &s.RNG},
		{"mobility", &s.Mobility},
		{"radio", &s.Radio},
		{"network", &s.Network},
		{"metrics", &s.Metrics},
		{"energy", &s.Energy},
		{"workload", &s.Workload},
	} {
		if err := gob.NewDecoder(bytes.NewReader(payloads[dec.name])).Decode(dec.v); err != nil {
			return nil, fmt.Errorf("checkpoint: decode %s: %w", dec.name, err)
		}
	}
	return s, nil
}

// reader is a bounds-checked cursor over the container bytes.
type reader struct {
	data []byte
	off  int
}

func (r *reader) take(n int, what string) ([]byte, error) {
	if n < 0 || r.off+n > len(r.data) {
		return nil, fmt.Errorf("checkpoint: truncated file: need %d bytes for %s, %d remain",
			n, what, len(r.data)-r.off)
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b, nil
}

// WriteFile encodes the snapshot and writes it atomically: a temp file
// in the target directory, fsynced, then renamed over the destination —
// a crash mid-write leaves either the old snapshot or none, never a
// torn one.
func WriteFile(path string, s *Snapshot) error {
	data, err := Encode(s)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: write %s: %w", tmpName, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: sync %s: %w", tmpName, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("checkpoint: close %s: %w", tmpName, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	return nil
}

// ReadFile reads and decodes a snapshot file.
func ReadFile(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	s, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %s: %w", path, err)
	}
	return s, nil
}
