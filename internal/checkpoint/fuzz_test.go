package checkpoint

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

// goldenBytes loads the committed golden snapshot (the wire-format
// fixture TestGoldenSnapshot pins) so the fuzzer starts from a valid
// container instead of having to discover the framing by chance.
func goldenBytes(t testing.TB) []byte {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "testdata", "golden.ckpt"))
	if err != nil {
		t.Fatalf("golden snapshot fixture: %v", err)
	}
	return data
}

// FuzzDecode fuzzes the container parser with arbitrary byte strings,
// seeded from the golden snapshot and hand-built corruptions of it
// (the same classes TestCheckpointCorruption covers as unit tests:
// truncation, flipped CRC bytes, bumped version, renamed section,
// trailing garbage). Decode's contract is fail-closed: on any input it
// must either return a complete, re-encodable snapshot or a descriptive
// error — never panic, never hand back partial state.
func FuzzDecode(f *testing.F) {
	golden := goldenBytes(f)
	f.Add(golden)
	f.Add([]byte{})
	f.Add([]byte(Magic))
	f.Add(golden[:len(golden)/2])          // truncated mid-section
	f.Add(golden[:len(Magic)+8])           // header only
	f.Add(append(golden, 0xAA))            // trailing garbage
	f.Add(bytes.Repeat([]byte{0xFF}, 256)) // dense noise

	if len(golden) > len(Magic)+8 {
		// Unknown version.
		v := append([]byte(nil), golden...)
		binary.BigEndian.PutUint32(v[len(Magic):], Version+1)
		f.Add(v)
		// Previous format version: a version-2 header on a version-3 body
		// must be rejected up front, not misparsed section by section.
		pv := append([]byte(nil), golden...)
		binary.BigEndian.PutUint32(pv[len(Magic):], Version-1)
		f.Add(pv)
		// Flip a byte deep in a payload so a CRC must catch it.
		c := append([]byte(nil), golden...)
		c[len(c)/2] ^= 0x01
		f.Add(c)
		// Corrupt the first section's name.
		n := append([]byte(nil), golden...)
		n[len(Magic)+8+2] ^= 0x01
		f.Add(n)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data)
		if err != nil {
			if s != nil {
				t.Fatal("Decode returned partial state alongside an error")
			}
			return
		}
		// Accepted input: the snapshot must survive an encode/decode
		// round-trip, i.e. acceptance implies a fully coherent object,
		// not a lucky parse.
		out, err := Encode(s)
		if err != nil {
			t.Fatalf("accepted snapshot does not re-encode: %v", err)
		}
		if _, err := Decode(out); err != nil {
			t.Fatalf("re-encoded snapshot does not decode: %v", err)
		}
	})
}

// TestFuzzSeedsRejectCleanly replays FuzzDecode's corruption seeds as a
// plain test, so the corpus keeps meaning "these inputs fail closed"
// even in runs that never invoke the fuzzing engine.
func TestFuzzSeedsRejectCleanly(t *testing.T) {
	golden := goldenBytes(t)
	if _, err := Decode(golden); err != nil {
		t.Fatalf("golden snapshot no longer decodes: %v", err)
	}
	bad := map[string][]byte{
		"empty":       {},
		"magic-only":  []byte(Magic),
		"half":        golden[:len(golden)/2],
		"header-only": golden[:len(Magic)+8],
		"trailing":    append(append([]byte(nil), golden...), 0xAA),
	}
	v := append([]byte(nil), golden...)
	binary.BigEndian.PutUint32(v[len(Magic):], Version+1)
	bad["version"] = v
	pv := append([]byte(nil), golden...)
	binary.BigEndian.PutUint32(pv[len(Magic):], Version-1)
	bad["old-version"] = pv
	c := append([]byte(nil), golden...)
	c[len(c)/2] ^= 0x01
	bad["bitflip"] = c
	for name, data := range bad {
		if s, err := Decode(data); err == nil {
			t.Errorf("%s: corrupt input decoded without error (%v)", name, s.Meta)
		}
	}
}
