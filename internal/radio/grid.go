// Spatial neighbor index and position epoch cache.
//
// Every GPSR hop, regional flood and broadcast funnels through
// Channel.Neighbors, which the seed implementation served with a full
// O(N) scan that recomputed every node's mobility position per call — a
// single regional flood was O(N²) position math. This file replaces the
// scan with two cooperating structures:
//
//   - A position epoch cache: a node's position is computed at most once
//     per (node, event-time) pair and reused by every Neighbors /
//     Broadcast / Unicast / routing call that fires at the same
//     simulation instant. Invalidation is lazy — bumping a single epoch
//     counter when the clock advances — so it costs nothing per event.
//
//   - A uniform grid over node positions in CSR layout: cell occupants
//     live grouped in one flat array (grid.nodes) delimited by
//     grid.cellStart, indexed densely by cell coordinate — no per-cell
//     allocations, no map lookups in the hot loop. A neighbor query
//     inspects only the cells intersecting the query disk instead of all
//     N nodes.
//
// Mobility makes the grid stale the moment it is built. Rather than
// rebuilding per event, the index exploits mobility.SpeedBounded: a node
// can have drifted at most maxSpeed·age meters since the snapshot, so a
// query with radius Range+drift over snapshot positions provably
// includes every true neighbor; exact membership is then decided with
// current (epoch-cached) positions of the few candidates. The grid is
// rebuilt only when drift exceeds a slack of Range/4. Models with
// unbounded speeds fall back to a rebuild per distinct event time, which
// still amortizes all same-instant queries. With beaconing enabled the
// grid indexes *observed* (beacon) positions, which change only at
// beacon refreshes; a refresh that moves a node across a cell boundary
// invalidates the snapshot, so the next query rebuilds — batched beacon
// refreshes cost one rebuild.
//
// Determinism contract: Neighbors returns exactly the nodes the retained
// linear scan (Config.LinearScan) returns, in the same order (ascending
// NodeID), and both paths touch mobility state identically — runs are
// bit-for-bit identical with the index on or off. The equivalence suite
// at the repository root (TestGridLinearEquivalence) enforces this.
package radio

import (
	"math"
	"math/bits"

	"precinct/internal/geo"
)

// cellKey packs a cell's integer coordinates into one comparable value
// (used to detect cell crossings on beacon refreshes).
type cellKey int64

func keyOf(cx, cy int32) cellKey { return cellKey(int64(cx)<<32 | int64(uint32(cy))) }

// maxGridCells bounds the dense cell array. When node spread would need
// more cells, the index cell size doubles until it fits — coarser cells
// only add candidates, never lose them.
const maxGridCells = 1 << 20

// grid is the uniform spatial index in CSR layout.
type grid struct {
	cell     float64 // index cell side; starts at Range/2, doubles if spread demands
	invCell  float64
	slack    float64 // rebuild once drift exceeds this (Range/4)
	maxSpeed float64 // +Inf when the mobility model has no speed bound

	// Dense cell addressing: cell (cx, cy) maps to row-major index
	// (cy-minCy)*w + (cx-minCx); cells outside the [min, min+w/h) box
	// are empty by construction.
	minCx, minCy int32
	w, h         int32

	// CSR storage: nodes holds all node indices grouped by cell;
	// cell k's occupants are nodes[cellStart[k]:cellStart[k+1]].
	// Cell membership is implicitly addressed: a node's cell is always
	// computed from its cached indexed position (beaconPos or posCache),
	// never stored per node — the rebuild's counting sort recomputes it,
	// so the index carries no per-node bookkeeping array at all.
	cellStart []int32
	nodes     []int32
	cursor    []int32 // scatter scratch for rebuilds

	builtAt float64
	built   bool
	drift   float64 // staleness bound of the current snapshot, meters
}

func newGrid(n int, rng, maxSpeed float64) *grid {
	// Half-range cells keep the candidate-to-neighbor overcount low: the
	// cells intersecting the query disk hug it much tighter than
	// full-range cells would, at the price of a few more (dense, cheap)
	// cell inspections.
	cell := rng / 2
	return &grid{
		cell:     cell,
		invCell:  1 / cell,
		slack:    rng / 4,
		maxSpeed: maxSpeed,
		nodes:    make([]int32, n),
	}
}

func (g *grid) cellAt(p geo.Point) cellKey {
	return keyOf(int32(math.Floor(p.X*g.invCell)), int32(math.Floor(p.Y*g.invCell)))
}

// invalidate discards the current snapshot so the next query rebuilds
// from scratch (used after a checkpoint restore, when indexed positions
// may have nothing to do with the snapshot's).
func (g *grid) invalidate() { g.built = false }

// noteMove records that a node's indexed (observed) position changed
// from old to new. Crossing a cell boundary invalidates the snapshot;
// the next query rebuilds. The old cell is computed from the old
// position rather than looked up — while the snapshot is valid, a
// node's indexed position has only ever changed through noteMove, so
// cellAt(old) is exactly the cell the snapshot filed the node under.
// Beacon refreshes arrive in batches, so a crossing costs one rebuild
// per batch, not per node.
func (g *grid) noteMove(old, new geo.Point) {
	if !g.built {
		return
	}
	if g.cellAt(new) != g.cellAt(old) {
		g.built = false
	}
}

// syncEpoch advances the position epoch when the simulation clock has
// moved since the last position query, invalidating every cached
// position in O(1).
func (ch *Channel) syncEpoch() {
	if now := ch.sched.Now(); now != ch.epochAt {
		ch.epoch++
		ch.epochAt = now
	}
}

// position returns node i's location at the current simulation instant
// through the epoch cache: the mobility model is consulted at most once
// per (node, event-time).
func (ch *Channel) position(i int) geo.Point {
	ch.syncEpoch()
	if ch.posEpoch[i] != ch.epoch {
		ch.posCache[i] = ch.mob.Position(i, ch.epochAt)
		ch.posEpoch[i] = ch.epoch
	}
	return ch.posCache[i]
}

// observedCached returns the position queries should compare against:
// the last-beacon position when beaconing is on (already refreshed by
// refreshStaleBeacons at query start), the epoch-cached true position
// otherwise.
func (ch *Channel) observedCached(i int) geo.Point {
	if ch.beaconAt != nil {
		return ch.beaconPos[i]
	}
	return ch.position(i)
}

// ensureGrid guarantees the snapshot can serve a query: fresh enough
// under the drift bound, rebuilt otherwise. It also records the current
// drift so the query knows its search radius.
func (ch *Channel) ensureGrid() {
	g := ch.grid
	now := ch.sched.Now()
	if g.built {
		if now == g.builtAt {
			return
		}
		if ch.beaconAt != nil {
			// Observed positions change only through refreshBeacon,
			// which invalidates on cell crossings: never silently stale.
			g.drift = 0
			return
		}
		if d := g.maxSpeed * (now - g.builtAt); d <= g.slack {
			g.drift = d
			return
		}
	}
	ch.rebuildGrid(now)
}

// rebuildGrid snapshots every node's indexed position into the CSR
// arrays. All storage is reused, so steady-state rebuilds allocate
// nothing.
func (ch *Channel) rebuildGrid(now float64) {
	g := ch.grid
	n := ch.mob.Len()
	beacon := ch.beaconAt != nil

	// Pass 1: current indexed positions and bounds. Positions land in the
	// epoch/beacon caches; cells are never stored per node — pass 2
	// recomputes them from the cached positions with identical float ops
	// (implicit addressing). Coarsen the cell size until the dense array
	// fits (pathological spreads only; one iteration in practice).
	for {
		minCx, minCy := int32(math.MaxInt32), int32(math.MaxInt32)
		maxCx, maxCy := int32(math.MinInt32), int32(math.MinInt32)
		for i := 0; i < n; i++ {
			var p geo.Point
			if beacon {
				p = ch.beaconPos[i]
			} else {
				p = ch.position(i)
			}
			cx := int32(math.Floor(p.X * g.invCell))
			cy := int32(math.Floor(p.Y * g.invCell))
			minCx, maxCx = min(minCx, cx), max(maxCx, cx)
			minCy, maxCy = min(minCy, cy), max(maxCy, cy)
		}
		w := int64(maxCx) - int64(minCx) + 1
		h := int64(maxCy) - int64(minCy) + 1
		if w*h <= maxGridCells {
			g.minCx, g.minCy = minCx, minCy
			g.w, g.h = int32(w), int32(h)
			break
		}
		g.cell *= 2
		g.invCell = 1 / g.cell
	}

	// Pass 2: counting sort into CSR. cellStart[k] counts, then prefix
	// sums to starts; cursor tracks the scatter position per cell.
	cells := int(g.w) * int(g.h)
	if cap(g.cellStart) < cells+1 {
		g.cellStart = make([]int32, cells+1)
		g.cursor = make([]int32, cells+1)
	} else {
		g.cellStart = g.cellStart[:cells+1]
		g.cursor = g.cursor[:cells+1]
		clear(g.cellStart)
	}
	for i := 0; i < n; i++ {
		g.cellStart[g.linIdxAt(ch.indexedPos(i, beacon))+1]++
	}
	for k := 1; k <= cells; k++ {
		g.cellStart[k] += g.cellStart[k-1]
	}
	copy(g.cursor, g.cellStart)
	for i := 0; i < n; i++ {
		k := g.linIdxAt(ch.indexedPos(i, beacon))
		g.nodes[g.cursor[k]] = int32(i)
		g.cursor[k]++
	}

	g.builtAt = now
	g.built = true
	g.drift = 0
}

// indexedPos returns node i's already-cached indexed position: the
// beacon estimate when beaconing is on, the epoch-cached true position
// otherwise (pass 1 of the rebuild has just populated it at this
// instant).
func (ch *Channel) indexedPos(i int, beacon bool) geo.Point {
	if beacon {
		return ch.beaconPos[i]
	}
	return ch.posCache[i]
}

// linIdxAt maps a position to its cell's dense row-major index —
// implicit addressing: the cell is recomputed from the cached position
// with the same float ops as the bounds pass, never stored per node.
// Only valid for positions inside the current bounds, which holds for
// every indexed position by construction.
func (g *grid) linIdxAt(p geo.Point) int {
	cx := int32(math.Floor(p.X * g.invCell))
	cy := int32(math.Floor(p.Y * g.invCell))
	return int(cy-g.minCy)*int(g.w) + int(cx-g.minCx)
}

// appendGridNeighbors appends all live nodes within radio range of self
// (excluding id) to buf, sorted by NodeID — the same set, in the same
// order, as the linear reference scan. Candidate cells are those
// intersecting the disk of radius Range+drift around self; exact
// membership uses current positions.
//
// Matches are marked in a node-indexed scratch bitset and emitted by
// iterating its set bits, which yields ascending-ID output without a
// sort, without data-dependent branches, and without allocating.
func (ch *Channel) appendGridNeighbors(buf []Neighbor, id NodeID, self geo.Point) []Neighbor {
	g := ch.grid
	r := ch.cfg.Range + g.drift
	r2cand := r * r
	r2 := ch.cfg.Range * ch.cfg.Range
	cx0 := int32(math.Floor((self.X - r) * g.invCell))
	cx1 := int32(math.Floor((self.X + r) * g.invCell))
	cy0 := int32(math.Floor((self.Y - r) * g.invCell))
	cy1 := int32(math.Floor((self.Y + r) * g.invCell))
	cx0, cx1 = max(cx0, g.minCx), min(cx1, g.minCx+g.w-1)
	cy0, cy1 = max(cy0, g.minCy), min(cy1, g.minCy+g.h-1)

	// Hoisted epoch state: position() would re-check the clock per
	// candidate; one sync up front covers the whole query.
	ch.syncEpoch()
	epoch, now := ch.epoch, ch.epochAt
	beacon := ch.beaconAt != nil
	alive := ch.alive
	selfI := int(id)

	mark := ch.markBuf
	for cy := cy0; cy <= cy1; cy++ {
		rowBase := int(cy-g.minCy) * int(g.w)
		// The row's vertical distance to self is constant; hoist it out
		// of the per-cell disk test.
		ny := clamp(self.Y, float64(cy)*g.cell, float64(cy+1)*g.cell)
		dy := self.Y - ny
		dy2 := dy * dy
		for cx := cx0; cx <= cx1; cx++ {
			// Skip cells entirely outside the search disk.
			nx := clamp(self.X, float64(cx)*g.cell, float64(cx+1)*g.cell)
			dx := self.X - nx
			if dx*dx+dy2 > r2cand {
				continue
			}
			k := rowBase + int(cx-g.minCx)
			for _, j := range g.nodes[g.cellStart[k]:g.cellStart[k+1]] {
				i := int(j)
				if i == selfI {
					continue
				}
				var p geo.Point
				if beacon {
					p = ch.beaconPos[i]
				} else {
					if ch.posEpoch[i] != epoch {
						ch.posCache[i] = ch.mob.Position(i, now)
						ch.posEpoch[i] = epoch
					}
					p = ch.posCache[i]
				}
				if self.Dist2(p) > r2 || !alive(NodeID(i)) {
					continue
				}
				mark[i>>6] |= 1 << (uint(i) & 63)
			}
		}
	}

	for w, m := range mark {
		if m == 0 {
			continue
		}
		mark[w] = 0
		base := w << 6
		for ; m != 0; m &= m - 1 {
			i := base + bits.TrailingZeros64(m)
			if beacon {
				buf = append(buf, Neighbor{ID: NodeID(i), Pos: ch.beaconPos[i]})
			} else {
				buf = append(buf, Neighbor{ID: NodeID(i), Pos: ch.posCache[i]})
			}
		}
	}
	return buf
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
