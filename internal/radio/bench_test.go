package radio

import (
	"fmt"
	"math/rand"
	"testing"

	"precinct/internal/energy"
	"precinct/internal/geo"
	"precinct/internal/mobility"
	"precinct/internal/sim"
)

func benchChannel(b *testing.B, n int, cfg Config) (*Channel, *sim.Scheduler) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Pt(rng.Float64()*1200, rng.Float64()*1200)
	}
	mob, err := mobility.NewStatic(pts)
	if err != nil {
		b.Fatal(err)
	}
	sched := sim.NewScheduler()
	meter, err := energy.NewMeter(n, energy.DefaultModel())
	if err != nil {
		b.Fatal(err)
	}
	ch, err := New(cfg, sched, mob, meter, perSenderLoss(n, 1))
	if err != nil {
		b.Fatal(err)
	}
	ch.SetHandler(func(NodeID, Frame) {})
	return ch, sched
}

// benchWaypointChannel exercises the moving-node path: the grid serves
// most queries from a bounded-drift snapshot and rebuilds occasionally.
func benchWaypointChannel(b *testing.B, n int, cfg Config) (*Channel, *sim.Scheduler) {
	b.Helper()
	mob, err := mobility.NewWaypoint(n, mobility.DefaultWaypointConfig(), sim.NewRNG(1))
	if err != nil {
		b.Fatal(err)
	}
	sched := sim.NewScheduler()
	ch, err := New(cfg, sched, mob, nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	ch.SetHandler(func(NodeID, Frame) {})
	return ch, sched
}

// benchSizes spans the scaling range the end-to-end benchmarks use.
var benchSizes = []int{80, 160, 320, 640}

// BenchmarkNeighbors compares the spatial grid index against the retained
// linear scan on static topologies. allocs/op must be 0 for both paths in
// steady state.
func BenchmarkNeighbors(b *testing.B) {
	for _, path := range []struct {
		name   string
		linear bool
	}{{"grid", false}, {"linear", true}} {
		for _, n := range benchSizes {
			b.Run(fmt.Sprintf("%s/n=%d", path.name, n), func(b *testing.B) {
				cfg := DefaultConfig()
				cfg.LinearScan = path.linear
				ch, _ := benchChannel(b, n, cfg)
				ch.Neighbors(0) // warm caches and scratch buffers
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ch.Neighbors(NodeID(i % n))
				}
			})
		}
	}
}

// BenchmarkNeighborsWaypoint measures the moving-node query path,
// including amortized grid rebuilds as simulation time advances.
func BenchmarkNeighborsWaypoint(b *testing.B) {
	for _, path := range []struct {
		name   string
		linear bool
	}{{"grid", false}, {"linear", true}} {
		for _, n := range benchSizes {
			b.Run(fmt.Sprintf("%s/n=%d", path.name, n), func(b *testing.B) {
				cfg := DefaultConfig()
				cfg.LinearScan = path.linear
				ch, sched := benchWaypointChannel(b, n, cfg)
				ch.Neighbors(0)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if i%64 == 0 {
						// Advance the clock so positions (and the grid
						// snapshot) actually go stale.
						at := sched.Now() + 0.25
						sched.At(at, func() {})
						sched.Run(at)
					}
					ch.Neighbors(NodeID(i % n))
				}
			})
		}
	}
}

// BenchmarkBroadcast measures one-hop delivery fan-out, which funnels
// through the same neighbor query.
func BenchmarkBroadcast(b *testing.B) {
	for _, path := range []struct {
		name   string
		linear bool
	}{{"grid", false}, {"linear", true}} {
		for _, n := range []int{80, 320} {
			b.Run(fmt.Sprintf("%s/n=%d", path.name, n), func(b *testing.B) {
				cfg := DefaultConfig()
				cfg.LinearScan = path.linear
				ch, sched := benchChannel(b, n, cfg)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ch.Broadcast(NodeID(i%n), 512, nil)
					if sched.Len() > 4096 {
						sched.RunAll()
					}
				}
			})
		}
	}
}

func BenchmarkUnicast80Nodes(b *testing.B) {
	ch, sched := benchChannel(b, 80, DefaultConfig())
	// Find a connected pair once.
	var from, to NodeID = 0, 0
	for i := 0; i < 80 && to == from; i++ {
		if nbrs := ch.Neighbors(NodeID(i)); len(nbrs) > 0 {
			from, to = NodeID(i), nbrs[0].ID
		}
	}
	if from == to {
		b.Skip("no connected pair")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch.Unicast(from, to, 512, nil)
		if sched.Len() > 4096 {
			sched.RunAll()
		}
	}
}

// BenchmarkOutboxExchange measures one full cross-shard exchange batch:
// parking deliveries in the sender shard's outbox (with key
// reservation), injecting them into the receiver shard's scheduler,
// resetting the outbox in place, and firing the delivered events. This
// is the per-frame cost of shard crossing; steady state must be
// allocation-free so sharded runs stay within the pooling envelope.
func BenchmarkOutboxExchange(b *testing.B) {
	const n = 64
	const batch = 16
	rng := rand.New(rand.NewSource(1))
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Pt(rng.Float64()*1200, rng.Float64()*1200)
	}
	counters := sim.NewCounters(n)
	build := func(self int32, shardOf []int32) (*Channel, *sim.Scheduler) {
		mob, err := mobility.NewStatic(pts)
		if err != nil {
			b.Fatal(err)
		}
		sched := sim.NewSchedulerWithCounters(counters)
		sched.SplitGlobal()
		ch, err := New(DefaultConfig(), sched, mob, nil, perSenderLoss(n, 1))
		if err != nil {
			b.Fatal(err)
		}
		ch.SetHandler(func(NodeID, Frame) {})
		ch.EnableSharding(shardOf, self, nil)
		return ch, sched
	}
	shardOf := make([]int32, n)
	for i := n / 2; i < n; i++ {
		shardOf[i] = 1
	}
	sender, _ := build(0, shardOf)
	receiver, rsched := build(1, shardOf)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < batch; j++ {
			to := NodeID(n/2 + j)
			sender.scheduleDelivery(0.001, to, Frame{From: 0, To: to, Size: 64}, 0.0005)
		}
		box := sender.Outbox()
		if len(box) != batch {
			b.Fatalf("parked %d deliveries, want %d", len(box), batch)
		}
		for k := range box {
			receiver.Inject(box[k])
		}
		sender.ResetOutbox()
		rsched.RunBefore(0.002)
	}
}
