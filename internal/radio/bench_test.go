package radio

import (
	"math/rand"
	"testing"

	"precinct/internal/energy"
	"precinct/internal/geo"
	"precinct/internal/mobility"
	"precinct/internal/sim"
)

func benchChannel(b *testing.B, n int) (*Channel, *sim.Scheduler) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Pt(rng.Float64()*1200, rng.Float64()*1200)
	}
	mob, err := mobility.NewStatic(pts)
	if err != nil {
		b.Fatal(err)
	}
	sched := sim.NewScheduler()
	meter, err := energy.NewMeter(n, energy.DefaultModel())
	if err != nil {
		b.Fatal(err)
	}
	ch, err := New(DefaultConfig(), sched, mob, meter, rng)
	if err != nil {
		b.Fatal(err)
	}
	ch.SetHandler(func(NodeID, Frame) {})
	return ch, sched
}

func BenchmarkBroadcast80Nodes(b *testing.B) {
	ch, sched := benchChannel(b, 80)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch.Broadcast(NodeID(i%80), 512, nil)
		if sched.Len() > 4096 {
			sched.RunAll()
		}
	}
}

func BenchmarkUnicast80Nodes(b *testing.B) {
	ch, sched := benchChannel(b, 80)
	// Find a connected pair once.
	var from, to NodeID = 0, 0
	for i := 0; i < 80 && to == from; i++ {
		if nbrs := ch.Neighbors(NodeID(i)); len(nbrs) > 0 {
			from, to = NodeID(i), nbrs[0].ID
		}
	}
	if from == to {
		b.Skip("no connected pair")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch.Unicast(from, to, 512, nil)
		if sched.Len() > 4096 {
			sched.RunAll()
		}
	}
}

func BenchmarkNeighborScan(b *testing.B) {
	ch, _ := benchChannel(b, 160)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch.Neighbors(NodeID(i % 160))
	}
}
