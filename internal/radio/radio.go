// Package radio models the wireless channel: a unit-disk connectivity
// graph over the mobility model's positions, per-node transmit
// serialization (one frame in the air per sender at a time), airtime and
// MAC-overhead delays, optional frame loss, and energy accounting through
// the Feeney model in internal/energy.
//
// Neighbor queries — the hottest operation in the simulator — are served
// by a uniform-grid spatial index with an epoch-based position cache (see
// grid.go). A retained linear scan (Config.LinearScan) is the
// correctness oracle: both paths are bit-identical by contract.
//
// The model is deliberately simpler than a packet-level 802.11 PHY — no
// carrier sense across nodes, no collisions — because the paper's metrics
// depend on hop counts, broadcast fan-out and per-message energy, all of
// which the unit-disk abstraction captures. The MAC overhead constant
// absorbs average channel-access cost; the energy model's per-class
// coefficients absorb RTS/CTS/ACK asymmetries.
package radio

import (
	"fmt"
	"math"
	"math/rand"

	"precinct/internal/energy"
	"precinct/internal/geo"
	"precinct/internal/mobility"
	"precinct/internal/sim"
)

// NodeID indexes a node. IDs are dense, 0..N-1.
type NodeID int

// Frame is one transmission. Payload is opaque to the channel.
type Frame struct {
	From      NodeID
	To        NodeID // meaningful only for unicast frames
	Broadcast bool
	Size      int // bytes on the air, including protocol headers
	Payload   any
}

// Handler receives frames delivered to a node. `at` is the delivery time.
type Handler func(to NodeID, f Frame)

// DropHandler observes frames that were transmitted but will never reach
// the Handler: unicast frames lost to injected loss at send time, and
// any reception dropped mid-flight (dead receiver, collision). The node
// layer uses it to release pooled message payloads exactly once per
// delivery. Broadcast send-time losses are NOT reported — Broadcast's
// return value already excludes them, so the caller never handed over
// ownership for those receivers.
type DropHandler func(to NodeID, f Frame)

// Config parameterizes the channel.
type Config struct {
	Range     float64 // transmission range in meters (paper: 250)
	Bandwidth float64 // bits per second (paper: 11 Mb/s)
	// MACOverhead is the fixed per-frame channel-access delay in
	// seconds, covering contention, backoff and MAC negotiation on
	// average.
	MACOverhead float64
	// Propagation is the one-hop propagation delay in seconds.
	Propagation float64
	// LossRate drops each delivery independently with this probability.
	LossRate float64
	// HeaderBytes is added to every frame's payload size on the air.
	HeaderBytes int
	// BeaconInterval, when positive, makes neighbor tables stale: a
	// node's position is observed by others only every BeaconInterval
	// seconds (as GPSR's periodic beacons would), while actual frame
	// delivery still uses true positions. Zero gives perfect location
	// knowledge.
	BeaconInterval float64
	// Collisions enables receiver-side collision losses: a frame whose
	// reception overlaps another frame's reception at the same node is
	// dropped. This is the cheapest interference model that makes
	// broadcast storms self-damaging the way a shared 802.11 channel
	// does.
	Collisions bool
	// LinearScan serves neighbor queries with the reference O(N) scan
	// instead of the spatial grid index. The two paths return identical
	// results in identical order and touch mobility state identically,
	// so runs are bit-for-bit equal either way; the linear path is
	// retained as the correctness oracle for the equivalence suite and
	// as a benchmark baseline.
	LinearScan bool
}

// DefaultConfig mirrors the paper's radio parameters.
func DefaultConfig() Config {
	return Config{
		Range:       250,
		Bandwidth:   11e6,
		MACOverhead: 0.5e-3,
		Propagation: 1e-6,
		LossRate:    0,
		HeaderBytes: 64,
	}
}

// Validate checks configuration sanity.
func (c Config) Validate() error {
	if c.Range <= 0 {
		return fmt.Errorf("radio: range must be positive, got %v", c.Range)
	}
	if c.Bandwidth <= 0 {
		return fmt.Errorf("radio: bandwidth must be positive, got %v", c.Bandwidth)
	}
	if c.MACOverhead < 0 || c.Propagation < 0 {
		return fmt.Errorf("radio: negative delay constants")
	}
	if c.LossRate < 0 || c.LossRate >= 1 {
		return fmt.Errorf("radio: loss rate must be in [0, 1), got %v", c.LossRate)
	}
	if c.HeaderBytes < 0 {
		return fmt.Errorf("radio: negative header size")
	}
	if c.BeaconInterval < 0 {
		return fmt.Errorf("radio: negative beacon interval")
	}
	return nil
}

// Stats counts channel activity.
type Stats struct {
	BroadcastFrames uint64
	UnicastFrames   uint64
	Deliveries      uint64
	Drops           uint64 // lost to injected loss
	Collisions      uint64 // lost to overlapping receptions
	Undeliverable   uint64 // unicast to a node out of range
	BytesOnAir      uint64
	Handled         uint64 // receptions that reached the frame handler
	DeadDrops       uint64 // receptions whose receiver died mid-flight
}

// Add returns the field-wise sum of two counter snapshots. Sharded runs
// use it to merge per-shard channels: send-side counters accumulate on
// the sender's shard and fire-side counters on the receiver's, so the
// sum equals the sequential run's single channel exactly.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		BroadcastFrames: s.BroadcastFrames + o.BroadcastFrames,
		UnicastFrames:   s.UnicastFrames + o.UnicastFrames,
		Deliveries:      s.Deliveries + o.Deliveries,
		Drops:           s.Drops + o.Drops,
		Collisions:      s.Collisions + o.Collisions,
		Undeliverable:   s.Undeliverable + o.Undeliverable,
		BytesOnAir:      s.BytesOnAir + o.BytesOnAir,
		Handled:         s.Handled + o.Handled,
		DeadDrops:       s.DeadDrops + o.DeadDrops,
	}
}

// Channel is the shared medium. One Channel serves one simulation run and
// is not safe for concurrent use.
type Channel struct {
	cfg     Config
	sched   *sim.Scheduler
	mob     mobility.Model
	meter   *energy.Meter
	handler Handler
	onDrop  DropHandler
	alive   func(NodeID) bool
	// loss holds one RNG stream per sender, so loss draws depend only on
	// the sender's own transmission history — a sharded run, where each
	// sender transmits from its own shard, consumes the streams exactly
	// as the sequential run does.
	loss []*rand.Rand

	// Sharded-run bridge: when shardOf is set, a delivery whose receiver
	// lives on another shard is not scheduled locally but parked in
	// outbox, carrying a canonical key reserved on this (the sender's)
	// scheduler; the parallel runner moves it to the receiver shard's
	// channel via Inject at the next barrier. clonePayload deep-copies a
	// broadcast payload per remote receiver, because the reference-count
	// sharing the node layer uses for local receivers cannot cross
	// shards.
	shardOf      []int32
	selfShard    int32
	outbox       []RemoteDelivery
	clonePayload func(any) any

	txBusyUntil []float64
	rxBusyUntil []float64
	beaconPos   []geo.Point
	beaconAt    []float64
	stats       Stats
	inFlight    uint64 // receptions scheduled but not yet resolved

	// Position epoch cache: posCache[i] is valid iff posEpoch[i] equals
	// epoch, and epoch is bumped lazily whenever the clock moves past
	// epochAt. See grid.go.
	posCache []geo.Point
	posEpoch []uint64
	epoch    uint64
	epochAt  float64

	// grid is the spatial neighbor index; nil under Config.LinearScan.
	grid *grid
	// nbrBuf is the reusable neighbor buffer returned by Neighbors, so
	// steady-state queries allocate nothing. The returned slice is only
	// valid until the next Neighbors/Broadcast/Unicast call.
	nbrBuf []Neighbor
	// markBuf is the node-indexed match bitset grid queries use to emit
	// neighbors in ascending NodeID order without sorting. Always fully
	// zero between queries.
	markBuf []uint64

	// topoGen counts liveness changes (crash/quit/revive). Together with
	// the position epoch it forms PlanarKey: as long as neither moves,
	// any node's neighbor set — and therefore its Gabriel planarization —
	// is provably unchanged, so GPSR may reuse a cached planar set.
	topoGen uint64

	// freeDeliveries recycles the per-reception delivery boxes that carry
	// a scheduled frame to its fire time; combined with the scheduler's
	// event freelist this makes steady-state frame delivery
	// allocation-free. noRecycle (the NoPooling reference path) disables
	// the freelist so every delivery is a fresh allocation.
	freeDeliveries []*delivery
	noRecycle      bool
}

// New creates a channel over the mobility model. The meter may be nil to
// disable energy accounting. loss holds one RNG stream per sender (see
// Channel.loss); it is only consulted when LossRate > 0, but when it is,
// every sender needs a stream.
func New(cfg Config, sched *sim.Scheduler, mob mobility.Model, meter *energy.Meter, loss []*rand.Rand) (*Channel, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if sched == nil || mob == nil {
		return nil, fmt.Errorf("radio: scheduler and mobility model are required")
	}
	if cfg.LossRate > 0 {
		if len(loss) != mob.Len() {
			return nil, fmt.Errorf("radio: loss injection requires one RNG stream per sender, got %d for %d nodes",
				len(loss), mob.Len())
		}
		for i, r := range loss {
			if r == nil {
				return nil, fmt.Errorf("radio: nil loss stream for sender %d", i)
			}
		}
	}
	ch := &Channel{
		cfg:         cfg,
		sched:       sched,
		mob:         mob,
		meter:       meter,
		loss:        loss,
		alive:       func(NodeID) bool { return true },
		txBusyUntil: make([]float64, mob.Len()),
		posCache:    make([]geo.Point, mob.Len()),
		posEpoch:    make([]uint64, mob.Len()),
		epoch:       1,  // posEpoch is zeroed, so every entry starts invalid
		epochAt:     -1, // simulation time is >= 0: first query misses
	}
	if cfg.BeaconInterval > 0 {
		ch.beaconPos = make([]geo.Point, mob.Len())
		ch.beaconAt = make([]float64, mob.Len())
		for i := range ch.beaconAt {
			ch.beaconAt[i] = -1
		}
	}
	if cfg.Collisions {
		ch.rxBusyUntil = make([]float64, mob.Len())
	}
	if !cfg.LinearScan {
		maxSpeed := math.Inf(1)
		if sb, ok := mob.(mobility.SpeedBounded); ok {
			maxSpeed = sb.MaxSpeed()
		}
		ch.grid = newGrid(mob.Len(), cfg.Range, maxSpeed)
		ch.markBuf = make([]uint64, (mob.Len()+63)/64)
	}
	return ch, nil
}

// collided applies the receiver-side collision model at delivery time.
// Delivery events fire when a reception *completes*, so the frame
// occupied the receiver over [now-airtime, now]; it is lost when that
// window overlaps an earlier reception. The medium stays garbled for the
// union of the windows either way.
func (ch *Channel) collided(to NodeID, airtime float64) bool {
	if ch.rxBusyUntil == nil {
		return false
	}
	const eps = 1e-9
	now := ch.sched.Now()
	start := now - airtime
	busy := start < ch.rxBusyUntil[to]-eps
	if now > ch.rxBusyUntil[to] {
		ch.rxBusyUntil[to] = now
	}
	if busy {
		ch.stats.Collisions++
	}
	return busy
}

// SetHandler installs the frame delivery upcall. It must be set before any
// transmission.
func (ch *Channel) SetHandler(h Handler) { ch.handler = h }

// SetDropHandler installs the lost-frame observer (may be nil).
func (ch *Channel) SetDropHandler(h DropHandler) { ch.onDrop = h }

// DisableRecycling turns off the delivery-box freelist; the NoPooling
// reference path uses it so the pooled path can be proven equivalent to
// a fresh-allocation run.
func (ch *Channel) DisableRecycling() {
	ch.noRecycle = true
	ch.freeDeliveries = nil
}

// NoteTopologyChange must be called whenever node liveness changes
// (crash, quit, revive): it invalidates every cached planarization even
// when the clock — and so the position epoch — has not moved.
func (ch *Channel) NoteTopologyChange() { ch.topoGen++ }

// PlanarKey identifies an instant of the connectivity graph: the
// position epoch (bumped when the clock moves) plus the topology
// generation (bumped on liveness changes). Two queries under the same
// key see identical neighbor sets, so planarizations may be reused.
type PlanarKey struct {
	Epoch uint64
	Topo  uint64
}

// PlanarKey returns the current planarization-validity key.
func (ch *Channel) PlanarKey() PlanarKey {
	ch.syncEpoch()
	return PlanarKey{Epoch: ch.epoch, Topo: ch.topoGen}
}

// delivery carries one scheduled reception from send to fire time. The
// box is recycled through the channel's freelist before the handler
// runs, so a handler that transmits reuses the box it arrived in.
type delivery struct {
	ch  *Channel
	to  NodeID
	f   Frame
	air float64
}

// fireDelivery is the AtCtx trampoline for scheduled receptions: a plain
// function pointer, so scheduling a delivery allocates no closure.
func fireDelivery(x any) { x.(*delivery).fire() }

func (ch *Channel) takeDelivery() *delivery {
	if n := len(ch.freeDeliveries); n > 0 {
		d := ch.freeDeliveries[n-1]
		ch.freeDeliveries[n-1] = nil
		ch.freeDeliveries = ch.freeDeliveries[:n-1]
		return d
	}
	return &delivery{ch: ch}
}

func (ch *Channel) recycleDelivery(d *delivery) {
	d.f = Frame{} // never pin a payload from the freelist
	if !ch.noRecycle {
		ch.freeDeliveries = append(ch.freeDeliveries, d)
	}
}

// scheduleDelivery books one reception for `to` after `delay`. The
// delivery event executes under the receiver's context, so a sharded
// run can route it to the receiver's shard. It reports whether the
// reception stayed on this channel (false: parked in the outbox for a
// remote shard — for broadcasts, with a deep-copied payload, since the
// local receivers share the original by reference count).
func (ch *Channel) scheduleDelivery(delay float64, to NodeID, f Frame, air float64) bool {
	if ch.shardOf != nil && ch.shardOf[to] != ch.selfShard {
		if f.Broadcast && ch.clonePayload != nil {
			f.Payload = ch.clonePayload(f.Payload)
		}
		creator, cseq := ch.sched.ReserveKey()
		ch.outbox = append(ch.outbox, RemoteDelivery{
			At: ch.sched.Now() + delay, To: to, F: f, Air: air,
			Creator: creator, Cseq: cseq,
		})
		return false
	}
	ch.inFlight++
	d := ch.takeDelivery()
	d.to, d.f, d.air = to, f, air
	ch.sched.AfterCtxAs(delay, fireDelivery, d, int(to))
	return true
}

// RemoteDelivery is a reception crossing shards: everything the
// receiver's channel needs to schedule it, plus the canonical event key
// reserved on the sender's scheduler — so the delivery event sorts
// exactly where the sequential run would have placed it.
type RemoteDelivery struct {
	At      float64
	To      NodeID
	F       Frame
	Air     float64
	Creator int32
	Cseq    uint64
}

// EnableSharding puts the channel in sharded mode: deliveries to nodes
// whose shardOf entry differs from self are parked in the outbox
// instead of scheduled. clonePayload (may be nil) deep-copies broadcast
// payloads that cross shards.
func (ch *Channel) EnableSharding(shardOf []int32, self int32, clonePayload func(any) any) {
	ch.shardOf = shardOf
	ch.selfShard = self
	ch.clonePayload = clonePayload
}

// OutboxLen reports how many cross-shard deliveries are parked. Shard
// workers read it at the end of a window to tell the coordinator
// whether a flush round is needed before the next window.
func (ch *Channel) OutboxLen() int { return len(ch.outbox) }

// Outbox exposes the parked cross-shard deliveries for a flush. The
// view is valid until the next transmission on this channel; the
// caller consumes it and then calls ResetOutbox. Only the parallel
// runner touches it, at barriers.
func (ch *Channel) Outbox() []RemoteDelivery { return ch.outbox }

// ResetOutbox empties the outbox while retaining the backing array, so
// steady-state window exchange parks entries into already-owned
// storage instead of growing a fresh slice every flush. Entries are
// zeroed first: a retained array must never pin a delivered payload.
// The NoPooling reference path releases the array instead, keeping its
// allocation behavior honest.
func (ch *Channel) ResetOutbox() {
	if ch.noRecycle {
		ch.outbox = nil
		return
	}
	for i := range ch.outbox {
		ch.outbox[i] = RemoteDelivery{}
	}
	ch.outbox = ch.outbox[:0]
}

// Inject schedules a reception that was sent from another shard. The
// barrier protocol guarantees rd.At is not in this shard's past.
func (ch *Channel) Inject(rd RemoteDelivery) {
	ch.inFlight++
	d := ch.takeDelivery()
	d.to, d.f, d.air = rd.To, rd.F, rd.Air
	ch.sched.InjectAtCtx(rd.At, fireDelivery, d, int(rd.To), rd.Creator, rd.Cseq)
}

// Lookahead returns the conservative horizon width for sharded runs:
// no transmission can affect another node sooner than the minimum
// frame service time (zero-payload airtime plus propagation). The
// safety margin absorbs floating-point rounding in `now + delay`
// arrival arithmetic, keeping every cross-shard arrival provably at or
// beyond the horizon.
func (c Config) Lookahead() float64 {
	minAir := c.MACOverhead + float64(c.HeaderBytes)*8/c.Bandwidth
	return minAir + c.Propagation - 1e-9
}

// fire resolves a reception at its delivery time, preserving the exact
// order of the pre-pooling closure: alive check first (collided is not
// consulted for dead receivers — their radio is off, not garbled), then
// the collision model, then the handler. Dropped frames are reported to
// the drop handler so payload ownership is settled exactly once.
func (d *delivery) fire() {
	ch, to, f, air := d.ch, d.to, d.f, d.air
	ch.recycleDelivery(d)
	ch.inFlight--
	if !ch.alive(to) {
		ch.stats.DeadDrops++
		if ch.onDrop != nil {
			ch.onDrop(to, f)
		}
		return
	}
	if ch.collided(to, air) {
		if ch.onDrop != nil {
			ch.onDrop(to, f)
		}
		return
	}
	ch.stats.Handled++
	ch.handler(to, f)
}

// SetAlive installs a liveness predicate; dead nodes neither transmit nor
// receive (nor pay energy).
func (ch *Channel) SetAlive(f func(NodeID) bool) {
	if f == nil {
		f = func(NodeID) bool { return true }
	}
	ch.alive = f
}

// Config returns the channel parameters.
func (ch *Channel) Config() Config { return ch.cfg }

// Stats returns a snapshot of the channel counters.
func (ch *Channel) Stats() Stats { return ch.stats }

// InFlight returns the number of receptions scheduled but not yet
// resolved. At any instant the channel satisfies the conservation law
// Deliveries == Handled + Collisions + DeadDrops + InFlight; the
// invariant checker asserts it every sweep.
func (ch *Channel) InFlight() uint64 { return ch.inFlight }

// N returns the number of nodes.
func (ch *Channel) N() int { return ch.mob.Len() }

// Position returns a node's current location (epoch-cached: the mobility
// model is consulted at most once per node per event time).
func (ch *Channel) Position(id NodeID) geo.Point {
	return ch.position(int(id))
}

// ObservedPosition returns a node's position as its neighbors currently
// know it: the true position under perfect knowledge, or the position at
// the node's most recent beacon when beaconing is on.
func (ch *Channel) ObservedPosition(id NodeID) geo.Point {
	if ch.beaconAt == nil {
		return ch.position(int(id))
	}
	now := ch.sched.Now()
	if ch.beaconAt[id] < 0 || now-ch.beaconAt[id] >= ch.cfg.BeaconInterval {
		ch.refreshBeacon(int(id), now)
	}
	return ch.beaconPos[id]
}

// refreshBeacon records node i's current position as its newest beacon
// and tells the spatial index (which holds observed positions in beacon
// mode) when the node crossed a cell boundary.
func (ch *Channel) refreshBeacon(i int, now float64) {
	p := ch.position(i)
	if ch.grid != nil {
		// The grid addresses cells implicitly: the node's old cell is
		// recomputed from the beacon position being replaced, so the old
		// value must be read before the overwrite below.
		ch.grid.noteMove(ch.beaconPos[i], p)
	}
	ch.beaconPos[i] = p
	ch.beaconAt[i] = now
}

// refreshStaleBeacons refreshes the beacon of every live node whose last
// beacon is at least one interval old. GPSR beacons are time-driven, so
// this runs at the start of every neighbor query regardless of which
// nodes the query will touch — it is what keeps stale-beacon membership
// identical between the grid index and the linear reference scan.
func (ch *Channel) refreshStaleBeacons() {
	if ch.beaconAt == nil {
		return
	}
	now := ch.sched.Now()
	for i := range ch.beaconAt {
		if !ch.alive(NodeID(i)) {
			continue
		}
		if ch.beaconAt[i] < 0 || now-ch.beaconAt[i] >= ch.cfg.BeaconInterval {
			ch.refreshBeacon(i, now)
		}
	}
}

// Neighbor describes one node within radio range.
type Neighbor struct {
	ID  NodeID
	Pos geo.Point
}

// Neighbors returns all live nodes within range of id (excluding id),
// sorted by NodeID, with the positions id knows for them — the GPSR
// "location table" a real implementation maintains via beacons. With a
// beacon interval configured, both membership and positions reflect the
// last beacon, so routing decisions work on stale data while physical
// delivery does not.
//
// The returned slice is a reusable buffer owned by the Channel: it is
// valid only until the next Neighbors, Broadcast, Unicast or
// ConnectedComponent call. Copy it to retain it.
func (ch *Channel) Neighbors(id NodeID) []Neighbor {
	ch.refreshStaleBeacons()
	self := ch.position(int(id))
	buf := ch.nbrBuf[:0]
	if ch.grid != nil {
		ch.ensureGrid()
		buf = ch.appendGridNeighbors(buf, id, self)
	} else {
		buf = ch.appendLinearNeighbors(buf, id, self)
	}
	ch.nbrBuf = buf
	return buf
}

// appendLinearNeighbors is the retained O(N) reference scan. It computes
// every node's position (through the epoch cache) even for dead nodes so
// that its mobility access pattern matches a grid rebuild at the same
// instant — part of the bit-identical contract between the two paths.
func (ch *Channel) appendLinearNeighbors(buf []Neighbor, id NodeID, self geo.Point) []Neighbor {
	r2 := ch.cfg.Range * ch.cfg.Range
	for i := 0; i < ch.mob.Len(); i++ {
		if i == int(id) {
			continue
		}
		p := ch.observedCached(i)
		if !ch.alive(NodeID(i)) {
			continue
		}
		if self.Dist2(p) <= r2 {
			buf = append(buf, Neighbor{ID: NodeID(i), Pos: p})
		}
	}
	return buf
}

// InRange reports whether b is currently within a's radio range.
func (ch *Channel) InRange(a, b NodeID) bool {
	pa := ch.position(int(a))
	pb := ch.position(int(b))
	return pa.Dist2(pb) <= ch.cfg.Range*ch.cfg.Range
}

// airtime returns the transmission duration for a frame of the given
// payload size in bytes.
func (ch *Channel) airtime(size int) float64 {
	bits := float64(size+ch.cfg.HeaderBytes) * 8
	return ch.cfg.MACOverhead + bits/ch.cfg.Bandwidth
}

// txDelay serializes transmissions per sender: a frame enters the air once
// the sender's previous frame has left it. It returns the delay from now
// until the frame has fully left the sender.
func (ch *Channel) txDelay(from NodeID, size int) float64 {
	now := ch.sched.Now()
	start := now
	if ch.txBusyUntil[from] > start {
		start = ch.txBusyUntil[from]
	}
	end := start + ch.airtime(size)
	ch.txBusyUntil[from] = end
	return end - now
}

func (ch *Channel) lost(from NodeID) bool {
	return ch.cfg.LossRate > 0 && ch.loss[from].Float64() < ch.cfg.LossRate
}

// Broadcast transmits a frame to every live node within range of the
// sender. The sender is charged broadcast-send energy; every receiver is
// charged broadcast-receive. Returns the number of nodes the frame was
// delivered to.
func (ch *Channel) Broadcast(from NodeID, size int, payload any) int {
	if ch.handler == nil {
		panic("radio: Broadcast before SetHandler")
	}
	if !ch.alive(from) {
		return 0
	}
	onAir := size + ch.cfg.HeaderBytes
	ch.stats.BroadcastFrames++
	ch.stats.BytesOnAir += uint64(onAir)
	if ch.meter != nil {
		ch.meter.Charge(int(from), energy.BroadcastSend, onAir)
	}
	delay := ch.txDelay(from, size) + ch.cfg.Propagation
	f := Frame{From: from, Broadcast: true, Size: onAir, Payload: payload}
	delivered := 0
	for _, nb := range ch.Neighbors(from) {
		if ch.meter != nil {
			ch.meter.Charge(int(nb.ID), energy.BroadcastRecv, onAir)
		}
		if ch.lost(from) {
			ch.stats.Drops++
			continue
		}
		ch.stats.Deliveries++
		// In sharded mode only same-shard receivers count toward the
		// return value: they share the payload by reference, while
		// remote receivers got an owned deep copy via the outbox.
		if ch.scheduleDelivery(delay, nb.ID, f, ch.airtime(size)) {
			delivered++
		}
	}
	return delivered
}

// Unicast transmits a frame to a specific neighbor. It returns false
// without transmitting when the destination is out of range or dead — the
// caller (routing layer) must then pick another hop. Overhearing nodes in
// the sender's range pay the discard cost.
func (ch *Channel) Unicast(from, to NodeID, size int, payload any) bool {
	if ch.handler == nil {
		panic("radio: Unicast before SetHandler")
	}
	if !ch.alive(from) {
		return false
	}
	if !ch.alive(to) || !ch.InRange(from, to) {
		ch.stats.Undeliverable++
		return false
	}
	onAir := size + ch.cfg.HeaderBytes
	ch.stats.UnicastFrames++
	ch.stats.BytesOnAir += uint64(onAir)
	if ch.meter != nil {
		ch.meter.Charge(int(from), energy.P2PSend, onAir)
		for _, nb := range ch.Neighbors(from) {
			if nb.ID == to {
				ch.meter.Charge(int(nb.ID), energy.P2PRecv, onAir)
			} else {
				ch.meter.Charge(int(nb.ID), energy.Discard, onAir)
			}
		}
	}
	if ch.lost(from) {
		ch.stats.Drops++
		// The frame was sent; it just never arrived. Ownership of the
		// payload transferred to the channel on send, so settle it now.
		if ch.onDrop != nil {
			ch.onDrop(to, Frame{From: from, To: to, Size: onAir, Payload: payload})
		}
		return true
	}
	delay := ch.txDelay(from, size) + ch.cfg.Propagation
	f := Frame{From: from, To: to, Size: onAir, Payload: payload}
	ch.stats.Deliveries++
	ch.scheduleDelivery(delay, to, f, ch.airtime(size))
	return true
}

// ConnectedComponent returns the set of node IDs reachable from start in
// the current unit-disk graph, including start itself. Used by tests and
// by scenario builders that need connected topologies.
func (ch *Channel) ConnectedComponent(start NodeID) map[NodeID]bool {
	seen := map[NodeID]bool{start: true}
	queue := []NodeID{start}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range ch.Neighbors(cur) {
			if !seen[nb.ID] {
				seen[nb.ID] = true
				queue = append(queue, nb.ID)
			}
		}
	}
	return seen
}
