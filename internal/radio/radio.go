// Package radio models the wireless channel: a unit-disk connectivity
// graph over the mobility model's positions, per-node transmit
// serialization (one frame in the air per sender at a time), airtime and
// MAC-overhead delays, optional frame loss, and energy accounting through
// the Feeney model in internal/energy.
//
// The model is deliberately simpler than a packet-level 802.11 PHY — no
// carrier sense across nodes, no collisions — because the paper's metrics
// depend on hop counts, broadcast fan-out and per-message energy, all of
// which the unit-disk abstraction captures. The MAC overhead constant
// absorbs average channel-access cost; the energy model's per-class
// coefficients absorb RTS/CTS/ACK asymmetries.
package radio

import (
	"fmt"
	"math/rand"

	"precinct/internal/energy"
	"precinct/internal/geo"
	"precinct/internal/mobility"
	"precinct/internal/sim"
)

// NodeID indexes a node. IDs are dense, 0..N-1.
type NodeID int

// Frame is one transmission. Payload is opaque to the channel.
type Frame struct {
	From      NodeID
	To        NodeID // meaningful only for unicast frames
	Broadcast bool
	Size      int // bytes on the air, including protocol headers
	Payload   any
}

// Handler receives frames delivered to a node. `at` is the delivery time.
type Handler func(to NodeID, f Frame)

// Config parameterizes the channel.
type Config struct {
	Range     float64 // transmission range in meters (paper: 250)
	Bandwidth float64 // bits per second (paper: 11 Mb/s)
	// MACOverhead is the fixed per-frame channel-access delay in
	// seconds, covering contention, backoff and MAC negotiation on
	// average.
	MACOverhead float64
	// Propagation is the one-hop propagation delay in seconds.
	Propagation float64
	// LossRate drops each delivery independently with this probability.
	LossRate float64
	// HeaderBytes is added to every frame's payload size on the air.
	HeaderBytes int
	// BeaconInterval, when positive, makes neighbor tables stale: a
	// node's position is observed by others only every BeaconInterval
	// seconds (as GPSR's periodic beacons would), while actual frame
	// delivery still uses true positions. Zero gives perfect location
	// knowledge.
	BeaconInterval float64
	// Collisions enables receiver-side collision losses: a frame whose
	// reception overlaps another frame's reception at the same node is
	// dropped. This is the cheapest interference model that makes
	// broadcast storms self-damaging the way a shared 802.11 channel
	// does.
	Collisions bool
}

// DefaultConfig mirrors the paper's radio parameters.
func DefaultConfig() Config {
	return Config{
		Range:       250,
		Bandwidth:   11e6,
		MACOverhead: 0.5e-3,
		Propagation: 1e-6,
		LossRate:    0,
		HeaderBytes: 64,
	}
}

// Validate checks configuration sanity.
func (c Config) Validate() error {
	if c.Range <= 0 {
		return fmt.Errorf("radio: range must be positive, got %v", c.Range)
	}
	if c.Bandwidth <= 0 {
		return fmt.Errorf("radio: bandwidth must be positive, got %v", c.Bandwidth)
	}
	if c.MACOverhead < 0 || c.Propagation < 0 {
		return fmt.Errorf("radio: negative delay constants")
	}
	if c.LossRate < 0 || c.LossRate >= 1 {
		return fmt.Errorf("radio: loss rate must be in [0, 1), got %v", c.LossRate)
	}
	if c.HeaderBytes < 0 {
		return fmt.Errorf("radio: negative header size")
	}
	if c.BeaconInterval < 0 {
		return fmt.Errorf("radio: negative beacon interval")
	}
	return nil
}

// Stats counts channel activity.
type Stats struct {
	BroadcastFrames uint64
	UnicastFrames   uint64
	Deliveries      uint64
	Drops           uint64 // lost to injected loss
	Collisions      uint64 // lost to overlapping receptions
	Undeliverable   uint64 // unicast to a node out of range
	BytesOnAir      uint64
}

// Channel is the shared medium. One Channel serves one simulation run and
// is not safe for concurrent use.
type Channel struct {
	cfg     Config
	sched   *sim.Scheduler
	mob     mobility.Model
	meter   *energy.Meter
	handler Handler
	alive   func(NodeID) bool
	rng     *rand.Rand

	txBusyUntil []float64
	rxBusyUntil []float64
	beaconPos   []geo.Point
	beaconAt    []float64
	stats       Stats
}

// New creates a channel over the mobility model. The meter may be nil to
// disable energy accounting. lossRNG is only consulted when LossRate > 0.
func New(cfg Config, sched *sim.Scheduler, mob mobility.Model, meter *energy.Meter, lossRNG *rand.Rand) (*Channel, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if sched == nil || mob == nil {
		return nil, fmt.Errorf("radio: scheduler and mobility model are required")
	}
	if cfg.LossRate > 0 && lossRNG == nil {
		return nil, fmt.Errorf("radio: loss injection requires an RNG stream")
	}
	ch := &Channel{
		cfg:         cfg,
		sched:       sched,
		mob:         mob,
		meter:       meter,
		rng:         lossRNG,
		alive:       func(NodeID) bool { return true },
		txBusyUntil: make([]float64, mob.Len()),
	}
	if cfg.BeaconInterval > 0 {
		ch.beaconPos = make([]geo.Point, mob.Len())
		ch.beaconAt = make([]float64, mob.Len())
		for i := range ch.beaconAt {
			ch.beaconAt[i] = -1
		}
	}
	if cfg.Collisions {
		ch.rxBusyUntil = make([]float64, mob.Len())
	}
	return ch, nil
}

// collided applies the receiver-side collision model at delivery time.
// Delivery events fire when a reception *completes*, so the frame
// occupied the receiver over [now-airtime, now]; it is lost when that
// window overlaps an earlier reception. The medium stays garbled for the
// union of the windows either way.
func (ch *Channel) collided(to NodeID, airtime float64) bool {
	if ch.rxBusyUntil == nil {
		return false
	}
	const eps = 1e-9
	now := ch.sched.Now()
	start := now - airtime
	busy := start < ch.rxBusyUntil[to]-eps
	if now > ch.rxBusyUntil[to] {
		ch.rxBusyUntil[to] = now
	}
	if busy {
		ch.stats.Collisions++
	}
	return busy
}

// SetHandler installs the frame delivery upcall. It must be set before any
// transmission.
func (ch *Channel) SetHandler(h Handler) { ch.handler = h }

// SetAlive installs a liveness predicate; dead nodes neither transmit nor
// receive (nor pay energy).
func (ch *Channel) SetAlive(f func(NodeID) bool) {
	if f == nil {
		f = func(NodeID) bool { return true }
	}
	ch.alive = f
}

// Config returns the channel parameters.
func (ch *Channel) Config() Config { return ch.cfg }

// Stats returns a snapshot of the channel counters.
func (ch *Channel) Stats() Stats { return ch.stats }

// N returns the number of nodes.
func (ch *Channel) N() int { return ch.mob.Len() }

// Position returns a node's current location.
func (ch *Channel) Position(id NodeID) geo.Point {
	return ch.mob.Position(int(id), ch.sched.Now())
}

// ObservedPosition returns a node's position as its neighbors currently
// know it: the true position under perfect knowledge, or the position at
// the node's most recent beacon when beaconing is on.
func (ch *Channel) ObservedPosition(id NodeID) geo.Point {
	if ch.beaconAt == nil {
		return ch.Position(id)
	}
	now := ch.sched.Now()
	if ch.beaconAt[id] < 0 || now-ch.beaconAt[id] >= ch.cfg.BeaconInterval {
		ch.beaconPos[id] = ch.mob.Position(int(id), now)
		ch.beaconAt[id] = now
	}
	return ch.beaconPos[id]
}

// Neighbor describes one node within radio range.
type Neighbor struct {
	ID  NodeID
	Pos geo.Point
}

// Neighbors returns all live nodes within range of id (excluding id),
// with the positions id knows for them — the GPSR "location table" a
// real implementation maintains via beacons. With a beacon interval
// configured, both membership and positions reflect the last beacon, so
// routing decisions work on stale data while physical delivery does not.
func (ch *Channel) Neighbors(id NodeID) []Neighbor {
	now := ch.sched.Now()
	self := ch.mob.Position(int(id), now)
	r2 := ch.cfg.Range * ch.cfg.Range
	var out []Neighbor
	for i := 0; i < ch.mob.Len(); i++ {
		if NodeID(i) == id || !ch.alive(NodeID(i)) {
			continue
		}
		p := ch.ObservedPosition(NodeID(i))
		if self.Dist2(p) <= r2 {
			out = append(out, Neighbor{ID: NodeID(i), Pos: p})
		}
	}
	return out
}

// InRange reports whether b is currently within a's radio range.
func (ch *Channel) InRange(a, b NodeID) bool {
	now := ch.sched.Now()
	pa := ch.mob.Position(int(a), now)
	pb := ch.mob.Position(int(b), now)
	return pa.Dist2(pb) <= ch.cfg.Range*ch.cfg.Range
}

// airtime returns the transmission duration for a frame of the given
// payload size in bytes.
func (ch *Channel) airtime(size int) float64 {
	bits := float64(size+ch.cfg.HeaderBytes) * 8
	return ch.cfg.MACOverhead + bits/ch.cfg.Bandwidth
}

// txDelay serializes transmissions per sender: a frame enters the air once
// the sender's previous frame has left it. It returns the delay from now
// until the frame has fully left the sender.
func (ch *Channel) txDelay(from NodeID, size int) float64 {
	now := ch.sched.Now()
	start := now
	if ch.txBusyUntil[from] > start {
		start = ch.txBusyUntil[from]
	}
	end := start + ch.airtime(size)
	ch.txBusyUntil[from] = end
	return end - now
}

func (ch *Channel) lost() bool {
	return ch.cfg.LossRate > 0 && ch.rng.Float64() < ch.cfg.LossRate
}

// Broadcast transmits a frame to every live node within range of the
// sender. The sender is charged broadcast-send energy; every receiver is
// charged broadcast-receive. Returns the number of nodes the frame was
// delivered to.
func (ch *Channel) Broadcast(from NodeID, size int, payload any) int {
	if ch.handler == nil {
		panic("radio: Broadcast before SetHandler")
	}
	if !ch.alive(from) {
		return 0
	}
	onAir := size + ch.cfg.HeaderBytes
	ch.stats.BroadcastFrames++
	ch.stats.BytesOnAir += uint64(onAir)
	if ch.meter != nil {
		ch.meter.Charge(int(from), energy.BroadcastSend, onAir)
	}
	delay := ch.txDelay(from, size) + ch.cfg.Propagation
	f := Frame{From: from, Broadcast: true, Size: onAir, Payload: payload}
	delivered := 0
	for _, nb := range ch.Neighbors(from) {
		if ch.meter != nil {
			ch.meter.Charge(int(nb.ID), energy.BroadcastRecv, onAir)
		}
		if ch.lost() {
			ch.stats.Drops++
			continue
		}
		delivered++
		ch.stats.Deliveries++
		to := nb.ID
		air := ch.airtime(size)
		ch.sched.After(delay, func() {
			if ch.alive(to) && !ch.collided(to, air) {
				ch.handler(to, f)
			}
		})
	}
	return delivered
}

// Unicast transmits a frame to a specific neighbor. It returns false
// without transmitting when the destination is out of range or dead — the
// caller (routing layer) must then pick another hop. Overhearing nodes in
// the sender's range pay the discard cost.
func (ch *Channel) Unicast(from, to NodeID, size int, payload any) bool {
	if ch.handler == nil {
		panic("radio: Unicast before SetHandler")
	}
	if !ch.alive(from) {
		return false
	}
	if !ch.alive(to) || !ch.InRange(from, to) {
		ch.stats.Undeliverable++
		return false
	}
	onAir := size + ch.cfg.HeaderBytes
	ch.stats.UnicastFrames++
	ch.stats.BytesOnAir += uint64(onAir)
	if ch.meter != nil {
		ch.meter.Charge(int(from), energy.P2PSend, onAir)
		for _, nb := range ch.Neighbors(from) {
			if nb.ID == to {
				ch.meter.Charge(int(nb.ID), energy.P2PRecv, onAir)
			} else {
				ch.meter.Charge(int(nb.ID), energy.Discard, onAir)
			}
		}
	}
	if ch.lost() {
		ch.stats.Drops++
		return true // the frame was sent; it just never arrived
	}
	delay := ch.txDelay(from, size) + ch.cfg.Propagation
	f := Frame{From: from, To: to, Size: onAir, Payload: payload}
	ch.stats.Deliveries++
	air := ch.airtime(size)
	ch.sched.After(delay, func() {
		if ch.alive(to) && !ch.collided(to, air) {
			ch.handler(to, f)
		}
	})
	return true
}

// ConnectedComponent returns the set of node IDs reachable from start in
// the current unit-disk graph, including start itself. Used by tests and
// by scenario builders that need connected topologies.
func (ch *Channel) ConnectedComponent(start NodeID) map[NodeID]bool {
	seen := map[NodeID]bool{start: true}
	queue := []NodeID{start}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range ch.Neighbors(cur) {
			if !seen[nb.ID] {
				seen[nb.ID] = true
				queue = append(queue, nb.ID)
			}
		}
	}
	return seen
}
