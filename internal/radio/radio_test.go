package radio

import (
	"math"
	"math/rand"
	"testing"

	"precinct/internal/energy"
	"precinct/internal/geo"
	"precinct/internal/mobility"
	"precinct/internal/sim"
)

// lineTopology places n nodes on a horizontal line with the given spacing.
func lineTopology(t *testing.T, n int, spacing float64) *mobility.Static {
	t.Helper()
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Pt(float64(i)*spacing, 0)
	}
	s, err := mobility.NewStatic(pts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// perSenderLoss builds one loss RNG stream per sender, as radio.New
// requires when LossRate > 0.
func perSenderLoss(n int, seed int64) []*rand.Rand {
	out := make([]*rand.Rand, n)
	for i := range out {
		out[i] = rand.New(rand.NewSource(seed + int64(i)))
	}
	return out
}

func newChannel(t *testing.T, cfg Config, mob mobility.Model, withMeter bool) (*Channel, *sim.Scheduler, *energy.Meter) {
	t.Helper()
	sched := sim.NewScheduler()
	var meter *energy.Meter
	if withMeter {
		var err error
		meter, err = energy.NewMeter(mob.Len(), energy.DefaultModel())
		if err != nil {
			t.Fatal(err)
		}
	}
	ch, err := New(cfg, sched, mob, meter, perSenderLoss(mob.Len(), 1))
	if err != nil {
		t.Fatal(err)
	}
	return ch, sched, meter
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Range = 0 },
		func(c *Config) { c.Bandwidth = -1 },
		func(c *Config) { c.MACOverhead = -1 },
		func(c *Config) { c.Propagation = -0.5 },
		func(c *Config) { c.LossRate = 1 },
		func(c *Config) { c.LossRate = -0.1 },
		func(c *Config) { c.HeaderBytes = -1 },
	}
	for i, mutate := range bad {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestNewValidation(t *testing.T) {
	mob := lineTopology(t, 2, 100)
	if _, err := New(DefaultConfig(), nil, mob, nil, nil); err == nil {
		t.Error("nil scheduler accepted")
	}
	if _, err := New(DefaultConfig(), sim.NewScheduler(), nil, nil, nil); err == nil {
		t.Error("nil mobility accepted")
	}
	lossy := DefaultConfig()
	lossy.LossRate = 0.5
	if _, err := New(lossy, sim.NewScheduler(), mob, nil, nil); err == nil {
		t.Error("lossy channel without RNG accepted")
	}
}

func TestNeighborsUnitDisk(t *testing.T) {
	// Nodes at x = 0, 200, 400, 800 with range 250.
	pts := []geo.Point{geo.Pt(0, 0), geo.Pt(200, 0), geo.Pt(400, 0), geo.Pt(800, 0)}
	mob, _ := mobility.NewStatic(pts)
	cfg := DefaultConfig()
	ch, _, _ := newChannel(t, cfg, mob, false)

	nbs := ch.Neighbors(0)
	if len(nbs) != 1 || nbs[0].ID != 1 {
		t.Fatalf("Neighbors(0) = %v, want just node 1", nbs)
	}
	nbs = ch.Neighbors(1)
	if len(nbs) != 2 {
		t.Fatalf("Neighbors(1) = %v, want nodes 0 and 2", nbs)
	}
	if got := ch.Neighbors(3); len(got) != 0 {
		t.Fatalf("isolated node has neighbors: %v", got)
	}
	if !ch.InRange(0, 1) || ch.InRange(0, 2) {
		t.Error("InRange disagrees with Neighbors")
	}
}

func TestNeighborsExcludeDead(t *testing.T) {
	mob := lineTopology(t, 3, 100)
	ch, _, _ := newChannel(t, DefaultConfig(), mob, false)
	ch.SetAlive(func(id NodeID) bool { return id != 1 })
	for _, nb := range ch.Neighbors(0) {
		if nb.ID == 1 {
			t.Fatal("dead node listed as neighbor")
		}
	}
}

func TestBroadcastDelivery(t *testing.T) {
	mob := lineTopology(t, 4, 100) // range 250: node 1 hears 0,2,3? distances 100,100,200 -> all
	ch, sched, _ := newChannel(t, DefaultConfig(), mob, false)
	var got []NodeID
	ch.SetHandler(func(to NodeID, f Frame) {
		if !f.Broadcast || f.From != 1 {
			t.Errorf("frame fields wrong: %+v", f)
		}
		got = append(got, to)
	})
	n := ch.Broadcast(1, 1000, "hello")
	sched.RunAll()
	if n != 3 || len(got) != 3 {
		t.Fatalf("delivered to %d nodes (%v), want 3", n, got)
	}
}

func TestBroadcastFromDeadNode(t *testing.T) {
	mob := lineTopology(t, 2, 100)
	ch, sched, _ := newChannel(t, DefaultConfig(), mob, false)
	ch.SetHandler(func(NodeID, Frame) { t.Fatal("unexpected delivery") })
	ch.SetAlive(func(id NodeID) bool { return id != 0 })
	if n := ch.Broadcast(0, 100, nil); n != 0 {
		t.Fatalf("dead node broadcast delivered to %d", n)
	}
	sched.RunAll()
}

func TestUnicastDelivery(t *testing.T) {
	mob := lineTopology(t, 3, 200)
	ch, sched, _ := newChannel(t, DefaultConfig(), mob, false)
	var frames []Frame
	ch.SetHandler(func(to NodeID, f Frame) {
		if to != 1 {
			t.Errorf("delivered to %d, want 1", to)
		}
		frames = append(frames, f)
	})
	if !ch.Unicast(0, 1, 500, "x") {
		t.Fatal("in-range unicast returned false")
	}
	sched.RunAll()
	if len(frames) != 1 {
		t.Fatalf("got %d frames, want 1", len(frames))
	}
	if frames[0].Payload.(string) != "x" {
		t.Error("payload mangled")
	}
}

func TestUnicastOutOfRange(t *testing.T) {
	mob := lineTopology(t, 2, 500)
	ch, sched, _ := newChannel(t, DefaultConfig(), mob, false)
	ch.SetHandler(func(NodeID, Frame) { t.Fatal("unexpected delivery") })
	if ch.Unicast(0, 1, 100, nil) {
		t.Fatal("out-of-range unicast returned true")
	}
	if ch.Stats().Undeliverable != 1 {
		t.Error("undeliverable counter not bumped")
	}
	sched.RunAll()
}

func TestUnicastToDeadNode(t *testing.T) {
	mob := lineTopology(t, 2, 100)
	ch, sched, _ := newChannel(t, DefaultConfig(), mob, false)
	ch.SetHandler(func(NodeID, Frame) { t.Fatal("unexpected delivery") })
	ch.SetAlive(func(id NodeID) bool { return id != 1 })
	if ch.Unicast(0, 1, 100, nil) {
		t.Fatal("unicast to dead node returned true")
	}
	sched.RunAll()
}

func TestDeliveryDelayIncludesAirtime(t *testing.T) {
	mob := lineTopology(t, 2, 100)
	cfg := DefaultConfig()
	cfg.MACOverhead = 0.001
	cfg.Bandwidth = 1e6 // 1 Mb/s so airtime is visible
	cfg.HeaderBytes = 0
	ch, sched, _ := newChannel(t, cfg, mob, false)
	var at float64 = -1
	ch.SetHandler(func(to NodeID, f Frame) { at = sched.Now() })
	ch.Unicast(0, 1, 1250, nil) // 10000 bits / 1 Mb/s = 10 ms
	sched.RunAll()
	want := 0.001 + 0.01 + cfg.Propagation
	if math.Abs(at-want) > 1e-9 {
		t.Fatalf("delivery at %v, want %v", at, want)
	}
}

func TestTransmitSerialization(t *testing.T) {
	// Two back-to-back unicasts from the same node must not overlap on
	// the air: second delivery happens one full airtime after the first.
	mob := lineTopology(t, 2, 100)
	cfg := DefaultConfig()
	cfg.MACOverhead = 0
	cfg.Propagation = 0
	cfg.Bandwidth = 1e6
	cfg.HeaderBytes = 0
	ch, sched, _ := newChannel(t, cfg, mob, false)
	var times []float64
	ch.SetHandler(func(NodeID, Frame) { times = append(times, sched.Now()) })
	ch.Unicast(0, 1, 1250, nil) // 10 ms airtime
	ch.Unicast(0, 1, 1250, nil)
	sched.RunAll()
	if len(times) != 2 {
		t.Fatalf("got %d deliveries", len(times))
	}
	if math.Abs(times[0]-0.01) > 1e-9 || math.Abs(times[1]-0.02) > 1e-9 {
		t.Fatalf("delivery times %v, want [0.01, 0.02]", times)
	}
}

func TestBroadcastEnergyAccounting(t *testing.T) {
	mob := lineTopology(t, 3, 100) // node 1 in middle; bcast from 1 reaches 0 and 2
	cfg := DefaultConfig()
	ch, sched, meter := newChannel(t, cfg, mob, true)
	ch.SetHandler(func(NodeID, Frame) {})
	const payload = 1000
	onAir := payload + cfg.HeaderBytes
	ch.Broadcast(1, payload, nil)
	sched.RunAll()

	m := energy.DefaultModel()
	wantSender := m.BroadcastSend.Cost(onAir)
	wantRecv := m.BroadcastRecv.Cost(onAir)
	if got := meter.Node(1); math.Abs(got-wantSender) > 1e-9 {
		t.Errorf("sender energy %v, want %v", got, wantSender)
	}
	if got := meter.Node(0); math.Abs(got-wantRecv) > 1e-9 {
		t.Errorf("receiver energy %v, want %v", got, wantRecv)
	}
	if got := meter.Total(); math.Abs(got-(wantSender+2*wantRecv)) > 1e-9 {
		t.Errorf("total %v, want %v", got, wantSender+2*wantRecv)
	}
}

func TestUnicastEnergyIncludesOverhearers(t *testing.T) {
	// 0 -- 1 -- 2 all mutually in range except 0-2?
	// Place 0,1,2 at 0,100,200 with range 250: all mutually in range.
	mob := lineTopology(t, 3, 100)
	cfg := DefaultConfig()
	ch, sched, meter := newChannel(t, cfg, mob, true)
	ch.SetHandler(func(NodeID, Frame) {})
	const payload = 500
	onAir := payload + cfg.HeaderBytes
	ch.Unicast(0, 1, payload, nil)
	sched.RunAll()

	m := energy.DefaultModel()
	if got := meter.Node(0); math.Abs(got-m.P2PSend.Cost(onAir)) > 1e-9 {
		t.Errorf("sender energy %v", got)
	}
	if got := meter.Node(1); math.Abs(got-m.P2PRecv.Cost(onAir)) > 1e-9 {
		t.Errorf("addressee energy %v", got)
	}
	// Node 2 overhears and discards.
	if got := meter.Node(2); math.Abs(got-m.Discard.Cost(onAir)) > 1e-9 {
		t.Errorf("overhearer energy %v, want discard cost %v", got, m.Discard.Cost(onAir))
	}
}

func TestLossInjection(t *testing.T) {
	mob := lineTopology(t, 2, 100)
	cfg := DefaultConfig()
	cfg.LossRate = 0.5
	sched := sim.NewScheduler()
	ch, err := New(cfg, sched, mob, nil, perSenderLoss(mob.Len(), 7))
	if err != nil {
		t.Fatal(err)
	}
	delivered := 0
	ch.SetHandler(func(NodeID, Frame) { delivered++ })
	const n = 2000
	for i := 0; i < n; i++ {
		ch.Broadcast(0, 10, nil)
	}
	sched.RunAll()
	frac := float64(delivered) / n
	if frac < 0.4 || frac > 0.6 {
		t.Errorf("delivered fraction %v with 50%% loss", frac)
	}
	if ch.Stats().Drops == 0 {
		t.Error("drop counter not bumped")
	}
}

func TestStatsCounters(t *testing.T) {
	mob := lineTopology(t, 3, 100)
	ch, sched, _ := newChannel(t, DefaultConfig(), mob, false)
	ch.SetHandler(func(NodeID, Frame) {})
	ch.Broadcast(0, 100, nil)
	ch.Unicast(0, 1, 100, nil)
	sched.RunAll()
	st := ch.Stats()
	if st.BroadcastFrames != 1 || st.UnicastFrames != 1 {
		t.Errorf("frame counters %+v", st)
	}
	if st.BytesOnAir == 0 {
		t.Error("bytes counter not bumped")
	}
}

func TestConnectedComponent(t *testing.T) {
	// Two clusters: {0,1,2} spaced 100 apart, {3,4} far away.
	pts := []geo.Point{
		geo.Pt(0, 0), geo.Pt(100, 0), geo.Pt(200, 0),
		geo.Pt(5000, 0), geo.Pt(5100, 0),
	}
	mob, _ := mobility.NewStatic(pts)
	ch, _, _ := newChannel(t, DefaultConfig(), mob, false)
	comp := ch.ConnectedComponent(0)
	if len(comp) != 3 || !comp[0] || !comp[1] || !comp[2] {
		t.Fatalf("component of 0 = %v", comp)
	}
	comp = ch.ConnectedComponent(3)
	if len(comp) != 2 || !comp[3] || !comp[4] {
		t.Fatalf("component of 3 = %v", comp)
	}
}

func TestHandlerRequired(t *testing.T) {
	mob := lineTopology(t, 2, 100)
	ch, _, _ := newChannel(t, DefaultConfig(), mob, false)
	defer func() {
		if recover() == nil {
			t.Fatal("Broadcast without handler did not panic")
		}
	}()
	ch.Broadcast(0, 10, nil)
}

func TestDeadReceiverSkippedAtDeliveryTime(t *testing.T) {
	// A node that dies between send and delivery must not get the frame.
	mob := lineTopology(t, 2, 100)
	ch, sched, _ := newChannel(t, DefaultConfig(), mob, false)
	dead := false
	ch.SetAlive(func(id NodeID) bool { return !(dead && id == 1) })
	got := 0
	ch.SetHandler(func(NodeID, Frame) { got++ })
	ch.Unicast(0, 1, 100, nil)
	dead = true
	sched.RunAll()
	if got != 0 {
		t.Fatal("frame delivered to node that died in flight")
	}
}

func TestBeaconStaleness(t *testing.T) {
	// A moving node's observed position lags its true position by up to
	// one beacon interval.
	area := geo.NewRect(geo.Pt(0, 0), geo.Pt(1000, 1000))
	w, err := mobility.NewWaypoint(2, mobility.WaypointConfig{
		Area: area, MinSpeed: 10, MaxSpeed: 10, Pause: 0,
	}, sim.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	sched := sim.NewScheduler()
	cfg := DefaultConfig()
	cfg.BeaconInterval = 10
	ch, err := New(cfg, sched, w, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Observe at t=0: snapshot taken.
	first := ch.ObservedPosition(1)
	// Advance 5 s (within the beacon interval): observed must not move.
	sched.At(5, func() {
		if got := ch.ObservedPosition(1); !got.Equal(first) {
			t.Errorf("observed position moved within the beacon interval")
		}
		// True position has moved ~50 m.
		if ch.Position(1).Dist(first) < 10 {
			t.Errorf("true position did not move; test setup broken")
		}
	})
	// After the interval, the observation refreshes.
	sched.At(11, func() {
		if got := ch.ObservedPosition(1); got.Equal(first) {
			t.Errorf("observed position did not refresh after the interval")
		}
	})
	sched.RunAll()
}

func TestBeaconZeroIsPerfectKnowledge(t *testing.T) {
	mob := lineTopology(t, 2, 100)
	ch, _, _ := newChannel(t, DefaultConfig(), mob, false)
	if !ch.ObservedPosition(1).Equal(ch.Position(1)) {
		t.Error("without beaconing, observed position must be true position")
	}
}

func TestBeaconIntervalValidation(t *testing.T) {
	c := DefaultConfig()
	c.BeaconInterval = -1
	if err := c.Validate(); err == nil {
		t.Error("negative beacon interval accepted")
	}
}

func TestCollisionsDropOverlappingReceptions(t *testing.T) {
	// Nodes 0 and 2 both transmit to node 1 at the same instant with
	// long frames: the second delivery overlaps the first reception and
	// is lost.
	pts := []geo.Point{geo.Pt(0, 0), geo.Pt(100, 0), geo.Pt(200, 0)}
	mob, _ := mobility.NewStatic(pts)
	cfg := DefaultConfig()
	cfg.Collisions = true
	cfg.Bandwidth = 1e5 // slow link: long airtimes that surely overlap
	ch, sched, _ := newChannel(t, cfg, mob, false)
	delivered := 0
	ch.SetHandler(func(NodeID, Frame) { delivered++ })
	ch.Unicast(0, 1, 5000, nil)
	ch.Unicast(2, 1, 5000, nil)
	sched.RunAll()
	if delivered != 1 {
		t.Fatalf("delivered %d frames, want 1 (second collides)", delivered)
	}
	if ch.Stats().Collisions != 1 {
		t.Errorf("collision counter = %d", ch.Stats().Collisions)
	}
}

func TestCollisionsOffDeliverBoth(t *testing.T) {
	pts := []geo.Point{geo.Pt(0, 0), geo.Pt(100, 0), geo.Pt(200, 0)}
	mob, _ := mobility.NewStatic(pts)
	cfg := DefaultConfig()
	cfg.Bandwidth = 1e5
	ch, sched, _ := newChannel(t, cfg, mob, false)
	delivered := 0
	ch.SetHandler(func(NodeID, Frame) { delivered++ })
	ch.Unicast(0, 1, 5000, nil)
	ch.Unicast(2, 1, 5000, nil)
	sched.RunAll()
	if delivered != 2 {
		t.Fatalf("delivered %d frames, want 2 with collisions off", delivered)
	}
}

func TestCollisionsSequentialFramesSurvive(t *testing.T) {
	// The same sender's frames serialize on the air, so they arrive
	// back to back without overlapping: no collisions.
	mob := lineTopology(t, 2, 100)
	cfg := DefaultConfig()
	cfg.Collisions = true
	ch, sched, _ := newChannel(t, cfg, mob, false)
	delivered := 0
	ch.SetHandler(func(NodeID, Frame) { delivered++ })
	for i := 0; i < 5; i++ {
		ch.Unicast(0, 1, 1000, nil)
	}
	sched.RunAll()
	if delivered != 5 {
		t.Fatalf("delivered %d, want 5 (sequential frames must not collide)", delivered)
	}
}
