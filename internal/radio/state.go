package radio

// Checkpoint support. The channel's serializable state is the per-node
// transmit/receive busy horizons, the beacon observations, and the
// counters; everything else (position epoch cache, spatial grid, reusable
// buffers) is derived and rebuilds lazily on the first query after a
// restore. A snapshot is only valid when no receptions are in flight —
// delivery events carry closures and cannot be serialized — which the
// quiescent-boundary rule upstream guarantees.

import (
	"fmt"

	"precinct/internal/geo"
)

// State is the serializable state of a Channel.
type State struct {
	TxBusyUntil []float64
	// RxBusyUntil is nil exactly when the collision model is off.
	RxBusyUntil []float64
	// BeaconPos/BeaconAt are nil exactly when beaconing is off.
	BeaconPos []geo.Point
	BeaconAt  []float64
	Stats     Stats
}

// StateSnapshot captures the channel's mutable state. It fails when any
// reception is still in flight: the pending delivery closure could not
// be rebuilt, so a snapshot now would lose frames on restore.
func (ch *Channel) StateSnapshot() (State, error) {
	if ch.inFlight != 0 {
		return State{}, fmt.Errorf("radio: %d receptions in flight; not a quiescent boundary", ch.inFlight)
	}
	st := State{
		TxBusyUntil: append([]float64(nil), ch.txBusyUntil...),
		Stats:       ch.stats,
	}
	if ch.rxBusyUntil != nil {
		st.RxBusyUntil = append([]float64(nil), ch.rxBusyUntil...)
	}
	if ch.beaconPos != nil {
		st.BeaconPos = append([]geo.Point(nil), ch.beaconPos...)
		st.BeaconAt = append([]float64(nil), ch.beaconAt...)
	}
	return st, nil
}

// RestoreState overwrites the channel's mutable state, validating that
// the snapshot's shape matches this channel's configuration (node count,
// collision model, beaconing). The position cache and spatial grid are
// left unbuilt; they repopulate on the first neighbor query, which is
// safe because positions are anchored in the mobility model and do not
// depend on when they are asked for.
func (ch *Channel) RestoreState(st State) error {
	n := ch.mob.Len()
	if len(st.TxBusyUntil) != n {
		return fmt.Errorf("radio: snapshot has %d tx horizons, channel has %d nodes", len(st.TxBusyUntil), n)
	}
	if (st.RxBusyUntil != nil) != (ch.rxBusyUntil != nil) {
		return fmt.Errorf("radio: snapshot collision state (%v) does not match config (%v)",
			st.RxBusyUntil != nil, ch.rxBusyUntil != nil)
	}
	if st.RxBusyUntil != nil && len(st.RxBusyUntil) != n {
		return fmt.Errorf("radio: snapshot has %d rx horizons, channel has %d nodes", len(st.RxBusyUntil), n)
	}
	if (st.BeaconPos != nil) != (ch.beaconPos != nil) {
		return fmt.Errorf("radio: snapshot beacon state (%v) does not match config (%v)",
			st.BeaconPos != nil, ch.beaconPos != nil)
	}
	if st.BeaconPos != nil && (len(st.BeaconPos) != n || len(st.BeaconAt) != n) {
		return fmt.Errorf("radio: snapshot has %d/%d beacon entries, channel has %d nodes",
			len(st.BeaconPos), len(st.BeaconAt), n)
	}
	copy(ch.txBusyUntil, st.TxBusyUntil)
	if st.RxBusyUntil != nil {
		copy(ch.rxBusyUntil, st.RxBusyUntil)
	}
	if st.BeaconPos != nil {
		copy(ch.beaconPos, st.BeaconPos)
		copy(ch.beaconAt, st.BeaconAt)
	}
	ch.stats = st.Stats
	ch.inFlight = 0
	// Invalidate the derived caches: epochAt=-1 forces the first query to
	// miss, and an unbuilt grid rebuilds from scratch at that point.
	ch.epoch++
	ch.epochAt = -1
	if ch.grid != nil {
		ch.grid.invalidate()
	}
	return nil
}
