package radio

import (
	"fmt"
	"testing"

	"precinct/internal/mobility"
	"precinct/internal/sim"
)

// orderChannel builds a waypoint-mobility channel for the determinism
// tests; grid vs linear scan is the only difference between invocations.
func orderChannel(t *testing.T, n int, cfg Config, seed int64) (*Channel, *sim.Scheduler) {
	t.Helper()
	sched := sim.NewScheduler()
	mob, err := mobility.NewWaypoint(n, mobility.DefaultWaypointConfig(), sim.NewRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	ch, err := New(cfg, sched, mob, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return ch, sched
}

// TestNeighborsDeterministicOrder is the regression test for the neighbor
// ordering contract: under the spatial grid index, Neighbors must return
// exactly the set the retained linear scan returns, sorted by ascending
// NodeID, at every query time — including with stale beacons and dead
// nodes in play.
func TestNeighborsDeterministicOrder(t *testing.T) {
	const n = 60
	configs := map[string]func(*Config){
		"perfect-knowledge": func(*Config) {},
		"beaconed":          func(c *Config) { c.BeaconInterval = 2 },
	}
	for name, mut := range configs {
		t.Run(name, func(t *testing.T) {
			cfg := DefaultConfig()
			mut(&cfg)
			linCfg := cfg
			linCfg.LinearScan = true

			grid, gridSched := orderChannel(t, n, cfg, 42)
			lin, linSched := orderChannel(t, n, linCfg, 42)

			// Kill a few nodes mid-run on both channels.
			dead := map[NodeID]bool{}
			alive := func(id NodeID) bool { return !dead[id] }
			grid.SetAlive(alive)
			lin.SetAlive(alive)

			for step, at := range []float64{0, 1, 5, 5, 13.5, 30, 90} {
				gridSched.At(at, func() {})
				linSched.At(at, func() {})
				gridSched.Run(at)
				linSched.Run(at)
				if at == 5 {
					dead[7] = true
					dead[23] = true
				}
				for id := NodeID(0); id < n; id++ {
					g := grid.Neighbors(id)
					for i := 1; i < len(g); i++ {
						if g[i-1].ID >= g[i].ID {
							t.Fatalf("t=%v node %d: neighbors not strictly ascending by ID: %v", at, id, g)
						}
					}
					l := lin.Neighbors(id)
					if fmt.Sprint(g) != fmt.Sprint(l) {
						t.Fatalf("t=%v (step %d) node %d: grid %v != linear %v", at, step, id, g, l)
					}
					for _, nb := range g {
						if dead[nb.ID] {
							t.Fatalf("t=%v node %d: dead node %d listed as neighbor", at, id, nb.ID)
						}
					}
				}
			}
		})
	}
}

// TestNeighborsBufferReuse documents the ownership rule of the returned
// slice: it is valid only until the next Neighbors call on the channel.
func TestNeighborsBufferReuse(t *testing.T) {
	ch, _ := orderChannel(t, 30, DefaultConfig(), 7)
	a := ch.Neighbors(0)
	b := ch.Neighbors(0)
	if len(a) > 0 && &a[0] != &b[0] {
		t.Error("Neighbors did not reuse its buffer across calls")
	}
}
