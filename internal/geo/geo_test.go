package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestPointArithmetic(t *testing.T) {
	p := Pt(3, 4)
	q := Pt(1, 2)
	if got := p.Add(q); !got.Equal(Pt(4, 6)) {
		t.Errorf("Add = %v, want (4,6)", got)
	}
	if got := p.Sub(q); !got.Equal(Pt(2, 2)) {
		t.Errorf("Sub = %v, want (2,2)", got)
	}
	if got := p.Scale(2); !got.Equal(Pt(6, 8)) {
		t.Errorf("Scale = %v, want (6,8)", got)
	}
	if got := p.Norm(); !almostEqual(got, 5) {
		t.Errorf("Norm = %v, want 5", got)
	}
	if got := Pt(0, 0).Dist(p); !almostEqual(got, 5) {
		t.Errorf("Dist = %v, want 5", got)
	}
	if got := Pt(0, 0).Dist2(p); !almostEqual(got, 25) {
		t.Errorf("Dist2 = %v, want 25", got)
	}
	if got := p.Midpoint(q); !got.Equal(Pt(2, 3)) {
		t.Errorf("Midpoint = %v, want (2,3)", got)
	}
}

func TestDotAndCross(t *testing.T) {
	a := Pt(1, 0)
	b := Pt(0, 1)
	if got := a.Dot(b); got != 0 {
		t.Errorf("Dot = %v, want 0", got)
	}
	if got := a.Cross(b); got != 1 {
		t.Errorf("Cross = %v, want 1", got)
	}
	if got := b.Cross(a); got != -1 {
		t.Errorf("Cross = %v, want -1", got)
	}
}

func TestAngle(t *testing.T) {
	cases := []struct {
		from, to Point
		want     float64
	}{
		{Pt(0, 0), Pt(1, 0), 0},
		{Pt(0, 0), Pt(0, 1), math.Pi / 2},
		{Pt(0, 0), Pt(-1, 0), math.Pi},
		{Pt(0, 0), Pt(0, -1), -math.Pi / 2},
		{Pt(1, 1), Pt(2, 2), math.Pi / 4},
	}
	for _, c := range cases {
		if got := c.from.Angle(c.to); !almostEqual(got, c.want) {
			t.Errorf("Angle(%v, %v) = %v, want %v", c.from, c.to, got, c.want)
		}
	}
}

func TestRectBasics(t *testing.T) {
	r := NewRect(Pt(10, 20), Pt(0, 0))
	if !r.Min.Equal(Pt(0, 0)) || !r.Max.Equal(Pt(10, 20)) {
		t.Fatalf("NewRect did not normalize corners: %v", r)
	}
	if got := r.Width(); got != 10 {
		t.Errorf("Width = %v, want 10", got)
	}
	if got := r.Height(); got != 20 {
		t.Errorf("Height = %v, want 20", got)
	}
	if got := r.Area(); got != 200 {
		t.Errorf("Area = %v, want 200", got)
	}
	if got := r.Center(); !got.Equal(Pt(5, 10)) {
		t.Errorf("Center = %v, want (5,10)", got)
	}
}

func TestRectContains(t *testing.T) {
	r := NewRect(Pt(0, 0), Pt(10, 10))
	inside := []Point{Pt(5, 5), Pt(0, 0), Pt(10, 10), Pt(0, 10), Pt(10, 0)}
	for _, p := range inside {
		if !r.Contains(p) {
			t.Errorf("Contains(%v) = false, want true", p)
		}
	}
	outside := []Point{Pt(-0.001, 5), Pt(10.001, 5), Pt(5, -1), Pt(5, 11)}
	for _, p := range outside {
		if r.Contains(p) {
			t.Errorf("Contains(%v) = true, want false", p)
		}
	}
}

func TestRectClamp(t *testing.T) {
	r := NewRect(Pt(0, 0), Pt(10, 10))
	cases := []struct{ in, want Point }{
		{Pt(5, 5), Pt(5, 5)},
		{Pt(-3, 5), Pt(0, 5)},
		{Pt(12, 15), Pt(10, 10)},
		{Pt(4, -2), Pt(4, 0)},
	}
	for _, c := range cases {
		if got := r.Clamp(c.in); !got.Equal(c.want) {
			t.Errorf("Clamp(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestRectUnion(t *testing.T) {
	a := NewRect(Pt(0, 0), Pt(5, 5))
	b := NewRect(Pt(3, 3), Pt(10, 8))
	u := a.Union(b)
	if !u.Min.Equal(Pt(0, 0)) || !u.Max.Equal(Pt(10, 8)) {
		t.Errorf("Union = %v, want [(0,0)-(10,8)]", u)
	}
}

func TestRectVertices(t *testing.T) {
	r := NewRect(Pt(0, 0), Pt(2, 3))
	v := r.Vertices()
	want := [4]Point{Pt(0, 0), Pt(2, 0), Pt(2, 3), Pt(0, 3)}
	if v != want {
		t.Errorf("Vertices = %v, want %v", v, want)
	}
}

func TestOrient(t *testing.T) {
	if got := Orient(Pt(0, 0), Pt(1, 0), Pt(1, 1)); got != CounterClockwise {
		t.Errorf("Orient ccw = %v", got)
	}
	if got := Orient(Pt(0, 0), Pt(1, 0), Pt(1, -1)); got != Clockwise {
		t.Errorf("Orient cw = %v", got)
	}
	if got := Orient(Pt(0, 0), Pt(1, 0), Pt(2, 0)); got != Collinear {
		t.Errorf("Orient collinear = %v", got)
	}
}

func TestSegmentsIntersect(t *testing.T) {
	cases := []struct {
		p1, p2, q1, q2 Point
		want           bool
	}{
		// plain crossing
		{Pt(0, 0), Pt(2, 2), Pt(0, 2), Pt(2, 0), true},
		// disjoint
		{Pt(0, 0), Pt(1, 1), Pt(2, 2), Pt(3, 3), false},
		// shared endpoint
		{Pt(0, 0), Pt(1, 1), Pt(1, 1), Pt(2, 0), true},
		// collinear overlapping
		{Pt(0, 0), Pt(3, 0), Pt(1, 0), Pt(4, 0), true},
		// collinear disjoint
		{Pt(0, 0), Pt(1, 0), Pt(2, 0), Pt(3, 0), false},
		// T junction
		{Pt(0, 0), Pt(2, 0), Pt(1, 0), Pt(1, 2), true},
		// parallel
		{Pt(0, 0), Pt(2, 0), Pt(0, 1), Pt(2, 1), false},
	}
	for i, c := range cases {
		if got := SegmentsIntersect(c.p1, c.p2, c.q1, c.q2); got != c.want {
			t.Errorf("case %d: SegmentsIntersect = %v, want %v", i, got, c.want)
		}
	}
}

func TestSegmentIntersectionPoint(t *testing.T) {
	p, ok := SegmentIntersection(Pt(0, 0), Pt(2, 2), Pt(0, 2), Pt(2, 0))
	if !ok {
		t.Fatal("expected intersection")
	}
	if !almostEqual(p.X, 1) || !almostEqual(p.Y, 1) {
		t.Errorf("intersection = %v, want (1,1)", p)
	}
	if _, ok := SegmentIntersection(Pt(0, 0), Pt(1, 0), Pt(0, 1), Pt(1, 1)); ok {
		t.Error("parallel segments should not intersect at a point")
	}
	if _, ok := SegmentIntersection(Pt(0, 0), Pt(1, 1), Pt(3, 3), Pt(4, 4)); ok {
		t.Error("collinear disjoint segments should return false")
	}
}

func TestNormalizeAngle(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0},
		{math.Pi, math.Pi},
		{-math.Pi / 2, 3 * math.Pi / 2},
		{2 * math.Pi, 0},
		{5 * math.Pi, math.Pi},
	}
	for _, c := range cases {
		if got := NormalizeAngle(c.in); !almostEqual(got, c.want) {
			t.Errorf("NormalizeAngle(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestCCWAngleFrom(t *testing.T) {
	if got := CCWAngleFrom(0, math.Pi/2); !almostEqual(got, math.Pi/2) {
		t.Errorf("CCWAngleFrom = %v, want pi/2", got)
	}
	if got := CCWAngleFrom(math.Pi/2, 0); !almostEqual(got, 3*math.Pi/2) {
		t.Errorf("CCWAngleFrom = %v, want 3pi/2", got)
	}
}

// Property: distance is symmetric and satisfies the triangle inequality.
func TestDistProperties(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		// Constrain magnitudes so floating-point error stays bounded.
		clamp := func(v float64) float64 { return math.Mod(v, 1e6) }
		a := Pt(clamp(ax), clamp(ay))
		b := Pt(clamp(bx), clamp(by))
		c := Pt(clamp(cx), clamp(cy))
		if a.Dist(b) != b.Dist(a) {
			return false
		}
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Dist2 agrees with Dist squared.
func TestDist2MatchesDist(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		clamp := func(v float64) float64 { return math.Mod(v, 1e4) }
		a := Pt(clamp(ax), clamp(ay))
		b := Pt(clamp(bx), clamp(by))
		d := a.Dist(b)
		return math.Abs(a.Dist2(b)-d*d) <= 1e-6*(1+d*d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Clamp always yields a point inside the rectangle, and is the
// identity on points already inside.
func TestClampProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	r := NewRect(Pt(0, 0), Pt(100, 50))
	for i := 0; i < 1000; i++ {
		p := Pt(rng.Float64()*400-150, rng.Float64()*300-100)
		q := r.Clamp(p)
		if !r.Contains(q) {
			t.Fatalf("Clamp(%v) = %v not inside %v", p, q, r)
		}
		if r.Contains(p) && !q.Equal(p) {
			t.Fatalf("Clamp moved interior point %v to %v", p, q)
		}
	}
}

// Property: orientation flips sign when the triple is reversed.
func TestOrientAntisymmetry(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy int16) bool {
		a := Pt(float64(ax), float64(ay))
		b := Pt(float64(bx), float64(by))
		c := Pt(float64(cx), float64(cy))
		return Orient(a, b, c) == -Orient(c, b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: SegmentsIntersect is symmetric in its two segments.
func TestSegmentsIntersectSymmetry(t *testing.T) {
	f := func(a, b, c, d, e, f2, g, h int8) bool {
		p1, p2 := Pt(float64(a), float64(b)), Pt(float64(c), float64(d))
		q1, q2 := Pt(float64(e), float64(f2)), Pt(float64(g), float64(h))
		return SegmentsIntersect(p1, p2, q1, q2) == SegmentsIntersect(q1, q2, p1, p2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
