// Package geo provides the planar geometry primitives used throughout the
// simulator: points, rectangles, distance computations, and the segment
// orientation predicates needed by GPSR's perimeter mode.
//
// All coordinates are in meters. The service area follows the usual screen
// convention with the origin at the lower-left corner and axes increasing
// right and up; nothing in the package depends on that orientation beyond
// documentation.
package geo

import (
	"fmt"
	"math"
)

// Point is a location in the plane, in meters.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.2f, %.2f)", p.X, p.Y) }

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns the vector from q to p.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p with both coordinates multiplied by k.
func (p Point) Scale(k float64) Point { return Point{p.X * k, p.Y * k} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// Dist2 returns the squared Euclidean distance between p and q. It avoids
// the square root on hot paths such as neighbor scans.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Midpoint returns the point halfway between p and q.
func (p Point) Midpoint(q Point) Point {
	return Point{(p.X + q.X) / 2, (p.Y + q.Y) / 2}
}

// Norm returns the Euclidean length of p treated as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Dot returns the dot product of p and q treated as vectors.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Cross returns the z component of the cross product of p and q treated as
// vectors. Positive means q is counter-clockwise from p.
func (p Point) Cross(q Point) float64 { return p.X*q.Y - p.Y*q.X }

// Angle returns the angle of the vector from p to q in radians, in
// (-pi, pi], measured counter-clockwise from the positive x axis.
func (p Point) Angle(q Point) float64 { return math.Atan2(q.Y-p.Y, q.X-p.X) }

// Equal reports whether p and q coincide exactly.
func (p Point) Equal(q Point) bool { return p.X == q.X && p.Y == q.Y }

// Rect is an axis-aligned rectangle. Min is the lower-left corner and Max
// the upper-right corner; a point on the Min edges is inside, a point on
// the Max edges is inside as well (closed rectangle), which keeps grid
// partitions free of unowned boundary points at the area border.
type Rect struct {
	Min, Max Point
}

// NewRect returns the rectangle spanning the two corner points, fixing the
// corner order if needed.
func NewRect(a, b Point) Rect {
	return Rect{
		Min: Point{math.Min(a.X, b.X), math.Min(a.Y, b.Y)},
		Max: Point{math.Max(a.X, b.X), math.Max(a.Y, b.Y)},
	}
}

// String implements fmt.Stringer.
func (r Rect) String() string { return fmt.Sprintf("[%v - %v]", r.Min, r.Max) }

// Width returns the horizontal extent of r.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the vertical extent of r.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Area returns the area of r in square meters.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Center returns the center point of r.
func (r Rect) Center() Point { return r.Min.Midpoint(r.Max) }

// Contains reports whether p lies inside the closed rectangle r.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Clamp returns p moved to the nearest point inside r.
func (r Rect) Clamp(p Point) Point {
	return Point{
		X: math.Min(math.Max(p.X, r.Min.X), r.Max.X),
		Y: math.Min(math.Max(p.Y, r.Min.Y), r.Max.Y),
	}
}

// Union returns the smallest rectangle covering both r and s.
func (r Rect) Union(s Rect) Rect {
	return Rect{
		Min: Point{math.Min(r.Min.X, s.Min.X), math.Min(r.Min.Y, s.Min.Y)},
		Max: Point{math.Max(r.Max.X, s.Max.X), math.Max(r.Max.Y, s.Max.Y)},
	}
}

// Vertices returns the four corners of r in counter-clockwise order
// starting from Min.
func (r Rect) Vertices() [4]Point {
	return [4]Point{
		r.Min,
		{r.Max.X, r.Min.Y},
		r.Max,
		{r.Min.X, r.Max.Y},
	}
}

// Orientation classifies the turn a→b→c.
type Orientation int

// Turn directions returned by Orient.
const (
	Collinear        Orientation = 0
	Clockwise        Orientation = -1
	CounterClockwise Orientation = 1
)

// Orient returns the orientation of the ordered triple (a, b, c).
func Orient(a, b, c Point) Orientation {
	v := b.Sub(a).Cross(c.Sub(a))
	switch {
	case v > 0:
		return CounterClockwise
	case v < 0:
		return Clockwise
	default:
		return Collinear
	}
}

// onSegment reports whether q lies on segment a-b given that a, q, b are
// collinear.
func onSegment(a, b, q Point) bool {
	return math.Min(a.X, b.X) <= q.X && q.X <= math.Max(a.X, b.X) &&
		math.Min(a.Y, b.Y) <= q.Y && q.Y <= math.Max(a.Y, b.Y)
}

// SegmentsIntersect reports whether the closed segments p1-p2 and q1-q2
// share at least one point. It handles all collinear and endpoint-touching
// cases; GPSR's perimeter mode uses it to detect crossings of the
// source-destination line.
func SegmentsIntersect(p1, p2, q1, q2 Point) bool {
	o1 := Orient(p1, p2, q1)
	o2 := Orient(p1, p2, q2)
	o3 := Orient(q1, q2, p1)
	o4 := Orient(q1, q2, p2)

	if o1 != o2 && o3 != o4 {
		return true
	}
	switch {
	case o1 == Collinear && onSegment(p1, p2, q1):
		return true
	case o2 == Collinear && onSegment(p1, p2, q2):
		return true
	case o3 == Collinear && onSegment(q1, q2, p1):
		return true
	case o4 == Collinear && onSegment(q1, q2, p2):
		return true
	}
	return false
}

// SegmentIntersection returns the intersection point of the two segments
// and true when they cross at a single point. For overlapping collinear
// segments or disjoint segments it returns the zero point and false.
func SegmentIntersection(p1, p2, q1, q2 Point) (Point, bool) {
	r := p2.Sub(p1)
	s := q2.Sub(q1)
	denom := r.Cross(s)
	if denom == 0 {
		return Point{}, false // parallel or collinear
	}
	qp := q1.Sub(p1)
	t := qp.Cross(s) / denom
	u := qp.Cross(r) / denom
	if t < 0 || t > 1 || u < 0 || u > 1 {
		return Point{}, false
	}
	return p1.Add(r.Scale(t)), true
}

// NormalizeAngle maps an angle in radians to [0, 2*pi).
func NormalizeAngle(a float64) float64 {
	a = math.Mod(a, 2*math.Pi)
	if a < 0 {
		a += 2 * math.Pi
	}
	return a
}

// CCWAngleFrom returns the counter-clockwise angle to sweep from direction
// `from` to direction `to`, in [0, 2*pi). Both arguments are angles in
// radians. GPSR's right-hand rule selects the neighbor with the smallest
// such sweep measured clockwise, i.e. the largest counter-clockwise sweep,
// so both callers share this primitive.
func CCWAngleFrom(from, to float64) float64 {
	return NormalizeAngle(to - from)
}
