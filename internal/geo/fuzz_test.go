package geo

import (
	"math"
	"testing"
)

// FuzzSegmentsIntersect cross-checks the boolean predicate against the
// point-producing variant and the predicate's own symmetries.
func FuzzSegmentsIntersect(f *testing.F) {
	f.Add(0.0, 0.0, 2.0, 2.0, 0.0, 2.0, 2.0, 0.0)
	f.Add(0.0, 0.0, 1.0, 0.0, 2.0, 0.0, 3.0, 0.0)
	f.Add(0.0, 0.0, 1.0, 1.0, 1.0, 1.0, 2.0, 0.0)
	f.Fuzz(func(t *testing.T, ax, ay, bx, by, cx, cy, dx, dy float64) {
		for _, v := range []float64{ax, ay, bx, by, cx, cy, dx, dy} {
			if math.IsNaN(v) || math.Abs(v) > 1e9 {
				t.Skip()
			}
		}
		p1, p2 := Pt(ax, ay), Pt(bx, by)
		q1, q2 := Pt(cx, cy), Pt(dx, dy)
		// Floating-point orientation signs can flip with operand order
		// within epsilon of a degenerate (touching/collinear)
		// configuration; exact-arithmetic identities only hold for
		// well-conditioned inputs. Skip near-degenerate cases.
		scale := 1.0
		for _, v := range []float64{ax, ay, bx, by, cx, cy, dx, dy} {
			if math.Abs(v) > scale {
				scale = math.Abs(v)
			}
		}
		wellConditioned := true
		for _, tri := range [][3]Point{
			{p1, p2, q1}, {p1, p2, q2}, {q1, q2, p1}, {q1, q2, p2},
		} {
			cross := tri[1].Sub(tri[0]).Cross(tri[2].Sub(tri[0]))
			if math.Abs(cross) < 1e-6*scale*scale {
				wellConditioned = false
				break
			}
		}
		if !wellConditioned {
			t.Skip()
		}
		got := SegmentsIntersect(p1, p2, q1, q2)
		// Symmetry in segment order and endpoint order.
		if got != SegmentsIntersect(q1, q2, p1, p2) {
			t.Fatal("not symmetric in segment order")
		}
		if got != SegmentsIntersect(p2, p1, q1, q2) {
			t.Fatal("not symmetric in endpoint order")
		}
		// The predicates may legitimately disagree at degenerate
		// configurations (endpoint grazing), where floating point
		// decides the tie. Demand agreement only for robust interior
		// crossings: both parametric coordinates well inside (0, 1).
		r := p2.Sub(p1)
		sv := q2.Sub(q1)
		if denom := r.Cross(sv); denom != 0 {
			qp := q1.Sub(p1)
			tt := qp.Cross(sv) / denom
			uu := qp.Cross(r) / denom
			if tt > 0.01 && tt < 0.99 && uu > 0.01 && uu < 0.99 && !got {
				t.Fatal("robust interior crossing missed by predicate")
			}
		}
	})
}

// FuzzRectClamp checks that Clamp is a projection: idempotent and always
// inside.
func FuzzRectClamp(f *testing.F) {
	f.Add(0.0, 0.0, 10.0, 10.0, -5.0, 20.0)
	f.Fuzz(func(t *testing.T, minX, minY, maxX, maxY, px, py float64) {
		for _, v := range []float64{minX, minY, maxX, maxY, px, py} {
			if math.IsNaN(v) || math.Abs(v) > 1e9 {
				t.Skip()
			}
		}
		r := NewRect(Pt(minX, minY), Pt(maxX, maxY))
		p := Pt(px, py)
		c := r.Clamp(p)
		if !r.Contains(c) {
			t.Fatalf("Clamp(%v) = %v outside %v", p, c, r)
		}
		if !r.Clamp(c).Equal(c) {
			t.Fatal("Clamp not idempotent")
		}
	})
}
