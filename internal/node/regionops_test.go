package node

import (
	"testing"

	"precinct/internal/geo"
	"precinct/internal/radio"
	"precinct/internal/region"
	"precinct/internal/workload"
)

func TestMergeRelocatesAndServes(t *testing.T) {
	h := build(t, defaultHarnessOpts())
	// Regions 0 and 1 are adjacent in the 3x3 grid.
	if err := h.net.Merge(region.ID(0), region.ID(1)); err != nil {
		t.Fatal(err)
	}
	h.sched.Run(20)
	if h.net.Table().Len() != 8 {
		t.Fatalf("table has %d regions after merge", h.net.Table().Len())
	}
	if h.net.TableVersions() != 2 {
		t.Fatalf("table versions = %d, want 2", h.net.TableVersions())
	}
	// The dissemination flood must have reached every live peer.
	for i := 0; i < h.net.Peers(); i++ {
		if v := h.net.Peer(radio.NodeID(i)).TableVersion(); v != 1 {
			t.Fatalf("peer %d still on table version %d", i, v)
		}
	}
	// Requests across the board still succeed.
	completed := 0
	for i, k := range h.cat.Keys()[:20] {
		p := h.requesterFor(t, k)
		h.net.RequestFrom(p.ID(), k)
		h.sched.Run(20 + float64(10*(i+1)))
	}
	rep := h.net.Report()
	completed = int(rep.Completed)
	if completed < 18 {
		t.Errorf("only %d/20 requests completed after merge: %+v", completed, rep)
	}
}

func TestMergeInvalidArgsPropagate(t *testing.T) {
	h := build(t, defaultHarnessOpts())
	if err := h.net.Merge(region.ID(0), region.ID(8)); err == nil {
		t.Error("non-adjacent merge accepted")
	}
	if err := h.net.Separate(region.ID(99)); err == nil {
		t.Error("separate of unknown region accepted")
	}
}

func TestSeparateMovesKeysToProperNewHomes(t *testing.T) {
	h := build(t, defaultHarnessOpts())
	if err := h.net.Separate(region.ID(4)); err != nil { // center region
		t.Fatal(err)
	}
	// Let the routed relocations and a few mobility checks drain.
	h.sched.Run(30)
	// Every primary store copy must now sit with a peer whose current
	// region matches the key's home region (or be in flight — none
	// after draining).
	table := h.net.Table()
	misplaced := 0
	for i := 0; i < h.net.Peers(); i++ {
		p := h.net.Peer(radio.NodeID(i))
		for _, k := range p.Store().Keys() {
			it, _ := p.Store().Get(k)
			var want region.Region
			var ok bool
			if it.ReplicaRank > 0 {
				want, ok = table.ReplicaRegion(k)
			} else {
				want, ok = table.HomeRegion(k)
			}
			if !ok {
				continue
			}
			if want.ID != p.RegionID() {
				misplaced++
			}
		}
	}
	if misplaced > 10 {
		t.Errorf("%d store copies still misplaced after separate + relocation", misplaced)
	}
}

func TestQuitIntoEmptyRegionLosesKeysGracefully(t *testing.T) {
	h := build(t, defaultHarnessOpts())
	// Crash everyone, then quit the last holder: its keys have no
	// custodian anywhere and must be counted lost, not leaked.
	var holder *Peer
	for i := 0; i < h.net.Peers(); i++ {
		p := h.net.Peer(radio.NodeID(i))
		if p.Store().Len() > 0 && holder == nil {
			holder = p
			continue
		}
		h.net.Crash(p.ID())
	}
	if holder == nil {
		t.Fatal("no holder")
	}
	n := holder.Store().Len()
	h.net.Quit(holder.ID())
	if holder.Store().Len() != 0 {
		t.Error("quit left keys in the departing store")
	}
	if got := h.net.Stats().LostKeys; got != uint64(n) {
		t.Errorf("LostKeys = %d, want %d", got, n)
	}
}

func TestReplicaCopiesKeepRole(t *testing.T) {
	h := build(t, defaultHarnessOpts())
	// Find a replica copy and verify its role survives a graceful quit
	// (handoff) of its holder.
	var holder *Peer
	var key workload.Key
	found := false
	for i := 0; i < h.net.Peers() && !found; i++ {
		p := h.net.Peer(radio.NodeID(i))
		for _, k := range p.Store().Keys() {
			it, _ := p.Store().Get(k)
			if it.ReplicaRank > 0 {
				holder, key, found = p, k, true
				break
			}
		}
	}
	if !found {
		t.Fatal("no replica copy placed")
	}
	h.net.Quit(holder.ID())
	h.sched.Run(10)
	// Someone else now holds the replica copy, still marked as replica.
	for i := 0; i < h.net.Peers(); i++ {
		p := h.net.Peer(radio.NodeID(i))
		if !p.Alive() {
			continue
		}
		if it, ok := p.Store().Get(key); ok && it.ReplicaRank > 0 {
			return // role preserved
		}
	}
	t.Error("replica copy vanished or lost its role after handoff")
}

func TestStoreCopiesSelfHealAfterStranding(t *testing.T) {
	// Run a mobile scenario long enough for handoffs (and possibly
	// stranded adoptions), then verify keys converge back to their
	// proper regions.
	o := defaultHarnessOpts()
	o.mobile = true
	o.maxSpeed = 10
	h := build(t, o)
	h.net.Run(400)
	misplaced := 0
	total := 0
	for i := 0; i < h.net.Peers(); i++ {
		p := h.net.Peer(radio.NodeID(i))
		for _, k := range p.Store().Keys() {
			it, _ := p.Store().Get(k)
			var want region.Region
			var ok bool
			if it.ReplicaRank > 0 {
				want, ok = h.table.ReplicaRegion(k)
			} else {
				want, ok = h.table.HomeRegion(k)
			}
			if !ok {
				continue
			}
			total++
			if want.ID != p.RegionID() {
				misplaced++
			}
		}
	}
	if total == 0 {
		t.Fatal("no store copies at all")
	}
	// Peers mid-crossing legitimately hold keys for up to a mobility
	// check interval; demand at least 90% placement.
	if float64(misplaced) > 0.1*float64(total) {
		t.Errorf("%d/%d copies misplaced after self-healing window", misplaced, total)
	}
}

func TestAddRegionExpandsTopology(t *testing.T) {
	h := build(t, defaultHarnessOpts())
	before := h.net.Table().Len()
	r, err := h.net.AddRegion(geo.NewRect(geo.Pt(1200, 0), geo.Pt(1600, 400)))
	if err != nil {
		t.Fatal(err)
	}
	h.sched.Run(20)
	if h.net.Table().Len() != before+1 {
		t.Fatalf("region count %d, want %d", h.net.Table().Len(), before+1)
	}
	if _, ok := h.net.Table().Region(r.ID); !ok {
		t.Fatal("added region missing from latest table")
	}
	// Dissemination reached the peers.
	latest := h.net.TableVersions() - 1
	reached := 0
	for i := 0; i < h.net.Peers(); i++ {
		if h.net.Peer(radio.NodeID(i)).TableVersion() == latest {
			reached++
		}
	}
	if reached < h.net.Peers()*3/4 {
		t.Errorf("table update reached only %d/%d peers", reached, h.net.Peers())
	}
	// Requests keep working (the new region is empty; keys that re-hash
	// to it fall back to replicas or are re-adopted on mobility checks).
	k := h.cat.Keys()[0]
	p := h.requesterFor(t, k)
	h.net.RequestFrom(p.ID(), k)
	h.sched.Run(60)
	if h.net.Report().Requests == 0 {
		t.Error("no requests recorded after AddRegion")
	}
}

func TestDeleteRegionRelocatesKeys(t *testing.T) {
	h := build(t, defaultHarnessOpts())
	if err := h.net.DeleteRegion(region.ID(4)); err != nil {
		t.Fatal(err)
	}
	h.sched.Run(30)
	if h.net.Table().Len() != 8 {
		t.Fatalf("region count %d, want 8", h.net.Table().Len())
	}
	// No key's home region may be the deleted one anymore; requests for
	// keys that used to live there must still succeed.
	for _, k := range h.cat.Keys()[:30] {
		home, ok := h.net.Table().HomeRegion(k)
		if !ok || home.ID == region.ID(4) {
			t.Fatalf("key %d still homed in deleted region", k)
		}
	}
	served := 0
	for i, k := range h.cat.Keys()[:15] {
		p := h.requesterFor(t, k)
		h.net.RequestFrom(p.ID(), k)
		h.sched.Run(30 + float64(10*(i+1)))
	}
	served = int(h.net.Report().Completed)
	if served < 12 {
		t.Errorf("only %d/15 requests served after DeleteRegion: %+v", served, h.net.Report())
	}
	if err := h.net.DeleteRegion(region.ID(4)); err == nil {
		t.Error("double delete accepted")
	}
}

func TestAddRegionRejectsDegenerate(t *testing.T) {
	h := build(t, defaultHarnessOpts())
	if _, err := h.net.AddRegion(geo.NewRect(geo.Pt(0, 0), geo.Pt(0, 100))); err == nil {
		t.Error("degenerate region accepted")
	}
}
