package node

// Adaptive region management — the paper's future work ("a dynamic region
// management scheme needs to be investigated to make PReCinCt adaptive to
// real network environments"). A periodic controller watches per-region
// population and reshapes the partition with the Section 2.1 operations:
//
//   - a region holding more than SplitAbove live peers is Separated, so
//     its localized floods stay small;
//   - a pair of adjacent regions whose combined population is below
//     MergeBelow is Merged, so sparse areas do not fragment into regions
//     too empty to host their keys.
//
// Every reshape rides the normal table-dissemination flood and key
// relocation machinery, so its cost is visible in the maintenance
// counters.

import (
	"fmt"

	"precinct/internal/region"
	"precinct/internal/sim"
)

// AdaptiveConfig parameterizes the dynamic region controller.
type AdaptiveConfig struct {
	// Enabled turns the controller on.
	Enabled bool
	// Interval is how often the controller inspects the partition,
	// seconds.
	Interval float64
	// SplitAbove splits any region with more live peers than this.
	SplitAbove int
	// MergeBelow merges adjacent regions whose combined live population
	// is below this.
	MergeBelow int
	// MaxRegions and MinRegions bound the partition size.
	MaxRegions int
	MinRegions int
}

// DefaultAdaptiveConfig reshapes conservatively: split past ~2× the mean
// population of a 9-region/80-peer network, merge when two regions
// together hold fewer peers than one should.
func DefaultAdaptiveConfig() AdaptiveConfig {
	return AdaptiveConfig{
		Enabled:    false,
		Interval:   60,
		SplitAbove: 18,
		MergeBelow: 6,
		MaxRegions: 36,
		MinRegions: 4,
	}
}

// Validate checks the controller parameters.
func (c AdaptiveConfig) Validate() error {
	if !c.Enabled {
		return nil
	}
	if c.Interval <= 0 {
		return fmt.Errorf("node: adaptive interval must be positive, got %v", c.Interval)
	}
	if c.SplitAbove <= 0 || c.MergeBelow < 0 {
		return fmt.Errorf("node: invalid adaptive thresholds (split %d, merge %d)", c.SplitAbove, c.MergeBelow)
	}
	if c.MergeBelow >= c.SplitAbove {
		return fmt.Errorf("node: merge threshold %d must be below split threshold %d (hysteresis)", c.MergeBelow, c.SplitAbove)
	}
	if c.MinRegions < 2 || c.MaxRegions < c.MinRegions {
		return fmt.Errorf("node: invalid region bounds [%d, %d]", c.MinRegions, c.MaxRegions)
	}
	return nil
}

// AdaptiveStats counts controller actions.
type AdaptiveStats struct {
	Inspections uint64
	Splits      uint64
	Merges      uint64
}

// AdaptiveStats returns the controller counters.
func (n *Network) AdaptiveStats() AdaptiveStats { return n.adaptive }

// startAdaptiveController arms the periodic reshape check.
func (n *Network) startAdaptiveController() {
	n.armAdaptive(n.sched.Now() + n.cfg.Adaptive.Interval)
}

// armAdaptive registers the next inspection at an absolute time; the
// tick inspects first, then re-arms (so the rearm draw order matches an
// uninterrupted run exactly).
func (n *Network) armAdaptive(at float64) {
	n.sched.AtProc(sim.Proc{Kind: procAdaptive, Owner: -1}, at, func() {
		n.inspectRegions()
		n.armAdaptive(n.sched.Now() + n.cfg.Adaptive.Interval)
	})
}

// regionPopulation counts live peers per region of the latest table.
func (n *Network) regionPopulation() map[region.ID]int {
	pop := make(map[region.ID]int, n.table.Len())
	for _, r := range n.table.Regions() {
		pop[r.ID] = 0
	}
	for _, p := range n.peers {
		if !p.alive {
			continue
		}
		if r, ok := n.table.Locate(n.ch.Position(p.id)); ok {
			pop[r.ID]++
		}
	}
	return pop
}

// inspectRegions performs at most one reshape per inspection (splits take
// priority), keeping the partition change rate bounded.
func (n *Network) inspectRegions() {
	cfg := n.cfg.Adaptive
	n.adaptive.Inspections++
	pop := n.regionPopulation()

	// Split the most crowded region above the threshold.
	if n.table.Len() < cfg.MaxRegions {
		var worst region.ID = region.Invalid
		worstPop := cfg.SplitAbove
		// Scan in table order so population ties resolve to the lowest
		// region ID deterministically (map iteration order is random).
		for _, r := range n.table.Regions() {
			if c := pop[r.ID]; c > worstPop {
				worst, worstPop = r.ID, c
			}
		}
		if worst != region.Invalid {
			if err := n.Separate(worst); err == nil {
				n.adaptive.Splits++
				return
			}
		}
	}

	// Merge the sparsest mergeable pair below the threshold.
	if n.table.Len() > cfg.MinRegions {
		regions := n.table.Regions()
		bestA, bestB := region.Invalid, region.Invalid
		bestPop := cfg.MergeBelow
		for i := 0; i < len(regions); i++ {
			for j := i + 1; j < len(regions); j++ {
				a, b := regions[i], regions[j]
				combined := pop[a.ID] + pop[b.ID]
				if combined >= bestPop || !mergeable(a, b) {
					continue
				}
				bestA, bestB, bestPop = a.ID, b.ID, combined
			}
		}
		if bestA != region.Invalid {
			if err := n.Merge(bestA, bestB); err == nil {
				n.adaptive.Merges++
			}
		}
	}
}

// mergeable reports whether two regions tile their union (the same test
// region.Table.Merge enforces), so the controller only proposes merges
// that will succeed.
func mergeable(a, b region.Region) bool {
	u := a.Bounds.Union(b.Bounds)
	return u.Area()-(a.Bounds.Area()+b.Bounds.Area()) <= 1e-6*u.Area()
}
