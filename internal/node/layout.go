package node

// Struct-of-arrays peer containers (DESIGN.md section 14). The default
// layout replaces the per-peer maps with index-friendly storage: flood
// dedup lives in an open-addressed linear-probing table (two flat
// slices, no per-entry boxes), outstanding requests live in a small
// slice searched linearly (a peer rarely has more than a handful), and
// request boxes recycle through a per-network freelist. The legacy
// map-backed containers remain selectable via Config.LegacyLayout as
// the reference path; every access below dispatches on which container
// a peer carries, and both behave identically by contract.

// seenTable is an open-addressed linear-probing hash table from flood
// ID to expiry time. Message IDs are never zero (newID ORs a counter
// that starts at one), so zero keys mark empty slots and the table
// needs no tombstones — entries are only removed wholesale at prune
// time by rehashing the survivors.
type seenTable struct {
	keys []uint64
	exps []float64
	used int
	// shift maps a mixed 64-bit hash to a slot index: the table size is
	// a power of two, and the top bits of the multiplicative hash are
	// the well-mixed ones.
	shift uint
}

// seenMinSlots is the smallest table allocation (slots, power of two).
const seenMinSlots = 16

// hashID mixes a flood ID multiplicatively (Fibonacci hashing); the
// high bits of the product index the table.
func hashID(id uint64) uint64 { return id * 0x9E3779B97F4A7C15 }

// init sizes the table for about n entries (load factor <= 0.5 at n).
func (t *seenTable) init(n int) {
	size := seenMinSlots
	for size < n*2 {
		size *= 2
	}
	t.keys = make([]uint64, size)
	t.exps = make([]float64, size)
	t.used = 0
	t.shift = 64
	for s := size; s > 1; s >>= 1 {
		t.shift--
	}
}

// lookup returns the expiry recorded for id.
func (t *seenTable) lookup(id uint64) (float64, bool) {
	if t.used == 0 {
		return 0, false
	}
	mask := uint64(len(t.keys) - 1)
	for i := hashID(id) >> t.shift; ; i = (i + 1) & mask {
		switch t.keys[i] {
		case id:
			return t.exps[i], true
		case 0:
			return 0, false
		}
	}
}

// store inserts or overwrites the expiry for id (id must be nonzero).
func (t *seenTable) store(id uint64, exp float64) {
	if len(t.keys) == 0 || t.used*4 >= len(t.keys)*3 {
		t.grow()
	}
	mask := uint64(len(t.keys) - 1)
	for i := hashID(id) >> t.shift; ; i = (i + 1) & mask {
		switch t.keys[i] {
		case id:
			t.exps[i] = exp
			return
		case 0:
			t.keys[i] = id
			t.exps[i] = exp
			t.used++
			return
		}
	}
}

// grow doubles the table and rehashes every entry.
func (t *seenTable) grow() {
	old := *t
	t.init(len(old.keys))
	for i, k := range old.keys {
		if k != 0 {
			t.store(k, old.exps[i])
		}
	}
}

// prune drops every entry whose expiry is at or before now, rehashing
// the survivors into a right-sized table (the same semantics as the
// legacy map prune: strictly-later expiries survive).
func (t *seenTable) prune(now float64) {
	live := 0
	for i, k := range t.keys {
		if k != 0 && t.exps[i] > now {
			live++
		}
	}
	old := *t
	t.init(live)
	for i, k := range old.keys {
		if k != 0 && old.exps[i] > now {
			t.store(k, old.exps[i])
		}
	}
}

// seenLookup returns the recorded expiry for a flood ID.
func (p *Peer) seenLookup(id uint64) (float64, bool) {
	if p.seen != nil {
		exp, ok := p.seen[id]
		return exp, ok
	}
	return p.seenTab.lookup(id)
}

// seenStore records (or refreshes) a flood ID's expiry.
func (p *Peer) seenStore(id uint64, exp float64) {
	if p.seen != nil {
		p.seen[id] = exp
		return
	}
	p.seenTab.store(id, exp)
}

// seenPrune drops every dedup entry expired at now.
func (p *Peer) seenPrune(now float64) {
	if p.seen != nil {
		for k, exp := range p.seen {
			if exp <= now {
				delete(p.seen, k)
			}
		}
		return
	}
	p.seenTab.prune(now)
}

// seenLen counts recorded dedup entries (including not-yet-pruned
// expired ones, matching the legacy map).
func (p *Peer) seenLen() int {
	if p.seen != nil {
		return len(p.seen)
	}
	return p.seenTab.used
}

// seenEach visits every dedup entry in container order (callers that
// need determinism sort afterwards, as with map iteration).
func (p *Peer) seenEach(fn func(id uint64, exp float64)) {
	if p.seen != nil {
		for id, exp := range p.seen {
			fn(id, exp)
		}
		return
	}
	for i, k := range p.seenTab.keys {
		if k != 0 {
			fn(k, p.seenTab.exps[i])
		}
	}
}

// seenReset replaces the dedup container with an empty one sized for n
// entries, keeping the peer's configured layout.
func (p *Peer) seenReset(n int) {
	if p.seen != nil {
		p.seen = make(map[uint64]float64, n)
		return
	}
	p.seenTab.init(n)
}

// pendingGet returns the outstanding request with the given ID.
func (p *Peer) pendingGet(id uint64) (*pendingReq, bool) {
	if p.pending != nil {
		req, ok := p.pending[id]
		return req, ok
	}
	for _, req := range p.pendingS {
		if req.id == id {
			return req, true
		}
	}
	return nil, false
}

// pendingPut registers an outstanding request. The caller guarantees
// the ID is not already present (request IDs are unique per peer).
func (p *Peer) pendingPut(req *pendingReq) {
	if p.pending != nil {
		p.pending[req.id] = req
		return
	}
	p.pendingS = append(p.pendingS, req)
}

// pendingDelete removes an outstanding request by ID (no-op when
// absent), swap-deleting in the slice layout.
func (p *Peer) pendingDelete(id uint64) {
	if p.pending != nil {
		delete(p.pending, id)
		return
	}
	for i, req := range p.pendingS {
		if req.id == id {
			last := len(p.pendingS) - 1
			p.pendingS[i] = p.pendingS[last]
			p.pendingS[last] = nil
			p.pendingS = p.pendingS[:last]
			return
		}
	}
}

// pendingLen counts outstanding requests.
func (p *Peer) pendingLen() int {
	if p.pending != nil {
		return len(p.pending)
	}
	return len(p.pendingS)
}

// pendingEach visits every outstanding request in container order.
func (p *Peer) pendingEach(fn func(*pendingReq)) {
	if p.pending != nil {
		for _, req := range p.pending {
			fn(req)
		}
		return
	}
	for _, req := range p.pendingS {
		fn(req)
	}
}

// pendingReset empties the pending container, keeping the layout.
func (p *Peer) pendingReset() {
	if p.pending != nil {
		p.pending = make(map[uint64]*pendingReq)
		return
	}
	for i := range p.pendingS {
		p.pendingS[i] = nil
	}
	p.pendingS = p.pendingS[:0]
}

// acquireReq takes a request box for RequestFrom. The SoA layout
// recycles boxes through a freelist; the legacy reference path
// allocates one per request, as the pre-SoA implementation did.
func (n *Network) acquireReq() *pendingReq {
	if last := len(n.reqFree) - 1; last >= 0 {
		req := n.reqFree[last]
		n.reqFree[last] = nil
		n.reqFree = n.reqFree[:last]
		return req
	}
	return &pendingReq{}
}

// releaseReq returns a finished request's box to the freelist. Safe at
// the end of finish/fail only: finish cancels any armed timeout, fail
// runs from the timeout itself, and the timeout closure captures the
// request ID by value — a stale fire after recycling misses the pending
// lookup and no-ops.
func (n *Network) releaseReq(req *pendingReq) {
	if n.cfg.LegacyLayout {
		return
	}
	*req = pendingReq{}
	n.reqFree = append(n.reqFree, req)
}
