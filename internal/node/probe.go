package node

import (
	"precinct/internal/radio"
	"precinct/internal/region"
	"precinct/internal/workload"
)

// Probe observes protocol-internal transitions that are invisible from
// the public counters, so an external invariant checker can validate them
// as they happen. A probe must be a pure observer: it may read peer and
// network state but must not mutate it, schedule events, or consume
// randomness — otherwise checked and unchecked runs would diverge.
//
// All methods are called synchronously from within the event that caused
// the transition, with the scheduler clock at that event's time.
type Probe interface {
	// OnCacheAdmit fires when a peer admits an item into its dynamic
	// cache, after admission control decided in favor. requesterRegion is
	// the caching peer's region, serverRegion the responder's region as
	// carried by the reply; the paper forbids admitting when they match.
	OnCacheAdmit(id radio.NodeID, requesterRegion, serverRegion region.ID, key workload.Key)

	// OnCacheEvict fires once per victim, in eviction order, when an
	// admission evicts entries to make room. The equivalence suites use
	// it to prove the heap victim index replays the reference linear
	// scan's exact eviction sequence on whole scenarios.
	OnCacheEvict(id radio.NodeID, key workload.Key)

	// OnTTRSmoothed fires when the consistency layer re-estimates a
	// stored item's TTR via Equation 2. prev is the effective previous
	// TTR (after seeding), interval the observed update interval, next
	// the stored result.
	OnTTRSmoothed(id radio.NodeID, key workload.Key, alpha, prev, interval, next float64)

	// AfterRehome fires when a peer finishes a rehomeKeys pass (mobility
	// check, table change, or graceful quit with evacuate=true), after
	// all handoff messages have been issued.
	AfterRehome(p *Peer, evacuate bool)
}

// SetProbe installs (or, with nil, removes) the invariant probe.
func (n *Network) SetProbe(pr Probe) { n.probe = pr }

// Table exposes the region-table version this peer currently operates on.
func (p *Peer) Table() *region.Table { return p.table() }

// HasCustodian reports whether some live peer other than exclude is
// currently located inside the region and could adopt keys belonging to
// it — the same eligibility rule rehomeKeys uses to pick handoff targets.
func (n *Network) HasCustodian(t *region.Table, id region.ID, exclude *Peer) bool {
	return n.peerNearestCenterExcluding(t, id, exclude) != nil
}
