package node

// Checkpoint support: the serializable state of the network and its
// peers. A snapshot is only taken at a quiescent boundary — every
// pending scheduler event is re-armable, so no frame is on the air and
// no forwarding retry is outstanding. Requests that are merely waiting
// on their (tagged) timeout events may be outstanding; their
// requester-side state is captured here and their timeouts are re-armed
// from the scheduler snapshot.

import (
	"fmt"
	"sort"

	"precinct/internal/cache"
	"precinct/internal/radio"
	"precinct/internal/region"
	"precinct/internal/sim"
	"precinct/internal/workload"
)

// SeenEntry is one flood-dedup record: flood ID and expiry time.
type SeenEntry struct {
	ID     uint64
	Expiry float64
}

// PeerState is the serializable state of one peer.
type PeerState struct {
	ID        int
	RegionID  region.ID
	TableIdx  int
	Alive     bool
	NextPrune float64
	NextID    uint64
	Seen      []SeenEntry // sorted by ID
	HasCache  bool
	Cache     cache.CacheState
	Store     []cache.StoredItem
}

// PendingReqState is the serializable requester-side state of one
// outstanding request. Its timeout event is not stored here: the
// scheduler snapshot carries it as a tagged proc, and Rearm reattaches
// it to the deserialized request.
type PendingReqState struct {
	ID            uint64
	Origin        int
	Key           workload.Key
	Size          int
	IssuedAt      float64
	Record        bool
	Phase         int
	RingTTL       int
	ReplicaRank   int
	CachedVersion uint64
	TruthAtIssue  uint64
	HasReply      bool
	Reply         message
}

// NetworkState is the serializable state of the protocol layer: the
// region-table version history, key ground truth, outstanding requests,
// and every peer. Message-ID counters live in each PeerState.
type NetworkState struct {
	Tables   []region.TableState
	Truth    []uint64
	Stats    Stats
	Adaptive AdaptiveStats
	Pending  []PendingReqState // sorted by ID
	Peers    []PeerState
}

// StateSnapshot captures the network at a quiescent boundary. Requests
// waiting on their timeouts are captured; anything else in flight
// (frames, forwarding retries) makes the scheduler non-quiescent, so the
// caller never gets here with one outstanding.
func (n *Network) StateSnapshot() (NetworkState, error) {
	st := NetworkState{
		Tables:   make([]region.TableState, len(n.tables)),
		Truth:    append([]uint64(nil), n.truth...),
		Stats:    n.stats,
		Adaptive: n.adaptive,
		Pending:  make([]PendingReqState, 0, n.PendingRequests()),
		Peers:    make([]PeerState, len(n.peers)),
	}
	for _, req := range n.allPending() {
		ps := PendingReqState{
			ID:            req.id,
			Origin:        int(req.origin),
			Key:           req.key,
			Size:          req.size,
			IssuedAt:      req.issuedAt,
			Record:        req.record,
			Phase:         int(req.phase),
			RingTTL:       req.ringTTL,
			ReplicaRank:   req.replicaRank,
			CachedVersion: req.cachedVersion,
			TruthAtIssue:  req.truthAtIssue,
		}
		if req.pendingReply != nil {
			ps.HasReply = true
			ps.Reply = *req.pendingReply
		}
		st.Pending = append(st.Pending, ps)
	}
	sort.Slice(st.Pending, func(a, b int) bool { return st.Pending[a].ID < st.Pending[b].ID })
	for i, t := range n.tables {
		st.Tables[i] = t.State()
	}
	for i, p := range n.peers {
		ps := PeerState{
			ID:        int(p.id),
			RegionID:  p.regionID,
			TableIdx:  p.tableIdx,
			Alive:     p.alive,
			NextPrune: p.nextPrune,
			NextID:    p.nextID,
			Seen:      make([]SeenEntry, 0, p.seenLen()),
			Store:     p.store.StateSnapshot(),
		}
		p.seenEach(func(id uint64, exp float64) {
			ps.Seen = append(ps.Seen, SeenEntry{ID: id, Expiry: exp})
		})
		sort.Slice(ps.Seen, func(a, b int) bool { return ps.Seen[a].ID < ps.Seen[b].ID })
		if p.cache != nil {
			ps.HasCache = true
			ps.Cache = p.cache.StateSnapshot()
		}
		st.Peers[i] = ps
	}
	return st, nil
}

// RestoreState overwrites the network's protocol state from a snapshot.
// The network must be freshly built from the same Scenario (same peer
// count, same cache configuration); the region-table history is rebuilt
// from the snapshot since Separate/Merge may have diverged it arbitrarily
// from the initial partition. It also marks the network started, so a
// later Run does not re-start the drivers — the caller re-arms them from
// the scheduler snapshot via Rearm.
func (n *Network) RestoreState(st NetworkState) error {
	if len(st.Peers) != len(n.peers) {
		return fmt.Errorf("node: snapshot has %d peers, network has %d", len(st.Peers), len(n.peers))
	}
	if len(st.Truth) != len(n.truth) {
		return fmt.Errorf("node: snapshot has %d keys, catalog has %d", len(st.Truth), len(n.truth))
	}
	if len(st.Tables) == 0 {
		return fmt.Errorf("node: snapshot has no region tables")
	}
	tables := make([]*region.Table, len(st.Tables))
	for i, ts := range st.Tables {
		t, err := region.FromState(ts)
		if err != nil {
			return fmt.Errorf("node: table version %d: %w", i, err)
		}
		tables[i] = t
	}
	for i, ps := range st.Peers {
		p := n.peers[i]
		if ps.ID != int(p.id) {
			return fmt.Errorf("node: snapshot peer %d carries ID %d", i, ps.ID)
		}
		if ps.HasCache != (p.cache != nil) {
			return fmt.Errorf("node: snapshot peer %d cache presence (%v) does not match config (%v)",
				i, ps.HasCache, p.cache != nil)
		}
		if ps.TableIdx < 0 || ps.TableIdx >= len(tables) {
			return fmt.Errorf("node: snapshot peer %d references table version %d of %d", i, ps.TableIdx, len(tables))
		}
		for j, se := range ps.Seen {
			// Flood IDs are never zero (newID ORs a counter starting at
			// one), and the snapshot writes them sorted; the SoA seen
			// table additionally relies on the nonzero invariant for its
			// empty-slot sentinel.
			if se.ID == 0 {
				return fmt.Errorf("node: snapshot peer %d carries a zero seen ID", i)
			}
			if j > 0 && ps.Seen[j-1].ID >= se.ID {
				return fmt.Errorf("node: snapshot peer %d seen entries are not sorted by ID", i)
			}
		}
	}
	// All validation passed; now mutate. Nothing below can fail except the
	// per-component restores, which validate before mutating themselves —
	// but to keep "never restore partial state" airtight the caller
	// (internal/checkpoint) discards the whole network on any error.
	n.tables = tables
	n.table = tables[len(tables)-1]
	copy(n.truth, st.Truth)
	n.stats = st.Stats
	n.adaptive = st.Adaptive
	for i, ps := range st.Peers {
		p := n.peers[i]
		p.regionID = ps.RegionID
		p.tableIdx = ps.TableIdx
		p.alive = ps.Alive
		p.nextPrune = ps.NextPrune
		p.nextID = ps.NextID
		p.seenReset(len(ps.Seen))
		for _, se := range ps.Seen {
			p.seenStore(se.ID, se.Expiry)
		}
		if err := p.store.RestoreState(ps.Store); err != nil {
			return fmt.Errorf("node: peer %d store: %w", i, err)
		}
		if p.cache != nil {
			if err := p.cache.RestoreState(ps.Cache); err != nil {
				return fmt.Errorf("node: peer %d cache: %w", i, err)
			}
		}
	}
	for _, p := range n.peers {
		p.pendingReset()
	}
	for i, ps := range st.Pending {
		if ps.Origin < 0 || ps.Origin >= len(n.peers) {
			return fmt.Errorf("node: snapshot pending request %d has unknown origin %d", ps.ID, ps.Origin)
		}
		if ps.Origin != reqOrigin(ps.ID) {
			return fmt.Errorf("node: snapshot pending request %d carries origin %d, ID encodes %d",
				ps.ID, ps.Origin, reqOrigin(ps.ID))
		}
		if ps.Phase < int(phaseRegional) || ps.Phase > int(phaseFlood) {
			return fmt.Errorf("node: snapshot pending request %d has unknown phase %d", ps.ID, ps.Phase)
		}
		if ps.ReplicaRank < 0 || ps.ReplicaRank > region.MaxReplicaRank {
			return fmt.Errorf("node: snapshot pending request %d has replica rank %d outside [0, %d]",
				ps.ID, ps.ReplicaRank, region.MaxReplicaRank)
		}
		if _, dup := n.peers[ps.Origin].pendingGet(ps.ID); dup {
			return fmt.Errorf("node: snapshot carries pending request %d twice", ps.ID)
		}
		if i > 0 && st.Pending[i-1].ID >= ps.ID {
			return fmt.Errorf("node: snapshot pending requests are not sorted by ID")
		}
		req := &pendingReq{
			id:            ps.ID,
			origin:        radio.NodeID(ps.Origin),
			key:           ps.Key,
			size:          ps.Size,
			issuedAt:      ps.IssuedAt,
			record:        ps.Record,
			phase:         reqPhase(ps.Phase),
			ringTTL:       ps.RingTTL,
			replicaRank:   ps.ReplicaRank,
			cachedVersion: ps.CachedVersion,
			truthAtIssue:  ps.TruthAtIssue,
		}
		if ps.HasReply {
			reply := ps.Reply
			// Checkpoints never serialize pool state (refs/released are
			// unexported); restore the stash's single owned reference.
			reply.refs = 1
			reply.released = false
			req.pendingReply = &reply
		}
		n.peers[ps.Origin].pendingPut(req)
	}
	n.started = true
	return nil
}

// allPending returns every peer's outstanding requests (unordered; the
// snapshot sorts them by ID afterwards).
func (n *Network) allPending() []*pendingReq {
	out := make([]*pendingReq, 0, n.PendingRequests())
	for _, p := range n.peers {
		p.pendingEach(func(req *pendingReq) { out = append(out, req) })
	}
	return out
}

// Rearm re-registers one node-layer recurring process from a scheduler
// snapshot. Unknown kinds (or kinds whose prerequisites this build lacks,
// e.g. a request process without a workload generator) are errors: the
// restored run would silently diverge from the captured one.
func (n *Network) Rearm(p sim.Proc, at float64) error {
	switch p.Kind {
	case procRequest:
		if n.src == nil {
			return fmt.Errorf("node: snapshot arms a request process but no workload source is configured")
		}
		if p.Owner < 0 || p.Owner >= len(n.peers) {
			return fmt.Errorf("node: request process for unknown peer %d", p.Owner)
		}
		n.peers[p.Owner].armRequest(at)
	case procUpdate:
		if n.src == nil || !n.src.UpdatesEnabled() {
			return fmt.Errorf("node: snapshot arms an update process but updates are not configured")
		}
		if p.Owner < 0 || p.Owner >= len(n.peers) {
			return fmt.Errorf("node: update process for unknown peer %d", p.Owner)
		}
		n.peers[p.Owner].armUpdate(at)
	case procMobility:
		if p.Owner < 0 || p.Owner >= len(n.peers) {
			return fmt.Errorf("node: mobility process for unknown peer %d", p.Owner)
		}
		n.peers[p.Owner].armMobilityCheck(at)
	case procAdaptive:
		if !n.cfg.Adaptive.Enabled {
			return fmt.Errorf("node: snapshot arms the adaptive controller but it is not configured")
		}
		n.armAdaptive(at)
	case procMeterReset:
		if n.meter == nil {
			return fmt.Errorf("node: snapshot arms a meter reset but no meter is configured")
		}
		n.armMeterReset(at)
	case procReqTimeout:
		id := uint64(p.Owner)
		origin := reqOrigin(id)
		if origin < 0 || origin >= len(n.peers) {
			return fmt.Errorf("node: snapshot arms a timeout for request %d with unknown origin %d", p.Owner, origin)
		}
		req, ok := n.peers[origin].pendingGet(id)
		if !ok {
			return fmt.Errorf("node: snapshot arms a timeout for unknown pending request %d", p.Owner)
		}
		n.armReqTimeout(req, at)
	default:
		return fmt.Errorf("node: unknown process kind %q", p.Kind)
	}
	return nil
}
