package node

import (
	"testing"

	"precinct/internal/radio"
)

func TestAdaptiveConfigValidate(t *testing.T) {
	if err := DefaultAdaptiveConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	enabled := DefaultAdaptiveConfig()
	enabled.Enabled = true
	if err := enabled.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*AdaptiveConfig){
		func(c *AdaptiveConfig) { c.Interval = 0 },
		func(c *AdaptiveConfig) { c.SplitAbove = 0 },
		func(c *AdaptiveConfig) { c.MergeBelow = -1 },
		func(c *AdaptiveConfig) { c.MergeBelow = c.SplitAbove },
		func(c *AdaptiveConfig) { c.MinRegions = 1 },
		func(c *AdaptiveConfig) { c.MaxRegions = 2; c.MinRegions = 4 },
	}
	for i, m := range bad {
		c := enabled
		m(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad adaptive config %d accepted", i)
		}
	}
	// Disabled configs skip validation entirely.
	off := AdaptiveConfig{}
	if err := off.Validate(); err != nil {
		t.Error("disabled adaptive config rejected")
	}
}

func TestAdaptiveSplitsCrowdedRegion(t *testing.T) {
	// Uniform static grid, 36 peers over 4 big regions = 9 per region;
	// split threshold 8 forces splits.
	o := defaultHarnessOpts()
	o.rows, o.cols = 2, 2
	o.generator = true
	o.mutate = func(c *Config) {
		c.Adaptive = AdaptiveConfig{
			Enabled: true, Interval: 30,
			SplitAbove: 8, MergeBelow: 2,
			MinRegions: 2, MaxRegions: 16,
		}
	}
	h := build(t, o)
	h.net.Run(200)
	st := h.net.AdaptiveStats()
	if st.Inspections == 0 {
		t.Fatal("controller never ran")
	}
	if st.Splits == 0 {
		t.Fatal("crowded regions never split")
	}
	if h.net.Table().Len() <= 4 {
		t.Errorf("region count %d did not grow", h.net.Table().Len())
	}
	// The network keeps serving through the reshapes.
	rep := h.net.Report()
	if rep.Requests == 0 || float64(rep.Failures)/float64(rep.Requests) > 0.3 {
		t.Errorf("service degraded during splits: %+v", rep)
	}
}

func TestAdaptiveMergesSparseRegions(t *testing.T) {
	// 36 peers over a 6x6 grid = 1 per region; merge threshold 3 forces
	// merges.
	o := defaultHarnessOpts()
	o.rows, o.cols = 6, 6
	o.generator = true
	o.mutate = func(c *Config) {
		c.Adaptive = AdaptiveConfig{
			Enabled: true, Interval: 30,
			SplitAbove: 30, MergeBelow: 3,
			MinRegions: 4, MaxRegions: 40,
		}
	}
	h := build(t, o)
	h.net.Run(300)
	st := h.net.AdaptiveStats()
	if st.Merges == 0 {
		t.Fatal("sparse regions never merged")
	}
	if h.net.Table().Len() >= 36 {
		t.Errorf("region count %d did not shrink", h.net.Table().Len())
	}
	if got := h.net.Table().Len(); got < 4 {
		t.Errorf("region count %d fell below MinRegions", got)
	}
}

func TestAdaptiveRespectsBounds(t *testing.T) {
	o := defaultHarnessOpts()
	o.rows, o.cols = 2, 2
	o.generator = true
	o.mutate = func(c *Config) {
		c.Adaptive = AdaptiveConfig{
			Enabled: true, Interval: 20,
			SplitAbove: 2, MergeBelow: 1, // absurdly eager splitting
			MinRegions: 2, MaxRegions: 6,
		}
	}
	h := build(t, o)
	h.net.Run(300)
	if got := h.net.Table().Len(); got > 6 {
		t.Errorf("region count %d exceeded MaxRegions", got)
	}
}

func TestAdaptiveKeysFollowReshapes(t *testing.T) {
	o := defaultHarnessOpts()
	o.rows, o.cols = 2, 2
	o.generator = true
	o.mutate = func(c *Config) {
		c.Adaptive = AdaptiveConfig{
			Enabled: true, Interval: 25,
			SplitAbove: 8, MergeBelow: 2,
			MinRegions: 2, MaxRegions: 16,
		}
	}
	h := build(t, o)
	h.net.Run(300)
	if h.net.AdaptiveStats().Splits == 0 {
		t.Skip("no reshapes this trace")
	}
	// After reshapes settle, keys sit in their (new) proper regions.
	table := h.net.Table()
	misplaced, total := 0, 0
	for i := 0; i < h.net.Peers(); i++ {
		p := h.net.Peer(radio.NodeID(i))
		if p.TableVersion() != h.net.TableVersions()-1 {
			continue // missed the last flood; its keys may lag
		}
		for _, k := range p.Store().Keys() {
			it, _ := p.Store().Get(k)
			want, ok := table.HomeRegion(k)
			if it.ReplicaRank > 0 {
				want, ok = table.ReplicaRegion(k)
			}
			if !ok {
				continue
			}
			total++
			if want.ID != p.RegionID() {
				misplaced++
			}
		}
	}
	if total == 0 {
		t.Fatal("no keys to check")
	}
	if float64(misplaced) > 0.15*float64(total) {
		t.Errorf("%d/%d keys misplaced after adaptive reshapes", misplaced, total)
	}
}
