package node

import (
	"sort"
	"testing"
)

// The layout accessors are proven behaviorally equivalent at the
// whole-scenario level by the root-package TestLayoutEquivalence suite;
// the tests below pin the container semantics directly — collision
// probing, load-factor growth, prune-as-rebuild, swap-delete and the
// freelist — where a scenario run would only exercise them implicitly.

func TestSeenTableStoreLookupGrow(t *testing.T) {
	var tab seenTable
	if _, ok := tab.lookup(42); ok {
		t.Fatalf("lookup on an empty table reported a hit")
	}
	// Push well past the 3/4 load factor of the minimum 16-slot table
	// so the table grows (and rehashes) several times. Sequential IDs
	// also land in clustered slots under Fibonacci hashing, exercising
	// the linear-probe path.
	const n = 200
	for id := uint64(1); id <= n; id++ {
		tab.store(id, float64(id))
	}
	if tab.used != n {
		t.Fatalf("used = %d after %d distinct stores", tab.used, n)
	}
	if len(tab.keys)&(len(tab.keys)-1) != 0 {
		t.Fatalf("table size %d is not a power of two", len(tab.keys))
	}
	if tab.used*4 > len(tab.keys)*3 {
		t.Fatalf("load factor above 3/4: %d used in %d slots", tab.used, len(tab.keys))
	}
	for id := uint64(1); id <= n; id++ {
		exp, ok := tab.lookup(id)
		if !ok || exp != float64(id) {
			t.Fatalf("lookup(%d) = %v, %v; want %v, true", id, exp, ok, float64(id))
		}
	}
	if _, ok := tab.lookup(n + 1); ok {
		t.Fatalf("lookup reported a hit for an absent ID")
	}
	// Overwriting must refresh in place, not duplicate.
	tab.store(7, 99.5)
	if exp, ok := tab.lookup(7); !ok || exp != 99.5 {
		t.Fatalf("overwrite: lookup(7) = %v, %v; want 99.5, true", exp, ok)
	}
	if tab.used != n {
		t.Fatalf("used = %d after overwrite, want %d", tab.used, n)
	}
}

func TestSeenTablePrune(t *testing.T) {
	var tab seenTable
	for id := uint64(1); id <= 100; id++ {
		tab.store(id, float64(id))
	}
	// Prune drops expiries <= now and keeps strictly-later ones, the
	// same boundary the legacy map prune used.
	tab.prune(50)
	if tab.used != 50 {
		t.Fatalf("used = %d after pruning at 50, want 50", tab.used)
	}
	for id := uint64(1); id <= 100; id++ {
		_, ok := tab.lookup(id)
		if want := id > 50; ok != want {
			t.Fatalf("after prune, lookup(%d) hit = %v, want %v", id, ok, want)
		}
	}
	// Pruning everything must leave a usable (re-initialized) table.
	tab.prune(1000)
	if tab.used != 0 {
		t.Fatalf("used = %d after pruning everything", tab.used)
	}
	tab.store(5, 6)
	if exp, ok := tab.lookup(5); !ok || exp != 6 {
		t.Fatalf("store after full prune: lookup(5) = %v, %v", exp, ok)
	}
}

// layoutPeers returns one peer per layout: the SoA default (seen table
// + pending slice) and the legacy reference (maps), matching how
// Network.Add configures them.
func layoutPeers() map[string]*Peer {
	soa := &Peer{}
	soa.seenTab.init(0)
	legacy := &Peer{
		seen:    map[uint64]float64{},
		pending: map[uint64]*pendingReq{},
	}
	return map[string]*Peer{"soa": soa, "legacy": legacy}
}

func TestPeerSeenAccessorsBothLayouts(t *testing.T) {
	for name, p := range layoutPeers() {
		t.Run(name, func(t *testing.T) {
			for id := uint64(1); id <= 40; id++ {
				p.seenStore(id, float64(id))
			}
			if got := p.seenLen(); got != 40 {
				t.Fatalf("seenLen = %d, want 40", got)
			}
			if exp, ok := p.seenLookup(17); !ok || exp != 17 {
				t.Fatalf("seenLookup(17) = %v, %v", exp, ok)
			}
			if _, ok := p.seenLookup(1000); ok {
				t.Fatalf("seenLookup reported a hit for an absent ID")
			}
			var ids []uint64
			var sum float64
			p.seenEach(func(id uint64, exp float64) {
				ids = append(ids, id)
				sum += exp
			})
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			if len(ids) != 40 || ids[0] != 1 || ids[39] != 40 || sum != 820 {
				t.Fatalf("seenEach visited ids %v (sum %v)", ids, sum)
			}
			p.seenPrune(20)
			if got := p.seenLen(); got != 20 {
				t.Fatalf("seenLen = %d after pruning at 20, want 20", got)
			}
			if _, ok := p.seenLookup(20); ok {
				t.Fatalf("entry at the prune boundary survived")
			}
			if _, ok := p.seenLookup(21); !ok {
				t.Fatalf("entry past the prune boundary was dropped")
			}
			p.seenReset(8)
			if got := p.seenLen(); got != 0 {
				t.Fatalf("seenLen = %d after reset", got)
			}
			p.seenStore(3, 4)
			if exp, ok := p.seenLookup(3); !ok || exp != 4 {
				t.Fatalf("store after reset: seenLookup(3) = %v, %v", exp, ok)
			}
		})
	}
}

func TestPeerPendingAccessorsBothLayouts(t *testing.T) {
	for name, p := range layoutPeers() {
		t.Run(name, func(t *testing.T) {
			reqs := make([]*pendingReq, 5)
			for i := range reqs {
				reqs[i] = &pendingReq{id: uint64(i + 1)}
				p.pendingPut(reqs[i])
			}
			if got := p.pendingLen(); got != 5 {
				t.Fatalf("pendingLen = %d, want 5", got)
			}
			if req, ok := p.pendingGet(3); !ok || req != reqs[2] {
				t.Fatalf("pendingGet(3) = %v, %v", req, ok)
			}
			if _, ok := p.pendingGet(99); ok {
				t.Fatalf("pendingGet reported a hit for an absent ID")
			}
			// Delete from the middle (swap-delete in the slice layout)
			// and from the end, plus an absent-ID no-op.
			p.pendingDelete(2)
			p.pendingDelete(5)
			p.pendingDelete(99)
			if got := p.pendingLen(); got != 3 {
				t.Fatalf("pendingLen = %d after deletes, want 3", got)
			}
			var ids []uint64
			p.pendingEach(func(req *pendingReq) { ids = append(ids, req.id) })
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			if len(ids) != 3 || ids[0] != 1 || ids[1] != 3 || ids[2] != 4 {
				t.Fatalf("pendingEach visited ids %v, want [1 3 4]", ids)
			}
			p.pendingReset()
			if got := p.pendingLen(); got != 0 {
				t.Fatalf("pendingLen = %d after reset", got)
			}
			p.pendingEach(func(*pendingReq) { t.Fatalf("pendingEach visited an entry after reset") })
		})
	}
}

func TestRequestFreelist(t *testing.T) {
	n := &Network{}
	a := n.acquireReq()
	a.id = 42
	n.releaseReq(a)
	if len(n.reqFree) != 1 {
		t.Fatalf("freelist holds %d boxes after release, want 1", len(n.reqFree))
	}
	b := n.acquireReq()
	if b != a {
		t.Fatalf("acquire did not recycle the released box")
	}
	if b.id != 0 {
		t.Fatalf("recycled box was not zeroed: id = %d", b.id)
	}
	if len(n.reqFree) != 0 {
		t.Fatalf("freelist holds %d boxes after acquire, want 0", len(n.reqFree))
	}
	// A second acquire with an empty freelist allocates fresh.
	c := n.acquireReq()
	if c == b {
		t.Fatalf("empty-freelist acquire returned a live box")
	}

	// The legacy reference path allocates per request: release must not
	// recycle (the pre-SoA implementation never reused boxes).
	legacy := &Network{cfg: Config{LegacyLayout: true}}
	r := legacy.acquireReq()
	legacy.releaseReq(r)
	if len(legacy.reqFree) != 0 {
		t.Fatalf("legacy release recycled a box into the freelist")
	}
}
