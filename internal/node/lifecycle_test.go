package node

import (
	"testing"

	"precinct/internal/consistency"
	"precinct/internal/radio"
)

// These tests pin the pooled message lifecycle contract (DESIGN.md
// section 12): every acquired message is released exactly once, on every
// path a message can die on — delivery, send-time loss, mid-flight loss,
// dead receivers, and the broadcast duplicate fast path. MsgPoolLive is
// the probe: unref panics on a double release, so live == 0 at a
// quiescent point proves exactly-once.

// drainTo runs the network to the horizon and then steps until the
// scheduler reaches a quiescent boundary: only the autonomous driver
// processes remain pending, so every in-flight message, timeout chain
// and retry has fully resolved.
func drainTo(t *testing.T, h *harness, run float64) {
	t.Helper()
	h.net.Run(run)
	// Quiescent() alone is not enough: request timeouts are proc-tagged
	// (they survive checkpoints), so also wait for the pending table to
	// empty. Between a request completing and the next driver firing both
	// conditions hold and every non-driver event has resolved.
	deadline := run + 4000
	for h.net.PendingRequests() != 0 || !h.sched.Quiescent() {
		if !h.sched.Step(deadline) {
			t.Fatalf("no quiescent point before t=%v", deadline)
		}
	}
}

// TestLifecycleLossyQuiescence: a lossy, mobile, full-protocol run ends
// with zero live pooled messages — mid-flight losses and send-time losses
// all settle through the drop handler.
func TestLifecycleLossyQuiescence(t *testing.T) {
	o := defaultHarnessOpts()
	o.mobile = true
	o.generator = true
	o.updateInt = 60
	o.loss = 0.3
	o.mutate = func(c *Config) {
		c.Consistency = consistency.DefaultConfig(consistency.PullEveryTime)
	}
	h := build(t, o)
	drainTo(t, h, 400)

	if n := h.net.PendingRequests(); n != 0 {
		t.Fatalf("%d pending requests after drain", n)
	}
	if live := h.net.MsgPoolLive(); live != 0 {
		t.Fatalf("%d live pooled messages at quiescence (acquired %d, released %d)",
			live, h.net.pool.acquired, h.net.pool.released)
	}
	if h.net.pool.acquired < 1000 {
		t.Fatalf("only %d messages acquired; the run is too quiet to prove anything", h.net.pool.acquired)
	}
	if drops := h.ch.Stats().Drops; drops == 0 {
		t.Fatal("no injected losses occurred; the lossy release path was not exercised")
	}
}

// TestLifecycleCrashQuiescence: crashing peers mid-run (dead-receiver
// drops, retries against dead forwarders, failed requests) still drains
// to zero live messages.
func TestLifecycleCrashQuiescence(t *testing.T) {
	o := defaultHarnessOpts()
	o.mobile = true
	o.generator = true
	o.updateInt = 60
	o.loss = 0.1
	h := build(t, o)

	h.net.Run(100)
	for id := radio.NodeID(0); id < 12; id++ {
		h.net.Crash(id)
	}
	drainTo(t, h, 400)

	if n := h.net.PendingRequests(); n != 0 {
		t.Fatalf("%d pending requests after drain", n)
	}
	if live := h.net.MsgPoolLive(); live != 0 {
		t.Fatalf("%d live pooled messages at quiescence (acquired %d, released %d)",
			live, h.net.pool.acquired, h.net.pool.released)
	}
	if h.net.pool.acquired < 1000 {
		t.Fatalf("only %d messages acquired; the run is too quiet to prove anything", h.net.pool.acquired)
	}
}

// TestLifecyclePoisonQuiescence re-runs the lossy scenario with released
// messages poisoned: any handler touching a message after releasing it
// dispatches on a scrambled kind and panics, so a clean completion is a
// use-after-release proof, not just a leak check.
func TestLifecyclePoisonQuiescence(t *testing.T) {
	t.Setenv("PRECINCT_DEBUG", "poison")
	o := defaultHarnessOpts()
	o.mobile = true
	o.generator = true
	o.updateInt = 60
	o.loss = 0.3
	h := build(t, o)
	if !h.net.pool.poison {
		t.Fatal("poison mode did not arm")
	}
	drainTo(t, h, 400)
	if live := h.net.MsgPoolLive(); live != 0 {
		t.Fatalf("%d live pooled messages at quiescence", live)
	}
}

// TestLifecycleDedupFastPathReleases drives the broadcast duplicate fast
// path directly: a shared broadcast payload delivered to a receiver that
// has already seen the flood must drop exactly one reference without
// taking a header copy, and a fresh receiver must exchange its reference
// for a copy that its handler then releases.
func TestLifecycleDedupFastPathReleases(t *testing.T) {
	h := build(t, defaultHarnessOpts())
	n := h.net

	p2 := n.Peer(2)
	key := h.keyHomedIn(t, p2.regionID, false) // p2 is not a holder
	if _, ok := p2.store.Get(key); ok {
		t.Fatal("test key unexpectedly stored at the receiver")
	}

	base := n.MsgPoolLive()
	m := n.newMsg(message{Kind: kindSearchFlood, ID: 1, FloodID: 42, Key: key, Origin: 0, TTL: 1})
	m.refs = 2 // as if the broadcast scheduled two receivers

	n.Peer(1).markSeen(42)
	n.handleFrame(1, radio.Frame{From: 0, Broadcast: true, Payload: m})
	if got := n.MsgPoolLive(); got != base+1 {
		t.Fatalf("after duplicate delivery: %d live messages, want %d (one shared ref dropped)", got, base+1)
	}
	if m.released {
		t.Fatal("shared payload released while a reference was outstanding")
	}

	// Fresh receiver: header copy acquired, shared ref released, TTL=1 so
	// the handler releases the copy instead of rebroadcasting.
	n.handleFrame(2, radio.Frame{From: 0, Broadcast: true, Payload: m})
	if got := n.MsgPoolLive(); got != base {
		t.Fatalf("after final delivery: %d live messages, want %d", got, base)
	}
	if !m.released {
		t.Fatal("shared payload not returned to the pool after its last reference")
	}
}

// TestLifecycleDeadReceiverReleases covers both dead-receiver release
// paths: the radio-level DeadDrop (delivery scheduled, receiver dies
// before it fires) and the direct handleFrame dead-peer guard.
func TestLifecycleDeadReceiverReleases(t *testing.T) {
	h := build(t, defaultHarnessOpts())
	n := h.net

	nbrs := h.ch.Neighbors(0)
	if len(nbrs) == 0 {
		t.Fatal("node 0 has no neighbors")
	}
	to := nbrs[0].ID

	base := n.MsgPoolLive()
	m := n.newMsg(message{Kind: kindReply, ID: 7, Origin: to, OriginPos: h.ch.Position(to)})
	if !n.unicast(0, to, m) {
		t.Fatal("unicast to a live neighbor failed")
	}
	n.Crash(to)
	h.sched.Run(1) // the in-flight delivery resolves as a DeadDrop
	if got := n.MsgPoolLive(); got != base {
		t.Fatalf("after dead-receiver drop: %d live messages, want %d", got, base)
	}
	if h.ch.Stats().DeadDrops == 0 {
		t.Fatal("no DeadDrop was recorded; the radio release path was not exercised")
	}

	// Direct dispatch to a dead peer settles ownership in handleFrame.
	m2 := n.newMsg(message{Kind: kindReply, ID: 8, Origin: to})
	n.handleFrame(to, radio.Frame{From: 0, To: to, Payload: m2})
	if got := n.MsgPoolLive(); got != base {
		t.Fatalf("after dead-peer dispatch: %d live messages, want %d", got, base)
	}
}

// TestLifecycleSendTimeLossReleases: a unicast lost at send time settles
// synchronously through the drop handler before Unicast returns.
func TestLifecycleSendTimeLossReleases(t *testing.T) {
	o := defaultHarnessOpts()
	o.loss = 0.9
	h := build(t, o)
	n := h.net

	nbrs := h.ch.Neighbors(0)
	if len(nbrs) == 0 {
		t.Fatal("node 0 has no neighbors")
	}
	to := nbrs[0].ID

	base := n.MsgPoolLive()
	for i := 0; i < 50; i++ {
		m := n.newMsg(message{Kind: kindReply, ID: uint64(100 + i), Origin: to, OriginPos: h.ch.Position(to)})
		if !n.unicast(0, to, m) {
			t.Fatal("unicast to a live neighbor failed")
		}
		h.sched.Run(h.sched.Now() + 1) // deliver the survivors
		if got := n.MsgPoolLive(); got != base {
			t.Fatalf("send %d: %d live messages, want %d", i, got, base)
		}
	}
	if h.ch.Stats().Drops == 0 {
		t.Fatal("no send-time losses at 90%; the loss release path was not exercised")
	}
}

// TestLifecycleDoubleReleasePanics pins the double-release guard: it must
// fire in every mode, not only under poison.
func TestLifecycleDoubleReleasePanics(t *testing.T) {
	h := build(t, defaultHarnessOpts())
	n := h.net
	m := n.newMsg(message{Kind: kindReply, ID: 9})
	n.releaseMsg(m)
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	n.releaseMsg(m)
}

// TestForwardAllocFree is the alloc floor for the end-to-end GPSR
// forwarding cycle: acquiring a pooled reply, routing it several hops
// through the radio (event freelist, delivery freelist, in-place unicast
// mutation) until the addressee releases it must not allocate once the
// pools are warm.
func TestForwardAllocFree(t *testing.T) {
	h := build(t, defaultHarnessOpts())
	n := h.net

	// Pick a destination a few hops out (grid spacing ~200, range 250).
	origin := radio.NodeID(0)
	var far radio.NodeID = -1
	for id := 0; id < h.net.Peers(); id++ {
		d := h.ch.Position(origin).Dist(h.ch.Position(radio.NodeID(id)))
		if d > 500 && d < 700 {
			far = radio.NodeID(id)
			break
		}
	}
	if far < 0 {
		t.Fatal("no 3-hop destination in the grid")
	}
	pos := h.ch.Position(far)

	forward := func() {
		m := n.newMsg(message{Kind: kindReply, ID: 7, Origin: far, OriginPos: pos})
		n.routeOwned(n.Peer(origin), m)
		h.sched.RunAll()
		if live := n.MsgPoolLive(); live != 0 {
			t.Fatalf("%d live messages after the forward drained", live)
		}
	}
	for i := 0; i < 16; i++ {
		forward() // warm the pools and per-epoch position caches
	}

	avg := testing.AllocsPerRun(200, forward)
	if avg >= 1 {
		t.Errorf("multi-hop GPSR forward allocates %.2f objects/cycle, want < 1", avg)
	}
}
