package node

import (
	"math/rand"
	"sort"

	"precinct/internal/cache"
	"precinct/internal/radio"
	"precinct/internal/region"
	"precinct/internal/sim"
	"precinct/internal/trace"
	"precinct/internal/workload"
)

// Proc kinds for the node layer's re-armable recurring processes. The
// checkpoint restore path dispatches on these (see Network.Rearm).
const (
	procRequest    = "request"
	procUpdate     = "update"
	procMobility   = "mobility"
	procAdaptive   = "adaptive"
	procMeterReset = "meter-reset"
	procReqTimeout = "req-timeout"
)

// Peer is one mobile node's protocol state.
type Peer struct {
	id  radio.NodeID
	net *Network

	// cache is the dynamic cache space (nil when disabled).
	cache *cache.Cache
	// store is the static space: authoritative copies of keys whose home
	// (or replica) region this peer serves.
	store *cache.Store

	// regionID is the peer's region as of its last mobility check.
	regionID region.ID
	// tableIdx is the region-table version this peer has received.
	tableIdx int

	alive bool
	// Flood-wave dedup: flood ID -> expiry time. Entries are pruned
	// periodically; a flood wave is over within seconds, so a short
	// retention bounds memory on long runs. The SoA layout keeps the
	// records in seenTab (flat open-addressed arrays); the legacy
	// reference layout keeps them in the seen map. Exactly one is live
	// per run — a non-nil map selects the legacy path everywhere (see
	// layout.go).
	seen      map[uint64]float64
	seenTab   seenTable
	nextPrune float64
	rng       *rand.Rand

	// Outstanding requests by ID. Requester state lives with the
	// requester (not the network) so a sharded run touches it only on
	// the peer's own shard. The SoA layout keeps the handful of live
	// requests in the pendingS slice (linear search, swap delete); the
	// legacy layout keeps the pending map.
	pending  map[uint64]*pendingReq
	pendingS []*pendingReq
	// nextID feeds newID; per-peer so ID assignment is independent of
	// cross-peer event interleaving.
	nextID uint64
}

// newID hands out a fresh message/flood/request identifier, unique
// network-wide: the peer index tags the top bits, a per-peer counter the
// low 40. Each peer draws only from its own sequence, so a sharded run
// hands out exactly the IDs the sequential run does.
func (p *Peer) newID() uint64 {
	p.nextID++
	return uint64(p.id+1)<<40 | p.nextID
}

// reqOrigin decodes the issuing peer from a request ID.
func reqOrigin(id uint64) int { return int(id>>40) - 1 }

// seenRetention is how long flood IDs are remembered, in seconds. Flood
// waves (TTL-bounded broadcasts plus retries) die out well within this.
const seenRetention = 120

// ID returns the peer's node ID.
func (p *Peer) ID() radio.NodeID { return p.id }

// Alive reports liveness.
func (p *Peer) Alive() bool { return p.alive }

// RegionID returns the peer's region as of its last mobility check.
func (p *Peer) RegionID() region.ID { return p.regionID }

// table returns the region-table version this peer currently knows.
func (p *Peer) table() *region.Table { return p.net.tables[p.tableIdx] }

// TableVersion returns the peer's region-table version index.
func (p *Peer) TableVersion() int { return p.tableIdx }

// onTableUpdate adopts a disseminated region-table version and keeps the
// flood going.
func (p *Peer) onTableUpdate(m *message) {
	if p.markSeen(m.FloodID) {
		p.net.releaseMsg(m)
		return
	}
	p.net.applyTable(p, m.TableIdx)
	if m.TTL > 1 {
		m.TTL--
		p.net.broadcast(p.id, m)
		return
	}
	p.net.releaseMsg(m)
}

// Cache exposes the dynamic cache (nil when disabled).
func (p *Peer) Cache() *cache.Cache { return p.cache }

// Store exposes the static store.
func (p *Peer) Store() *cache.Store { return p.store }

// dedupID returns the duplicate-suppression ID a delivered message of
// this kind is checked against as its handler's first action, and
// whether the kind dedups at all. It powers the duplicate fast path in
// handleFrame, so it must list exactly the kinds whose handlers open
// with `if p.markSeen(...) { return }` and do nothing else on the
// duplicate path.
func dedupID(m *message) (uint64, bool) {
	switch m.Kind {
	case kindRegionalSearch:
		return m.ID, true
	case kindSearchFlood, kindHomeFlood, kindUpdateFlood,
		kindInvalidate, kindPollFlood, kindTableUpdate:
		return m.FloodID, true
	default:
		return 0, false
	}
}

// alreadySeen reports whether a flood ID is currently marked, without
// recording anything: the read half of markSeen, used by the duplicate
// fast path. markSeen on a currently-marked ID has no side effects, so
// a true result here means the full handler would drop the message
// without mutating anything.
func (p *Peer) alreadySeen(id uint64) bool {
	exp, ok := p.seenLookup(id)
	return ok && exp > p.net.sched.Now()
}

// markSeen records a flood ID, reporting whether it was already seen.
func (p *Peer) markSeen(id uint64) bool {
	now := p.net.sched.Now()
	if exp, ok := p.seenLookup(id); ok && exp > now {
		return true
	}
	p.seenStore(id, now+seenRetention)
	if now >= p.nextPrune {
		p.seenPrune(now)
		p.nextPrune = now + seenRetention
	}
	return false
}

// srcCtx builds the workload context for a draw happening now. It is a
// stack value — the interface fields are copies of per-network state —
// so the hot request/update path allocates nothing for it.
func (p *Peer) srcCtx() workload.Ctx {
	return workload.Ctx{Peer: int(p.id), Now: p.net.sched.Now(), RNG: p.rng, Loc: p.net.loc}
}

// scheduleNextRequest arms the peer's request process: the gap to the
// next request is drawn now, so the stream state at a checkpoint
// boundary already accounts for every armed event.
func (p *Peer) scheduleNextRequest() {
	gap := p.net.src.NextRequestGap(p.srcCtx())
	p.armRequest(p.net.sched.Now() + gap)
}

// armRequest registers the request event at an absolute time, pinned to
// the peer's own execution context so a sharded run fires it on the
// peer's shard. Restore calls this directly with the snapshot's recorded
// fire time.
func (p *Peer) armRequest(at float64) {
	p.net.sched.AtProcAs(sim.Proc{Kind: procRequest, Owner: int(p.id)}, at, func() {
		if p.alive {
			k := p.net.src.PickKey(p.srcCtx())
			p.net.RequestFrom(p.id, k)
		}
		p.scheduleNextRequest()
	}, int(p.id))
}

// scheduleNextUpdate arms the peer's update process.
func (p *Peer) scheduleNextUpdate() {
	gap := p.net.src.NextUpdateGap(p.srcCtx())
	p.armUpdate(p.net.sched.Now() + gap)
}

// armUpdate registers the update event at an absolute time. Updates are
// network-global work (execAs -1): an update bumps the shared ground
// truth, so a sharded run executes it at a barrier while every shard
// worker is parked.
func (p *Peer) armUpdate(at float64) {
	p.net.sched.AtProcAs(sim.Proc{Kind: procUpdate, Owner: int(p.id)}, at, func() {
		if p.alive {
			k := p.net.src.PickUpdateKey(p.srcCtx())
			p.net.UpdateFrom(p.id, k)
		}
		p.scheduleNextUpdate()
	}, -1)
}

// scheduleMobilityCheck arms the periodic inter-region mobility detector
// (Section 2.3: "peers check their positions periodically").
func (p *Peer) scheduleMobilityCheck() {
	p.armMobilityCheck(p.net.sched.Now() + p.net.cfg.MobilityCheckInterval)
}

// armMobilityCheck registers the mobility check at an absolute time,
// pinned to the peer's own execution context.
func (p *Peer) armMobilityCheck(at float64) {
	p.net.sched.AtProcAs(sim.Proc{Kind: procMobility, Owner: int(p.id)}, at, func() {
		if p.alive {
			p.checkMobility()
		}
		p.scheduleMobilityCheck()
	}, int(p.id))
}

// checkMobility detects a region crossing and re-homes any stored keys
// that no longer belong with this peer.
func (p *Peer) checkMobility() {
	r, ok := p.table().Locate(p.net.ch.Position(p.id))
	if ok && r.ID != p.regionID {
		p.regionID = r.ID
		p.net.emit(trace.Event{Kind: trace.RegionChange, Node: int(p.id), Region: int(r.ID)})
	}
	// Re-homing runs on every check, not only on crossings: it also
	// repairs keys adopted after failed handoffs and keys displaced by
	// region-table changes.
	if p.store.Len() > 0 {
		p.rehomeKeys(false)
	}
}

// properRegion returns the region a stored copy belongs to under the
// current table: the key's home region for primary copies (rank 0), the
// rank-r replica region for rank-r replica copies.
func (p *Peer) properRegion(it *cache.StoredItem) (region.Region, bool) {
	switch {
	case it.ReplicaRank == 0:
		return p.table().HomeRegion(it.Key)
	case it.ReplicaRank == 1:
		// Equivalent to ReplicaRegionAt(k, 1) — kept on the original
		// call so the paper's single-replica runs touch only code that
		// predates the k-replica layer.
		return p.table().ReplicaRegion(it.Key)
	default:
		return p.table().ReplicaRegionAt(it.Key, it.ReplicaRank)
	}
}

// rehomeKeys transfers every stored copy whose proper region is not the
// peer's current region to the best custodian of that region: alive,
// inside it, nearest its center (the paper's criteria; peers near the
// center are least likely to leave soon). Copies with no reachable
// custodian stay here and are retried at the next mobility check. When
// evacuate is true (graceful quit), copies belonging to the peer's own
// region are transferred too.
func (p *Peer) rehomeKeys(evacuate bool) {
	type group struct {
		target *Peer
		region region.ID
		items  []handoffItem
	}
	groups := make(map[region.ID]*group)
	for _, k := range p.store.Keys() {
		it, _ := p.store.Get(k)
		proper, ok := p.properRegion(it)
		if !ok {
			continue
		}
		if proper.ID == p.regionID && !evacuate {
			continue // the copy is where it belongs
		}
		g := groups[proper.ID]
		if g == nil {
			target := p.net.peerNearestCenterExcluding(p.table(), proper.ID, p)
			if target == nil {
				if evacuate {
					// Nobody can take these: they die with us.
					p.net.stats.LostKeys++
					p.store.Remove(k)
				}
				continue
			}
			g = &group{target: target, region: proper.ID}
			groups[proper.ID] = g
		}
		g.items = append(g.items, handoffItem{
			Key: it.Key, Size: it.Size, Version: it.Version,
			UpdatedAt: it.UpdatedAt, TTR: it.TTR, ReplicaRank: it.ReplicaRank,
		})
		p.store.Remove(k)
	}
	// Send in ascending region order: map iteration order is random, and
	// message order must be deterministic for runs to be reproducible.
	order := make([]region.ID, 0, len(groups))
	for id := range groups {
		order = append(order, id)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	for _, id := range order {
		g := groups[id]
		m := p.net.newMsg(message{
			Kind: kindHandoff, ID: p.newID(),
			Origin: p.id, OriginPos: p.net.ch.Position(p.id),
			TargetRegion: g.region, TargetPos: p.net.ch.Position(g.target.id),
			TargetNode: g.target.id, HasTargetNode: true,
			Items: g.items,
		})
		p.net.stats.Handoffs++
		p.net.emit(trace.Event{
			Kind: trace.Handoff, Node: int(p.id), Region: int(g.region), Count: len(g.items),
		})
		if p.id == g.target.id {
			p.onHandoff(m)
			continue
		}
		p.net.forwardWithRetry(p, m)
	}
	if p.net.probe != nil {
		p.net.probe.AfterRehome(p, evacuate)
	}
}

// onHandoff receives a key transfer: the addressee installs the items,
// intermediate nodes forward.
func (p *Peer) onHandoff(m *message) {
	if !m.HasTargetNode || m.TargetNode != p.id {
		p.net.forwardWithRetry(p, m)
		return
	}
	p.adoptItems(m.Items)
	p.net.releaseMsg(m)
}

// adoptItems installs transferred copies, keeping fresher local versions.
func (p *Peer) adoptItems(items []handoffItem) {
	for _, it := range items {
		if cur, ok := p.store.Get(it.Key); ok && cur.Version >= it.Version {
			continue // already holds a copy at least as fresh
		}
		p.store.Put(cache.StoredItem{
			Key: it.Key, Size: it.Size, Version: it.Version,
			UpdatedAt: it.UpdatedAt, TTR: it.TTR, ReplicaRank: it.ReplicaRank,
		})
	}
}
