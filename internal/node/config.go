// Package node implements the peer protocol layer of the simulator: the
// PReCinCt search process (local cache → regional broadcast → GPSR route
// to the home region → localized flood → routed response), the flooding
// and expanding-ring retrieval baselines, the cooperative-cache admission
// control and replacement hooks, the three consistency schemes' message
// choreography, inter-region mobility key handoff, and the replica-region
// fault-tolerance mechanism.
package node

import (
	"fmt"

	"precinct/internal/cache"
	"precinct/internal/consistency"
	"precinct/internal/region"
)

// RetrievalScheme selects the data retrieval protocol.
type RetrievalScheme int

// The retrieval schemes the paper compares.
const (
	// PReCinCt is the paper's region-based scheme.
	PReCinCt RetrievalScheme = iota
	// Flooding broadcasts every request through the whole network.
	Flooding
	// ExpandingRing floods with growing TTLs until the data is found.
	ExpandingRing
)

// String implements fmt.Stringer.
func (s RetrievalScheme) String() string {
	switch s {
	case PReCinCt:
		return "precinct"
	case Flooding:
		return "flooding"
	case ExpandingRing:
		return "expanding-ring"
	default:
		return fmt.Sprintf("retrieval(%d)", int(s))
	}
}

// ParseRetrievalScheme converts a name back to a scheme.
func ParseRetrievalScheme(name string) (RetrievalScheme, error) {
	switch name {
	case "precinct":
		return PReCinCt, nil
	case "flooding":
		return Flooding, nil
	case "expanding-ring":
		return ExpandingRing, nil
	default:
		return PReCinCt, fmt.Errorf("node: unknown retrieval scheme %q", name)
	}
}

// Config parameterizes the protocol layer of one simulation run.
type Config struct {
	Retrieval   RetrievalScheme
	Consistency consistency.Config

	// Policy is the dynamic-cache replacement policy shared by all
	// peers (policies are stateless).
	Policy cache.Policy
	// CacheBytes is the dynamic cache capacity per peer in bytes.
	// Zero disables dynamic caching (the Section 5 validation setup).
	CacheBytes int64
	// LinearCache selects the retained O(n) reference victim scan for
	// eviction instead of the default heap index. Both pick identical
	// victims (DESIGN.md section 11); the flag exists so the equivalence
	// can be re-proven on whole scenarios at any time.
	LinearCache bool
	// NoPooling disables the message freelist and the planar-set cache:
	// every message is a fresh allocation, forwarding clones at every
	// hop, and GPSR re-planarizes on every perimeter decision — the
	// pre-pooling reference path. Both paths are bit-identical by
	// contract (DESIGN.md section 12); the flag exists so the pooled
	// lifecycle can be re-proven equivalent on whole scenarios.
	NoPooling bool
	// LegacyLayout selects the retained map-backed per-peer containers
	// (flood-dedup map, pending-request map, individually allocated
	// peers) instead of the default struct-of-arrays layout (peer slab,
	// open-addressed seen table, pending slice with a request freelist).
	// Both layouts are bit-identical by contract (DESIGN.md section 14);
	// the flag exists so the equivalence can be re-proven on whole
	// scenarios at any time.
	LegacyLayout bool

	// EnRoute lets peers on the path to the home region answer requests
	// from their caches (Section 3.1).
	EnRoute bool
	// Replication maintains replica regions per key (Section 2.4).
	Replication bool
	// Replicas is the number of replica regions per key when Replication
	// is on: the rank-r replica (1 <= r <= Replicas) lives in the
	// (r+1)-th nearest region to the key's hash location. 0 selects the
	// paper's single replica region; values above 1 home each key in the
	// k best regions with load-aware replica placement (DESIGN.md
	// section 16). Capped at region.MaxReplicaRank.
	Replicas int

	// RegionTTL bounds intra-region floods in hops.
	RegionTTL int
	// NetworkTTL bounds network-wide floods (flooding retrieval,
	// plain-push invalidations).
	NetworkTTL int
	// MaxRingTTL caps the expanding-ring search.
	MaxRingTTL int
	// MaxRouteHops caps GPSR-routed messages; perimeter walks over a
	// changing topology can otherwise wander indefinitely.
	MaxRouteHops int

	// RegionalTimeout is how long a requester waits for an answer from
	// its own region before contacting the home region, seconds.
	RegionalTimeout float64
	// RemoteTimeout is how long it waits for the home (or replica)
	// region, seconds.
	RemoteTimeout float64
	// RingTimeout is the per-round wait of the expanding-ring search,
	// seconds (scaled by the round's TTL).
	RingTimeout float64

	// MobilityCheckInterval is how often peers check whether they have
	// crossed a region boundary, seconds.
	MobilityCheckInterval float64

	// ControlBytes is the on-air size of small protocol messages
	// (requests, polls, invalidations, handoff headers).
	ControlBytes int

	// Warmup discards metrics for requests issued before this sim time,
	// letting caches fill first. Seconds.
	Warmup float64

	// Adaptive configures the dynamic region management controller
	// (disabled by default).
	Adaptive AdaptiveConfig
}

// DefaultConfig returns the scenario defaults used by the paper's mobile
// experiments.
func DefaultConfig() Config {
	p, err := cache.NewGDLD(cache.DefaultWeights())
	if err != nil {
		panic(err) // default weights are valid by construction
	}
	return Config{
		Retrieval:             PReCinCt,
		Consistency:           consistency.DefaultConfig(consistency.None),
		Policy:                p,
		CacheBytes:            64 * 1024,
		EnRoute:               true,
		Replication:           true,
		Replicas:              1,
		RegionTTL:             4,
		NetworkTTL:            16,
		MaxRingTTL:            16,
		MaxRouteHops:          48,
		RegionalTimeout:       0.15,
		RemoteTimeout:         1.5,
		RingTimeout:           0.25,
		MobilityCheckInterval: 1.0,
		ControlBytes:          64,
		Warmup:                200,
		Adaptive:              DefaultAdaptiveConfig(),
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Retrieval < PReCinCt || c.Retrieval > ExpandingRing {
		return fmt.Errorf("node: unknown retrieval scheme %d", int(c.Retrieval))
	}
	if err := c.Consistency.Validate(); err != nil {
		return err
	}
	if c.Policy == nil {
		return fmt.Errorf("node: nil cache policy")
	}
	if c.CacheBytes < 0 {
		return fmt.Errorf("node: negative cache capacity %d", c.CacheBytes)
	}
	if c.Replicas < 0 || c.Replicas > region.MaxReplicaRank {
		return fmt.Errorf("node: replica count %d outside [0, %d]", c.Replicas, region.MaxReplicaRank)
	}
	if c.RegionTTL <= 0 || c.NetworkTTL <= 0 || c.MaxRingTTL <= 0 || c.MaxRouteHops <= 0 {
		return fmt.Errorf("node: TTLs and hop caps must be positive")
	}
	if c.RegionalTimeout <= 0 || c.RemoteTimeout <= 0 || c.RingTimeout <= 0 {
		return fmt.Errorf("node: timeouts must be positive")
	}
	if c.MobilityCheckInterval <= 0 {
		return fmt.Errorf("node: mobility check interval must be positive")
	}
	if c.ControlBytes <= 0 {
		return fmt.Errorf("node: control message size must be positive")
	}
	if c.Warmup < 0 {
		return fmt.Errorf("node: negative warmup")
	}
	if err := c.Adaptive.Validate(); err != nil {
		return err
	}
	return nil
}
