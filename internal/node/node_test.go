package node

import (
	"fmt"
	"math/rand"
	"testing"

	"precinct/internal/consistency"
	"precinct/internal/energy"
	"precinct/internal/geo"
	"precinct/internal/metrics"
	"precinct/internal/mobility"
	"precinct/internal/radio"
	"precinct/internal/region"
	"precinct/internal/sim"
	"precinct/internal/workload"
)

// harness bundles a fully wired test network.
type harness struct {
	net   *Network
	sched *sim.Scheduler
	ch    *radio.Channel
	table *region.Table
	cat   *workload.Catalog
	coll  *metrics.Collector
	meter *energy.Meter
}

type harnessOpts struct {
	nodes      int
	areaSide   float64
	rows, cols int
	seed       int64
	mobile     bool
	maxSpeed   float64
	loss       float64
	generator  bool
	updateInt  float64
	catalog    workload.CatalogConfig
	mutate     func(*Config)
}

func defaultHarnessOpts() harnessOpts {
	return harnessOpts{
		nodes:    36,
		areaSide: 1200,
		rows:     3, cols: 3,
		seed:    1,
		catalog: workload.CatalogConfig{Items: 200, MinSize: 1024, MaxSize: 4096},
	}
}

func build(t *testing.T, o harnessOpts) *harness {
	t.Helper()
	rng := sim.NewRNG(o.seed)
	sched := sim.NewScheduler()
	area := geo.NewRect(geo.Pt(0, 0), geo.Pt(o.areaSide, o.areaSide))

	var mob mobility.Model
	var err error
	if o.mobile {
		speed := o.maxSpeed
		if speed == 0 {
			speed = 6
		}
		mob, err = mobility.NewWaypoint(o.nodes, mobility.WaypointConfig{
			Area: area, MinSpeed: 0.5, MaxSpeed: speed, Pause: 5,
		}, rng)
	} else {
		mob, err = mobility.NewGridStatic(o.nodes, area, 0.2, rng.Stream("placement"))
	}
	if err != nil {
		t.Fatal(err)
	}

	meter, err := energy.NewMeter(o.nodes, energy.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	radioCfg := radio.DefaultConfig()
	radioCfg.LossRate = o.loss
	loss := make([]*rand.Rand, o.nodes)
	for i := range loss {
		loss[i] = rng.Stream(fmt.Sprintf("loss/%d", i))
	}
	ch, err := radio.New(radioCfg, sched, mob, meter, loss)
	if err != nil {
		t.Fatal(err)
	}
	table, err := region.NewGrid(area, o.rows, o.cols)
	if err != nil {
		t.Fatal(err)
	}
	cat, err := workload.NewCatalog(o.catalog)
	if err != nil {
		t.Fatal(err)
	}

	cfg := DefaultConfig()
	cfg.Warmup = 0
	if o.mutate != nil {
		o.mutate(&cfg)
	}

	// src stays a nil interface when the harness drives traffic by hand;
	// assigning a nil *Generator-backed source here would defeat the
	// network's src == nil checks.
	var src workload.Source
	if o.generator {
		gen, err := workload.NewGenerator(workload.GeneratorConfig{
			Catalog: cat, ZipfTheta: 0.8, RequestInterval: 30, UpdateInterval: o.updateInt,
		})
		if err != nil {
			t.Fatal(err)
		}
		src = workload.DefaultSource{Gen: gen}
	}

	coll := metrics.NewCollector()
	net, err := New(Options{
		Config: cfg, Scheduler: sched, Channel: ch, Regions: table,
		Catalog: cat, Source: src, Collector: coll, Meter: meter, RNG: rng,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &harness{net: net, sched: sched, ch: ch, table: table, cat: cat, coll: coll, meter: meter}
}

// keyHomedIn finds a key whose home region is (or is not) the given one.
func (h *harness) keyHomedIn(t *testing.T, want region.ID, equal bool) workload.Key {
	t.Helper()
	for _, k := range h.cat.Keys() {
		home, ok := h.table.HomeRegion(k)
		if !ok {
			continue
		}
		if (home.ID == want) == equal {
			return k
		}
	}
	t.Fatal("no key with requested home region relation")
	return 0
}

func TestConfigValidateRejectsBadValues(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.Retrieval = RetrievalScheme(9) },
		func(c *Config) { c.Policy = nil },
		func(c *Config) { c.CacheBytes = -1 },
		func(c *Config) { c.RegionTTL = 0 },
		func(c *Config) { c.NetworkTTL = -1 },
		func(c *Config) { c.MaxRingTTL = 0 },
		func(c *Config) { c.RegionalTimeout = 0 },
		func(c *Config) { c.RemoteTimeout = -1 },
		func(c *Config) { c.RingTimeout = 0 },
		func(c *Config) { c.MobilityCheckInterval = 0 },
		func(c *Config) { c.ControlBytes = 0 },
		func(c *Config) { c.Warmup = -1 },
		func(c *Config) { c.Consistency.Alpha = 2 },
	}
	for i, m := range mutations {
		cfg := DefaultConfig()
		m(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRetrievalSchemeStrings(t *testing.T) {
	for _, s := range []RetrievalScheme{PReCinCt, Flooding, ExpandingRing} {
		parsed, err := ParseRetrievalScheme(s.String())
		if err != nil || parsed != s {
			t.Errorf("round trip failed for %v", s)
		}
	}
	if _, err := ParseRetrievalScheme("nope"); err == nil {
		t.Error("bogus retrieval scheme parsed")
	}
	if RetrievalScheme(7).String() != "retrieval(7)" {
		t.Error("unknown scheme String")
	}
}

func TestNewRequiresDependencies(t *testing.T) {
	if _, err := New(Options{Config: DefaultConfig()}); err == nil {
		t.Error("New without dependencies accepted")
	}
}

func TestInitialPlacement(t *testing.T) {
	h := build(t, defaultHarnessOpts())
	// Every key must have at least one holder located in its home
	// region, and with replication at least one in the replica region.
	holders := make(map[workload.Key]int)
	repHolders := make(map[workload.Key]int)
	for i := 0; i < h.net.Peers(); i++ {
		p := h.net.Peer(radio.NodeID(i))
		for _, k := range p.Store().Keys() {
			home, _ := h.table.HomeRegion(k)
			rep, _ := h.table.ReplicaRegion(k)
			pos := h.ch.Position(p.ID())
			switch {
			case home.Bounds.Contains(pos):
				holders[k]++
			case rep.Bounds.Contains(pos):
				repHolders[k]++
			default:
				t.Errorf("key %d stored outside home and replica regions", k)
			}
		}
	}
	for _, k := range h.cat.Keys() {
		if holders[k] == 0 {
			t.Errorf("key %d has no home-region holder", k)
		}
		if repHolders[k] == 0 {
			t.Errorf("key %d has no replica holder", k)
		}
		if h.net.Truth(k) != 1 {
			t.Errorf("key %d truth = %d, want 1", k, h.net.Truth(k))
		}
	}
}

func TestPlacementWithoutReplication(t *testing.T) {
	o := defaultHarnessOpts()
	o.mutate = func(c *Config) { c.Replication = false }
	h := build(t, o)
	for i := 0; i < h.net.Peers(); i++ {
		p := h.net.Peer(radio.NodeID(i))
		for _, k := range p.Store().Keys() {
			home, _ := h.table.HomeRegion(k)
			if !home.Bounds.Contains(h.ch.Position(p.ID())) {
				t.Errorf("key %d stored outside home region with replication off", k)
			}
		}
	}
}

// requesterFor returns a peer in a different region from the key's home.
func (h *harness) requesterFor(t *testing.T, k workload.Key) *Peer {
	t.Helper()
	home, _ := h.table.HomeRegion(k)
	for i := 0; i < h.net.Peers(); i++ {
		p := h.net.Peer(radio.NodeID(i))
		if p.RegionID() != home.ID {
			if _, holds := p.Store().Get(k); !holds {
				return p
			}
		}
	}
	t.Fatal("no requester outside home region")
	return nil
}

func TestRemoteFetchSucceeds(t *testing.T) {
	h := build(t, defaultHarnessOpts())
	k := h.cat.Keys()[0]
	p := h.requesterFor(t, k)
	h.net.RequestFrom(p.ID(), k)
	h.sched.Run(10)
	rep := h.net.Report()
	if rep.Requests != 1 || rep.Failures != 0 {
		t.Fatalf("report: %+v", rep)
	}
	if rep.ByClass["remote"] != 1 {
		t.Errorf("expected a remote hit, got %v", rep.ByClass)
	}
	if rep.MeanLatency <= 0 {
		t.Error("remote fetch with zero latency")
	}
	// The item must now be cached at the requester (admission control
	// allows it: responder in a different region).
	if _, ok := p.Cache().Peek(k); !ok {
		t.Error("fetched item not cached")
	}
}

func TestLocalHitOnSecondRequest(t *testing.T) {
	h := build(t, defaultHarnessOpts())
	k := h.cat.Keys()[0]
	p := h.requesterFor(t, k)
	h.net.RequestFrom(p.ID(), k)
	h.sched.Run(10)
	h.net.RequestFrom(p.ID(), k)
	h.sched.Run(20)
	rep := h.net.Report()
	if rep.ByClass["local"] != 1 {
		t.Fatalf("second request not a local hit: %v", rep.ByClass)
	}
}

func TestRegionalHitFromNeighborCache(t *testing.T) {
	h := build(t, defaultHarnessOpts())
	k := h.cat.Keys()[1]
	a := h.requesterFor(t, k)
	h.net.RequestFrom(a.ID(), k)
	h.sched.Run(10)
	// Another peer in A's region now requests the same key: A's cached
	// copy answers regionally.
	var b *Peer
	for i := 0; i < h.net.Peers(); i++ {
		q := h.net.Peer(radio.NodeID(i))
		if q.ID() != a.ID() && q.RegionID() == a.RegionID() {
			if _, holds := q.Store().Get(k); !holds {
				b = q
				break
			}
		}
	}
	if b == nil {
		t.Skip("no second peer in requester region")
	}
	h.net.RequestFrom(b.ID(), k)
	h.sched.Run(20)
	rep := h.net.Report()
	if rep.ByClass["regional"] != 1 {
		t.Fatalf("expected regional hit: %v", rep.ByClass)
	}
	// Admission control: B must NOT cache an item served from its own
	// region.
	if _, ok := b.Cache().Peek(k); ok {
		t.Error("regional hit was cached despite admission control")
	}
}

func TestRequestInsideHomeRegionIsRegional(t *testing.T) {
	h := build(t, defaultHarnessOpts())
	// Requester inside the key's home region, not holding it.
	var p *Peer
	var key workload.Key
	found := false
	for i := 0; i < h.net.Peers() && !found; i++ {
		q := h.net.Peer(radio.NodeID(i))
		for _, k := range h.cat.Keys() {
			home, _ := h.table.HomeRegion(k)
			if home.ID == q.RegionID() {
				if _, holds := q.Store().Get(k); !holds {
					p, key, found = q, k, true
					break
				}
			}
		}
	}
	if !found {
		t.Skip("no suitable peer/key pair")
	}
	h.net.RequestFrom(p.ID(), key)
	h.sched.Run(10)
	rep := h.net.Report()
	if rep.ByClass["regional"] != 1 {
		t.Fatalf("expected regional hit inside home region: %v", rep.ByClass)
	}
	if _, ok := p.Cache().Peek(key); ok {
		t.Error("home-region item cached despite admission control")
	}
}

func TestFloodingRetrievalWorks(t *testing.T) {
	o := defaultHarnessOpts()
	o.mutate = func(c *Config) { c.Retrieval = Flooding }
	h := build(t, o)
	k := h.cat.Keys()[2]
	p := h.requesterFor(t, k)
	h.net.RequestFrom(p.ID(), k)
	h.sched.Run(10)
	rep := h.net.Report()
	if rep.Completed != 1 {
		t.Fatalf("flooding retrieval failed: %+v", rep)
	}
}

func TestExpandingRingRetrievalWorks(t *testing.T) {
	o := defaultHarnessOpts()
	o.mutate = func(c *Config) { c.Retrieval = ExpandingRing }
	h := build(t, o)
	k := h.cat.Keys()[3]
	p := h.requesterFor(t, k)
	h.net.RequestFrom(p.ID(), k)
	h.sched.Run(30)
	rep := h.net.Report()
	if rep.Completed != 1 {
		t.Fatalf("expanding ring retrieval failed: %+v", rep)
	}
}

func TestFloodingCostsMoreEnergyThanPReCinCt(t *testing.T) {
	run := func(scheme RetrievalScheme) float64 {
		o := defaultHarnessOpts()
		o.mutate = func(c *Config) {
			c.Retrieval = scheme
			c.CacheBytes = 0 // the Section 5 validation setup
		}
		h := build(t, o)
		for i := 0; i < 20; i++ {
			k := h.cat.Keys()[i]
			p := h.requesterFor(t, k)
			h.net.RequestFrom(p.ID(), k)
			h.sched.Run(float64(10 * (i + 1)))
		}
		return h.meter.Total()
	}
	fl := run(Flooding)
	pc := run(PReCinCt)
	if fl <= pc {
		t.Errorf("flooding energy %v should exceed PReCinCt %v", fl, pc)
	}
}

func TestUpdatePropagatesToHomeRegion(t *testing.T) {
	o := defaultHarnessOpts()
	o.mutate = func(c *Config) {
		c.Consistency = consistency.DefaultConfig(consistency.PushAdaptivePull)
	}
	h := build(t, o)
	k := h.cat.Keys()[0]
	p := h.requesterFor(t, k)
	h.net.UpdateFrom(p.ID(), k)
	h.sched.Run(10)
	if h.net.Truth(k) != 2 {
		t.Fatalf("truth = %d, want 2", h.net.Truth(k))
	}
	// Every store holder of k must now have version 2.
	for i := 0; i < h.net.Peers(); i++ {
		q := h.net.Peer(radio.NodeID(i))
		if it, ok := q.Store().Get(k); ok {
			if it.Version != 2 {
				t.Errorf("holder %d has version %d, want 2", i, it.Version)
			}
			if it.TTR <= 0 {
				t.Errorf("holder %d has TTR %v", i, it.TTR)
			}
		}
	}
	if h.net.Stats().UpdatesApplied == 0 {
		t.Error("no updates applied")
	}
}

func TestPlainPushInvalidatesEverywhere(t *testing.T) {
	o := defaultHarnessOpts()
	o.mutate = func(c *Config) {
		c.Consistency = consistency.DefaultConfig(consistency.PlainPush)
	}
	h := build(t, o)
	k := h.cat.Keys()[0]
	p := h.requesterFor(t, k)
	// Fetch so p caches version 1.
	h.net.RequestFrom(p.ID(), k)
	h.sched.Run(10)
	e, ok := p.Cache().Peek(k)
	if !ok || e.Version != 1 {
		t.Fatalf("setup failed: %+v %v", e, ok)
	}
	// Now another peer updates; the flood must refresh p's copy.
	q := h.requesterFor(t, k)
	h.net.UpdateFrom(q.ID(), k)
	h.sched.Run(20)
	e, ok = p.Cache().Peek(k)
	if !ok || e.Version != 2 {
		t.Fatalf("plain push did not refresh cached copy: %+v", e)
	}
	rep := h.net.Report()
	if rep.ControlMessages == 0 {
		t.Error("plain push generated no control messages")
	}
}

func TestPullEveryTimePollsOnEveryHit(t *testing.T) {
	o := defaultHarnessOpts()
	o.mutate = func(c *Config) {
		c.Consistency = consistency.DefaultConfig(consistency.PullEveryTime)
	}
	h := build(t, o)
	k := h.cat.Keys()[0]
	p := h.requesterFor(t, k)
	h.net.RequestFrom(p.ID(), k)
	h.sched.Run(10)
	// Second request: cached, but pull-every-time must poll.
	h.net.RequestFrom(p.ID(), k)
	h.sched.Run(20)
	rep := h.net.Report()
	if rep.PollsIssued != 1 {
		t.Fatalf("polls issued = %d, want 1", rep.PollsIssued)
	}
	if rep.ByClass["local"] != 1 {
		t.Fatalf("validated hit not recorded local: %v", rep.ByClass)
	}
	// The poll round trip must show up as latency.
	if rep.MeanLatency <= 0 {
		t.Error("poll round trip had zero latency")
	}
	if h.net.Stats().PollsAnswered == 0 {
		t.Error("no polls answered")
	}
}

func TestAdaptivePullServesFromCacheUntilTTRExpiry(t *testing.T) {
	o := defaultHarnessOpts()
	o.mutate = func(c *Config) {
		c.Consistency = consistency.DefaultConfig(consistency.PushAdaptivePull)
	}
	h := build(t, o)
	k := h.cat.Keys()[0]
	p := h.requesterFor(t, k)
	h.net.RequestFrom(p.ID(), k)
	h.sched.Run(10)
	// Within the TTR (30 s initial): local hit without polling.
	h.net.RequestFrom(p.ID(), k)
	h.sched.Run(20)
	rep := h.net.Report()
	if rep.PollsIssued != 0 {
		t.Fatalf("adaptive pull polled within TTR: %d polls", rep.PollsIssued)
	}
	if rep.ByClass["local"] != 1 {
		t.Fatalf("expected unvalidated local hit: %v", rep.ByClass)
	}
	// After the TTR expires, the next hit polls.
	h.sched.Run(60)
	h.net.RequestFrom(p.ID(), k)
	h.sched.Run(80)
	rep = h.net.Report()
	if rep.PollsIssued != 1 {
		t.Fatalf("adaptive pull did not poll after TTR expiry: %d", rep.PollsIssued)
	}
}

func TestStalePollFetchesNewData(t *testing.T) {
	o := defaultHarnessOpts()
	o.mutate = func(c *Config) {
		c.Consistency = consistency.DefaultConfig(consistency.PullEveryTime)
	}
	h := build(t, o)
	k := h.cat.Keys()[0]
	p := h.requesterFor(t, k)
	h.net.RequestFrom(p.ID(), k)
	h.sched.Run(10)
	// Update elsewhere: p's cached version 1 is now stale.
	q := h.requesterFor(t, k)
	h.net.UpdateFrom(q.ID(), k)
	h.sched.Run(20)
	// p requests again: the poll discovers staleness and the holder
	// ships the new data (conditional GET).
	h.net.RequestFrom(p.ID(), k)
	h.sched.Run(30)
	e, ok := p.Cache().Peek(k)
	if !ok || e.Version != 2 {
		t.Fatalf("stale poll did not refresh data: %+v %v", e, ok)
	}
	rep := h.net.Report()
	if rep.FalseHitRatio != 0 {
		t.Errorf("pull-every-time produced false hits: %v", rep.FalseHitRatio)
	}
}

func TestGracefulQuitHandsKeysOff(t *testing.T) {
	h := build(t, defaultHarnessOpts())
	// Find a holder with keys.
	var holder *Peer
	for i := 0; i < h.net.Peers(); i++ {
		p := h.net.Peer(radio.NodeID(i))
		if p.Store().Len() > 0 {
			holder = p
			break
		}
	}
	if holder == nil {
		t.Fatal("no holder found")
	}
	keys := holder.Store().Keys()
	h.net.Quit(holder.ID())
	h.sched.Run(5)
	if holder.Alive() {
		t.Fatal("peer still alive after Quit")
	}
	// The keys must now be held by other peers.
	for _, k := range keys {
		found := false
		for i := 0; i < h.net.Peers(); i++ {
			p := h.net.Peer(radio.NodeID(i))
			if !p.Alive() {
				continue
			}
			if _, ok := p.Store().Get(k); ok {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("key %d lost after graceful quit", k)
		}
	}
}

func TestReplicaServesAfterHomeRegionCrash(t *testing.T) {
	h := build(t, defaultHarnessOpts())
	k := h.cat.Keys()[0]
	home, _ := h.table.HomeRegion(k)
	// Crash every peer in the home region.
	for i := 0; i < h.net.Peers(); i++ {
		p := h.net.Peer(radio.NodeID(i))
		if home.Bounds.Contains(h.ch.Position(p.ID())) {
			h.net.Crash(p.ID())
		}
	}
	rep, _ := h.table.ReplicaRegion(k)
	var requester *Peer
	for i := 0; i < h.net.Peers(); i++ {
		p := h.net.Peer(radio.NodeID(i))
		if p.Alive() && p.RegionID() != home.ID && p.RegionID() != rep.ID {
			requester = p
			break
		}
	}
	if requester == nil {
		t.Fatal("no requester available")
	}
	h.net.RequestFrom(requester.ID(), k)
	h.sched.Run(30)
	report := h.net.Report()
	if report.Completed != 1 {
		t.Fatalf("request failed despite replica region: %+v", report)
	}
}

func TestNoReplicationFailsAfterHomeRegionCrash(t *testing.T) {
	o := defaultHarnessOpts()
	o.mutate = func(c *Config) { c.Replication = false }
	h := build(t, o)
	k := h.cat.Keys()[0]
	home, _ := h.table.HomeRegion(k)
	for i := 0; i < h.net.Peers(); i++ {
		p := h.net.Peer(radio.NodeID(i))
		if home.Bounds.Contains(h.ch.Position(p.ID())) {
			h.net.Crash(p.ID())
		}
	}
	var requester *Peer
	for i := 0; i < h.net.Peers(); i++ {
		p := h.net.Peer(radio.NodeID(i))
		if p.Alive() && p.RegionID() != home.ID {
			requester = p
			break
		}
	}
	h.net.RequestFrom(requester.ID(), k)
	h.sched.Run(30)
	report := h.net.Report()
	if report.Failures != 1 {
		t.Fatalf("expected failure without replication: %+v", report)
	}
}

func TestSeparateRelocatesKeys(t *testing.T) {
	h := build(t, defaultHarnessOpts())
	if err := h.net.Separate(region.ID(0)); err != nil {
		t.Fatal(err)
	}
	h.sched.Run(20)
	if h.net.Stats().Relocations == 0 {
		t.Error("Separate triggered no relocations")
	}
	// After relocation settles, requests still succeed.
	k := h.cat.Keys()[5]
	home, _ := h.table.HomeRegion(k)
	var requester *Peer
	for i := 0; i < h.net.Peers(); i++ {
		p := h.net.Peer(radio.NodeID(i))
		if p.RegionID() != home.ID {
			requester = p
			break
		}
	}
	h.net.RequestFrom(requester.ID(), k)
	h.sched.Run(60)
	report := h.net.Report()
	if report.Completed == 0 {
		t.Errorf("request failed after region separation: %+v", report)
	}
}

func TestMobileEndToEndRun(t *testing.T) {
	o := defaultHarnessOpts()
	o.nodes = 40
	o.mobile = true
	o.generator = true
	o.updateInt = 60
	o.mutate = func(c *Config) {
		c.Consistency = consistency.DefaultConfig(consistency.PushAdaptivePull)
		c.Warmup = 100
	}
	h := build(t, o)
	rep := h.net.Run(600)
	if rep.Requests < 100 {
		t.Fatalf("too few requests in 600 s: %d", rep.Requests)
	}
	failRate := float64(rep.Failures) / float64(rep.Requests)
	if failRate > 0.25 {
		t.Errorf("failure rate %.2f too high: %+v", failRate, rep)
	}
	if rep.MeanLatency <= 0 {
		t.Error("zero mean latency in mobile run")
	}
	if rep.EnergyPerRequest <= 0 {
		t.Error("no energy recorded")
	}
	if h.net.Stats().Handoffs == 0 {
		t.Error("no key handoffs despite mobility")
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() metrics.Report {
		o := defaultHarnessOpts()
		o.nodes = 30
		o.mobile = true
		o.generator = true
		o.updateInt = 90
		o.seed = 77
		o.mutate = func(c *Config) {
			c.Consistency = consistency.DefaultConfig(consistency.PushAdaptivePull)
		}
		h := build(t, o)
		return h.net.Run(300)
	}
	a := run()
	b := run()
	if a.Requests != b.Requests || a.Completed != b.Completed ||
		a.MeanLatency != b.MeanLatency || a.ControlMessages != b.ControlMessages ||
		a.EnergyTotal != b.EnergyTotal {
		t.Errorf("same seed produced different runs:\n%+v\n%+v", a, b)
	}
}

func TestCrashedPeerIgnoresTraffic(t *testing.T) {
	h := build(t, defaultHarnessOpts())
	p := h.net.Peer(radio.NodeID(0))
	h.net.Crash(p.ID())
	h.net.RequestFrom(p.ID(), h.cat.Keys()[0])
	h.sched.Run(10)
	if h.net.Report().Requests != 0 {
		t.Error("crashed peer issued a request")
	}
}

func TestReviveRestoresPeer(t *testing.T) {
	h := build(t, defaultHarnessOpts())
	p := h.net.Peer(radio.NodeID(0))
	h.net.Crash(p.ID())
	h.net.Revive(p.ID())
	if !p.Alive() {
		t.Fatal("peer not alive after revive")
	}
	if p.Store().Len() != 0 {
		t.Error("revived peer kept stale store")
	}
	k := h.keyHomedIn(t, p.RegionID(), false)
	h.net.RequestFrom(p.ID(), k)
	h.sched.Run(10)
	if h.net.Report().Completed != 1 {
		t.Error("revived peer cannot fetch")
	}
}

func TestEnRouteAnswering(t *testing.T) {
	// With en-route caching on, a peer between requester and home region
	// holding the item answers early. Construct this deterministically:
	// fetch at peer M (who caches it), then request from a peer whose
	// GPSR path to the home region passes M. Rather than engineering the
	// exact path, run many requests and check the class shows up.
	o := defaultHarnessOpts()
	o.nodes = 49
	o.rows, o.cols = 3, 3
	o.generator = true
	h := build(t, o)
	rep := h.net.Run(2000)
	if rep.ByClass["en-route"] == 0 {
		t.Log("no en-route hits observed (acceptable but unusual); classes:", rep.ByClass)
	}
	if rep.Completed == 0 {
		t.Fatal("no requests completed")
	}
}

func TestCacheDisabledStillWorks(t *testing.T) {
	o := defaultHarnessOpts()
	o.mutate = func(c *Config) { c.CacheBytes = 0 }
	h := build(t, o)
	k := h.cat.Keys()[0]
	p := h.requesterFor(t, k)
	if p.Cache() != nil {
		t.Fatal("cache allocated despite CacheBytes=0")
	}
	h.net.RequestFrom(p.ID(), k)
	h.sched.Run(10)
	if h.net.Report().Completed != 1 {
		t.Fatal("request failed without cache")
	}
	// And a second request is again remote (nothing was cached).
	h.net.RequestFrom(p.ID(), k)
	h.sched.Run(20)
	if got := h.net.Report().ByClass["local"]; got != 0 {
		t.Errorf("local hits without a cache: %d", got)
	}
}

func TestWarmupSuppressesMetrics(t *testing.T) {
	o := defaultHarnessOpts()
	o.mutate = func(c *Config) { c.Warmup = 100 }
	h := build(t, o)
	k := h.cat.Keys()[0]
	p := h.requesterFor(t, k)
	h.net.RequestFrom(p.ID(), k) // at t=0, inside warmup
	h.sched.Run(10)
	if h.net.Report().Requests != 0 {
		t.Error("warmup request recorded")
	}
	h.sched.Run(150)
	h.net.RequestFrom(p.ID(), k)
	h.sched.Run(160)
	if h.net.Report().Requests != 1 {
		t.Error("post-warmup request not recorded")
	}
}

func TestTableDisseminationCountsAsMaintenance(t *testing.T) {
	o := defaultHarnessOpts()
	o.mutate = func(c *Config) { c.Warmup = 0 }
	h := build(t, o)
	before := h.net.Report().MaintenanceMessages
	if err := h.net.Separate(region.ID(0)); err != nil {
		t.Fatal(err)
	}
	h.sched.Run(10)
	after := h.net.Report().MaintenanceMessages
	if after <= before {
		t.Errorf("table dissemination produced no maintenance traffic (%d -> %d)", before, after)
	}
}

func TestRevivedPeerGetsLatestTable(t *testing.T) {
	h := build(t, defaultHarnessOpts())
	p := h.net.Peer(radio.NodeID(0))
	h.net.Crash(p.ID())
	// Reshape while the peer is down: the flood cannot reach it.
	if err := h.net.Separate(region.ID(4)); err != nil {
		t.Fatal(err)
	}
	h.sched.Run(10)
	if p.TableVersion() != 0 {
		t.Fatal("dead peer received the table flood")
	}
	h.net.Revive(p.ID())
	if p.TableVersion() != h.net.TableVersions()-1 {
		t.Errorf("revived peer on table version %d, want %d",
			p.TableVersion(), h.net.TableVersions()-1)
	}
}
