package node

// Sharded-run support: a parallel run gives every shard a replica of the
// Network that shares the protocol state (peers, region tables, ground
// truth, catalog, generator) but owns its shard's scheduler, radio
// channel, collector, energy meter, tracer, GPSR router and message
// pool. Each peer is owned by exactly one shard; its net field binds it
// to that shard's replica, so every peer-local mutation happens on one
// goroutine. Shared state is only mutated by global (execAs -1) events,
// which the parallel coordinator executes while all shard workers are
// parked at a barrier.

import (
	"fmt"

	"precinct/internal/energy"
	"precinct/internal/metrics"
	"precinct/internal/radio"
	"precinct/internal/sim"
	"precinct/internal/trace"
)

// ShardWorld bundles the per-shard substrate replicas a Network clone
// executes on. The scheduler must share the primary scheduler's counter
// set, and the channel must be built over a mobility replica seeded
// identically to the primary's.
type ShardWorld struct {
	Scheduler *sim.Scheduler
	Channel   *radio.Channel
	Collector *metrics.Collector
	Meter     *energy.Meter
	Tracer    trace.Tracer
}

// CloneForShard returns a shard replica of the network. The replica
// shares peers, tables, truth, catalog and generator with the primary
// and starts with zeroed counters of its own; EnableSharding must be
// called afterwards to bind peers to their owners.
func (n *Network) CloneForShard(w ShardWorld) (*Network, error) {
	if w.Scheduler == nil || w.Channel == nil || w.Collector == nil {
		return nil, fmt.Errorf("node: shard world needs scheduler, channel and collector")
	}
	if w.Channel.N() != len(n.peers) {
		return nil, fmt.Errorf("node: shard channel has %d nodes, network has %d", w.Channel.N(), len(n.peers))
	}
	if (w.Meter == nil) != (n.meter == nil) {
		return nil, fmt.Errorf("node: shard meter presence must match the primary's")
	}
	c := &Network{
		cfg:     n.cfg,
		sched:   w.Scheduler,
		ch:      w.Channel,
		table:   n.table,
		catalog: n.catalog,
		src:     n.src,
		coll:    w.Collector,
		meter:   w.Meter,
		rng:     n.rng,
		tracer:  w.Tracer,
		peers:   n.peers,
		tables:  n.tables,
		truth:   n.truth,
		started: true,
	}
	c.loc = chanLocator{c.ch}
	c.ch.SetAlive(func(id radio.NodeID) bool { return c.peers[id].alive })
	c.ch.SetHandler(c.handleFrame)
	c.pool.disabled = n.pool.disabled
	c.pool.poison = n.pool.poison
	if !c.cfg.NoPooling {
		c.ch.SetDropHandler(c.handleDrop)
		c.router.EnablePlanarCache(c.ch.N())
	}
	return c, nil
}

// EnableSharding binds every peer to its owner shard's replica and puts
// each replica's channel in sharded mode. clones[0] must be the network
// this is called on (the primary, running shard 0); shardOf maps each
// peer to its owner shard.
func (n *Network) EnableSharding(shardOf []int32, clones []*Network) error {
	if len(clones) == 0 || clones[0] != n {
		return fmt.Errorf("node: clones[0] must be the primary network")
	}
	if len(shardOf) != len(n.peers) {
		return fmt.Errorf("node: shard map covers %d peers, network has %d", len(shardOf), len(n.peers))
	}
	for i, s := range shardOf {
		if s < 0 || int(s) >= len(clones) {
			return fmt.Errorf("node: peer %d assigned to shard %d of %d", i, s, len(clones))
		}
	}
	for i, c := range clones {
		c.clones = clones
		c.shard = int32(i)
		c.ch.EnableSharding(shardOf, int32(i), c.clonePayload)
	}
	for _, p := range n.peers {
		p.net = clones[shardOf[p.id]]
	}
	return nil
}

// clonePayload deep-copies a broadcast payload that crosses to another
// shard: remote receivers cannot share the sender-side reference count,
// so each gets an owned box from the sender shard's pool (released,
// after delivery, into the receiver shard's — the pools' live counts are
// only meaningful summed, see MsgPoolLive).
func (n *Network) clonePayload(payload any) any {
	m, ok := payload.(*message)
	if !ok {
		return payload
	}
	cp := n.pool.acquire()
	*cp = *m
	if m.Items != nil {
		cp.Items = append([]handoffItem(nil), m.Items...)
	}
	cp.refs = 1
	cp.released = false
	return cp
}

// StartParallel performs the first-Run work of the sequential path for a
// sharded run: it marks the replicas started, arms every peer's driver
// loops in ascending peer order and schedules the warmup meter reset.
// The parallel coordinator calls it once, single-threaded, before the
// first window, so the canonical keys of the initial events match the
// sequential run's exactly.
func (n *Network) StartParallel(duration float64) {
	for _, c := range n.clones {
		c.started = true
	}
	n.started = true
	n.StartDrivers()
	if n.meter != nil && n.cfg.Warmup > 0 && n.cfg.Warmup <= duration {
		n.armMeterReset(n.cfg.Warmup)
	}
}
