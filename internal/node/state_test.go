package node

import (
	"reflect"
	"strings"
	"testing"

	"precinct/internal/sim"
)

// stateHarnessOpts builds two identically-configured networks: traffic
// plus updates so every Rearm process kind has its prerequisites.
func stateHarnessOpts() harnessOpts {
	o := defaultHarnessOpts()
	o.generator = true
	o.updateInt = 200
	return o
}

func TestStateSnapshotRestoreRoundTrip(t *testing.T) {
	a := build(t, stateHarnessOpts())
	a.net.Run(60)
	// Guarantee at least one outstanding request in the snapshot: issue
	// one for a remotely-homed key and capture before its events run.
	requester := a.net.Peer(0)
	k := a.keyHomedIn(t, requester.RegionID(), false)
	a.net.RequestFrom(requester.ID(), k)
	if a.net.PendingRequests() == 0 {
		t.Fatal("no pending request right after RequestFrom")
	}

	st, err := a.net.StateSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Pending) == 0 {
		t.Fatal("snapshot carries no pending requests")
	}
	hasSeen := false
	for _, ps := range st.Peers {
		if len(ps.Seen) > 0 {
			hasSeen = true
			break
		}
	}
	if !hasSeen {
		t.Fatal("snapshot carries no flood-dedup entries after 60 s of traffic")
	}

	b := build(t, stateHarnessOpts())
	if err := b.net.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	st2, err := b.net.StateSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st, st2) {
		t.Fatal("snapshot of the restored network differs from the original snapshot")
	}

	// Every node-layer process kind re-arms against the restored state.
	now := a.sched.Now()
	rearms := []sim.Proc{
		{Kind: procRequest, Owner: 1},
		{Kind: procUpdate, Owner: 2},
		{Kind: procMobility, Owner: 3},
		{Kind: procMeterReset, Owner: -1},
		{Kind: procReqTimeout, Owner: int(st.Pending[0].ID)},
	}
	for _, p := range rearms {
		if err := b.net.Rearm(p, now+1); err != nil {
			t.Errorf("Rearm(%q): %v", p.Kind, err)
		}
	}
}

func TestRestoreStateRejectsCorruptSnapshots(t *testing.T) {
	a := build(t, stateHarnessOpts())
	a.net.Run(30)
	requester := a.net.Peer(0)
	a.net.RequestFrom(requester.ID(), a.keyHomedIn(t, requester.RegionID(), false))

	pristine, err := a.net.StateSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	var seenPeer int = -1
	for i, ps := range pristine.Peers {
		if len(ps.Seen) >= 2 {
			seenPeer = i
			break
		}
	}
	if seenPeer < 0 {
		t.Fatal("no peer with two seen entries")
	}

	// Each mutation works on its own deep-ish copy: only the slices it
	// touches are re-sliced, so the pristine snapshot stays intact.
	cases := []struct {
		name    string
		mutate  func(st *NetworkState)
		wantMsg string
	}{
		{"peer count", func(st *NetworkState) { st.Peers = st.Peers[:len(st.Peers)-1] }, "peers"},
		{"truth length", func(st *NetworkState) { st.Truth = st.Truth[:len(st.Truth)-1] }, "keys"},
		{"no tables", func(st *NetworkState) { st.Tables = nil }, "no region tables"},
		{"peer id", func(st *NetworkState) {
			st.Peers = append([]PeerState(nil), st.Peers...)
			st.Peers[0].ID = 99
		}, "carries ID"},
		{"table index", func(st *NetworkState) {
			st.Peers = append([]PeerState(nil), st.Peers...)
			st.Peers[0].TableIdx = len(st.Tables)
		}, "table version"},
		{"zero seen id", func(st *NetworkState) {
			st.Peers = append([]PeerState(nil), st.Peers...)
			st.Peers[seenPeer].Seen = append([]SeenEntry(nil), st.Peers[seenPeer].Seen...)
			st.Peers[seenPeer].Seen[0].ID = 0
		}, "zero seen ID"},
		{"unsorted seen", func(st *NetworkState) {
			st.Peers = append([]PeerState(nil), st.Peers...)
			s := append([]SeenEntry(nil), st.Peers[seenPeer].Seen...)
			s[0], s[1] = s[1], s[0]
			st.Peers[seenPeer].Seen = s
		}, "not sorted"},
		{"pending origin", func(st *NetworkState) {
			st.Pending = append([]PendingReqState(nil), st.Pending...)
			st.Pending[0].Origin = (st.Pending[0].Origin + 1) % len(st.Peers)
		}, "ID encodes"},
		{"pending phase", func(st *NetworkState) {
			st.Pending = append([]PendingReqState(nil), st.Pending...)
			st.Pending[0].Phase = 99
		}, "unknown phase"},
		{"duplicate pending", func(st *NetworkState) {
			st.Pending = append(append([]PendingReqState(nil), st.Pending...), st.Pending[0])
		}, "twice"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st := pristine // shallow copy; mutations re-slice before touching
			tc.mutate(&st)
			b := build(t, stateHarnessOpts())
			err := b.net.RestoreState(st)
			if err == nil || !strings.Contains(err.Error(), tc.wantMsg) {
				t.Fatalf("RestoreState = %v, want error containing %q", err, tc.wantMsg)
			}
		})
	}
}

func TestRearmRejectsUnknownAndUnconfigured(t *testing.T) {
	// No workload source: request/update processes have nothing to re-arm.
	bare := build(t, defaultHarnessOpts())
	cases := []struct {
		p       sim.Proc
		wantMsg string
	}{
		{sim.Proc{Kind: procRequest, Owner: 0}, "no workload source"},
		{sim.Proc{Kind: procUpdate, Owner: 0}, "updates are not configured"},
		{sim.Proc{Kind: procMobility, Owner: 999}, "unknown peer"},
		{sim.Proc{Kind: procAdaptive}, "not configured"},
		{sim.Proc{Kind: procReqTimeout, Owner: int(uint64(1) << 40)}, "unknown pending request"},
		{sim.Proc{Kind: procReqTimeout, Owner: int(uint64(999) << 40)}, "unknown origin"},
		{sim.Proc{Kind: "bogus"}, "unknown process kind"},
	}
	for _, tc := range cases {
		err := bare.net.Rearm(tc.p, 1)
		if err == nil || !strings.Contains(err.Error(), tc.wantMsg) {
			t.Errorf("Rearm(%q, owner %d) = %v, want error containing %q",
				tc.p.Kind, tc.p.Owner, err, tc.wantMsg)
		}
	}
}
