package node

import (
	"fmt"
	"math"
	"testing"

	"precinct/internal/consistency"
	"precinct/internal/radio"
	"precinct/internal/workload"
)

// primeRegionalPair fetches key k at peer a, then finds another peer b in
// a's region, so that b's next request can be served regionally from a's
// cache. Returns nil b when no such pair exists in the topology.
func primeRegionalPair(t *testing.T, h *harness, k workload.Key) (a, b *Peer) {
	t.Helper()
	a = h.requesterFor(t, k)
	h.net.RequestFrom(a.ID(), k)
	h.sched.Run(h.sched.Now() + 10)
	if _, ok := a.Cache().Peek(k); !ok {
		t.Fatal("priming fetch did not cache")
	}
	for i := 0; i < h.net.Peers(); i++ {
		q := h.net.Peer(radio.NodeID(i))
		if q.ID() != a.ID() && q.RegionID() == a.RegionID() {
			if _, holds := q.Store().Get(k); !holds {
				return a, q
			}
		}
	}
	return a, nil
}

func TestPullEveryTimeValidatesRegionalAnswers(t *testing.T) {
	o := defaultHarnessOpts()
	o.mutate = func(c *Config) {
		c.Consistency = consistency.DefaultConfig(consistency.PullEveryTime)
	}
	h := build(t, o)
	k := h.cat.Keys()[0]
	a, b := primeRegionalPair(t, h, k)
	if b == nil {
		t.Skip("no regional pair available")
	}
	_ = a
	before := h.net.Report().PollsIssued
	h.net.RequestFrom(b.ID(), k)
	h.sched.Run(h.sched.Now() + 10)
	rep := h.net.Report()
	if rep.PollsIssued != before+1 {
		t.Fatalf("regional answer not validated: polls %d -> %d", before, rep.PollsIssued)
	}
	if rep.ByClass["regional"] != 1 {
		t.Fatalf("validated answer not classified regional: %v", rep.ByClass)
	}
	if rep.FalseHitRatio != 0 {
		t.Errorf("validated regional hit counted stale: %v", rep.FalseHitRatio)
	}
}

func TestAdaptivePullServesRegionalWithinTTRWithoutPoll(t *testing.T) {
	o := defaultHarnessOpts()
	o.mutate = func(c *Config) {
		c.Consistency = consistency.DefaultConfig(consistency.PushAdaptivePull)
	}
	h := build(t, o)
	k := h.cat.Keys()[0]
	_, b := primeRegionalPair(t, h, k)
	if b == nil {
		t.Skip("no regional pair available")
	}
	before := h.net.Report().PollsIssued
	h.net.RequestFrom(b.ID(), k) // within the 30 s initial TTR
	h.sched.Run(h.sched.Now() + 10)
	rep := h.net.Report()
	if rep.PollsIssued != before {
		t.Fatalf("adaptive pull polled within TTR for a regional answer")
	}
	if rep.ByClass["regional"] != 1 {
		t.Fatalf("expected a regional hit: %v", rep.ByClass)
	}
}

func TestAdaptivePullValidatesExpiredRegionalAnswer(t *testing.T) {
	o := defaultHarnessOpts()
	o.mutate = func(c *Config) {
		c.Consistency = consistency.DefaultConfig(consistency.PushAdaptivePull)
	}
	h := build(t, o)
	k := h.cat.Keys()[0]
	_, b := primeRegionalPair(t, h, k)
	if b == nil {
		t.Skip("no regional pair available")
	}
	// Let the cached copy's TTR (30 s initial) expire.
	h.sched.Run(h.sched.Now() + 60)
	before := h.net.Report().PollsIssued
	h.net.RequestFrom(b.ID(), k)
	h.sched.Run(h.sched.Now() + 10)
	rep := h.net.Report()
	if rep.PollsIssued != before+1 {
		t.Fatalf("expired regional answer served without validation")
	}
}

func TestPollTimeoutServesStashedReplyOptimistically(t *testing.T) {
	// Crash every store holder of k so validation polls go unanswered;
	// a regional cached answer must still be served (optimistically)
	// rather than looping or failing.
	o := defaultHarnessOpts()
	o.mutate = func(c *Config) {
		c.Consistency = consistency.DefaultConfig(consistency.PullEveryTime)
	}
	h := build(t, o)
	k := h.cat.Keys()[0]
	_, b := primeRegionalPair(t, h, k)
	if b == nil {
		t.Skip("no regional pair available")
	}
	for i := 0; i < h.net.Peers(); i++ {
		p := h.net.Peer(radio.NodeID(i))
		if _, holds := p.Store().Get(k); holds {
			h.net.Crash(p.ID())
		}
	}
	start := h.sched.Now()
	h.net.RequestFrom(b.ID(), k)
	h.sched.Run(start + 30)
	rep := h.net.Report()
	if rep.ByClass["regional"] != 1 {
		t.Fatalf("optimistic serve missing: %v", rep.ByClass)
	}
	// Latency includes the validation timeout but is bounded.
	if rep.MaxLatency > 10 {
		t.Errorf("optimistic serve took %v s", rep.MaxLatency)
	}
}

func TestUpdatePushRetriesOnRoutingFailure(t *testing.T) {
	// This exercises forwardWithRetry's bookkeeping: updates from a peer
	// whose GPSR route transiently fails must eventually reach the
	// holder or be counted as lost — never silently vanish.
	o := defaultHarnessOpts()
	o.generator = true
	o.updateInt = 20
	o.mobile = true
	o.nodes = 24 // sparse: routing failures happen
	o.mutate = func(c *Config) {
		c.Consistency = consistency.DefaultConfig(consistency.PushAdaptivePull)
	}
	h := build(t, o)
	h.net.Run(400)
	st := h.net.Stats()
	if st.UpdatesApplied == 0 {
		t.Fatal("no updates applied at all")
	}
	// Bookkeeping sanity: lost updates are a small fraction of applied.
	if st.LostUpdates > st.UpdatesApplied {
		t.Errorf("lost (%d) exceeds applied (%d)", st.LostUpdates, st.UpdatesApplied)
	}
}

func TestHandoffReaimsToLiveCustodian(t *testing.T) {
	// Kill the original handoff target right after keys leave; the
	// retry logic must re-aim at another peer of the region instead of
	// dropping the keys.
	o := defaultHarnessOpts()
	o.mobile = true
	o.maxSpeed = 12
	o.generator = false
	h := build(t, o)
	h.net.Run(300)
	st := h.net.Stats()
	if st.Handoffs == 0 {
		t.Skip("no handoffs in this trace")
	}
	if st.LostKeys > st.Handoffs*2 {
		t.Errorf("too many keys lost: %d lost over %d handoffs", st.LostKeys, st.Handoffs)
	}
	// Every catalog key must still have at least one live holder.
	missing := 0
	for _, k := range h.cat.Keys() {
		found := false
		for i := 0; i < h.net.Peers() && !found; i++ {
			p := h.net.Peer(radio.NodeID(i))
			if !p.Alive() {
				continue
			}
			if _, ok := p.Store().Get(k); ok {
				found = true
			}
		}
		if !found {
			missing++
		}
	}
	if missing > h.cat.Len()/20 {
		t.Errorf("%d of %d keys have no holder after mobility", missing, h.cat.Len())
	}
}

func TestExpandingRingGrowsTTL(t *testing.T) {
	o := defaultHarnessOpts()
	o.nodes = 49
	o.rows, o.cols = 3, 3
	o.mutate = func(c *Config) {
		c.Retrieval = ExpandingRing
		c.CacheBytes = 0 // force remote search
	}
	h := build(t, o)
	// Pick a requester far from the key's owner so TTL=1 cannot reach.
	k := h.cat.Keys()[0]
	var owner *Peer
	for i := 0; i < h.net.Peers(); i++ {
		p := h.net.Peer(radio.NodeID(i))
		if _, ok := p.Store().Get(k); ok {
			owner = p
			break
		}
	}
	if owner == nil {
		t.Fatal("no owner")
	}
	var far *Peer
	bestD := 0.0
	for i := 0; i < h.net.Peers(); i++ {
		p := h.net.Peer(radio.NodeID(i))
		d := h.ch.Position(p.ID()).Dist(h.ch.Position(owner.ID()))
		if d > bestD {
			far, bestD = p, d
		}
	}
	before := h.ch.Stats().BroadcastFrames
	h.net.RequestFrom(far.ID(), k)
	h.sched.Run(60)
	rep := h.net.Report()
	if rep.Completed != 1 {
		t.Fatalf("expanding ring failed: %+v", rep)
	}
	if rep.MeanLatency <= 0 {
		t.Error("ring rounds should cost latency")
	}
	// Several rounds of flooding happened.
	if h.ch.Stats().BroadcastFrames-before < 10 {
		t.Error("suspiciously few broadcasts for a far expanding-ring search")
	}
}

func TestPlainPushRefreshesHolderAndCaches(t *testing.T) {
	o := defaultHarnessOpts()
	o.mutate = func(c *Config) {
		c.Consistency = consistency.DefaultConfig(consistency.PlainPush)
	}
	h := build(t, o)
	k := h.cat.Keys()[3]
	p := h.requesterFor(t, k)
	h.net.RequestFrom(p.ID(), k)
	h.sched.Run(10)
	q := h.requesterFor(t, k)
	h.net.UpdateFrom(q.ID(), k)
	h.sched.Run(20)
	// Holder store version caught up.
	for i := 0; i < h.net.Peers(); i++ {
		peer := h.net.Peer(radio.NodeID(i))
		if it, ok := peer.Store().Get(k); ok && it.Version != 2 {
			t.Errorf("holder %d at version %d after plain push", i, it.Version)
		}
	}
	// Subsequent local hit at p is fresh.
	h.net.RequestFrom(p.ID(), k)
	h.sched.Run(30)
	if fhr := h.net.Report().FalseHitRatio; fhr != 0 {
		t.Errorf("false hits after plain push flood: %v", fhr)
	}
}

// primeRegionalPairLossy is primeRegionalPair tolerating frame loss:
// the priming fetch is retried until the copy lands in a's cache, so
// the pair is usable at any LossRate.
func primeRegionalPairLossy(t *testing.T, h *harness, k workload.Key) (a, b *Peer) {
	t.Helper()
	a = h.requesterFor(t, k)
	// A multi-hop fetch at 30% frame loss fails most attempts (every
	// hop of the request and the reply must survive), so the retry
	// budget is generous; the RNG is seeded, so the outcome is still
	// deterministic.
	for try := 0; try < 64; try++ {
		h.net.RequestFrom(a.ID(), k)
		h.sched.Run(h.sched.Now() + 10)
		if _, ok := a.Cache().Peek(k); ok {
			break
		}
	}
	if _, ok := a.Cache().Peek(k); !ok {
		t.Fatal("priming fetch did not cache even after retries")
	}
	for i := 0; i < h.net.Peers(); i++ {
		q := h.net.Peer(radio.NodeID(i))
		if q.ID() != a.ID() && q.RegionID() == a.RegionID() {
			if _, holds := q.Store().Get(k); !holds {
				return a, q
			}
		}
	}
	return a, nil
}

// TestTTRPollConvergesUnderLoss drives the validation-poll path with
// frames actually dropping: a regional answer under pull-every-time
// must still terminate — either the poll round-trip survives and the
// answer is validated, or the poll times out and the stashed reply is
// served optimistically. Either way the request completes with bounded
// latency and nothing hangs or leaks. Repeated requests keep converging
// at both paper loss points.
func TestTTRPollConvergesUnderLoss(t *testing.T) {
	for _, tc := range []struct {
		loss     float64
		requests int
	}{
		{loss: 0.1, requests: 5},
		{loss: 0.3, requests: 5},
	} {
		t.Run(fmt.Sprintf("loss=%g", tc.loss), func(t *testing.T) {
			o := defaultHarnessOpts()
			o.loss = tc.loss
			o.mutate = func(c *Config) {
				c.Consistency = consistency.DefaultConfig(consistency.PullEveryTime)
			}
			h := build(t, o)
			k := h.cat.Keys()[0]
			_, b := primeRegionalPairLossy(t, h, k)
			if b == nil {
				t.Skip("no regional pair available")
			}
			before := h.net.Report()
			for i := 0; i < tc.requests; i++ {
				h.net.RequestFrom(b.ID(), k)
				h.sched.Run(h.sched.Now() + 30)
			}
			rep := h.net.Report()
			issued := rep.Requests - before.Requests
			settled := (rep.Completed + rep.Failures) - (before.Completed + before.Failures)
			if issued != uint64(tc.requests) {
				t.Fatalf("issued %d requests, report says %d", tc.requests, issued)
			}
			if settled != issued {
				t.Fatalf("%d of %d lossy requests never settled", issued-settled, issued)
			}
			if rep.PollsIssued == before.PollsIssued {
				t.Fatal("pull-every-time issued no validation polls under loss")
			}
			// No writer exists in this scenario, so however each poll
			// fared — answered or timed out into an optimistic serve —
			// nothing stale can have been served.
			if rep.FalseHitRatio != 0 {
				t.Errorf("false hits without any update: %v", rep.FalseHitRatio)
			}
			if rep.MaxLatency > 30 {
				t.Errorf("a request took %v s; poll timeouts must bound latency", rep.MaxLatency)
			}
		})
	}
}

// nearestOutsideRequester picks the admission-eligible requester (not
// in the key's home region, not a store holder) geographically closest
// to a holder, so the fetch route stays short enough to survive heavy
// frame loss within a bounded number of retries.
func nearestOutsideRequester(t *testing.T, h *harness, k workload.Key) *Peer {
	t.Helper()
	home, _ := h.table.HomeRegion(k)
	var owner *Peer
	for i := 0; i < h.net.Peers(); i++ {
		p := h.net.Peer(radio.NodeID(i))
		if _, ok := p.Store().Get(k); ok {
			owner = p
			break
		}
	}
	if owner == nil {
		t.Fatal("no store holder for key")
	}
	var best *Peer
	bestD := math.MaxFloat64
	for i := 0; i < h.net.Peers(); i++ {
		p := h.net.Peer(radio.NodeID(i))
		if p.RegionID() == home.ID {
			continue
		}
		if _, holds := p.Store().Get(k); holds {
			continue
		}
		if d := h.ch.Position(p.ID()).Dist(h.ch.Position(owner.ID())); d < bestD {
			best, bestD = p, d
		}
	}
	if best == nil {
		t.Fatal("no requester outside home region")
	}
	return best
}

// TestPushInvalidationUnderLoss updates a cached key through plain-push
// floods while frames drop. The accounting contract: if the refresh
// reached the cacher, its next hit serves fresh bytes and no false hit
// is recorded; if loss starved the cacher of the update, the stale
// serve must be visible in the false-hit metrics — staleness may happen
// under loss, silent staleness may not.
func TestPushInvalidationUnderLoss(t *testing.T) {
	for _, loss := range []float64{0.1, 0.3} {
		t.Run(fmt.Sprintf("loss=%g", loss), func(t *testing.T) {
			o := defaultHarnessOpts()
			o.loss = loss
			o.mutate = func(c *Config) {
				c.Consistency = consistency.DefaultConfig(consistency.PlainPush)
			}
			h := build(t, o)
			k := h.cat.Keys()[3]
			p := nearestOutsideRequester(t, h, k)
			for try := 0; try < 64; try++ {
				h.net.RequestFrom(p.ID(), k)
				h.sched.Run(h.sched.Now() + 10)
				if _, ok := p.Cache().Peek(k); ok {
					break
				}
			}
			e, ok := p.Cache().Peek(k)
			if !ok {
				t.Fatal("priming fetch did not cache")
			}
			if e.Version != 1 {
				t.Fatalf("cached version %d before any update", e.Version)
			}

			q := h.requesterFor(t, k)
			h.net.UpdateFrom(q.ID(), k)
			h.sched.Run(h.sched.Now() + 30)

			e, ok = p.Cache().Peek(k)
			if !ok {
				// The push refresh may evict/replace; re-fetch to probe.
				h.net.RequestFrom(p.ID(), k)
				h.sched.Run(h.sched.Now() + 10)
				e, ok = p.Cache().Peek(k)
				if !ok {
					t.Skip("copy no longer cached; nothing to probe")
				}
			}
			stale := e.Version < 2

			before := h.net.Report()
			h.net.RequestFrom(p.ID(), k)
			h.sched.Run(h.sched.Now() + 10)
			rep := h.net.Report()
			if rep.Completed == before.Completed {
				t.Fatal("probe request did not complete")
			}
			staleServes := rep.StaleByClass["local"] - before.StaleByClass["local"]
			if stale && staleServes == 0 {
				t.Errorf("stale cached copy (v%d) served without being counted stale", e.Version)
			}
			if !stale && staleServes != 0 {
				t.Errorf("fresh copy counted as %d stale serves", staleServes)
			}
		})
	}
}

// TestAdaptivePullLongRunUnderLoss soaks the full adaptive-pull machine
// — TTR smoothing, pushes, validation polls, retries — on a lossy
// channel with a live update stream, and checks the conservation-style
// properties that must hold regardless of which individual frames died:
// every issued request settles, updates are either applied or counted
// lost, and polls keep flowing (the TTR estimator cannot wedge).
func TestAdaptivePullLongRunUnderLoss(t *testing.T) {
	for _, loss := range []float64{0.1, 0.3} {
		t.Run(fmt.Sprintf("loss=%g", loss), func(t *testing.T) {
			o := defaultHarnessOpts()
			o.loss = loss
			o.generator = true
			o.updateInt = 40
			o.mutate = func(c *Config) {
				c.Consistency = consistency.DefaultConfig(consistency.PushAdaptivePull)
			}
			h := build(t, o)
			rep := h.net.Run(600)
			if rep.Requests == 0 || rep.Completed == 0 {
				t.Fatalf("lossy run went quiet: %d requests, %d completed", rep.Requests, rep.Completed)
			}
			if rep.Completed+rep.Failures != rep.Requests {
				t.Errorf("request accounting leaked: %d issued, %d completed + %d failed",
					rep.Requests, rep.Completed, rep.Failures)
			}
			if rep.PollsIssued == 0 {
				t.Error("no validation polls in a 600 s adaptive-pull run")
			}
			st := h.net.Stats()
			if st.UpdatesApplied == 0 {
				t.Error("no update ever applied despite a live update stream")
			}
			if rep.FalseHitRatio < 0 || rep.FalseHitRatio > 1 {
				t.Errorf("false-hit ratio out of range: %v", rep.FalseHitRatio)
			}
		})
	}
}

func TestConsistencySchemeOrderingSmallScale(t *testing.T) {
	// The paper's headline ordering must hold even at test scale:
	// control overhead plain-push > pull >= adaptive.
	run := func(scheme consistency.Scheme) uint64 {
		o := defaultHarnessOpts()
		o.nodes = 49
		o.rows, o.cols = 3, 3
		o.generator = true
		o.updateInt = 30
		o.seed = 5
		o.mutate = func(c *Config) {
			c.Consistency = consistency.DefaultConfig(scheme)
		}
		h := build(t, o)
		rep := h.net.Run(500)
		return rep.ControlMessages
	}
	plain := run(consistency.PlainPush)
	pull := run(consistency.PullEveryTime)
	adaptive := run(consistency.PushAdaptivePull)
	if plain <= pull {
		t.Errorf("plain-push (%d) should exceed pull-every-time (%d)", plain, pull)
	}
	if adaptive > pull {
		t.Errorf("adaptive (%d) should not exceed pull-every-time (%d)", adaptive, pull)
	}
}
