package node

import (
	"testing"

	"precinct/internal/consistency"
	"precinct/internal/radio"
	"precinct/internal/workload"
)

// primeRegionalPair fetches key k at peer a, then finds another peer b in
// a's region, so that b's next request can be served regionally from a's
// cache. Returns nil b when no such pair exists in the topology.
func primeRegionalPair(t *testing.T, h *harness, k workload.Key) (a, b *Peer) {
	t.Helper()
	a = h.requesterFor(t, k)
	h.net.RequestFrom(a.ID(), k)
	h.sched.Run(h.sched.Now() + 10)
	if _, ok := a.Cache().Peek(k); !ok {
		t.Fatal("priming fetch did not cache")
	}
	for i := 0; i < h.net.Peers(); i++ {
		q := h.net.Peer(radio.NodeID(i))
		if q.ID() != a.ID() && q.RegionID() == a.RegionID() {
			if _, holds := q.Store().Get(k); !holds {
				return a, q
			}
		}
	}
	return a, nil
}

func TestPullEveryTimeValidatesRegionalAnswers(t *testing.T) {
	o := defaultHarnessOpts()
	o.mutate = func(c *Config) {
		c.Consistency = consistency.DefaultConfig(consistency.PullEveryTime)
	}
	h := build(t, o)
	k := h.cat.Keys()[0]
	a, b := primeRegionalPair(t, h, k)
	if b == nil {
		t.Skip("no regional pair available")
	}
	_ = a
	before := h.net.Report().PollsIssued
	h.net.RequestFrom(b.ID(), k)
	h.sched.Run(h.sched.Now() + 10)
	rep := h.net.Report()
	if rep.PollsIssued != before+1 {
		t.Fatalf("regional answer not validated: polls %d -> %d", before, rep.PollsIssued)
	}
	if rep.ByClass["regional"] != 1 {
		t.Fatalf("validated answer not classified regional: %v", rep.ByClass)
	}
	if rep.FalseHitRatio != 0 {
		t.Errorf("validated regional hit counted stale: %v", rep.FalseHitRatio)
	}
}

func TestAdaptivePullServesRegionalWithinTTRWithoutPoll(t *testing.T) {
	o := defaultHarnessOpts()
	o.mutate = func(c *Config) {
		c.Consistency = consistency.DefaultConfig(consistency.PushAdaptivePull)
	}
	h := build(t, o)
	k := h.cat.Keys()[0]
	_, b := primeRegionalPair(t, h, k)
	if b == nil {
		t.Skip("no regional pair available")
	}
	before := h.net.Report().PollsIssued
	h.net.RequestFrom(b.ID(), k) // within the 30 s initial TTR
	h.sched.Run(h.sched.Now() + 10)
	rep := h.net.Report()
	if rep.PollsIssued != before {
		t.Fatalf("adaptive pull polled within TTR for a regional answer")
	}
	if rep.ByClass["regional"] != 1 {
		t.Fatalf("expected a regional hit: %v", rep.ByClass)
	}
}

func TestAdaptivePullValidatesExpiredRegionalAnswer(t *testing.T) {
	o := defaultHarnessOpts()
	o.mutate = func(c *Config) {
		c.Consistency = consistency.DefaultConfig(consistency.PushAdaptivePull)
	}
	h := build(t, o)
	k := h.cat.Keys()[0]
	_, b := primeRegionalPair(t, h, k)
	if b == nil {
		t.Skip("no regional pair available")
	}
	// Let the cached copy's TTR (30 s initial) expire.
	h.sched.Run(h.sched.Now() + 60)
	before := h.net.Report().PollsIssued
	h.net.RequestFrom(b.ID(), k)
	h.sched.Run(h.sched.Now() + 10)
	rep := h.net.Report()
	if rep.PollsIssued != before+1 {
		t.Fatalf("expired regional answer served without validation")
	}
}

func TestPollTimeoutServesStashedReplyOptimistically(t *testing.T) {
	// Crash every store holder of k so validation polls go unanswered;
	// a regional cached answer must still be served (optimistically)
	// rather than looping or failing.
	o := defaultHarnessOpts()
	o.mutate = func(c *Config) {
		c.Consistency = consistency.DefaultConfig(consistency.PullEveryTime)
	}
	h := build(t, o)
	k := h.cat.Keys()[0]
	_, b := primeRegionalPair(t, h, k)
	if b == nil {
		t.Skip("no regional pair available")
	}
	for i := 0; i < h.net.Peers(); i++ {
		p := h.net.Peer(radio.NodeID(i))
		if _, holds := p.Store().Get(k); holds {
			h.net.Crash(p.ID())
		}
	}
	start := h.sched.Now()
	h.net.RequestFrom(b.ID(), k)
	h.sched.Run(start + 30)
	rep := h.net.Report()
	if rep.ByClass["regional"] != 1 {
		t.Fatalf("optimistic serve missing: %v", rep.ByClass)
	}
	// Latency includes the validation timeout but is bounded.
	if rep.MaxLatency > 10 {
		t.Errorf("optimistic serve took %v s", rep.MaxLatency)
	}
}

func TestUpdatePushRetriesOnRoutingFailure(t *testing.T) {
	// This exercises forwardWithRetry's bookkeeping: updates from a peer
	// whose GPSR route transiently fails must eventually reach the
	// holder or be counted as lost — never silently vanish.
	o := defaultHarnessOpts()
	o.generator = true
	o.updateInt = 20
	o.mobile = true
	o.nodes = 24 // sparse: routing failures happen
	o.mutate = func(c *Config) {
		c.Consistency = consistency.DefaultConfig(consistency.PushAdaptivePull)
	}
	h := build(t, o)
	h.net.Run(400)
	st := h.net.Stats()
	if st.UpdatesApplied == 0 {
		t.Fatal("no updates applied at all")
	}
	// Bookkeeping sanity: lost updates are a small fraction of applied.
	if st.LostUpdates > st.UpdatesApplied {
		t.Errorf("lost (%d) exceeds applied (%d)", st.LostUpdates, st.UpdatesApplied)
	}
}

func TestHandoffReaimsToLiveCustodian(t *testing.T) {
	// Kill the original handoff target right after keys leave; the
	// retry logic must re-aim at another peer of the region instead of
	// dropping the keys.
	o := defaultHarnessOpts()
	o.mobile = true
	o.maxSpeed = 12
	o.generator = false
	h := build(t, o)
	h.net.Run(300)
	st := h.net.Stats()
	if st.Handoffs == 0 {
		t.Skip("no handoffs in this trace")
	}
	if st.LostKeys > st.Handoffs*2 {
		t.Errorf("too many keys lost: %d lost over %d handoffs", st.LostKeys, st.Handoffs)
	}
	// Every catalog key must still have at least one live holder.
	missing := 0
	for _, k := range h.cat.Keys() {
		found := false
		for i := 0; i < h.net.Peers() && !found; i++ {
			p := h.net.Peer(radio.NodeID(i))
			if !p.Alive() {
				continue
			}
			if _, ok := p.Store().Get(k); ok {
				found = true
			}
		}
		if !found {
			missing++
		}
	}
	if missing > h.cat.Len()/20 {
		t.Errorf("%d of %d keys have no holder after mobility", missing, h.cat.Len())
	}
}

func TestExpandingRingGrowsTTL(t *testing.T) {
	o := defaultHarnessOpts()
	o.nodes = 49
	o.rows, o.cols = 3, 3
	o.mutate = func(c *Config) {
		c.Retrieval = ExpandingRing
		c.CacheBytes = 0 // force remote search
	}
	h := build(t, o)
	// Pick a requester far from the key's owner so TTL=1 cannot reach.
	k := h.cat.Keys()[0]
	var owner *Peer
	for i := 0; i < h.net.Peers(); i++ {
		p := h.net.Peer(radio.NodeID(i))
		if _, ok := p.Store().Get(k); ok {
			owner = p
			break
		}
	}
	if owner == nil {
		t.Fatal("no owner")
	}
	var far *Peer
	bestD := 0.0
	for i := 0; i < h.net.Peers(); i++ {
		p := h.net.Peer(radio.NodeID(i))
		d := h.ch.Position(p.ID()).Dist(h.ch.Position(owner.ID()))
		if d > bestD {
			far, bestD = p, d
		}
	}
	before := h.ch.Stats().BroadcastFrames
	h.net.RequestFrom(far.ID(), k)
	h.sched.Run(60)
	rep := h.net.Report()
	if rep.Completed != 1 {
		t.Fatalf("expanding ring failed: %+v", rep)
	}
	if rep.MeanLatency <= 0 {
		t.Error("ring rounds should cost latency")
	}
	// Several rounds of flooding happened.
	if h.ch.Stats().BroadcastFrames-before < 10 {
		t.Error("suspiciously few broadcasts for a far expanding-ring search")
	}
}

func TestPlainPushRefreshesHolderAndCaches(t *testing.T) {
	o := defaultHarnessOpts()
	o.mutate = func(c *Config) {
		c.Consistency = consistency.DefaultConfig(consistency.PlainPush)
	}
	h := build(t, o)
	k := h.cat.Keys()[3]
	p := h.requesterFor(t, k)
	h.net.RequestFrom(p.ID(), k)
	h.sched.Run(10)
	q := h.requesterFor(t, k)
	h.net.UpdateFrom(q.ID(), k)
	h.sched.Run(20)
	// Holder store version caught up.
	for i := 0; i < h.net.Peers(); i++ {
		peer := h.net.Peer(radio.NodeID(i))
		if it, ok := peer.Store().Get(k); ok && it.Version != 2 {
			t.Errorf("holder %d at version %d after plain push", i, it.Version)
		}
	}
	// Subsequent local hit at p is fresh.
	h.net.RequestFrom(p.ID(), k)
	h.sched.Run(30)
	if fhr := h.net.Report().FalseHitRatio; fhr != 0 {
		t.Errorf("false hits after plain push flood: %v", fhr)
	}
}

func TestConsistencySchemeOrderingSmallScale(t *testing.T) {
	// The paper's headline ordering must hold even at test scale:
	// control overhead plain-push > pull >= adaptive.
	run := func(scheme consistency.Scheme) uint64 {
		o := defaultHarnessOpts()
		o.nodes = 49
		o.rows, o.cols = 3, 3
		o.generator = true
		o.updateInt = 30
		o.seed = 5
		o.mutate = func(c *Config) {
			c.Consistency = consistency.DefaultConfig(scheme)
		}
		h := build(t, o)
		rep := h.net.Run(500)
		return rep.ControlMessages
	}
	plain := run(consistency.PlainPush)
	pull := run(consistency.PullEveryTime)
	adaptive := run(consistency.PushAdaptivePull)
	if plain <= pull {
		t.Errorf("plain-push (%d) should exceed pull-every-time (%d)", plain, pull)
	}
	if adaptive > pull {
		t.Errorf("adaptive (%d) should not exceed pull-every-time (%d)", adaptive, pull)
	}
}
