package node

import (
	"testing"
	"testing/quick"

	"precinct/internal/routing"
)

func TestMsgKindStrings(t *testing.T) {
	kinds := []msgKind{
		kindSearchFlood, kindRegionalSearch, kindRoutedSearch, kindHomeFlood,
		kindReply, kindInvalidate, kindUpdateRoute, kindUpdateFlood,
		kindPollRoute, kindPollFlood, kindPollReply, kindHandoff,
	}
	seen := make(map[string]bool)
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Errorf("kind %d has empty or duplicate string %q", int(k), s)
		}
		seen[s] = true
	}
	if msgKind(99).String() != "kind(99)" {
		t.Error("unknown kind string")
	}
}

func TestMsgKindClasses(t *testing.T) {
	control := []msgKind{kindInvalidate, kindUpdateRoute, kindUpdateFlood, kindPollRoute, kindPollFlood, kindPollReply}
	for _, k := range control {
		if k.class() != classControl {
			t.Errorf("%v not classified control", k)
		}
	}
	if kindHandoff.class() != classMaintenance {
		t.Error("handoff not maintenance")
	}
	search := []msgKind{kindSearchFlood, kindRegionalSearch, kindRoutedSearch, kindHomeFlood, kindReply}
	for _, k := range search {
		if k.class() != classSearch {
			t.Errorf("%v not classified search", k)
		}
	}
}

func TestWireSize(t *testing.T) {
	const ctrl = 64
	small := &message{Kind: kindRegionalSearch, Size: 9999}
	if got := small.wireSize(ctrl); got != ctrl {
		t.Errorf("control message size %d, want %d (Size field ignored)", got, ctrl)
	}
	reply := &message{Kind: kindReply, Size: 4096}
	if got := reply.wireSize(ctrl); got != ctrl+4096 {
		t.Errorf("reply size %d", got)
	}
	update := &message{Kind: kindUpdateFlood, Size: 2048}
	if got := update.wireSize(ctrl); got != ctrl+2048 {
		t.Errorf("update size %d", got)
	}
	handoff := &message{Kind: kindHandoff, Items: []handoffItem{{Size: 100}, {Size: 200}}}
	if got := handoff.wireSize(ctrl); got != ctrl+300 {
		t.Errorf("handoff size %d", got)
	}
}

func TestMessageCloneIndependence(t *testing.T) {
	m := &message{
		Kind: kindHandoff, ID: 1, TTL: 5,
		Route: routing.State{Mode: routing.Perimeter},
		Items: []handoffItem{{Key: 1, Size: 100}},
	}
	cp := m.clone()
	cp.TTL = 4
	cp.Route.Mode = routing.Greedy
	cp.Items[0].Size = 999
	if m.TTL != 5 || m.Route.Mode != routing.Perimeter || m.Items[0].Size != 100 {
		t.Error("clone shares state with the original")
	}
}

// Property: cloning preserves every scalar field.
func TestClonePreservesFields(t *testing.T) {
	f := func(id, flood uint64, ttl, hops uint8, version uint64) bool {
		m := &message{
			Kind: kindReply, ID: id, FloodID: flood,
			TTL: int(ttl), Hops: int(hops), Version: version,
		}
		cp := m.clone()
		return cp.ID == m.ID && cp.FloodID == m.FloodID &&
			cp.TTL == m.TTL && cp.Hops == m.Hops && cp.Version == m.Version
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNoPendingRequestLeak(t *testing.T) {
	o := defaultHarnessOpts()
	o.generator = true
	o.mobile = true
	o.updateInt = 45
	h := build(t, o)
	h.net.Run(400)
	// Let every in-flight timeout chain resolve: run past the longest
	// possible chain (regional + home + replica timeouts).
	h.sched.Run(450)
	if got := h.net.PendingRequests(); got != 0 {
		t.Errorf("%d requests leaked in the pending table", got)
	}
}
