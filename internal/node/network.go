package node

import (
	"fmt"
	"os"

	"precinct/internal/cache"
	"precinct/internal/energy"
	"precinct/internal/geo"
	"precinct/internal/metrics"
	"precinct/internal/radio"
	"precinct/internal/region"
	"precinct/internal/routing"
	"precinct/internal/sim"
	"precinct/internal/trace"
	"precinct/internal/workload"
)

// Options wires a Network to its substrates. Scheduler, Channel, Regions,
// Catalog and Collector are required; Source is optional (without it no
// autonomous request/update drivers run — tests inject traffic manually);
// Meter is optional (energy is then absent from reports).
type Options struct {
	Config    Config
	Scheduler *sim.Scheduler
	Channel   *radio.Channel
	Regions   *region.Table
	Catalog   *workload.Catalog
	// Source drives autonomous traffic. Leave nil for harnesses that
	// inject requests manually; wrap a Generator in
	// workload.DefaultSource for the classic stationary workload.
	Source    workload.Source
	Collector *metrics.Collector
	Meter     *energy.Meter
	RNG       *sim.RNG
	// Tracer receives structured protocol events when non-nil.
	Tracer trace.Tracer
	// Probe receives invariant-checking callbacks when non-nil; see the
	// Probe interface for the observer contract.
	Probe Probe
}

// Stats counts protocol-layer events beyond the metrics collector.
type Stats struct {
	Handoffs        uint64 // inter-region key transfers initiated
	LostKeys        uint64 // keys that died with a peer (no custodian anywhere)
	StrandedKeys    uint64 // handoff copies adopted by a carrier outside the proper region
	HomelessKeys    uint64 // keys with no holder at placement time
	Relocations     uint64 // keys moved after region-table changes
	RoutingFailures uint64 // routed messages dropped (no next hop / link gone)
	LostUpdates     uint64 // update pushes dropped after exhausting retries
	PollsAnswered   uint64
	UpdatesApplied  uint64
}

// Network owns the peers of one simulation run and implements the message
// choreography of every scheme.
type Network struct {
	cfg     Config
	sched   *sim.Scheduler
	ch      *radio.Channel
	table   *region.Table
	catalog *workload.Catalog
	src     workload.Source
	// loc adapts this replica's channel to the workload.Locator the
	// geo-aware sources consult; built once so the per-event Ctx carries
	// an interface copy, not a fresh allocation.
	loc  workload.Locator
	coll *metrics.Collector
	meter   *energy.Meter
	rng     *sim.RNG
	tracer  trace.Tracer
	probe   Probe

	// router holds GPSR forwarding scratch so steady-state routing
	// allocates nothing. The simulation core is single-threaded, so one
	// router per network suffices.
	router routing.Router

	// pool is the message freelist (DESIGN.md section 12). Disabled
	// under Config.NoPooling, poisoning under PRECINCT_DEBUG=poison.
	pool msgPool
	// reqFree is the pendingReq freelist (DESIGN.md section 14); unused
	// (never appended to) under Config.LegacyLayout. Requests are born
	// and finished on their origin peer's shard, so in a sharded run
	// each replica's freelist stays shard-local.
	reqFree []*pendingReq

	peers []*Peer
	// tables is the region-table version history: index 0 is the
	// initial partition, each Separate/Merge appends a clone. Peers
	// reference a version index and switch when the dissemination
	// flood reaches them, so a table change propagates like any other
	// network-wide update rather than instantaneously.
	tables   []*region.Table
	truth    []uint64 // authoritative version per key (ground truth for FHR)
	stats    Stats
	adaptive AdaptiveStats
	started  bool

	// clones lists every shard's Network replica (index = shard) in a
	// sharded run; nil in sequential runs. The replicas share peers,
	// tables, truth and the catalog, and each owns its scheduler,
	// channel, collector, meter, router, message pool and counters.
	// Every peer's net field binds it to its owner shard's replica.
	clones []*Network
	shard  int32
}

// Add returns the field-wise sum of two protocol counter snapshots;
// sharded runs use it to merge per-shard replicas into the sequential
// run's totals.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		Handoffs:        s.Handoffs + o.Handoffs,
		LostKeys:        s.LostKeys + o.LostKeys,
		StrandedKeys:    s.StrandedKeys + o.StrandedKeys,
		HomelessKeys:    s.HomelessKeys + o.HomelessKeys,
		Relocations:     s.Relocations + o.Relocations,
		RoutingFailures: s.RoutingFailures + o.RoutingFailures,
		LostUpdates:     s.LostUpdates + o.LostUpdates,
		PollsAnswered:   s.PollsAnswered + o.PollsAnswered,
		UpdatesApplied:  s.UpdatesApplied + o.UpdatesApplied,
	}
}

// New builds the network: peers, initial key placement at home regions
// (and replica regions when replication is on), and the radio dispatch.
func New(opts Options) (*Network, error) {
	if err := opts.Config.Validate(); err != nil {
		return nil, err
	}
	if opts.Scheduler == nil || opts.Channel == nil || opts.Regions == nil ||
		opts.Catalog == nil || opts.Collector == nil {
		return nil, fmt.Errorf("node: scheduler, channel, regions, catalog and collector are required")
	}
	if opts.RNG == nil {
		opts.RNG = sim.NewRNG(1)
	}
	n := &Network{
		cfg:     opts.Config,
		sched:   opts.Scheduler,
		ch:      opts.Channel,
		table:   opts.Regions,
		catalog: opts.Catalog,
		src:     opts.Source,
		coll:    opts.Collector,
		meter:   opts.Meter,
		rng:     opts.RNG,
		tracer:  opts.Tracer,
		probe:   opts.Probe,
		truth:   make([]uint64, opts.Catalog.Len()),
	}
	n.loc = chanLocator{n.ch}
	n.tables = []*region.Table{opts.Regions}
	n.peers = make([]*Peer, n.ch.N())
	// The SoA layout allocates all peers as one slab: dense node indices
	// become dense memory, and peer headers stop being 100k scattered
	// heap objects. Pointer identity (p == exclude, p.net binding) is
	// unaffected — n.peers still hands out stable *Peer values.
	var slab []Peer
	if !n.cfg.LegacyLayout {
		slab = make([]Peer, n.ch.N())
	}
	for i := range n.peers {
		var p *Peer
		if slab != nil {
			p = &slab[i]
		} else {
			p = &Peer{}
		}
		*p = Peer{
			id:    radio.NodeID(i),
			net:   n,
			store: cache.NewStore(),
			alive: true,
			rng:   n.rng.Stream(fmt.Sprintf("peer/%d", i)),
		}
		if n.cfg.LegacyLayout {
			p.seen = make(map[uint64]float64)
			p.pending = make(map[uint64]*pendingReq)
		} else {
			p.seenTab.init(0)
		}
		if n.cfg.CacheBytes > 0 {
			c, err := n.newCache()
			if err != nil {
				return nil, err
			}
			p.cache = c
		}
		r, ok := n.table.Locate(n.ch.Position(p.id))
		if !ok {
			return nil, fmt.Errorf("node: peer %d has no region", i)
		}
		p.regionID = r.ID
		n.peers[i] = p
	}
	n.ch.SetAlive(func(id radio.NodeID) bool { return n.peers[id].alive })
	n.ch.SetHandler(n.handleFrame)
	n.pool.disabled = n.cfg.NoPooling
	n.pool.poison = os.Getenv("PRECINCT_DEBUG") == "poison"
	if !n.cfg.NoPooling {
		// Lost frames must settle payload ownership, and GPSR may reuse
		// cached planarizations; both belong to the pooled fast path.
		n.ch.SetDropHandler(n.handleDrop)
		n.router.EnablePlanarCache(n.ch.N())
	}
	n.placeKeys()
	return n, nil
}

// newMsg takes a message box from the pool and fills it with proto,
// returning it with a single ownership reference. proto never escapes:
// the construction sites build it on the stack, so the steady-state cost
// is one struct copy, zero allocations.
func (n *Network) newMsg(proto message) *message {
	m := n.pool.acquire()
	proto.refs = 1
	proto.released = false
	*m = proto
	return m
}

// releaseMsg drops one ownership reference to m, returning the box to
// the pool when the last reference is gone. No-op under NoPooling.
func (n *Network) releaseMsg(m *message) { n.pool.unref(m) }

// MsgPoolLive returns the number of pooled messages currently owned by
// the run (0 under NoPooling). At a quiescent boundary it must equal the
// number of stashed pendingReply messages — the lifecycle tests and the
// poison mode hold the protocol to that. Boxes migrate between shard
// replicas with their frames, so in a sharded run only the sum over all
// replicas is meaningful.
func (n *Network) MsgPoolLive() uint64 {
	if n.clones == nil {
		return n.pool.live()
	}
	var live uint64
	for _, c := range n.clones {
		live += c.pool.acquired - c.pool.released
	}
	return live
}

// handleDrop settles ownership of a transmitted frame that will never
// reach handleFrame: unicast send-time loss, dead receiver, collision.
func (n *Network) handleDrop(to radio.NodeID, f radio.Frame) {
	if m, ok := f.Payload.(*message); ok {
		n.releaseMsg(m)
	}
}

// newCache builds one peer's dynamic cache with the configured victim
// selection backend (heap index by default, reference linear scan under
// Config.LinearCache).
func (n *Network) newCache() (*cache.Cache, error) {
	if n.cfg.LinearCache {
		return cache.NewLinear(n.cfg.CacheBytes, n.cfg.Policy)
	}
	return cache.New(n.cfg.CacheBytes, n.cfg.Policy)
}

// placeKeys stores each key at a peer inside its home region (the peer
// nearest the region center), plus one inside each of its replica
// regions when replication is enabled. Keys start at version 1. With a
// single replica region (the paper's scheme) the custodian is the peer
// nearest the region center; with Replicas > 1 replica custodians are
// chosen load-aware — the least-loaded live peer of each replica region
// (DESIGN.md section 16).
func (n *Network) placeKeys() {
	for _, k := range n.catalog.Keys() {
		n.truth[k] = 1
		size := n.catalog.Size(k)
		home, ok := n.table.HomeRegion(k)
		if !ok {
			n.stats.HomelessKeys++
			continue
		}
		item := cache.StoredItem{
			Key: k, Size: size, Version: 1,
			UpdatedAt: 0, TTR: n.cfg.Consistency.InitialTTR,
		}
		if holder := n.peerNearestCenter(n.table, home.ID); holder != nil {
			holder.store.Put(item)
		} else {
			n.stats.HomelessKeys++
		}
		reps := n.replicaCount()
		if reps == 1 {
			// The paper's single replica region, custodian nearest the
			// center — kept verbatim so k<=1 runs are bit-identical to
			// the pre-k layer.
			if rep, ok := n.table.ReplicaRegion(k); ok {
				if holder := n.peerNearestCenter(n.table, rep.ID); holder != nil {
					replica := item
					replica.ReplicaRank = 1
					holder.store.Put(replica)
				}
			}
			continue
		}
		for r := 1; r <= reps; r++ {
			rep, ok := n.table.ReplicaRegionAt(k, r)
			if !ok {
				break // fewer regions than requested ranks
			}
			if holder := n.peerLeastLoaded(n.table, rep.ID); holder != nil {
				replica := item
				replica.ReplicaRank = r
				holder.store.Put(replica)
			}
		}
	}
}

// replicaCount returns the effective number of replica regions per key:
// 0 with replication off, otherwise the configured count with 0 meaning
// the legacy single replica region.
func (n *Network) replicaCount() int {
	if !n.cfg.Replication {
		return 0
	}
	if n.cfg.Replicas <= 1 {
		return 1
	}
	return n.cfg.Replicas
}

// Replicas returns the effective number of replica regions per key (0
// when replication is off).
func (n *Network) Replicas() int { return n.replicaCount() }

// peerNearestCenter returns the live peer inside the region (under the
// given table's geometry) closest to its center, or nil when the region
// is empty.
func (n *Network) peerNearestCenter(t *region.Table, id region.ID) *Peer {
	return n.peerNearestCenterExcluding(t, id, nil)
}

// peerNearestCenterExcluding is peerNearestCenter skipping one peer.
func (n *Network) peerNearestCenterExcluding(t *region.Table, id region.ID, exclude *Peer) *Peer {
	r, ok := t.Region(id)
	if !ok {
		return nil
	}
	var best *Peer
	bestD := 0.0
	for _, p := range n.peers {
		if !p.alive || p == exclude {
			continue
		}
		pos := n.ch.Position(p.id)
		if !t.Contains(id, pos) {
			continue
		}
		d := pos.Dist2(r.Center())
		if best == nil || d < bestD {
			best, bestD = p, d
		}
	}
	return best
}

// peerLeastLoaded returns the live peer inside the region holding the
// fewest stored keys (ties broken by distance to the region center, then
// node ID), or nil when the region is empty. Used for load-aware replica
// placement when Replicas > 1 (La et al.): spreading custody by load
// keeps any one peer from accumulating every replica of a hot region.
func (n *Network) peerLeastLoaded(t *region.Table, id region.ID) *Peer {
	r, ok := t.Region(id)
	if !ok {
		return nil
	}
	var best *Peer
	bestLoad := 0
	bestD := 0.0
	for _, p := range n.peers {
		if !p.alive {
			continue
		}
		pos := n.ch.Position(p.id)
		if !t.Contains(id, pos) {
			continue
		}
		load := p.store.Len()
		d := pos.Dist2(r.Center())
		if best == nil || load < bestLoad || (load == bestLoad && d < bestD) {
			best, bestLoad, bestD = p, load, d
		}
	}
	return best
}

// Peers returns the number of peers.
func (n *Network) Peers() int { return len(n.peers) }

// Peer exposes a peer for inspection (tests, examples).
func (n *Network) Peer(id radio.NodeID) *Peer { return n.peers[id] }

// Truth returns the authoritative version of a key.
func (n *Network) Truth(k workload.Key) uint64 { return n.truth[k] }

// Stats returns protocol-layer counters.
func (n *Network) Stats() Stats { return n.stats }

// PendingRequests returns the number of requests still awaiting an answer
// or a timeout. After the event queue drains it must be zero — every
// request resolves to a hit, a failure, or a timeout chain ending in one.
func (n *Network) PendingRequests() int {
	total := 0
	for _, p := range n.peers {
		total += p.pendingLen()
	}
	return total
}

// Table returns the latest region table.
func (n *Network) Table() *region.Table { return n.table }

// TableVersions returns how many region-table versions exist (1 = the
// initial partition only).
func (n *Network) TableVersions() int { return len(n.tables) }

// Scheduler returns the simulation scheduler.
func (n *Network) Scheduler() *sim.Scheduler { return n.sched }

// emit sends a trace event when tracing is enabled.
func (n *Network) emit(e trace.Event) {
	if n.tracer != nil {
		e.Time = n.sched.Now()
		n.tracer.Emit(e)
	}
}

// recording reports whether metrics should be recorded at the current
// simulation time (post-warmup).
func (n *Network) recording() bool { return n.sched.Now() >= n.cfg.Warmup }

// account books one processed (received) copy of m in the collector. The
// paper's overhead metric is the number of messages the network handles —
// a broadcast costs one entry per node that processes it, a unicast one
// entry at its addressee — which is why floods dominate Figure 6.
func (n *Network) account(m *message) {
	if !n.recording() {
		return
	}
	switch m.Kind.class() {
	case classControl:
		n.coll.ControlMessages(1)
	case classMaintenance:
		n.coll.MaintenanceMessages(1)
	default:
		n.coll.SearchMessages(1)
	}
}

// broadcast sends m from the peer to all radio neighbors, consuming the
// caller's reference: the shared payload now carries one reference per
// scheduled receiver (each settled by handleFrame or the drop handler),
// and a transmission nobody will receive is released immediately. The
// caller must not touch m afterwards.
func (n *Network) broadcast(from radio.NodeID, m *message) {
	delivered := n.ch.Broadcast(from, m.wireSize(n.cfg.ControlBytes), m)
	if n.pool.disabled {
		return
	}
	if delivered == 0 {
		n.releaseMsg(m)
		return
	}
	m.refs = int32(delivered)
}

// unicast sends m to a specific neighbor; false when the link is gone.
// On true the single reference transfers to the channel (a send-time
// loss settles it through the drop handler before Unicast returns), so
// the caller must not touch m after a true return. On false the caller
// still owns m.
func (n *Network) unicast(from, to radio.NodeID, m *message) bool {
	return n.ch.Unicast(from, to, m.wireSize(n.cfg.ControlBytes), m)
}

// routingDest returns the geographic destination of a routed message.
func routingDest(m *message) geo.Point {
	switch m.Kind {
	case kindReply, kindPollReply:
		return m.OriginPos
	default:
		return m.TargetPos
	}
}

// forwardRouted advances a routed message one GPSR hop. It returns false
// when no progress is possible (the packet is dropped; end-to-end
// recovery is by requester timeout).
func (n *Network) forwardRouted(p *Peer, m *message) bool {
	if m.Hops >= n.cfg.MaxRouteHops {
		// Perimeter walks in a mobile topology can wander when the
		// graph changes underneath them; the hop cap bounds the damage.
		n.stats.RoutingFailures++
		return false
	}
	nbrs := n.ch.Neighbors(p.id)
	n.router.SetPlanarKey(n.ch.PlanarKey())
	next, ok := n.router.NextHop(p.id, n.ch.Position(p.id), nbrs, routingDest(m), &m.Route)
	if !ok {
		n.stats.RoutingFailures++
		return false
	}
	if !n.unicast(p.id, next.ID, m) {
		n.stats.RoutingFailures++
		return false
	}
	return true
}

// routeOwned forwards an owned routed message one hop, releasing it when
// no hop exists — these kinds recover end-to-end (requester timeouts),
// so a routing failure just drops the packet.
func (n *Network) routeOwned(p *Peer, m *message) {
	if !n.forwardRouted(p, m) {
		n.releaseMsg(m)
	}
}

// forwardWithRetry routes an owned message one hop, retrying from the
// same node after a short pause when the topology offers no next hop.
// Update pushes and key handoffs have no end-to-end timeout to recover
// them, so losing one leaves a holder stale (or a key homeless); a few
// retries ride out transient voids caused by mobility.
//
// A failed forward never hands the message to the channel, so the retry
// retransmits the same box in place — Retries incremented, routing
// geometry reset — instead of deep-cloning an identical message.
func (n *Network) forwardWithRetry(p *Peer, m *message) {
	if m.Kind == kindHandoff && m.HasTargetNode && m.Retries > 0 {
		// On retries, re-aim at the best peer currently in the target
		// region: the original addressee may have moved or died since
		// the handoff was built, and any other peer of that region is
		// an equally good custodian. The forwarder itself is excluded —
		// during an evacuation it is about to leave.
		if target := n.peerNearestCenterExcluding(n.table, m.TargetRegion, p); target != nil {
			m.TargetNode = target.id
			m.TargetPos = n.ch.Position(target.id)
		}
	}
	if n.forwardRouted(p, m) {
		return
	}
	maxRetries := 3
	if m.Kind == kindHandoff {
		maxRetries = 5 // losing keys is worse than losing one update
	}
	if m.Retries >= maxRetries {
		switch m.Kind {
		case kindHandoff:
			// Undeliverable: the current carrier adopts the copies;
			// its next mobility check will retry the re-homing.
			n.stats.StrandedKeys += uint64(len(m.Items))
			p.adoptItems(m.Items)
		default:
			n.stats.LostUpdates++
		}
		n.releaseMsg(m)
		return
	}
	m.Retries++
	m.Route = routing.State{} // fresh geometry on the next attempt
	m.Hops = 0
	n.sched.After(0.5, func() {
		if p.alive {
			n.forwardWithRetry(p, m)
		} else {
			n.releaseMsg(m) // the forwarder died holding the message
		}
	})
}

// handleFrame dispatches a delivered frame to the peer protocol
// handlers. The handler it dispatches to takes ownership of m and must
// consume it exactly once (release, stash, or retransmit).
func (n *Network) handleFrame(to radio.NodeID, f radio.Frame) {
	p := n.peers[to]
	if !p.alive {
		// Unreachable through the radio (dead receivers resolve as
		// DeadDrops before the handler), but direct callers exist in
		// tests; settle ownership either way.
		n.releaseMsg(f.Payload.(*message))
		return
	}
	m, ok := f.Payload.(*message)
	if !ok {
		panic(fmt.Sprintf("node: unexpected payload %T", f.Payload))
	}
	// Duplicate fast path: every dedup-first flood kind drops an
	// already-seen message as its very first action, with no other side
	// effect (markSeen mutates nothing on the duplicate path), so the
	// per-receiver copy — the dominant allocation of broadcast delivery
	// at large N — can be skipped. account reads only the message kind,
	// which the shared payload carries unchanged.
	if id, dedup := dedupID(m); dedup && p.alreadySeen(id) {
		n.account(m)
		n.releaseMsg(m)
		return
	}
	switch {
	case n.pool.disabled:
		// Reference path: every receiver clones, as the pre-pooling
		// implementation did for broadcast and unicast alike.
		m = m.clone()
	case f.Broadcast:
		// Broadcast payloads are shared: exchange this receiver's
		// reference for a private header copy (Items, handoff-only and
		// never broadcast, would ride along copy-on-write).
		cp := n.pool.acquire()
		*cp = *m
		cp.refs = 1
		cp.released = false
		n.releaseMsg(m)
		m = cp
	default:
		// Unicast: the single reference came through the channel to
		// this receiver; mutate in place, no copy.
	}
	m.Hops++
	n.account(m)
	switch m.Kind {
	case kindSearchFlood:
		p.onSearchFlood(m)
	case kindRegionalSearch:
		p.onRegionalSearch(m)
	case kindRoutedSearch:
		p.onRoutedSearch(m)
	case kindHomeFlood:
		p.onHomeFlood(m)
	case kindReply:
		p.onReply(m)
	case kindInvalidate:
		p.onInvalidate(m)
	case kindUpdateRoute:
		p.onUpdateRoute(m)
	case kindUpdateFlood:
		p.onUpdateFlood(m)
	case kindPollRoute:
		p.onPollRoute(m)
	case kindPollFlood:
		p.onPollFlood(m)
	case kindPollReply:
		p.onPollReply(m)
	case kindHandoff:
		p.onHandoff(m)
	case kindTableUpdate:
		p.onTableUpdate(m)
	default:
		panic(fmt.Sprintf("node: unknown message kind %v", m.Kind))
	}
}

// Run starts the autonomous drivers (request/update processes and
// mobility checks) and executes the simulation until the given time. It
// returns the metrics report, with energy filled in when a meter was
// provided. Energy accounting is reset at the warmup boundary so that
// energy-per-request covers the same window as the request counters.
func (n *Network) Run(duration float64) metrics.Report {
	if !n.started {
		n.started = true
		n.StartDrivers()
		if n.cfg.Adaptive.Enabled {
			n.startAdaptiveController()
		}
		if n.meter != nil && n.cfg.Warmup > 0 && n.cfg.Warmup <= duration {
			n.armMeterReset(n.cfg.Warmup)
		}
	}
	n.sched.Run(duration)
	return n.Report()
}

// Report snapshots the metrics without advancing time.
func (n *Network) Report() metrics.Report {
	r := n.coll.Snapshot()
	if n.meter != nil {
		r = r.WithEnergy(n.meter.Total())
	}
	return r
}

// armMeterReset schedules the energy-meter reset at the warmup boundary.
// The reset is network-global work: a sharded run executes it at a
// barrier and zeroes every shard replica's meter.
func (n *Network) armMeterReset(at float64) {
	n.sched.AtProcAs(sim.Proc{Kind: procMeterReset, Owner: -1}, at, n.resetMeters, -1)
}

// resetMeters zeroes the energy meter — every shard replica's, in a
// sharded run, since charges accumulate on the shard that spends them.
func (n *Network) resetMeters() {
	if n.clones == nil {
		n.meter.Reset()
		return
	}
	for _, c := range n.clones {
		c.meter.Reset()
	}
}

// StartDrivers schedules each peer's request, update and mobility-check
// loops, in ascending peer order. The parallel runner calls it directly
// (single-threaded, before the first window) so the canonical keys of
// the initial events match the sequential run's exactly.
func (n *Network) StartDrivers() {
	for _, p := range n.peers {
		p.scheduleMobilityCheck()
		if n.src == nil {
			continue
		}
		p.scheduleNextRequest()
		if n.src.UpdatesEnabled() {
			p.scheduleNextUpdate()
		}
	}
}

// chanLocator adapts the radio channel to the workload.Locator the
// geo-aware sources consult.
type chanLocator struct{ ch *radio.Channel }

// Locate returns the peer's current position in meters.
func (l chanLocator) Locate(peer int) (x, y float64) {
	p := l.ch.Position(radio.NodeID(peer))
	return p.X, p.Y
}

// noteTopologyChange invalidates cached planarizations on every shard's
// channel — liveness is shared state, so all replicas observe the change.
func (n *Network) noteTopologyChange() {
	if n.clones == nil {
		n.ch.NoteTopologyChange()
		return
	}
	for _, c := range n.clones {
		c.ch.NoteTopologyChange()
	}
}

// Crash kills a peer immediately: no handoff, its keys become unavailable
// until a replica or relocation covers them.
func (n *Network) Crash(id radio.NodeID) {
	n.peers[id].alive = false
	n.noteTopologyChange()
	n.emit(trace.Event{Kind: trace.NodeCrashed, Node: int(id)})
}

// Quit removes a peer gracefully: it hands its keys off to another peer
// in its region first (the paper's assumption ii).
func (n *Network) Quit(id radio.NodeID) {
	p := n.peers[id]
	if !p.alive {
		return
	}
	p.rehomeKeys(true)
	p.alive = false
	n.noteTopologyChange()
	n.emit(trace.Event{Kind: trace.NodeQuit, Node: int(id)})
}

// Revive brings a crashed peer back with empty stores.
func (n *Network) Revive(id radio.NodeID) {
	p := n.peers[id]
	if p.alive {
		return
	}
	p.alive = true
	n.noteTopologyChange()
	p.store = cache.NewStore()
	if p.cache != nil {
		c, err := n.newCache()
		if err == nil {
			p.cache = c
		}
	}
	// A rejoining peer retrieves the current region table from its
	// neighbors (Section 2.1).
	p.tableIdx = len(n.tables) - 1
	if r, ok := p.table().Locate(n.ch.Position(id)); ok {
		p.regionID = r.ID
	}
	n.emit(trace.Event{Kind: trace.NodeRevived, Node: int(id)})
}

// Separate splits a region and disseminates the new table through the
// network; peers relocate their keys as the update reaches them.
func (n *Network) Separate(id region.ID) error {
	next := n.table.Clone()
	if _, _, err := next.Separate(id); err != nil {
		return err
	}
	n.publishTable(next, id)
	return nil
}

// Merge merges two regions and disseminates the new table.
func (n *Network) Merge(a, b region.ID) error {
	next := n.table.Clone()
	if _, err := next.Merge(a, b); err != nil {
		return err
	}
	n.publishTable(next, a)
	return nil
}

// AddRegion expands the service area with a new region and disseminates
// the new table (the paper's Add operation: "a new entry ... is added
// into the region table to indicate the expansion of the whole network
// topology").
func (n *Network) AddRegion(bounds geo.Rect) (region.Region, error) {
	next := n.table.Clone()
	r, err := next.Add(bounds)
	if err != nil {
		return region.Region{}, err
	}
	// Disseminate from a peer near the new region's closest existing
	// neighbor; keys whose home region moves relocate on receipt.
	var nearest region.ID = region.Invalid
	bestD := 0.0
	for _, old := range n.table.Regions() {
		d := old.Center().Dist2(r.Center())
		if nearest == region.Invalid || d < bestD {
			nearest, bestD = old.ID, d
		}
	}
	n.publishTable(next, nearest)
	return r, nil
}

// DeleteRegion removes a region and disseminates the new table; keys
// homed there re-hash to the remaining regions and relocate.
func (n *Network) DeleteRegion(id region.ID) error {
	next := n.table.Clone()
	if err := next.Delete(id); err != nil {
		return err
	}
	n.publishTable(next, id)
	return nil
}

// publishTable appends the new table version and floods it from a peer
// near the affected region (the paper: "the peer needs to disseminate the
// update to all other peers in the whole network to guarantee the
// consistency of region tables"). Peers apply the new partition — and
// relocate their keys — when the flood reaches them.
func (n *Network) publishTable(next *region.Table, near region.ID) {
	n.tables = append(n.tables, next)
	n.table = next
	idx := len(n.tables) - 1

	initiator := n.anyLivePeerNear(near)
	if initiator == nil {
		return // nobody to disseminate; revives pick the table up later
	}
	n.applyTable(initiator, idx)
	m := n.newMsg(message{
		Kind: kindTableUpdate, ID: initiator.newID(), FloodID: initiator.newID(),
		Origin: initiator.id, OriginPos: n.ch.Position(initiator.id),
		TTL: n.cfg.NetworkTTL, TableIdx: idx,
	})
	initiator.markSeen(m.FloodID)
	n.broadcast(initiator.id, m)
}

// anyLivePeerNear returns a live peer inside the given region of the
// previous table version, or any live peer as a fallback.
func (n *Network) anyLivePeerNear(id region.ID) *Peer {
	if len(n.tables) >= 2 {
		prev := n.tables[len(n.tables)-2]
		if p := n.peerNearestCenter(prev, id); p != nil {
			return p
		}
	}
	for _, p := range n.peers {
		if p.alive {
			return p
		}
	}
	return nil
}

// applyTable switches a peer to the given table version, refreshing its
// region membership and relocating any keys the new partition re-homes.
func (n *Network) applyTable(p *Peer, idx int) {
	if idx <= p.tableIdx {
		return
	}
	p.tableIdx = idx
	if r, ok := p.table().Locate(n.ch.Position(p.id)); ok {
		p.regionID = r.ID
	}
	if p.store.Len() > 0 {
		before := n.stats.Handoffs
		p.rehomeKeys(false)
		n.stats.Relocations += n.stats.Handoffs - before
	}
}
