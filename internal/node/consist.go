package node

import (
	"precinct/internal/cache"
	"precinct/internal/consistency"
	"precinct/internal/metrics"
	"precinct/internal/radio"
	"precinct/internal/trace"
	"precinct/internal/workload"
)

// UpdateFrom runs the update path for key k initiated by the given peer:
// the authoritative version is bumped, then propagated according to the
// configured consistency scheme.
func (n *Network) UpdateFrom(origin radio.NodeID, k workload.Key) {
	p := n.peers[origin]
	if !p.alive {
		return
	}
	n.truth[k]++
	newVersion := n.truth[k]
	if n.recording() {
		n.coll.UpdateIssued()
	}
	n.emit(trace.Event{Kind: trace.UpdateIssued, Node: int(origin), Key: uint32(k)})
	now := n.sched.Now()

	// The initiator's own copies are freshened immediately.
	if _, ok := p.store.Get(k); ok {
		n.applyStoredUpdate(p, k, newVersion, now)
	}
	if p.cache != nil {
		p.cache.Update(k, newVersion, now+n.cfg.Consistency.InitialTTR)
	}

	switch n.cfg.Consistency.Scheme {
	case consistency.PlainPush:
		// Flood the update (which doubles as the invalidation) through
		// the entire network.
		m := n.newMsg(message{
			Kind: kindInvalidate, ID: p.newID(), FloodID: p.newID(), Key: k,
			Origin: origin, OriginPos: n.ch.Position(origin), OriginRegion: p.regionID,
			Version: newVersion, TTL: n.cfg.NetworkTTL,
			Size: n.catalog.Size(k),
		})
		p.markSeen(m.FloodID)
		n.broadcast(origin, m)
	default:
		// None, PullEveryTime, PushAdaptivePull: the update travels to
		// the home region (and each replica region when replication is
		// on); caches elsewhere converge by pulling.
		n.pushUpdateToRegion(p, k, newVersion, 0)
		for r := 1; r <= n.replicaCount(); r++ {
			n.pushUpdateToRegion(p, k, newVersion, r)
		}
	}
}

// pushUpdateToRegion routes an update toward the key's home region
// (rank 0) or its rank-r replica region, and floods it there.
func (n *Network) pushUpdateToRegion(p *Peer, k workload.Key, version uint64, rank int) {
	var regionOK bool
	var regionID = p.regionID
	var center = n.ch.Position(p.id)
	if rank == 0 {
		if r, ok := p.table().HomeRegion(k); ok {
			regionID, center, regionOK = r.ID, r.Center(), true
		}
	} else {
		if r, ok := replicaRegionAt(p.table(), k, rank); ok {
			regionID, center, regionOK = r.ID, r.Center(), true
		}
	}
	if !regionOK {
		return
	}
	m := n.newMsg(message{
		Kind: kindUpdateRoute, ID: p.newID(), Key: k,
		Origin: p.id, OriginPos: n.ch.Position(p.id), OriginRegion: p.regionID,
		TargetRegion: regionID, TargetPos: center,
		Version: version, Size: n.catalog.Size(k),
	})
	if regionID == p.regionID {
		// Already inside the target region: flood directly.
		m.Kind = kindUpdateFlood
		m.TTL = n.cfg.RegionTTL
		m.FloodID = p.newID()
		p.markSeen(m.FloodID)
		n.broadcast(p.id, m)
		return
	}
	n.forwardWithRetry(p, m)
}

// onUpdateRoute advances an update toward its target region; the first
// node inside becomes the point of broadcast.
func (p *Peer) onUpdateRoute(m *message) {
	if p.table().Contains(m.TargetRegion, p.net.ch.Position(p.id)) {
		// Rewrite the routed update into the localized flood in place.
		m.Kind = kindUpdateFlood
		m.TTL = p.net.cfg.RegionTTL
		m.FloodID = p.newID()
		p.markSeen(m.FloodID)
		p.applyUpdateMessage(m)
		p.net.broadcast(p.id, m)
		return
	}
	p.net.forwardWithRetry(p, m)
}

// onUpdateFlood applies an update inside the target region and keeps the
// localized flood going.
func (p *Peer) onUpdateFlood(m *message) {
	if p.markSeen(m.FloodID) {
		p.net.releaseMsg(m)
		return
	}
	if !p.table().Contains(m.TargetRegion, p.net.ch.Position(p.id)) {
		p.net.releaseMsg(m)
		return
	}
	p.applyUpdateMessage(m)
	if m.TTL > 1 {
		m.TTL--
		p.net.broadcast(p.id, m)
		return
	}
	p.net.releaseMsg(m)
}

// applyUpdateMessage installs a pushed update into this peer's store (if
// it is a holder) and freshens any cached copy.
func (p *Peer) applyUpdateMessage(m *message) {
	now := p.net.sched.Now()
	if _, ok := p.store.Get(m.Key); ok {
		p.net.applyStoredUpdate(p, m.Key, m.Version, now)
	}
	if p.cache != nil {
		if e, ok := p.cache.Peek(m.Key); ok && e.Version < m.Version {
			ttr := p.net.holderTTR(p, m.Key)
			p.cache.Update(m.Key, m.Version, now+ttr)
		}
	}
}

// applyStoredUpdate records an accepted update on a stored item, updating
// its TTR estimate per Equation 2 and counting it.
func (n *Network) applyStoredUpdate(p *Peer, k workload.Key, version uint64, now float64) {
	it, ok := p.store.Get(k)
	if !ok || version <= it.Version {
		return
	}
	interval := now - it.UpdatedAt
	if interval < 0 {
		interval = 0
	}
	prev := it.TTR
	if prev <= 0 {
		prev = n.cfg.Consistency.InitialTTR
	}
	updated := *it
	updated.TTR = consistency.SmoothTTR(n.cfg.Consistency.Alpha, prev, interval)
	updated.Version = version
	updated.UpdatedAt = now
	p.store.Put(updated)
	n.stats.UpdatesApplied++
	if n.probe != nil {
		n.probe.OnTTRSmoothed(p.id, k, n.cfg.Consistency.Alpha, prev, interval, updated.TTR)
	}
}

// holderTTR returns the TTR to advertise for a key from this peer's
// perspective (store TTR when it is a holder, the seed otherwise).
func (n *Network) holderTTR(p *Peer, k workload.Key) float64 {
	if it, ok := p.store.Get(k); ok && it.TTR > 0 {
		return it.TTR
	}
	return n.cfg.Consistency.InitialTTR
}

// onInvalidate handles the Plain-Push network-wide update flood: every
// peer processes it — holders apply the new version, caches drop or
// freshen their copy — and keeps flooding.
func (p *Peer) onInvalidate(m *message) {
	if p.markSeen(m.FloodID) {
		p.net.releaseMsg(m)
		return
	}
	now := p.net.sched.Now()
	if _, ok := p.store.Get(m.Key); ok {
		p.net.applyStoredUpdate(p, m.Key, m.Version, now)
	}
	if p.cache != nil {
		if e, ok := p.cache.Peek(m.Key); ok && e.Version < m.Version {
			// Plain-Push carries the new data, so the cached copy can
			// be refreshed in place rather than dropped.
			p.cache.Update(m.Key, m.Version, cache.NeverExpires)
		}
	}
	if m.TTL > 1 {
		m.TTL--
		p.net.broadcast(p.id, m)
		return
	}
	p.net.releaseMsg(m)
}

// sendPoll routes a validation poll toward the key's home region. It
// reports whether the poll left the requester.
func (n *Network) sendPoll(p *Peer, req *pendingReq) bool {
	home, ok := p.table().HomeRegion(req.key)
	if !ok {
		return false
	}
	if n.recording() {
		n.coll.PollIssued()
	}
	n.emit(trace.Event{Kind: trace.PollIssued, Node: int(p.id), Key: uint32(req.key)})
	m := n.newMsg(message{
		Kind: kindPollRoute, ID: req.id, Key: req.key,
		Origin: p.id, OriginPos: n.ch.Position(p.id), OriginRegion: p.regionID,
		TargetRegion: home.ID, TargetPos: home.Center(),
		CachedVersion: req.cachedVersion,
	})
	if home.ID == p.regionID {
		// The home region is the local region: flood the poll locally.
		m.Kind = kindPollFlood
		m.TTL = n.cfg.RegionTTL
		m.FloodID = p.newID()
		p.markSeen(m.FloodID)
		n.broadcast(p.id, m)
		return true
	}
	if n.forwardRouted(p, m) {
		return true
	}
	n.releaseMsg(m)
	return false
}

// onPollRoute advances a poll toward the home region.
func (p *Peer) onPollRoute(m *message) {
	if p.table().Contains(m.TargetRegion, p.net.ch.Position(p.id)) {
		// Rewrite the routed poll into the localized flood in place.
		m.Kind = kindPollFlood
		m.TTL = p.net.cfg.RegionTTL
		m.FloodID = p.newID()
		p.markSeen(m.FloodID)
		if p.answerPoll(m) {
			p.net.releaseMsg(m)
			return
		}
		p.net.broadcast(p.id, m)
		return
	}
	p.net.routeOwned(p, m)
}

// onPollFlood lets holders inside the home region answer the poll.
func (p *Peer) onPollFlood(m *message) {
	if p.markSeen(m.FloodID) {
		p.net.releaseMsg(m)
		return
	}
	if !p.table().Contains(m.TargetRegion, p.net.ch.Position(p.id)) {
		p.net.releaseMsg(m)
		return
	}
	if p.answerPoll(m) {
		p.net.releaseMsg(m)
		return
	}
	if m.TTL > 1 {
		m.TTL--
		p.net.broadcast(p.id, m)
		return
	}
	p.net.releaseMsg(m)
}

// answerPoll responds to a validation poll when this peer holds the
// authoritative copy: a small "still valid" answer when the requester's
// version is current, or the full data when it is stale (conditional-GET
// semantics, saving the second round trip). Reports whether it answered.
func (p *Peer) answerPoll(m *message) bool {
	it, ok := p.store.Get(m.Key)
	if !ok {
		return false
	}
	p.net.stats.PollsAnswered++
	if m.CachedVersion >= it.Version {
		reply := p.net.newMsg(message{
			Kind: kindPollReply, ID: m.ID, Key: m.Key,
			Origin: m.Origin, OriginPos: m.OriginPos,
			Version: it.Version, TTR: it.TTR,
		})
		if p.id == m.Origin {
			p.onPollReply(reply)
			return true
		}
		p.net.routeOwned(p, reply)
		return true
	}
	p.answer(m, it.Version, it.TTR, true, false)
	return true
}

// onPollReply routes a "still valid" answer back and completes the poll.
func (p *Peer) onPollReply(m *message) {
	if p.id != m.Origin {
		p.net.routeOwned(p, m)
		return
	}
	n := p.net
	req, ok := p.pendingGet(m.ID)
	if !ok {
		n.releaseMsg(m)
		return
	}
	now := n.sched.Now()
	if p.cache != nil {
		p.cache.Update(m.Key, m.Version, now+m.TTR)
	}
	stale := m.Version < req.truthAtIssue
	if req.pendingReply != nil {
		// A cache-served answer was waiting on this validation.
		reply := req.pendingReply
		req.pendingReply = nil
		stale = reply.Version < req.truthAtIssue
		n.finish(req, n.classify(p, reply), now-req.issuedAt, stale)
		n.admitToCache(p, reply, now)
		n.releaseMsg(reply)
		n.releaseMsg(m)
		return
	}
	n.finish(req, metrics.LocalHit, now-req.issuedAt, stale)
	n.releaseMsg(m)
}
