package node

import (
	"math"

	"precinct/internal/cache"
	"precinct/internal/consistency"
	"precinct/internal/metrics"
	"precinct/internal/radio"
	"precinct/internal/region"
	"precinct/internal/sim"
	"precinct/internal/trace"
	"precinct/internal/workload"
)

// reqPhase tracks where a pending request is in its lifecycle.
type reqPhase int

const (
	phaseRegional reqPhase = iota // waiting on the requester-region flood
	phaseHome                     // waiting on the home region
	phaseReplica                  // waiting on the replica region
	phasePoll                     // waiting on a validation poll
	phaseRing                     // waiting on an expanding-ring round
	phaseFlood                    // waiting on a network-wide flood
)

// pendingReq is the requester-side state of one outstanding request.
type pendingReq struct {
	id       uint64
	origin   radio.NodeID
	key      workload.Key
	size     int
	issuedAt float64
	record   bool
	phase    reqPhase
	timeout  sim.Handle

	// ringTTL is the current expanding-ring radius.
	ringTTL int
	// replicaRank is the highest replica rank a routed attempt was
	// successfully forwarded to (0 = none yet); the replica phase walks
	// ranks upward until the configured replica count is exhausted.
	replicaRank int
	// cachedVersion is the local copy's version during a poll.
	cachedVersion uint64
	// truthAtIssue is the authoritative version when the request was
	// issued; answers older than this are false hits. Comparing against
	// issue time (not completion time) keeps updates that race with an
	// in-flight request from being miscounted as staleness.
	truthAtIssue uint64
	// pendingReply stashes a cache-served answer that Pull-Every-time
	// must validate with the home region before serving.
	pendingReply *message
}

// armReqTimeout schedules (or re-schedules) a pending request's timeout
// at an absolute time. The event is tagged with the request ID so a
// checkpoint can capture it while the request is outstanding and a
// restore can re-arm it against the deserialized pending map — without
// this, any in-flight request would block the quiescence a snapshot
// needs, which in lossy networks can starve checkpointing entirely.
func (n *Network) armReqTimeout(req *pendingReq, at float64) {
	// The closure captures the request ID by value, never the box: the
	// box recycles through the freelist when the request closes, and a
	// canceled-then-stale fire must miss the pending lookup, not read a
	// reused box.
	id := req.id
	req.timeout = n.sched.AtProcAs(sim.Proc{Kind: procReqTimeout, Owner: int(id)}, at, func() {
		n.onTimeout(id)
	}, int(req.origin))
}

// RequestFrom runs the full search process for key k issued by the given
// peer at the current simulation time (Figure 1's Search procedure).
func (n *Network) RequestFrom(origin radio.NodeID, k workload.Key) {
	p := n.peers[origin]
	if !p.alive {
		return
	}
	now := n.sched.Now()
	size := n.catalog.Size(k)
	req := n.acquireReq()
	*req = pendingReq{
		id:           p.newID(),
		origin:       origin,
		key:          k,
		size:         size,
		issuedAt:     now,
		record:       n.recording(),
		truthAtIssue: n.truth[k],
	}

	n.emit(trace.Event{Kind: trace.RequestIssued, Node: int(origin), Key: uint32(k)})

	// Authoritative local copy (static space).
	if it, ok := p.store.Get(k); ok {
		n.finish(req, metrics.LocalHit, 0, it.Version < req.truthAtIssue)
		return
	}

	// Dynamic cache.
	if p.cache != nil {
		if e, ok := p.cache.Get(k, now); ok {
			if consistency.Fresh(n.cfg.Consistency.Scheme, e, now) {
				n.finish(req, metrics.LocalHit, 0, e.Version < req.truthAtIssue)
				return
			}
			// Stale-suspect copy: validate with the home region.
			p.pendingPut(req)
			req.phase = phasePoll
			req.cachedVersion = e.Version
			if n.sendPoll(p, req) {
				n.armReqTimeout(req, n.sched.Now()+n.cfg.RemoteTimeout)
				return
			}
			// No route to the home region: fall through to a search.
			p.pendingDelete(req.id)
		}
	}

	p.pendingPut(req)
	switch n.cfg.Retrieval {
	case PReCinCt:
		// Without cooperative caching there is nothing to find in the
		// requester's region (Section 5.2.2's analysis setup), so the
		// request goes straight to the home region.
		if p.cache == nil {
			if n.startHomePhase(p, req) || n.startReplicaPhase(p, req) {
				return
			}
			// The home region is the local region: fall back to the
			// regional flood to find the holder.
			n.startRegionalPhase(p, req)
			return
		}
		n.startRegionalPhase(p, req)
	case Flooding:
		req.phase = phaseFlood
		n.floodSearch(p, req, n.cfg.NetworkTTL)
		n.armReqTimeout(req, n.sched.Now()+n.cfg.RemoteTimeout)
	case ExpandingRing:
		req.phase = phaseRing
		req.ringTTL = 1
		n.floodSearch(p, req, req.ringTTL)
		n.armReqTimeout(req, n.sched.Now()+n.ringWait(req.ringTTL))
	}
}

// ringWait scales the per-round timeout with the ring radius.
func (n *Network) ringWait(ttl int) float64 {
	return n.cfg.RingTimeout * float64(ttl)
}

// startRegionalPhase broadcasts the request inside the requester's region.
func (n *Network) startRegionalPhase(p *Peer, req *pendingReq) {
	req.phase = phaseRegional
	m := n.newMsg(message{
		Kind: kindRegionalSearch, ID: req.id, Key: req.key,
		Origin: p.id, OriginPos: n.ch.Position(p.id), OriginRegion: p.regionID,
		TargetRegion: p.regionID, TTL: n.cfg.RegionTTL,
	})
	p.markSeen(m.ID) // the origin must not re-flood its own request
	n.broadcast(p.id, m)
	n.armReqTimeout(req, n.sched.Now()+n.cfg.RegionalTimeout)
}

// startHomePhase routes the request toward the key's home region. It
// reports whether the request could leave the requester.
func (n *Network) startHomePhase(p *Peer, req *pendingReq) bool {
	home, ok := p.table().HomeRegion(req.key)
	if !ok {
		return false
	}
	if home.ID == p.regionID {
		// The regional flood already covered the home region.
		return false
	}
	req.phase = phaseHome
	m := n.newMsg(message{
		Kind: kindRoutedSearch, ID: req.id, Key: req.key,
		Origin: p.id, OriginPos: n.ch.Position(p.id), OriginRegion: p.regionID,
		TargetRegion: home.ID, TargetPos: home.Center(),
	})
	if !n.forwardRouted(p, m) {
		n.releaseMsg(m)
		return false
	}
	n.armReqTimeout(req, n.sched.Now()+n.cfg.RemoteTimeout)
	return true
}

// replicaRegionAt resolves the rank-r replica region of a key under the
// given table. Rank 1 goes through the original single-replica lookup —
// provably equal to ReplicaRegionAt(k, 1) including tie-breaks, but kept
// on the original call so the paper's single-replica runs touch only
// code that predates the k-replica layer.
func replicaRegionAt(t *region.Table, k workload.Key, r int) (region.Region, bool) {
	if r == 1 {
		return t.ReplicaRegion(k)
	}
	return t.ReplicaRegionAt(k, r)
}

// startReplicaPhase retries against the next untried replica region
// (fault tolerance, Section 2.4). With the paper's single replica region
// there is exactly one attempt; with Replicas > 1 each call advances to
// the next rank, so a request walks the k replica regions in rank order
// before failing. It reports whether a routed attempt left the
// requester. Ranks whose region is the requester's own (already covered
// by a flood) or that cannot be routed to are skipped; only a
// successfully forwarded rank is recorded, so an unreachable rank is
// retried if a later phase falls back here again.
func (n *Network) startReplicaPhase(p *Peer, req *pendingReq) bool {
	reps := n.replicaCount()
	for r := req.replicaRank + 1; r <= reps; r++ {
		rep, ok := replicaRegionAt(p.table(), req.key, r)
		if !ok || rep.ID == p.regionID {
			continue
		}
		req.phase = phaseReplica
		m := n.newMsg(message{
			Kind: kindRoutedSearch, ID: req.id, Key: req.key,
			Origin: p.id, OriginPos: n.ch.Position(p.id), OriginRegion: p.regionID,
			TargetRegion: rep.ID, TargetPos: rep.Center(),
		})
		if !n.forwardRouted(p, m) {
			n.releaseMsg(m)
			continue
		}
		req.replicaRank = r
		n.armReqTimeout(req, n.sched.Now()+n.cfg.RemoteTimeout)
		return true
	}
	return false
}

// floodSearch broadcasts a network-wide search (flooding / ring round).
// Each round uses a fresh flood ID so ring rounds are not deduplicated
// against each other.
func (n *Network) floodSearch(p *Peer, req *pendingReq, ttl int) {
	m := n.newMsg(message{
		Kind: kindSearchFlood, ID: req.id, Key: req.key,
		Origin: p.id, OriginPos: n.ch.Position(p.id), OriginRegion: p.regionID,
		TTL: ttl, FloodID: p.newID(),
	})
	p.markSeen(m.FloodID)
	n.broadcast(p.id, m)
}

// onTimeout advances a pending request to its next phase, or fails it.
func (n *Network) onTimeout(id uint64) {
	p := n.peers[reqOrigin(id)]
	req, ok := p.pendingGet(id)
	if !ok {
		return
	}
	if !p.alive {
		n.fail(req)
		return
	}
	switch req.phase {
	case phaseRegional:
		if n.startHomePhase(p, req) {
			return
		}
		if n.startReplicaPhase(p, req) {
			return
		}
		n.fail(req)
	case phaseHome:
		if n.startReplicaPhase(p, req) {
			return
		}
		n.fail(req)
	case phasePoll:
		if req.pendingReply != nil {
			// A cache-served answer was waiting on a validation that
			// never came back (the home region may have lost the key).
			// Serve it optimistically rather than looping between
			// cache answers and unanswerable polls.
			m := req.pendingReply
			req.pendingReply = nil
			now := n.sched.Now()
			n.finish(req, n.classify(p, m), now-req.issuedAt, m.Version < req.truthAtIssue)
			n.admitToCache(p, m, now)
			n.releaseMsg(m)
			return
		}
		// Validation of a local copy went unanswered: fetch fresh data
		// remotely.
		if n.startHomePhase(p, req) {
			return
		}
		if n.startReplicaPhase(p, req) {
			return
		}
		n.fail(req)
	case phaseRing:
		next := req.ringTTL * 2
		if next > n.cfg.MaxRingTTL {
			n.fail(req)
			return
		}
		req.ringTTL = next
		n.floodSearch(p, req, next)
		n.armReqTimeout(req, n.sched.Now()+n.ringWait(next))
	case phaseReplica:
		// Walk the remaining replica ranks before giving up (only one
		// rank exists under the paper's scheme, so this falls straight
		// through to the failure).
		if n.startReplicaPhase(p, req) {
			return
		}
		n.fail(req)
	case phaseFlood:
		n.fail(req)
	}
}

// fail closes a request unanswered. The box is dead afterwards (it
// returns to the freelist); callers must not touch req again.
func (n *Network) fail(req *pendingReq) {
	n.peers[req.origin].pendingDelete(req.id)
	if req.pendingReply != nil {
		// A stashed answer dies with the request (dead-origin timeout).
		n.releaseMsg(req.pendingReply)
		req.pendingReply = nil
	}
	if req.record {
		n.coll.Request(0, req.size, metrics.Failure, false)
	}
	n.emit(trace.Event{Kind: trace.RequestFailed, Node: int(req.origin), Key: uint32(req.key)})
	n.releaseReq(req)
}

// finish closes a request successfully. The box is dead afterwards (it
// returns to the freelist); callers must not touch req again.
func (n *Network) finish(req *pendingReq, class metrics.HitClass, latency float64, stale bool) {
	if req.timeout != 0 {
		n.sched.Cancel(req.timeout)
	}
	n.peers[req.origin].pendingDelete(req.id)
	if req.record {
		n.coll.Request(latency, req.size, class, stale)
	}
	n.emit(trace.Event{
		Kind: trace.RequestCompleted, Node: int(req.origin), Key: uint32(req.key),
		Class: class.String(), Latency: latency, Stale: stale,
	})
	n.releaseReq(req)
}

// lookupForAnswer checks whether the peer can answer a request for k:
// first its static store (authoritative), then a dynamic-cache copy.
// Cached copies are always serveable; the advertised TTR tells the
// requester how to treat them. Under Pull-Every-time the requester
// validates every cache-served answer; under Push-with-Adaptive-Pull it
// validates only answers whose remaining TTR is zero (expired copies).
// fromStore marks authoritative answers that never need validation.
func (p *Peer) lookupForAnswer(k workload.Key) (version uint64, ttr float64, fromStore, ok bool) {
	if it, found := p.store.Get(k); found {
		return it.Version, it.TTR, true, true
	}
	if p.cache == nil {
		return 0, 0, false, false
	}
	e, found := p.cache.Peek(k)
	if !found {
		return 0, 0, false, false
	}
	now := p.net.sched.Now()
	remaining := e.TTRExpiry - now
	switch {
	case math.IsInf(remaining, 1):
		remaining = p.net.cfg.Consistency.InitialTTR
	case remaining < 0:
		remaining = 0 // expired: the requester must validate under adaptive pull
	}
	// Serving from cache counts as a regional access for GD-LD.
	p.cache.Get(k, now)
	return e.Version, remaining, false, true
}

// answer sends a data reply for request m back to its origin. The
// caller keeps ownership of m.
func (p *Peer) answer(m *message, version uint64, ttr float64, fromStore, enRoute bool) {
	reply := p.net.newMsg(message{
		Kind: kindReply, ID: m.ID, Key: m.Key,
		Origin: m.Origin, OriginPos: m.OriginPos, OriginRegion: m.OriginRegion,
		Version: version, TTR: ttr,
		Size:         p.net.catalog.Size(m.Key),
		ServerRegion: p.regionID,
		EnRoute:      enRoute,
		FromStore:    fromStore,
	})
	if p.id == m.Origin {
		p.onReply(reply)
		return
	}
	p.net.routeOwned(p, reply)
}

// onSearchFlood handles the flooding / expanding-ring request.
func (p *Peer) onSearchFlood(m *message) {
	if p.markSeen(m.FloodID) {
		p.net.releaseMsg(m)
		return
	}
	if v, ttr, fromStore, ok := p.lookupForAnswer(m.Key); ok {
		p.answer(m, v, ttr, fromStore, false)
		p.net.releaseMsg(m)
		return
	}
	if m.TTL > 1 {
		m.TTL--
		p.net.broadcast(p.id, m)
		return
	}
	p.net.releaseMsg(m)
}

// onRegionalSearch handles the intra-region broadcast phase of PReCinCt:
// peers outside the region drop the message; peers inside answer from
// store or fresh cache, or keep flooding within the region.
func (p *Peer) onRegionalSearch(m *message) {
	if p.markSeen(m.ID) {
		p.net.releaseMsg(m)
		return
	}
	if p.regionID != m.TargetRegion {
		p.net.releaseMsg(m)
		return
	}
	if v, ttr, fromStore, ok := p.lookupForAnswer(m.Key); ok {
		p.answer(m, v, ttr, fromStore, false)
		p.net.releaseMsg(m)
		return
	}
	if m.TTL > 1 {
		m.TTL--
		p.net.broadcast(p.id, m)
		return
	}
	p.net.releaseMsg(m)
}

// onRoutedSearch advances a request toward the home/replica region. The
// first node inside the target region becomes the point of broadcast and
// floods the request locally. En-route peers with a fresh copy answer
// directly when enabled.
func (p *Peer) onRoutedSearch(m *message) {
	if p.table().Contains(m.TargetRegion, p.net.ch.Position(p.id)) {
		// Rewrite the routed request into the localized flood in place.
		// The flood ID is drawn (and marked) before the local lookup so
		// the deterministic ID sequence matches the reference path,
		// which built the flood before checking its own holdings.
		m.Kind = kindHomeFlood
		m.TTL = p.net.cfg.RegionTTL
		m.FloodID = p.newID()
		p.markSeen(m.FloodID)
		// The point of broadcast also checks its own holdings. answer
		// reads only fields the rewrite above left untouched.
		if v, ttr, fromStore, found := p.lookupForAnswer(m.Key); found {
			p.answer(m, v, ttr, fromStore, false)
			p.net.releaseMsg(m)
			return
		}
		p.net.broadcast(p.id, m)
		return
	}
	if p.net.cfg.EnRoute {
		if v, ttr, fromStore, found := p.lookupForAnswer(m.Key); found {
			p.answer(m, v, ttr, fromStore, true)
			p.net.releaseMsg(m)
			return
		}
	}
	p.net.routeOwned(p, m)
}

// onHomeFlood handles the localized flood inside the destination region.
func (p *Peer) onHomeFlood(m *message) {
	if p.markSeen(m.FloodID) {
		p.net.releaseMsg(m)
		return
	}
	if !p.table().Contains(m.TargetRegion, p.net.ch.Position(p.id)) {
		p.net.releaseMsg(m)
		return
	}
	if v, ttr, fromStore, found := p.lookupForAnswer(m.Key); found {
		p.answer(m, v, ttr, fromStore, false)
		p.net.releaseMsg(m)
		return
	}
	if m.TTL > 1 {
		m.TTL--
		p.net.broadcast(p.id, m)
		return
	}
	p.net.releaseMsg(m)
}

// onReply routes a response back to the requester and completes the
// pending request on arrival.
func (p *Peer) onReply(m *message) {
	if p.id != m.Origin {
		p.net.routeOwned(p, m)
		return
	}
	n := p.net
	req, ok := p.pendingGet(m.ID)
	if !ok {
		n.releaseMsg(m) // duplicate answer; first one won
		return
	}
	now := n.sched.Now()

	// Cache-served answers may need validation with the home region
	// before they are consumed: always under Pull-Every-time ("peers
	// are required to poll the home regions for every data request"),
	// and only for TTR-expired copies under Push-with-Adaptive-Pull.
	scheme := n.cfg.Consistency.Scheme
	needsValidation := !m.FromStore &&
		(scheme == consistency.PullEveryTime ||
			(scheme == consistency.PushAdaptivePull && m.TTR <= 0))
	if needsValidation {
		if req.phase == phasePoll {
			// Duplicate cache answers while a validation is in
			// flight must not bypass it.
			n.releaseMsg(m)
			return
		}
		if req.timeout != 0 {
			n.sched.Cancel(req.timeout)
		}
		req.pendingReply = m // ownership moves to the stash
		req.phase = phasePoll
		req.cachedVersion = m.Version
		if n.sendPoll(p, req) {
			n.armReqTimeout(req, n.sched.Now()+n.cfg.RemoteTimeout)
			return
		}
		// The home region is unreachable for validation; fall through
		// and serve the answer optimistically.
		req.pendingReply = nil
	}

	latency := now - req.issuedAt
	stale := m.Version < req.truthAtIssue
	n.finish(req, n.classify(p, m), latency, stale)
	n.admitToCache(p, m, now)
	n.releaseMsg(m)
}

// classify buckets a reply by where it was served from, seen from the
// requester.
func (n *Network) classify(p *Peer, m *message) metrics.HitClass {
	switch {
	case m.ServerRegion == p.regionID:
		return metrics.RegionalHit
	case m.EnRoute:
		return metrics.EnRouteHit
	default:
		return metrics.RemoteHit
	}
}

// admitToCache applies the paper's cache admission control: items whose
// responder lives in the requester's own region are not cached (they stay
// reachable through the cumulative cache); everything else enters the
// dynamic cache under the replacement policy.
func (n *Network) admitToCache(p *Peer, m *message, now float64) {
	if p.cache == nil {
		return
	}
	if m.ServerRegion == p.regionID {
		return
	}
	var regDist float64
	if home, ok := p.table().HomeRegion(m.Key); ok {
		regDist = p.table().RegionDistance(p.regionID, home.ID)
	}
	expiry := cache.NeverExpires
	if n.cfg.Consistency.Scheme == consistency.PushAdaptivePull {
		// An expired relayed copy (TTR <= 0) is admitted already stale:
		// its next use will validate.
		if m.TTR < 0 {
			m.TTR = 0
		}
		expiry = now + m.TTR
	}
	if n.probe != nil {
		n.probe.OnCacheAdmit(p.id, p.regionID, m.ServerRegion, m.Key)
	}
	evicted, _ := p.cache.Put(cache.Entry{
		Key: m.Key, Size: m.Size, Version: m.Version,
		RegionDist: regDist, TTRExpiry: expiry,
	}, now)
	if n.probe != nil {
		for i := range evicted {
			n.probe.OnCacheEvict(p.id, evicted[i].Key)
		}
	}
}
