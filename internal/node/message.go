package node

import (
	"fmt"

	"precinct/internal/geo"
	"precinct/internal/radio"
	"precinct/internal/region"
	"precinct/internal/routing"
	"precinct/internal/workload"
)

// msgKind discriminates protocol messages.
type msgKind int

const (
	// Retrieval.
	kindSearchFlood    msgKind = iota // network-wide flood (flooding / expanding ring)
	kindRegionalSearch                // broadcast within the requester's region
	kindRoutedSearch                  // GPSR-routed request toward the home region
	kindHomeFlood                     // localized flood inside the destination region
	kindReply                         // GPSR-routed data response

	// Consistency.
	kindInvalidate  // plain-push network-wide invalidation flood
	kindUpdateRoute // GPSR-routed update push toward home/replica region
	kindUpdateFlood // localized flood of an update inside a region
	kindPollRoute   // GPSR-routed TTR/validation poll
	kindPollFlood   // localized flood of a poll inside the home region
	kindPollReply   // GPSR-routed poll answer

	// Region maintenance.
	kindHandoff     // key transfer on inter-region mobility / relocation
	kindTableUpdate // region-table version dissemination flood
)

// String implements fmt.Stringer for diagnostics.
func (k msgKind) String() string {
	switch k {
	case kindSearchFlood:
		return "search-flood"
	case kindRegionalSearch:
		return "regional-search"
	case kindRoutedSearch:
		return "routed-search"
	case kindHomeFlood:
		return "home-flood"
	case kindReply:
		return "reply"
	case kindInvalidate:
		return "invalidate"
	case kindUpdateRoute:
		return "update-route"
	case kindUpdateFlood:
		return "update-flood"
	case kindPollRoute:
		return "poll-route"
	case kindPollFlood:
		return "poll-flood"
	case kindPollReply:
		return "poll-reply"
	case kindHandoff:
		return "handoff"
	case kindTableUpdate:
		return "table-update"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// class returns the accounting bucket of the message kind.
func (k msgKind) class() trafficClass {
	switch k {
	case kindInvalidate, kindUpdateRoute, kindUpdateFlood, kindPollRoute, kindPollFlood, kindPollReply:
		return classControl
	case kindHandoff, kindTableUpdate:
		return classMaintenance
	default:
		return classSearch
	}
}

type trafficClass int

const (
	classSearch trafficClass = iota
	classControl
	classMaintenance
)

// handoffItem is one key being transferred between peers.
type handoffItem struct {
	Key       workload.Key
	Size      int
	Version   uint64
	UpdatedAt float64
	TTR       float64
	Replica   bool
}

// message is the single protocol payload type; fields are used according
// to Kind. Messages are copied at every forwarding hop because the
// routing state mutates hop by hop.
type message struct {
	Kind msgKind
	// ID identifies the request for matching replies to pending
	// requests.
	ID uint64
	// FloodID identifies one flood wave for deduplication; expanding
	// ring rounds of the same request carry distinct flood IDs.
	FloodID uint64
	Key     workload.Key

	// Origin is the peer the answer must return to, and its position at
	// issue time (the GPSR destination for replies).
	Origin    radio.NodeID
	OriginPos geo.Point
	// OriginRegion is the requester's region at issue time (admission
	// control and regional-hit classification).
	OriginRegion region.ID

	// TargetRegion/TargetPos direct region-routed messages.
	TargetRegion region.ID
	TargetPos    geo.Point
	// TargetNode addresses node-routed messages (handoffs) that must
	// reach one specific peer rather than a region.
	TargetNode    radio.NodeID
	HasTargetNode bool

	TTL  int
	Hops int
	// Retries counts route-retry attempts for update pushes, which have
	// no end-to-end timeout to recover them.
	Retries int
	// Route is the GPSR packet state for unicast legs.
	Route routing.State

	// Version and TTR travel on replies, updates and poll replies.
	Version uint64
	TTR     float64
	// Size is the data payload size for replies and updates, bytes.
	Size int

	// ServerRegion is the region of the peer that answered (replies).
	ServerRegion region.ID
	// EnRoute marks replies served by an intermediate peer on the way
	// to the home region.
	EnRoute bool
	// FromStore marks replies served from a static store (authoritative
	// copy); cache-served replies need validation under Pull-Every-time.
	FromStore bool
	// CachedVersion is the requester's version in validation polls, so
	// the home region can answer "still valid" cheaply.
	CachedVersion uint64

	// Items carries key transfers (handoff).
	Items []handoffItem

	// TableIdx is the region-table version being disseminated
	// (kindTableUpdate).
	TableIdx int
}

// wireSize returns the on-air payload size in bytes for accounting and
// energy purposes. Control-plane messages cost the configured control
// size; data-bearing messages cost their data size plus the control
// envelope.
func (m *message) wireSize(controlBytes int) int {
	switch m.Kind {
	case kindReply, kindUpdateRoute, kindUpdateFlood:
		return controlBytes + m.Size
	case kindHandoff:
		total := controlBytes
		for _, it := range m.Items {
			total += it.Size
		}
		return total
	default:
		return controlBytes
	}
}

// clone returns a copy of the message for forwarding (the routing state
// and TTL must not be shared between in-flight copies).
func (m *message) clone() *message {
	cp := *m
	if m.Items != nil {
		cp.Items = append([]handoffItem(nil), m.Items...)
	}
	return &cp
}
