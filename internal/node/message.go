package node

import (
	"fmt"

	"precinct/internal/geo"
	"precinct/internal/radio"
	"precinct/internal/region"
	"precinct/internal/routing"
	"precinct/internal/workload"
)

// msgKind discriminates protocol messages.
type msgKind int

const (
	// Retrieval.
	kindSearchFlood    msgKind = iota // network-wide flood (flooding / expanding ring)
	kindRegionalSearch                // broadcast within the requester's region
	kindRoutedSearch                  // GPSR-routed request toward the home region
	kindHomeFlood                     // localized flood inside the destination region
	kindReply                         // GPSR-routed data response

	// Consistency.
	kindInvalidate  // plain-push network-wide invalidation flood
	kindUpdateRoute // GPSR-routed update push toward home/replica region
	kindUpdateFlood // localized flood of an update inside a region
	kindPollRoute   // GPSR-routed TTR/validation poll
	kindPollFlood   // localized flood of a poll inside the home region
	kindPollReply   // GPSR-routed poll answer

	// Region maintenance.
	kindHandoff     // key transfer on inter-region mobility / relocation
	kindTableUpdate // region-table version dissemination flood
)

// String implements fmt.Stringer for diagnostics.
func (k msgKind) String() string {
	switch k {
	case kindSearchFlood:
		return "search-flood"
	case kindRegionalSearch:
		return "regional-search"
	case kindRoutedSearch:
		return "routed-search"
	case kindHomeFlood:
		return "home-flood"
	case kindReply:
		return "reply"
	case kindInvalidate:
		return "invalidate"
	case kindUpdateRoute:
		return "update-route"
	case kindUpdateFlood:
		return "update-flood"
	case kindPollRoute:
		return "poll-route"
	case kindPollFlood:
		return "poll-flood"
	case kindPollReply:
		return "poll-reply"
	case kindHandoff:
		return "handoff"
	case kindTableUpdate:
		return "table-update"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// class returns the accounting bucket of the message kind.
func (k msgKind) class() trafficClass {
	switch k {
	case kindInvalidate, kindUpdateRoute, kindUpdateFlood, kindPollRoute, kindPollFlood, kindPollReply:
		return classControl
	case kindHandoff, kindTableUpdate:
		return classMaintenance
	default:
		return classSearch
	}
}

type trafficClass int

const (
	classSearch trafficClass = iota
	classControl
	classMaintenance
)

// handoffItem is one key being transferred between peers.
type handoffItem struct {
	Key       workload.Key
	Size      int
	Version   uint64
	UpdatedAt float64
	TTR       float64
	// ReplicaRank is 0 for the primary copy and r >= 1 for the copy
	// belonging to the key's rank-r replica region.
	ReplicaRank int
}

// message is the single protocol payload type; fields are used according
// to Kind.
//
// Lifecycle (DESIGN.md section 12): messages come from the network's
// pool (newMsg) and carry an ownership reference count. Unicast transfers
// the single reference from sender to channel to receiver — the receiver
// mutates the message in place (Hops, TTL, routing state) instead of
// cloning per hop. Broadcast shares one payload across all scheduled
// receivers (refs = delivered count); each receiver either drops its
// reference (duplicate fast path, mid-flight loss) or exchanges it for a
// private header copy. Every handler consumes its message exactly once:
// release it, stash it (pendingReply), or hand it to broadcast/unicast.
// Under Config.NoPooling, release is a no-op and delivery clones per
// receiver — the reference path the equivalence suite compares against.
type message struct {
	Kind msgKind
	// ID identifies the request for matching replies to pending
	// requests.
	ID uint64
	// FloodID identifies one flood wave for deduplication; expanding
	// ring rounds of the same request carry distinct flood IDs.
	FloodID uint64
	Key     workload.Key

	// Origin is the peer the answer must return to, and its position at
	// issue time (the GPSR destination for replies).
	Origin    radio.NodeID
	OriginPos geo.Point
	// OriginRegion is the requester's region at issue time (admission
	// control and regional-hit classification).
	OriginRegion region.ID

	// TargetRegion/TargetPos direct region-routed messages.
	TargetRegion region.ID
	TargetPos    geo.Point
	// TargetNode addresses node-routed messages (handoffs) that must
	// reach one specific peer rather than a region.
	TargetNode    radio.NodeID
	HasTargetNode bool

	TTL  int
	Hops int
	// Retries counts route-retry attempts for update pushes, which have
	// no end-to-end timeout to recover them.
	Retries int
	// Route is the GPSR packet state for unicast legs.
	Route routing.State

	// Version and TTR travel on replies, updates and poll replies.
	Version uint64
	TTR     float64
	// Size is the data payload size for replies and updates, bytes.
	Size int

	// ServerRegion is the region of the peer that answered (replies).
	ServerRegion region.ID
	// EnRoute marks replies served by an intermediate peer on the way
	// to the home region.
	EnRoute bool
	// FromStore marks replies served from a static store (authoritative
	// copy); cache-served replies need validation under Pull-Every-time.
	FromStore bool
	// CachedVersion is the requester's version in validation polls, so
	// the home region can answer "still valid" cheaply.
	CachedVersion uint64

	// Items carries key transfers (handoff).
	Items []handoffItem

	// TableIdx is the region-table version being disseminated
	// (kindTableUpdate).
	TableIdx int

	// refs counts outstanding ownership references: 1 for owned/unicast
	// messages, the delivered-receiver count for shared broadcast
	// payloads. Unexported, so gob-based checkpoints never serialize it.
	refs int32
	// released marks a message currently sitting in the pool's freelist;
	// releasing it again is a lifecycle bug and panics.
	released bool
}

// wireSize returns the on-air payload size in bytes for accounting and
// energy purposes. Control-plane messages cost the configured control
// size; data-bearing messages cost their data size plus the control
// envelope.
func (m *message) wireSize(controlBytes int) int {
	switch m.Kind {
	case kindReply, kindUpdateRoute, kindUpdateFlood:
		return controlBytes + m.Size
	case kindHandoff:
		total := controlBytes
		for _, it := range m.Items {
			total += it.Size
		}
		return total
	default:
		return controlBytes
	}
}

// clone returns a deep copy of the message. The pooled hot path never
// calls it; it serves the NoPooling reference path (clone at every
// forwarding hop, exactly as the pre-pooling implementation did) and
// tests.
func (m *message) clone() *message {
	cp := *m
	if m.Items != nil {
		cp.Items = append([]handoffItem(nil), m.Items...)
	}
	cp.refs = 1
	cp.released = false
	return &cp
}

// msgPool is the sim-local message freelist. One pool serves one Network
// (the simulation core is single-threaded, so no sync.Pool machinery is
// needed — and sim-local reuse keeps runs deterministic and boxes warm
// in cache). disabled (Config.NoPooling) turns every acquire into a
// fresh allocation and every release into a no-op. poison
// (PRECINCT_DEBUG=poison) scrambles released messages so use-after-
// release fails loudly instead of silently corrupting a run.
type msgPool struct {
	free     []*message
	disabled bool
	poison   bool

	acquired uint64 // messages handed out (newMsg + delivery header copies)
	released uint64 // messages whose last reference was dropped
}

// acquire returns a message box; contents are arbitrary — every caller
// overwrites the whole struct.
func (pl *msgPool) acquire() *message {
	pl.acquired++
	n := len(pl.free)
	if n == 0 {
		return &message{}
	}
	m := pl.free[n-1]
	pl.free[n-1] = nil
	pl.free = pl.free[:n-1]
	return m
}

// unref drops one ownership reference, returning the box to the freelist
// when the last reference is gone. Releasing an already-released message
// panics — that is a lifecycle bug (double release), never load.
func (pl *msgPool) unref(m *message) {
	if pl.disabled {
		return
	}
	if m.released {
		panic("node: pooled message released twice")
	}
	if m.refs > 1 {
		m.refs--
		return
	}
	if m.refs < 1 {
		panic("node: pooled message released with no outstanding reference")
	}
	m.refs = 0
	m.released = true
	m.Items = nil // never pin a handoff payload from the freelist
	if pl.poison {
		poisonMsg(m)
	}
	pl.released++
	pl.free = append(pl.free, m)
}

// live returns the number of messages currently owned by the run: at a
// quiescent boundary it equals the number of stashed pendingReply
// messages (every other message has been delivered, dropped or released).
func (pl *msgPool) live() uint64 { return pl.acquired - pl.released }

// poisonMsg scrambles every semantic field of a released message (refs
// and released are preserved — they are the detection state). A handler
// touching a poisoned message dispatches on an impossible kind, routes
// to node -1, or trips TTL/version checks — loud, immediate failures.
func poisonMsg(m *message) {
	const poisoned = 0xdeaddead_deaddead
	m.Kind = msgKind(-0xbad)
	m.ID = poisoned
	m.FloodID = poisoned
	m.Key = 0
	m.Origin = -1
	m.TargetNode = -1
	m.HasTargetNode = false
	m.TTL = -1 << 30
	m.Hops = -1 << 30
	m.Retries = -1 << 30
	m.Version = poisoned
	m.TTR = -1e300
	m.Size = -1 << 30
	m.CachedVersion = poisoned
	m.TableIdx = -1 << 30
}
