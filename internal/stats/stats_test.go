package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestStreamBasics(t *testing.T) {
	var s Stream
	if s.N() != 0 || s.Mean() != 0 || s.Variance() != 0 {
		t.Fatal("empty stream not zero")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Errorf("N = %d", s.N())
	}
	if !almost(s.Mean(), 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", s.Mean())
	}
	// Population variance of this classic sample is 4; sample variance
	// = 32/7.
	if !almost(s.Variance(), 32.0/7.0, 1e-12) {
		t.Errorf("Variance = %v, want %v", s.Variance(), 32.0/7.0)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("range [%v, %v]", s.Min(), s.Max())
	}
}

func TestStreamMatchesDirectComputation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var s Stream
	var sample []float64
	for i := 0; i < 10000; i++ {
		x := rng.NormFloat64()*3 + 10
		s.Add(x)
		sample = append(sample, x)
	}
	var sum float64
	for _, x := range sample {
		sum += x
	}
	mean := sum / float64(len(sample))
	if !almost(s.Mean(), mean, 1e-9) {
		t.Errorf("stream mean %v vs direct %v", s.Mean(), mean)
	}
	var ss float64
	for _, x := range sample {
		ss += (x - mean) * (x - mean)
	}
	variance := ss / float64(len(sample)-1)
	if !almost(s.Variance(), variance, 1e-6) {
		t.Errorf("stream variance %v vs direct %v", s.Variance(), variance)
	}
}

func TestCI95SingleObservation(t *testing.T) {
	var s Stream
	s.Add(5)
	if !math.IsNaN(s.CI95()) {
		t.Error("CI95 with one observation should be NaN")
	}
}

func TestCI95Coverage(t *testing.T) {
	// Empirical check: the 95% CI of the mean of normal samples should
	// contain the true mean about 95% of the time.
	rng := rand.New(rand.NewSource(2))
	const trials = 2000
	const trueMean = 7.0
	covered := 0
	for trial := 0; trial < trials; trial++ {
		var s Stream
		for i := 0; i < 10; i++ {
			s.Add(rng.NormFloat64()*2 + trueMean)
		}
		if math.Abs(s.Mean()-trueMean) <= s.CI95() {
			covered++
		}
	}
	frac := float64(covered) / trials
	if frac < 0.92 || frac > 0.98 {
		t.Errorf("CI95 coverage %.3f, want ~0.95", frac)
	}
}

func TestTCritical(t *testing.T) {
	if !almost(tCritical95(1), 12.706, 1e-9) {
		t.Error("df=1 critical value wrong")
	}
	if !almost(tCritical95(1000), 1.96, 1e-9) {
		t.Error("large-df critical value should be ~1.96")
	}
	if !math.IsNaN(tCritical95(0)) {
		t.Error("df=0 should be NaN")
	}
}

func TestDescribeAndString(t *testing.T) {
	sum := Describe([]float64{1, 2, 3})
	if sum.N != 3 || !almost(sum.Mean, 2, 1e-12) {
		t.Errorf("Describe = %+v", sum)
	}
	if sum.String() == "" {
		t.Error("empty String")
	}
}

func TestMedian(t *testing.T) {
	if !almost(Median([]float64{3, 1, 2}), 2, 1e-12) {
		t.Error("odd median")
	}
	if !almost(Median([]float64{4, 1, 2, 3}), 2.5, 1e-12) {
		t.Error("even median")
	}
	if !math.IsNaN(Median(nil)) {
		t.Error("empty median should be NaN")
	}
	// Median must not reorder the input.
	in := []float64{5, 1, 3}
	Median(in)
	if in[0] != 5 || in[1] != 1 || in[2] != 3 {
		t.Error("Median mutated its input")
	}
}

func TestRelativeChange(t *testing.T) {
	if !almost(RelativeChange(10, 15), 0.5, 1e-12) {
		t.Error("+50% change")
	}
	if !almost(RelativeChange(10, 5), -0.5, 1e-12) {
		t.Error("-50% change")
	}
	if RelativeChange(0, 0) != 0 {
		t.Error("0/0 should be 0")
	}
	if !math.IsInf(RelativeChange(0, 3), 1) {
		t.Error("positive change from zero should be +Inf")
	}
	if !math.IsInf(RelativeChange(0, -3), -1) {
		t.Error("negative change from zero should be -Inf")
	}
}

func TestGeometricMean(t *testing.T) {
	if !almost(GeometricMean([]float64{1, 100}), 10, 1e-9) {
		t.Error("geomean of {1,100} should be 10")
	}
	if !math.IsNaN(GeometricMean(nil)) {
		t.Error("empty geomean should be NaN")
	}
	if !math.IsNaN(GeometricMean([]float64{1, -1})) {
		t.Error("negative values should give NaN")
	}
}

// Property: the mean always lies within [min, max].
func TestMeanBoundedProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		var s Stream
		for _, v := range raw {
			s.Add(float64(v))
		}
		return s.Mean() >= s.Min()-1e-9 && s.Mean() <= s.Max()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: variance is invariant under translation.
func TestVarianceTranslationInvariant(t *testing.T) {
	f := func(raw []int8, shiftRaw int8) bool {
		if len(raw) < 2 {
			return true
		}
		shift := float64(shiftRaw)
		var a, b Stream
		for _, v := range raw {
			a.Add(float64(v))
			b.Add(float64(v) + shift)
		}
		return almost(a.Variance(), b.Variance(), 1e-6*(1+a.Variance()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
