// Package stats provides the summary statistics the experiment harness
// uses when averaging replicated runs: streaming mean/variance (Welford),
// Student-t confidence intervals, and simple series utilities.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Stream accumulates a sample one value at a time using Welford's
// algorithm, which stays numerically stable for long runs.
type Stream struct {
	n    uint64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (s *Stream) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// N returns the number of observations.
func (s *Stream) N() uint64 { return s.n }

// Mean returns the sample mean (0 for an empty stream).
func (s *Stream) Mean() float64 { return s.mean }

// Min and Max return the observed extremes (0 for an empty stream).
func (s *Stream) Min() float64 { return s.min }
func (s *Stream) Max() float64 { return s.max }

// Variance returns the unbiased sample variance.
func (s *Stream) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Stream) StdDev() float64 { return math.Sqrt(s.Variance()) }

// StdErr returns the standard error of the mean.
func (s *Stream) StdErr() float64 {
	if s.n == 0 {
		return 0
	}
	return s.StdDev() / math.Sqrt(float64(s.n))
}

// tTable holds two-sided 95% Student-t critical values by degrees of
// freedom; beyond the table the normal approximation applies.
var tTable = []float64{
	0, 12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
	2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093,
	2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045,
	2.042,
}

// tCritical95 returns the two-sided 95% critical value for the given
// degrees of freedom.
func tCritical95(df uint64) float64 {
	if df == 0 {
		return math.NaN()
	}
	if df < uint64(len(tTable)) {
		return tTable[df]
	}
	return 1.96
}

// CI95 returns the half-width of the 95% confidence interval of the mean.
// It is NaN for fewer than two observations.
func (s *Stream) CI95() float64 {
	if s.n < 2 {
		return math.NaN()
	}
	return tCritical95(s.n-1) * s.StdErr()
}

// Summary is a frozen view of a stream.
type Summary struct {
	N      uint64
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	CI95   float64
}

// Summarize freezes the stream.
func (s *Stream) Summarize() Summary {
	return Summary{
		N: s.n, Mean: s.mean, StdDev: s.StdDev(),
		Min: s.min, Max: s.max, CI95: s.CI95(),
	}
}

// String implements fmt.Stringer.
func (s Summary) String() string {
	return fmt.Sprintf("mean=%.4g ±%.3g (n=%d, sd=%.3g, range [%.4g, %.4g])",
		s.Mean, s.CI95, s.N, s.StdDev, s.Min, s.Max)
}

// Describe computes a summary of a complete sample in one call.
func Describe(sample []float64) Summary {
	var s Stream
	for _, x := range sample {
		s.Add(x)
	}
	return s.Summarize()
}

// Median returns the sample median (NaN for an empty sample). The input
// is not modified.
func Median(sample []float64) float64 {
	if len(sample) == 0 {
		return math.NaN()
	}
	cp := make([]float64, len(sample))
	copy(cp, sample)
	sort.Float64s(cp)
	mid := len(cp) / 2
	if len(cp)%2 == 1 {
		return cp[mid]
	}
	return (cp[mid-1] + cp[mid]) / 2
}

// RelativeChange returns (b-a)/a, guarding against a zero baseline.
func RelativeChange(a, b float64) float64 {
	if a == 0 {
		if b == 0 {
			return 0
		}
		return math.Inf(1) * math.Copysign(1, b)
	}
	return (b - a) / a
}

// GeometricMean returns the geometric mean of positive values; it is NaN
// when the sample is empty or contains non-positive values.
func GeometricMean(sample []float64) float64 {
	if len(sample) == 0 {
		return math.NaN()
	}
	var logSum float64
	for _, x := range sample {
		if x <= 0 {
			return math.NaN()
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(sample)))
}
