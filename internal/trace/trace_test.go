package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"math/rand"
	"strings"
	"testing"
)

func TestWriterEncodesJSONLines(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Emit(Event{Time: 1.5, Kind: RequestIssued, Node: 3, Key: 42})
	w.Emit(Event{Time: 2.0, Kind: RequestCompleted, Node: 3, Key: 42, Class: "remote", Latency: 0.5})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Events() != 2 {
		t.Errorf("Events = %d", w.Events())
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines", len(lines))
	}
	var e Event
	if err := json.Unmarshal([]byte(lines[0]), &e); err != nil {
		t.Fatal(err)
	}
	if e.Kind != RequestIssued || e.Node != 3 || e.Key != 42 {
		t.Errorf("decoded %+v", e)
	}
	// Optional fields are omitted when zero.
	if strings.Contains(lines[0], "latency") || strings.Contains(lines[0], "class") {
		t.Errorf("zero optional fields not omitted: %s", lines[0])
	}
}

type failingWriter struct{}

func (failingWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

func TestWriterPropagatesErrors(t *testing.T) {
	w := NewWriter(failingWriter{})
	// Fill past the bufio buffer to force a write.
	big := strings.Repeat("x", 100)
	for i := 0; i < 100*bufio.MaxScanTokenSize/100; i++ {
		w.Emit(Event{Kind: Kind(big)})
		if w.err != nil {
			break
		}
	}
	if err := w.Flush(); err == nil {
		t.Fatal("error not propagated")
	}
	// Emit after error is a no-op.
	n := w.Events()
	w.Emit(Event{Kind: RequestIssued})
	if w.Events() != n {
		t.Error("Emit after error still counted")
	}
}

func TestFilter(t *testing.T) {
	c := NewCounter()
	f := NewFilter(c, RequestCompleted, Handoff)
	f.Emit(Event{Kind: RequestIssued})
	f.Emit(Event{Kind: RequestCompleted})
	f.Emit(Event{Kind: Handoff})
	f.Emit(Event{Kind: NodeCrashed})
	if c.Total() != 2 {
		t.Errorf("filter passed %d events, want 2", c.Total())
	}
	if c.ByKind[RequestCompleted] != 1 || c.ByKind[Handoff] != 1 {
		t.Errorf("counts %v", c.ByKind)
	}
}

func TestMulti(t *testing.T) {
	a, b := NewCounter(), NewCounter()
	m := Multi{a, b}
	m.Emit(Event{Kind: UpdateIssued})
	if a.Total() != 1 || b.Total() != 1 {
		t.Error("multi did not fan out")
	}
}

func TestBufferCap(t *testing.T) {
	b := &Buffer{Cap: 2}
	for i := 0; i < 5; i++ {
		b.Emit(Event{Kind: RequestIssued, Node: i})
	}
	if len(b.Events) != 2 {
		t.Errorf("buffer kept %d events", len(b.Events))
	}
	if b.Dropped != 3 {
		t.Errorf("dropped %d, want 3", b.Dropped)
	}
	unbounded := &Buffer{}
	for i := 0; i < 100; i++ {
		unbounded.Emit(Event{Kind: RequestIssued})
	}
	if len(unbounded.Events) != 100 || unbounded.Dropped != 0 {
		t.Error("unbounded buffer dropped events")
	}
}

func TestCanonicalizeIsOrderFree(t *testing.T) {
	// A multiset with ties on every prefix: the order must be total up to
	// full equality so any permutation canonicalizes identically.
	events := []Event{
		{Time: 2, Kind: RequestCompleted, Node: 1, Key: 7, Class: "remote", Latency: 0.5},
		{Time: 1, Kind: RequestIssued, Node: 4, Key: 9},
		{Time: 1, Kind: RequestIssued, Node: 2, Key: 9},
		{Time: 1, Kind: RequestIssued, Node: 2, Key: 3},
		{Time: 2, Kind: RequestCompleted, Node: 1, Key: 7, Class: "local", Latency: 0.1},
		{Time: 2, Kind: RequestCompleted, Node: 1, Key: 7, Class: "remote", Latency: 0.2, Stale: true},
		{Time: 2, Kind: Handoff, Node: 1, Region: 3, Count: 2},
		{Time: 2, Kind: Handoff, Node: 1, Region: 3, Count: 1},
		{Time: 2, Kind: Handoff, Node: 1, Region: 3, Count: 1}, // exact duplicate
	}
	want := append([]Event(nil), events...)
	Canonicalize(want)
	wantBytes, err := EncodeLines(want)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		shuffled := append([]Event(nil), events...)
		rng.Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		Canonicalize(shuffled)
		got, err := EncodeLines(shuffled)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, wantBytes) {
			t.Fatalf("trial %d: canonical encoding differs:\n%s\nvs\n%s", trial, got, wantBytes)
		}
	}
}
