package trace

// Offline analysis of recorded traces: parse a JSONL stream back into
// events and summarize it — request outcomes, latency, per-node activity,
// and a time-bucketed activity timeline. Used by cmd/precinct-trace.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
)

// Read parses a JSON-lines trace stream. Blank lines are skipped; a
// malformed line aborts with an error naming its line number.
func Read(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var events []Event
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(line, &e); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		// The scanner stops before delivering the offending line (e.g. one
		// longer than the 4 MiB buffer), so the error belongs to the line
		// after the last one it handed out.
		return nil, fmt.Errorf("trace: line %d: %w", lineNo+1, err)
	}
	return events, nil
}

// NodeActivity aggregates one node's recorded behaviour.
type NodeActivity struct {
	Node      int
	Requests  uint64
	Completed uint64
	Failed    uint64
	Updates   uint64
	Polls     uint64
	Handoffs  uint64
	Crossings uint64 // region changes
}

// Analysis is a trace summary.
type Analysis struct {
	Events uint64
	ByKind map[Kind]uint64

	Start float64
	End   float64

	Requests    uint64
	Completed   uint64
	Failed      uint64
	StaleServed uint64
	ByClass     map[string]uint64

	MeanLatency float64
	MaxLatency  float64

	Nodes []NodeActivity // sorted by node ID, only nodes with activity
}

// Analyze summarizes a trace.
func Analyze(events []Event) Analysis {
	a := Analysis{
		ByKind:  make(map[Kind]uint64),
		ByClass: make(map[string]uint64),
		Start:   math.Inf(1),
		End:     math.Inf(-1),
	}
	perNode := make(map[int]*NodeActivity)
	node := func(id int) *NodeActivity {
		na := perNode[id]
		if na == nil {
			na = &NodeActivity{Node: id}
			perNode[id] = na
		}
		return na
	}
	var latSum float64
	for _, e := range events {
		a.Events++
		a.ByKind[e.Kind]++
		if e.Time < a.Start {
			a.Start = e.Time
		}
		if e.Time > a.End {
			a.End = e.Time
		}
		switch e.Kind {
		case RequestIssued:
			a.Requests++
			node(e.Node).Requests++
		case RequestCompleted:
			a.Completed++
			node(e.Node).Completed++
			if e.Class != "" {
				a.ByClass[e.Class]++
			}
			if e.Stale {
				a.StaleServed++
			}
			latSum += e.Latency
			if e.Latency > a.MaxLatency {
				a.MaxLatency = e.Latency
			}
		case RequestFailed:
			a.Failed++
			node(e.Node).Failed++
		case UpdateIssued:
			node(e.Node).Updates++
		case PollIssued:
			node(e.Node).Polls++
		case Handoff:
			node(e.Node).Handoffs++
		case RegionChange:
			node(e.Node).Crossings++
		}
	}
	if a.Completed > 0 {
		a.MeanLatency = latSum / float64(a.Completed)
	}
	if a.Events == 0 {
		a.Start, a.End = 0, 0
	}
	ids := make([]int, 0, len(perNode))
	for id := range perNode {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		a.Nodes = append(a.Nodes, *perNode[id])
	}
	return a
}

// Bucket is one timeline slot.
type Bucket struct {
	Start     float64
	Requests  uint64
	Completed uint64
	Failed    uint64
	Handoffs  uint64
}

// Timeline buckets request activity into fixed-width time slots. Width
// must be positive; the result covers [floor(start), end].
func Timeline(events []Event, width float64) ([]Bucket, error) {
	if width <= 0 {
		return nil, fmt.Errorf("trace: bucket width must be positive, got %v", width)
	}
	if len(events) == 0 {
		return nil, nil
	}
	start, end := math.Inf(1), math.Inf(-1)
	for _, e := range events {
		if e.Time < start {
			start = e.Time
		}
		if e.Time > end {
			end = e.Time
		}
	}
	origin := math.Floor(start/width) * width
	n := int((end-origin)/width) + 1
	buckets := make([]Bucket, n)
	for i := range buckets {
		buckets[i].Start = origin + float64(i)*width
	}
	for _, e := range events {
		i := int((e.Time - origin) / width)
		if i < 0 || i >= n {
			continue
		}
		switch e.Kind {
		case RequestIssued:
			buckets[i].Requests++
		case RequestCompleted:
			buckets[i].Completed++
		case RequestFailed:
			buckets[i].Failed++
		case Handoff:
			buckets[i].Handoffs++
		}
	}
	return buckets, nil
}
