// Package trace records structured simulation events — request
// lifecycles, key handoffs, updates, failures — as a JSON-lines stream.
// Tracing is optional: the protocol layer emits events only when a Tracer
// is installed, so the zero-cost path stays zero cost.
package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Kind labels an event.
type Kind string

// Event kinds emitted by the protocol layer.
const (
	RequestIssued    Kind = "request-issued"
	RequestCompleted Kind = "request-completed"
	RequestFailed    Kind = "request-failed"
	UpdateIssued     Kind = "update-issued"
	PollIssued       Kind = "poll-issued"
	Handoff          Kind = "handoff"
	RegionChange     Kind = "region-change"
	NodeCrashed      Kind = "node-crashed"
	NodeQuit         Kind = "node-quit"
	NodeRevived      Kind = "node-revived"
)

// Event is one timestamped simulation occurrence. Zero-valued optional
// fields are omitted from the JSON encoding.
type Event struct {
	Time float64 `json:"t"`
	Kind Kind    `json:"kind"`
	Node int     `json:"node"`
	Key  uint32  `json:"key,omitempty"`
	// Class is the hit class for request completions.
	Class string `json:"class,omitempty"`
	// Latency in seconds for request completions.
	Latency float64 `json:"latency,omitempty"`
	// Stale marks false hits.
	Stale bool `json:"stale,omitempty"`
	// Region is the new region for region changes; the target region
	// for handoffs.
	Region int `json:"region,omitempty"`
	// Count carries the number of keys in a handoff.
	Count int `json:"count,omitempty"`
}

// Tracer consumes events.
type Tracer interface {
	Emit(Event)
}

// Canonicalize sorts events in place into the canonical total order used
// to compare runs across execution modes: lexicographic over every field
// (time, kind, node, key, class, latency, stale, region, count). The
// order is total up to full equality, so any permutation of the same
// multiset of events canonicalizes to the same sequence — a sharded run
// whose shards emitted interleaved fragments compares byte-equal to the
// sequential run after both sides canonicalize.
func Canonicalize(events []Event) {
	sort.SliceStable(events, func(i, j int) bool {
		return eventLess(events[i], events[j])
	})
}

// eventLess is the canonical strict order over events: lexicographic
// across all fields, in struct order.
func eventLess(a, b Event) bool {
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	if a.Node != b.Node {
		return a.Node < b.Node
	}
	if a.Key != b.Key {
		return a.Key < b.Key
	}
	if a.Class != b.Class {
		return a.Class < b.Class
	}
	if a.Latency != b.Latency {
		return a.Latency < b.Latency
	}
	if a.Stale != b.Stale {
		return b.Stale
	}
	if a.Region != b.Region {
		return a.Region < b.Region
	}
	return a.Count < b.Count
}

// EncodeLines renders events as the JSON-lines stream a Writer would
// produce, for byte-level comparison in tests.
func EncodeLines(events []Event) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, e := range events {
		if err := enc.Encode(e); err != nil {
			return nil, fmt.Errorf("trace: %w", err)
		}
	}
	return buf.Bytes(), nil
}

// DecodeLines parses a JSON-lines stream back into events: the inverse
// of a Writer (and of EncodeLines), used by tooling that re-sorts or
// diffs recorded traces.
func DecodeLines(data []byte) ([]Event, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	var out []Event
	for dec.More() {
		var e Event
		if err := dec.Decode(&e); err != nil {
			return nil, fmt.Errorf("trace: %w", err)
		}
		out = append(out, e)
	}
	return out, nil
}

// Writer streams events as JSON lines to an io.Writer. It buffers; call
// Flush (or Close) when the run finishes. Not safe for concurrent use —
// the simulation core is single-threaded.
type Writer struct {
	bw  *bufio.Writer
	enc *json.Encoder
	n   uint64
	err error
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	bw := bufio.NewWriter(w)
	return &Writer{bw: bw, enc: json.NewEncoder(bw)}
}

// Emit implements Tracer.
func (t *Writer) Emit(e Event) {
	if t.err != nil {
		return
	}
	if err := t.enc.Encode(e); err != nil {
		t.err = fmt.Errorf("trace: %w", err)
		return
	}
	t.n++
}

// Events returns the number of events written so far.
func (t *Writer) Events() uint64 { return t.n }

// Flush drains the buffer and returns the first error encountered by any
// Emit or flush.
func (t *Writer) Flush() error {
	if err := t.bw.Flush(); err != nil && t.err == nil {
		t.err = fmt.Errorf("trace: %w", err)
	}
	return t.err
}

// Filter passes through only events whose kind is in the allow set.
type Filter struct {
	Next  Tracer
	Allow map[Kind]bool
}

// NewFilter builds a filter over next for the listed kinds.
func NewFilter(next Tracer, kinds ...Kind) *Filter {
	allow := make(map[Kind]bool, len(kinds))
	for _, k := range kinds {
		allow[k] = true
	}
	return &Filter{Next: next, Allow: allow}
}

// Emit implements Tracer.
func (f *Filter) Emit(e Event) {
	if f.Allow[e.Kind] {
		f.Next.Emit(e)
	}
}

// Counter counts events by kind; useful in tests and quick diagnostics.
type Counter struct {
	ByKind map[Kind]uint64
}

// NewCounter returns an empty counter.
func NewCounter() *Counter { return &Counter{ByKind: make(map[Kind]uint64)} }

// Emit implements Tracer.
func (c *Counter) Emit(e Event) { c.ByKind[e.Kind]++ }

// Total returns the total number of events seen.
func (c *Counter) Total() uint64 {
	var n uint64
	for _, v := range c.ByKind {
		n += v
	}
	return n
}

// Multi fans events out to several tracers.
type Multi []Tracer

// Emit implements Tracer.
func (m Multi) Emit(e Event) {
	for _, t := range m {
		t.Emit(e)
	}
}

// Buffer retains events in memory (tests, small runs).
type Buffer struct {
	Events []Event
	// Cap bounds memory; zero means unbounded. When full, new events
	// are dropped and Dropped counts them.
	Cap     int
	Dropped uint64
}

// Emit implements Tracer.
func (b *Buffer) Emit(e Event) {
	if b.Cap > 0 && len(b.Events) >= b.Cap {
		b.Dropped++
		return
	}
	b.Events = append(b.Events, e)
}
