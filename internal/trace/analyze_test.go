package trace

import (
	"bufio"
	"bytes"
	"errors"
	"strings"
	"testing"
)

func sampleEvents() []Event {
	return []Event{
		{Time: 1, Kind: RequestIssued, Node: 0, Key: 5},
		{Time: 1.4, Kind: RequestCompleted, Node: 0, Key: 5, Class: "remote", Latency: 0.4},
		{Time: 2, Kind: RequestIssued, Node: 1, Key: 6},
		{Time: 2.1, Kind: RequestCompleted, Node: 1, Key: 6, Class: "local", Latency: 0.1, Stale: true},
		{Time: 3, Kind: RequestIssued, Node: 0, Key: 7},
		{Time: 5, Kind: RequestFailed, Node: 0, Key: 7},
		{Time: 6, Kind: UpdateIssued, Node: 2, Key: 5},
		{Time: 7, Kind: PollIssued, Node: 1, Key: 6},
		{Time: 8, Kind: Handoff, Node: 2, Region: 3, Count: 4},
		{Time: 9, Kind: RegionChange, Node: 2, Region: 3},
	}
}

func TestReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, e := range sampleEvents() {
		w.Emit(e)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	events, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != len(sampleEvents()) {
		t.Fatalf("round trip lost events: %d vs %d", len(events), len(sampleEvents()))
	}
	for i, e := range events {
		want := sampleEvents()[i]
		if e.Kind != want.Kind || e.Node != want.Node || e.Time != want.Time {
			t.Errorf("event %d: %+v != %+v", i, e, want)
		}
	}
}

func TestReadSkipsBlankAndRejectsGarbage(t *testing.T) {
	in := "\n{\"t\":1,\"kind\":\"request-issued\",\"node\":0}\n\n"
	events, err := Read(strings.NewReader(in))
	if err != nil || len(events) != 1 {
		t.Fatalf("Read = %v, %v", events, err)
	}
	if _, err := Read(strings.NewReader("not json\n")); err == nil {
		t.Error("garbage line accepted")
	}
}

// TestReadOverlongLine feeds a line longer than the scanner buffer and
// requires the error to carry both the cause and the line number —
// previously the scanner error was surfaced with no position at all.
func TestReadOverlongLine(t *testing.T) {
	var in bytes.Buffer
	in.WriteString(`{"t":1,"kind":"request-issued","node":0}` + "\n")
	in.WriteString(`{"pad":"` + strings.Repeat("x", 5*1024*1024) + `"}` + "\n")
	_, err := Read(&in)
	if err == nil {
		t.Fatal("over-long line accepted")
	}
	if !errors.Is(err, bufio.ErrTooLong) {
		t.Fatalf("error does not wrap bufio.ErrTooLong: %v", err)
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error does not name the offending line: %v", err)
	}
}

func TestAnalyze(t *testing.T) {
	a := Analyze(sampleEvents())
	if a.Events != 10 {
		t.Errorf("Events = %d", a.Events)
	}
	if a.Requests != 3 || a.Completed != 2 || a.Failed != 1 {
		t.Errorf("request counts: %+v", a)
	}
	if a.StaleServed != 1 {
		t.Errorf("stale = %d", a.StaleServed)
	}
	if a.ByClass["remote"] != 1 || a.ByClass["local"] != 1 {
		t.Errorf("classes: %v", a.ByClass)
	}
	if a.MeanLatency != 0.25 || a.MaxLatency != 0.4 {
		t.Errorf("latency: mean %v max %v", a.MeanLatency, a.MaxLatency)
	}
	if a.Start != 1 || a.End != 9 {
		t.Errorf("span [%v, %v]", a.Start, a.End)
	}
	if len(a.Nodes) != 3 {
		t.Fatalf("nodes: %+v", a.Nodes)
	}
	n0 := a.Nodes[0]
	if n0.Node != 0 || n0.Requests != 2 || n0.Completed != 1 || n0.Failed != 1 {
		t.Errorf("node 0 activity: %+v", n0)
	}
	n2 := a.Nodes[2]
	if n2.Updates != 1 || n2.Handoffs != 1 || n2.Crossings != 1 {
		t.Errorf("node 2 activity: %+v", n2)
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	a := Analyze(nil)
	if a.Events != 0 || a.Start != 0 || a.End != 0 {
		t.Errorf("empty analysis: %+v", a)
	}
}

func TestTimeline(t *testing.T) {
	buckets, err := Timeline(sampleEvents(), 2)
	if err != nil {
		t.Fatal(err)
	}
	// Events span t=1..9 -> buckets starting at 0,2,4,6,8.
	if len(buckets) != 5 {
		t.Fatalf("buckets: %d", len(buckets))
	}
	if buckets[0].Requests != 1 || buckets[0].Completed != 1 {
		t.Errorf("bucket 0: %+v", buckets[0])
	}
	if buckets[1].Requests != 2 || buckets[1].Completed != 1 {
		t.Errorf("bucket 1: %+v", buckets[1])
	}
	if buckets[2].Failed != 1 {
		t.Errorf("bucket 2: %+v", buckets[2])
	}
	if buckets[4].Handoffs != 1 {
		t.Errorf("bucket 4: %+v", buckets[4])
	}
	if _, err := Timeline(sampleEvents(), 0); err == nil {
		t.Error("zero bucket width accepted")
	}
	empty, err := Timeline(nil, 1)
	if err != nil || empty != nil {
		t.Errorf("empty timeline: %v, %v", empty, err)
	}
}
