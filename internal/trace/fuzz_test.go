package trace

import (
	"strings"
	"testing"
)

// FuzzRead checks the parser never panics and that whatever it accepts,
// Analyze and Timeline handle.
func FuzzRead(f *testing.F) {
	f.Add(`{"t":1,"kind":"request-issued","node":0}`)
	f.Add("")
	f.Add("{\"t\":1}\n{\"t\":2,\"kind\":\"handoff\",\"node\":3,\"count\":2}")
	f.Add(`{"t":-1,"kind":"x","node":-5,"latency":1e300}`)
	f.Fuzz(func(t *testing.T, input string) {
		events, err := Read(strings.NewReader(input))
		if err != nil {
			return
		}
		a := Analyze(events)
		if a.Events != uint64(len(events)) {
			t.Fatalf("Analyze counted %d of %d events", a.Events, len(events))
		}
		if _, err := Timeline(events, 10); err != nil {
			t.Fatalf("Timeline rejected parsed events: %v", err)
		}
	})
}
