// Package mobility provides node movement models for the simulator: the
// random waypoint model the paper evaluates under (uniform destination in
// the service area, uniform speed up to a maximum, fixed pause between
// legs — Section 6.1 uses a 5 s pause and maximum speeds of 2–20 m/s) and
// a static placement model for the Section 6.2.3 validation topology.
//
// Positions are computed lazily and on demand: a model answers "where is
// node i at time t" for non-decreasing t, which is exactly the access
// pattern of a discrete-event simulation. Each node consumes its own
// random stream, so trajectories do not depend on the interleaving of
// position queries across nodes.
package mobility

import (
	"fmt"
	"math/rand"

	"precinct/internal/geo"
	"precinct/internal/sim"
)

// Model answers position queries for a fixed set of nodes. Queries must
// use non-decreasing time per node; models may advance internal state.
//
// Positions are anchored: between trajectory boundaries (waypoint legs,
// walk steps) a position is computed analytically from the last boundary,
// so Position(i, t) returns bit-identical results no matter which
// intermediate times were queried before t. Consumers such as the radio
// layer's spatial index rely on that property — it lets them query only a
// subset of nodes without perturbing anyone's trajectory.
type Model interface {
	// Len returns the number of nodes.
	Len() int
	// Position returns the location of the node at simulation time now.
	Position(node int, now float64) geo.Point
}

// SpeedBounded is implemented by models whose nodes never exceed a known
// speed. The radio layer's spatial index uses the bound to serve neighbor
// queries from a slightly stale grid snapshot: a node can have drifted at
// most MaxSpeed()*age meters since the snapshot. Models with unbounded
// speeds (e.g. Gauss-Markov, whose speed noise is Gaussian) simply do not
// implement it and the index falls back to per-instant rebuilds.
type SpeedBounded interface {
	// MaxSpeed returns an upper bound on any node's speed in m/s.
	MaxSpeed() float64
}

// Static places nodes once and never moves them.
type Static struct {
	pos []geo.Point
}

// NewStatic wraps explicit positions.
func NewStatic(pos []geo.Point) (*Static, error) {
	if len(pos) == 0 {
		return nil, fmt.Errorf("mobility: static model needs at least one node")
	}
	cp := make([]geo.Point, len(pos))
	copy(cp, pos)
	return &Static{pos: cp}, nil
}

// NewUniformStatic places n nodes uniformly at random in the area.
func NewUniformStatic(n int, area geo.Rect, rng *rand.Rand) (*Static, error) {
	if n <= 0 {
		return nil, fmt.Errorf("mobility: need at least one node, got %d", n)
	}
	if area.Width() <= 0 || area.Height() <= 0 {
		return nil, fmt.Errorf("mobility: degenerate area %v", area)
	}
	pos := make([]geo.Point, n)
	for i := range pos {
		pos[i] = geo.Pt(
			area.Min.X+rng.Float64()*area.Width(),
			area.Min.Y+rng.Float64()*area.Height(),
		)
	}
	return &Static{pos: pos}, nil
}

// NewGridStatic places n nodes on a jittered grid covering the area. The
// jitter fraction (0..0.5) perturbs each node within its grid cell; zero
// yields a perfect lattice. Grid placement guarantees connectivity for
// validation topologies where random placement might partition the net.
func NewGridStatic(n int, area geo.Rect, jitter float64, rng *rand.Rand) (*Static, error) {
	if n <= 0 {
		return nil, fmt.Errorf("mobility: need at least one node, got %d", n)
	}
	if jitter < 0 || jitter > 0.5 {
		return nil, fmt.Errorf("mobility: jitter must be in [0, 0.5], got %v", jitter)
	}
	cols := 1
	for cols*cols < n {
		cols++
	}
	rows := (n + cols - 1) / cols
	cw := area.Width() / float64(cols)
	ch := area.Height() / float64(rows)
	pos := make([]geo.Point, n)
	for i := range pos {
		r, c := i/cols, i%cols
		cx := area.Min.X + (float64(c)+0.5)*cw
		cy := area.Min.Y + (float64(r)+0.5)*ch
		if jitter > 0 {
			cx += (rng.Float64()*2 - 1) * jitter * cw
			cy += (rng.Float64()*2 - 1) * jitter * ch
		}
		pos[i] = area.Clamp(geo.Pt(cx, cy))
	}
	return &Static{pos: pos}, nil
}

// Len implements Model.
func (s *Static) Len() int { return len(s.pos) }

// Position implements Model.
func (s *Static) Position(node int, _ float64) geo.Point { return s.pos[node] }

// MaxSpeed implements SpeedBounded: static nodes never move.
func (s *Static) MaxSpeed() float64 { return 0 }

// WaypointConfig parameterizes the random waypoint model.
type WaypointConfig struct {
	Area     geo.Rect
	MinSpeed float64 // m/s, must be > 0 to avoid the well-known speed-decay pathology
	MaxSpeed float64 // m/s
	Pause    float64 // seconds spent at each waypoint
}

// DefaultWaypointConfig mirrors the paper's mobile scenarios: 1200×1200 m
// area, 5 s pause. MaxSpeed is scenario-specific (2–20 m/s); 6 m/s is the
// cache-replacement experiments' setting.
func DefaultWaypointConfig() WaypointConfig {
	return WaypointConfig{
		Area:     geo.NewRect(geo.Pt(0, 0), geo.Pt(1200, 1200)),
		MinSpeed: 0.5,
		MaxSpeed: 6,
		Pause:    5,
	}
}

// waypointNode is the per-node trajectory state. pos/at anchor the node at
// the start of its current leg (or pause); positions between boundaries
// are computed analytically from the anchor, never stored, so a query's
// result does not depend on which intermediate times were queried.
type waypointNode struct {
	pos        geo.Point // anchor: where the node was at time at
	at         float64   // anchor time: the last leg/pause boundary crossed
	seen       float64   // latest query time (monotonicity contract)
	dest       geo.Point
	speed      float64
	pauseUntil float64 // > at while the node is pausing at pos
	rng        *rand.Rand
}

// Waypoint implements the random waypoint model.
type Waypoint struct {
	cfg   WaypointConfig
	nodes []waypointNode
}

// NewWaypoint creates n nodes placed uniformly in the area, each starting
// with an independent first leg. Streams are derived per node from rng, so
// node i's trajectory is a pure function of (seed, i).
func NewWaypoint(n int, cfg WaypointConfig, rng *sim.RNG) (*Waypoint, error) {
	if n <= 0 {
		return nil, fmt.Errorf("mobility: need at least one node, got %d", n)
	}
	if cfg.Area.Width() <= 0 || cfg.Area.Height() <= 0 {
		return nil, fmt.Errorf("mobility: degenerate area %v", cfg.Area)
	}
	if cfg.MinSpeed <= 0 || cfg.MaxSpeed < cfg.MinSpeed {
		return nil, fmt.Errorf("mobility: invalid speed range [%v, %v]", cfg.MinSpeed, cfg.MaxSpeed)
	}
	if cfg.Pause < 0 {
		return nil, fmt.Errorf("mobility: negative pause %v", cfg.Pause)
	}
	w := &Waypoint{cfg: cfg, nodes: make([]waypointNode, n)}
	for i := range w.nodes {
		s := rng.Stream(fmt.Sprintf("mobility/%d", i))
		nd := &w.nodes[i]
		nd.rng = s
		nd.pos = w.randomPoint(s)
		nd.at = 0
		w.newLeg(nd)
	}
	return w, nil
}

func (w *Waypoint) randomPoint(rng *rand.Rand) geo.Point {
	return geo.Pt(
		w.cfg.Area.Min.X+rng.Float64()*w.cfg.Area.Width(),
		w.cfg.Area.Min.Y+rng.Float64()*w.cfg.Area.Height(),
	)
}

// newLeg draws a fresh destination and speed for the node. Destinations
// coinciding with the current position are resampled; should resampling
// ever fail (probability zero for non-degenerate areas) the node simply
// pauses in place for one more pause period.
func (w *Waypoint) newLeg(nd *waypointNode) {
	for attempt := 0; attempt < 8; attempt++ {
		dest := w.randomPoint(nd.rng)
		if dest.Dist(nd.pos) > 1e-9 {
			nd.dest = dest
			nd.speed = w.cfg.MinSpeed + nd.rng.Float64()*(w.cfg.MaxSpeed-w.cfg.MinSpeed)
			return
		}
	}
	nd.dest = nd.pos
	nd.speed = w.cfg.MinSpeed
	nd.pauseUntil = nd.at + w.cfg.Pause + 1e-3
}

// Len implements Model.
func (w *Waypoint) Len() int { return len(w.nodes) }

// Position implements Model. Time must be non-decreasing per node.
//
// The anchor (pos/at) only advances across leg and pause boundaries, whose
// times are pure functions of the trajectory; mid-leg positions are
// computed analytically from the anchor. The result is therefore
// bit-identical regardless of which intermediate times were queried.
func (w *Waypoint) Position(node int, now float64) geo.Point {
	nd := &w.nodes[node]
	if now < nd.seen {
		panic(fmt.Sprintf("mobility: time went backwards for node %d: %v < %v", node, now, nd.seen))
	}
	nd.seen = now
	for {
		if nd.pauseUntil > nd.at { // anchored at a pause
			if now < nd.pauseUntil {
				return nd.pos
			}
			nd.at = nd.pauseUntil
			w.newLeg(nd)
			continue
		}
		remaining := nd.pos.Dist(nd.dest)
		if remaining <= 1e-12 {
			// Zero-length leg: pause in place. A degenerate newLeg
			// (resampling failed) schedules its own pause, so the loop
			// always progresses even with Pause == 0.
			nd.pauseUntil = nd.at + w.cfg.Pause
			if w.cfg.Pause == 0 {
				w.newLeg(nd)
			}
			continue
		}
		arrival := nd.at + remaining/nd.speed
		if arrival <= now {
			nd.pos = nd.dest
			nd.at = arrival
			nd.pauseUntil = arrival + w.cfg.Pause
			if w.cfg.Pause == 0 {
				w.newLeg(nd)
			}
			continue
		}
		// Mid-leg: analytic position from the anchor; no mutation.
		dir := nd.dest.Sub(nd.pos).Scale(1 / remaining)
		return nd.pos.Add(dir.Scale(nd.speed * (now - nd.at)))
	}
}

// Speed returns the node's current speed in m/s (0 while pausing). It
// advances the node to time now first.
func (w *Waypoint) Speed(node int, now float64) float64 {
	w.Position(node, now)
	nd := &w.nodes[node]
	if nd.pauseUntil > now {
		return 0
	}
	return nd.speed
}

// Config returns the model parameters.
func (w *Waypoint) Config() WaypointConfig { return w.cfg }

// MaxSpeed implements SpeedBounded.
func (w *Waypoint) MaxSpeed() float64 { return w.cfg.MaxSpeed }
