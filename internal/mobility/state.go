package mobility

// Checkpoint support. A mobility snapshot captures each node's anchor
// state — position, anchor time, and the current leg/step parameters —
// but NOT the per-node random streams: those live in the simulation's
// RNG registry (sim.RNG) and are captured there. Because positions are
// anchored (see the Model contract), a restored run that queries
// positions in a different pattern than the original still observes
// bit-identical trajectories.

import (
	"fmt"

	"precinct/internal/geo"
)

// Model kind tags for State.Kind.
const (
	KindStatic      = "static"
	KindWaypoint    = "waypoint"
	KindWalk        = "walk"
	KindGaussMarkov = "gauss-markov"
)

// NodeState is the serializable per-node trajectory state: a union over
// the models' anchor fields. Unused fields are zero for a given Kind.
type NodeState struct {
	Pos  geo.Point
	At   float64
	Seen float64

	// Waypoint fields.
	Dest       geo.Point
	Speed      float64
	PauseUntil float64

	// Walk fields (Speed unused; the velocity vector carries it).
	Vel   geo.Point
	Until float64

	// Gauss-Markov fields (Speed shared with waypoint).
	Direction float64
	NextDraw  float64
}

// State is the serializable state of one mobility model.
type State struct {
	Kind  string
	Nodes []NodeState
}

// Stateful is implemented by every mobility model that supports
// checkpointing.
type Stateful interface {
	Model
	StateSnapshot() State
	RestoreState(State) error
}

// checkState validates a snapshot's shape against a live model.
func checkState(st State, kind string, n int) error {
	if st.Kind != kind {
		return fmt.Errorf("mobility: snapshot is for model %q, live model is %q", st.Kind, kind)
	}
	if len(st.Nodes) != n {
		return fmt.Errorf("mobility: snapshot has %d nodes, live model has %d", len(st.Nodes), n)
	}
	return nil
}

// StateSnapshot implements Stateful. Static positions are configuration,
// but they are captured anyway so a restore can verify the rebuilt
// placement matches the captured one.
func (s *Static) StateSnapshot() State {
	st := State{Kind: KindStatic, Nodes: make([]NodeState, len(s.pos))}
	for i, p := range s.pos {
		st.Nodes[i] = NodeState{Pos: p}
	}
	return st
}

// RestoreState implements Stateful.
func (s *Static) RestoreState(st State) error {
	if err := checkState(st, KindStatic, len(s.pos)); err != nil {
		return err
	}
	for i := range s.pos {
		if !s.pos[i].Equal(st.Nodes[i].Pos) {
			return fmt.Errorf("mobility: static node %d rebuilt at %v but snapshot says %v",
				i, s.pos[i], st.Nodes[i].Pos)
		}
	}
	return nil
}

// StateSnapshot implements Stateful.
func (w *Waypoint) StateSnapshot() State {
	st := State{Kind: KindWaypoint, Nodes: make([]NodeState, len(w.nodes))}
	for i := range w.nodes {
		nd := &w.nodes[i]
		st.Nodes[i] = NodeState{
			Pos: nd.pos, At: nd.at, Seen: nd.seen,
			Dest: nd.dest, Speed: nd.speed, PauseUntil: nd.pauseUntil,
		}
	}
	return st
}

// RestoreState implements Stateful. The per-node streams keep their live
// identity (restored separately through sim.RNG).
func (w *Waypoint) RestoreState(st State) error {
	if err := checkState(st, KindWaypoint, len(w.nodes)); err != nil {
		return err
	}
	for i := range w.nodes {
		nd, s := &w.nodes[i], st.Nodes[i]
		nd.pos, nd.at, nd.seen = s.Pos, s.At, s.Seen
		nd.dest, nd.speed, nd.pauseUntil = s.Dest, s.Speed, s.PauseUntil
	}
	return nil
}

// StateSnapshot implements Stateful.
func (w *Walk) StateSnapshot() State {
	st := State{Kind: KindWalk, Nodes: make([]NodeState, len(w.nodes))}
	for i := range w.nodes {
		nd := &w.nodes[i]
		st.Nodes[i] = NodeState{
			Pos: nd.pos, At: nd.at, Seen: nd.seen,
			Vel: nd.vel, Until: nd.until,
		}
	}
	return st
}

// RestoreState implements Stateful.
func (w *Walk) RestoreState(st State) error {
	if err := checkState(st, KindWalk, len(w.nodes)); err != nil {
		return err
	}
	for i := range w.nodes {
		nd, s := &w.nodes[i], st.Nodes[i]
		nd.pos, nd.at, nd.seen = s.Pos, s.At, s.Seen
		nd.vel, nd.until = s.Vel, s.Until
	}
	return nil
}

// StateSnapshot implements Stateful.
func (g *GaussMarkov) StateSnapshot() State {
	st := State{Kind: KindGaussMarkov, Nodes: make([]NodeState, len(g.nodes))}
	for i := range g.nodes {
		nd := &g.nodes[i]
		st.Nodes[i] = NodeState{
			Pos: nd.pos, At: nd.at,
			Speed: nd.speed, Direction: nd.direction, NextDraw: nd.nextDraw,
		}
	}
	return st
}

// RestoreState implements Stateful.
func (g *GaussMarkov) RestoreState(st State) error {
	if err := checkState(st, KindGaussMarkov, len(g.nodes)); err != nil {
		return err
	}
	for i := range g.nodes {
		nd, s := &g.nodes[i], st.Nodes[i]
		nd.pos, nd.at = s.Pos, s.At
		nd.speed, nd.direction, nd.nextDraw = s.Speed, s.Direction, s.NextDraw
	}
	return nil
}
