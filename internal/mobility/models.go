package mobility

// Additional mobility models beyond random waypoint. The paper's future
// work calls for "experiments ... under different mobility models"; these
// two are the standard alternatives in the MANET literature:
//
//   - Random walk ("random direction" variant): nodes pick a direction and
//     speed, walk for a fixed step duration, then repick; the area
//     boundary reflects them. Unlike random waypoint it has no density
//     buildup in the middle of the area.
//   - Gauss-Markov: velocity is a mean-reverting AR(1) process, producing
//     smooth trajectories whose temporal correlation is tunable; edges
//     steer the mean direction back toward the area.
//
// Both follow the same lazy-advancement, stream-per-node design as the
// waypoint model, so position queries stay deterministic regardless of
// interleaving.

import (
	"fmt"
	"math"
	"math/rand"

	"precinct/internal/geo"
	"precinct/internal/sim"
)

// WalkConfig parameterizes the random walk model.
type WalkConfig struct {
	Area     geo.Rect
	MinSpeed float64 // m/s
	MaxSpeed float64 // m/s
	// StepTime is how long a node keeps one direction/speed, seconds.
	StepTime float64
}

// DefaultWalkConfig walks in the paper's area with moderate steps.
func DefaultWalkConfig() WalkConfig {
	return WalkConfig{
		Area:     geo.NewRect(geo.Pt(0, 0), geo.Pt(1200, 1200)),
		MinSpeed: 0.5,
		MaxSpeed: 6,
		StepTime: 20,
	}
}

// walkNode anchors a walker at the start of its current step (pos/at);
// positions inside a step are computed analytically from the anchor so
// results do not depend on intermediate query times.
type walkNode struct {
	pos   geo.Point // anchor: position at the start of the current step
	at    float64   // anchor time
	seen  float64   // latest query time (monotonicity contract)
	vel   geo.Point // velocity vector, m/s
	until float64   // end of the current step
	rng   *rand.Rand
}

// Walk implements the random walk (random direction) model.
type Walk struct {
	cfg   WalkConfig
	nodes []walkNode
}

// NewWalk creates n walkers placed uniformly in the area.
func NewWalk(n int, cfg WalkConfig, rng *sim.RNG) (*Walk, error) {
	if n <= 0 {
		return nil, fmt.Errorf("mobility: need at least one node, got %d", n)
	}
	if cfg.Area.Width() <= 0 || cfg.Area.Height() <= 0 {
		return nil, fmt.Errorf("mobility: degenerate area %v", cfg.Area)
	}
	if cfg.MinSpeed <= 0 || cfg.MaxSpeed < cfg.MinSpeed {
		return nil, fmt.Errorf("mobility: invalid speed range [%v, %v]", cfg.MinSpeed, cfg.MaxSpeed)
	}
	if cfg.StepTime <= 0 {
		return nil, fmt.Errorf("mobility: step time must be positive, got %v", cfg.StepTime)
	}
	w := &Walk{cfg: cfg, nodes: make([]walkNode, n)}
	for i := range w.nodes {
		nd := &w.nodes[i]
		nd.rng = rng.Stream(fmt.Sprintf("walk/%d", i))
		nd.pos = geo.Pt(
			cfg.Area.Min.X+nd.rng.Float64()*cfg.Area.Width(),
			cfg.Area.Min.Y+nd.rng.Float64()*cfg.Area.Height(),
		)
		w.newStep(nd)
	}
	return w, nil
}

func (w *Walk) newStep(nd *walkNode) {
	speed := w.cfg.MinSpeed + nd.rng.Float64()*(w.cfg.MaxSpeed-w.cfg.MinSpeed)
	theta := nd.rng.Float64() * 2 * math.Pi
	nd.vel = geo.Pt(speed*math.Cos(theta), speed*math.Sin(theta))
	nd.until = nd.at + w.cfg.StepTime
}

// Len implements Model.
func (w *Walk) Len() int { return len(w.nodes) }

// Position implements Model. Time must be non-decreasing per node.
//
// The anchor advances only across whole steps; a mid-step position is
// computed from the anchor without mutating state, so the result is
// bit-identical regardless of intermediate query times.
func (w *Walk) Position(node int, now float64) geo.Point {
	nd := &w.nodes[node]
	if now < nd.seen {
		panic(fmt.Sprintf("mobility: time went backwards for node %d: %v < %v", node, now, nd.seen))
	}
	nd.seen = now
	for nd.until <= now {
		nd.pos, nd.vel = reflectMove(w.cfg.Area, nd.pos, nd.vel, nd.until-nd.at)
		nd.at = nd.until
		w.newStep(nd)
	}
	if now == nd.at {
		return nd.pos
	}
	p, _ := reflectMove(w.cfg.Area, nd.pos, nd.vel, now-nd.at)
	return p
}

// MaxSpeed implements SpeedBounded: wall reflections preserve speed, so
// the configured maximum bounds every walker.
func (w *Walk) MaxSpeed() float64 { return w.cfg.MaxSpeed }

// reflectMove advances pos by vel*dt, reflecting off the area's walls.
// It returns the new position and (possibly flipped) velocity.
func reflectMove(area geo.Rect, pos, vel geo.Point, dt float64) (geo.Point, geo.Point) {
	p := pos.Add(vel.Scale(dt))
	// Reflect until inside; each axis independently. The loop handles
	// paths longer than the area size.
	for i := 0; i < 64; i++ {
		moved := false
		if p.X < area.Min.X {
			p.X = 2*area.Min.X - p.X
			vel.X = -vel.X
			moved = true
		} else if p.X > area.Max.X {
			p.X = 2*area.Max.X - p.X
			vel.X = -vel.X
			moved = true
		}
		if p.Y < area.Min.Y {
			p.Y = 2*area.Min.Y - p.Y
			vel.Y = -vel.Y
			moved = true
		} else if p.Y > area.Max.Y {
			p.Y = 2*area.Max.Y - p.Y
			vel.Y = -vel.Y
			moved = true
		}
		if !moved {
			return p, vel
		}
	}
	// Pathological speeds: clamp as a last resort.
	return area.Clamp(p), vel
}

// GaussMarkovConfig parameterizes the Gauss-Markov model.
type GaussMarkovConfig struct {
	Area geo.Rect
	// MeanSpeed is the long-run speed the process reverts to, m/s.
	MeanSpeed float64
	// SpeedSigma is the speed noise standard deviation, m/s.
	SpeedSigma float64
	// Alpha in [0,1) is the memory parameter: 0 = memoryless (random
	// walk-like), values near 1 = nearly straight-line motion.
	Alpha float64
	// UpdateInterval is the discretization step, seconds.
	UpdateInterval float64
}

// DefaultGaussMarkovConfig gives smooth 6 m/s trajectories in the paper's
// area.
func DefaultGaussMarkovConfig() GaussMarkovConfig {
	return GaussMarkovConfig{
		Area:           geo.NewRect(geo.Pt(0, 0), geo.Pt(1200, 1200)),
		MeanSpeed:      6,
		SpeedSigma:     1.5,
		Alpha:          0.85,
		UpdateInterval: 1,
	}
}

type gmNode struct {
	pos       geo.Point
	at        float64
	speed     float64
	direction float64
	nextDraw  float64
	rng       *rand.Rand
}

// GaussMarkov implements the Gauss-Markov mobility model.
type GaussMarkov struct {
	cfg   GaussMarkovConfig
	nodes []gmNode
}

// NewGaussMarkov creates n nodes placed uniformly with random initial
// headings.
func NewGaussMarkov(n int, cfg GaussMarkovConfig, rng *sim.RNG) (*GaussMarkov, error) {
	if n <= 0 {
		return nil, fmt.Errorf("mobility: need at least one node, got %d", n)
	}
	if cfg.Area.Width() <= 0 || cfg.Area.Height() <= 0 {
		return nil, fmt.Errorf("mobility: degenerate area %v", cfg.Area)
	}
	if cfg.MeanSpeed <= 0 || cfg.SpeedSigma < 0 {
		return nil, fmt.Errorf("mobility: invalid speed parameters (mean %v, sigma %v)", cfg.MeanSpeed, cfg.SpeedSigma)
	}
	if cfg.Alpha < 0 || cfg.Alpha >= 1 {
		return nil, fmt.Errorf("mobility: alpha must be in [0, 1), got %v", cfg.Alpha)
	}
	if cfg.UpdateInterval <= 0 {
		return nil, fmt.Errorf("mobility: update interval must be positive, got %v", cfg.UpdateInterval)
	}
	g := &GaussMarkov{cfg: cfg, nodes: make([]gmNode, n)}
	for i := range g.nodes {
		nd := &g.nodes[i]
		nd.rng = rng.Stream(fmt.Sprintf("gauss-markov/%d", i))
		nd.pos = geo.Pt(
			cfg.Area.Min.X+nd.rng.Float64()*cfg.Area.Width(),
			cfg.Area.Min.Y+nd.rng.Float64()*cfg.Area.Height(),
		)
		nd.speed = cfg.MeanSpeed
		nd.direction = nd.rng.Float64() * 2 * math.Pi
		nd.nextDraw = cfg.UpdateInterval
	}
	return g, nil
}

// meanDirection steers nodes near an edge back toward the middle, the
// standard Gauss-Markov edge treatment.
func (g *GaussMarkov) meanDirection(p geo.Point, current float64) float64 {
	margin := 0.1 * math.Min(g.cfg.Area.Width(), g.cfg.Area.Height())
	nearLeft := p.X < g.cfg.Area.Min.X+margin
	nearRight := p.X > g.cfg.Area.Max.X-margin
	nearBottom := p.Y < g.cfg.Area.Min.Y+margin
	nearTop := p.Y > g.cfg.Area.Max.Y-margin
	if !nearLeft && !nearRight && !nearBottom && !nearTop {
		return current
	}
	return p.Angle(g.cfg.Area.Center())
}

func (g *GaussMarkov) redraw(nd *gmNode) {
	a := g.cfg.Alpha
	noise := math.Sqrt(1 - a*a)
	meanDir := g.meanDirection(nd.pos, nd.direction)
	nd.speed = a*nd.speed + (1-a)*g.cfg.MeanSpeed + noise*g.cfg.SpeedSigma*nd.rng.NormFloat64()
	if nd.speed < 0 {
		nd.speed = 0
	}
	const dirSigma = 0.6 // radians of heading noise at alpha=0
	nd.direction = a*nd.direction + (1-a)*meanDir + noise*dirSigma*nd.rng.NormFloat64()
}

// Len implements Model.
func (g *GaussMarkov) Len() int { return len(g.nodes) }

// Position implements Model. Time must be non-decreasing per node.
func (g *GaussMarkov) Position(node int, now float64) geo.Point {
	nd := &g.nodes[node]
	if now < nd.at {
		panic(fmt.Sprintf("mobility: time went backwards for node %d: %v < %v", node, now, nd.at))
	}
	for nd.at < now {
		end := nd.nextDraw
		if end > now {
			end = now
		}
		dt := end - nd.at
		vel := geo.Pt(nd.speed*math.Cos(nd.direction), nd.speed*math.Sin(nd.direction))
		var newVel geo.Point
		nd.pos, newVel = reflectMove(g.cfg.Area, nd.pos, vel, dt)
		if !newVel.Equal(vel) {
			// A wall reflection flipped the velocity; fold it back
			// into the heading.
			nd.direction = math.Atan2(newVel.Y, newVel.X)
		}
		nd.at = end
		if nd.at >= nd.nextDraw {
			g.redraw(nd)
			nd.nextDraw = nd.at + g.cfg.UpdateInterval
		}
	}
	return nd.pos
}

// Speed returns the node's current speed, advancing it to now first.
func (g *GaussMarkov) Speed(node int, now float64) float64 {
	g.Position(node, now)
	return g.nodes[node].speed
}
