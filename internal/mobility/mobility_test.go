package mobility

import (
	"math"
	"math/rand"
	"testing"

	"precinct/internal/geo"
	"precinct/internal/sim"
)

var testArea = geo.NewRect(geo.Pt(0, 0), geo.Pt(1000, 1000))

func TestNewStaticValidation(t *testing.T) {
	if _, err := NewStatic(nil); err == nil {
		t.Error("empty static model accepted")
	}
}

func TestStaticPositions(t *testing.T) {
	pts := []geo.Point{geo.Pt(1, 2), geo.Pt(3, 4)}
	s, err := NewStatic(pts)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	if !s.Position(0, 0).Equal(geo.Pt(1, 2)) || !s.Position(1, 999).Equal(geo.Pt(3, 4)) {
		t.Error("static positions wrong or time-dependent")
	}
	// The constructor must copy its input.
	pts[0] = geo.Pt(9, 9)
	if s.Position(0, 0).Equal(geo.Pt(9, 9)) {
		t.Error("NewStatic aliased caller slice")
	}
}

func TestUniformStaticInArea(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s, err := NewUniformStatic(200, testArea, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < s.Len(); i++ {
		if !testArea.Contains(s.Position(i, 0)) {
			t.Fatalf("node %d placed outside area", i)
		}
	}
}

func TestUniformStaticValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewUniformStatic(0, testArea, rng); err == nil {
		t.Error("n=0 accepted")
	}
	bad := geo.NewRect(geo.Pt(0, 0), geo.Pt(0, 100))
	if _, err := NewUniformStatic(5, bad, rng); err == nil {
		t.Error("degenerate area accepted")
	}
}

func TestGridStatic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s, err := NewGridStatic(20, testArea, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	// No jitter: all points distinct and inside.
	seen := make(map[geo.Point]bool)
	for i := 0; i < s.Len(); i++ {
		p := s.Position(i, 0)
		if !testArea.Contains(p) {
			t.Fatalf("grid node %d outside area", i)
		}
		if seen[p] {
			t.Fatalf("duplicate grid position %v", p)
		}
		seen[p] = true
	}
	if _, err := NewGridStatic(10, testArea, 0.7, rng); err == nil {
		t.Error("jitter > 0.5 accepted")
	}
	if _, err := NewGridStatic(0, testArea, 0, rng); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestGridStaticJitterStaysInside(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s, err := NewGridStatic(37, testArea, 0.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < s.Len(); i++ {
		if !testArea.Contains(s.Position(i, 0)) {
			t.Fatalf("jittered node %d escaped the area", i)
		}
	}
}

func waypointFor(t *testing.T, n int, cfg WaypointConfig, seed int64) *Waypoint {
	t.Helper()
	w, err := NewWaypoint(n, cfg, sim.NewRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestNewWaypointValidation(t *testing.T) {
	rng := sim.NewRNG(1)
	cfg := DefaultWaypointConfig()
	if _, err := NewWaypoint(0, cfg, rng); err == nil {
		t.Error("n=0 accepted")
	}
	c := cfg
	c.MinSpeed = 0
	if _, err := NewWaypoint(5, c, rng); err == nil {
		t.Error("MinSpeed=0 accepted (speed-decay pathology)")
	}
	c = cfg
	c.MaxSpeed = c.MinSpeed / 2
	if _, err := NewWaypoint(5, c, rng); err == nil {
		t.Error("Max < Min speed accepted")
	}
	c = cfg
	c.Pause = -1
	if _, err := NewWaypoint(5, c, rng); err == nil {
		t.Error("negative pause accepted")
	}
	c = cfg
	c.Area = geo.NewRect(geo.Pt(0, 0), geo.Pt(0, 0))
	if _, err := NewWaypoint(5, c, rng); err == nil {
		t.Error("degenerate area accepted")
	}
}

func TestWaypointStaysInArea(t *testing.T) {
	cfg := WaypointConfig{Area: testArea, MinSpeed: 1, MaxSpeed: 20, Pause: 5}
	w := waypointFor(t, 10, cfg, 42)
	for ti := 0; ti <= 2000; ti++ {
		now := float64(ti)
		for i := 0; i < w.Len(); i++ {
			p := w.Position(i, now)
			if !testArea.Contains(p) {
				t.Fatalf("node %d left area at t=%v: %v", i, now, p)
			}
		}
	}
}

func TestWaypointSpeedBound(t *testing.T) {
	cfg := WaypointConfig{Area: testArea, MinSpeed: 1, MaxSpeed: 10, Pause: 2}
	w := waypointFor(t, 5, cfg, 7)
	prev := make([]geo.Point, w.Len())
	for i := range prev {
		prev[i] = w.Position(i, 0)
	}
	const dt = 0.5
	for step := 1; step <= 4000; step++ {
		now := float64(step) * dt
		for i := 0; i < w.Len(); i++ {
			p := w.Position(i, now)
			d := p.Dist(prev[i])
			if d > cfg.MaxSpeed*dt+1e-6 {
				t.Fatalf("node %d moved %v m in %v s (max speed %v)", i, d, dt, cfg.MaxSpeed)
			}
			prev[i] = p
		}
	}
}

func TestWaypointActuallyMoves(t *testing.T) {
	cfg := WaypointConfig{Area: testArea, MinSpeed: 2, MaxSpeed: 8, Pause: 1}
	w := waypointFor(t, 8, cfg, 11)
	start := make([]geo.Point, w.Len())
	for i := range start {
		start[i] = w.Position(i, 0)
	}
	moved := 0
	for i := 0; i < w.Len(); i++ {
		if w.Position(i, 300).Dist(start[i]) > 1 {
			moved++
		}
	}
	if moved < w.Len()/2 {
		t.Errorf("only %d/%d nodes moved after 300 s", moved, w.Len())
	}
}

func TestWaypointPausesAtWaypoints(t *testing.T) {
	// With a huge pause, nodes should eventually be mostly stationary.
	cfg := WaypointConfig{Area: testArea, MinSpeed: 10, MaxSpeed: 20, Pause: 10000}
	w := waypointFor(t, 5, cfg, 13)
	// After enough time every node has finished its first leg
	// (diagonal at min speed < 142 s) and is pausing.
	for i := 0; i < w.Len(); i++ {
		a := w.Position(i, 200)
		b := w.Position(i, 300)
		if a.Dist(b) > 1e-9 {
			t.Errorf("node %d moved during pause: %v -> %v", i, a, b)
		}
		if s := w.Speed(i, 301); s != 0 {
			t.Errorf("node %d pausing but Speed = %v", i, s)
		}
	}
}

func TestWaypointDeterminism(t *testing.T) {
	cfg := WaypointConfig{Area: testArea, MinSpeed: 1, MaxSpeed: 10, Pause: 5}
	a := waypointFor(t, 6, cfg, 99)
	b := waypointFor(t, 6, cfg, 99)
	// Query a and b with different interleavings; trajectories must match
	// because streams are per node.
	for i := 0; i < 6; i++ {
		a.Position(i, 500)
	}
	for i := 5; i >= 0; i-- {
		b.Position(i, 250)
	}
	for i := 0; i < 6; i++ {
		pa := a.Position(i, 1000)
		pb := b.Position(i, 1000)
		if pa.Dist(pb) > 1e-6 {
			t.Fatalf("node %d trajectories diverged: %v vs %v", i, pa, pb)
		}
	}
}

func TestWaypointIntermediateQueriesConsistent(t *testing.T) {
	// Position(t) must not depend on how many intermediate queries were
	// made before t.
	cfg := WaypointConfig{Area: testArea, MinSpeed: 1, MaxSpeed: 15, Pause: 3}
	coarse := waypointFor(t, 4, cfg, 5)
	fine := waypointFor(t, 4, cfg, 5)
	for step := 1; step <= 1000; step++ {
		for i := 0; i < 4; i++ {
			fine.Position(i, float64(step)*0.37)
		}
	}
	for i := 0; i < 4; i++ {
		pc := coarse.Position(i, 370)
		pf := fine.Position(i, 370)
		if pc.Dist(pf) > 1e-6 {
			t.Fatalf("node %d: coarse %v vs fine %v", i, pc, pf)
		}
	}
}

func TestWaypointPanicsOnBackwardTime(t *testing.T) {
	w := waypointFor(t, 1, DefaultWaypointConfig(), 1)
	w.Position(0, 100)
	defer func() {
		if recover() == nil {
			t.Fatal("backward time query did not panic")
		}
	}()
	w.Position(0, 50)
}

func TestWaypointZeroPause(t *testing.T) {
	cfg := WaypointConfig{Area: testArea, MinSpeed: 5, MaxSpeed: 5, Pause: 0}
	w := waypointFor(t, 3, cfg, 21)
	// Just exercise a long horizon; must terminate and stay in area.
	for i := 0; i < 3; i++ {
		p := w.Position(i, 5000)
		if !testArea.Contains(p) {
			t.Fatalf("node %d outside area: %v", i, p)
		}
	}
}

func TestWaypointSpeedWhileMoving(t *testing.T) {
	cfg := WaypointConfig{Area: testArea, MinSpeed: 3, MaxSpeed: 9, Pause: 0}
	w := waypointFor(t, 4, cfg, 31)
	for i := 0; i < 4; i++ {
		s := w.Speed(i, 10)
		if s != 0 && (s < cfg.MinSpeed || s > cfg.MaxSpeed) {
			t.Errorf("node %d speed %v outside [%v, %v]", i, s, cfg.MinSpeed, cfg.MaxSpeed)
		}
	}
}

func TestWaypointAverageDisplacementReasonable(t *testing.T) {
	// Sanity check against the model's scale: with max speed 20 the rms
	// displacement over 100 s should be well below the area diagonal but
	// clearly nonzero.
	cfg := WaypointConfig{Area: testArea, MinSpeed: 1, MaxSpeed: 20, Pause: 5}
	w := waypointFor(t, 50, cfg, 77)
	var sum float64
	start := make([]geo.Point, 50)
	for i := range start {
		start[i] = w.Position(i, 0)
	}
	for i := 0; i < 50; i++ {
		sum += w.Position(i, 100).Dist(start[i])
	}
	avg := sum / 50
	if avg < 10 || avg > 1500 {
		t.Errorf("average displacement %v out of plausible range", avg)
	}
	if math.IsNaN(avg) {
		t.Error("displacement is NaN")
	}
}
