package mobility

import (
	"math"
	"testing"

	"precinct/internal/geo"
	"precinct/internal/sim"
)

func TestNewWalkValidation(t *testing.T) {
	rng := sim.NewRNG(1)
	cfg := DefaultWalkConfig()
	if _, err := NewWalk(0, cfg, rng); err == nil {
		t.Error("n=0 accepted")
	}
	bad := cfg
	bad.MinSpeed = 0
	if _, err := NewWalk(3, bad, rng); err == nil {
		t.Error("MinSpeed=0 accepted")
	}
	bad = cfg
	bad.MaxSpeed = 0.1
	if _, err := NewWalk(3, bad, rng); err == nil {
		t.Error("Max < Min accepted")
	}
	bad = cfg
	bad.StepTime = 0
	if _, err := NewWalk(3, bad, rng); err == nil {
		t.Error("StepTime=0 accepted")
	}
	bad = cfg
	bad.Area = geo.NewRect(geo.Pt(0, 0), geo.Pt(0, 0))
	if _, err := NewWalk(3, bad, rng); err == nil {
		t.Error("degenerate area accepted")
	}
}

func TestWalkStaysInArea(t *testing.T) {
	cfg := WalkConfig{Area: testArea, MinSpeed: 2, MaxSpeed: 20, StepTime: 10}
	w, err := NewWalk(8, cfg, sim.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step <= 1000; step++ {
		now := float64(step)
		for i := 0; i < w.Len(); i++ {
			p := w.Position(i, now)
			if !testArea.Contains(p) {
				t.Fatalf("walker %d left the area at t=%v: %v", i, now, p)
			}
		}
	}
}

func TestWalkSpeedBound(t *testing.T) {
	cfg := WalkConfig{Area: testArea, MinSpeed: 1, MaxSpeed: 10, StepTime: 5}
	w, err := NewWalk(5, cfg, sim.NewRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	prev := make([]geo.Point, w.Len())
	for i := range prev {
		prev[i] = w.Position(i, 0)
	}
	const dt = 0.5
	for step := 1; step <= 2000; step++ {
		now := float64(step) * dt
		for i := 0; i < w.Len(); i++ {
			p := w.Position(i, now)
			if p.Dist(prev[i]) > cfg.MaxSpeed*dt+1e-6 {
				t.Fatalf("walker %d moved too fast", i)
			}
			prev[i] = p
		}
	}
}

func TestWalkActuallyMoves(t *testing.T) {
	cfg := WalkConfig{Area: testArea, MinSpeed: 3, MaxSpeed: 6, StepTime: 10}
	w, _ := NewWalk(6, cfg, sim.NewRNG(5))
	moved := 0
	for i := 0; i < w.Len(); i++ {
		a := w.Position(i, 0)
		if w.Position(i, 100).Dist(a) > 1 {
			moved++
		}
	}
	if moved < 4 {
		t.Errorf("only %d/6 walkers moved", moved)
	}
}

func TestWalkDeterministicAcrossQueryPatterns(t *testing.T) {
	cfg := WalkConfig{Area: testArea, MinSpeed: 1, MaxSpeed: 8, StepTime: 7}
	a, _ := NewWalk(4, cfg, sim.NewRNG(6))
	b, _ := NewWalk(4, cfg, sim.NewRNG(6))
	for step := 1; step <= 500; step++ {
		for i := 0; i < 4; i++ {
			b.Position(i, float64(step)*0.41)
		}
	}
	for i := 0; i < 4; i++ {
		pa := a.Position(i, 205)
		pb := b.Position(i, 205)
		if pa.Dist(pb) > 1e-6 {
			t.Fatalf("walker %d diverged: %v vs %v", i, pa, pb)
		}
	}
}

func TestWalkPanicsOnBackwardTime(t *testing.T) {
	w, _ := NewWalk(1, DefaultWalkConfig(), sim.NewRNG(7))
	w.Position(0, 50)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on backward time")
		}
	}()
	w.Position(0, 10)
}

func TestReflectMove(t *testing.T) {
	area := geo.NewRect(geo.Pt(0, 0), geo.Pt(100, 100))
	// Straight move inside.
	p, v := reflectMove(area, geo.Pt(50, 50), geo.Pt(10, 0), 1)
	if !p.Equal(geo.Pt(60, 50)) || !v.Equal(geo.Pt(10, 0)) {
		t.Errorf("interior move: %v %v", p, v)
	}
	// Bounce off the right wall.
	p, v = reflectMove(area, geo.Pt(95, 50), geo.Pt(10, 0), 1)
	if math.Abs(p.X-95) > 1e-9 || v.X != -10 {
		t.Errorf("right-wall bounce: %v %v", p, v)
	}
	// Corner bounce flips both axes.
	p, v = reflectMove(area, geo.Pt(98, 98), geo.Pt(10, 10), 1)
	if v.X != -10 || v.Y != -10 {
		t.Errorf("corner bounce velocity: %v", v)
	}
	if !area.Contains(p) {
		t.Errorf("corner bounce left area: %v", p)
	}
	// Extreme displacement still ends inside.
	p, _ = reflectMove(area, geo.Pt(50, 50), geo.Pt(1e6, 1e6), 1)
	if !area.Contains(p) {
		t.Errorf("extreme move escaped: %v", p)
	}
}

func TestNewGaussMarkovValidation(t *testing.T) {
	rng := sim.NewRNG(8)
	cfg := DefaultGaussMarkovConfig()
	if _, err := NewGaussMarkov(0, cfg, rng); err == nil {
		t.Error("n=0 accepted")
	}
	bad := cfg
	bad.MeanSpeed = 0
	if _, err := NewGaussMarkov(3, bad, rng); err == nil {
		t.Error("MeanSpeed=0 accepted")
	}
	bad = cfg
	bad.Alpha = 1
	if _, err := NewGaussMarkov(3, bad, rng); err == nil {
		t.Error("alpha=1 accepted")
	}
	bad = cfg
	bad.SpeedSigma = -1
	if _, err := NewGaussMarkov(3, bad, rng); err == nil {
		t.Error("negative sigma accepted")
	}
	bad = cfg
	bad.UpdateInterval = 0
	if _, err := NewGaussMarkov(3, bad, rng); err == nil {
		t.Error("zero interval accepted")
	}
}

func TestGaussMarkovStaysInArea(t *testing.T) {
	cfg := GaussMarkovConfig{
		Area: testArea, MeanSpeed: 10, SpeedSigma: 3, Alpha: 0.8, UpdateInterval: 1,
	}
	g, err := NewGaussMarkov(8, cfg, sim.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step <= 2000; step++ {
		now := float64(step) * 0.5
		for i := 0; i < g.Len(); i++ {
			p := g.Position(i, now)
			if !testArea.Contains(p) {
				t.Fatalf("node %d left the area at t=%v: %v", i, now, p)
			}
		}
	}
}

func TestGaussMarkovSpeedRevertsToMean(t *testing.T) {
	cfg := GaussMarkovConfig{
		Area: testArea, MeanSpeed: 8, SpeedSigma: 1, Alpha: 0.7, UpdateInterval: 1,
	}
	g, _ := NewGaussMarkov(20, cfg, sim.NewRNG(10))
	var sum float64
	var count int
	for step := 100; step <= 1100; step += 10 {
		for i := 0; i < g.Len(); i++ {
			sum += g.Speed(i, float64(step))
			count++
		}
	}
	mean := sum / float64(count)
	if math.Abs(mean-8) > 1.5 {
		t.Errorf("long-run mean speed %v, want ~8", mean)
	}
}

func TestGaussMarkovSmoothness(t *testing.T) {
	// High alpha should give straighter trajectories than low alpha:
	// compare net displacement over total path length.
	straightness := func(alpha float64) float64 {
		cfg := GaussMarkovConfig{
			Area: testArea, MeanSpeed: 6, SpeedSigma: 0.5, Alpha: alpha, UpdateInterval: 1,
		}
		g, _ := NewGaussMarkov(10, cfg, sim.NewRNG(11))
		var total float64
		for i := 0; i < g.Len(); i++ {
			start := g.Position(i, 0)
			var path float64
			prev := start
			for step := 1; step <= 60; step++ {
				p := g.Position(i, float64(step))
				path += p.Dist(prev)
				prev = p
			}
			if path > 0 {
				total += prev.Dist(start) / path
			}
		}
		return total / float64(g.Len())
	}
	low := straightness(0.05)
	high := straightness(0.95)
	if high <= low {
		t.Errorf("alpha=0.95 straightness (%v) should exceed alpha=0.05 (%v)", high, low)
	}
}

func TestGaussMarkovDeterministic(t *testing.T) {
	cfg := DefaultGaussMarkovConfig()
	a, _ := NewGaussMarkov(4, cfg, sim.NewRNG(12))
	b, _ := NewGaussMarkov(4, cfg, sim.NewRNG(12))
	for i := 0; i < 4; i++ {
		pa := a.Position(i, 500)
		pb := b.Position(i, 500)
		if pa.Dist(pb) > 1e-9 {
			t.Fatalf("node %d diverged", i)
		}
	}
}

func TestGaussMarkovPanicsOnBackwardTime(t *testing.T) {
	g, _ := NewGaussMarkov(1, DefaultGaussMarkovConfig(), sim.NewRNG(13))
	g.Position(0, 100)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on backward time")
		}
	}()
	g.Position(0, 99)
}
