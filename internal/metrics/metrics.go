// Package metrics collects the performance measures the paper reports:
// average latency per request, byte hit ratio, control message overhead,
// false hit ratio, and energy per request, together with the supporting
// counters (hit classes, failures, message breakdowns).
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// HitClass says where a request was ultimately satisfied.
type HitClass int

// Hit classes, ordered by increasing cost.
const (
	// LocalHit: served from the requesting peer's own cache.
	LocalHit HitClass = iota
	// RegionalHit: served by another peer in the requester's region
	// (cumulative cache).
	RegionalHit
	// EnRouteHit: served by a peer on the path to the home region.
	EnRouteHit
	// RemoteHit: served by the home (or replica) region.
	RemoteHit
	// Failure: the request got no answer.
	Failure
	numClasses
)

// String implements fmt.Stringer.
func (h HitClass) String() string {
	switch h {
	case LocalHit:
		return "local"
	case RegionalHit:
		return "regional"
	case EnRouteHit:
		return "en-route"
	case RemoteHit:
		return "remote"
	case Failure:
		return "failure"
	default:
		return fmt.Sprintf("class(%d)", int(h))
	}
}

// Collector accumulates one run's observations. Not safe for concurrent
// use; one simulation run owns one collector (sharded runs own one per
// shard and Merge them).
//
// Every accumulator is either an integer sum or a sample multiset whose
// digests are computed over a sorted copy, so the observations commute:
// merging per-shard collectors yields bit-identical reports to a single
// collector that saw the same observations in any order.
type Collector struct {
	latencies    []float64
	latClasses   []uint8 // serving class of latencies[i]
	byClass      [numClasses]uint64
	staleByClass [numClasses]uint64

	// Streaming mode (DESIGN.md section 14). cap == 0 retains every
	// latency sample — the exact reference behavior, where Snapshot
	// digests are computed over sorted copies of the full multiset.
	// cap > 0 bounds the retained buffer: once more than cap samples have
	// been observed the buffer becomes an Algorithm-R reservoir and the
	// running aggregates below take over the mean/max, so memory stays
	// constant no matter how long the run is. Below the cap the two modes
	// are bit-identical.
	cap      int
	seen     uint64  // latency samples observed (== len(latencies) until the cap is crossed)
	latSum   float64 // Kahan running sum over every latency observed
	latSumC  float64 // Kahan compensation for latSum
	latMax   float64
	rngState uint64 // splitmix64 state driving reservoir replacement draws

	classSum  [numClasses]float64 // Kahan running per-class latency sums
	classSumC [numClasses]float64

	bytesRequested int64
	bytesFromCache int64 // served from local or regional caches

	controlMessages     uint64 // consistency-maintenance messages
	searchMessages      uint64 // retrieval traffic
	maintenanceMessages uint64 // region upkeep: key handoffs, relocations

	validHits uint64 // hits served as valid
	staleHits uint64 // hits served as valid that were actually stale

	updatesIssued uint64
	pollsIssued   uint64
}

// NewCollector returns an empty collector that retains every sample.
func NewCollector() *Collector { return &Collector{} }

// NewCollectorCapped returns a collector that retains at most cap
// latency samples. Until the cap is crossed it behaves exactly like an
// uncapped collector; past it, the sample buffer turns into a uniform
// reservoir (Algorithm R with a deterministic splitmix64 stream) and
// the snapshot's mean/max come from exact running aggregates, with the
// percentiles estimated from the reservoir. cap <= 0 means unlimited.
func NewCollectorCapped(cap int) *Collector {
	if cap < 0 {
		cap = 0
	}
	return &Collector{cap: cap}
}

// SampleCap returns the retained-sample bound (0 = unlimited).
func (c *Collector) SampleCap() int { return c.cap }

// kahanAdd folds v into the compensated running sum (*sum, *comp).
func kahanAdd(sum, comp *float64, v float64) {
	y := v - *comp
	t := *sum + y
	*comp = (t - *sum) - y
	*sum = t
}

// nextRand advances the collector's deterministic splitmix64 stream.
// The stream exists so reservoir replacement never touches the
// simulation's RNG registry: collectors draw identically on every
// machine without perturbing any protocol-visible random sequence.
func (c *Collector) nextRand() uint64 {
	c.rngState += 0x9E3779B97F4A7C15
	z := c.rngState
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Reserve pre-sizes the latency sample buffer for about n completed
// requests, so large-N runs do not regrow it doubling-by-doubling in
// the event loop. Purely a capacity hint: it never shrinks the buffer
// and has no effect on any observation or snapshot.
func (c *Collector) Reserve(n int) {
	if c.cap > 0 && n > c.cap {
		n = c.cap // the buffer never grows past the reservoir bound
	}
	if n <= 0 || cap(c.latencies) >= n {
		return
	}
	grown := make([]float64, len(c.latencies), n)
	copy(grown, c.latencies)
	c.latencies = grown
	grownCls := make([]uint8, len(c.latClasses), n)
	copy(grownCls, c.latClasses)
	c.latClasses = grownCls
}

// Request records a completed (or failed) request.
//
//	latency: seconds from issue to answer (ignored for failures)
//	size:    item size in bytes
//	class:   where the request was satisfied
//	stale:   the answer was served as valid but was out of date
func (c *Collector) Request(latency float64, size int, class HitClass, stale bool) {
	c.byClass[class]++
	c.bytesRequested += int64(size)
	if class == Failure {
		return
	}
	c.seen++
	kahanAdd(&c.latSum, &c.latSumC, latency)
	kahanAdd(&c.classSum[class], &c.classSumC[class], latency)
	if latency > c.latMax {
		c.latMax = latency
	}
	if c.cap == 0 || len(c.latencies) < c.cap {
		c.latencies = append(c.latencies, latency)
		c.latClasses = append(c.latClasses, uint8(class))
	} else if j := c.nextRand() % c.seen; j < uint64(c.cap) {
		// Algorithm R: the t-th sample (t = seen) replaces a uniformly
		// chosen slot with probability cap/t, keeping the buffer a
		// uniform sample of everything observed so far.
		c.latencies[j] = latency
		c.latClasses[j] = uint8(class)
	}
	if class == LocalHit || class == RegionalHit {
		c.bytesFromCache += int64(size)
	}
	// The false-hit ratio covers cache hits served as valid; data
	// fetched from the authoritative home/replica region is not a
	// "hit" in the paper's sense.
	if class == LocalHit || class == RegionalHit || class == EnRouteHit {
		if stale {
			c.staleHits++
			c.staleByClass[class]++
		} else {
			c.validHits++
		}
	} else if stale {
		c.staleByClass[class]++
	}
}

// ControlMessages adds n consistency-maintenance messages (invalidation
// pushes, update pushes, polls, poll replies).
func (c *Collector) ControlMessages(n int) { c.controlMessages += uint64(n) }

// SearchMessages adds n retrieval messages (request forwarding, regional
// floods, responses).
func (c *Collector) SearchMessages(n int) { c.searchMessages += uint64(n) }

// MaintenanceMessages adds n region-upkeep messages (key handoffs on
// inter-region mobility, key relocation after region-table changes).
func (c *Collector) MaintenanceMessages(n int) { c.maintenanceMessages += uint64(n) }

// UpdateIssued counts one data update entering the system.
func (c *Collector) UpdateIssued() { c.updatesIssued++ }

// PollIssued counts one validation poll sent to a home region.
func (c *Collector) PollIssued() { c.pollsIssued++ }

// Completed returns the number of answered requests.
func (c *Collector) Completed() uint64 {
	var total uint64
	for cl := HitClass(0); cl < Failure; cl++ {
		total += c.byClass[cl]
	}
	return total
}

// State is the serializable state of a Collector: every accumulator,
// with the fixed-size per-class arrays flattened to slices so the layout
// is explicit in the serialized form.
type State struct {
	Latencies    []float64
	LatClasses   []uint8
	ByClass      []uint64
	StaleByClass []uint64

	BytesRequested int64
	BytesFromCache int64

	ControlMessages     uint64
	SearchMessages      uint64
	MaintenanceMessages uint64

	ValidHits uint64
	StaleHits uint64

	UpdatesIssued uint64
	PollsIssued   uint64

	// Streaming-mode accumulators (checkpoint container version 3).
	// SamplesSeen > len(Latencies) marks a collector whose buffer has
	// become a reservoir; the sums reproduce the continued run exactly.
	SampleCap   int
	SamplesSeen uint64
	LatSum      float64
	LatSumC     float64
	LatMax      float64
	ClassSum    []float64
	ClassSumC   []float64
	RNGState    uint64
}

// StateSnapshot captures the collector's accumulators.
func (c *Collector) StateSnapshot() State {
	return State{
		Latencies:           append([]float64(nil), c.latencies...),
		LatClasses:          append([]uint8(nil), c.latClasses...),
		ByClass:             append([]uint64(nil), c.byClass[:]...),
		StaleByClass:        append([]uint64(nil), c.staleByClass[:]...),
		SampleCap:           c.cap,
		SamplesSeen:         c.seen,
		LatSum:              c.latSum,
		LatSumC:             c.latSumC,
		LatMax:              c.latMax,
		ClassSum:            append([]float64(nil), c.classSum[:]...),
		ClassSumC:           append([]float64(nil), c.classSumC[:]...),
		RNGState:            c.rngState,
		BytesRequested:      c.bytesRequested,
		BytesFromCache:      c.bytesFromCache,
		ControlMessages:     c.controlMessages,
		SearchMessages:      c.searchMessages,
		MaintenanceMessages: c.maintenanceMessages,
		ValidHits:           c.validHits,
		StaleHits:           c.staleHits,
		UpdatesIssued:       c.updatesIssued,
		PollsIssued:         c.pollsIssued,
	}
}

// RestoreState overwrites the accumulators from a snapshot, validating
// that the per-class layout matches this build's class set.
func (c *Collector) RestoreState(st State) error {
	if len(st.ByClass) != int(numClasses) || len(st.StaleByClass) != int(numClasses) {
		return fmt.Errorf("metrics: snapshot has %d/%d class buckets, want %d",
			len(st.ByClass), len(st.StaleByClass), int(numClasses))
	}
	if len(st.LatClasses) != len(st.Latencies) {
		return fmt.Errorf("metrics: snapshot has %d latency classes for %d samples",
			len(st.LatClasses), len(st.Latencies))
	}
	for _, cl := range st.LatClasses {
		if cl >= uint8(numClasses) || HitClass(cl) == Failure {
			return fmt.Errorf("metrics: snapshot latency sample carries class %d", cl)
		}
	}
	if st.SampleCap != c.cap {
		return fmt.Errorf("metrics: snapshot collector retains %d samples, this run retains %d",
			st.SampleCap, c.cap)
	}
	if st.SamplesSeen < uint64(len(st.Latencies)) {
		return fmt.Errorf("metrics: snapshot saw %d samples but retains %d",
			st.SamplesSeen, len(st.Latencies))
	}
	if c.cap > 0 && len(st.Latencies) > c.cap {
		return fmt.Errorf("metrics: snapshot retains %d samples over the %d cap",
			len(st.Latencies), c.cap)
	}
	if len(st.ClassSum) != int(numClasses) || len(st.ClassSumC) != int(numClasses) {
		return fmt.Errorf("metrics: snapshot has %d/%d class sums, want %d",
			len(st.ClassSum), len(st.ClassSumC), int(numClasses))
	}
	c.latencies = append([]float64(nil), st.Latencies...)
	c.latClasses = append([]uint8(nil), st.LatClasses...)
	copy(c.byClass[:], st.ByClass)
	copy(c.staleByClass[:], st.StaleByClass)
	c.seen = st.SamplesSeen
	c.latSum = st.LatSum
	c.latSumC = st.LatSumC
	c.latMax = st.LatMax
	copy(c.classSum[:], st.ClassSum)
	copy(c.classSumC[:], st.ClassSumC)
	c.rngState = st.RNGState
	c.bytesRequested = st.BytesRequested
	c.bytesFromCache = st.BytesFromCache
	c.controlMessages = st.ControlMessages
	c.searchMessages = st.SearchMessages
	c.maintenanceMessages = st.MaintenanceMessages
	c.validHits = st.ValidHits
	c.staleHits = st.StaleHits
	c.updatesIssued = st.UpdatesIssued
	c.pollsIssued = st.PollsIssued
	return nil
}

// Report is an immutable summary of a run.
type Report struct {
	Requests  uint64
	Completed uint64
	Failures  uint64
	ByClass   map[string]uint64
	// StaleByClass counts false hits by serving class.
	StaleByClass map[string]uint64
	// MeanLatencyByClass is the mean latency of completed requests per
	// serving class.
	MeanLatencyByClass map[string]float64

	MeanLatency float64 // seconds
	P50Latency  float64
	P95Latency  float64
	MaxLatency  float64

	ByteHitRatio  float64 // bytes served from local+regional cache / bytes requested
	FalseHitRatio float64 // stale cache hits / cache hits served as valid

	ControlMessages     uint64
	SearchMessages      uint64
	MaintenanceMessages uint64
	UpdatesIssued       uint64
	PollsIssued         uint64

	// EnergyTotal and EnergyPerRequest are filled by the caller from the
	// energy meter (the collector does not see the radio).
	EnergyTotal      float64 // mJ
	EnergyPerRequest float64 // mJ
}

// Snapshot derives the report from the collected observations.
func (c *Collector) Snapshot() Report {
	r := Report{
		Completed:           c.Completed(),
		Failures:            c.byClass[Failure],
		ByClass:             make(map[string]uint64, int(numClasses)),
		ControlMessages:     c.controlMessages,
		SearchMessages:      c.searchMessages,
		MaintenanceMessages: c.maintenanceMessages,
		UpdatesIssued:       c.updatesIssued,
		PollsIssued:         c.pollsIssued,
	}
	r.Requests = r.Completed + r.Failures
	r.StaleByClass = make(map[string]uint64, int(numClasses))
	r.MeanLatencyByClass = make(map[string]float64, int(numClasses))
	// Exact mode: every observed sample is still in the buffer. Per-class
	// and global means are computed over a sorted copy of each sample
	// multiset, so the result is independent of observation order (and
	// therefore of how a sharded run partitioned the requests). Once the
	// reservoir has dropped samples (seen > retained), the exact running
	// aggregates supply the means and max, and only the percentiles are
	// estimated from the retained sample.
	exact := c.seen == uint64(len(c.latencies))
	var classBuf []float64
	for cl := HitClass(0); cl < numClasses; cl++ {
		r.ByClass[cl.String()] = c.byClass[cl]
		r.StaleByClass[cl.String()] = c.staleByClass[cl]
		if cl == Failure || c.byClass[cl] == 0 {
			continue
		}
		if !exact {
			r.MeanLatencyByClass[cl.String()] = c.classSum[cl] / float64(c.byClass[cl])
			continue
		}
		classBuf = classBuf[:0]
		for i, lcl := range c.latClasses {
			if HitClass(lcl) == cl {
				classBuf = append(classBuf, c.latencies[i])
			}
		}
		if len(classBuf) == 0 {
			continue
		}
		sort.Float64s(classBuf)
		var sum float64
		for _, l := range classBuf {
			sum += l
		}
		r.MeanLatencyByClass[cl.String()] = sum / float64(c.byClass[cl])
	}
	switch {
	case exact && len(c.latencies) > 0:
		sorted := make([]float64, len(c.latencies))
		copy(sorted, c.latencies)
		sort.Float64s(sorted)
		var sum float64
		for _, l := range sorted {
			sum += l
		}
		r.MeanLatency = sum / float64(len(sorted))
		r.P50Latency = percentile(sorted, 0.50)
		r.P95Latency = percentile(sorted, 0.95)
		r.MaxLatency = sorted[len(sorted)-1]
	case !exact && c.seen > 0:
		r.MeanLatency = c.latSum / float64(c.seen)
		r.MaxLatency = c.latMax
		sorted := make([]float64, len(c.latencies))
		copy(sorted, c.latencies)
		sort.Float64s(sorted)
		r.P50Latency = percentile(sorted, 0.50)
		r.P95Latency = percentile(sorted, 0.95)
	}
	if c.bytesRequested > 0 {
		r.ByteHitRatio = float64(c.bytesFromCache) / float64(c.bytesRequested)
	}
	if served := c.validHits + c.staleHits; served > 0 {
		r.FalseHitRatio = float64(c.staleHits) / float64(served)
	}
	return r
}

// Merge folds another collector's observations into this one. Because
// every accumulator is an integer sum or an order-insensitive sample
// multiset, merging per-shard collectors in any order produces the same
// Snapshot as a single collector that recorded everything.
func (c *Collector) Merge(o *Collector) {
	c.latencies = append(c.latencies, o.latencies...)
	c.latClasses = append(c.latClasses, o.latClasses...)
	c.seen += o.seen
	kahanAdd(&c.latSum, &c.latSumC, o.latSum-o.latSumC)
	if o.latMax > c.latMax {
		c.latMax = o.latMax
	}
	c.rngState ^= o.rngState
	if c.cap > 0 && len(c.latencies) > c.cap {
		// The concatenation overflowed the bound: keep an evenly spaced
		// subsample. The merged buffer is a percentile estimate, not a
		// uniform reservoir — which only matters past the cap, a regime
		// the sub-cap equivalence contracts never enter.
		n := len(c.latencies)
		for i := 0; i < c.cap; i++ {
			j := i * n / c.cap
			c.latencies[i] = c.latencies[j]
			c.latClasses[i] = c.latClasses[j]
		}
		c.latencies = c.latencies[:c.cap]
		c.latClasses = c.latClasses[:c.cap]
	}
	for cl := HitClass(0); cl < numClasses; cl++ {
		c.byClass[cl] += o.byClass[cl]
		c.staleByClass[cl] += o.staleByClass[cl]
		kahanAdd(&c.classSum[cl], &c.classSumC[cl], o.classSum[cl]-o.classSumC[cl])
	}
	c.bytesRequested += o.bytesRequested
	c.bytesFromCache += o.bytesFromCache
	c.controlMessages += o.controlMessages
	c.searchMessages += o.searchMessages
	c.maintenanceMessages += o.maintenanceMessages
	c.validHits += o.validHits
	c.staleHits += o.staleHits
	c.updatesIssued += o.updatesIssued
	c.pollsIssued += o.pollsIssued
}

// percentile interpolates the p-quantile of a sorted sample.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// WithEnergy returns a copy of the report with energy fields filled from
// the given network-wide total.
func (r Report) WithEnergy(totalMilliJoules float64) Report {
	r.EnergyTotal = totalMilliJoules
	if r.Requests > 0 {
		r.EnergyPerRequest = totalMilliJoules / float64(r.Requests)
	}
	return r
}

// String renders a compact human-readable summary.
func (r Report) String() string {
	return fmt.Sprintf(
		"requests=%d (failures=%d) latency mean=%.3fs p95=%.3fs byteHit=%.3f falseHit=%.4f ctrlMsgs=%d searchMsgs=%d energy/req=%.2fmJ",
		r.Requests, r.Failures, r.MeanLatency, r.P95Latency,
		r.ByteHitRatio, r.FalseHitRatio, r.ControlMessages, r.SearchMessages, r.EnergyPerRequest)
}
