// Package metrics collects the performance measures the paper reports:
// average latency per request, byte hit ratio, control message overhead,
// false hit ratio, and energy per request, together with the supporting
// counters (hit classes, failures, message breakdowns).
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// HitClass says where a request was ultimately satisfied.
type HitClass int

// Hit classes, ordered by increasing cost.
const (
	// LocalHit: served from the requesting peer's own cache.
	LocalHit HitClass = iota
	// RegionalHit: served by another peer in the requester's region
	// (cumulative cache).
	RegionalHit
	// EnRouteHit: served by a peer on the path to the home region.
	EnRouteHit
	// RemoteHit: served by the home (or replica) region.
	RemoteHit
	// Failure: the request got no answer.
	Failure
	numClasses
)

// String implements fmt.Stringer.
func (h HitClass) String() string {
	switch h {
	case LocalHit:
		return "local"
	case RegionalHit:
		return "regional"
	case EnRouteHit:
		return "en-route"
	case RemoteHit:
		return "remote"
	case Failure:
		return "failure"
	default:
		return fmt.Sprintf("class(%d)", int(h))
	}
}

// Collector accumulates one run's observations. Not safe for concurrent
// use; one simulation run owns one collector (sharded runs own one per
// shard and Merge them).
//
// Every accumulator is either an integer sum or a sample multiset whose
// digests are computed over a sorted copy, so the observations commute:
// merging per-shard collectors yields bit-identical reports to a single
// collector that saw the same observations in any order.
type Collector struct {
	latencies    []float64
	latClasses   []uint8 // serving class of latencies[i]
	byClass      [numClasses]uint64
	staleByClass [numClasses]uint64

	bytesRequested int64
	bytesFromCache int64 // served from local or regional caches

	controlMessages     uint64 // consistency-maintenance messages
	searchMessages      uint64 // retrieval traffic
	maintenanceMessages uint64 // region upkeep: key handoffs, relocations

	validHits uint64 // hits served as valid
	staleHits uint64 // hits served as valid that were actually stale

	updatesIssued uint64
	pollsIssued   uint64
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Reserve pre-sizes the latency sample buffer for about n completed
// requests, so large-N runs do not regrow it doubling-by-doubling in
// the event loop. Purely a capacity hint: it never shrinks the buffer
// and has no effect on any observation or snapshot.
func (c *Collector) Reserve(n int) {
	if n <= 0 || cap(c.latencies) >= n {
		return
	}
	grown := make([]float64, len(c.latencies), n)
	copy(grown, c.latencies)
	c.latencies = grown
	grownCls := make([]uint8, len(c.latClasses), n)
	copy(grownCls, c.latClasses)
	c.latClasses = grownCls
}

// Request records a completed (or failed) request.
//
//	latency: seconds from issue to answer (ignored for failures)
//	size:    item size in bytes
//	class:   where the request was satisfied
//	stale:   the answer was served as valid but was out of date
func (c *Collector) Request(latency float64, size int, class HitClass, stale bool) {
	c.byClass[class]++
	c.bytesRequested += int64(size)
	if class == Failure {
		return
	}
	c.latencies = append(c.latencies, latency)
	c.latClasses = append(c.latClasses, uint8(class))
	if class == LocalHit || class == RegionalHit {
		c.bytesFromCache += int64(size)
	}
	// The false-hit ratio covers cache hits served as valid; data
	// fetched from the authoritative home/replica region is not a
	// "hit" in the paper's sense.
	if class == LocalHit || class == RegionalHit || class == EnRouteHit {
		if stale {
			c.staleHits++
			c.staleByClass[class]++
		} else {
			c.validHits++
		}
	} else if stale {
		c.staleByClass[class]++
	}
}

// ControlMessages adds n consistency-maintenance messages (invalidation
// pushes, update pushes, polls, poll replies).
func (c *Collector) ControlMessages(n int) { c.controlMessages += uint64(n) }

// SearchMessages adds n retrieval messages (request forwarding, regional
// floods, responses).
func (c *Collector) SearchMessages(n int) { c.searchMessages += uint64(n) }

// MaintenanceMessages adds n region-upkeep messages (key handoffs on
// inter-region mobility, key relocation after region-table changes).
func (c *Collector) MaintenanceMessages(n int) { c.maintenanceMessages += uint64(n) }

// UpdateIssued counts one data update entering the system.
func (c *Collector) UpdateIssued() { c.updatesIssued++ }

// PollIssued counts one validation poll sent to a home region.
func (c *Collector) PollIssued() { c.pollsIssued++ }

// Completed returns the number of answered requests.
func (c *Collector) Completed() uint64 {
	var total uint64
	for cl := HitClass(0); cl < Failure; cl++ {
		total += c.byClass[cl]
	}
	return total
}

// State is the serializable state of a Collector: every accumulator,
// with the fixed-size per-class arrays flattened to slices so the layout
// is explicit in the serialized form.
type State struct {
	Latencies    []float64
	LatClasses   []uint8
	ByClass      []uint64
	StaleByClass []uint64

	BytesRequested int64
	BytesFromCache int64

	ControlMessages     uint64
	SearchMessages      uint64
	MaintenanceMessages uint64

	ValidHits uint64
	StaleHits uint64

	UpdatesIssued uint64
	PollsIssued   uint64
}

// StateSnapshot captures the collector's accumulators.
func (c *Collector) StateSnapshot() State {
	return State{
		Latencies:           append([]float64(nil), c.latencies...),
		LatClasses:          append([]uint8(nil), c.latClasses...),
		ByClass:             append([]uint64(nil), c.byClass[:]...),
		StaleByClass:        append([]uint64(nil), c.staleByClass[:]...),
		BytesRequested:      c.bytesRequested,
		BytesFromCache:      c.bytesFromCache,
		ControlMessages:     c.controlMessages,
		SearchMessages:      c.searchMessages,
		MaintenanceMessages: c.maintenanceMessages,
		ValidHits:           c.validHits,
		StaleHits:           c.staleHits,
		UpdatesIssued:       c.updatesIssued,
		PollsIssued:         c.pollsIssued,
	}
}

// RestoreState overwrites the accumulators from a snapshot, validating
// that the per-class layout matches this build's class set.
func (c *Collector) RestoreState(st State) error {
	if len(st.ByClass) != int(numClasses) || len(st.StaleByClass) != int(numClasses) {
		return fmt.Errorf("metrics: snapshot has %d/%d class buckets, want %d",
			len(st.ByClass), len(st.StaleByClass), int(numClasses))
	}
	if len(st.LatClasses) != len(st.Latencies) {
		return fmt.Errorf("metrics: snapshot has %d latency classes for %d samples",
			len(st.LatClasses), len(st.Latencies))
	}
	for _, cl := range st.LatClasses {
		if cl >= uint8(numClasses) || HitClass(cl) == Failure {
			return fmt.Errorf("metrics: snapshot latency sample carries class %d", cl)
		}
	}
	c.latencies = append([]float64(nil), st.Latencies...)
	c.latClasses = append([]uint8(nil), st.LatClasses...)
	copy(c.byClass[:], st.ByClass)
	copy(c.staleByClass[:], st.StaleByClass)
	c.bytesRequested = st.BytesRequested
	c.bytesFromCache = st.BytesFromCache
	c.controlMessages = st.ControlMessages
	c.searchMessages = st.SearchMessages
	c.maintenanceMessages = st.MaintenanceMessages
	c.validHits = st.ValidHits
	c.staleHits = st.StaleHits
	c.updatesIssued = st.UpdatesIssued
	c.pollsIssued = st.PollsIssued
	return nil
}

// Report is an immutable summary of a run.
type Report struct {
	Requests  uint64
	Completed uint64
	Failures  uint64
	ByClass   map[string]uint64
	// StaleByClass counts false hits by serving class.
	StaleByClass map[string]uint64
	// MeanLatencyByClass is the mean latency of completed requests per
	// serving class.
	MeanLatencyByClass map[string]float64

	MeanLatency float64 // seconds
	P50Latency  float64
	P95Latency  float64
	MaxLatency  float64

	ByteHitRatio  float64 // bytes served from local+regional cache / bytes requested
	FalseHitRatio float64 // stale cache hits / cache hits served as valid

	ControlMessages     uint64
	SearchMessages      uint64
	MaintenanceMessages uint64
	UpdatesIssued       uint64
	PollsIssued         uint64

	// EnergyTotal and EnergyPerRequest are filled by the caller from the
	// energy meter (the collector does not see the radio).
	EnergyTotal      float64 // mJ
	EnergyPerRequest float64 // mJ
}

// Snapshot derives the report from the collected observations.
func (c *Collector) Snapshot() Report {
	r := Report{
		Completed:           c.Completed(),
		Failures:            c.byClass[Failure],
		ByClass:             make(map[string]uint64, int(numClasses)),
		ControlMessages:     c.controlMessages,
		SearchMessages:      c.searchMessages,
		MaintenanceMessages: c.maintenanceMessages,
		UpdatesIssued:       c.updatesIssued,
		PollsIssued:         c.pollsIssued,
	}
	r.Requests = r.Completed + r.Failures
	r.StaleByClass = make(map[string]uint64, int(numClasses))
	r.MeanLatencyByClass = make(map[string]float64, int(numClasses))
	// Per-class means are computed over a sorted copy of each class's
	// samples, so the result is independent of observation order (and
	// therefore of how a sharded run partitioned the requests).
	var classBuf []float64
	for cl := HitClass(0); cl < numClasses; cl++ {
		r.ByClass[cl.String()] = c.byClass[cl]
		r.StaleByClass[cl.String()] = c.staleByClass[cl]
		if cl == Failure || c.byClass[cl] == 0 {
			continue
		}
		classBuf = classBuf[:0]
		for i, lcl := range c.latClasses {
			if HitClass(lcl) == cl {
				classBuf = append(classBuf, c.latencies[i])
			}
		}
		if len(classBuf) == 0 {
			continue
		}
		sort.Float64s(classBuf)
		var sum float64
		for _, l := range classBuf {
			sum += l
		}
		r.MeanLatencyByClass[cl.String()] = sum / float64(c.byClass[cl])
	}
	if len(c.latencies) > 0 {
		sorted := make([]float64, len(c.latencies))
		copy(sorted, c.latencies)
		sort.Float64s(sorted)
		var sum float64
		for _, l := range sorted {
			sum += l
		}
		r.MeanLatency = sum / float64(len(sorted))
		r.P50Latency = percentile(sorted, 0.50)
		r.P95Latency = percentile(sorted, 0.95)
		r.MaxLatency = sorted[len(sorted)-1]
	}
	if c.bytesRequested > 0 {
		r.ByteHitRatio = float64(c.bytesFromCache) / float64(c.bytesRequested)
	}
	if served := c.validHits + c.staleHits; served > 0 {
		r.FalseHitRatio = float64(c.staleHits) / float64(served)
	}
	return r
}

// Merge folds another collector's observations into this one. Because
// every accumulator is an integer sum or an order-insensitive sample
// multiset, merging per-shard collectors in any order produces the same
// Snapshot as a single collector that recorded everything.
func (c *Collector) Merge(o *Collector) {
	c.latencies = append(c.latencies, o.latencies...)
	c.latClasses = append(c.latClasses, o.latClasses...)
	for cl := HitClass(0); cl < numClasses; cl++ {
		c.byClass[cl] += o.byClass[cl]
		c.staleByClass[cl] += o.staleByClass[cl]
	}
	c.bytesRequested += o.bytesRequested
	c.bytesFromCache += o.bytesFromCache
	c.controlMessages += o.controlMessages
	c.searchMessages += o.searchMessages
	c.maintenanceMessages += o.maintenanceMessages
	c.validHits += o.validHits
	c.staleHits += o.staleHits
	c.updatesIssued += o.updatesIssued
	c.pollsIssued += o.pollsIssued
}

// percentile interpolates the p-quantile of a sorted sample.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// WithEnergy returns a copy of the report with energy fields filled from
// the given network-wide total.
func (r Report) WithEnergy(totalMilliJoules float64) Report {
	r.EnergyTotal = totalMilliJoules
	if r.Requests > 0 {
		r.EnergyPerRequest = totalMilliJoules / float64(r.Requests)
	}
	return r
}

// String renders a compact human-readable summary.
func (r Report) String() string {
	return fmt.Sprintf(
		"requests=%d (failures=%d) latency mean=%.3fs p95=%.3fs byteHit=%.3f falseHit=%.4f ctrlMsgs=%d searchMsgs=%d energy/req=%.2fmJ",
		r.Requests, r.Failures, r.MeanLatency, r.P95Latency,
		r.ByteHitRatio, r.FalseHitRatio, r.ControlMessages, r.SearchMessages, r.EnergyPerRequest)
}
