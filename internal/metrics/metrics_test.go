package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHitClassString(t *testing.T) {
	want := map[HitClass]string{
		LocalHit:    "local",
		RegionalHit: "regional",
		EnRouteHit:  "en-route",
		RemoteHit:   "remote",
		Failure:     "failure",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(c), c.String(), s)
		}
	}
	if HitClass(9).String() != "class(9)" {
		t.Error("unknown class string")
	}
}

func TestEmptyCollectorSnapshot(t *testing.T) {
	r := NewCollector().Snapshot()
	if r.Requests != 0 || r.Completed != 0 || r.Failures != 0 {
		t.Errorf("empty report has counts: %+v", r)
	}
	if r.MeanLatency != 0 || r.ByteHitRatio != 0 || r.FalseHitRatio != 0 {
		t.Errorf("empty report has ratios: %+v", r)
	}
}

func TestRequestAccounting(t *testing.T) {
	c := NewCollector()
	c.Request(0.5, 1000, LocalHit, false)
	c.Request(1.0, 2000, RemoteHit, false)
	c.Request(0, 500, Failure, false)
	r := c.Snapshot()
	if r.Requests != 3 || r.Completed != 2 || r.Failures != 1 {
		t.Errorf("counts wrong: %+v", r)
	}
	if r.ByClass["local"] != 1 || r.ByClass["remote"] != 1 || r.ByClass["failure"] != 1 {
		t.Errorf("class map wrong: %v", r.ByClass)
	}
	if math.Abs(r.MeanLatency-0.75) > 1e-12 {
		t.Errorf("mean latency %v, want 0.75", r.MeanLatency)
	}
	if r.MaxLatency != 1.0 {
		t.Errorf("max latency %v", r.MaxLatency)
	}
}

func TestByteHitRatio(t *testing.T) {
	c := NewCollector()
	c.Request(0.1, 1000, LocalHit, false)    // cache bytes
	c.Request(0.1, 1000, RegionalHit, false) // cache bytes
	c.Request(0.1, 2000, RemoteHit, false)   // not cache
	r := c.Snapshot()
	if math.Abs(r.ByteHitRatio-0.5) > 1e-12 {
		t.Errorf("byte hit ratio %v, want 0.5", r.ByteHitRatio)
	}
}

func TestEnRouteNotCountedAsCacheBytes(t *testing.T) {
	c := NewCollector()
	c.Request(0.1, 1000, EnRouteHit, false)
	r := c.Snapshot()
	if r.ByteHitRatio != 0 {
		t.Errorf("en-route hits must not count toward byte hit ratio: %v", r.ByteHitRatio)
	}
}

func TestFalseHitRatio(t *testing.T) {
	c := NewCollector()
	c.Request(0.1, 100, LocalHit, true)
	c.Request(0.1, 100, LocalHit, false)
	c.Request(0.1, 100, LocalHit, false)
	c.Request(0.1, 100, LocalHit, false)
	r := c.Snapshot()
	if math.Abs(r.FalseHitRatio-0.25) > 1e-12 {
		t.Errorf("false hit ratio %v, want 0.25", r.FalseHitRatio)
	}
}

func TestFailuresExcludedFromLatency(t *testing.T) {
	c := NewCollector()
	c.Request(2.0, 100, RemoteHit, false)
	c.Request(999, 100, Failure, false)
	r := c.Snapshot()
	if r.MeanLatency != 2.0 {
		t.Errorf("failure latency leaked into mean: %v", r.MeanLatency)
	}
}

func TestMessageCounters(t *testing.T) {
	c := NewCollector()
	c.ControlMessages(3)
	c.ControlMessages(2)
	c.SearchMessages(10)
	c.UpdateIssued()
	c.PollIssued()
	c.PollIssued()
	r := c.Snapshot()
	if r.ControlMessages != 5 || r.SearchMessages != 10 {
		t.Errorf("message counters: %+v", r)
	}
	if r.UpdatesIssued != 1 || r.PollsIssued != 2 {
		t.Errorf("update/poll counters: %+v", r)
	}
}

func TestPercentiles(t *testing.T) {
	c := NewCollector()
	for i := 1; i <= 100; i++ {
		c.Request(float64(i), 10, RemoteHit, false)
	}
	r := c.Snapshot()
	if math.Abs(r.P50Latency-50.5) > 1 {
		t.Errorf("p50 = %v, want ~50.5", r.P50Latency)
	}
	if math.Abs(r.P95Latency-95) > 1.2 {
		t.Errorf("p95 = %v, want ~95", r.P95Latency)
	}
}

func TestPercentileEdgeCases(t *testing.T) {
	if !math.IsNaN(percentile(nil, 0.5)) {
		t.Error("percentile of empty sample should be NaN")
	}
	if got := percentile([]float64{7}, 0.95); got != 7 {
		t.Errorf("single sample percentile = %v", got)
	}
}

func TestWithEnergy(t *testing.T) {
	c := NewCollector()
	c.Request(0.1, 100, LocalHit, false)
	c.Request(0.1, 100, Failure, false)
	r := c.Snapshot().WithEnergy(500)
	if r.EnergyTotal != 500 {
		t.Errorf("EnergyTotal = %v", r.EnergyTotal)
	}
	if r.EnergyPerRequest != 250 {
		t.Errorf("EnergyPerRequest = %v, want 250 (over all requests)", r.EnergyPerRequest)
	}
	// Zero requests: no division.
	empty := NewCollector().Snapshot().WithEnergy(100)
	if empty.EnergyPerRequest != 0 {
		t.Errorf("empty EnergyPerRequest = %v", empty.EnergyPerRequest)
	}
}

func TestReportString(t *testing.T) {
	c := NewCollector()
	c.Request(0.25, 100, LocalHit, false)
	s := c.Snapshot().String()
	if s == "" {
		t.Error("empty String()")
	}
}

// Property: requests always equals completed + failures, and the class
// counts sum to requests.
func TestCountConsistencyProperty(t *testing.T) {
	f := func(classes []uint8) bool {
		c := NewCollector()
		for _, raw := range classes {
			c.Request(0.1, 100, HitClass(raw%5), raw%7 == 0)
		}
		r := c.Snapshot()
		if r.Requests != r.Completed+r.Failures {
			return false
		}
		var sum uint64
		for _, v := range r.ByClass {
			sum += v
		}
		return sum == r.Requests
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: percentiles are monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		c := NewCollector()
		for _, v := range raw {
			c.Request(float64(v), 10, RemoteHit, false)
		}
		r := c.Snapshot()
		return r.P50Latency <= r.P95Latency+1e-9 && r.P95Latency <= r.MaxLatency+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMeanLatencyByClass(t *testing.T) {
	c := NewCollector()
	c.Request(0.1, 100, LocalHit, false)
	c.Request(0.3, 100, LocalHit, false)
	c.Request(1.0, 100, RemoteHit, false)
	c.Request(0, 100, Failure, false)
	r := c.Snapshot()
	if got := r.MeanLatencyByClass["local"]; math.Abs(got-0.2) > 1e-12 {
		t.Errorf("local mean latency %v, want 0.2", got)
	}
	if got := r.MeanLatencyByClass["remote"]; got != 1.0 {
		t.Errorf("remote mean latency %v", got)
	}
	if _, ok := r.MeanLatencyByClass["failure"]; ok {
		t.Error("failures should not have a latency entry")
	}
	if _, ok := r.MeanLatencyByClass["regional"]; ok {
		t.Error("empty classes should not have a latency entry")
	}
}
