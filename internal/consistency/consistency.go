// Package consistency holds the cache-consistency machinery shared by the
// three schemes the paper compares:
//
//   - Plain-Push: the updating peer floods an invalidation through the
//     whole network (Cao & Liu).
//   - Pull-Every-time: a peer validates its cached copy with the item's
//     home region on every single hit (Gwertzman & Seltzer).
//   - Push with Adaptive Pull: the paper's hybrid — updates are pushed
//     only to the home and replica regions; every cached copy carries a
//     Time-to-Refresh (TTR) and is used without validation until the TTR
//     expires, after which the peer polls the home region.
//
// The TTR is maintained by the home region per item with exponential
// smoothing over observed update intervals (Equation 2):
//
//	TTR = alpha*TTR + (1-alpha)*t_upd_intvl
//
// The message choreography lives in internal/node; this package owns the
// scheme identifiers, configuration, and the TTR/version bookkeeping that
// home-region peers apply.
package consistency

import (
	"fmt"
	"math"

	"precinct/internal/cache"
)

// Scheme selects a consistency algorithm.
type Scheme int

// The consistency schemes under comparison.
const (
	// None disables consistency maintenance entirely (read-only data).
	None Scheme = iota
	// PlainPush floods invalidations network-wide on every update.
	PlainPush
	// PullEveryTime validates with the home region on every cache hit.
	PullEveryTime
	// PushAdaptivePull is the paper's hybrid push/pull scheme.
	PushAdaptivePull
)

// String implements fmt.Stringer.
func (s Scheme) String() string {
	switch s {
	case None:
		return "none"
	case PlainPush:
		return "plain-push"
	case PullEveryTime:
		return "pull-every-time"
	case PushAdaptivePull:
		return "push-adaptive-pull"
	default:
		return fmt.Sprintf("scheme(%d)", int(s))
	}
}

// ParseScheme converts a name (as printed by String) back to a Scheme.
func ParseScheme(name string) (Scheme, error) {
	switch name {
	case "none":
		return None, nil
	case "plain-push":
		return PlainPush, nil
	case "pull-every-time":
		return PullEveryTime, nil
	case "push-adaptive-pull":
		return PushAdaptivePull, nil
	default:
		return None, fmt.Errorf("consistency: unknown scheme %q", name)
	}
}

// Config parameterizes the consistency layer.
type Config struct {
	Scheme Scheme
	// Alpha weighs past TTR against the latest observed update interval
	// (Equation 2); must be in [0, 1). Higher alpha = smoother/slower
	// adaptation.
	Alpha float64
	// InitialTTR seeds an item's TTR before any update has been
	// observed, in seconds.
	InitialTTR float64
}

// DefaultConfig uses a moderately smoothed TTR seeded at the paper's mean
// request interval.
func DefaultConfig(s Scheme) Config {
	return Config{Scheme: s, Alpha: 0.5, InitialTTR: 30}
}

// Validate checks parameter ranges.
func (c Config) Validate() error {
	if c.Scheme < None || c.Scheme > PushAdaptivePull {
		return fmt.Errorf("consistency: unknown scheme %d", int(c.Scheme))
	}
	if c.Alpha < 0 || c.Alpha >= 1 {
		return fmt.Errorf("consistency: alpha must be in [0, 1), got %v", c.Alpha)
	}
	if c.InitialTTR <= 0 {
		return fmt.Errorf("consistency: initial TTR must be positive, got %v", c.InitialTTR)
	}
	return nil
}

// SmoothTTR applies Equation 2: the new TTR after observing an update
// interval.
func SmoothTTR(alpha, prevTTR, updateInterval float64) float64 {
	return alpha*prevTTR + (1-alpha)*updateInterval
}

// CheckSmoothingBound verifies that next is a valid result of Equation 2
// applied to (alpha, prev, interval): with alpha in [0, 1), the smoothed
// TTR is a convex combination of the previous TTR and the observed update
// interval, so it must lie in [min(prev, interval), max(prev, interval)];
// it must also be finite, non-negative, and strictly positive whenever
// alpha > 0 and the previous TTR was positive. The invariant checker calls
// this on every TTR update the consistency layer performs.
func CheckSmoothingBound(alpha, prev, interval, next float64) error {
	if math.IsNaN(next) || math.IsInf(next, 0) {
		return fmt.Errorf("consistency: smoothed TTR %v is not finite", next)
	}
	if next < 0 {
		return fmt.Errorf("consistency: smoothed TTR %v is negative", next)
	}
	if alpha > 0 && prev > 0 && next <= 0 {
		return fmt.Errorf("consistency: smoothed TTR collapsed to %v from prev %v (alpha %v)", next, prev, alpha)
	}
	lo, hi := prev, interval
	if lo > hi {
		lo, hi = hi, lo
	}
	// Tolerate float rounding at the interval edges.
	eps := 1e-9 * (1 + math.Abs(hi))
	if next < lo-eps || next > hi+eps {
		return fmt.Errorf("consistency: smoothed TTR %v outside [%v, %v] (alpha %v, prev %v, interval %v)",
			next, lo, hi, alpha, prev, interval)
	}
	return nil
}

// ApplyUpdate records an accepted update on a home/replica-region stored
// item at simulation time now: it bumps the version, re-estimates the TTR
// from the observed inter-update interval, and stamps the update time.
// It returns the new version and TTR.
func ApplyUpdate(it *cache.StoredItem, now float64, cfg Config) (version uint64, ttr float64) {
	interval := now - it.UpdatedAt
	if interval < 0 {
		interval = 0
	}
	prev := it.TTR
	if prev <= 0 {
		prev = cfg.InitialTTR
	}
	if it.Version == 0 && it.UpdatedAt == 0 {
		// First ever update: the "interval since creation" is not an
		// observed inter-update gap; blend with the seed instead.
		it.TTR = SmoothTTR(cfg.Alpha, cfg.InitialTTR, interval)
	} else {
		it.TTR = SmoothTTR(cfg.Alpha, prev, interval)
	}
	it.Version++
	it.UpdatedAt = now
	return it.Version, it.TTR
}

// Fresh reports whether a cached entry may be served without validation
// under the given scheme at time now.
//
//   - None and PlainPush trust the cached copy (PlainPush relies on
//     invalidations having removed stale ones).
//   - PullEveryTime never trusts it.
//   - PushAdaptivePull trusts it until the TTR expiry.
func Fresh(s Scheme, e *cache.Entry, now float64) bool {
	switch s {
	case None, PlainPush:
		return true
	case PullEveryTime:
		return false
	case PushAdaptivePull:
		return now < e.TTRExpiry
	default:
		return true
	}
}
