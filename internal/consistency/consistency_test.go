package consistency

import (
	"math"
	"testing"
	"testing/quick"

	"precinct/internal/cache"
)

func TestSchemeStrings(t *testing.T) {
	for _, s := range []Scheme{None, PlainPush, PullEveryTime, PushAdaptivePull} {
		parsed, err := ParseScheme(s.String())
		if err != nil {
			t.Errorf("ParseScheme(%q): %v", s.String(), err)
		}
		if parsed != s {
			t.Errorf("round trip %v -> %v", s, parsed)
		}
	}
	if _, err := ParseScheme("bogus"); err == nil {
		t.Error("bogus scheme parsed")
	}
	if Scheme(42).String() != "scheme(42)" {
		t.Error("unknown scheme String")
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig(PushAdaptivePull).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Scheme: Scheme(-1), Alpha: 0.5, InitialTTR: 30},
		{Scheme: Scheme(9), Alpha: 0.5, InitialTTR: 30},
		{Scheme: PlainPush, Alpha: -0.1, InitialTTR: 30},
		{Scheme: PlainPush, Alpha: 1.0, InitialTTR: 30},
		{Scheme: PlainPush, Alpha: 0.5, InitialTTR: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestSmoothTTR(t *testing.T) {
	// Equation 2 with alpha=0.5: midpoint of prev and interval.
	if got := SmoothTTR(0.5, 100, 50); got != 75 {
		t.Errorf("SmoothTTR = %v, want 75", got)
	}
	// alpha=0: pure latest interval.
	if got := SmoothTTR(0, 100, 50); got != 50 {
		t.Errorf("SmoothTTR(alpha=0) = %v, want 50", got)
	}
}

func TestApplyUpdateBumpsVersion(t *testing.T) {
	cfg := DefaultConfig(PushAdaptivePull)
	it := &cache.StoredItem{Key: 1, TTR: cfg.InitialTTR}
	v1, _ := ApplyUpdate(it, 10, cfg)
	v2, _ := ApplyUpdate(it, 40, cfg)
	if v1 != 1 || v2 != 2 {
		t.Errorf("versions %d, %d; want 1, 2", v1, v2)
	}
	if it.UpdatedAt != 40 {
		t.Errorf("UpdatedAt = %v", it.UpdatedAt)
	}
}

func TestApplyUpdateTTRTracksIntervals(t *testing.T) {
	cfg := Config{Scheme: PushAdaptivePull, Alpha: 0.5, InitialTTR: 30}
	it := &cache.StoredItem{Key: 1, TTR: 30}
	// Updates every 10 seconds: TTR should converge toward 10.
	now := 0.0
	ApplyUpdate(it, now, cfg)
	for i := 0; i < 20; i++ {
		now += 10
		ApplyUpdate(it, now, cfg)
	}
	if math.Abs(it.TTR-10) > 1 {
		t.Errorf("TTR = %v, want ~10 after steady 10 s updates", it.TTR)
	}
}

func TestApplyUpdateFasterUpdatesShrinkTTR(t *testing.T) {
	cfg := Config{Scheme: PushAdaptivePull, Alpha: 0.5, InitialTTR: 30}
	slow := &cache.StoredItem{Key: 1, TTR: 30}
	fast := &cache.StoredItem{Key: 2, TTR: 30}
	nowS, nowF := 0.0, 0.0
	ApplyUpdate(slow, nowS, cfg)
	ApplyUpdate(fast, nowF, cfg)
	for i := 0; i < 10; i++ {
		nowS += 100
		nowF += 5
		ApplyUpdate(slow, nowS, cfg)
		ApplyUpdate(fast, nowF, cfg)
	}
	if fast.TTR >= slow.TTR {
		t.Errorf("frequently updated item TTR (%v) should be below rarely updated (%v)", fast.TTR, slow.TTR)
	}
}

func TestApplyUpdateNegativeIntervalClamped(t *testing.T) {
	cfg := DefaultConfig(PushAdaptivePull)
	it := &cache.StoredItem{Key: 1, TTR: 30, UpdatedAt: 100, Version: 3}
	// An update stamped "before" the last one (possible with reordered
	// delivery) must not produce a negative TTR.
	ApplyUpdate(it, 50, cfg)
	if it.TTR < 0 {
		t.Errorf("TTR went negative: %v", it.TTR)
	}
}

func TestApplyUpdateZeroTTRReseeded(t *testing.T) {
	cfg := Config{Scheme: PushAdaptivePull, Alpha: 0.5, InitialTTR: 30}
	it := &cache.StoredItem{Key: 1, TTR: 0, UpdatedAt: 10, Version: 1}
	ApplyUpdate(it, 20, cfg)
	if it.TTR <= 0 {
		t.Errorf("TTR not reseeded: %v", it.TTR)
	}
}

func TestFreshSemantics(t *testing.T) {
	e := &cache.Entry{TTRExpiry: 100}
	if !Fresh(None, e, 500) {
		t.Error("None must always trust the cache")
	}
	if !Fresh(PlainPush, e, 500) {
		t.Error("PlainPush trusts the cache (invalidation-based)")
	}
	if Fresh(PullEveryTime, e, 0) {
		t.Error("PullEveryTime must never trust the cache")
	}
	if !Fresh(PushAdaptivePull, e, 99) {
		t.Error("adaptive: fresh before TTR expiry")
	}
	if Fresh(PushAdaptivePull, e, 100) {
		t.Error("adaptive: stale at TTR expiry")
	}
}

// Property: SmoothTTR output always lies between its two inputs.
func TestSmoothTTRBounded(t *testing.T) {
	f := func(alphaRaw uint8, prevRaw, intervalRaw uint16) bool {
		alpha := float64(alphaRaw) / 256 // [0, 1)
		prev := float64(prevRaw)
		interval := float64(intervalRaw)
		got := SmoothTTR(alpha, prev, interval)
		lo, hi := math.Min(prev, interval), math.Max(prev, interval)
		return got >= lo-1e-9 && got <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: version is strictly monotone under ApplyUpdate.
func TestVersionMonotone(t *testing.T) {
	cfg := DefaultConfig(PushAdaptivePull)
	it := &cache.StoredItem{Key: 1, TTR: 30}
	var last uint64
	now := 0.0
	for i := 0; i < 100; i++ {
		now += 7
		v, _ := ApplyUpdate(it, now, cfg)
		if v != last+1 {
			t.Fatalf("version jumped %d -> %d", last, v)
		}
		last = v
	}
}
