// Package analysis implements the paper's Section 5 closed-form energy
// model: per-message broadcast and point-to-point costs (Equations 4–10)
// and the per-request energy of the flooding scheme (Equation 11) and of
// PReCinCt (Equation 13). The cmd/precinct-analysis tool and the Figure 9
// benchmarks print these curves next to the simulated ones.
package analysis

import (
	"fmt"
	"math"

	"precinct/internal/energy"
)

// Params are the network parameters entering the closed forms.
type Params struct {
	Model energy.Model
	// N is the number of nodes in the network.
	N int
	// AreaSide is the side of the square service area in meters.
	AreaSide float64
	// Range is the radio transmission range in meters.
	Range float64
	// Regions is the number of equal regions (PReCinCt only).
	Regions int
	// RequestBytes is the on-air size of a request/control message.
	RequestBytes int
	// ReplyBytes is the on-air size of the data response.
	ReplyBytes int
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if err := p.Model.Validate(); err != nil {
		return err
	}
	if p.N <= 0 {
		return fmt.Errorf("analysis: N must be positive, got %d", p.N)
	}
	if p.AreaSide <= 0 || p.Range <= 0 {
		return fmt.Errorf("analysis: area side and range must be positive")
	}
	if p.Regions <= 0 {
		return fmt.Errorf("analysis: regions must be positive, got %d", p.Regions)
	}
	if p.RequestBytes <= 0 || p.ReplyBytes <= 0 {
		return fmt.Errorf("analysis: message sizes must be positive")
	}
	return nil
}

// Density returns the node density delta = N/A (Equation 6).
func (p Params) Density() float64 {
	return float64(p.N) / (p.AreaSide * p.AreaSide)
}

// Zeta returns the expected number of nodes within transmission range of a
// sender (Equation 7): delta * pi * r².
func (p Params) Zeta() float64 {
	return p.Density() * math.Pi * p.Range * p.Range
}

// TotalBroadcast returns the total energy of one broadcast send plus its
// zeta receives (Equation 8), for a message of the given size.
func (p Params) TotalBroadcast(size int) float64 {
	return p.Model.BroadcastSend.Cost(size) + p.Zeta()*p.Model.BroadcastRecv.Cost(size)
}

// p2pHop is the energy of one point-to-point hop: a send plus the
// addressed receive (Equations 9 and 10).
func (p Params) p2pHop(size int) float64 {
	return p.Model.P2PSend.Cost(size) + p.Model.P2PRecv.Cost(size)
}

// Intermediates estimates I, the number of intermediate nodes between a
// random requester and the responder: the expected distance between two
// uniform points in the square (≈0.5214·side) divided by the range, minus
// the final hop, floored at zero.
func (p Params) Intermediates() float64 {
	const meanDistFactor = 0.5214 // E[dist] for a unit square
	hops := meanDistFactor * p.AreaSide / p.Range
	if hops < 1 {
		return 0
	}
	return hops - 1
}

// regionIntermediates estimates I for the region-routed legs of PReCinCt:
// the expected distance from a random point to a random region center.
// For equal grid partitions this is close to the global mean distance, so
// the same estimate applies.
func (p Params) regionIntermediates() float64 { return p.Intermediates() }

// NodesPerRegion returns n, the average number of nodes in a region.
func (p Params) NodesPerRegion() float64 {
	return float64(p.N) / float64(p.Regions)
}

// FloodingEnergy evaluates Equation 11: every node rebroadcasts the
// request once (N broadcasts with their receives), then the response
// travels back over I intermediate point-to-point hops.
func (p Params) FloodingEnergy() float64 {
	return float64(p.N)*p.TotalBroadcast(p.RequestBytes) +
		(p.Intermediates()+1)*p.p2pHop(p.ReplyBytes)
}

// PReCinCtEnergy evaluates Equation 13: the request travels I
// point-to-point hops to the home region, is flooded by the n nodes of
// that region, and the response travels I hops back.
func (p Params) PReCinCtEnergy() float64 {
	i := p.regionIntermediates()
	return (i+1)*p.p2pHop(p.RequestBytes) +
		p.NodesPerRegion()*p.TotalBroadcast(p.RequestBytes) +
		(i+1)*p.p2pHop(p.ReplyBytes)
}

// Point is one (x, y) sample of a theoretical curve.
type Point struct {
	X float64
	Y float64
}

// FloodingVsNodes returns Equation 11 evaluated over node counts — the
// theoretical series of Figure 9(a).
func FloodingVsNodes(base Params, nodes []int) ([]Point, error) {
	out := make([]Point, 0, len(nodes))
	for _, n := range nodes {
		p := base
		p.N = n
		if err := p.Validate(); err != nil {
			return nil, err
		}
		out = append(out, Point{X: float64(n), Y: p.FloodingEnergy()})
	}
	return out, nil
}

// PReCinCtVsNodes returns Equation 13 over node counts (Figure 9(a)).
func PReCinCtVsNodes(base Params, nodes []int) ([]Point, error) {
	out := make([]Point, 0, len(nodes))
	for _, n := range nodes {
		p := base
		p.N = n
		if err := p.Validate(); err != nil {
			return nil, err
		}
		out = append(out, Point{X: float64(n), Y: p.PReCinCtEnergy()})
	}
	return out, nil
}

// PReCinCtVsRegions returns Equation 13 over region counts (Figure 9(b)).
func PReCinCtVsRegions(base Params, regions []int) ([]Point, error) {
	out := make([]Point, 0, len(regions))
	for _, k := range regions {
		p := base
		p.Regions = k
		if err := p.Validate(); err != nil {
			return nil, err
		}
		out = append(out, Point{X: float64(k), Y: p.PReCinCtEnergy()})
	}
	return out, nil
}
