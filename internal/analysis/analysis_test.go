package analysis

import (
	"math"
	"testing"

	"precinct/internal/energy"
)

func baseParams() Params {
	return Params{
		Model:        energy.DefaultModel(),
		N:            40,
		AreaSide:     600,
		Range:        250,
		Regions:      9,
		RequestBytes: 128,
		ReplyBytes:   4096,
	}
}

func TestValidate(t *testing.T) {
	if err := baseParams().Validate(); err != nil {
		t.Fatal(err)
	}
	mutations := []func(*Params){
		func(p *Params) { p.N = 0 },
		func(p *Params) { p.AreaSide = 0 },
		func(p *Params) { p.Range = -1 },
		func(p *Params) { p.Regions = 0 },
		func(p *Params) { p.RequestBytes = 0 },
		func(p *Params) { p.ReplyBytes = -5 },
		func(p *Params) { p.Model = energy.Model{} },
	}
	for i, m := range mutations {
		p := baseParams()
		m(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestDensityAndZeta(t *testing.T) {
	p := baseParams()
	wantDensity := 40.0 / (600 * 600)
	if got := p.Density(); math.Abs(got-wantDensity) > 1e-15 {
		t.Errorf("Density = %v, want %v", got, wantDensity)
	}
	wantZeta := wantDensity * math.Pi * 250 * 250
	if got := p.Zeta(); math.Abs(got-wantZeta) > 1e-9 {
		t.Errorf("Zeta = %v, want %v", got, wantZeta)
	}
}

func TestTotalBroadcastEquation8(t *testing.T) {
	p := baseParams()
	m := p.Model
	want := m.BroadcastSend.Cost(128) + p.Zeta()*m.BroadcastRecv.Cost(128)
	if got := p.TotalBroadcast(128); math.Abs(got-want) > 1e-12 {
		t.Errorf("TotalBroadcast = %v, want %v", got, want)
	}
}

func TestIntermediatesScale(t *testing.T) {
	p := baseParams()
	// 600 m area, 250 m range: mean distance ~313 m => ~1.25 hops =>
	// ~0.25 intermediate nodes.
	i := p.Intermediates()
	if i < 0 || i > 1 {
		t.Errorf("Intermediates = %v, want small for 600 m area", i)
	}
	// Bigger area: more intermediates.
	p.AreaSide = 2400
	if p.Intermediates() <= i {
		t.Error("Intermediates should grow with area")
	}
	// Tiny area: zero.
	p.AreaSide = 100
	if p.Intermediates() != 0 {
		t.Errorf("Intermediates for tiny area = %v, want 0", p.Intermediates())
	}
}

func TestFloodingGrowsLinearlyInN(t *testing.T) {
	p := baseParams()
	p.N = 20
	e20 := p.FloodingEnergy()
	p.N = 80
	e80 := p.FloodingEnergy()
	// Broadcast term is O(N * zeta(N)) = O(N²): quadratic-ish growth;
	// at minimum it must grow superlinearly.
	if e80 < 4*e20 {
		t.Errorf("flooding energy grew too slowly: E(20)=%v E(80)=%v", e20, e80)
	}
}

func TestPReCinCtBeatsFloodingAtScale(t *testing.T) {
	// The paper's headline: PReCinCt consumes much less energy than
	// flooding, increasingly so with node count.
	for _, n := range []int{20, 40, 60, 80} {
		p := baseParams()
		p.N = n
		if p.PReCinCtEnergy() >= p.FloodingEnergy() {
			t.Errorf("N=%d: PReCinCt %v >= flooding %v", n, p.PReCinCtEnergy(), p.FloodingEnergy())
		}
	}
	// And the advantage grows with N.
	p20, p80 := baseParams(), baseParams()
	p20.N, p80.N = 20, 80
	r20 := p20.FloodingEnergy() / p20.PReCinCtEnergy()
	r80 := p80.FloodingEnergy() / p80.PReCinCtEnergy()
	if r80 <= r20 {
		t.Errorf("advantage should grow with N: ratio(20)=%v ratio(80)=%v", r20, r80)
	}
}

func TestPReCinCtDecreasesWithRegions(t *testing.T) {
	// Figure 9(b): more regions => smaller per-region floods => less
	// energy.
	p := baseParams()
	p.N = 20
	var prev float64 = math.Inf(1)
	for _, k := range []int{1, 4, 9, 16, 25} {
		p.Regions = k
		e := p.PReCinCtEnergy()
		if e >= prev {
			t.Errorf("energy did not decrease at %d regions: %v >= %v", k, e, prev)
		}
		prev = e
	}
}

func TestCurveHelpers(t *testing.T) {
	nodes := []int{20, 40, 60, 80}
	fl, err := FloodingVsNodes(baseParams(), nodes)
	if err != nil {
		t.Fatal(err)
	}
	pc, err := PReCinCtVsNodes(baseParams(), nodes)
	if err != nil {
		t.Fatal(err)
	}
	if len(fl) != 4 || len(pc) != 4 {
		t.Fatalf("curve lengths %d, %d", len(fl), len(pc))
	}
	for i := range fl {
		if fl[i].X != float64(nodes[i]) {
			t.Errorf("x value %v, want %d", fl[i].X, nodes[i])
		}
		if fl[i].Y <= pc[i].Y {
			t.Errorf("at N=%d flooding (%v) should exceed PReCinCt (%v)", nodes[i], fl[i].Y, pc[i].Y)
		}
	}
	regs, err := PReCinCtVsRegions(baseParams(), []int{1, 4, 9, 16, 25})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(regs); i++ {
		if regs[i].Y >= regs[i-1].Y {
			t.Errorf("region curve not decreasing at %v", regs[i].X)
		}
	}
	if _, err := FloodingVsNodes(baseParams(), []int{0}); err == nil {
		t.Error("invalid node count accepted")
	}
	if _, err := PReCinCtVsNodes(baseParams(), []int{-2}); err == nil {
		t.Error("invalid node count accepted")
	}
	if _, err := PReCinCtVsRegions(baseParams(), []int{0}); err == nil {
		t.Error("invalid region count accepted")
	}
}

func TestNodesPerRegion(t *testing.T) {
	p := baseParams()
	if got := p.NodesPerRegion(); math.Abs(got-40.0/9.0) > 1e-12 {
		t.Errorf("NodesPerRegion = %v", got)
	}
}
