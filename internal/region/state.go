package region

// Checkpoint support: the region table's full state is small and has no
// unserializable parts, so the snapshot carries it verbatim and the
// restore path rebuilds a Table from scratch rather than patching a
// rebuilt one — table version history can diverge arbitrarily from the
// initial partition (Separate/Merge/Add/Delete), so there is nothing to
// patch against.

import (
	"fmt"

	"precinct/internal/geo"
)

// TableState is the serializable state of one Table.
type TableState struct {
	Area    geo.Rect
	Regions []Region // sorted by ID
	NextID  ID
	Version uint64
	Voronoi bool
}

// State captures the table.
func (t *Table) State() TableState {
	st := TableState{
		Area:    t.area,
		Regions: make([]Region, len(t.regions)),
		NextID:  t.nextID,
		Version: t.version,
		Voronoi: t.voronoi,
	}
	copy(st.Regions, t.regions)
	return st
}

// FromState rebuilds a Table from a snapshot, validating the structural
// invariants so a corrupt snapshot cannot produce a malformed partition.
func FromState(st TableState) (*Table, error) {
	t := &Table{
		area:    st.Area,
		regions: make([]Region, len(st.Regions)),
		nextID:  st.NextID,
		version: st.Version,
		voronoi: st.Voronoi,
	}
	copy(t.regions, st.Regions)
	if err := t.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("region: snapshot table invalid: %w", err)
	}
	return t, nil
}
