package region

// Property tests for the k-replica ranking layer (DESIGN.md section 16):
// ReplicaRegionAt must agree with the original single-replica lookup at
// rank 1 (including ties), produce pairwise-distinct regions across
// ranks, and rank purely by (distance to the hash location, region ID) —
// so the placement is a pure function of the table and key, invariant
// under how the table was assembled.

import (
	"math/rand"
	"sort"
	"testing"

	"precinct/internal/geo"
	"precinct/internal/workload"
)

// rankTables builds the table shapes the ranking must hold on: grids of
// several granularities and a fuzzed Voronoi partition.
func rankTables(t *testing.T) map[string]*Table {
	t.Helper()
	out := map[string]*Table{}
	for _, n := range []int{2, 4, 9, 16} {
		tab, err := NewGridN(area1200, n)
		if err != nil {
			t.Fatal(err)
		}
		out[funcName("grid", n)] = tab
	}
	rng := rand.New(rand.NewSource(99))
	seeds := make([]geo.Point, 12)
	for i := range seeds {
		seeds[i] = geo.Pt(rng.Float64()*1200, rng.Float64()*1200)
	}
	vor, err := NewVoronoi(area1200, seeds)
	if err != nil {
		t.Fatal(err)
	}
	out["voronoi12"] = vor
	return out
}

func funcName(base string, n int) string {
	return base + string(rune('0'+n/10)) + string(rune('0'+n%10))
}

// TestReplicaRegionAtMatchesLegacyLookups pins the compatibility edge:
// rank 0 is the home region and rank 1 is the original replica region,
// key by key, on every table shape.
func TestReplicaRegionAtMatchesLegacyLookups(t *testing.T) {
	for name, tab := range rankTables(t) {
		for k := workload.Key(0); k < 500; k++ {
			home, ok := tab.HomeRegion(k)
			if !ok {
				t.Fatalf("%s: key %d has no home region", name, k)
			}
			r0, ok := tab.ReplicaRegionAt(k, 0)
			if !ok || r0.ID != home.ID {
				t.Fatalf("%s: key %d rank 0 = (%v, %v), home = %v", name, k, r0.ID, ok, home.ID)
			}
			rep, ok := tab.ReplicaRegion(k)
			if !ok {
				t.Fatalf("%s: key %d has no replica region", name, k)
			}
			r1, ok := tab.ReplicaRegionAt(k, 1)
			if !ok || r1.ID != rep.ID {
				t.Fatalf("%s: key %d rank 1 = (%v, %v), ReplicaRegion = %v", name, k, r1.ID, ok, rep.ID)
			}
		}
	}
}

// TestReplicaRegionAtRanking verifies the semantics directly: rank r is
// the (r+1)-th region in the full (distance², ID) ordering of region
// centers around the key's hash location, all served ranks are pairwise
// distinct, and out-of-range ranks report !ok.
func TestReplicaRegionAtRanking(t *testing.T) {
	for name, tab := range rankTables(t) {
		for k := workload.Key(0); k < 300; k++ {
			p := tab.HashLocation(k)
			// Reference ranking: sort all regions by (distance², ID).
			ref := append([]Region(nil), tab.Regions()...)
			sort.Slice(ref, func(i, j int) bool {
				di, dj := ref[i].Center().Dist2(p), ref[j].Center().Dist2(p)
				if di != dj {
					return di < dj
				}
				return ref[i].ID < ref[j].ID
			})
			maxServed := MaxReplicaRank
			if tab.Len()-1 < maxServed {
				maxServed = tab.Len() - 1
			}
			seen := map[ID]bool{}
			for r := 0; r <= maxServed; r++ {
				got, ok := tab.ReplicaRegionAt(k, r)
				if !ok {
					t.Fatalf("%s: key %d rank %d not served on a %d-region table", name, k, r, tab.Len())
				}
				if got.ID != ref[r].ID {
					t.Fatalf("%s: key %d rank %d = region %d, reference ranking says %d",
						name, k, r, int(got.ID), int(ref[r].ID))
				}
				if seen[got.ID] {
					t.Fatalf("%s: key %d rank %d repeats region %d", name, k, r, int(got.ID))
				}
				seen[got.ID] = true
			}
			for _, bad := range []int{-1, MaxReplicaRank + 1, tab.Len()} {
				if _, ok := tab.ReplicaRegionAt(k, bad); ok && (bad < 0 || bad > MaxReplicaRank || bad >= tab.Len()) {
					t.Fatalf("%s: key %d rank %d served, want rejected", name, k, bad)
				}
			}
		}
	}
}

// TestReplicaRegionAtSeedPermutationInvariance is the metamorphic half:
// a Voronoi table built from a permutation of the same seed points
// assigns every (key, rank) pair to the same region center — region IDs
// differ, geometry does not. This proves the ranking depends only on
// the partition's geometry, not on construction order.
func TestReplicaRegionAtSeedPermutationInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	seeds := make([]geo.Point, 10)
	for i := range seeds {
		seeds[i] = geo.Pt(rng.Float64()*1200, rng.Float64()*1200)
	}
	base, err := NewVoronoi(area1200, seeds)
	if err != nil {
		t.Fatal(err)
	}
	perm := make([]geo.Point, len(seeds))
	for i, j := range rng.Perm(len(seeds)) {
		perm[i] = seeds[j]
	}
	permuted, err := NewVoronoi(area1200, perm)
	if err != nil {
		t.Fatal(err)
	}
	for k := workload.Key(0); k < 400; k++ {
		for r := 0; r <= 4; r++ {
			a, okA := base.ReplicaRegionAt(k, r)
			b, okB := permuted.ReplicaRegionAt(k, r)
			if okA != okB {
				t.Fatalf("key %d rank %d: served=%v on base, %v on permuted", k, r, okA, okB)
			}
			if !okA {
				continue
			}
			if a.Center() != b.Center() {
				t.Fatalf("key %d rank %d: center %v on base, %v after seed permutation",
					k, r, a.Center(), b.Center())
			}
		}
	}
}

// TestReplicaRegionAtStableUnderClone guards custody recomputability: a
// cloned table must rank identically to its original for every key and
// rank, so rank-r custodians survive the table versioning that region
// operations (Separate/Merge/Add/Delete) go through.
func TestReplicaRegionAtStableUnderClone(t *testing.T) {
	tab, err := NewGridN(area1200, 9)
	if err != nil {
		t.Fatal(err)
	}
	clone := tab.Clone()
	for k := workload.Key(0); k < 300; k++ {
		for r := 0; r <= MaxReplicaRank; r++ {
			a, okA := tab.ReplicaRegionAt(k, r)
			b, okB := clone.ReplicaRegionAt(k, r)
			if okA != okB || (okA && a.ID != b.ID) {
				t.Fatalf("key %d rank %d: (%v,%v) on original, (%v,%v) on clone",
					k, r, a.ID, okA, b.ID, okB)
			}
		}
	}
}
