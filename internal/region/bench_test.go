package region

import (
	"testing"

	"precinct/internal/geo"
	"precinct/internal/workload"
)

func BenchmarkHomeRegion(b *testing.B) {
	tab, err := NewGrid(geo.NewRect(geo.Pt(0, 0), geo.Pt(1200, 1200)), 3, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.HomeRegion(workload.Key(i % 1000))
	}
}

func BenchmarkReplicaRegion(b *testing.B) {
	tab, err := NewGrid(geo.NewRect(geo.Pt(0, 0), geo.Pt(1200, 1200)), 5, 5)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.ReplicaRegion(workload.Key(i % 1000))
	}
}

func BenchmarkLocate(b *testing.B) {
	tab, err := NewGrid(geo.NewRect(geo.Pt(0, 0), geo.Pt(1200, 1200)), 3, 3)
	if err != nil {
		b.Fatal(err)
	}
	pts := make([]geo.Point, 64)
	for i := range pts {
		pts[i] = geo.Pt(float64(i*17%1200), float64(i*31%1200))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Locate(pts[i%len(pts)])
	}
}
