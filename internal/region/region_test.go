package region

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"precinct/internal/geo"
	"precinct/internal/workload"
)

var area1200 = geo.NewRect(geo.Pt(0, 0), geo.Pt(1200, 1200))

func grid3x3(t *testing.T) *Table {
	t.Helper()
	tab, err := NewGrid(area1200, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestNewGridValidation(t *testing.T) {
	if _, err := NewGrid(area1200, 0, 3); err == nil {
		t.Error("0 rows accepted")
	}
	if _, err := NewGrid(area1200, 3, -1); err == nil {
		t.Error("negative cols accepted")
	}
	bad := geo.NewRect(geo.Pt(0, 0), geo.Pt(0, 10))
	if _, err := NewGrid(bad, 2, 2); err == nil {
		t.Error("degenerate area accepted")
	}
}

func TestNewGridLayout(t *testing.T) {
	tab := grid3x3(t)
	if tab.Len() != 9 {
		t.Fatalf("Len = %d, want 9", tab.Len())
	}
	// Every region is 400x400 and they tile the area.
	var total float64
	for _, r := range tab.Regions() {
		if math.Abs(r.Bounds.Width()-400) > 1e-9 || math.Abs(r.Bounds.Height()-400) > 1e-9 {
			t.Errorf("region %v not 400x400", r)
		}
		total += r.Bounds.Area()
	}
	if math.Abs(total-area1200.Area()) > 1e-6 {
		t.Errorf("regions do not tile area: %v vs %v", total, area1200.Area())
	}
	if tab.Version() != 0 {
		t.Errorf("fresh table version = %d", tab.Version())
	}
}

func TestNewGridN(t *testing.T) {
	for _, n := range []int{1, 4, 9, 16, 25} {
		tab, err := NewGridN(area1200, n)
		if err != nil {
			t.Fatal(err)
		}
		if tab.Len() != n {
			t.Errorf("NewGridN(%d) has %d regions", n, tab.Len())
		}
	}
	// Non-square composite: 6 = 2x3.
	tab, err := NewGridN(area1200, 6)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 6 {
		t.Errorf("NewGridN(6) has %d regions", tab.Len())
	}
	if _, err := NewGridN(area1200, 0); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestLocate(t *testing.T) {
	tab := grid3x3(t)
	r, ok := tab.Locate(geo.Pt(50, 50))
	if !ok {
		t.Fatal("Locate failed")
	}
	if !r.Bounds.Contains(geo.Pt(50, 50)) {
		t.Errorf("located region %v does not contain the point", r)
	}
	// Point outside the area falls back to the nearest center.
	r2, ok := tab.Locate(geo.Pt(-500, -500))
	if !ok {
		t.Fatal("Locate outside area failed")
	}
	if !r2.Center().Equal(geo.Pt(200, 200)) {
		t.Errorf("outside point mapped to %v, want the corner region", r2)
	}
}

func TestRegionLookup(t *testing.T) {
	tab := grid3x3(t)
	r, ok := tab.Region(ID(4))
	if !ok || r.ID != 4 {
		t.Fatalf("Region(4) = %v, %v", r, ok)
	}
	if _, ok := tab.Region(ID(99)); ok {
		t.Error("unknown region found")
	}
}

func TestHashLocationInArea(t *testing.T) {
	tab := grid3x3(t)
	for k := workload.Key(0); k < 2000; k++ {
		p := tab.HashLocation(k)
		if !tab.Area().Contains(p) {
			t.Fatalf("key %d hashed outside area: %v", k, p)
		}
	}
}

func TestHashLocationUniformAcrossRegions(t *testing.T) {
	tab := grid3x3(t)
	counts := make(map[ID]int)
	const keys = 9000
	for k := workload.Key(0); k < keys; k++ {
		h, ok := tab.HomeRegion(k)
		if !ok {
			t.Fatal("HomeRegion failed")
		}
		counts[h.ID]++
	}
	for id, c := range counts {
		frac := float64(c) / keys
		if frac < 0.05 || frac > 0.20 { // expected 1/9 ≈ 0.111
			t.Errorf("region %d holds %.3f of keys; hash badly skewed", int(id), frac)
		}
	}
}

func TestHomeRegionIsNearestCenter(t *testing.T) {
	tab := grid3x3(t)
	for k := workload.Key(0); k < 500; k++ {
		loc := tab.HashLocation(k)
		home, _ := tab.HomeRegion(k)
		for _, r := range tab.Regions() {
			if r.Center().Dist2(loc) < home.Center().Dist2(loc)-1e-9 {
				t.Fatalf("key %d: region %v closer than home %v", k, r, home)
			}
		}
	}
}

func TestReplicaRegionIsSecondNearest(t *testing.T) {
	tab := grid3x3(t)
	for k := workload.Key(0); k < 500; k++ {
		loc := tab.HashLocation(k)
		home, _ := tab.HomeRegion(k)
		rep, ok := tab.ReplicaRegion(k)
		if !ok {
			t.Fatal("ReplicaRegion failed")
		}
		if rep.ID == home.ID {
			t.Fatalf("key %d: replica equals home", k)
		}
		// dist(home) <= dist(replica) <= dist(any other region)
		if home.Center().Dist2(loc) > rep.Center().Dist2(loc)+1e-9 {
			t.Fatalf("key %d: home farther than replica", k)
		}
		for _, r := range tab.Regions() {
			if r.ID == home.ID || r.ID == rep.ID {
				continue
			}
			if r.Center().Dist2(loc) < rep.Center().Dist2(loc)-1e-9 {
				t.Fatalf("key %d: region %v closer than replica %v", k, r, rep)
			}
		}
	}
}

func TestReplicaRegionSingleRegionTable(t *testing.T) {
	tab, _ := NewGrid(area1200, 1, 1)
	if _, ok := tab.ReplicaRegion(workload.Key(1)); ok {
		t.Error("single-region table produced a replica region")
	}
}

func TestHashStableUnderPartitionChange(t *testing.T) {
	// The hash location must not depend on the partition (only the
	// home-region mapping does).
	a, _ := NewGrid(area1200, 3, 3)
	b, _ := NewGrid(area1200, 5, 5)
	for k := workload.Key(0); k < 200; k++ {
		if !a.HashLocation(k).Equal(b.HashLocation(k)) {
			t.Fatalf("key %d hash location depends on partition", k)
		}
	}
}

func TestAdd(t *testing.T) {
	tab := grid3x3(t)
	v := tab.Version()
	r, err := tab.Add(geo.NewRect(geo.Pt(1200, 0), geo.Pt(1600, 400)))
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 10 {
		t.Errorf("Len after Add = %d", tab.Len())
	}
	if tab.Version() != v+1 {
		t.Error("Add did not bump version")
	}
	if !tab.Area().Contains(geo.Pt(1500, 100)) {
		t.Error("Add did not expand the service area")
	}
	if _, ok := tab.Region(r.ID); !ok {
		t.Error("added region not found")
	}
	if _, err := tab.Add(geo.NewRect(geo.Pt(0, 0), geo.Pt(0, 10))); err == nil {
		t.Error("degenerate Add accepted")
	}
}

func TestDelete(t *testing.T) {
	tab := grid3x3(t)
	v := tab.Version()
	if err := tab.Delete(ID(4)); err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 8 {
		t.Errorf("Len after Delete = %d", tab.Len())
	}
	if _, ok := tab.Region(ID(4)); ok {
		t.Error("deleted region still present")
	}
	if tab.Version() != v+1 {
		t.Error("Delete did not bump version")
	}
	if err := tab.Delete(ID(4)); err == nil {
		t.Error("double Delete accepted")
	}
	// Keys that hashed to region 4 now map elsewhere.
	for k := workload.Key(0); k < 500; k++ {
		h, _ := tab.HomeRegion(k)
		if h.ID == 4 {
			t.Fatalf("key %d still maps to deleted region", k)
		}
	}
}

func TestDeleteLastRegionRefused(t *testing.T) {
	tab, _ := NewGrid(area1200, 1, 1)
	if err := tab.Delete(tab.Regions()[0].ID); err == nil {
		t.Error("deleting the last region accepted")
	}
}

func TestMergeAdjacent(t *testing.T) {
	tab := grid3x3(t)
	// Regions 0 and 1 are horizontally adjacent in the bottom row.
	v := tab.Version()
	merged, err := tab.Merge(ID(0), ID(1))
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 8 {
		t.Errorf("Len after Merge = %d", tab.Len())
	}
	if math.Abs(merged.Bounds.Width()-800) > 1e-9 || math.Abs(merged.Bounds.Height()-400) > 1e-9 {
		t.Errorf("merged bounds %v", merged.Bounds)
	}
	if tab.Version() != v+1 {
		t.Error("Merge did not bump version")
	}
	if _, ok := tab.Region(ID(0)); ok {
		t.Error("merged-away region still present")
	}
}

func TestMergeNonAdjacentRefused(t *testing.T) {
	tab := grid3x3(t)
	// 0 (bottom-left) and 8 (top-right) do not tile their union.
	if _, err := tab.Merge(ID(0), ID(8)); err == nil {
		t.Error("non-adjacent Merge accepted")
	}
	// Diagonal neighbors 0 and 4 likewise.
	if _, err := tab.Merge(ID(0), ID(4)); err == nil {
		t.Error("diagonal Merge accepted")
	}
	if _, err := tab.Merge(ID(0), ID(0)); err == nil {
		t.Error("self Merge accepted")
	}
	if _, err := tab.Merge(ID(0), ID(77)); err == nil {
		t.Error("Merge with unknown region accepted")
	}
}

func TestSeparate(t *testing.T) {
	tab := grid3x3(t)
	v := tab.Version()
	r1, r2, err := tab.Separate(ID(0))
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 10 {
		t.Errorf("Len after Separate = %d", tab.Len())
	}
	if tab.Version() != v+1 {
		t.Error("Separate did not bump version")
	}
	// The halves tile the original region 0 (0,0)-(400,400).
	u := r1.Bounds.Union(r2.Bounds)
	if !u.Min.Equal(geo.Pt(0, 0)) || !u.Max.Equal(geo.Pt(400, 400)) {
		t.Errorf("halves %v + %v do not cover the original", r1, r2)
	}
	if math.Abs(r1.Bounds.Area()-r2.Bounds.Area()) > 1e-9 {
		t.Error("halves are not equal area")
	}
	if _, _, err := tab.Separate(ID(0)); err == nil {
		t.Error("Separate of vanished region accepted")
	}
}

func TestSeparateTallRegionSplitsVertically(t *testing.T) {
	tab, _ := NewGrid(geo.NewRect(geo.Pt(0, 0), geo.Pt(100, 400)), 1, 1)
	r1, r2, err := tab.Separate(tab.Regions()[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Bounds.Height() != 200 || r2.Bounds.Height() != 200 {
		t.Errorf("tall region not split along height: %v %v", r1, r2)
	}
}

func TestMergeThenSeparateRoundTrip(t *testing.T) {
	tab := grid3x3(t)
	merged, err := tab.Merge(ID(0), ID(1))
	if err != nil {
		t.Fatal(err)
	}
	r1, r2, err := tab.Separate(merged.ID)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 9 {
		t.Errorf("Len after round trip = %d", tab.Len())
	}
	// Splitting the 800x400 merged region along its longer axis
	// restores two 400x400 cells.
	for _, r := range []Region{r1, r2} {
		if math.Abs(r.Bounds.Width()-400) > 1e-9 || math.Abs(r.Bounds.Height()-400) > 1e-9 {
			t.Errorf("round-trip region %v not 400x400", r)
		}
	}
}

func TestClone(t *testing.T) {
	tab := grid3x3(t)
	cp := tab.Clone()
	if _, err := cp.Add(geo.NewRect(geo.Pt(1200, 0), geo.Pt(1600, 400))); err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 9 {
		t.Error("mutating clone changed original")
	}
	if cp.Version() == tab.Version() {
		t.Error("clone version not independent")
	}
}

func TestRegionDistance(t *testing.T) {
	tab := grid3x3(t)
	// Regions 0 and 2 are two cells apart horizontally: centers at
	// (200,200) and (1000,200).
	if got := tab.RegionDistance(ID(0), ID(2)); math.Abs(got-800) > 1e-9 {
		t.Errorf("RegionDistance = %v, want 800", got)
	}
	if got := tab.RegionDistance(ID(0), ID(0)); got != 0 {
		t.Errorf("self distance = %v", got)
	}
	if got := tab.RegionDistance(ID(0), ID(99)); got != 0 {
		t.Errorf("unknown region distance = %v", got)
	}
}

// Property: every key has exactly one home region, stable across calls,
// and home != replica.
func TestHomeReplicaProperty(t *testing.T) {
	tab := grid3x3(t)
	f := func(kRaw uint16) bool {
		k := workload.Key(kRaw)
		h1, ok1 := tab.HomeRegion(k)
		h2, ok2 := tab.HomeRegion(k)
		rep, ok3 := tab.ReplicaRegion(k)
		return ok1 && ok2 && ok3 && h1.ID == h2.ID && h1.ID != rep.ID
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: after any sequence of Separate operations, active regions
// still tile the (original) service area.
func TestSeparatePreservesTiling(t *testing.T) {
	tab := grid3x3(t)
	ids := []ID{0, 5, 8}
	for _, id := range ids {
		if _, _, err := tab.Separate(id); err != nil {
			t.Fatal(err)
		}
	}
	var total float64
	for _, r := range tab.Regions() {
		total += r.Bounds.Area()
	}
	if math.Abs(total-area1200.Area()) > 1e-6 {
		t.Errorf("separated regions do not tile the area: %v", total)
	}
}

func TestNewVoronoiValidation(t *testing.T) {
	if _, err := NewVoronoi(area1200, []geo.Point{geo.Pt(1, 1)}); err == nil {
		t.Error("single seed accepted")
	}
	if _, err := NewVoronoi(area1200, []geo.Point{geo.Pt(1, 1), geo.Pt(9999, 0)}); err == nil {
		t.Error("out-of-area seed accepted")
	}
	bad := geo.NewRect(geo.Pt(0, 0), geo.Pt(0, 5))
	if _, err := NewVoronoi(bad, []geo.Point{geo.Pt(0, 1), geo.Pt(0, 2)}); err == nil {
		t.Error("degenerate area accepted")
	}
}

func TestVoronoiLocateAndContains(t *testing.T) {
	seeds := []geo.Point{geo.Pt(200, 200), geo.Pt(1000, 200), geo.Pt(600, 1000)}
	tab, err := NewVoronoi(area1200, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if !tab.Voronoi() {
		t.Fatal("Voronoi() false")
	}
	if tab.Len() != 3 {
		t.Fatalf("Len = %d", tab.Len())
	}
	// A point near each seed belongs to that seed's region, exclusively.
	for i, seed := range seeds {
		r, ok := tab.Locate(seed.Add(geo.Pt(10, 10)))
		if !ok || int(r.ID) != i {
			t.Errorf("point near seed %d located in region %v", i, r.ID)
		}
		for j := range seeds {
			want := j == i
			if got := tab.Contains(ID(j), seed); got != want {
				t.Errorf("Contains(%d, seed %d) = %v", j, i, got)
			}
		}
	}
	// Centers are the seeds themselves.
	for i, seed := range seeds {
		r, _ := tab.Region(ID(i))
		if !r.Center().Equal(seed) {
			t.Errorf("region %d center %v != seed %v", i, r.Center(), seed)
		}
	}
}

func TestVoronoiEveryPointHasExactlyOneRegion(t *testing.T) {
	seeds := []geo.Point{geo.Pt(100, 100), geo.Pt(900, 300), geo.Pt(400, 1100), geo.Pt(1100, 1000)}
	tab, _ := NewVoronoi(area1200, seeds)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 500; i++ {
		p := geo.Pt(rng.Float64()*1200, rng.Float64()*1200)
		owners := 0
		for _, r := range tab.Regions() {
			if tab.Contains(r.ID, p) {
				owners++
			}
		}
		if owners != 1 {
			t.Fatalf("point %v has %d owners", p, owners)
		}
	}
}

func TestVoronoiRejectsGridOnlyOps(t *testing.T) {
	tab, _ := NewVoronoi(area1200, []geo.Point{geo.Pt(100, 100), geo.Pt(900, 900)})
	if _, err := tab.Add(geo.NewRect(geo.Pt(0, 0), geo.Pt(10, 10))); err == nil {
		t.Error("Add accepted on voronoi table")
	}
	if _, err := tab.Merge(ID(0), ID(1)); err == nil {
		t.Error("Merge accepted on voronoi table")
	}
	if _, _, err := tab.Separate(ID(0)); err == nil {
		t.Error("Separate accepted on voronoi table")
	}
	// Delete still works (remove a seed).
	if err := tab.Delete(ID(0)); err != nil {
		t.Errorf("Delete on voronoi table: %v", err)
	}
}

func TestVoronoiHomeAndReplicaRegions(t *testing.T) {
	seeds := []geo.Point{geo.Pt(100, 100), geo.Pt(900, 300), geo.Pt(400, 1100)}
	tab, _ := NewVoronoi(area1200, seeds)
	for k := workload.Key(0); k < 200; k++ {
		home, ok := tab.HomeRegion(k)
		if !ok {
			t.Fatal("no home region")
		}
		rep, ok := tab.ReplicaRegion(k)
		if !ok || rep.ID == home.ID {
			t.Fatalf("key %d: replica %v vs home %v", k, rep.ID, home.ID)
		}
	}
}

func TestVoronoiCloneKeepsGeometry(t *testing.T) {
	tab, _ := NewVoronoi(area1200, []geo.Point{geo.Pt(100, 100), geo.Pt(900, 900)})
	cp := tab.Clone()
	if !cp.Voronoi() {
		t.Error("clone lost voronoi geometry")
	}
}
