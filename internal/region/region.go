// Package region implements PReCinCt's region layer: the partition of the
// service area into geographic regions, the region table every peer
// carries, the geographic hash mapping each data key to a location — and
// through it to a home region (nearest region center) and a replica
// region (second nearest) — and the four table-maintenance operations the
// paper defines: Add, Delete, Merge and Separate.
//
// The table is versioned: every mutation bumps the version, which is what
// peers disseminate so that key relocation can be triggered when the
// partition changes.
package region

import (
	"fmt"
	"sort"

	"precinct/internal/geo"
	"precinct/internal/workload"
)

// ID identifies a region. IDs are never reused after Delete/Merge.
type ID int

// Invalid is the zero-ish sentinel for "no region".
const Invalid ID = -1

// Region is one geographic region: its identity and bounds. The paper
// represents a region by its center and perimeter vertices; axis-aligned
// rectangles carry the same information for grid partitions.
type Region struct {
	ID     ID
	Bounds geo.Rect
}

// Center returns the region's center point — the target of region-routed
// messages and the reference for the nearest-center hash.
func (r Region) Center() geo.Point { return r.Bounds.Center() }

// String implements fmt.Stringer.
func (r Region) String() string {
	return fmt.Sprintf("R%d%v", int(r.ID), r.Bounds)
}

// Table is the region table each peer keeps. One run typically shares a
// single table across peers (the paper assumes dissemination keeps them
// consistent); Clone supports testing divergence.
//
// Two partition geometries are supported: rectangular grids (regions own
// their Bounds; the default) and Voronoi partitions (a point belongs to
// the region with the nearest center — the paper's "region whose center
// location is closest"). Merge/Separate apply only to rectangular
// partitions.
type Table struct {
	area    geo.Rect
	regions []Region // sorted by ID
	nextID  ID
	version uint64
	voronoi bool
}

// NewGrid partitions the area into rows×cols equal regions — the paper's
// default layout ("divided into equal sized regions", default 9 regions =
// 3×3).
func NewGrid(area geo.Rect, rows, cols int) (*Table, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("region: grid must be at least 1x1, got %dx%d", rows, cols)
	}
	if area.Width() <= 0 || area.Height() <= 0 {
		return nil, fmt.Errorf("region: degenerate area %v", area)
	}
	t := &Table{area: area}
	cw := area.Width() / float64(cols)
	chh := area.Height() / float64(rows)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			min := geo.Pt(area.Min.X+float64(c)*cw, area.Min.Y+float64(r)*chh)
			max := geo.Pt(area.Min.X+float64(c+1)*cw, area.Min.Y+float64(r+1)*chh)
			t.regions = append(t.regions, Region{ID: t.nextID, Bounds: geo.NewRect(min, max)})
			t.nextID++
		}
	}
	return t, nil
}

// NewVoronoi partitions the area into the Voronoi cells of the given
// seed points: every location belongs to the region whose center (seed)
// is nearest. Region bounds are stored as the full area; containment
// must go through Table.Contains. At least two seeds are required.
func NewVoronoi(area geo.Rect, seeds []geo.Point) (*Table, error) {
	if len(seeds) < 2 {
		return nil, fmt.Errorf("region: voronoi partition needs at least two seeds, got %d", len(seeds))
	}
	if area.Width() <= 0 || area.Height() <= 0 {
		return nil, fmt.Errorf("region: degenerate area %v", area)
	}
	t := &Table{area: area, voronoi: true}
	for _, seed := range seeds {
		if !area.Contains(seed) {
			return nil, fmt.Errorf("region: voronoi seed %v outside area %v", seed, area)
		}
		c := seed // center encoded via a degenerate anchor below
		t.regions = append(t.regions, Region{
			ID: t.nextID,
			// A zero-area rect at the seed makes Center() return the
			// seed itself; spatial extent is defined by Contains.
			Bounds: geo.NewRect(c, c),
		})
		t.nextID++
	}
	return t, nil
}

// Voronoi reports whether the table is a Voronoi partition.
func (t *Table) Voronoi() bool { return t.voronoi }

// Contains reports whether the point belongs to the region: inside its
// bounds for grid partitions, nearest-center for Voronoi partitions.
func (t *Table) Contains(id ID, p geo.Point) bool {
	if t.voronoi {
		return t.nearestCenter(p, Invalid).ID == id
	}
	r, ok := t.Region(id)
	return ok && r.Bounds.Contains(p)
}

// NewGridN partitions the area into approximately n equal regions using
// the squarest rows×cols factorization with rows*cols >= n... it actually
// uses the smallest square grid holding n and trims nothing, yielding
// ceil(sqrt(n))² regions when n is not a perfect square. Scenario code
// that sweeps "number of regions" (Figure 9b) passes perfect squares.
func NewGridN(area geo.Rect, n int) (*Table, error) {
	if n <= 0 {
		return nil, fmt.Errorf("region: need at least one region, got %d", n)
	}
	side := 1
	for side*side < n {
		side++
	}
	if side*side != n {
		// Try a rectangular factorization first.
		for r := side; r >= 1; r-- {
			if n%r == 0 {
				return NewGrid(area, r, n/r)
			}
		}
	}
	return NewGrid(area, side, side)
}

// Area returns the full service area.
func (t *Table) Area() geo.Rect { return t.area }

// Len returns the number of active regions.
func (t *Table) Len() int { return len(t.regions) }

// Version returns the table version; it increases on every mutation.
func (t *Table) Version() uint64 { return t.version }

// Regions returns a copy of the active regions, sorted by ID.
func (t *Table) Regions() []Region {
	out := make([]Region, len(t.regions))
	copy(out, t.regions)
	return out
}

// Region looks a region up by ID.
func (t *Table) Region(id ID) (Region, bool) {
	i := t.indexOf(id)
	if i < 0 {
		return Region{}, false
	}
	return t.regions[i], true
}

func (t *Table) indexOf(id ID) int {
	i := sort.Search(len(t.regions), func(i int) bool { return t.regions[i].ID >= id })
	if i < len(t.regions) && t.regions[i].ID == id {
		return i
	}
	return -1
}

// Locate returns the region containing the point. Grid partitions use
// bounds (lowest ID wins on transient overlap after Add; points outside
// every region fall back to the nearest center so that nodes that wander
// off the partition still have a home); Voronoi partitions are
// nearest-center by definition.
func (t *Table) Locate(p geo.Point) (Region, bool) {
	if len(t.regions) == 0 {
		return Region{}, false
	}
	if t.voronoi {
		return t.nearestCenter(p, Invalid), true
	}
	for _, r := range t.regions {
		if r.Bounds.Contains(p) {
			return r, true
		}
	}
	return t.nearestCenter(p, Invalid), true
}

// nearestCenter returns the region whose center is closest to p,
// excluding the given ID (pass Invalid to exclude none). Ties break to
// the lower ID.
func (t *Table) nearestCenter(p geo.Point, exclude ID) Region {
	best := Region{ID: Invalid}
	bestD := 0.0
	for _, r := range t.regions {
		if r.ID == exclude {
			continue
		}
		d := r.Center().Dist2(p)
		if best.ID == Invalid || d < bestD {
			best, bestD = r, d
		}
	}
	return best
}

// HashLocation maps a key to its geographic hash location inside the
// service area. The mapping is uniform, deterministic and independent of
// the partition, exactly as a geographic hash table requires.
func (t *Table) HashLocation(k workload.Key) geo.Point {
	h := workload.KeyHash(k)
	fx := float64(uint32(h)) / float64(1<<32)
	fy := float64(uint32(h>>32)) / float64(1<<32)
	return geo.Pt(t.area.Min.X+fx*t.area.Width(), t.area.Min.Y+fy*t.area.Height())
}

// HomeRegion returns the region responsible for the key: the one whose
// center is closest to the key's hash location.
func (t *Table) HomeRegion(k workload.Key) (Region, bool) {
	if len(t.regions) == 0 {
		return Region{}, false
	}
	return t.nearestCenter(t.HashLocation(k), Invalid), true
}

// ReplicaRegion returns the key's replica region: the second-closest
// center to the hash location. ok is false when the table has fewer than
// two regions.
func (t *Table) ReplicaRegion(k workload.Key) (Region, bool) {
	if len(t.regions) < 2 {
		return Region{}, false
	}
	home := t.nearestCenter(t.HashLocation(k), Invalid)
	return t.nearestCenter(t.HashLocation(k), home.ID), true
}

// MaxReplicaRank bounds the replica rank ReplicaRegionAt serves. It
// exists to keep the rank-selection scratch allocation-free; the node
// layer caps Config.Replicas to it.
const MaxReplicaRank = 8

// ReplicaRegionAt returns the key's rank-r region: rank 0 is the home
// region (nearest center to the hash location), rank r ≥ 1 the (r+1)-th
// nearest center — so ReplicaRegionAt(k, 1) equals ReplicaRegion(k),
// including on ties (the full ranking orders by (distance, ID)). The
// ranking is a pure function of the table and the key, so custody of a
// rank-r copy stays recomputable after table changes exactly like the
// home region. ok is false for negative ranks, ranks above
// MaxReplicaRank, and ranks the table is too small for.
func (t *Table) ReplicaRegionAt(k workload.Key, rank int) (Region, bool) {
	if rank < 0 || rank > MaxReplicaRank || rank >= len(t.regions) {
		return Region{}, false
	}
	p := t.HashLocation(k)
	if rank == 0 {
		return t.nearestCenter(p, Invalid), true
	}
	var excl [MaxReplicaRank]ID
	var cur Region
	for i := 0; i <= rank; i++ {
		cur = t.nearestCenterExcluding(p, excl[:i])
		if i < MaxReplicaRank {
			excl[i] = cur.ID
		}
	}
	return cur, true
}

// nearestCenterExcluding is nearestCenter over an exclusion set: the
// region whose center is closest to p among those not listed. Ties break
// to the lower ID. The caller guarantees at least one region remains.
func (t *Table) nearestCenterExcluding(p geo.Point, exclude []ID) Region {
	best := Region{ID: Invalid}
	bestD := 0.0
	for _, r := range t.regions {
		skip := false
		for _, id := range exclude {
			if r.ID == id {
				skip = true
				break
			}
		}
		if skip {
			continue
		}
		d := r.Center().Dist2(p)
		if best.ID == Invalid || d < bestD {
			best, bestD = r, d
		}
	}
	return best
}

// Add inserts a new region with the given bounds, expanding the service
// area if needed, and returns it.
func (t *Table) Add(bounds geo.Rect) (Region, error) {
	if t.voronoi {
		return Region{}, fmt.Errorf("region: Add is not defined for voronoi partitions")
	}
	if bounds.Width() <= 0 || bounds.Height() <= 0 {
		return Region{}, fmt.Errorf("region: Add with degenerate bounds %v", bounds)
	}
	r := Region{ID: t.nextID, Bounds: bounds}
	t.nextID++
	t.regions = append(t.regions, r) // nextID is monotone, so order by ID is kept
	t.area = t.area.Union(bounds)
	t.version++
	return r, nil
}

// Delete removes a region from the table.
func (t *Table) Delete(id ID) error {
	i := t.indexOf(id)
	if i < 0 {
		return fmt.Errorf("region: Delete of unknown region %d", int(id))
	}
	if len(t.regions) == 1 {
		return fmt.Errorf("region: cannot delete the last region")
	}
	t.regions = append(t.regions[:i], t.regions[i+1:]...)
	t.version++
	return nil
}

// Merge replaces two adjacent regions with one region covering both;
// rectangular partitions only. The
// regions must tile their union exactly (no gaps, no overlap beyond the
// shared edge), otherwise the merged rectangle would claim territory
// belonging to other regions.
func (t *Table) Merge(a, b ID) (Region, error) {
	if t.voronoi {
		return Region{}, fmt.Errorf("region: Merge is not defined for voronoi partitions")
	}
	ia, ib := t.indexOf(a), t.indexOf(b)
	if ia < 0 || ib < 0 {
		return Region{}, fmt.Errorf("region: Merge of unknown region (%d, %d)", int(a), int(b))
	}
	if a == b {
		return Region{}, fmt.Errorf("region: Merge of region %d with itself", int(a))
	}
	ra, rb := t.regions[ia], t.regions[ib]
	u := ra.Bounds.Union(rb.Bounds)
	if diff := u.Area() - (ra.Bounds.Area() + rb.Bounds.Area()); diff > 1e-6*u.Area() {
		return Region{}, fmt.Errorf("region: %v and %v do not tile their union; cannot merge", ra, rb)
	}
	merged := Region{ID: t.nextID, Bounds: u}
	t.nextID++
	// Remove both (higher index first), then append.
	if ia < ib {
		ia, ib = ib, ia
	}
	t.regions = append(t.regions[:ia], t.regions[ia+1:]...)
	t.regions = append(t.regions[:ib], t.regions[ib+1:]...)
	t.regions = append(t.regions, merged)
	t.version++
	return merged, nil
}

// Separate splits a region into two halves along its longer axis and
// returns the two new regions.
func (t *Table) Separate(id ID) (Region, Region, error) {
	if t.voronoi {
		return Region{}, Region{}, fmt.Errorf("region: Separate is not defined for voronoi partitions")
	}
	i := t.indexOf(id)
	if i < 0 {
		return Region{}, Region{}, fmt.Errorf("region: Separate of unknown region %d", int(id))
	}
	old := t.regions[i]
	var b1, b2 geo.Rect
	if old.Bounds.Width() >= old.Bounds.Height() {
		mid := old.Bounds.Min.X + old.Bounds.Width()/2
		b1 = geo.NewRect(old.Bounds.Min, geo.Pt(mid, old.Bounds.Max.Y))
		b2 = geo.NewRect(geo.Pt(mid, old.Bounds.Min.Y), old.Bounds.Max)
	} else {
		mid := old.Bounds.Min.Y + old.Bounds.Height()/2
		b1 = geo.NewRect(old.Bounds.Min, geo.Pt(old.Bounds.Max.X, mid))
		b2 = geo.NewRect(geo.Pt(old.Bounds.Min.X, mid), old.Bounds.Max)
	}
	r1 := Region{ID: t.nextID, Bounds: b1}
	r2 := Region{ID: t.nextID + 1, Bounds: b2}
	t.nextID += 2
	t.regions = append(t.regions[:i], t.regions[i+1:]...)
	t.regions = append(t.regions, r1, r2)
	t.version++
	return r1, r2, nil
}

// Clone returns an independent copy of the table.
func (t *Table) Clone() *Table {
	cp := &Table{area: t.area, nextID: t.nextID, version: t.version, voronoi: t.voronoi}
	cp.regions = make([]Region, len(t.regions))
	copy(cp.regions, t.regions)
	return cp
}

// CheckInvariants verifies the table's structural invariants: at least
// one region, regions strictly sorted by ID (IDs are never reused, so
// every ID is below nextID), region bounds lying inside the service area,
// and — for grid partitions — positive region area. The invariant runner
// calls this on every sweep.
func (t *Table) CheckInvariants() error {
	if len(t.regions) == 0 {
		return fmt.Errorf("region: table has no regions")
	}
	if t.area.Width() <= 0 || t.area.Height() <= 0 {
		return fmt.Errorf("region: degenerate service area %v", t.area)
	}
	prev := Invalid
	for _, r := range t.regions {
		if r.ID <= prev {
			return fmt.Errorf("region: IDs not strictly increasing (%d after %d)", int(r.ID), int(prev))
		}
		prev = r.ID
		if r.ID >= t.nextID {
			return fmt.Errorf("region: region %d at or above nextID %d", int(r.ID), int(t.nextID))
		}
		if !t.voronoi && (r.Bounds.Width() <= 0 || r.Bounds.Height() <= 0) {
			return fmt.Errorf("region: %v has degenerate bounds", r)
		}
		u := t.area.Union(r.Bounds)
		if u != t.area {
			return fmt.Errorf("region: %v extends outside the service area %v", r, t.area)
		}
	}
	return nil
}

// RegionDistance returns the distance between the centers of two regions,
// the "region distance" term of the GD-LD utility function. Unknown IDs
// yield 0.
func (t *Table) RegionDistance(a, b ID) float64 {
	ra, oka := t.Region(a)
	rb, okb := t.Region(b)
	if !oka || !okb {
		return 0
	}
	return ra.Center().Dist(rb.Center())
}
