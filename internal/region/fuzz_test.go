package region

import (
	"math"
	"testing"

	"precinct/internal/geo"
	"precinct/internal/workload"
)

// fuzzGrid clamps fuzzer-chosen grid parameters into a valid table, so
// every input exercises the hash/locate paths instead of constructor
// validation.
func fuzzGrid(t *testing.T, rows, cols int, w, h float64) *Table {
	t.Helper()
	rows = 1 + abs(rows)%12
	cols = 1 + abs(cols)%12
	if !isFinitePos(w) {
		w = 1200
	}
	if !isFinitePos(h) {
		h = 1200
	}
	tab, err := NewGrid(geo.NewRect(geo.Pt(0, 0), geo.Pt(w, h)), rows, cols)
	if err != nil {
		t.Fatalf("NewGrid(%dx%d, %gx%g): %v", rows, cols, w, h, err)
	}
	return tab
}

func abs(v int) int {
	if v < 0 {
		// Guard minint, whose negation overflows.
		if v == -v {
			return 0
		}
		return -v
	}
	return v
}

func isFinitePos(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0) && v >= 1 && v <= 1e6
}

// FuzzGeoHash fuzzes the geographic hash: for any key and any valid
// partition, the hash location must be deterministic, inside the service
// area and independent of the partition geometry; the home region must be
// the nearest center and the replica region the second nearest, distinct
// from home whenever the table has two or more regions.
func FuzzGeoHash(f *testing.F) {
	f.Add(uint32(0), 3, 3, 1200.0, 1200.0)
	f.Add(uint32(42), 1, 1, 600.0, 900.0)
	f.Add(uint32(7_000_000), 4, 2, 350.5, 1e5)
	f.Add(uint32(math.MaxUint32), 12, 12, 1.0, 1.0)
	f.Fuzz(func(t *testing.T, rawKey uint32, rows, cols int, w, h float64) {
		tab := fuzzGrid(t, rows, cols, w, h)
		k := workload.Key(rawKey)

		p := tab.HashLocation(k)
		if p != tab.HashLocation(k) {
			t.Fatalf("HashLocation(%d) is not deterministic", k)
		}
		area := tab.Area()
		if p.X < area.Min.X || p.X > area.Max.X || p.Y < area.Min.Y || p.Y > area.Max.Y {
			t.Fatalf("HashLocation(%d) = %v outside area %v", k, p, area)
		}
		// Partition independence: a different grid over the same area must
		// hash the key to the same location.
		other := fuzzGrid(t, rows+1, cols+2, w, h)
		if q := other.HashLocation(k); q != p {
			t.Fatalf("hash depends on the partition: %v vs %v", p, q)
		}

		home, ok := tab.HomeRegion(k)
		if !ok {
			t.Fatalf("HomeRegion(%d) failed on a non-empty table", k)
		}
		if _, ok := tab.Region(home.ID); !ok {
			t.Fatalf("home region %d is not in the table", int(home.ID))
		}
		// Nearest-center law, checked by brute force.
		homeD := home.Center().Dist2(p)
		for _, r := range tab.Regions() {
			if d := r.Center().Dist2(p); d < homeD {
				t.Fatalf("home %v (d²=%g) is not nearest for key %d: %v at d²=%g",
					home, homeD, k, r, d)
			}
		}

		rep, ok := tab.ReplicaRegion(k)
		if tab.Len() < 2 {
			if ok {
				t.Fatalf("ReplicaRegion ok on a %d-region table", tab.Len())
			}
			return
		}
		if !ok {
			t.Fatalf("ReplicaRegion(%d) failed on a %d-region table", k, tab.Len())
		}
		if rep.ID == home.ID {
			t.Fatalf("replica region %d equals home region", int(rep.ID))
		}
		// Second-nearest law: no region other than home is closer than the
		// replica.
		repD := rep.Center().Dist2(p)
		for _, r := range tab.Regions() {
			if r.ID == home.ID {
				continue
			}
			if d := r.Center().Dist2(p); d < repD {
				t.Fatalf("replica %v (d²=%g) is not second nearest for key %d: %v at d²=%g",
					rep, repD, k, r, d)
			}
		}
	})
}

// FuzzRegionForPoint fuzzes point location: Locate must be total over a
// non-empty table (every point, even outside the area, gets a region),
// deterministic, and consistent with Contains.
func FuzzRegionForPoint(f *testing.F) {
	f.Add(0.0, 0.0, 3, 3)
	f.Add(600.0, 600.0, 3, 3)
	f.Add(-50.0, 1e7, 2, 5)
	f.Add(1199.999, 0.001, 12, 1)
	f.Fuzz(func(t *testing.T, x, y float64, rows, cols int) {
		if math.IsNaN(x) || math.IsNaN(y) {
			t.Skip("NaN coordinates are not representable positions")
		}
		tab := fuzzGrid(t, rows, cols, 1200, 1200)
		p := geo.Pt(x, y)

		r, ok := tab.Locate(p)
		if !ok {
			t.Fatalf("Locate(%v) failed on a non-empty table", p)
		}
		if _, ok := tab.Region(r.ID); !ok {
			t.Fatalf("Locate(%v) returned unknown region %d", p, int(r.ID))
		}
		if r2, _ := tab.Locate(p); r2.ID != r.ID {
			t.Fatalf("Locate(%v) is not deterministic: %d vs %d", p, int(r.ID), int(r2.ID))
		}
		// Containment consistency: a point inside the located region's
		// bounds must be reported as contained; a region that contains the
		// point must never lose it to a higher-ID region (lowest ID wins).
		if r.Bounds.Contains(p) && !tab.Contains(r.ID, p) {
			t.Fatalf("Contains(%d, %v) = false for the located region", int(r.ID), p)
		}
		for _, cand := range tab.Regions() {
			if cand.ID >= r.ID {
				break
			}
			if cand.Bounds.Contains(p) {
				t.Fatalf("Locate(%v) = %d but lower region %d contains it", p, int(r.ID), int(cand.ID))
			}
		}

		// The same laws hold for a Voronoi partition built from the grid's
		// centers.
		seeds := make([]geo.Point, 0, tab.Len())
		for _, reg := range tab.Regions() {
			seeds = append(seeds, reg.Center())
		}
		if len(seeds) >= 2 {
			vor, err := NewVoronoi(tab.Area(), seeds)
			if err != nil {
				t.Fatalf("NewVoronoi: %v", err)
			}
			vr, ok := vor.Locate(p)
			if !ok {
				t.Fatalf("voronoi Locate(%v) failed", p)
			}
			if !vor.Contains(vr.ID, p) {
				t.Fatalf("voronoi Contains(%d, %v) = false for the located region", int(vr.ID), p)
			}
			// Nearest-center law.
			best := vr.Center().Dist2(p)
			for _, cand := range vor.Regions() {
				if d := cand.Center().Dist2(p); d < best {
					t.Fatalf("voronoi Locate(%v) = %v (d²=%g), but %v is closer (d²=%g)",
						p, vr, best, cand, d)
				}
			}
		}
	})
}
