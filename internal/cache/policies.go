package cache

// This file holds competitor replacement policies from the related work,
// beyond the paper's own GD-LD/GD-Size pair and the LRU/LFU baselines
// (cache.go). All are pure functions of the Entry, so one value serves
// every peer; they enter the test suite through the registry
// (registry.go): the heap/linear differential replay and the policy
// contract battery iterate Names(), so adding a policy here and
// registering it is the whole proof obligation (DESIGN.md section 16).

// GDSF is Greedy-Dual-Size-Frequency (Cherkasova; the replacement-policy
// survey's strongest size-aware web baseline): utility frequency/size,
// aged greedy-dual style. Against GD-Size it keeps popular large items;
// against GD-LD it lacks the geographic distance term.
type GDSF struct{}

// Name implements Policy.
func (GDSF) Name() string { return "GDSF" }

// Aged implements Policy.
func (GDSF) Aged() bool { return true }

// Utility implements Policy: (1+accesses)/size. The +1 keeps a freshly
// admitted, never re-accessed item from collapsing to zero utility
// regardless of size.
func (GDSF) Utility(e *Entry) float64 {
	f := float64(1 + e.AccessCount)
	if e.Size <= 0 {
		return f
	}
	return f / float64(e.Size)
}

// PopDist is the popularity×distance utility with geographic weighting
// in the spirit of Avrachenkov et al.'s geographically-constrained
// caching: an item's value grows multiplicatively with both its regional
// popularity and how far away its home region is, so remote popular
// items are retained hardest. Aged greedy-dual style like GD-LD.
type PopDist struct {
	W Weights
}

// NewPopDist builds the policy, validating the weights. Only WR and WD
// participate (popularity and per-meter distance); WS is accepted so one
// Weights value configures every weighted policy, but ignored.
func NewPopDist(w Weights) (*PopDist, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return &PopDist{W: w}, nil
}

// Name implements Policy.
func (p *PopDist) Name() string { return "Pop-Dist" }

// Aged implements Policy.
func (p *PopDist) Aged() bool { return true }

// Utility implements Policy: wr*(1+accesses) * (1 + wd*reg_dst). The
// additive 1 inside the distance factor keeps same-distance-zero items
// ordered by popularity instead of collapsing to zero.
func (p *PopDist) Utility(e *Entry) float64 {
	return p.W.WR * float64(1+e.AccessCount) * (1 + p.W.WD*e.RegionDist)
}

// PopRank ranks items by popularity with a bounded recency tie-break, in
// the spirit of Wang et al.'s DTN cooperative caching, which orders
// content by popularity rank and breaks ties toward recently seen items.
// Not aged: like LRU/LFU it orders by absolute bookkeeping, not by a
// greedy-dual inflated value.
type PopRank struct{}

// Name implements Policy.
func (PopRank) Name() string { return "Pop-Rank" }

// Aged implements Policy.
func (PopRank) Aged() bool { return false }

// Utility implements Policy: accesses + a recency fraction strictly
// inside [0,1), so recency can reorder items only within one popularity
// rank, never across ranks.
func (PopRank) Utility(e *Entry) float64 {
	return float64(e.AccessCount) + 1 - 1/(1+e.LastAccess)
}
