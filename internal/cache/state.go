package cache

// Checkpoint support: the explicit serializable state surface of the
// dynamic cache and the static store. See DESIGN.md section 10 for the
// schema and compatibility rules. Entries are sorted slices, never maps,
// so the serialized form is deterministic.

import (
	"fmt"
	"math"
	"sort"

	"precinct/internal/workload"
)

// CacheState is the serializable state of one Cache. Capacity and policy
// are configuration, re-derived by the restore path from the Scenario,
// not snapshot state.
type CacheState struct {
	Inflate   float64 // greedy-dual aging floor L
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Entries   []Entry // sorted by Key
}

// StateSnapshot captures the cache's mutable state.
func (c *Cache) StateSnapshot() CacheState {
	return CacheState{
		Inflate:   c.inflate,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   c.Entries(),
	}
}

// RestoreState overwrites the cache's contents and counters from a
// snapshot. The occupancy accumulator is recomputed from the entries and
// validated against the configured capacity, so a corrupt snapshot can
// never produce a cache that violates the occupancy invariant.
func (c *Cache) RestoreState(st CacheState) error {
	if math.IsNaN(st.Inflate) || st.Inflate < 0 {
		return fmt.Errorf("cache: snapshot has invalid aging floor L=%g", st.Inflate)
	}
	entries := make(map[workload.Key]*Entry, len(st.Entries))
	var used int64
	for i := range st.Entries {
		e := st.Entries[i]
		if e.Size <= 0 {
			return fmt.Errorf("cache: snapshot entry %d has non-positive size %d", e.Key, e.Size)
		}
		if _, dup := entries[e.Key]; dup {
			return fmt.Errorf("cache: snapshot has duplicate entry for key %d", e.Key)
		}
		cp := e
		entries[e.Key] = &cp
		used += int64(e.Size)
	}
	if used > c.capacity {
		return fmt.Errorf("cache: snapshot occupancy %d exceeds capacity %d", used, c.capacity)
	}
	c.entries = entries
	c.used = used
	c.inflate = st.Inflate
	c.hits = st.Hits
	c.misses = st.Misses
	c.evictions = st.Evictions
	c.inflateRegressed = false
	if c.index != nil {
		// Rebuild the victim index in the snapshot's (sorted) entry
		// order. The heap's internal layout is irrelevant to behavior —
		// victims are popped in (Utility, Key) order regardless — but a
		// deterministic rebuild keeps restored state reproducible.
		c.index.reset(len(st.Entries))
		for i := range st.Entries {
			c.index.push(entries[st.Entries[i].Key])
		}
	}
	return nil
}

// StateSnapshot captures the store's items, sorted by key.
func (s *Store) StateSnapshot() []StoredItem {
	out := make([]StoredItem, 0, len(s.items))
	for _, it := range s.items {
		out = append(out, *it)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// RestoreState overwrites the store's contents from a snapshot. An
// empty snapshot restores to the lazy (nil-map) state, so a restored
// large-N run pays for only the stores that actually hold keys.
func (s *Store) RestoreState(items []StoredItem) error {
	if len(items) == 0 {
		s.items = nil
		return nil
	}
	m := make(map[workload.Key]*StoredItem, len(items))
	for i := range items {
		it := items[i]
		if it.Size <= 0 {
			return fmt.Errorf("cache: snapshot stored item %d has non-positive size %d", it.Key, it.Size)
		}
		if it.ReplicaRank < 0 {
			return fmt.Errorf("cache: snapshot stored item %d has negative replica rank %d", it.Key, it.ReplicaRank)
		}
		if _, dup := m[it.Key]; dup {
			return fmt.Errorf("cache: snapshot has duplicate stored item for key %d", it.Key)
		}
		cp := it
		m[it.Key] = &cp
	}
	s.items = m
	return nil
}
