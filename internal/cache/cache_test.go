package cache

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"precinct/internal/workload"
)

func mustGDLD(t *testing.T) *GDLD {
	t.Helper()
	p, err := NewGDLD(DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func newCache(t *testing.T, capacity int64, p Policy) *Cache {
	t.Helper()
	c, err := New(capacity, p)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestWeightsValidate(t *testing.T) {
	if err := DefaultWeights().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Weights{WR: -1, WD: 1, WS: 1}).Validate(); err == nil {
		t.Error("negative weight accepted")
	}
	if err := (Weights{}).Validate(); err == nil {
		t.Error("all-zero weights accepted")
	}
	if _, err := NewGDLD(Weights{}); err == nil {
		t.Error("NewGDLD accepted zero weights")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(-1, GDSize{}); err == nil {
		t.Error("negative capacity accepted")
	}
	if _, err := New(100, nil); err == nil {
		t.Error("nil policy accepted")
	}
}

func TestPolicyNames(t *testing.T) {
	if mustGDLD(t).Name() != "GD-LD" {
		t.Error("GD-LD name")
	}
	if (GDSize{}).Name() != "GD-Size" || (LRU{}).Name() != "LRU" || (LFU{}).Name() != "LFU" {
		t.Error("policy names wrong")
	}
}

func TestGDLDUtilityTerms(t *testing.T) {
	p, _ := NewGDLD(Weights{WR: 2, WD: 0.5, WS: 100})
	e := &Entry{AccessCount: 3, RegionDist: 10, Size: 50}
	want := 2*3 + 0.5*10 + 100.0/50
	if got := p.Utility(e); math.Abs(got-want) > 1e-12 {
		t.Errorf("Utility = %v, want %v", got, want)
	}
}

func TestGDLDFavorsDistantItems(t *testing.T) {
	p := mustGDLD(t)
	near := &Entry{AccessCount: 1, RegionDist: 100, Size: 2048}
	far := &Entry{AccessCount: 1, RegionDist: 900, Size: 2048}
	if p.Utility(far) <= p.Utility(near) {
		t.Error("GD-LD should value distant items higher")
	}
}

func TestGDSizeIgnoresPopularity(t *testing.T) {
	p := GDSize{}
	popular := &Entry{AccessCount: 100, Size: 4096}
	unpopular := &Entry{AccessCount: 0, Size: 4096}
	if p.Utility(popular) != p.Utility(unpopular) {
		t.Error("GD-Size should ignore access counts")
	}
	small := &Entry{Size: 100}
	big := &Entry{Size: 10000}
	if p.Utility(small) <= p.Utility(big) {
		t.Error("GD-Size should favor small items")
	}
}

func TestGetPutBasics(t *testing.T) {
	c := newCache(t, 1000, mustGDLD(t))
	if _, ok := c.Get(workload.Key(1), 0); ok {
		t.Fatal("hit on empty cache")
	}
	if c.Misses() != 1 {
		t.Error("miss not counted")
	}
	if _, ok := c.Put(Entry{Key: 1, Size: 400}, 1); !ok {
		t.Fatal("Put failed")
	}
	e, ok := c.Get(workload.Key(1), 2)
	if !ok {
		t.Fatal("miss after Put")
	}
	if e.AccessCount != 1 || e.LastAccess != 2 {
		t.Errorf("bookkeeping not updated: %+v", e)
	}
	if c.Hits() != 1 {
		t.Error("hit not counted")
	}
	if c.Used() != 400 || c.Len() != 1 {
		t.Errorf("Used=%d Len=%d", c.Used(), c.Len())
	}
}

func TestPutRejectsOversized(t *testing.T) {
	c := newCache(t, 1000, GDSize{})
	if _, ok := c.Put(Entry{Key: 1, Size: 1001}, 0); ok {
		t.Fatal("oversized item accepted")
	}
	if _, ok := c.Put(Entry{Key: 2, Size: 0}, 0); ok {
		t.Fatal("zero-size item accepted")
	}
	if c.Used() != 0 {
		t.Error("failed Put changed usage")
	}
}

func TestCapacityNeverExceeded(t *testing.T) {
	c := newCache(t, 1000, mustGDLD(t))
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		size := 50 + rng.Intn(400)
		c.Put(Entry{Key: workload.Key(i), Size: size, RegionDist: rng.Float64() * 1000}, float64(i))
		if c.Used() > c.Capacity() {
			t.Fatalf("capacity exceeded: %d > %d", c.Used(), c.Capacity())
		}
	}
}

func TestEvictionPicksMinUtility(t *testing.T) {
	c := newCache(t, 1000, mustGDLD(t))
	// Three items; the middle one has lowest utility (near, unpopular,
	// large).
	c.Put(Entry{Key: 1, Size: 400, RegionDist: 900, AccessCount: 5}, 0)
	c.Put(Entry{Key: 2, Size: 400, RegionDist: 10, AccessCount: 0}, 0)
	evicted, ok := c.Put(Entry{Key: 3, Size: 400, RegionDist: 500, AccessCount: 2}, 1)
	if !ok {
		t.Fatal("Put failed")
	}
	if len(evicted) != 1 || evicted[0].Key != 2 {
		t.Fatalf("evicted %v, want key 2", evicted)
	}
}

func TestGreedyDualAging(t *testing.T) {
	// After evictions, L rises; a new item with small raw utility must
	// still rank above long-dead entries (aging prevents starvation).
	c := newCache(t, 800, GDSize{})
	c.Put(Entry{Key: 1, Size: 400}, 0)
	c.Put(Entry{Key: 2, Size: 400}, 0)
	if c.Inflation() != 0 {
		t.Fatal("inflation moved without eviction")
	}
	c.Put(Entry{Key: 3, Size: 400}, 1) // evicts one; L = its utility
	if c.Inflation() <= 0 {
		t.Fatal("inflation did not rise after eviction")
	}
	e, _ := c.Peek(workload.Key(3))
	if e.Utility <= c.Inflation() {
		t.Error("new entry's utility not aged above L")
	}
}

func TestLRUPolicyEvictsOldest(t *testing.T) {
	c := newCache(t, 300, LRU{})
	c.Put(Entry{Key: 1, Size: 100}, 1)
	c.Put(Entry{Key: 2, Size: 100}, 2)
	c.Put(Entry{Key: 3, Size: 100}, 3)
	c.Get(workload.Key(1), 4) // refresh key 1
	evicted, _ := c.Put(Entry{Key: 4, Size: 100}, 5)
	if len(evicted) != 1 || evicted[0].Key != 2 {
		t.Fatalf("LRU evicted %v, want key 2", evicted)
	}
}

func TestLFUPolicyEvictsLeastFrequent(t *testing.T) {
	c := newCache(t, 300, LFU{})
	c.Put(Entry{Key: 1, Size: 100}, 1)
	c.Put(Entry{Key: 2, Size: 100}, 1)
	c.Put(Entry{Key: 3, Size: 100}, 1)
	for i := 0; i < 5; i++ {
		c.Get(workload.Key(1), float64(2+i))
		c.Get(workload.Key(3), float64(2+i))
	}
	c.Get(workload.Key(2), 10)
	evicted, _ := c.Put(Entry{Key: 4, Size: 100}, 11)
	if len(evicted) != 1 || evicted[0].Key != 2 {
		t.Fatalf("LFU evicted %v, want key 2", evicted)
	}
}

func TestPutReplaceKeepsPopularity(t *testing.T) {
	c := newCache(t, 1000, mustGDLD(t))
	c.Put(Entry{Key: 1, Size: 400}, 0)
	c.Get(workload.Key(1), 1)
	c.Get(workload.Key(1), 2)
	c.Put(Entry{Key: 1, Size: 500, Version: 2}, 3) // fresher version
	e, _ := c.Peek(workload.Key(1))
	if e.AccessCount != 2 {
		t.Errorf("replace lost popularity: %d", e.AccessCount)
	}
	if e.Version != 2 || e.Size != 500 {
		t.Errorf("replace did not take new fields: %+v", e)
	}
	if c.Used() != 500 {
		t.Errorf("Used = %d after replace", c.Used())
	}
}

func TestMultipleEvictionsForLargeItem(t *testing.T) {
	c := newCache(t, 1000, GDSize{})
	for i := 0; i < 5; i++ {
		c.Put(Entry{Key: workload.Key(i), Size: 200}, float64(i))
	}
	evicted, ok := c.Put(Entry{Key: 99, Size: 900}, 10)
	if !ok {
		t.Fatal("Put failed")
	}
	if len(evicted) < 4 {
		t.Fatalf("evicted only %d entries for a 900-byte item", len(evicted))
	}
	if c.Used() > c.Capacity() {
		t.Fatal("capacity exceeded")
	}
}

func TestRemove(t *testing.T) {
	c := newCache(t, 1000, GDSize{})
	c.Put(Entry{Key: 1, Size: 300}, 0)
	if !c.Remove(workload.Key(1)) {
		t.Fatal("Remove returned false")
	}
	if c.Remove(workload.Key(1)) {
		t.Fatal("double Remove returned true")
	}
	if c.Used() != 0 {
		t.Error("Remove left bytes accounted")
	}
}

func TestUpdate(t *testing.T) {
	c := newCache(t, 1000, GDSize{})
	c.Put(Entry{Key: 1, Size: 300, Version: 1}, 0)
	if !c.Update(workload.Key(1), 5, 123.0) {
		t.Fatal("Update returned false")
	}
	e, _ := c.Peek(workload.Key(1))
	if e.Version != 5 || e.TTRExpiry != 123.0 {
		t.Errorf("Update not applied: %+v", e)
	}
	if c.Update(workload.Key(9), 1, 0) {
		t.Fatal("Update of missing key returned true")
	}
}

func TestKeysAndEntriesSorted(t *testing.T) {
	c := newCache(t, 10000, GDSize{})
	for _, k := range []workload.Key{5, 1, 9, 3} {
		c.Put(Entry{Key: k, Size: 100}, 0)
	}
	keys := c.Keys()
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("Keys not sorted: %v", keys)
		}
	}
	entries := c.Entries()
	if len(entries) != 4 {
		t.Fatalf("Entries len %d", len(entries))
	}
	for i := range entries {
		if entries[i].Key != keys[i] {
			t.Error("Entries order differs from Keys")
		}
	}
}

func TestPeekDoesNotTouchBookkeeping(t *testing.T) {
	c := newCache(t, 1000, GDSize{})
	c.Put(Entry{Key: 1, Size: 100}, 0)
	before, _ := c.Peek(workload.Key(1))
	ac := before.AccessCount
	c.Peek(workload.Key(1))
	after, _ := c.Peek(workload.Key(1))
	if after.AccessCount != ac {
		t.Error("Peek changed access count")
	}
	if c.Hits() != 0 && c.Misses() != 0 {
		t.Error("Peek touched hit/miss counters")
	}
}

func TestZeroCapacityCacheRejectsAll(t *testing.T) {
	c := newCache(t, 0, GDSize{})
	if _, ok := c.Put(Entry{Key: 1, Size: 1}, 0); ok {
		t.Fatal("zero-capacity cache accepted an item")
	}
}

// Property: for any operation sequence, used bytes equal the sum of
// resident entry sizes and never exceed capacity.
func TestCacheInvariantProperty(t *testing.T) {
	f := func(ops []struct {
		Key  uint8
		Size uint16
		Get  bool
	}) bool {
		p, _ := NewGDLD(DefaultWeights())
		c, _ := New(2000, p)
		now := 0.0
		for _, op := range ops {
			now++
			if op.Get {
				c.Get(workload.Key(op.Key), now)
			} else {
				c.Put(Entry{Key: workload.Key(op.Key), Size: int(op.Size%3000) + 1}, now)
			}
			var sum int64
			for _, e := range c.Entries() {
				sum += int64(e.Size)
			}
			if sum != c.Used() || c.Used() > c.Capacity() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: the greedy-dual inflation value never decreases.
func TestInflationMonotone(t *testing.T) {
	c := newCache(t, 500, GDSize{})
	rng := rand.New(rand.NewSource(9))
	last := c.Inflation()
	for i := 0; i < 300; i++ {
		c.Put(Entry{Key: workload.Key(rng.Intn(50)), Size: 50 + rng.Intn(200)}, float64(i))
		if c.Inflation() < last {
			t.Fatalf("inflation decreased: %v -> %v", last, c.Inflation())
		}
		last = c.Inflation()
	}
}

func TestStoreBasics(t *testing.T) {
	s := NewStore()
	if s.Len() != 0 {
		t.Fatal("fresh store not empty")
	}
	s.Put(StoredItem{Key: 7, Size: 100, Version: 1, TTR: 30})
	it, ok := s.Get(workload.Key(7))
	if !ok || it.Size != 100 {
		t.Fatalf("Get = %+v, %v", it, ok)
	}
	// Put copies its argument.
	orig := StoredItem{Key: 8, Size: 1}
	s.Put(orig)
	orig.Size = 999
	it8, _ := s.Get(workload.Key(8))
	if it8.Size != 1 {
		t.Error("Store aliased caller struct")
	}
	if !s.Remove(workload.Key(7)) || s.Remove(workload.Key(7)) {
		t.Error("Remove semantics wrong")
	}
	s.Put(StoredItem{Key: 3})
	s.Put(StoredItem{Key: 1})
	keys := s.Keys()
	if len(keys) != 3 || keys[0] != 1 {
		t.Errorf("Keys = %v", keys)
	}
}

func TestStoreOverwrite(t *testing.T) {
	s := NewStore()
	s.Put(StoredItem{Key: 1, Version: 1})
	s.Put(StoredItem{Key: 1, Version: 2})
	if s.Len() != 1 {
		t.Fatal("overwrite duplicated the key")
	}
	it, _ := s.Get(workload.Key(1))
	if it.Version != 2 {
		t.Error("overwrite kept the old version")
	}
}
