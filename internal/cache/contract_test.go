package cache

// The policy contract battery (DESIGN.md section 16): every registered
// policy is held to the properties the cache machinery assumes, driven
// from the registry so a newly registered policy is enrolled
// automatically. The obligations are the ones the eviction engine relies
// on — deterministic pure utilities, monotone greedy-dual aging for Aged
// policies, and the strict (Utility, Key) victim order that makes the
// heap and linear backends provably pick the same victim.

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"precinct/internal/workload"
)

// genEntries draws fuzzed-but-valid entries: positive sizes, finite
// bookkeeping, the ranges the simulator actually produces.
func genEntries(seed int64, n int) []Entry {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Entry, 0, n)
	for i := 0; i < n; i++ {
		e := Entry{
			Key:         workload.Key(rng.Intn(1000)),
			Size:        1 + rng.Intn(16*1024),
			Version:     uint64(rng.Intn(50)),
			AccessCount: rng.Intn(500),
			RegionDist:  float64(rng.Intn(4000)),
			LastAccess:  rng.Float64() * 1e5,
			FetchedAt:   rng.Float64() * 1e5,
			TTRExpiry:   rng.Float64() * 1e5,
		}
		if rng.Intn(10) == 0 {
			e.TTRExpiry = math.Inf(1) // "never stale" is a legal state
		}
		out = append(out, e)
	}
	return out
}

// TestPolicyContract runs the per-policy obligations for every
// registered policy.
func TestPolicyContract(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			p := policyForTest(t, name)
			if p.Name() == "" {
				t.Fatal("policy has an empty display name")
			}

			// Utilities are pure, deterministic, and finite: calling
			// Utility must not mutate the entry, must return the same
			// value twice, and must never produce NaN or infinities on
			// valid entries.
			for i, e := range genEntries(int64(1000+seedOffset(name)), 400) {
				before := e
				u1 := p.Utility(&e)
				u2 := p.Utility(&e)
				if e != before {
					t.Fatalf("entry %d: Utility mutated the entry:\nbefore %+v\nafter  %+v", i, before, e)
				}
				if u1 != u2 {
					t.Fatalf("entry %d: Utility is nondeterministic: %g then %g", i, u1, u2)
				}
				if math.IsNaN(u1) || math.IsInf(u1, 0) {
					t.Fatalf("entry %d: Utility %g on valid entry %+v", i, u1, before)
				}
			}

			// The greedy-dual aging floor L is monotone under Aged
			// policies — it only ever rises to a victim's utility — and
			// stays identically zero under non-aged policies. Replay a
			// heavy fuzzed stream and watch the floor after every op.
			c, err := New(8192, p)
			if err != nil {
				t.Fatal(err)
			}
			prev := c.Inflation()
			if prev != 0 {
				t.Fatalf("fresh cache has aging floor %g, want 0", prev)
			}
			for opIdx, o := range genOps(int64(77+seedOffset(name)), 1500) {
				switch o.kind {
				case 0:
					c.Put(Entry{Key: o.key, Size: o.size, RegionDist: o.dist, Version: o.version}, o.now)
				case 1:
					c.Get(o.key, o.now)
				case 2:
					c.Remove(o.key)
				case 3:
					c.Update(o.key, o.version, o.now+30)
				case 4:
					if err := c.RestoreState(c.StateSnapshot()); err != nil {
						t.Fatal(err)
					}
				}
				l := c.Inflation()
				if !p.Aged() && l != 0 {
					t.Fatalf("op %d: non-aged policy produced aging floor %g", opIdx, l)
				}
				if l < prev {
					t.Fatalf("op %d: aging floor decreased %g -> %g", opIdx, prev, l)
				}
				prev = l
			}
			if c.Evictions() == 0 {
				t.Fatal("contract stream caused no evictions; the aging obligation is vacuous")
			}

			// Strict (Utility, Key) victim order: entries with identical
			// bookkeeping have identical utilities under every pure
			// policy, so the victim must be the lowest key — on both
			// backends.
			for _, linear := range []bool{false, true} {
				tie, err := New(1<<20, p)
				if linear {
					tie, err = NewLinear(1<<20, p)
				}
				if err != nil {
					t.Fatal(err)
				}
				for _, k := range []workload.Key{9, 3, 7, 5} {
					tie.Put(Entry{Key: k, Size: 1024, RegionDist: 200}, 10)
				}
				v := tie.victim()
				if v == nil || v.Key != 3 {
					t.Fatalf("linear=%v: victim among equal utilities is %+v, want key 3", linear, v)
				}
			}
		})
	}
}

// seedOffset derives a stable per-policy seed offset from the registry name so
// each policy replays a distinct stream.
func seedOffset(name string) int {
	h := 0
	for _, r := range name {
		h = h*31 + int(r)
	}
	if h < 0 {
		h = -h
	}
	return h % 1000
}

// TestPolicyContractHeapLinearVictimAgreement cross-checks that on a
// fuzzed stream the two backends agree on the victim choice for every
// registered policy at every step — the per-step sharpening of the
// sequence-level equivalence in TestHeapLinearOpEquivalence.
func TestPolicyContractHeapLinearVictimAgreement(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			c, err := New(4096, policyForTest(t, name))
			if err != nil {
				t.Fatal(err)
			}
			for opIdx, o := range genOps(4242, 1200) {
				switch o.kind {
				case 0:
					c.Put(Entry{Key: o.key, Size: o.size, RegionDist: o.dist}, o.now)
				case 1:
					c.Get(o.key, o.now)
				case 2:
					c.Remove(o.key)
				case 3:
					c.Update(o.key, o.version, o.now+30)
				}
				if heapMin, scanMin := c.victim(), c.minUtility(); heapMin != scanMin {
					t.Fatalf("op %d: heap victim %+v, reference scan %+v", opIdx, heapMin, scanMin)
				}
			}
		})
	}
}

// TestRegistry pins the registry semantics the rest of the lab depends
// on: sorted stable names, self-diagnosing unknown-name errors,
// duplicate registration panics, and weight pass-through for the
// weighted policies.
func TestRegistry(t *testing.T) {
	names := Names()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("Names() not sorted: %v", names)
	}
	want := []string{"gd-ld", "gd-size", "gdsf", "lfu", "lru", "pop-dist", "pop-rank"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("registered policies %v, want %v", names, want)
	}

	if _, err := NewPolicy("no-such-policy", Params{}); err == nil {
		t.Fatal("unknown policy name did not error")
	}

	// The zero Params select documented defaults for the weighted
	// policies; explicit weights pass through.
	p, err := NewPolicy("gd-ld", Params{})
	if err != nil {
		t.Fatal(err)
	}
	if g := p.(*GDLD); g.W != DefaultWeights() {
		t.Fatalf("zero Params produced weights %+v, want defaults", g.W)
	}
	custom := Weights{WR: 2, WD: 0.5, WS: 1}
	p, err = NewPolicy("pop-dist", Params{Weights: custom})
	if err != nil {
		t.Fatal(err)
	}
	if g := p.(*PopDist); g.W != custom {
		t.Fatalf("custom weights %+v came through as %+v", custom, g.W)
	}
	if _, err := NewPolicy("gd-ld", Params{Weights: Weights{WR: -1}}); err == nil {
		t.Fatal("invalid weights did not error")
	}

	for _, fn := range []func(){
		func() { Register("", func(Params) (Policy, error) { return LRU{}, nil }) },
		func() { Register("x-nil", nil) },
		func() { Register("lru", func(Params) (Policy, error) { return LRU{}, nil }) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad Register call did not panic")
				}
			}()
			fn()
		}()
	}
}
