package cache

import (
	"math/rand"
	"reflect"
	"testing"

	"precinct/internal/workload"
)

// policyForTest builds a named policy through the registry, failing the
// test on error. Going through the registry means a newly registered
// policy is automatically pulled into every registry-driven suite — it
// cannot escape the heap/linear equivalence proof or the contract
// battery by being forgotten here.
func policyForTest(t *testing.T, name string) Policy {
	t.Helper()
	p, err := NewPolicy(name, Params{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// cacheOp is one step of a fuzzed operation stream.
type cacheOp struct {
	kind    int // 0 put, 1 get, 2 remove, 3 update, 4 restore round-trip
	key     workload.Key
	size    int
	dist    float64
	version uint64
	now     float64
}

// genOps draws a deterministic operation stream that exercises every
// mutation path of the cache, with enough Put pressure to force long
// eviction chains.
func genOps(seed int64, n int) []cacheOp {
	rng := rand.New(rand.NewSource(seed))
	ops := make([]cacheOp, 0, n)
	for i := 0; i < n; i++ {
		o := cacheOp{
			key: workload.Key(rng.Intn(60)),
			now: float64(i) + rng.Float64(),
		}
		switch r := rng.Intn(10); {
		case r < 5: // half the stream inserts
			o.kind = 0
			o.size = 128 + 64*rng.Intn(30)
			o.dist = float64(50 * rng.Intn(20))
			o.version = uint64(rng.Intn(5))
		case r < 8:
			o.kind = 1
		case r < 9:
			o.kind = 2
		default:
			o.kind = 3
			o.version = uint64(rng.Intn(10))
		}
		if rng.Intn(97) == 0 {
			o.kind = 4 // occasional snapshot/restore round-trip
		}
		ops = append(ops, o)
	}
	return ops
}

// replay runs an operation stream on one cache, returning the full
// eviction sequence (keys in order).
func replay(t *testing.T, c *Cache, ops []cacheOp) []workload.Key {
	t.Helper()
	var evictions []workload.Key
	for i, o := range ops {
		switch o.kind {
		case 0:
			ev, _ := c.Put(Entry{
				Key: o.key, Size: o.size, RegionDist: o.dist, Version: o.version,
			}, o.now)
			for _, e := range ev {
				evictions = append(evictions, e.Key)
			}
		case 1:
			c.Get(o.key, o.now)
		case 2:
			c.Remove(o.key)
		case 3:
			c.Update(o.key, o.version, o.now+30)
		case 4:
			if err := c.RestoreState(c.StateSnapshot()); err != nil {
				t.Fatalf("op %d: restore round-trip: %v", i, err)
			}
		}
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	return evictions
}

// TestHeapLinearOpEquivalence replays fuzzed operation streams on a
// heap-indexed cache and on the retained linear reference, for every
// registered policy, and requires identical eviction sequences, counters
// and final contents. This is the unit-level half of the equivalence
// proof (DESIGN.md section 11); TestCacheIndexEquivalence at the repo
// root is the whole-scenario half. Iterating Names() makes the suite
// self-extending: registering a policy enrolls it here.
func TestHeapLinearOpEquivalence(t *testing.T) {
	for _, policy := range Names() {
		t.Run(policy, func(t *testing.T) {
			for seed := int64(1); seed <= 8; seed++ {
				ops := genOps(seed*7919, 1200)

				heap, err := New(8192, policyForTest(t, policy))
				if err != nil {
					t.Fatal(err)
				}
				linear, err := NewLinear(8192, policyForTest(t, policy))
				if err != nil {
					t.Fatal(err)
				}
				if heap.Linear() || !linear.Linear() {
					t.Fatal("Linear() does not reflect the constructors")
				}

				heapEv := replay(t, heap, ops)
				linEv := replay(t, linear, ops)

				if !reflect.DeepEqual(heapEv, linEv) {
					t.Fatalf("seed %d: eviction sequences diverged:\nheap   %v\nlinear %v",
						seed, heapEv, linEv)
				}
				if len(heapEv) == 0 {
					t.Fatalf("seed %d: no evictions; the equivalence is vacuous", seed)
				}
				hs, ls := heap.StateSnapshot(), linear.StateSnapshot()
				if !reflect.DeepEqual(hs, ls) {
					t.Fatalf("seed %d: final states diverged:\nheap   %+v\nlinear %+v",
						seed, hs, ls)
				}
			}
		})
	}
}

// TestVictimIndexTracksMinUtility cross-checks the heap minimum against
// the reference scan after every mutation of a fuzzed stream — a
// stronger, per-step version of the sequence equivalence above.
func TestVictimIndexTracksMinUtility(t *testing.T) {
	c, err := New(4096, policyForTest(t, "gd-ld"))
	if err != nil {
		t.Fatal(err)
	}
	ops := genOps(42, 2000)
	for i, o := range ops {
		switch o.kind {
		case 0:
			c.Put(Entry{Key: o.key, Size: o.size, RegionDist: o.dist}, o.now)
		case 1:
			c.Get(o.key, o.now)
		case 2:
			c.Remove(o.key)
		case 3:
			c.Update(o.key, o.version, o.now+30)
		case 4:
			if err := c.RestoreState(c.StateSnapshot()); err != nil {
				t.Fatal(err)
			}
		}
		heapMin, scanMin := c.victim(), c.minUtility()
		if heapMin != scanMin {
			t.Fatalf("op %d: heap min %+v, reference scan %+v", i, heapMin, scanMin)
		}
	}
	if c.Evictions() == 0 {
		t.Fatal("stream caused no evictions")
	}
}

// TestVictimIndexDetectsCorruption proves the CheckInvariants extension
// actually fires: breaking the heap order must be reported.
func TestVictimIndexDetectsCorruption(t *testing.T) {
	c, err := New(4096, policyForTest(t, "gd-ld"))
	if err != nil {
		t.Fatal(err)
	}
	for k := workload.Key(1); k <= 4; k++ {
		c.Put(Entry{Key: k, Size: 512, RegionDist: float64(k) * 100}, float64(k))
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatalf("healthy cache reported %v", err)
	}
	// Swap two heap slots without fixing positions: both the position
	// map and (generally) the order invariant are now wrong.
	h := c.index.heap
	if len(h) < 2 {
		t.Fatal("expected at least 2 indexed entries")
	}
	h[0], h[1] = h[1], h[0]
	if err := c.CheckInvariants(); err == nil {
		t.Fatal("corrupted victim index not detected")
	}
}

// TestPutEvictedScratchReuse pins the documented aliasing contract: the
// slice Put returns is valid until the next Put, and eviction-heavy
// steady state does not grow allocations per call.
func TestPutEvictedScratchReuse(t *testing.T) {
	c, err := New(1024, policyForTest(t, "gd-size"))
	if err != nil {
		t.Fatal(err)
	}
	c.Put(Entry{Key: 1, Size: 512}, 0)
	c.Put(Entry{Key: 2, Size: 512}, 1)
	ev, ok := c.Put(Entry{Key: 3, Size: 1024}, 2)
	if !ok || len(ev) != 2 {
		t.Fatalf("evicted %v, want both residents", ev)
	}
	ev2, _ := c.Put(Entry{Key: 4, Size: 1024}, 3)
	if len(ev2) != 1 || ev2[0].Key != 3 {
		t.Fatalf("second Put evicted %v, want [3]", ev2)
	}
	if &ev[0] != &ev2[0] {
		t.Fatal("scratch buffer was not reused across Puts")
	}
}
