package cache

import (
	"math"
	"testing"

	"precinct/internal/workload"
)

// TestGDLDRegressionHandComputed pins the GD-LD arithmetic to values
// computed by hand from the paper's definition:
//
//	u(e) = wr*ac + wd*reg_dst + ws/size          (raw utility)
//	U(e) = L + u(e)                              (aged utility)
//	L    = U(victim) after each eviction          (inflation floor)
//
// with DefaultWeights (wr = 1, wd = 1/400, ws = 4096) and a 3072-byte
// cache. Any change to the weights, the aging rule, or the tie-break
// order shows up as a concrete number here.
func TestGDLDRegressionHandComputed(t *testing.T) {
	pol, err := NewGDLD(DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(3072, pol)
	if err != nil {
		t.Fatal(err)
	}

	approx := func(what string, got, want float64) {
		t.Helper()
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("%s = %g, want %g", what, got, want)
		}
	}
	utility := func(k workload.Key) float64 {
		t.Helper()
		e, ok := c.Peek(k)
		if !ok {
			t.Fatalf("key %d not cached", k)
		}
		return e.Utility
	}

	// Put A (key 1, 1024 B, 400 m): u = 0 + 400/400 + 4096/1024 = 5.
	// The cache is empty, L = 0, so U(A) = 5.
	if _, ok := c.Put(Entry{Key: 1, Size: 1024, RegionDist: 400}, 1.0); !ok {
		t.Fatal("Put A refused")
	}
	approx("U(A)", utility(1), 5)
	approx("L after A", c.Inflation(), 0)

	// Put B (key 2, 2048 B, 800 m): u = 0 + 800/400 + 4096/2048 = 4.
	// Fits exactly (1024+2048 = 3072), no eviction, U(B) = 4.
	if _, ok := c.Put(Entry{Key: 2, Size: 2048, RegionDist: 800}, 2.0); !ok {
		t.Fatal("Put B refused")
	}
	approx("U(B)", utility(2), 4)

	// Get B: the hit bumps AccessCount to 1 and re-ages,
	// U(B) = L + (1 + 2 + 2) = 5. Now A and B tie at 5.
	if _, ok := c.Get(2, 3.0); !ok {
		t.Fatal("Get B missed")
	}
	approx("U(B) after hit", utility(2), 5)

	// Put C (key 3, 1024 B, 0 m): needs an eviction. A and B both have
	// U = 5; the tie must break to the smaller key, so A (key 1) is the
	// victim. L rises to U(A) = 5 and U(C) = L + (0 + 0 + 4) = 9.
	evicted, ok := c.Put(Entry{Key: 3, Size: 1024, RegionDist: 0}, 4.0)
	if !ok {
		t.Fatal("Put C refused")
	}
	if len(evicted) != 1 || evicted[0].Key != 1 {
		t.Fatalf("Put C evicted %v, want exactly [key 1]", evicted)
	}
	approx("L after evicting A", c.Inflation(), 5)
	approx("U(C)", utility(3), 9)

	// Put D (key 4, 2048 B, 400 m): another eviction. B (U = 5) loses to
	// C (U = 9), L stays 5 (monotone: the floor never decreases), and
	// U(D) = L + (0 + 1 + 2) = 8.
	evicted, ok = c.Put(Entry{Key: 4, Size: 2048, RegionDist: 400}, 5.0)
	if !ok {
		t.Fatal("Put D refused")
	}
	if len(evicted) != 1 || evicted[0].Key != 2 {
		t.Fatalf("Put D evicted %v, want exactly [key 2]", evicted)
	}
	approx("L after evicting B", c.Inflation(), 5)
	approx("U(D)", utility(4), 8)

	// Get C: re-access under the raised floor. AccessCount becomes 1, so
	// U(C) = L + (1 + 0 + 4) = 10 — re-aged against the *current* L, not
	// the L at insertion time.
	if _, ok := c.Get(3, 6.0); !ok {
		t.Fatal("Get C missed")
	}
	approx("U(C) after hit", utility(3), 10)

	if err := c.CheckInvariants(); err != nil {
		t.Fatalf("CheckInvariants: %v", err)
	}
	if got := c.Evictions(); got != 2 {
		t.Fatalf("Evictions = %d, want 2", got)
	}
	if c.Hits() != 2 || c.Misses() != 0 {
		t.Fatalf("hits/misses = %d/%d, want 2/0", c.Hits(), c.Misses())
	}
}
