package cache

import (
	"math/rand"
	"testing"

	"precinct/internal/workload"
)

// TestInvariantMetamorphicKeyRelabeling asserts GD-LD's key-relabeling
// relation: mapping every key through a strictly monotone bijection
// σ(k) = k + 1000 and replaying the identical operation sequence must
// produce the σ-image of the original eviction sequence and identical
// hit/miss/inflation trajectories. Monotonicity matters because the
// eviction tie-break compares keys; any order-preserving σ leaves every
// comparison outcome unchanged, so the runs must agree exactly.
func TestInvariantMetamorphicKeyRelabeling(t *testing.T) {
	const shift = 1000

	type op struct {
		get  bool
		key  workload.Key
		size int
		dist float64
		now  float64
	}
	rng := rand.New(rand.NewSource(1701))
	ops := make([]op, 0, 400)
	for i := 0; i < 400; i++ {
		o := op{
			key: workload.Key(rng.Intn(40)),
			now: float64(i),
		}
		if rng.Intn(3) == 0 {
			o.get = true
		} else {
			o.size = 512 + 256*rng.Intn(8)
			o.dist = float64(100 * rng.Intn(9))
		}
		ops = append(ops, o)
	}

	run := func(relabel bool) (*Cache, []workload.Key) {
		pol, err := NewGDLD(DefaultWeights())
		if err != nil {
			t.Fatal(err)
		}
		c, err := New(8192, pol)
		if err != nil {
			t.Fatal(err)
		}
		var evictions []workload.Key
		for _, o := range ops {
			k := o.key
			if relabel {
				k += shift
			}
			if o.get {
				c.Get(k, o.now)
				continue
			}
			ev, ok := c.Put(Entry{Key: k, Size: o.size, RegionDist: o.dist}, o.now)
			if !ok {
				t.Fatalf("Put %d refused", k)
			}
			for _, e := range ev {
				evictions = append(evictions, e.Key)
			}
		}
		return c, evictions
	}

	base, baseEv := run(false)
	rel, relEv := run(true)

	if len(baseEv) == 0 {
		t.Fatal("op sequence caused no evictions; the relation is vacuous")
	}
	if len(baseEv) != len(relEv) {
		t.Fatalf("eviction counts diverged: %d vs %d", len(baseEv), len(relEv))
	}
	for i := range baseEv {
		if baseEv[i]+shift != relEv[i] {
			t.Fatalf("eviction %d: σ(%d) = %d, relabeled run evicted %d",
				i, baseEv[i], baseEv[i]+shift, relEv[i])
		}
	}
	if base.Hits() != rel.Hits() || base.Misses() != rel.Misses() {
		t.Fatalf("hit/miss diverged: %d/%d vs %d/%d",
			base.Hits(), base.Misses(), rel.Hits(), rel.Misses())
	}
	if base.Inflation() != rel.Inflation() {
		t.Fatalf("inflation floor diverged: %g vs %g", base.Inflation(), rel.Inflation())
	}
	if base.Used() != rel.Used() || base.Len() != rel.Len() {
		t.Fatalf("occupancy diverged: %d/%d vs %d/%d",
			base.Used(), base.Len(), rel.Used(), rel.Len())
	}
	baseKeys, relKeys := base.Keys(), rel.Keys()
	for i := range baseKeys {
		if baseKeys[i]+shift != relKeys[i] {
			t.Fatalf("resident key %d: σ(%d) != %d", i, baseKeys[i], relKeys[i])
		}
	}
}
