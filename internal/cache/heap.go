package cache

// Victim index: a binary min-heap over the cache's entries ordered by
// (Utility, Key). Because keys are unique, that order is a strict total
// order, so the heap minimum is always exactly the entry the reference
// linear scan (minUtility) would pick — the heap changes the cost of
// finding the victim from O(n) to O(log n) without changing which entry
// is the victim. DESIGN.md section 11 gives the full equivalence
// argument; TestHeapLinearOpEquivalence and TestCacheIndexEquivalence
// prove it over fuzzed operation streams and whole scenarios.
//
// Entry positions live in a side map rather than in Entry itself so the
// public Entry struct (serialized into checkpoints, compared with
// DeepEqual by the equivalence suites) is bit-identical between the
// heap-indexed and linear modes.

import (
	"fmt"

	"precinct/internal/workload"
)

// victimLess is the eviction order: minimum utility first, ties broken
// to the smaller key. It must match minUtility exactly.
func victimLess(a, b *Entry) bool {
	return a.Utility < b.Utility ||
		(a.Utility == b.Utility && a.Key < b.Key)
}

// victimIndex is the heap plus the key → heap-position map.
type victimIndex struct {
	heap []*Entry
	pos  map[workload.Key]int
}

func newVictimIndex() *victimIndex {
	return &victimIndex{pos: make(map[workload.Key]int)}
}

// min returns the current victim without removing it, or nil when empty.
func (v *victimIndex) min() *Entry {
	if len(v.heap) == 0 {
		return nil
	}
	return v.heap[0]
}

// push adds an entry that is not yet indexed.
func (v *victimIndex) push(e *Entry) {
	v.heap = append(v.heap, e)
	v.pos[e.Key] = len(v.heap) - 1
	v.up(len(v.heap) - 1)
}

// remove drops the entry for a key, if indexed.
func (v *victimIndex) remove(k workload.Key) {
	i, ok := v.pos[k]
	if !ok {
		return
	}
	last := len(v.heap) - 1
	v.swap(i, last)
	v.heap[last] = nil // keep the backing array from retaining the entry
	v.heap = v.heap[:last]
	delete(v.pos, k)
	if i < last {
		if !v.down(i) {
			v.up(i)
		}
	}
}

// fix restores the heap order around a key whose Utility changed.
func (v *victimIndex) fix(k workload.Key) {
	i, ok := v.pos[k]
	if !ok {
		return
	}
	if !v.down(i) {
		v.up(i)
	}
}

// reset empties the index, dropping the backing array.
func (v *victimIndex) reset(capacityHint int) {
	v.heap = make([]*Entry, 0, capacityHint)
	v.pos = make(map[workload.Key]int, capacityHint)
}

func (v *victimIndex) swap(i, j int) {
	if i == j {
		return
	}
	v.heap[i], v.heap[j] = v.heap[j], v.heap[i]
	v.pos[v.heap[i].Key] = i
	v.pos[v.heap[j].Key] = j
}

// up sifts index i toward the root.
func (v *victimIndex) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !victimLess(v.heap[i], v.heap[parent]) {
			break
		}
		v.swap(i, parent)
		i = parent
	}
}

// down sifts index i toward the leaves; it reports whether i moved.
func (v *victimIndex) down(i int) bool {
	start := i
	n := len(v.heap)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		least := left
		if right := left + 1; right < n && victimLess(v.heap[right], v.heap[left]) {
			least = right
		}
		if !victimLess(v.heap[least], v.heap[i]) {
			break
		}
		v.swap(i, least)
		i = least
	}
	return i > start
}

// check validates the index against the cache's entry map: same
// membership, positions consistent, and the heap order invariant at
// every edge. It is wired into Cache.CheckInvariants, so the whole
// runtime invariant suite (DESIGN.md section 9) sweeps it.
func (v *victimIndex) check(entries map[workload.Key]*Entry) error {
	if len(v.heap) != len(entries) || len(v.pos) != len(entries) {
		return fmt.Errorf("cache: victim index tracks %d/%d entries, cache holds %d",
			len(v.heap), len(v.pos), len(entries))
	}
	for i, e := range v.heap {
		if e == nil {
			return fmt.Errorf("cache: victim index slot %d is nil", i)
		}
		if entries[e.Key] != e {
			return fmt.Errorf("cache: victim index entry %d is not the cached entry", e.Key)
		}
		if v.pos[e.Key] != i {
			return fmt.Errorf("cache: victim index position map says %d for key %d at slot %d",
				v.pos[e.Key], e.Key, i)
		}
		if i > 0 {
			parent := (i - 1) / 2
			if victimLess(e, v.heap[parent]) {
				return fmt.Errorf("cache: victim heap order violated at slot %d (key %d under key %d)",
					i, e.Key, v.heap[parent].Key)
			}
		}
	}
	return nil
}
