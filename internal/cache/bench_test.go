package cache

import (
	"math/rand"
	"testing"

	"precinct/internal/workload"
)

func benchCache(b *testing.B, p Policy) {
	b.Helper()
	c, err := New(64*1024, p)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := workload.Key(rng.Intn(1000))
		if _, ok := c.Get(k, float64(i)); !ok {
			c.Put(Entry{
				Key: k, Size: 512 + rng.Intn(4096),
				RegionDist: rng.Float64() * 1000,
			}, float64(i))
		}
	}
}

func BenchmarkGDLDMixedWorkload(b *testing.B) {
	p, _ := NewGDLD(DefaultWeights())
	benchCache(b, p)
}

func BenchmarkGDSizeMixedWorkload(b *testing.B) { benchCache(b, GDSize{}) }
func BenchmarkLRUMixedWorkload(b *testing.B)    { benchCache(b, LRU{}) }
func BenchmarkLFUMixedWorkload(b *testing.B)    { benchCache(b, LFU{}) }

func BenchmarkEvictionHeavy(b *testing.B) {
	p, _ := NewGDLD(DefaultWeights())
	c, _ := New(8*1024, p) // tiny cache: almost every Put evicts
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Put(Entry{Key: workload.Key(i), Size: 1024 + rng.Intn(2048)}, float64(i))
	}
}
