package cache

import (
	"fmt"
	"sort"
)

// Params carries the knobs a policy factory may consume. The zero value
// selects each policy's documented defaults, so NewPolicy(name, Params{})
// always works for every registered name.
type Params struct {
	// Weights are the utility weights for the weighted policies (GD-LD,
	// popularity×distance). The zero value selects DefaultWeights.
	Weights Weights
}

// weightsOrDefault resolves the zero value to the documented defaults.
func (p Params) weightsOrDefault() Weights {
	if p.Weights == (Weights{}) {
		return DefaultWeights()
	}
	return p.Weights
}

// Factory builds a replacement policy from parameters. Factories must
// validate their inputs and return stateless policies: one policy value
// is shared by every peer of a run.
type Factory func(Params) (Policy, error)

// registry maps policy names to factories. Registration happens in init
// functions (or tests), never on hot paths, so a plain map suffices.
var registry = map[string]Factory{}

// Register adds a policy factory under a name. Registering an empty name,
// a nil factory, or a duplicate name panics: all three are programming
// errors that must fail loudly at init time, not surface as "unknown
// policy" at run time.
func Register(name string, f Factory) {
	if name == "" {
		panic("cache: Register with empty policy name")
	}
	if f == nil {
		panic(fmt.Sprintf("cache: Register(%q) with nil factory", name))
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("cache: Register(%q) called twice", name))
	}
	registry[name] = f
}

// NewPolicy builds a registered policy by name. The error lists the
// known names so CLI typos are self-diagnosing.
func NewPolicy(name string, p Params) (Policy, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("cache: unknown policy %q (known: %v)", name, Names())
	}
	return f(p)
}

// Names returns every registered policy name in sorted order. Test
// suites iterate this so a newly registered policy is automatically
// pulled through the heap/linear differential replay and the contract
// battery.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func init() {
	Register("gd-ld", func(p Params) (Policy, error) {
		return NewGDLD(p.weightsOrDefault())
	})
	Register("gd-size", func(Params) (Policy, error) { return GDSize{}, nil })
	Register("lru", func(Params) (Policy, error) { return LRU{}, nil })
	Register("lfu", func(Params) (Policy, error) { return LFU{}, nil })
	Register("gdsf", func(Params) (Policy, error) { return GDSF{}, nil })
	Register("pop-dist", func(p Params) (Policy, error) {
		return NewPopDist(p.weightsOrDefault())
	})
	Register("pop-rank", func(Params) (Policy, error) { return PopRank{}, nil })
}
