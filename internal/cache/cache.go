// Package cache implements the peer cache of PReCinCt's cooperative
// caching scheme: a byte-capacity-bounded dynamic cache with pluggable
// replacement policies, plus the unbounded static store that holds the
// values of keys belonging to the peer's current region.
//
// The paper's replacement algorithm is Greedy-Dual Least-Distance (GD-LD):
// every cached item carries a utility
//
//	U = wr*ac + wd*reg_dst + ws*(1/size)
//
// (ac = regional access count, reg_dst = distance between the requesting
// and home regions, size = item size) aged greedy-dual style: the cache
// keeps an inflation value L equal to the utility of the last victim, a
// new or re-accessed item gets U = L + u(item), and the victim is always
// the minimum-utility entry. GD-Size (Cao & Irani) — the paper's baseline
// — and LRU/LFU are provided for comparison and ablation.
package cache

import (
	"fmt"
	"math"
	"sort"

	"precinct/internal/workload"
)

// Entry is one cached item together with the bookkeeping the policies use.
type Entry struct {
	Key     workload.Key
	Size    int    // bytes
	Version uint64 // data version, maintained by the consistency layer

	AccessCount int     // times requested while cached here (regional popularity proxy)
	RegionDist  float64 // meters between the requesting region and the item's home region
	LastAccess  float64 // sim time of the most recent access
	FetchedAt   float64 // sim time the item entered the cache

	// TTRExpiry is the sim time until which the cached copy may be used
	// without polling the home region (Push with Adaptive Pull). The
	// consistency layer maintains it; math.Inf(1) means "never stale".
	TTRExpiry float64

	// Utility is the aged utility greedy-dual policies order by.
	Utility float64
}

// Policy computes the un-aged utility of an entry. Implementations must be
// pure functions of the entry.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Utility returns the entry's raw (un-aged) utility; higher is more
	// valuable.
	Utility(e *Entry) float64
	// Aged reports whether the greedy-dual inflation term applies.
	Aged() bool
}

// Weights are the GD-LD utility weights. The paper leaves them free; the
// defaults scale each term to order one for the paper's scenario (region
// distances of a few hundred meters, item sizes of a few KB).
type Weights struct {
	WR float64 // access-count weight (wr)
	WD float64 // region-distance weight per meter (wd)
	WS float64 // size weight: contributes WS/size (ws)
}

// DefaultWeights balances the three terms for the paper's 1200 m area and
// KB-scale items.
func DefaultWeights() Weights { return Weights{WR: 1.0, WD: 1.0 / 400.0, WS: 4096} }

// Validate rejects negative or all-zero weights.
func (w Weights) Validate() error {
	if w.WR < 0 || w.WD < 0 || w.WS < 0 {
		return fmt.Errorf("cache: negative GD-LD weight %+v", w)
	}
	if w.WR == 0 && w.WD == 0 && w.WS == 0 {
		return fmt.Errorf("cache: all GD-LD weights zero")
	}
	return nil
}

// GDLD is the paper's Greedy-Dual Least-Distance policy.
type GDLD struct {
	W Weights
}

// NewGDLD builds the policy, validating the weights.
func NewGDLD(w Weights) (*GDLD, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return &GDLD{W: w}, nil
}

// Name implements Policy.
func (p *GDLD) Name() string { return "GD-LD" }

// Aged implements Policy.
func (p *GDLD) Aged() bool { return true }

// Utility implements Policy: U = wr*ac + wd*reg_dst + ws/size.
func (p *GDLD) Utility(e *Entry) float64 {
	u := p.W.WR*float64(e.AccessCount) + p.W.WD*e.RegionDist
	if e.Size > 0 {
		u += p.W.WS / float64(e.Size)
	}
	return u
}

// GDSize is the GD-Size(1) baseline: utility 1/size, aged. It favors
// small items regardless of popularity or distance — exactly the weakness
// the paper's Figures 4 and 5 expose.
type GDSize struct{}

// Name implements Policy.
func (GDSize) Name() string { return "GD-Size" }

// Aged implements Policy.
func (GDSize) Aged() bool { return true }

// Utility implements Policy.
func (GDSize) Utility(e *Entry) float64 {
	if e.Size <= 0 {
		return 1
	}
	return 1 / float64(e.Size)
}

// LRU evicts the least recently used entry.
type LRU struct{}

// Name implements Policy.
func (LRU) Name() string { return "LRU" }

// Aged implements Policy.
func (LRU) Aged() bool { return false }

// Utility implements Policy.
func (LRU) Utility(e *Entry) float64 { return e.LastAccess }

// LFU evicts the least frequently used entry.
type LFU struct{}

// Name implements Policy.
func (LFU) Name() string { return "LFU" }

// Aged implements Policy.
func (LFU) Aged() bool { return false }

// Utility implements Policy.
func (LFU) Utility(e *Entry) float64 { return float64(e.AccessCount) }

// Cache is the dynamic cache space of one peer.
type Cache struct {
	capacity int64
	used     int64
	entries  map[workload.Key]*Entry
	policy   Policy
	inflate  float64 // greedy-dual L

	evictions uint64
	hits      uint64
	misses    uint64

	// index is the heap-based victim index (heap.go). In linear mode
	// (NewLinear) it is nil and victim selection falls back to the
	// retained reference scan, minUtility.
	index *victimIndex
	// evictScratch backs the slice Put returns, reused across calls so
	// steady-state eviction does not allocate. Its contents are valid
	// only until the next Put.
	evictScratch []Entry

	// inflateRegressed records a greedy-dual aging-floor decrease, which
	// the paper's algorithm forbids (L only ever rises to the utility of
	// the latest victim). CheckInvariants reports it.
	inflateRegressed bool
	// evictionDisabled is a test hook: Put stops evicting, so occupancy
	// can exceed capacity. It exists solely so the invariant checker can
	// be proven to catch a broken build.
	evictionDisabled bool
}

// New returns an empty cache with the given byte capacity, using the
// heap victim index (heap.go) to find eviction victims in O(log n).
func New(capacity int64, policy Policy) (*Cache, error) {
	c, err := NewLinear(capacity, policy)
	if err != nil {
		return nil, err
	}
	c.index = newVictimIndex()
	return c, nil
}

// NewLinear returns an empty cache whose victim selection uses the
// reference O(n) linear scan (minUtility) instead of the heap index.
// It is retained as the executable specification the heap is proven
// equivalent to, exactly as the radio layer keeps Config.LinearScan
// beside the grid index.
func NewLinear(capacity int64, policy Policy) (*Cache, error) {
	if capacity < 0 {
		return nil, fmt.Errorf("cache: negative capacity %d", capacity)
	}
	if policy == nil {
		return nil, fmt.Errorf("cache: nil policy")
	}
	return &Cache{capacity: capacity, entries: make(map[workload.Key]*Entry), policy: policy}, nil
}

// Linear reports whether the cache uses the reference linear victim
// scan instead of the heap index.
func (c *Cache) Linear() bool { return c.index == nil }

// Capacity returns the configured capacity in bytes.
func (c *Cache) Capacity() int64 { return c.capacity }

// Used returns the bytes currently occupied.
func (c *Cache) Used() int64 { return c.used }

// Len returns the number of cached entries.
func (c *Cache) Len() int { return len(c.entries) }

// Policy returns the replacement policy.
func (c *Cache) Policy() Policy { return c.policy }

// Inflation returns the current greedy-dual L value.
func (c *Cache) Inflation() float64 { return c.inflate }

// Hits and Misses return the Get counters; Evictions the victim count.
func (c *Cache) Hits() uint64      { return c.hits }
func (c *Cache) Misses() uint64    { return c.misses }
func (c *Cache) Evictions() uint64 { return c.evictions }

// refresh re-ages an entry's utility after its bookkeeping changed.
func (c *Cache) refresh(e *Entry) {
	u := c.policy.Utility(e)
	if c.policy.Aged() {
		u += c.inflate
	}
	e.Utility = u
}

// Get looks a key up, updating access bookkeeping and the utility value on
// a hit (the paper: "The utility value of the data item is updated when
// there is a hit").
func (c *Cache) Get(k workload.Key, now float64) (*Entry, bool) {
	e, ok := c.entries[k]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	e.AccessCount++
	e.LastAccess = now
	c.refresh(e)
	if c.index != nil {
		c.index.fix(e.Key)
	}
	return e, true
}

// Peek looks a key up without touching any bookkeeping or counters.
func (c *Cache) Peek(k workload.Key) (*Entry, bool) {
	e, ok := c.entries[k]
	return e, ok
}

// Put inserts an item, evicting minimum-utility entries until it fits.
// The entry's AccessCount/RegionDist/Size/Version fields must be filled
// by the caller; Utility is computed here. Items larger than the whole
// cache are refused (ok == false) without disturbing current contents.
// The evicted entries are returned for observability; the slice is
// backed by a scratch buffer reused across calls, so it is valid only
// until the next Put on this cache.
func (c *Cache) Put(e Entry, now float64) (evicted []Entry, ok bool) {
	if int64(e.Size) > c.capacity || e.Size <= 0 {
		return nil, false
	}
	evicted = c.evictScratch[:0]
	if old, exists := c.entries[e.Key]; exists {
		// Replacing an existing copy (e.g. a fresher version): keep
		// accumulated popularity.
		e.AccessCount += old.AccessCount
		c.used -= int64(old.Size)
		delete(c.entries, e.Key)
		if c.index != nil {
			c.index.remove(old.Key)
		}
	}
	for c.used+int64(e.Size) > c.capacity && !c.evictionDisabled {
		victim := c.victim()
		if victim == nil {
			break // cannot happen while used > 0; defensive
		}
		if c.policy.Aged() {
			if victim.Utility < c.inflate {
				c.inflateRegressed = true
			}
			c.inflate = victim.Utility
		}
		c.used -= int64(victim.Size)
		delete(c.entries, victim.Key)
		if c.index != nil {
			c.index.remove(victim.Key)
		}
		c.evictions++
		evicted = append(evicted, *victim)
	}
	e.LastAccess = now
	e.FetchedAt = now
	c.refresh(&e)
	stored := e
	c.entries[e.Key] = &stored
	c.used += int64(e.Size)
	if c.index != nil {
		c.index.push(&stored)
	}
	c.evictScratch = evicted[:0]
	if len(evicted) == 0 {
		return nil, true
	}
	return evicted, true
}

// victim returns the next eviction victim: the minimum-(Utility, Key)
// entry, found by the heap index or — in linear mode — by the reference
// scan. Both select exactly the same entry; see DESIGN.md section 11.
func (c *Cache) victim() *Entry {
	if c.index != nil {
		return c.index.min()
	}
	return c.minUtility()
}

// SetEvictionDisabledForTest turns the eviction loop in Put off (or back
// on). It deliberately breaks the capacity bound and exists only so tests
// can demonstrate that the invariant checker detects the violation.
func (c *Cache) SetEvictionDisabledForTest(disabled bool) { c.evictionDisabled = disabled }

// CheckInvariants verifies the cache's paper-derived invariants:
// occupancy never exceeds capacity, the occupancy accumulator matches the
// sum of entry sizes, every entry is positively sized, and the greedy-dual
// aging floor L never decreased. Returns nil when all hold.
func (c *Cache) CheckInvariants() error {
	if c.used > c.capacity {
		return fmt.Errorf("cache: occupancy %d exceeds capacity %d", c.used, c.capacity)
	}
	var sum int64
	for k, e := range c.entries {
		if e.Size <= 0 {
			return fmt.Errorf("cache: entry %d has non-positive size %d", k, e.Size)
		}
		sum += int64(e.Size)
	}
	if sum != c.used {
		return fmt.Errorf("cache: occupancy accumulator %d != sum of entry sizes %d", c.used, sum)
	}
	if c.inflateRegressed {
		return fmt.Errorf("cache: greedy-dual aging floor L decreased (currently %g)", c.inflate)
	}
	if c.policy.Aged() && (math.IsNaN(c.inflate) || c.inflate < 0) {
		return fmt.Errorf("cache: invalid aging floor L=%g", c.inflate)
	}
	if c.index != nil {
		if err := c.index.check(c.entries); err != nil {
			return err
		}
	}
	return nil
}

// minUtility returns the entry with the minimum utility; ties break to
// the smaller key for determinism. It is the reference victim scan the
// heap index (heap.go) is proven equivalent to, and the live selection
// path in linear mode.
func (c *Cache) minUtility() *Entry {
	var victim *Entry
	for _, e := range c.entries {
		if victim == nil {
			victim = e
			continue
		}
		if e.Utility < victim.Utility ||
			(e.Utility == victim.Utility && e.Key < victim.Key) {
			victim = e
		}
	}
	return victim
}

// Remove drops a key (consistency invalidation). It reports whether the
// key was present.
func (c *Cache) Remove(k workload.Key) bool {
	e, ok := c.entries[k]
	if !ok {
		return false
	}
	c.used -= int64(e.Size)
	delete(c.entries, k)
	if c.index != nil {
		c.index.remove(k)
	}
	return true
}

// Update applies a pushed update to a cached copy: new version, new TTR
// expiry. It reports whether the key was cached.
func (c *Cache) Update(k workload.Key, version uint64, ttrExpiry float64) bool {
	e, ok := c.entries[k]
	if !ok {
		return false
	}
	e.Version = version
	e.TTRExpiry = ttrExpiry
	return true
}

// Keys returns the cached keys in ascending order.
func (c *Cache) Keys() []workload.Key {
	out := make([]workload.Key, 0, len(c.entries))
	for k := range c.entries {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Entries returns copies of all entries, ordered by key.
func (c *Cache) Entries() []Entry {
	out := make([]Entry, 0, len(c.entries))
	for _, k := range c.Keys() {
		out = append(out, *c.entries[k])
	}
	return out
}

// Store is the static cache space: the values of keys assigned to the
// peer's current region. It is unbounded (the paper sizes only the
// dynamic space) and tracks the authoritative version and TTR of each
// key this peer is home for.
type Store struct {
	items map[workload.Key]*StoredItem
}

// StoredItem is the authoritative copy of a key at its home (or replica)
// region.
type StoredItem struct {
	Key     workload.Key
	Size    int
	Version uint64
	// ReplicaRank is the copy's replica rank: 0 for the primary copy in
	// the key's home region, r >= 1 for the copy belonging to the key's
	// rank-r replica region (the (r+1)-th nearest region center to the
	// key's hash location).
	ReplicaRank int
	// UpdatedAt is the sim time of the last accepted update.
	UpdatedAt float64
	// TTR is the current Time-to-Refresh estimate in seconds,
	// maintained with exponential smoothing by the consistency layer.
	TTR float64
}

// NewStore returns an empty static store. The backing map is allocated
// on first Put: at large N the vast majority of peers never hold a key,
// and 100k empty maps are pure startup RSS.
func NewStore() *Store { return &Store{} }

// Len returns the number of stored keys.
func (s *Store) Len() int { return len(s.items) }

// Put inserts or replaces an item.
func (s *Store) Put(it StoredItem) {
	if s.items == nil {
		s.items = make(map[workload.Key]*StoredItem)
	}
	cp := it
	s.items[it.Key] = &cp
}

// Get returns the stored item for a key.
func (s *Store) Get(k workload.Key) (*StoredItem, bool) {
	it, ok := s.items[k]
	return it, ok
}

// Remove drops a key, reporting whether it was present.
func (s *Store) Remove(k workload.Key) bool {
	if _, ok := s.items[k]; !ok {
		return false
	}
	delete(s.items, k)
	return true
}

// Keys returns the stored keys in ascending order.
func (s *Store) Keys() []workload.Key {
	out := make([]workload.Key, 0, len(s.items))
	for k := range s.items {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NeverExpires is the TTR expiry used when consistency is disabled.
var NeverExpires = math.Inf(1)
